// Benchmarks regenerating the paper's tables and figures, one per
// artefact family, plus ablations of FaaSBatch's design choices and
// micro-benchmarks of the hot primitives.
//
// The figure benches run the same code as cmd/faasbench at reduced scale
// so `go test -bench=.` stays quick; run cmd/faasbench for the full
// paper-scale reproduction.
package faasbatch_test

import (
	"io"
	"testing"
	"time"

	faasbatch "faasbatch"
	"faasbatch/internal/cpusched"
	"faasbatch/internal/experiment"
	"faasbatch/internal/metrics"
	"faasbatch/internal/multiplex"
	"faasbatch/internal/sim"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// benchOptions is the reduced scale used by the figure benches.
var benchOptions = experiment.Options{Scale: 0.2, Seed: 13}

// runFigure benches one registry entry.
func runFigure(b *testing.B, id string) {
	b.Helper()
	fig, ok := experiment.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fig.Run(io.Discard, benchOptions); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig1SharingVsMonopoly(b *testing.B) { runFigure(b, "fig1") }

func BenchmarkFig2DailyPattern(b *testing.B) { runFigure(b, "fig2") }

func BenchmarkFig3BlobIaT(b *testing.B) { runFigure(b, "fig3") }

func BenchmarkFig4ClientCreation(b *testing.B) { runFigure(b, "fig4") }

func BenchmarkFig5ClientMemory(b *testing.B) { runFigure(b, "fig5") }

func BenchmarkFig9DurationDistribution(b *testing.B) { runFigure(b, "fig9") }

func BenchmarkFig10BurstPattern(b *testing.B) { runFigure(b, "fig10") }

func BenchmarkFig11CPULatency(b *testing.B) { runFigure(b, "fig11") }

func BenchmarkFig12IOLatency(b *testing.B) { runFigure(b, "fig12") }

func BenchmarkFig13CPUSweep(b *testing.B) { runFigure(b, "fig13") }

func BenchmarkFig14IOSweep(b *testing.B) { runFigure(b, "fig14") }

func BenchmarkHeadlineRatios(b *testing.B) { runFigure(b, "headline") }

// benchTrace builds a reduced evaluation trace.
func benchTrace(b *testing.B, kind workload.Kind, n int) trace.Trace {
	b.Helper()
	cfg := trace.DefaultBurstConfig(kind)
	cfg.N = n
	cfg.Span = 20 * time.Second
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		b.Fatalf("SynthesizeBurst: %v", err)
	}
	return tr
}

// benchPolicyRun benches one policy end to end on a 150-invocation burst.
func benchPolicyRun(b *testing.B, p experiment.PolicyKind, kind workload.Kind, disableMux bool) {
	b.Helper()
	tr := benchTrace(b, kind, 150)
	// Derive Kraken SLOs once, outside the timed loop.
	var slo map[string]time.Duration
	if p == experiment.PolicyKraken {
		derived, err := experiment.SLOFromVanilla(experiment.Config{Policy: experiment.PolicyKraken, Trace: tr, Seed: 1})
		if err != nil {
			b.Fatalf("SLOFromVanilla: %v", err)
		}
		slo = derived
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(experiment.Config{
			Policy:           p,
			Trace:            tr,
			Seed:             1,
			SLO:              slo,
			DisableMultiplex: disableMux,
		})
		if err != nil {
			b.Fatalf("Run: %v", err)
		}
		if len(res.Records) != tr.Len() {
			b.Fatalf("incomplete run: %d/%d", len(res.Records), tr.Len())
		}
	}
}

// Ablation: the Resource Multiplexer on versus off for FaaSBatch on the
// I/O workload (isolates the §III-D module).
func BenchmarkAblationMultiplexOn(b *testing.B) {
	benchPolicyRun(b, experiment.PolicyFaaSBatch, workload.IO, false)
}

func BenchmarkAblationMultiplexOff(b *testing.B) {
	benchPolicyRun(b, experiment.PolicyFaaSBatch, workload.IO, true)
}

// Ablation: FaaSBatch versus the baselines on identical workloads
// (isolates the Invoke Mapper + Inline-Parallel Producer modules).
func BenchmarkPolicyVanillaIO(b *testing.B) {
	benchPolicyRun(b, experiment.PolicyVanilla, workload.IO, false)
}

func BenchmarkPolicySFSIO(b *testing.B) {
	benchPolicyRun(b, experiment.PolicySFS, workload.IO, false)
}

func BenchmarkPolicyKrakenIO(b *testing.B) {
	benchPolicyRun(b, experiment.PolicyKraken, workload.IO, false)
}

func BenchmarkPolicyFaaSBatchCPU(b *testing.B) {
	benchPolicyRun(b, experiment.PolicyFaaSBatch, workload.CPUIntensive, false)
}

// Micro-benchmarks of the hot primitives.

func BenchmarkEngineEventThroughput(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New(1)
	for i := 0; i < b.N; i++ {
		eng.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkProcessorSharingPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New(1)
		pool, err := cpusched.NewPool(eng, 32, cpusched.FairShare{})
		if err != nil {
			b.Fatalf("NewPool: %v", err)
		}
		groups := make([]*cpusched.Group, 8)
		for g := range groups {
			groups[g] = pool.NewGroup("g", 0)
		}
		for t := 0; t < 64; t++ {
			groups[t%8].Submit(time.Duration(t+1)*time.Millisecond, func() {})
		}
		eng.Run()
	}
}

func BenchmarkMLFQPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New(1)
		pool, err := cpusched.NewPool(eng, 32, cpusched.NewMLFQ())
		if err != nil {
			b.Fatalf("NewPool: %v", err)
		}
		g := pool.NewGroup("g", 0)
		for t := 0; t < 64; t++ {
			g.Submit(time.Duration(t+1)*time.Millisecond, func() {})
		}
		eng.Run()
	}
}

func BenchmarkMultiplexerHitPath(b *testing.B) {
	c := multiplex.New()
	key := multiplex.NewKey("boto3.client", "s3:KEY")
	c.Begin(key)
	c.Complete(key, "client", 15<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, _ := c.Begin(key); res != multiplex.BeginHit {
			b.Fatal("expected hit")
		}
	}
}

func BenchmarkCDFQuantiles(b *testing.B) {
	vals := make([]time.Duration, 10_000)
	for i := range vals {
		vals[i] = time.Duration(i*7919%100_000) * time.Microsecond
	}
	cdf := metrics.NewCDF(vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cdf.P(0.98)
	}
}

func BenchmarkTraceSynthesis(b *testing.B) {
	cfg := trace.DefaultBurstConfig(workload.CPUIntensive)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.SynthesizeBurst(cfg); err != nil {
			b.Fatalf("SynthesizeBurst: %v", err)
		}
	}
}

// Cluster scale-out: the same workload on growing fleets (extension
// beyond the paper's single worker VM).
func benchCluster(b *testing.B, nodes int, bal faasbatch.Balancing) {
	b.Helper()
	tr := benchTrace(b, workload.CPUIntensive, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := faasbatch.ReplayCluster(faasbatch.ClusterReplayConfig{
			Cluster: faasbatch.ClusterConfig{Nodes: nodes, Balancing: bal},
			Trace:   tr,
			Seed:    1,
		})
		if err != nil {
			b.Fatalf("ReplayCluster: %v", err)
		}
		if len(res.Records) != tr.Len() {
			b.Fatal("incomplete cluster run")
		}
	}
}

func BenchmarkCluster1Node(b *testing.B) { benchCluster(b, 1, faasbatch.FnAffinity) }

func BenchmarkCluster4NodesAffinity(b *testing.B) { benchCluster(b, 4, faasbatch.FnAffinity) }

func BenchmarkCluster4NodesRoundRobin(b *testing.B) { benchCluster(b, 4, faasbatch.RoundRobin) }

// Function chains: 3-stage sequential workflows under FaaSBatch vs
// Vanilla (extension; Kraken's original microservice setting).
func benchChain(b *testing.B, p experiment.PolicyKind) {
	b.Helper()
	tr := benchTrace(b, workload.CPUIntensive, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := faasbatch.RunChain(faasbatch.ChainConfig{
			Policy: p,
			Trace:  tr,
			Stages: 3,
			Seed:   1,
		})
		if err != nil {
			b.Fatalf("RunChain: %v", err)
		}
		if len(res.Chains) != tr.Len() {
			b.Fatal("incomplete chain run")
		}
	}
}

func BenchmarkChainsFaaSBatch(b *testing.B) { benchChain(b, experiment.PolicyFaaSBatch) }

func BenchmarkChainsVanilla(b *testing.B) { benchChain(b, experiment.PolicyVanilla) }

// Public facade sanity bench: the exported API drives a full run.
func BenchmarkPublicAPIExperiment(b *testing.B) {
	cfg := faasbatch.DefaultBurstConfig(faasbatch.IO)
	cfg.N = 100
	cfg.Span = 10 * time.Second
	tr, err := faasbatch.SynthesizeBurst(cfg)
	if err != nil {
		b.Fatalf("SynthesizeBurst: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faasbatch.RunExperiment(faasbatch.ExperimentConfig{
			Policy: faasbatch.PolicyFaaSBatch,
			Trace:  tr,
			Seed:   1,
		}); err != nil {
			b.Fatalf("RunExperiment: %v", err)
		}
	}
}
