package faasbatch_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	faasbatch "faasbatch"
	"faasbatch/internal/metrics"
)

// TestPublicAPILivePlatform drives the live runtime end to end through
// the exported facade only.
func TestPublicAPILivePlatform(t *testing.T) {
	cfg := faasbatch.DefaultPlatformConfig()
	cfg.DispatchInterval = 20 * time.Millisecond
	cfg.ColdStart = 5 * time.Millisecond
	p, err := faasbatch.NewPlatform(cfg)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	err = p.Register("greet", func(_ context.Context, inv *faasbatch.Invocation) (any, error) {
		client, cached, err := inv.Resources.Get("greeter", "en", func() (any, int64, error) {
			return "Hello", 1 << 10, nil
		})
		if err != nil {
			return nil, err
		}
		_ = cached
		var name string
		if err := json.Unmarshal(inv.Payload, &name); err != nil {
			return nil, err
		}
		return client.(string) + ", " + name, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}

	res, err := p.Invoke(context.Background(), "greet", json.RawMessage(`"world"`))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Value != "Hello, world" {
		t.Fatalf("Value = %v", res.Value)
	}
	if res.Total() <= 0 {
		t.Fatalf("latency decomposition empty: %+v", res)
	}

	// And over HTTP.
	srv := httptest.NewServer(faasbatch.NewHTTPHandler(p))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/invoke", "application/json",
		strings.NewReader(`{"fn":"greet","payload":"gopher"}`))
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var out struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(out.Result) != `"Hello, gopher"` {
		t.Fatalf("http result = %s", out.Result)
	}
}

// TestPublicAPIExperimentHarness reproduces a small evaluation run
// through the facade.
func TestPublicAPIExperimentHarness(t *testing.T) {
	cfg := faasbatch.DefaultBurstConfig(faasbatch.IO)
	cfg.N = 80
	cfg.Span = 10 * time.Second
	tr, err := faasbatch.SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	res, err := faasbatch.RunExperiment(faasbatch.ExperimentConfig{
		Policy: faasbatch.PolicyFaaSBatch,
		Trace:  tr,
		Seed:   1,
	})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if len(res.Records) != tr.Len() {
		t.Fatalf("records = %d, want %d", len(res.Records), tr.Len())
	}
	if res.CDF(metrics.Execution).P(0.5) > 100*time.Millisecond {
		t.Fatal("multiplexed exec median above the 10-100ms band")
	}
}

// TestPublicAPIFigures lists and runs a registry entry via the facade.
func TestPublicAPIFigures(t *testing.T) {
	figs := faasbatch.Figures()
	if len(figs) < 12 {
		t.Fatalf("registry has %d entries", len(figs))
	}
	fig, ok := faasbatch.FigureByID("fig9")
	if !ok {
		t.Fatal("fig9 missing")
	}
	var b strings.Builder
	if err := fig.Run(&b, faasbatch.FigureOptions{Scale: 0.01, Seed: 1}); err != nil {
		t.Fatalf("fig9: %v", err)
	}
	if !strings.Contains(b.String(), "duration range") {
		t.Fatalf("fig9 output malformed:\n%s", b.String())
	}
}

// TestPublicAPICluster replays a tiny trace on a fleet via the facade.
func TestPublicAPICluster(t *testing.T) {
	cfg := faasbatch.DefaultBurstConfig(faasbatch.CPUIntensive)
	cfg.N = 40
	cfg.Span = 5 * time.Second
	tr, err := faasbatch.SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	res, err := faasbatch.ReplayCluster(faasbatch.ClusterReplayConfig{
		Cluster: faasbatch.ClusterConfig{Nodes: 2, Balancing: faasbatch.FnAffinity},
		Trace:   tr,
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("ReplayCluster: %v", err)
	}
	if len(res.Records) != tr.Len() || res.Nodes != 2 {
		t.Fatalf("cluster result = %d records on %d nodes", len(res.Records), res.Nodes)
	}
}

// TestPublicAPIAzureReplay drives the Azure-dataset path via the facade.
func TestPublicAPIAzureReplay(t *testing.T) {
	row := faasbatch.AzureFunctionRow{
		Owner: "o", App: "a", Function: "hot", Trigger: "http",
		PerMinute: make([]int, 1440),
	}
	row.PerMinute[1330] = 12
	var buf strings.Builder
	// Round-trip through the wire format the public dataset uses.
	if err := writeAzure(&buf, row); err != nil {
		t.Fatalf("write: %v", err)
	}
	rows, err := faasbatch.ReadAzureInvocationsCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadAzureInvocationsCSV: %v", err)
	}
	tr, err := faasbatch.FromAzureRows(rows, faasbatch.DefaultAzureReplayOptions())
	if err != nil {
		t.Fatalf("FromAzureRows: %v", err)
	}
	if tr.Len() != 12 {
		t.Fatalf("replay len = %d, want 12", tr.Len())
	}
	res, err := faasbatch.RunExperiment(faasbatch.ExperimentConfig{
		Policy: faasbatch.PolicyFaaSBatch,
		Trace:  tr,
		Seed:   1,
	})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if len(res.Records) != 12 {
		t.Fatalf("records = %d", len(res.Records))
	}
}

// writeAzure emits one row in the dataset schema.
func writeAzure(w *strings.Builder, row faasbatch.AzureFunctionRow) error {
	w.WriteString("HashOwner,HashApp,HashFunction,Trigger")
	for m := 1; m <= 1440; m++ {
		fmt.Fprintf(w, ",%d", m)
	}
	w.WriteString("\n")
	fmt.Fprintf(w, "%s,%s,%s,%s", row.Owner, row.App, row.Function, row.Trigger)
	for _, c := range row.PerMinute {
		fmt.Fprintf(w, ",%d", c)
	}
	w.WriteString("\n")
	return nil
}
