package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"faasbatch/internal/httpapi"
	"faasbatch/internal/platform"
	"faasbatch/internal/router"
)

// hotSeries is one measured hot-path series in BENCH_hotpath.json.
type hotSeries struct {
	// Name identifies the path: sim_submit (Platform.Invoke, warm),
	// gateway_encode (byte-oriented /invoke response encode), decode
	// (byte-oriented /invoke request decode), gateway_live (HTTP round
	// trip through the worker gateway) or routed (HTTP round trip through
	// the router and a loopback worker).
	Name      string  `json:"name"`
	Ops       int64   `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	// BytesPerOp/AllocsPerOp are process-wide heap deltas over the run
	// (GC disabled), rounded to the nearest integer per op. The live HTTP
	// series include client-side allocations; only the in-process series
	// are gated at zero.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// hotpathReport is the BENCH_hotpath.json shape.
type hotpathReport struct {
	GOOS   string      `json:"goos"`
	GOARCH string      `json:"goarch"`
	NumCPU int         `json:"num_cpu"`
	Series []hotSeries `json:"series"`
	// Gates are the values CI fails the build on: the warm sim submit
	// path and the gateway response encode must stay at 0 allocs/op.
	Gates map[string]int64 `json:"gates"`
}

// measureHot times ops iterations of fn and derives throughput, latency
// percentiles and per-op heap deltas. GC stays disabled during the
// measured window: a collection would clear the sync.Pools under test and
// charge the refill to whichever op ran next.
func measureHot(name string, ops int, fn func() error) (hotSeries, error) {
	warm := ops / 10
	if warm > 200 {
		warm = 200
	}
	for i := 0; i <= warm; i++ {
		if err := fn(); err != nil {
			return hotSeries{}, fmt.Errorf("%s warm-up: %w", name, err)
		}
	}
	durs := make([]time.Duration, ops)
	prev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prev)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := range durs {
		s := time.Now()
		if err := fn(); err != nil {
			return hotSeries{}, fmt.Errorf("%s: %w", name, err)
		}
		durs[i] = time.Since(s)
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	n := float64(ops)
	return hotSeries{
		Name:        name,
		Ops:         int64(ops),
		NsPerOp:     round3(float64(total.Nanoseconds()) / n),
		OpsPerSec:   round3(n / total.Seconds()),
		P50Micros:   round3(float64(durs[ops/2].Nanoseconds()) / 1e3),
		P99Micros:   round3(float64(durs[ops*99/100].Nanoseconds()) / 1e3),
		BytesPerOp:  int64(float64(after.TotalAlloc-before.TotalAlloc)/n + 0.5),
		AllocsPerOp: int64(float64(after.Mallocs-before.Mallocs)/n + 0.5),
	}, nil
}

// hotPlatform builds the steady-state platform the hot-path series run
// against: adaptive dispatch with single-call groups (warm arrivals
// dispatch inline), no cold-start simulation, no multiplexer, no tracer.
func hotPlatform() (*platform.Platform, error) {
	p, err := platform.New(platform.Config{
		Mode:             platform.ModeBatch,
		DispatchInterval: 50 * time.Millisecond,
		AdaptiveDispatch: true,
		MaxGroupSize:     1,
		KeepAlive:        time.Minute,
	})
	if err != nil {
		return nil, err
	}
	if err := p.Register("noop", func(context.Context, *platform.Invocation) (any, error) {
		return nil, nil
	}); err != nil {
		_ = p.Close()
		return nil, err
	}
	p.SetReady(true)
	return p, nil
}

// runHotpath measures the invoke hot path end to end and writes the
// BENCH_hotpath.json report: warm sim submit, wire encode/decode, the
// live worker gateway and the routed path.
func runHotpath(w io.Writer) error {
	rep := hotpathReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}

	// sim_submit: Platform.Invoke on a warm function — the sharded,
	// pooled submission path with no HTTP in front. Gated at 0 allocs/op.
	p, err := hotPlatform()
	if err != nil {
		return err
	}
	ctx := context.Background()
	sim, err := measureHot("sim_submit", 50_000, func() error {
		_, err := p.Invoke(ctx, "noop", nil)
		return err
	})
	if err != nil {
		_ = p.Close()
		return err
	}
	if err := p.Close(); err != nil {
		return err
	}
	rep.Series = append(rep.Series, sim)

	// gateway_encode: the byte-oriented /invoke response encoder into a
	// reused buffer, trace stamp included. Gated at 0 allocs/op.
	out := httpapi.InvokeResponse{
		Fn:          "noop",
		Result:      json.RawMessage(`{"ok":true,"n":42}`),
		ContainerID: "live-0001-noop",
		Worker:      "w1",
		Attempts:    1,
		Latency: httpapi.Latency{
			SchedMillis: 0.153, QueueMillis: 0.021, ExecMillis: 1.337, TotalMillis: 1.511,
		},
	}
	buf := make([]byte, 0, 512)
	enc, err := measureHot("gateway_encode", 200_000, func() error {
		buf = httpapi.AppendInvokeResponse(buf[:0], &out, 0xabcdef0123456789)
		if len(buf) == 0 {
			return fmt.Errorf("empty encode")
		}
		return nil
	})
	if err != nil {
		return err
	}
	rep.Series = append(rep.Series, enc)

	// decode: the byte-oriented /invoke request scanner (payload aliases
	// the input, so the steady state allocates nothing).
	reqBody := []byte(`{"fn":"noop","payload":{"n":12}}`)
	dec, err := measureHot("decode", 200_000, func() error {
		req, err := httpapi.DecodeInvokeRequest(reqBody)
		if err != nil {
			return err
		}
		if req.Fn != "noop" {
			return fmt.Errorf("decoded fn %q", req.Fn)
		}
		return nil
	})
	if err != nil {
		return err
	}
	rep.Series = append(rep.Series, dec)

	// gateway_live: the worker gateway over real HTTP on loopback. The
	// per-op heap delta includes net/http client and server connection
	// machinery, so this series is reported, not gated.
	p2, err := hotPlatform()
	if err != nil {
		return err
	}
	gsrv := httptest.NewServer(platform.NewHTTPHandler(p2))
	client := gsrv.Client()
	invokeOnce := func(url string, body []byte) error {
		resp, err := client.Post(url+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		if err := resp.Body.Close(); err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	live, err := measureHot("gateway_live", 10_000, func() error {
		return invokeOnce(gsrv.URL, reqBody)
	})
	gsrv.Close()
	if cerr := p2.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	rep.Series = append(rep.Series, live)

	// routed: client -> router -> worker gateway, all on loopback.
	p3, err := hotPlatform()
	if err != nil {
		return err
	}
	wsrv := httptest.NewServer(platform.NewHTTPHandler(p3))
	rt, err := router.New(router.Config{
		Workers:        []router.WorkerSpec{{ID: "w1", URL: wsrv.URL}},
		ProbeInterval:  time.Second,
		RetryBackoff:   -1,
		ForwardTimeout: 5 * time.Second,
	})
	if err != nil {
		wsrv.Close()
		_ = p3.Close()
		return err
	}
	rsrv := httptest.NewServer(router.NewHTTPHandler(rt))
	routed, err := measureHot("routed", 5_000, func() error {
		return invokeOnce(rsrv.URL, reqBody)
	})
	rsrv.Close()
	if cerr := rt.Close(); err == nil {
		err = cerr
	}
	wsrv.Close()
	if cerr := p3.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	rep.Series = append(rep.Series, routed)

	rep.Gates = map[string]int64{
		"sim_submit_allocs_per_op":     sim.AllocsPerOp,
		"gateway_encode_allocs_per_op": enc.AllocsPerOp,
	}

	enc2 := json.NewEncoder(w)
	enc2.SetIndent("", "  ")
	return enc2.Encode(rep)
}
