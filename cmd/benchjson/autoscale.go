package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/cluster"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

// autoscaleRun summarises one fleet mode's replay of the shared burst
// schedule.
type autoscaleRun struct {
	Mode        string  `json:"mode"`
	Invocations int     `json:"invocations"`
	P50Millis   float64 `json:"latency_p50_ms"`
	P99Millis   float64 `json:"latency_p99_ms"`
	// ColdStarts counts containers created across the fleet — each one
	// paid a cold-start penalty somewhere in the latency distribution.
	ColdStarts int `json:"cold_starts"`
	// WorkerSeconds is the provisioned worker-time the run consumed:
	// the busy integral for the elastic fleet, nodes × horizon for the
	// static one. The elastic/static gap is what autoscaling buys.
	WorkerSeconds float64 `json:"worker_seconds"`
	ScaleUps      uint64  `json:"scale_ups,omitempty"`
	ScaleDowns    uint64  `json:"scale_downs,omitempty"`
	Wakes         uint64  `json:"wakes,omitempty"`
	FinalReady    int     `json:"final_ready_workers"`
}

// autoscaleReport is the BENCH_autoscale.json shape: the same bursty
// schedule replayed through a static 8-worker fleet and an elastic one
// that starts at a single worker and may scale to zero in the quiet
// tail. Both replays are deterministic simulations.
type autoscaleReport struct {
	GOOS          string         `json:"goos"`
	GOARCH        string         `json:"goarch"`
	NumCPU        int            `json:"num_cpu"`
	Nodes         int            `json:"nodes"`
	HorizonMillis float64        `json:"horizon_ms"`
	Runs          []autoscaleRun `json:"runs"`
	// WorkerSecondsRatio is static/elastic provisioned worker-time —
	// how many times over the static fleet pays for capacity the
	// elastic one releases.
	WorkerSecondsRatio float64 `json:"worker_seconds_ratio"`
	// P99PenaltyMillis is elastic p99 minus static p99: the latency
	// price of the extra cold starts elasticity incurs, which batching
	// through the dispatch idle reset is meant to amortise.
	P99PenaltyMillis float64 `json:"p99_penalty_ms"`
}

const (
	autoscaleNodes   = 8
	autoscaleHorizon = 16 * time.Second
)

// autoscaleSchedule is the shared arrival schedule: a trickle, then a
// dense burst phase, then a long quiet tail that lets the elastic fleet
// drain. Offsets avoid the controller's 200ms tick multiples so the
// replay is unambiguous.
func autoscaleSchedule() []time.Duration {
	var offs []time.Duration
	// Trickle: 20/s for 2s.
	for t := 3 * time.Millisecond; t < 2*time.Second; t += 50 * time.Millisecond {
		offs = append(offs, t)
	}
	// Spike: a 20-arrival burst every 100ms for 4s (~200/s).
	for burst := 2 * time.Second; burst < 6*time.Second; burst += 100 * time.Millisecond {
		for i := 0; i < 20; i++ {
			offs = append(offs, burst+3*time.Millisecond+time.Duration(i)*time.Millisecond)
		}
	}
	// Quiet tail: nothing until the horizon.
	return offs
}

// runAutoscale replays the schedule through both fleet modes and writes
// the comparison report.
func runAutoscale(w io.Writer) error {
	rep := autoscaleReport{
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Nodes:         autoscaleNodes,
		HorizonMillis: float64(autoscaleHorizon.Milliseconds()),
	}
	var elastic *autoscale.Config = &autoscale.Config{
		MinWorkers:       0,
		MaxWorkers:       autoscaleNodes,
		TargetPerWorker:  40,
		EvalInterval:     200 * time.Millisecond,
		Warmup:           100 * time.Millisecond,
		DrainBudget:      400 * time.Millisecond,
		ScaleDownAfter:   2,
		ScaleToZeroAfter: 2 * time.Second,
	}
	for _, mode := range []struct {
		name string
		acfg *autoscale.Config
	}{{"static", nil}, {"elastic", elastic}} {
		run, err := autoscaleReplay(mode.name, mode.acfg)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, run)
	}
	static, elasticRun := rep.Runs[0], rep.Runs[1]
	if elasticRun.WorkerSeconds > 0 {
		rep.WorkerSecondsRatio = round3(static.WorkerSeconds / elasticRun.WorkerSeconds)
	}
	rep.P99PenaltyMillis = round3(elasticRun.P99Millis - static.P99Millis)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// autoscaleReplay runs the shared schedule through one fleet mode.
func autoscaleReplay(mode string, acfg *autoscale.Config) (autoscaleRun, error) {
	eng := sim.New(11)
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:     autoscaleNodes,
		Balancing: cluster.ConsistentHash,
		Autoscale: acfg,
	})
	if err != nil {
		return autoscaleRun{}, err
	}
	fns := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	offs := autoscaleSchedule()
	var latencies []time.Duration
	for i, off := range offs {
		i, off := i, off
		spec := workload.IOSpec(fns[i%len(fns)])
		eng.Schedule(off, func() {
			inv := fnruntime.NewInvocation(int64(i), spec, eng.Now())
			cl.Submit(inv, func(*fnruntime.Invocation) {
				latencies = append(latencies, eng.Now().Duration()-off)
			})
		})
	}
	eng.RunUntil(sim.Time(autoscaleHorizon))
	if len(latencies) != len(offs) {
		return autoscaleRun{}, fmt.Errorf("autoscale %s: %d/%d invocations completed by the horizon", mode, len(latencies), len(offs))
	}
	run := autoscaleRun{
		Mode:        mode,
		Invocations: len(offs),
		P50Millis:   durMillis(percentile(latencies, 0.50)),
		P99Millis:   durMillis(percentile(latencies, 0.99)),
		ColdStarts:  cl.TotalContainers(),
		FinalReady:  cl.ReadyNodes(),
	}
	if acfg != nil {
		st := cl.AutoscaleStatus()
		run.WorkerSeconds = round3(cl.AutoscaleBusyIntegral().Seconds())
		run.ScaleUps, run.ScaleDowns, run.Wakes = st.ScaleUps, st.ScaleDowns, st.Wakes
	} else {
		run.WorkerSeconds = round3(float64(autoscaleNodes) * autoscaleHorizon.Seconds())
	}
	if err := cl.Close(); err != nil {
		return autoscaleRun{}, err
	}
	return run, nil
}

// percentile returns the q-quantile of the sample by nearest rank.
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func durMillis(d time.Duration) float64 {
	return round3(float64(d.Microseconds()) / 1000)
}
