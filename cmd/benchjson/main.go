// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout, so CI can track the multiplexer
// performance trajectory across commits.
//
// Usage:
//
//	go test -run=NONE -bench=Multiplex -benchtime=100x ./internal/multiplex | go run ./cmd/benchjson > BENCH_multiplex.json
//
// Besides the raw per-benchmark numbers it derives sharded-vs-global
// speedups for benchmark pairs named BenchmarkMultiplexSharded<X> /
// BenchmarkMultiplexGlobal<X>. Note that wall-clock speedup from lock
// striping only manifests on multi-core hosts: on a single-CPU machine at
// most one goroutine runs at a time, so even a single global mutex is
// almost never contended. The report records NumCPU so readers can judge.
//
// With -dispatch the command ignores stdin and instead benchmarks the
// Invoke Mapper itself: fixed vs adaptive dispatch windows on sparse and
// bursty synthetic traces (deterministic simulations), plus a lone
// wall-clock invocation on an idle live platform per mode. The JSON lands
// in BENCH_dispatch.json in CI.
//
//	go run ./cmd/benchjson -dispatch > BENCH_dispatch.json
//
// With -autoscale it replays one bursty schedule through a static fleet
// and an elastic one (internal/autoscale over the cluster simulator) and
// reports the provisioned worker-seconds each paid plus the cold-start
// latency penalty elasticity incurred. The JSON lands in
// BENCH_autoscale.json in CI.
//
//	go run ./cmd/benchjson -autoscale > BENCH_autoscale.json
//
// With -routing it replays one 90/10-skewed schedule with a mid-run
// worker failure through the consistent-hash push policy and the
// worker-pull late-binding policy, and reports each policy's tail
// latency and load-spread CV plus the derived pull-beats-hash verdicts
// CI gates on. The JSON lands in BENCH_routing.json in CI.
//
//	go run ./cmd/benchjson -routing > BENCH_routing.json
//
// With -hotpath it measures the invoke hot path end to end — warm sim
// submit through the sharded queue, the byte-oriented /invoke wire
// encode/decode, the live worker gateway over loopback HTTP and the
// routed path — reporting throughput, p50/p99 and per-op heap deltas.
// CI gates the sim submit and gateway encode series at 0 allocs/op. The
// JSON lands in BENCH_hotpath.json.
//
//	go run ./cmd/benchjson -hotpath > BENCH_hotpath.json
//
// When the input carries -benchmem columns they are parsed into
// bytes_per_op / allocs_per_op, so CI can gate allocation-free hot paths:
//
//	go test -run=NONE -bench 'TraceParent|Tracer' -benchmem ./internal/obs | go run ./cmd/benchjson > BENCH_obs.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

type benchResult struct {
	Name      string  `json:"name"`
	Ops       int64   `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// BytesPerOp/AllocsPerOp carry the -benchmem columns when present.
	// Pointers distinguish "not measured" (absent) from a measured zero —
	// the zero matters: CI gates the tracing hot paths on 0 allocs/op.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

type report struct {
	Package    string             `json:"package"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	CPUModel   string             `json:"cpu_model,omitempty"`
	NumCPU     int                `json:"num_cpu"`
	Note       string             `json:"note,omitempty"`
	Benchmarks []benchResult      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"sharded_vs_global_speedup,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	dispatchMode := flag.Bool("dispatch", false, "benchmark fixed vs adaptive dispatch windows instead of parsing stdin")
	autoscaleMode := flag.Bool("autoscale", false, "benchmark an elastic fleet vs a static one instead of parsing stdin")
	routingMode := flag.Bool("routing", false, "benchmark the pull policy vs consistent hashing on skewed traffic instead of parsing stdin")
	hotpathMode := flag.Bool("hotpath", false, "benchmark the invoke hot path (sim submit, wire encode/decode, live gateway, routed) instead of parsing stdin")
	flag.Parse()
	if *hotpathMode {
		if err := runHotpath(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: hotpath:", err)
			os.Exit(1)
		}
		return
	}
	if *dispatchMode {
		if err := runDispatch(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: dispatch:", err)
			os.Exit(1)
		}
		return
	}
	if *autoscaleMode {
		if err := runAutoscale(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: autoscale:", err)
			os.Exit(1)
		}
		return
	}
	if *routingMode {
		if err := runRouting(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: routing:", err)
			os.Exit(1)
		}
		return
	}
	rep := report{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	if rep.NumCPU == 1 {
		rep.Note = "single-CPU host: lock-striping speedup cannot manifest in wall-clock throughput (threads time-slice, so locks are rarely held when contended); compare on a multi-core runner for the parallel ratio"
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPUModel = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ops, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil || ns <= 0 {
			continue
		}
		res := benchResult{
			Name:      m[1],
			Ops:       ops,
			NsPerOp:   ns,
			OpsPerSec: 1e9 / ns,
		}
		if m[4] != "" && m[5] != "" {
			if bpo, err := strconv.ParseInt(m[4], 10, 64); err == nil {
				res.BytesPerOp = &bpo
			}
			if apo, err := strconv.ParseInt(m[5], 10, 64); err == nil {
				res.AllocsPerOp = &apo
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	// Pair BenchmarkMultiplexSharded<X> with BenchmarkMultiplexGlobal<X>.
	byName := map[string]benchResult{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	for _, b := range rep.Benchmarks {
		const pfx = "BenchmarkMultiplexSharded"
		if !strings.HasPrefix(b.Name, pfx) {
			continue
		}
		suffix := strings.TrimPrefix(b.Name, pfx)
		global, ok := byName["BenchmarkMultiplexGlobal"+suffix]
		if !ok {
			continue
		}
		if rep.Speedups == nil {
			rep.Speedups = map[string]float64{}
		}
		rep.Speedups[suffix] = round3(global.NsPerOp / b.NsPerOp)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}
