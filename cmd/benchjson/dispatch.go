package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"faasbatch/internal/experiment"
	"faasbatch/internal/metrics"
	"faasbatch/internal/platform"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// dispatchRun is one (trace, mode) simulation's scheduling summary.
type dispatchRun struct {
	Trace              string  `json:"trace"`
	Mode               string  `json:"mode"`
	Invocations        int     `json:"invocations"`
	SchedP50Millis     float64 `json:"sched_p50_ms"`
	SchedP99Millis     float64 `json:"sched_p99_ms"`
	AvgGroupSize       float64 `json:"avg_group_size"`
	FastPathDispatches int64   `json:"fast_path_dispatches"`
	EarlyCloses        int64   `json:"early_closes"`
}

// liveRun is one lone wall-clock invocation on an idle live platform.
type liveRun struct {
	Mode        string  `json:"mode"`
	SchedMillis float64 `json:"sched_ms"`
}

// dispatchReport is the BENCH_dispatch.json shape.
type dispatchReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	// Interval is the fixed window and the adaptive cap (the paper's
	// 0.2 s default), so the two modes are directly comparable.
	IntervalMillis float64       `json:"interval_ms"`
	Sim            []dispatchRun `json:"sim"`
	Live           []liveRun     `json:"live"`
	// SparseP50Speedup is fixed/adaptive p50 scheduling delay on the
	// sparse trace (how much window wait the fast path removes).
	SparseP50Speedup float64 `json:"sparse_p50_speedup"`
	// BurstyGroupRatio is adaptive/fixed average group size on the bursty
	// trace (1.0 = batching fully preserved; the acceptance floor is 0.9).
	BurstyGroupRatio float64 `json:"bursty_group_ratio"`
}

const dispatchInterval = 200 * time.Millisecond

// runDispatch measures fixed vs adaptive dispatch and writes the report.
func runDispatch(w io.Writer) error {
	rep := dispatchReport{
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		IntervalMillis: float64(dispatchInterval.Milliseconds()),
	}

	scfg := trace.DefaultBurstConfig(workload.IO)
	scfg.N = 200
	sparse, err := trace.SynthesizeSteady(scfg)
	if err != nil {
		return err
	}
	// Pure dense bursts (no background Poisson arrivals): this report
	// measures how much of a dense burst's batching the adaptive
	// controller preserves; sparse singletons are the sparse trace's
	// job. Longer bursts amortise the one idle fast-path each burst
	// head pays before the rate estimate re-primes.
	bcfg := trace.DefaultBurstConfig(workload.IO)
	bcfg.BurstFraction = 1.0
	bcfg.MeanBurstSize = 160
	bursty, err := trace.SynthesizeBurst(bcfg)
	if err != nil {
		return err
	}

	traces := []struct {
		name string
		tr   trace.Trace
	}{{"sparse", sparse}, {"bursty", bursty}}
	runs := map[string]dispatchRun{}
	for _, tc := range traces {
		for _, adaptive := range []bool{false, true} {
			run, err := simRun(tc.name, tc.tr, adaptive)
			if err != nil {
				return err
			}
			rep.Sim = append(rep.Sim, run)
			runs[run.Trace+"/"+run.Mode] = run
		}
	}
	if p50 := runs["sparse/adaptive"].SchedP50Millis; p50 > 0 {
		rep.SparseP50Speedup = round3(runs["sparse/fixed"].SchedP50Millis / p50)
	}
	if grp := runs["bursty/fixed"].AvgGroupSize; grp > 0 {
		rep.BurstyGroupRatio = round3(runs["bursty/adaptive"].AvgGroupSize / grp)
	}

	for _, adaptive := range []bool{false, true} {
		lr, err := liveLoneInvocation(adaptive)
		if err != nil {
			return err
		}
		rep.Live = append(rep.Live, lr)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// simRun replays one trace through the simulator under one dispatch mode.
func simRun(name string, tr trace.Trace, adaptive bool) (dispatchRun, error) {
	res, err := experiment.Run(experiment.Config{
		Policy:           experiment.PolicyFaaSBatch,
		Trace:            tr,
		Seed:             13,
		Interval:         dispatchInterval,
		AdaptiveDispatch: adaptive,
	})
	if err != nil {
		return dispatchRun{}, err
	}
	sched := res.CDF(metrics.Scheduling)
	run := dispatchRun{
		Trace:          name,
		Mode:           modeName(adaptive),
		Invocations:    tr.Len(),
		SchedP50Millis: millis(sched.P(0.5)),
		SchedP99Millis: millis(sched.P(0.99)),
	}
	if res.Batch != nil {
		run.AvgGroupSize = round3(res.Batch.AvgGroupSize())
		run.FastPathDispatches = res.Batch.FastPathDispatches
		run.EarlyCloses = res.Batch.EarlyCloses
	}
	return run, nil
}

// liveLoneInvocation measures the wall-clock scheduling delay of a single
// invocation on an otherwise idle live platform: the fixed window makes it
// wait up to a full interval; the adaptive fast path dispatches at once
// (the acceptance bound is < 5ms).
func liveLoneInvocation(adaptive bool) (liveRun, error) {
	cfg := platform.DefaultConfig()
	cfg.DispatchInterval = dispatchInterval
	cfg.AdaptiveDispatch = adaptive
	cfg.ColdStart = 0
	p, err := platform.New(cfg)
	if err != nil {
		return liveRun{}, err
	}
	defer p.Close()
	if err := p.Register("echo", func(_ context.Context, inv *platform.Invocation) (any, error) {
		return string(inv.Payload), nil
	}); err != nil {
		return liveRun{}, err
	}
	res, err := p.Invoke(context.Background(), "echo", nil)
	if err != nil {
		return liveRun{}, fmt.Errorf("lone invocation (%s): %w", modeName(adaptive), err)
	}
	return liveRun{Mode: modeName(adaptive), SchedMillis: millis(res.Sched)}, nil
}

func modeName(adaptive bool) string {
	if adaptive {
		return "adaptive"
	}
	return "fixed"
}

func millis(d time.Duration) float64 {
	return round3(float64(d.Microseconds()) / 1000)
}
