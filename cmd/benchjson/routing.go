package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"faasbatch/internal/cluster"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/pullsched"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

// routingRun summarises one policy's replay of the shared skewed
// schedule.
type routingRun struct {
	Policy      string  `json:"policy"`
	Invocations int     `json:"invocations"`
	Lost        int     `json:"lost"`
	P50Millis   float64 `json:"latency_p50_ms"`
	P99Millis   float64 `json:"latency_p99_ms"`
	// LoadCV is the coefficient of variation (stddev/mean) of per-worker
	// routed-invocation counts: 0 is a perfectly even spread.
	LoadCV float64 `json:"load_cv"`
	// Requeues counts leases reclaimed from the failed worker and
	// re-granted (pull only) — the zero-lost mechanism at work.
	Requeues uint64 `json:"requeues,omitempty"`
	Shed     uint64 `json:"shed,omitempty"`
}

// routingReport is the BENCH_routing.json shape: one 90/10-skewed
// arrival schedule with a mid-run worker failure, replayed through the
// consistent-hash push policy and the worker-pull late-binding policy.
// Both replays are deterministic simulations over the same fleet.
type routingReport struct {
	GOOS          string       `json:"goos"`
	GOARCH        string       `json:"goarch"`
	NumCPU        int          `json:"num_cpu"`
	Nodes         int          `json:"nodes"`
	HorizonMillis float64      `json:"horizon_ms"`
	Runs          []routingRun `json:"runs"`
	// PullBeatsHashP99 / PullBeatsHashLoadCV are the headline claims CI
	// gates on: late binding must spread a skewed workload more evenly
	// and cut its tail latency.
	PullBeatsHashP99    bool `json:"pull_beats_hash_p99"`
	PullBeatsHashLoadCV bool `json:"pull_beats_hash_load_cv"`
	// ZeroLost holds when both policies completed every invocation
	// despite the mid-run worker failure.
	ZeroLost bool `json:"zero_lost"`
}

const (
	routingNodes   = 8
	routingHorizon = 20 * time.Second
	// The victim worker fails mid-run and recovers before the tail.
	routingVictim       = 1
	routingOutageStart  = 4 * time.Second
	routingOutageEnd    = 8 * time.Second
	routingArrivalGap   = 5 * time.Millisecond // 200/s
	routingArrivalStart = 3 * time.Millisecond
	routingWorkloadEnd  = 12 * time.Second
)

// routingSchedule is the shared 90/10 skewed arrival schedule: nine of
// every ten invocations hit one hot CPU-bound function (which
// consistent hashing pins to a single owner whose cores it overwhelms
// — ~55 cores of demand against one 32-core worker, but only a quarter
// of the 8-worker fleet), the rest rotate over eight cold functions.
func routingSchedule() ([]workload.Spec, error) {
	hot, err := workload.FibSpec(30)
	if err != nil {
		return nil, err
	}
	hot.Name = "hot"
	cold, err := workload.FibSpec(24)
	if err != nil {
		return nil, err
	}
	var specs []workload.Spec
	i := 0
	for t := routingArrivalStart; t < routingWorkloadEnd; t += routingArrivalGap {
		if i%10 == 9 {
			c := cold
			c.Name = fmt.Sprintf("cold-%d", (i/10)%routingNodes)
			specs = append(specs, c)
		} else {
			specs = append(specs, hot)
		}
		i++
	}
	return specs, nil
}

// runRouting replays the schedule through both policies and writes the
// comparison report.
func runRouting(w io.Writer) error {
	rep := routingReport{
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Nodes:         routingNodes,
		HorizonMillis: float64(routingHorizon.Milliseconds()),
	}
	for _, mode := range []string{"hash", "pull"} {
		run, err := routingReplay(mode)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, run)
	}
	hash, pull := rep.Runs[0], rep.Runs[1]
	rep.PullBeatsHashP99 = pull.P99Millis < hash.P99Millis
	rep.PullBeatsHashLoadCV = pull.LoadCV < hash.LoadCV
	rep.ZeroLost = hash.Lost == 0 && pull.Lost == 0

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// routingReplay runs the shared schedule through one policy, failing
// the victim worker mid-run and recovering it before the quiet tail.
func routingReplay(mode string) (routingRun, error) {
	eng := sim.New(17)
	ccfg := cluster.Config{
		Nodes:     routingNodes,
		Balancing: cluster.ConsistentHash,
	}
	if mode == "pull" {
		ccfg.Balancing = cluster.Pull
		// Capacity sizes the per-worker lease window to the worker's
		// cores: wide enough to keep the node's scheduler fed, narrow
		// enough that late binding still equalises queue depth.
		ccfg.Pull = &pullsched.Config{
			QueueDepth: 1 << 16,
			Capacity:   32,
		}
	}
	cl, err := cluster.New(eng, ccfg)
	if err != nil {
		return routingRun{}, err
	}
	fns, err := routingSchedule()
	if err != nil {
		return routingRun{}, err
	}
	var latencies []time.Duration
	for i, spec := range fns {
		i, spec := i, spec
		off := routingArrivalStart + time.Duration(i)*routingArrivalGap
		eng.Schedule(off, func() {
			inv := fnruntime.NewInvocation(int64(i), spec, eng.Now())
			cl.Submit(inv, func(*fnruntime.Invocation) {
				latencies = append(latencies, eng.Now().Duration()-off)
			})
		})
	}
	eng.Schedule(routingOutageStart, func() { _ = cl.SetDown(routingVictim, true) })
	eng.Schedule(routingOutageEnd, func() { _ = cl.SetDown(routingVictim, false) })
	eng.RunUntil(sim.Time(routingHorizon))
	run := routingRun{
		Policy:      mode,
		Invocations: len(fns),
		Lost:        len(fns) - len(latencies),
		P50Millis:   durMillis(percentile(latencies, 0.50)),
		P99Millis:   durMillis(percentile(latencies, 0.99)),
		LoadCV:      round3(routedCV(cl.RoutedPerNode())),
	}
	if mode == "pull" {
		st := cl.PullStats()
		run.Requeues = st.Requeues
		run.Shed = st.Shed
	}
	if err := cl.Close(); err != nil {
		return routingRun{}, err
	}
	return run, nil
}

// routedCV is the coefficient of variation of per-worker routed counts.
func routedCV(routed []int) float64 {
	if len(routed) == 0 {
		return 0
	}
	var sum float64
	for _, r := range routed {
		sum += float64(r)
	}
	mean := sum / float64(len(routed))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, r := range routed {
		d := float64(r) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(routed))) / mean
}
