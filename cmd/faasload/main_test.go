package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"faasbatch/internal/platform"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// startGateway boots an in-process gateway with cheap versions of the
// demo functions the loader targets.
func startGateway(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.DispatchInterval = 20 * time.Millisecond
	cfg.ColdStart = 0
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatalf("platform.New: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	register := func(name string, h platform.Handler) {
		if err := p.Register(name, h); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	register("fib", func(_ context.Context, inv *platform.Invocation) (any, error) {
		var req struct {
			N int `json:"n"`
		}
		if err := json.Unmarshal(inv.Payload, &req); err != nil {
			return nil, err
		}
		return req.N, nil
	})
	register("s3upload", func(_ context.Context, inv *platform.Invocation) (any, error) {
		_, _, err := inv.Resources.Get("s3.client", "k", func() (any, int64, error) {
			return "client", 1, nil
		})
		return "ok", err
	})
	srv := httptest.NewServer(platform.NewHTTPHandler(p))
	t.Cleanup(srv.Close)
	return srv
}

// writeTrace writes a small trace CSV for the loader.
func writeTrace(t *testing.T, kind workload.Kind, n int) string {
	t.Helper()
	cfg := trace.DefaultBurstConfig(kind)
	cfg.N = n
	cfg.Span = 500 * time.Millisecond
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := trace.WriteCSV(f, tr); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return path
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}, os.Stdout); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run([]string{"-trace", "x.csv", "-speedup", "0"}, os.Stdout); err == nil {
		t.Error("zero speedup accepted")
	}
	if err := run([]string{"-trace", "/does/not/exist.csv"}, os.Stdout); err == nil {
		t.Error("missing trace file accepted")
	}
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestReplayCPUTraceEndToEnd(t *testing.T) {
	srv := startGateway(t)
	path := writeTrace(t, workload.CPUIntensive, 20)
	if err := run([]string{"-trace", path, "-url", srv.URL, "-speedup", "20"}, os.Stdout); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestReplayIOTraceWithLimit(t *testing.T) {
	srv := startGateway(t)
	path := writeTrace(t, workload.IO, 30)
	if err := run([]string{"-trace", path, "-url", srv.URL, "-speedup", "20", "-n", "10"}, os.Stdout); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestReplayAgainstDeadGatewayFails(t *testing.T) {
	path := writeTrace(t, workload.IO, 3)
	err := run([]string{"-trace", path, "-url", "http://127.0.0.1:1", "-speedup", "100", "-timeout", "1s"}, os.Stdout)
	if err == nil {
		t.Fatal("dead gateway accepted")
	}
}
