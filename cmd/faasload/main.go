// Command faasload replays a workload trace against a running faasgate
// over HTTP — the paper's client VM. It schedules each invocation at its
// trace offset (optionally time-compressed), collects the gateway's
// latency decompositions, and prints a percentile summary.
//
// Usage:
//
//	go run ./cmd/tracegen -kind cpu -n 200 -o cpu.csv
//	go run ./cmd/faasgate &
//	go run ./cmd/faasload -trace cpu.csv -url http://localhost:8080 -speedup 10
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"faasbatch/internal/httpapi"
	"faasbatch/internal/metrics"
	"faasbatch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faasload:", err)
		os.Exit(1)
	}
}

// loadResult is one completed request.
type loadResult struct {
	latency httpapi.Latency
	err     error
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("faasload", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "gateway base URL")
	tracePath := fs.String("trace", "", "trace CSV (from cmd/tracegen)")
	speedup := fs.Float64("speedup", 1.0, "time compression factor (10 = replay 10x faster)")
	limit := fs.Int("n", 0, "cap the number of invocations (0 = whole trace)")
	maxFib := fs.Int("max-fib", 30, "cap fib N so real CPU work stays tractable")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	if *speedup <= 0 {
		return fmt.Errorf("speedup must be positive, got %v", *speedup)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	tr, err := trace.ReadCSV(f, *tracePath)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if *limit > 0 {
		tr = tr.Head(*limit)
	}
	if tr.Len() == 0 {
		return fmt.Errorf("trace %s is empty", *tracePath)
	}

	client := &http.Client{Timeout: *timeout}
	results := make([]loadResult, tr.Len())
	var wg sync.WaitGroup
	start := time.Now()
	fmt.Fprintf(out, "replaying %d invocations against %s (speedup %.1fx) ...\n", tr.Len(), *url, *speedup)
	for i, inv := range tr.Invocations {
		i, inv := i, inv
		wg.Add(1)
		go func() {
			defer wg.Done()
			at := time.Duration(float64(inv.Offset) / *speedup)
			if sleep := at - time.Since(start); sleep > 0 {
				time.Sleep(sleep)
			}
			results[i] = invokeOnce(client, *url, inv, *maxFib)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return summarise(out, results, elapsed)
}

// invokeOnce fires one gateway request for a trace invocation, mapping
// fib entries to the gateway's fib function and everything else to
// s3upload.
func invokeOnce(client *http.Client, baseURL string, inv trace.Invocation, maxFib int) loadResult {
	var req httpapi.InvokeRequest
	if inv.FibN > 0 {
		n := inv.FibN
		if n > maxFib {
			n = maxFib
		}
		req.Fn = "fib"
		req.Payload = json.RawMessage(fmt.Sprintf(`{"n":%d}`, n))
	} else {
		req.Fn = "s3upload"
		req.Payload = json.RawMessage(fmt.Sprintf(`{"bucket":%q,"key":"obj"}`, inv.Fn))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return loadResult{err: fmt.Errorf("marshal: %w", err)}
	}
	resp, err := client.Post(baseURL+"/invoke", "application/json", bytes.NewReader(body))
	if err != nil {
		return loadResult{err: err}
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return loadResult{err: fmt.Errorf("status %d", resp.StatusCode)}
	}
	var out httpapi.InvokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return loadResult{err: fmt.Errorf("decode: %w", err)}
	}
	return loadResult{latency: out.Latency}
}

// summarise prints the latency percentile table and error count.
func summarise(out *os.File, results []loadResult, elapsed time.Duration) error {
	var totals, scheds, colds, execs []time.Duration
	errors := 0
	for _, r := range results {
		if r.err != nil {
			errors++
			continue
		}
		ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
		totals = append(totals, ms(r.latency.TotalMillis))
		scheds = append(scheds, ms(r.latency.SchedMillis))
		colds = append(colds, ms(r.latency.ColdMillis))
		execs = append(execs, ms(r.latency.ExecMillis))
	}
	fmt.Fprintf(out, "completed %d ok, %d errors in %v\n\n", len(totals), errors, elapsed.Round(time.Millisecond))
	if len(totals) == 0 {
		return fmt.Errorf("no successful invocations (%d errors)", errors)
	}
	tbl := metrics.NewTable("gateway latency decomposition",
		"component", "p50", "p90", "p99", "max")
	for _, row := range []struct {
		name string
		vals []time.Duration
	}{
		{"scheduling", scheds},
		{"cold-start", colds},
		{"execution", execs},
		{"total", totals},
	} {
		cdf := metrics.NewCDF(row.vals)
		tbl.AddRow(row.name,
			cdf.P(0.5).Round(time.Millisecond), cdf.P(0.9).Round(time.Millisecond),
			cdf.P(0.99).Round(time.Millisecond), cdf.Max().Round(time.Millisecond))
	}
	return tbl.Render(out)
}
