package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	// No args behaves like -list.
	if err := run(nil); err != nil {
		t.Fatalf("no args: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunInvalidScale(t *testing.T) {
	if err := run([]string{"-run", "fig9", "-scale", "0"}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := run([]string{"-run", "fig9", "-scale", "-1"}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleFigureTinyScale(t *testing.T) {
	for _, id := range []string{"fig9", "fig10", "fig4"} {
		if err := run([]string{"-run", id, "-scale", "0.02"}); err != nil {
			t.Fatalf("-run %s: %v", id, err)
		}
	}
}

func TestRunAllTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-run", "all", "-scale", "0.02", "-seed", "7"}); err != nil {
		t.Fatalf("-run all: %v", err)
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	dir := t.TempDir()
	out := dir + "/fig9.txt"
	if err := run([]string{"-run", "fig9", "-scale", "0.02", "-o", out}); err != nil {
		t.Fatalf("-o: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	if !strings.Contains(string(data), "duration range") {
		t.Fatalf("output file missing table:\n%s", data)
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run([]string{"-run", "fig9", "-o", "/no/such/dir/x.txt"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

func TestRunSummaryJSON(t *testing.T) {
	dir := t.TempDir()
	out := dir + "/summary.json"
	if err := run([]string{"-summary", "io", "-scale", "0.05", "-o", out}); err != nil {
		t.Fatalf("-summary: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var summaries []map[string]any
	if err := json.Unmarshal(data, &summaries); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(summaries) != 4 {
		t.Fatalf("got %d summaries, want 4", len(summaries))
	}
	if summaries[0]["policy"] != "vanilla" || summaries[3]["policy"] != "faasbatch" {
		t.Fatalf("policy order wrong: %v", summaries)
	}
}

func TestRunSummaryUnknownWorkload(t *testing.T) {
	if err := run([]string{"-summary", "gpu"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
