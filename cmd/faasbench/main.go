// Command faasbench regenerates every table and figure of the FaaSBatch
// evaluation (ICDCS 2023).
//
// Usage:
//
//	faasbench -list                 # list reproducible figures
//	faasbench -run fig11            # reproduce one figure
//	faasbench -run all              # reproduce everything
//	faasbench -run fig12 -scale 0.5 # run at half the paper's workload size
//	faasbench -run fig13 -seed 7    # change the deterministic seed
//
// All experiments run in virtual time on the discrete-event simulator; a
// full reproduction completes in seconds of wall-clock time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"faasbatch/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faasbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faasbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list reproducible figures")
	id := fs.String("run", "", "figure id to reproduce, or \"all\"")
	scale := fs.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
	seed := fs.Int64("seed", 13, "deterministic seed")
	outPath := fs.String("o", "", "also write the output to this file")
	summary := fs.String("summary", "", "emit a JSON per-policy summary for a workload (cpu or io) instead of tables")
	traceDir := fs.String("trace-dir", "", "write one Chrome trace-event JSON file per experiment run into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 {
		return fmt.Errorf("scale must be positive, got %v", *scale)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("create trace dir: %w", err)
		}
		experiment.SetTraceDir(*traceDir)
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "faasbench: close:", cerr)
			}
		}()
		out = io.MultiWriter(os.Stdout, f)
	}

	if *summary != "" {
		summaries, err := experiment.SummarizeWorkload(*summary, experiment.Options{Scale: *scale, Seed: *seed})
		if err != nil {
			return err
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summaries); err != nil {
			return fmt.Errorf("encode summary: %w", err)
		}
		return nil
	}

	if *list || *id == "" {
		fmt.Println("Reproducible figures (use -run <id>):")
		for _, f := range experiment.Figures() {
			fmt.Printf("  %-9s %s\n", f.ID, f.Title)
		}
		return nil
	}

	opts := experiment.Options{Scale: *scale, Seed: *seed}
	if *id == "all" {
		for _, f := range experiment.Figures() {
			if err := runOne(out, f, opts); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := experiment.FigureByID(*id)
	if !ok {
		return fmt.Errorf("unknown figure %q (try -list)", *id)
	}
	return runOne(out, f, opts)
}

func runOne(w io.Writer, f experiment.Figure, opts experiment.Options) error {
	start := time.Now()
	fmt.Fprintf(w, "== %s ==\n", f.Title)
	if err := f.Run(w, opts); err != nil {
		return fmt.Errorf("%s: %w", f.ID, err)
	}
	fmt.Fprintf(w, "-- %s done in %v --\n\n", f.ID, time.Since(start).Round(time.Millisecond))
	return nil
}
