package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"faasbatch/internal/platform"
)

func newGatePlatform(t *testing.T) *platform.Platform {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.DispatchInterval = 20_000_000 // 20ms
	cfg.ColdStart = 0
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatalf("platform.New: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	if err := registerDemoFunctions(p); err != nil {
		t.Fatalf("registerDemoFunctions: %v", err)
	}
	return p
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-mode", "nope"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestFibHandler(t *testing.T) {
	p := newGatePlatform(t)
	res, err := p.Invoke(context.Background(), "fib", json.RawMessage(`{"n":10}`))
	if err != nil {
		t.Fatalf("Invoke fib: %v", err)
	}
	m, ok := res.Value.(map[string]int)
	if !ok || m["fib"] != 55 {
		t.Fatalf("fib result = %#v, want fib:55", res.Value)
	}
	// Defaults and bounds.
	if _, err := p.Invoke(context.Background(), "fib", nil); err != nil {
		t.Fatalf("fib default: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "fib", json.RawMessage(`{"n":99}`)); err == nil {
		t.Fatal("oversized n accepted")
	}
	if _, err := p.Invoke(context.Background(), "fib", json.RawMessage(`{bad`)); err == nil {
		t.Fatal("bad payload accepted")
	}
}

func TestS3UploadHandlerUsesMultiplexer(t *testing.T) {
	p := newGatePlatform(t)
	first, err := p.Invoke(context.Background(), "s3upload", json.RawMessage(`{"bucket":"b","key":"k"}`))
	if err != nil {
		t.Fatalf("Invoke s3upload: %v", err)
	}
	m, ok := first.Value.(map[string]any)
	if !ok || m["url"] != "s3://b/k" {
		t.Fatalf("s3upload result = %#v", first.Value)
	}
	if m["clientCached"] != false {
		t.Fatal("first call should build the client")
	}
	second, err := p.Invoke(context.Background(), "s3upload", json.RawMessage(`{"bucket":"b","key":"k2"}`))
	if err != nil {
		t.Fatalf("second Invoke: %v", err)
	}
	m2, ok := second.Value.(map[string]any)
	if !ok || m2["clientCached"] != true {
		t.Fatalf("second call should hit the multiplexer: %#v", second.Value)
	}
	// Defaults.
	if _, err := p.Invoke(context.Background(), "s3upload", nil); err != nil {
		t.Fatalf("s3upload defaults: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "s3upload", json.RawMessage(`{bad`)); err == nil {
		t.Fatal("bad payload accepted")
	}
}

func TestEchoHandler(t *testing.T) {
	p := newGatePlatform(t)
	res, err := p.Invoke(context.Background(), "echo", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatalf("Invoke echo: %v", err)
	}
	raw, ok := res.Value.(json.RawMessage)
	if !ok || !strings.Contains(string(raw), `"x":1`) {
		t.Fatalf("echo result = %#v", res.Value)
	}
}

func TestServeUntilSignalShutdown(t *testing.T) {
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	p := newGatePlatform(t)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(srv, p, 10*time.Second) }()
	// Give the listener a moment, then deliver SIGTERM to ourselves.
	time.Sleep(50 * time.Millisecond)
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatalf("FindProcess: %v", err)
	}
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("Signal: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntilSignal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graceful shutdown never completed")
	}
}

func TestServeUntilSignalListenError(t *testing.T) {
	srv := &http.Server{Addr: "256.256.256.256:99999"}
	if err := serveUntilSignal(srv, nil, time.Second); err == nil {
		t.Fatal("bad address accepted")
	}
}
