package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"faasbatch/internal/platform"
	"faasbatch/internal/slo"
)

func newGatePlatform(t *testing.T) *platform.Platform {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.DispatchInterval = 20_000_000 // 20ms
	cfg.ColdStart = 0
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatalf("platform.New: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	if err := registerDemoFunctions(p); err != nil {
		t.Fatalf("registerDemoFunctions: %v", err)
	}
	return p
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-mode", "nope"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-slo", "fib"}); err == nil {
		t.Fatal("-slo without an objective key accepted")
	}
}

func TestParseSLO(t *testing.T) {
	obj, err := parseSLO("fib:p99_ms=250:max_burn=4")
	if err != nil {
		t.Fatal(err)
	}
	want := slo.Objective{Function: "fib", Quantile: 0.99, Target: 250 * time.Millisecond, MaxBurn: 4}
	if obj != want {
		t.Fatalf("parseSLO = %+v, want %+v", obj, want)
	}
	obj, err = parseSLO("echo:availability=0.999")
	if err != nil {
		t.Fatal(err)
	}
	want = slo.Objective{Function: "echo", Quantile: 0.999, MaxBurn: 2}
	if obj != want {
		t.Fatalf("parseSLO = %+v, want %+v", obj, want)
	}
	for _, bad := range []string{
		"",                          // no function
		"fib",                       // no objective key
		"fib:p99_ms=250:p50_ms=10",  // two objective keys
		"fib:p99_ms=-1",             // non-positive bound
		"fib:availability=1.5",      // quantile out of range
		"fib:p99_ms=250:max_burn=0", // non-positive burn bound
		"fib:p99_ms=abc",            // non-numeric value
		"fib:bogus=1",               // unknown key
	} {
		if _, err := parseSLO(bad); err == nil {
			t.Errorf("parseSLO(%q) succeeded, want error", bad)
		}
	}
}

func TestFibHandler(t *testing.T) {
	p := newGatePlatform(t)
	res, err := p.Invoke(context.Background(), "fib", json.RawMessage(`{"n":10}`))
	if err != nil {
		t.Fatalf("Invoke fib: %v", err)
	}
	m, ok := res.Value.(map[string]int)
	if !ok || m["fib"] != 55 {
		t.Fatalf("fib result = %#v, want fib:55", res.Value)
	}
	// Defaults and bounds.
	if _, err := p.Invoke(context.Background(), "fib", nil); err != nil {
		t.Fatalf("fib default: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "fib", json.RawMessage(`{"n":99}`)); err == nil {
		t.Fatal("oversized n accepted")
	}
	if _, err := p.Invoke(context.Background(), "fib", json.RawMessage(`{bad`)); err == nil {
		t.Fatal("bad payload accepted")
	}
}

func TestS3UploadHandlerUsesMultiplexer(t *testing.T) {
	p := newGatePlatform(t)
	first, err := p.Invoke(context.Background(), "s3upload", json.RawMessage(`{"bucket":"b","key":"k"}`))
	if err != nil {
		t.Fatalf("Invoke s3upload: %v", err)
	}
	m, ok := first.Value.(map[string]any)
	if !ok || m["url"] != "s3://b/k" {
		t.Fatalf("s3upload result = %#v", first.Value)
	}
	if m["clientCached"] != false {
		t.Fatal("first call should build the client")
	}
	second, err := p.Invoke(context.Background(), "s3upload", json.RawMessage(`{"bucket":"b","key":"k2"}`))
	if err != nil {
		t.Fatalf("second Invoke: %v", err)
	}
	m2, ok := second.Value.(map[string]any)
	if !ok || m2["clientCached"] != true {
		t.Fatalf("second call should hit the multiplexer: %#v", second.Value)
	}
	// Defaults.
	if _, err := p.Invoke(context.Background(), "s3upload", nil); err != nil {
		t.Fatalf("s3upload defaults: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "s3upload", json.RawMessage(`{bad`)); err == nil {
		t.Fatal("bad payload accepted")
	}
}

func TestEchoHandler(t *testing.T) {
	p := newGatePlatform(t)
	res, err := p.Invoke(context.Background(), "echo", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatalf("Invoke echo: %v", err)
	}
	raw, ok := res.Value.(json.RawMessage)
	if !ok || !strings.Contains(string(raw), `"x":1`) {
		t.Fatalf("echo result = %#v", res.Value)
	}
}

func TestServeUntilSignalShutdown(t *testing.T) {
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	p := newGatePlatform(t)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(srv, p, 10*time.Second) }()
	// Give the listener a moment, then deliver SIGTERM to ourselves.
	time.Sleep(50 * time.Millisecond)
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatalf("FindProcess: %v", err)
	}
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("Signal: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntilSignal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graceful shutdown never completed")
	}
}

func TestServeUntilSignalListenError(t *testing.T) {
	srv := &http.Server{Addr: "256.256.256.256:99999"}
	if err := serveUntilSignal(srv, nil, time.Second); err == nil {
		t.Fatal("bad address accepted")
	}
}
