// Command faasgate runs the live FaaSBatch gateway: a miniature serverless
// platform serving real Go functions over HTTP with window batching,
// inline-parallel expansion and resource multiplexing.
//
// Usage:
//
//	faasgate                       # FaaSBatch mode on :8080
//	faasgate -mode vanilla         # per-invocation containers
//	faasgate -interval 100ms       # dispatch window
//	faasgate -no-multiplex         # disable the Resource Multiplexer
//	faasgate -trace-out t.json     # record invocation traces (Perfetto)
//	faasgate -slo 'fib:p99_ms=250' # burn-rate gauges on /metrics
//	faasgate -pprof                # serve /debug/pprof/
//	faasgate -log-level debug      # structured logs on stderr
//	faasgate -worker-id w1         # fleet worker behind cmd/faasrouter:
//	                               # /healthz advertises identity+capacity
//
// Built-in demo functions:
//
//	fib       {"n": 30}        CPU-intensive Fibonacci
//	s3upload  {"bucket": "b"}  creates a (fake) S3 client via the
//	                           Resource Multiplexer, then "uploads"
//	echo      any payload      returns the payload
//
// Try:
//
//	curl -s localhost:8080/invoke -d '{"fn":"fib","payload":{"n":30}}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/hashmix"
	"faasbatch/internal/obs"
	"faasbatch/internal/platform"
	"faasbatch/internal/slo"
	"faasbatch/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faasgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faasgate", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	mode := fs.String("mode", "faasbatch", "scheduling mode: faasbatch or vanilla")
	interval := fs.Duration("interval", 200*time.Millisecond, "dispatch interval (faasbatch mode)")
	adaptive := fs.Bool("adaptive", false, "adaptive dispatch windows: size per-function windows from the arrival rate, capped at -interval")
	minInterval := fs.Duration("min-interval", 0, "adaptive window floor (0 = platform default)")
	maxGroup := fs.Int("max-group", 0, "early-close an adaptive window at this group size (0 = no cap)")
	coldStart := fs.Duration("coldstart", 100*time.Millisecond, "simulated container boot time")
	keepAlive := fs.Duration("keepalive", 2*time.Minute, "idle container keep-alive")
	noMux := fs.Bool("no-multiplex", false, "disable the Resource Multiplexer")
	invokeTimeout := fs.Duration("invoke-timeout", 0, "per-attempt handler deadline (0 = none)")
	maxRetries := fs.Int("max-retries", 0, "extra attempts for failed invocations, re-batched into later windows")
	retryBackoff := fs.Duration("retry-backoff", 0, "base retry delay, doubled per attempt (0 = next window)")
	drainTimeout := fs.Duration("drain-timeout", 0, "bound on Close draining in-flight work (0 = wait forever)")
	workerID := fs.String("worker-id", "", "fleet identity advertised in /healthz and invoke responses (worker mode, behind faasrouter)")
	capacity := fs.Int("capacity", 0, "concurrency capacity advertised in /healthz (0 = unbounded)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "one deadline covering HTTP drain and platform drain on SIGINT/SIGTERM")
	chaosRate := fs.Float64("chaos-rate", 0, "inject every fault kind at this rate in [0,1) (0 = off)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the fault schedule (same seed, same faults)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file here on exit (enables tracing)")
	traceSample := fs.Int("trace-sample", 1, "trace 1 in N invocations (with -trace-out)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	var slos []slo.Objective
	fs.Func("slo", "per-function SLO objective 'fn:p99_ms=250:max_burn=2' or 'fn:availability=0.999' (repeatable; exports faasbatch_slo_* gauges on /metrics)", func(v string) error {
		obj, err := parseSLO(v)
		if err != nil {
			return err
		}
		slos = append(slos, obj)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	cfg := platform.DefaultConfig()
	cfg.Logger = logger
	cfg.DispatchInterval = *interval
	cfg.AdaptiveDispatch = *adaptive
	cfg.MinInterval = *minInterval
	cfg.MaxGroupSize = *maxGroup
	cfg.ColdStart = *coldStart
	cfg.KeepAlive = *keepAlive
	cfg.Multiplex = !*noMux
	cfg.InvokeTimeout = *invokeTimeout
	cfg.MaxRetries = *maxRetries
	cfg.RetryBackoff = *retryBackoff
	cfg.DrainTimeout = *drainTimeout
	cfg.WorkerID = *workerID
	cfg.Capacity = *capacity
	cfg.SLOs = slos
	if *chaosRate < 0 {
		return fmt.Errorf("-chaos-rate must be in [0, 1), got %v", *chaosRate)
	}
	if *chaosRate > 0 {
		inj, err := chaos.New(chaos.Config{Seed: *chaosSeed, Rates: chaos.Uniform(*chaosRate)})
		if err != nil {
			return err
		}
		cfg.Chaos = inj
	}
	switch *mode {
	case "faasbatch":
		cfg.Mode = platform.ModeBatch
	case "vanilla":
		cfg.Mode = platform.ModeVanilla
	default:
		return fmt.Errorf("unknown mode %q (faasbatch or vanilla)", *mode)
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		if *traceSample < 1 {
			return fmt.Errorf("-trace-sample must be >= 1, got %d", *traceSample)
		}
		// Salt locally minted trace IDs with the worker identity so a
		// fleet's per-process traces never alias when stitched
		// (cmd/faasstitch); a lone gateway keeps unsalted IDs.
		var salt uint64
		if *workerID != "" {
			salt = hashmix.String("faasgate|" + *workerID)
		}
		tracer, err = obs.NewWallTracerWithSalt(0, *traceSample, salt)
		if err != nil {
			return err
		}
		cfg.Tracer = tracer
	}

	p, err := platform.New(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := p.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "faasgate: close:", cerr)
		}
		if tracer != nil {
			if terr := writeTraceFile(*traceOut, tracer); terr != nil {
				fmt.Fprintln(os.Stderr, "faasgate: trace:", terr)
			}
		}
	}()
	if err := registerDemoFunctions(p); err != nil {
		return err
	}
	// Registration is complete: /healthz may truthfully report ready.
	p.SetReady(true)

	fmt.Printf("faasgate: %s mode, interval %v, adaptive %v, multiplex %v, listening on %s\n",
		cfg.Mode, cfg.DispatchInterval, cfg.AdaptiveDispatch, cfg.Multiplex, *addr)
	handler := platform.NewHTTPHandler(p)
	if *pprofOn {
		handler = withPprof(handler)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return serveUntilSignal(srv, p, *shutdownTimeout)
}

// withPprof mounts the net/http/pprof handlers in front of the gateway
// mux. /debug/traces stays with the platform handler; only /debug/pprof/
// is intercepted.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", next)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// sloQuantiles maps the latency objective keys of -slo to their
// quantiles, mirroring the scenario engine's slo invariant keys.
var sloQuantiles = map[string]float64{
	"p50_ms": 0.50, "p90_ms": 0.90, "p95_ms": 0.95, "p99_ms": 0.99,
}

// parseSLO decodes one -slo value: a function name followed by
// colon-separated key=value settings, e.g. "fib:p99_ms=250:max_burn=2"
// or "echo:availability=0.999". Exactly one objective key (pXX_ms or
// availability) is required; max_burn defaults to 2.
func parseSLO(v string) (slo.Objective, error) {
	parts := strings.Split(v, ":")
	obj := slo.Objective{Function: parts[0], MaxBurn: 2}
	if obj.Function == "" {
		return obj, fmt.Errorf("-slo %q: needs a function name", v)
	}
	objectives := 0
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return obj, fmt.Errorf("-slo %q: bad setting %q, want key=value", v, part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return obj, fmt.Errorf("-slo %q: bad value %q: %v", v, val, err)
		}
		switch {
		case sloQuantiles[key] != 0:
			objectives++
			obj.Quantile = sloQuantiles[key]
			obj.Target = time.Duration(f * float64(time.Millisecond))
			if obj.Target <= 0 {
				return obj, fmt.Errorf("-slo %q: %s must be a positive millisecond bound", v, key)
			}
		case key == "availability":
			objectives++
			obj.Quantile = f
		case key == "max_burn":
			obj.MaxBurn = f
		default:
			return obj, fmt.Errorf("-slo %q: unknown key %q", v, key)
		}
	}
	if objectives != 1 {
		return obj, fmt.Errorf("-slo %q: needs exactly one objective key (p50_ms/p90_ms/p95_ms/p99_ms or availability), got %d", v, objectives)
	}
	if err := obj.Validate(); err != nil {
		return obj, fmt.Errorf("-slo %q: %v", v, err)
	}
	return obj, nil
}

// writeTraceFile exports the tracer's ring buffer to path.
func writeTraceFile(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("faasgate: wrote trace to %s (%d spans dropped)\n", path, tracer.Dropped())
	return nil
}

// serveUntilSignal runs the server until it fails or the process receives
// SIGINT/SIGTERM, then drains: readiness is flipped first (so the routing
// tier's prober sees the worker going away), and one context deadline
// covers both the HTTP drain and the platform drain — srv.Shutdown's
// cancellation propagates into the platform's CloseContext instead of
// racing two independent timeouts. p may be nil (plain servers in tests).
func serveUntilSignal(srv *http.Server, p *platform.Platform, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case sig := <-sigc:
		fmt.Printf("faasgate: %v, draining ...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if p != nil {
			p.SetReady(false)
		}
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if p != nil {
			if err := p.CloseContext(ctx); err != nil {
				return fmt.Errorf("shutdown: %w", err)
			}
		}
		return nil
	}
}

// registerDemoFunctions installs the gateway's built-in functions.
func registerDemoFunctions(p *platform.Platform) error {
	if err := p.Register("fib", fibHandler); err != nil {
		return err
	}
	if err := p.Register("s3upload", s3UploadHandler); err != nil {
		return err
	}
	return p.Register("echo", func(_ context.Context, inv *platform.Invocation) (any, error) {
		return json.RawMessage(inv.Payload), nil
	})
}

// fibHandler burns real CPU, like the paper's benchmark function.
func fibHandler(_ context.Context, inv *platform.Invocation) (any, error) {
	var req struct {
		N int `json:"n"`
	}
	if len(inv.Payload) > 0 {
		if err := json.Unmarshal(inv.Payload, &req); err != nil {
			return nil, fmt.Errorf("decode payload: %w", err)
		}
	}
	if req.N <= 0 {
		req.N = 30
	}
	if req.N > 40 {
		return nil, fmt.Errorf("n %d too large (max 40)", req.N)
	}
	return map[string]int{"n": req.N, "fib": workload.Fib(req.N)}, nil
}

// fakeS3Client stands in for a boto3 client: expensive to build, cheap to
// use.
type fakeS3Client struct {
	bucket string
}

// put simulates a blob upload.
func (c *fakeS3Client) put(key string) string {
	return fmt.Sprintf("s3://%s/%s", c.bucket, key)
}

// s3UploadHandler creates a client through the Resource Multiplexer
// (Listing 1) and performs an upload.
func s3UploadHandler(_ context.Context, inv *platform.Invocation) (any, error) {
	var req struct {
		Bucket string `json:"bucket"`
		Key    string `json:"key"`
	}
	if len(inv.Payload) > 0 {
		if err := json.Unmarshal(inv.Payload, &req); err != nil {
			return nil, fmt.Errorf("decode payload: %w", err)
		}
	}
	if req.Bucket == "" {
		req.Bucket = "demo-bucket"
	}
	if req.Key == "" {
		req.Key = "object"
	}
	client, cached, err := inv.Resources.Get("s3.client", req.Bucket, func() (any, int64, error) {
		// Construction cost, as in Fig. 4 (scaled down for the demo).
		time.Sleep(66 * time.Millisecond)
		return &fakeS3Client{bucket: req.Bucket}, 15 << 20, nil
	})
	if err != nil {
		return nil, err
	}
	s3, ok := client.(*fakeS3Client)
	if !ok {
		return nil, fmt.Errorf("unexpected client type %T", client)
	}
	return map[string]any{"url": s3.put(req.Key), "clientCached": cached}, nil
}
