package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"faasbatch/internal/obs"
)

// writeTrace exports one span from a fresh wall tracer into a file and
// returns the path plus the span's trace ID.
func writeTrace(t *testing.T, dir, name string, salt uint64) (string, uint64) {
	t.Helper()
	tr, err := obs.NewWallTracerWithSalt(64, 1, salt)
	if err != nil {
		t.Fatal(err)
	}
	id := tr.Begin()
	start := tr.Now()
	tr.Record(obs.Span{Trace: id, Name: obs.SpanExecution, Fn: "f", Start: start, End: start + time.Millisecond})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, id
}

func TestStitchTwoTraces(t *testing.T) {
	dir := t.TempDir()
	p1, id1 := writeTrace(t, dir, "router.json", 1<<32)
	p2, id2 := writeTrace(t, dir, "w1.json", 2<<32)

	var stdout, stderr bytes.Buffer
	outPath := filepath.Join(dir, "stitched.json")
	if code := run([]string{"-out", outPath, p1, "worker-1=" + p2}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	lanes := map[uint64]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Args["name"]] = true
		}
		if ev.Ph == "X" {
			lanes[ev.Tid] = true
		}
	}
	// The bare path names its source after the basename; name=path is
	// explicit.
	if !procs["router"] || !procs["worker-1"] {
		t.Fatalf("process names = %v, want router and worker-1", procs)
	}
	if !lanes[id1] || !lanes[id2] {
		t.Fatalf("trace lanes = %v, want %d and %d", lanes, id1, id2)
	}
}

func TestStitchErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("no args: exit %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"/does/not/exist.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "exist.json") {
		t.Fatalf("stderr %q does not name the missing file", stderr.String())
	}
}
