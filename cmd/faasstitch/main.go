// Command faasstitch merges per-process Chrome trace exports — one from
// the router (faasrouter -trace-out), one per worker (faasgate
// -trace-out), or a live faasstress run — into a single Perfetto file.
// Each input becomes its own process row; spans keep the distributed
// trace ID as their thread lane, so a propagated invocation reads
// router→forward(attempt=n)→worker scheduling/execution end to end.
//
// Usage:
//
//	go run ./cmd/faasstitch -out cluster.json router.json w1.json w2.json
//	go run ./cmd/faasstitch router=router.json worker-1=w1.json
//
// Each argument is either a path (the source is named after the file's
// basename, extension stripped) or an explicit name=path pair.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"faasbatch/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faasstitch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write the stitched trace here (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "faasstitch: at least one trace file is required")
		fs.Usage()
		return 1
	}

	var sources []obs.TraceSource
	for _, arg := range fs.Args() {
		name, path := splitArg(arg)
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "faasstitch:", err)
			return 1
		}
		defer f.Close()
		sources = append(sources, obs.TraceSource{Name: name, Reader: f})
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "faasstitch:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := obs.StitchChromeTraces(w, sources...); err != nil {
		fmt.Fprintln(stderr, "faasstitch:", err)
		return 1
	}
	return 0
}

// splitArg resolves an input argument to a (source name, file path)
// pair: "name=path" is explicit, a bare path names the source after its
// basename with the extension stripped.
func splitArg(arg string) (name, path string) {
	if i := strings.IndexByte(arg, '='); i > 0 {
		return arg[:i], arg[i+1:]
	}
	base := filepath.Base(arg)
	return strings.TrimSuffix(base, filepath.Ext(base)), arg
}
