package main

import (
	"os"
	"path/filepath"
	"testing"

	"faasbatch/internal/trace"
)

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	if err := run([]string{"-kind", "io", "-n", "40", "-o", out}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output missing: %v", err)
	}
	if err := run([]string{"-inspect", out}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func TestGenerateCPUToStdout(t *testing.T) {
	if err := run([]string{"-kind", "cpu", "-n", "5"}); err != nil {
		t.Fatalf("cpu to stdout: %v", err)
	}
}

func TestGenerateDaily(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "daily.csv")
	if err := run([]string{"-kind", "daily", "-o", out}); err != nil {
		t.Fatalf("daily: %v", err)
	}
}

func TestUnknownKind(t *testing.T) {
	if err := run([]string{"-kind", "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestInspectMissingFile(t *testing.T) {
	if err := run([]string{"-inspect", "/does/not/exist.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBadOutputPath(t *testing.T) {
	if err := run([]string{"-kind", "io", "-n", "5", "-o", "/no/such/dir/x.csv"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

func TestGenerateSteady(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "steady.csv")
	if err := run([]string{"-kind", "steady", "-n", "30", "-o", out}); err != nil {
		t.Fatalf("steady: %v", err)
	}
	if err := run([]string{"-inspect", out}); err != nil {
		t.Fatalf("inspect steady: %v", err)
	}
}

func TestConvertAzureWindow(t *testing.T) {
	dir := t.TempDir()
	// Build a small Azure-format file.
	azurePath := filepath.Join(dir, "azure.csv")
	row := trace.AzureFunctionRow{
		Owner: "o", App: "a", Function: "fnX", Trigger: "http",
		PerMinute: make([]int, 1440),
	}
	row.PerMinute[1330] = 25
	f, err := os.Create(azurePath)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := trace.WriteAzureInvocationsCSV(f, []trace.AzureFunctionRow{row}); err != nil {
		t.Fatalf("write azure: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	out := filepath.Join(dir, "replay.csv")
	if err := run([]string{"-from-azure", azurePath, "-o", out, "-kind", "io"}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	rf, err := os.Open(out)
	if err != nil {
		t.Fatalf("open replay: %v", err)
	}
	defer func() { _ = rf.Close() }()
	tr, err := trace.ReadCSV(rf, "replay")
	if err != nil {
		t.Fatalf("read replay: %v", err)
	}
	if tr.Len() != 25 {
		t.Fatalf("replay len = %d, want 25", tr.Len())
	}
}

func TestConvertAzureMissingFile(t *testing.T) {
	if err := run([]string{"-from-azure", "/nope.csv"}); err == nil {
		t.Fatal("missing azure file accepted")
	}
}
