// Command tracegen generates and inspects the synthetic Azure-derived
// workload traces used by the evaluation.
//
// Usage:
//
//	tracegen -kind cpu -o cpu.csv          # Fig. 10 burst, CPU-intensive
//	tracegen -kind io -n 400 -o io.csv     # I/O workload (first 400)
//	tracegen -kind daily -o day.csv        # Fig. 2 hot-function day
//	tracegen -inspect cpu.csv              # summarise an existing trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	kind := fs.String("kind", "cpu", "trace kind: cpu, io, steady or daily")
	n := fs.Int("n", 800, "number of invocations (cpu/io/steady)")
	span := fs.Duration("span", time.Minute, "trace span (cpu/io/steady)")
	seed := fs.Int64("seed", 13, "deterministic seed")
	out := fs.String("o", "", "output CSV path (default stdout)")
	inspect := fs.String("inspect", "", "summarise an existing trace CSV instead of generating")
	azure := fs.String("from-azure", "", "convert a window of an Azure Functions per-minute CSV into a replay trace")
	azureStart := fs.Int("azure-minute", 22*60+10, "window start minute of the day (paper: 22:10)")
	azureMinutes := fs.Int("azure-minutes", 1, "window length in minutes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		return inspectTrace(*inspect)
	}
	if *azure != "" {
		return convertAzure(*azure, *out, *kind, *seed, *azureStart, *azureMinutes)
	}

	var (
		tr  trace.Trace
		err error
	)
	switch *kind {
	case "cpu", "io":
		wk := workload.CPUIntensive
		if *kind == "io" {
			wk = workload.IO
		}
		cfg := trace.DefaultBurstConfig(wk)
		cfg.Seed = *seed
		cfg.N = *n
		cfg.Span = *span
		tr, err = trace.SynthesizeBurst(cfg)
	case "steady":
		cfg := trace.DefaultBurstConfig(workload.CPUIntensive)
		cfg.Seed = *seed
		cfg.N = *n
		cfg.Span = *span
		tr, err = trace.SynthesizeSteady(cfg)
	case "daily":
		cfg := trace.DefaultDailyConfig()
		cfg.Seed = *seed
		tr, err = trace.SynthesizeDaily(cfg)
	default:
		return fmt.Errorf("unknown kind %q (cpu, io or daily)", *kind)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "tracegen: close:", cerr)
			}
		}()
		w = f
	}
	if err := trace.WriteCSV(w, tr); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %d invocations (%s, span %v) to %s\n", tr.Len(), tr.Name, tr.Span, *out)
	}
	return nil
}

// convertAzure extracts a replay window from an Azure Functions
// per-minute CSV and writes it in the replayable trace format.
func convertAzure(path, out, kind string, seed int64, startMinute, minutes int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	rows, err := trace.ReadAzureInvocationsCSV(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	opts := trace.DefaultAzureReplayOptions()
	opts.StartMinute = startMinute
	opts.Minutes = minutes
	opts.Seed = seed
	if kind == "io" {
		opts.Kind = workload.IO
	}
	tr, err := trace.FromAzureRows(rows, opts)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		of, err := os.Create(out)
		if err != nil {
			return fmt.Errorf("create %s: %w", out, err)
		}
		defer func() {
			if cerr := of.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "tracegen: close:", cerr)
			}
		}()
		w = of
	}
	if err := trace.WriteCSV(w, tr); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("converted %d invocations from %s (minute %d, %d min) to %s\n",
			tr.Len(), path, startMinute, minutes, out)
	}
	return nil
}

// inspectTrace prints a summary of a trace CSV.
func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "tracegen: close:", cerr)
		}
	}()
	tr, err := trace.ReadCSV(f, path)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %s\n", path)
	fmt.Printf("invocations: %d over %v (%.1f/s mean)\n", tr.Len(), tr.Span, float64(tr.Len())/tr.Span.Seconds())
	fmt.Printf("functions: %v\n", tr.Functions())
	counts := tr.PerSecondCounts()
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	fmt.Printf("peak arrivals in one second: %d\n", peak)
	return nil
}
