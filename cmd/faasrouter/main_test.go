package main

import (
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestParseWorkers(t *testing.T) {
	specs, err := parseWorkers("w1=http://127.0.0.1:8081, w2=http://127.0.0.1:8082/")
	if err != nil {
		t.Fatalf("parseWorkers: %v", err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[0].ID != "w1" || specs[0].URL != "http://127.0.0.1:8081" {
		t.Fatalf("spec 0 = %+v", specs[0])
	}
	if specs[1].URL != "http://127.0.0.1:8082" {
		t.Fatalf("trailing slash kept: %+v", specs[1])
	}
	for _, bad := range []string{"", "   ", "w1", "=http://x", "w1=", ",,,"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{}, // missing -workers
		{"-workers", "w1=http://x", "-chaos-rate", "1.5"},
		{"-workers", "w1=http://x", "-chaos-rate", "-0.1"},
		{"-workers", "w1=http://x", "-log-level", "nope"},
		{"-workers", "bad-spec"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestServeUntilSignalShutdown(t *testing.T) {
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(srv, 10*time.Second) }()
	time.Sleep(50 * time.Millisecond)
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatalf("FindProcess: %v", err)
	}
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("Signal: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntilSignal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graceful shutdown never completed")
	}
}

func TestServeUntilSignalListenError(t *testing.T) {
	srv := &http.Server{Addr: "256.256.256.256:99999"}
	if err := serveUntilSignal(srv, time.Second); err == nil {
		t.Fatal("bad address accepted")
	}
}
