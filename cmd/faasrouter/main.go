// Command faasrouter runs the live FaaSBatch routing tier: a front door
// over N faasgate workers that preserves batching locality across the
// fleet with consistent-hash function affinity, health-checked worker
// membership, bounded-retry failover, and admission control.
//
// Usage:
//
//	faasgate   -addr :8081 -worker-id w1 &
//	faasgate   -addr :8082 -worker-id w2 &
//	faasrouter -workers 'w1=http://127.0.0.1:8081,w2=http://127.0.0.1:8082'
//
//	curl -s localhost:8090/invoke -d '{"fn":"fib","payload":{"n":30}}'
//	curl -s localhost:8090/workers
//	curl -s localhost:8090/stats
//
// Each function name hashes to one worker, so that function's whole
// dispatch windows keep batching inside one container even behind the
// router. A worker that exceeds its load bound spills to the
// least-loaded replica; a worker that stops answering probes is marked
// down and its ring segments reassign to the survivors.
//
// With -policy=pull the router instead queues invocations per function
// and late-binds each to the least-loaded worker with free capacity,
// trading hash affinity for load spread under skewed traffic; tune the
// queues with the -pull-* flags.
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flag"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/chaos"
	"faasbatch/internal/hashmix"
	"faasbatch/internal/obs"
	"faasbatch/internal/pullsched"
	"faasbatch/internal/router"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faasrouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faasrouter", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	workers := fs.String("workers", "", "comma-separated fleet, id=url pairs (e.g. 'w1=http://127.0.0.1:8081,w2=http://127.0.0.1:8082')")
	probeInterval := fs.Duration("probe-interval", time.Second, "worker health-probe period")
	probeTimeout := fs.Duration("probe-timeout", 500*time.Millisecond, "per-probe deadline")
	markDown := fs.Int("mark-down-after", 2, "consecutive failures before a worker is marked down")
	markUp := fs.Int("mark-up-after", 2, "consecutive probe successes before a down worker is marked up")
	vnodes := fs.Int("vnodes", router.DefaultVNodes, "virtual nodes per worker on the hash ring")
	loadBound := fs.Float64("load-bound", router.DefaultLoadBound, "bounded-load factor (>= 1); a loaded owner spills to the least-loaded replica")
	maxAttempts := fs.Int("max-attempts", 3, "forward attempts per invocation across ring replicas")
	retryBackoff := fs.Duration("retry-backoff", 10*time.Millisecond, "base forward retry delay, doubled per attempt")
	fnConcurrency := fs.Int("fn-concurrency", 0, "admission: concurrent forwards per function (0 = no admission control)")
	queueDepth := fs.Int("queue-depth", 64, "admission: queued invocations per function beyond the concurrency cap")
	queueWait := fs.Duration("queue-wait", time.Second, "admission: max queue wait before shedding with 429")
	forwardTimeout := fs.Duration("forward-timeout", 30*time.Second, "per-forward-attempt deadline")
	policy := fs.String("policy", router.PolicyHash, "scheduling policy: hash (consistent-hash push) or pull (worker-pull late binding)")
	pullQueueDepth := fs.Int("pull-queue-depth", 0, "pull: bounded per-function queue depth before shedding (0 = unbounded)")
	pullBatch := fs.Int("pull-batch", 0, "pull: max grants handed to one worker per pull (0 = default)")
	pullCapacity := fs.Int("pull-capacity", 0, "pull: concurrent leases one worker absorbs (0 = default)")
	pullShards := fs.Int("pull-shards", 0, "pull: function-queue shard count (0 = default)")
	pullLeaseBudget := fs.Duration("pull-lease-budget", 0, "pull: lease age reclaimed by the probe-tick sweep (0 = off; forward timeouts already bound live leases)")
	scrapeTimeout := fs.Duration("scrape-timeout", 2*time.Second, "per-worker deadline when federating /cluster/metrics and /cluster/stats")
	autoscaleOn := fs.Bool("autoscale", false, "enable the predictive autoscaling control loop over the registered fleet")
	asMin := fs.Int("min-workers", 0, "autoscale: ready-worker floor (0 enables scale-to-zero)")
	asMax := fs.Int("max-workers", 0, "autoscale: fleet ceiling (0 = all registered workers)")
	asTarget := fs.Float64("target-rate", 10, "autoscale: demand (invocations/second) one ready worker absorbs")
	asHeadroom := fs.Float64("headroom", 0, "autoscale: fractional spare capacity above the forecast (0 = default 0.2)")
	asEval := fs.Duration("eval-interval", 0, "autoscale: control-loop tick period (0 = default 500ms)")
	asWarmup := fs.Duration("warmup", 0, "autoscale: provision-to-ready pre-warm delay")
	asDrainBudget := fs.Duration("drain-budget", 0, "autoscale: modelled drain duration (0 = 2x eval-interval)")
	asScaleDownAfter := fs.Int("scale-down-after", 0, "autoscale: over-provisioned ticks before draining (0 = default 3)")
	asScaleToZero := fs.Duration("scale-to-zero-after", 0, "autoscale: idle time before the fleet retires entirely (0 = 10x eval-interval)")
	chaosRate := fs.Float64("chaos-rate", 0, "inject worker-failure faults at this rate in [0,1) (0 = off)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the fault schedule")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file here on exit (enables router tracing)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "HTTP drain deadline on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := parseWorkers(*workers)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	cfg := router.Config{
		Workers:        specs,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		MarkDownAfter:  *markDown,
		MarkUpAfter:    *markUp,
		VNodes:         *vnodes,
		LoadBound:      *loadBound,
		MaxAttempts:    *maxAttempts,
		RetryBackoff:   *retryBackoff,
		FnConcurrency:  *fnConcurrency,
		QueueDepth:     *queueDepth,
		QueueWait:      *queueWait,
		ForwardTimeout: *forwardTimeout,
		ScrapeTimeout:  *scrapeTimeout,
		Policy:         *policy,
		Logger:         logger,
	}
	pullTuned := *pullQueueDepth != 0 || *pullBatch != 0 || *pullCapacity != 0 ||
		*pullShards != 0 || *pullLeaseBudget != 0
	if pullTuned && *policy != router.PolicyPull {
		return fmt.Errorf("-pull-* flags require -policy=%s (got -policy=%s)", router.PolicyPull, *policy)
	}
	if *policy == router.PolicyPull {
		cfg.Pull = &pullsched.Config{
			Shards:      *pullShards,
			BatchSize:   *pullBatch,
			Capacity:    *pullCapacity,
			QueueDepth:  *pullQueueDepth,
			LeaseBudget: *pullLeaseBudget,
		}
	}
	if *autoscaleOn {
		cfg.Autoscale = &autoscale.Config{
			MinWorkers:       *asMin,
			MaxWorkers:       *asMax,
			TargetPerWorker:  *asTarget,
			Headroom:         *asHeadroom,
			EvalInterval:     *asEval,
			Warmup:           *asWarmup,
			DrainBudget:      *asDrainBudget,
			ScaleDownAfter:   *asScaleDownAfter,
			ScaleToZeroAfter: *asScaleToZero,
		}
	}
	if *chaosRate < 0 || *chaosRate >= 1 {
		return fmt.Errorf("-chaos-rate must be in [0, 1), got %v", *chaosRate)
	}
	if *chaosRate > 0 {
		inj, err := chaos.New(chaos.Config{
			Seed:  *chaosSeed,
			Rates: map[chaos.Kind]float64{chaos.WorkerFailure: *chaosRate},
		})
		if err != nil {
			return err
		}
		cfg.Chaos = inj
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		// Salt locally minted trace IDs with the router identity so the
		// router's lanes never alias a worker's in a stitched trace
		// (workers salt with their -worker-id).
		tracer, err = obs.NewWallTracerWithSalt(0, 1, hashmix.String("faasrouter"))
		if err != nil {
			return err
		}
		cfg.Tracer = tracer
	}
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := rt.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "faasrouter: close:", cerr)
		}
		if tracer != nil {
			if terr := writeTraceFile(*traceOut, tracer); terr != nil {
				fmt.Fprintln(os.Stderr, "faasrouter: trace:", terr)
			}
		}
	}()
	rt.Start()
	fmt.Printf("faasrouter: %d workers, policy %s, vnodes %d, load bound %.2f, listening on %s\n",
		len(specs), rt.Policy().Name(), *vnodes, *loadBound, *addr)
	if cfg.Autoscale != nil {
		fmt.Printf("faasrouter: autoscale on, min %d, target %.1f inv/s per worker\n",
			cfg.Autoscale.MinWorkers, *asTarget)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           router.NewHTTPHandler(rt),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return serveUntilSignal(srv, *shutdownTimeout)
}

// parseWorkers parses the -workers flag: comma-separated id=url pairs.
func parseWorkers(s string) ([]router.WorkerSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-workers is required (e.g. 'w1=http://127.0.0.1:8081,w2=http://127.0.0.1:8082')")
	}
	var specs []router.WorkerSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad worker %q, want id=url", part)
		}
		specs = append(specs, router.WorkerSpec{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-workers lists no workers")
	}
	return specs, nil
}

// writeTraceFile exports the tracer's ring buffer to path.
func writeTraceFile(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("faasrouter: wrote trace to %s (%d spans dropped)\n", path, tracer.Dropped())
	return nil
}

// serveUntilSignal runs the server until it fails or the process
// receives SIGINT/SIGTERM, then drains in-flight requests.
func serveUntilSignal(srv *http.Server, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case sig := <-sigc:
		fmt.Printf("faasrouter: %v, draining ...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}
