package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScenario(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.yaml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tinyScenario = `
scenario: tiny
seed: 5
fleet:
  workers: 2
  zones: 2
phases:
  - name: p
    duration: 5s
    arrival: poisson
    rate: 20
    mix:
      - fn: fib
        instances: 4
invariants:
  - no-lost-invocations
`

func TestRunWritesReportAndHTML(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	html := filepath.Join(dir, "report.html")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-input", writeScenario(t, tinyScenario),
		"-out", out, "-html", html, "-repeat", "2",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	if !bytes.Contains(raw, []byte(`"scenario": "tiny"`)) {
		t.Error("report does not carry the scenario name")
	}
	if h, err := os.ReadFile(html); err != nil || !bytes.Contains(h, []byte("tiny")) {
		t.Errorf("html summary missing or empty: %v", err)
	}
	if !strings.Contains(stderr.String(), "invariants held") {
		t.Errorf("summary line missing: %s", stderr.String())
	}
}

func TestRunReportsToStdoutByDefault(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-input", writeScenario(t, tinyScenario), "-q"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte(`"body_sha256"`)) {
		t.Error("stdout does not contain the report")
	}
}

// TestInvariantViolationExitsTwo: a scenario engineered to fail its
// declared invariant must write the report and exit 2.
func TestInvariantViolationExitsTwo(t *testing.T) {
	src := `
scenario: doomed
seed: 6
fleet:
  workers: 2
  zones: 2
dispatch:
  max-retries: -1
phases:
  - name: p
    duration: 5s
    arrival: poisson
    rate: 40
    mix:
      - fn: fib
        instances: 4
    chaos:
      container-crash: 0.5
invariants:
  - zero-failures
`
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-input", writeScenario(t, src), "-out", out}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "INVARIANT VIOLATED") {
		t.Errorf("violation not reported: %s", stderr.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Error("report must still be written on invariant violation")
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Errorf("missing -input: exit %d, want 1", code)
	}
	if code := run([]string{"-input", "no-such-file.yaml"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-input", writeScenario(t, tinyScenario), "-mode", "dream"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad mode: exit %d, want 1", code)
	}
	if code := run([]string{"-input", writeScenario(t, "scenario: [broken\n")}, &stdout, &stderr); code != 1 {
		t.Errorf("unparseable scenario: exit %d, want 1", code)
	}
	if code := run([]string{"-input", writeScenario(t, tinyScenario), "-repeat", "0"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad repeat: exit %d, want 1", code)
	}
}

// TestCommittedScenariosParse keeps the shipped scenario files loadable.
func TestCommittedScenariosParse(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("scenarios glob: %v (%d files)", err, len(files))
	}
	var stdout, stderr bytes.Buffer
	for _, f := range files {
		// Parsing happens before any run; a seed override plus an
		// unknown-mode error path keeps this cheap... instead just parse
		// via the run path with a bogus mode so no simulation runs but
		// the file must have parsed first.
		stderr.Reset()
		if code := run([]string{"-input", f, "-mode", "bogus"}, &stdout, &stderr); code != 1 {
			t.Errorf("%s: exit %d", f, code)
		}
		if !strings.Contains(stderr.String(), "unknown -mode") {
			t.Errorf("%s: failed before mode check (parse error?): %s", f, stderr.String())
		}
	}
}
