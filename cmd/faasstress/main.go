// Command faasstress executes a declarative stress scenario (YAML)
// against the FaaSBatch stack: a simulated worker fleet for large-scale
// deterministic runs, or the in-process live platform for small smoke
// scenarios. It writes a versioned JSON report (optionally an HTML
// summary), enforces the scenario's invariants, and can replay the same
// seed multiple times to prove the run reproducible.
//
// Usage:
//
//	go run ./cmd/faasstress -input scenarios/smoke.yaml
//	go run ./cmd/faasstress -input scenarios/fleet-1m.yaml -out report.json -html report.html
//	go run ./cmd/faasstress -input scenarios/smoke.yaml -repeat 2   # determinism check
//	go run ./cmd/faasstress -input scenarios/slo-burn.yaml -no-chaos  # fault-free baseline
//	go run ./cmd/faasstress -input scenarios/smoke.yaml -mode live -trace-out trace.json
//
// -no-chaos strips every phase's fault-injection rates, so a chaos
// scenario's SLO invariants can be proven to hold on the fault-free
// baseline. -trace-out writes a Chrome trace of the run (live mode only:
// the simulator carries no span instrumentation).
//
// Exit codes: 0 success; 1 usage or execution error; 2 an invariant was
// violated (the report is still written); 3 a -repeat rerun diverged
// from the first run (determinism failure).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"faasbatch/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faasstress", flag.ContinueOnError)
	fs.SetOutput(stderr)
	input := fs.String("input", "", "scenario YAML (required)")
	out := fs.String("out", "", "write the JSON report here (default: stdout)")
	htmlOut := fs.String("html", "", "also write an HTML summary here")
	repeat := fs.Int("repeat", 1, "run the scenario N times and require byte-identical report bodies")
	mode := fs.String("mode", "", "override the scenario's mode (sim or live)")
	seed := fs.Int64("seed", 0, "override the scenario's seed (0 keeps the file's)")
	noChaos := fs.Bool("no-chaos", false, "strip every phase's fault-injection rates (baseline run of a chaos scenario)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace of the run here (live mode only)")
	quiet := fs.Bool("q", false, "suppress the progress summary on stderr")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *input == "" {
		fmt.Fprintln(stderr, "faasstress: -input is required")
		fs.Usage()
		return 1
	}
	if *repeat < 1 {
		fmt.Fprintln(stderr, "faasstress: -repeat must be at least 1")
		return 1
	}
	src, err := os.ReadFile(*input)
	if err != nil {
		fmt.Fprintln(stderr, "faasstress:", err)
		return 1
	}
	sc, err := scenario.Parse(src)
	if err != nil {
		fmt.Fprintln(stderr, "faasstress:", err)
		return 1
	}
	switch *mode {
	case "":
	case "sim":
		sc.Mode = scenario.ModeSim
	case "live":
		sc.Mode = scenario.ModeLive
	default:
		fmt.Fprintf(stderr, "faasstress: unknown -mode %q\n", *mode)
		return 1
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *noChaos {
		sc.DisableChaos()
	}
	if !*quiet {
		fmt.Fprintf(stderr, "faasstress: scenario %q (%s), seed %d, %d workers, %d phase(s), ~%d invocations expected\n",
			sc.Name, sc.Mode, sc.Seed, sc.Fleet.Workers, len(sc.Phases), sc.ExpectedInvocations())
	}

	runner := scenario.NewRunner()
	var firstBody *scenario.Body
	var firstRaw []byte
	var traceBuf bytes.Buffer
	for i := 0; i < *repeat; i++ {
		// Only the first run is traced: reruns exist to prove report
		// determinism, and tracing is a live-mode observation, not part of
		// the report body.
		if *traceOut != "" && i == 0 {
			runner.SetTraceSink(&traceBuf)
		} else {
			runner.SetTraceSink(nil)
		}
		started := time.Now()
		body, err := runner.RunBody(sc)
		if err != nil {
			fmt.Fprintln(stderr, "faasstress:", err)
			return 1
		}
		raw, err := body.Marshal()
		if err != nil {
			fmt.Fprintln(stderr, "faasstress:", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stderr, "faasstress: run %d/%d: %d invocations, makespan %d ms (wall %v)\n",
				i+1, *repeat, body.Totals.Submitted, body.MakespanMillis, time.Since(started).Round(time.Millisecond))
		}
		if i == 0 {
			firstBody, firstRaw = body, raw
			continue
		}
		if !bytes.Equal(firstRaw, raw) {
			fmt.Fprintf(stderr, "faasstress: determinism failure: run %d produced a different report body (%d vs %d bytes)\n",
				i+1, len(firstRaw), len(raw))
			return 3
		}
	}

	report, err := scenario.NewReport(*firstBody, time.Now())
	if err != nil {
		fmt.Fprintln(stderr, "faasstress:", err)
		return 1
	}
	raw, err := report.Marshal()
	if err != nil {
		fmt.Fprintln(stderr, "faasstress:", err)
		return 1
	}
	if *out == "" {
		if _, err := stdout.Write(raw); err != nil {
			fmt.Fprintln(stderr, "faasstress:", err)
			return 1
		}
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(stderr, "faasstress:", err)
		return 1
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, traceBuf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, "faasstress:", err)
			return 1
		}
	}
	if *htmlOut != "" {
		var buf bytes.Buffer
		if err := report.WriteHTML(&buf); err != nil {
			fmt.Fprintln(stderr, "faasstress:", err)
			return 1
		}
		if err := os.WriteFile(*htmlOut, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, "faasstress:", err)
			return 1
		}
	}

	violated := firstBody.Violations()
	for _, inv := range violated {
		fmt.Fprintf(stderr, "faasstress: INVARIANT VIOLATED: %s: %s\n", inv.Name, inv.Detail)
	}
	if !*quiet {
		ok := len(firstBody.Invariants) - len(violated)
		fmt.Fprintf(stderr, "faasstress: %d/%d invariants held; body sha256 %s\n",
			ok, len(firstBody.Invariants), report.BodySHA256)
	}
	if len(violated) > 0 {
		return 2
	}
	return 0
}
