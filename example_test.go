package faasbatch_test

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	faasbatch "faasbatch"
	"faasbatch/internal/metrics"
)

// ExampleNewPlatform shows the live runtime: register a function, invoke
// it, and read the latency decomposition.
func ExampleNewPlatform() {
	cfg := faasbatch.DefaultPlatformConfig()
	cfg.DispatchInterval = 10 * time.Millisecond
	cfg.ColdStart = 0
	p, err := faasbatch.NewPlatform(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer func() { _ = p.Close() }()

	_ = p.Register("double", func(_ context.Context, inv *faasbatch.Invocation) (any, error) {
		var n int
		if err := json.Unmarshal(inv.Payload, &n); err != nil {
			return nil, err
		}
		return 2 * n, nil
	})

	res, err := p.Invoke(context.Background(), "double", json.RawMessage("21"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Value)
	// Output: 42
}

// ExampleRunExperiment reproduces a miniature version of the paper's I/O
// evaluation: FaaSBatch needs far fewer containers than Vanilla on the
// same burst, and the multiplexer keeps execution in the 10–100 ms band.
func ExampleRunExperiment() {
	cfg := faasbatch.DefaultBurstConfig(faasbatch.IO)
	cfg.N = 100
	cfg.Span = 10 * time.Second
	tr, err := faasbatch.SynthesizeBurst(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, policy := range []faasbatch.PolicyKind{faasbatch.PolicyVanilla, faasbatch.PolicyFaaSBatch} {
		res, err := faasbatch.RunExperiment(faasbatch.ExperimentConfig{
			Policy: policy,
			Trace:  tr,
			Seed:   1,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		execP50 := res.CDF(metrics.Execution).P(0.5)
		fmt.Printf("%-9s containers=%d exec-p50=%v\n", res.Policy, res.TotalContainers, execP50)
	}
	// Output:
	// vanilla   containers=72 exec-p50=83ms
	// faasbatch containers=2 exec-p50=17ms
}

// ExampleReplayCluster scales FaaSBatch across a fleet of worker nodes.
func ExampleReplayCluster() {
	cfg := faasbatch.DefaultBurstConfig(faasbatch.CPUIntensive)
	cfg.N = 60
	cfg.Span = 5 * time.Second
	tr, err := faasbatch.SynthesizeBurst(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := faasbatch.ReplayCluster(faasbatch.ClusterReplayConfig{
		Cluster: faasbatch.ClusterConfig{Nodes: 2, Balancing: faasbatch.FnAffinity},
		Trace:   tr,
		Seed:    1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d invocations on %d nodes, balancing %v\n", len(res.Records), res.Nodes, res.Balancing)
	// Output: 60 invocations on 2 nodes, balancing fn-affinity
}
