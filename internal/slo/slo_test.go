package slo

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func mustTracker(t *testing.T, win Windows, objs ...Objective) *Tracker {
	t.Helper()
	tr, err := NewTracker(win, objs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testWindows() Windows {
	return Windows{
		FastShort: 60 * time.Millisecond,
		FastLong:  240 * time.Millisecond,
		SlowShort: 480 * time.Millisecond,
		SlowLong:  960 * time.Millisecond,
	}
}

func TestObjectiveValidate(t *testing.T) {
	good := Objective{Function: "f1", Quantile: 0.99, Target: 250 * time.Millisecond, MaxBurn: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Objective{
		{Quantile: 0.99, MaxBurn: 2},                             // no function
		{Function: "f1", Quantile: 0, MaxBurn: 2},                // quantile low
		{Function: "f1", Quantile: 1, MaxBurn: 2},                // quantile high
		{Function: "f1", Quantile: 0.99, MaxBurn: 0},             // no burn threshold
		{Function: "f1", Quantile: 0.99, MaxBurn: 2, Target: -1}, // negative target
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
		}
	}
	if _, err := NewTracker(testWindows(), []Objective{bad[0]}); err == nil {
		t.Fatal("NewTracker must reject invalid objectives")
	}
	if _, err := NewTracker(Windows{FastShort: time.Hour, FastLong: time.Minute, SlowShort: time.Hour, SlowLong: time.Hour}, nil); err == nil {
		t.Fatal("NewTracker must reject an unordered window ladder")
	}
}

func TestScaledWindows(t *testing.T) {
	win := ScaledWindows(10 * time.Second)
	if win.SlowLong != 10*time.Second {
		t.Fatalf("SlowLong = %v, want the full span 10s", win.SlowLong)
	}
	// Geometry preserved: 5m/72h of 10s ≈ 11.57ms, 1h/72h ≈ 138.9ms,
	// 6h/72h ≈ 833ms.
	if win.FastShort < 11*time.Millisecond || win.FastShort > 12*time.Millisecond {
		t.Fatalf("FastShort = %v, want ≈11.6ms", win.FastShort)
	}
	if err := win.validate(); err != nil {
		t.Fatal(err)
	}
	// Tiny spans floor at 1ms and stay ordered.
	tiny := ScaledWindows(10 * time.Millisecond)
	if err := tiny.validate(); err != nil {
		t.Fatal(err)
	}
	if def := ScaledWindows(0); def != DefaultWindows() {
		t.Fatalf("ScaledWindows(0) = %+v, want the default ladder", def)
	}
}

func TestHealthyTrafficDoesNotBreach(t *testing.T) {
	tr := mustTracker(t, testWindows(),
		Objective{Function: "f1", Quantile: 0.99, Target: 250 * time.Millisecond, MaxBurn: 2})
	for i := 0; i < 2000; i++ {
		now := time.Duration(i) * 500 * time.Microsecond // spans the whole ladder
		tr.Observe("f1", 5*time.Millisecond, false, now)
	}
	st := tr.Evaluate(time.Second)
	if len(st) != 1 {
		t.Fatalf("got %d statuses, want 1", len(st))
	}
	if st[0].Breached || st[0].FastBurn != 0 || st[0].SlowBurn != 0 {
		t.Fatalf("healthy traffic breached: %+v", st[0])
	}
	if st[0].Total != 2000 || st[0].Bad != 0 {
		t.Fatalf("counts = %d/%d, want 2000/0", st[0].Total, st[0].Bad)
	}
}

func TestSlowTrafficBreaches(t *testing.T) {
	tr := mustTracker(t, testWindows(),
		Objective{Function: "f1", Quantile: 0.99, Target: 10 * time.Millisecond, MaxBurn: 2})
	// Every invocation misses the 10ms target: bad fraction 1.0 against
	// a 1% budget is a burn of 100 on every window.
	for i := 0; i < 2000; i++ {
		now := time.Duration(i) * 500 * time.Microsecond
		tr.Observe("f1", 50*time.Millisecond, false, now)
	}
	st := tr.Evaluate(time.Second)
	if !st[0].Breached {
		t.Fatalf("tail-latency storm did not breach: %+v", st[0])
	}
	if st[0].MaxFastBurn < 2 && st[0].MaxSlowBurn < 2 {
		t.Fatalf("latched maxima below threshold: %+v", st[0])
	}
	if st[0].Bad != 2000 {
		t.Fatalf("bad = %d, want 2000", st[0].Bad)
	}
}

func TestFailuresBurnWithoutTarget(t *testing.T) {
	tr := mustTracker(t, testWindows(),
		Objective{Function: "f1", Quantile: 0.9, MaxBurn: 1.5})
	for i := 0; i < 1000; i++ {
		now := time.Duration(i) * time.Millisecond
		// 50% failures against a 10% budget: burn 5 ≥ 1.5.
		tr.Observe("f1", time.Millisecond, i%2 == 0, now)
	}
	st := tr.Evaluate(time.Second)
	if !st[0].Breached {
		t.Fatalf("failure storm did not breach availability SLO: %+v", st[0])
	}
}

func TestBriefSpikeDoesNotBreachLongWindow(t *testing.T) {
	// One bad bucket inside an otherwise healthy long run: the short
	// window spikes, but the pair burn is min(short, long), so the long
	// window vetoes the alert.
	tr := mustTracker(t, testWindows(),
		Objective{Function: "f1", Quantile: 0.9, Target: 10 * time.Millisecond, MaxBurn: 9})
	for i := 0; i < 960; i++ {
		now := time.Duration(i) * time.Millisecond
		bad := i >= 500 && i < 505 // 5ms blip
		lat := time.Millisecond
		if bad {
			lat = 50 * time.Millisecond
		}
		tr.Observe("f1", lat, false, now)
	}
	st := tr.Evaluate(960 * time.Millisecond)
	if st[0].Breached {
		t.Fatalf("5ms blip breached a long-window SLO: %+v", st[0])
	}
	if st[0].Bad != 5 {
		t.Fatalf("bad = %d, want 5", st[0].Bad)
	}
}

func TestBreachLatches(t *testing.T) {
	tr := mustTracker(t, testWindows(),
		Objective{Function: "f1", Quantile: 0.99, Target: time.Millisecond, MaxBurn: 2})
	// Saturate the budget early ...
	for i := 0; i < 600; i++ {
		tr.Observe("f1", 10*time.Millisecond, false, time.Duration(i)*time.Millisecond)
	}
	mid := tr.Evaluate(600 * time.Millisecond)
	if !mid[0].Breached {
		t.Fatalf("burn storm did not breach: %+v", mid[0])
	}
	// ... then recover completely. The breach must stay latched even
	// after current burns fall back to zero.
	for i := 0; i < 5000; i++ {
		tr.Observe("f1", 100*time.Microsecond, false, 600*time.Millisecond+time.Duration(i)*time.Millisecond)
	}
	end := tr.Evaluate(6 * time.Second)
	if !end[0].Breached {
		t.Fatal("breach did not latch across recovery")
	}
	if end[0].FastBurn != 0 {
		t.Fatalf("recovered fast burn = %v, want 0", end[0].FastBurn)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Status {
		tr := mustTracker(t, ScaledWindows(2*time.Second),
			Objective{Function: "f1", Quantile: 0.95, Target: 20 * time.Millisecond, MaxBurn: 2},
			Objective{Function: "f2", Quantile: 0.99, MaxBurn: 4})
		for i := 0; i < 4000; i++ {
			now := time.Duration(i) * 500 * time.Microsecond
			tr.Observe("f1", time.Duration(i%40)*time.Millisecond, false, now)
			tr.Observe("f2", time.Millisecond, i%97 == 0, now)
		}
		return tr.Evaluate(2 * time.Second)
	}
	a, b := run(), run()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("status counts %d/%d, want 2/2", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestUnknownFunctionIgnored(t *testing.T) {
	tr := mustTracker(t, testWindows(),
		Objective{Function: "f1", Quantile: 0.99, MaxBurn: 2})
	tr.Observe("other", time.Second, true, 0)
	st := tr.Evaluate(time.Second)
	if st[0].Total != 0 {
		t.Fatalf("unknown function leaked into the objective: %+v", st[0])
	}
}

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.Observe("f1", time.Second, true, 0)
	if st := tr.Evaluate(time.Second); st != nil {
		t.Fatalf("nil Evaluate = %v, want nil", st)
	}
	var buf bytes.Buffer
	tr.WriteMetrics(&buf, "faasbatch", time.Second)
	if buf.Len() != 0 {
		t.Fatalf("nil WriteMetrics wrote %q", buf.String())
	}
}

func TestWriteMetrics(t *testing.T) {
	tr := mustTracker(t, testWindows(),
		Objective{Function: "f1", Quantile: 0.99, Target: time.Millisecond, MaxBurn: 2},
		Objective{Function: "f0", Quantile: 0.9, MaxBurn: 3})
	for i := 0; i < 600; i++ {
		tr.Observe("f1", 10*time.Millisecond, false, time.Duration(i)*time.Millisecond)
		tr.Observe("f0", time.Microsecond, false, time.Duration(i)*time.Millisecond)
	}
	var buf bytes.Buffer
	tr.WriteMetrics(&buf, "faasbatch", 600*time.Millisecond)
	doc := buf.String()
	for _, want := range []string{
		"# TYPE faasbatch_slo_fast_burn gauge",
		"# TYPE faasbatch_slo_slow_burn gauge",
		"# TYPE faasbatch_slo_breached gauge",
		`faasbatch_slo_breached{fn="f1",quantile="0.99"} 1`,
		`faasbatch_slo_breached{fn="f0",quantile="0.9"} 0`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, doc)
		}
	}
	// Sorted output: f0 series precede f1 series.
	if strings.Index(doc, `fn="f0"`) > strings.Index(doc, `fn="f1"`) {
		t.Error("metrics are not sorted by function")
	}
}
