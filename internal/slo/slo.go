// Package slo evaluates per-function service-level objectives with
// multi-window burn rates, the alerting discipline from the Google SRE
// workbook: an error budget (1 − quantile) burns as invocations miss
// their latency target or fail outright, and a breach fires only when
// both a short and a long window agree the burn is too fast — the short
// window makes alerts responsive, the long window keeps one bad second
// from paging. Two window pairs run side by side: a fast pair (5m/1h at
// production scale) catching sharp regressions and a slow pair (6h/3d)
// catching slow leaks. ScaledWindows compresses the whole ladder onto a
// simulated run's time span so the same engine judges a ten-second
// faasstress scenario and a three-day production window identically.
//
// The tracker is deterministic by construction: state advances only in
// Observe, driven by the caller's clock (virtual time in sim runs), and
// breaches latch at bucket boundaries — evaluation cadence cannot
// change the verdict, so seeded scenario replays reproduce byte-equal
// SLO results.
package slo

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Objective is one function's service-level objective: at most
// (1 − Quantile) of invocations may be bad, where bad means failed or —
// when Target is set — slower than Target.
type Objective struct {
	// Function names the function the objective applies to.
	Function string
	// Quantile in (0, 1) defines the error budget 1 − Quantile
	// (0.99 → 1% of invocations may be bad).
	Quantile float64
	// Target is the latency objective; an invocation slower than Target
	// is bad. Zero means availability-only (failures alone burn budget).
	Target time.Duration
	// MaxBurn is the burn-rate threshold: a breach latches when a window
	// pair sustains burn ≥ MaxBurn (1.0 = exactly exhausting the budget
	// over the window).
	MaxBurn float64
}

// Validate reports whether the objective is well-formed.
func (o Objective) Validate() error {
	if o.Function == "" {
		return fmt.Errorf("slo: objective needs a function")
	}
	if o.Quantile <= 0 || o.Quantile >= 1 {
		return fmt.Errorf("slo: quantile must be in (0, 1), got %v", o.Quantile)
	}
	if o.MaxBurn <= 0 {
		return fmt.Errorf("slo: max burn must be positive, got %v", o.MaxBurn)
	}
	if o.Target < 0 {
		return fmt.Errorf("slo: negative latency target %v", o.Target)
	}
	return nil
}

// Windows is the evaluation window ladder: a fast short/long pair and a
// slow short/long pair.
type Windows struct {
	FastShort time.Duration
	FastLong  time.Duration
	SlowShort time.Duration
	SlowLong  time.Duration
}

// DefaultWindows is the production-scale ladder (5m/1h and 6h/3d).
func DefaultWindows() Windows {
	return Windows{
		FastShort: 5 * time.Minute,
		FastLong:  time.Hour,
		SlowShort: 6 * time.Hour,
		SlowLong:  72 * time.Hour,
	}
}

// ScaledWindows compresses the default ladder so the slow-long window
// equals span: a simulated run of any length gets the same four-window
// geometry production uses. Every window keeps a 1ms floor.
func ScaledWindows(span time.Duration) Windows {
	def := DefaultWindows()
	if span <= 0 {
		return def
	}
	scale := float64(span) / float64(def.SlowLong)
	clamp := func(d time.Duration) time.Duration {
		out := time.Duration(float64(d) * scale)
		if out < time.Millisecond {
			out = time.Millisecond
		}
		return out
	}
	return Windows{
		FastShort: clamp(def.FastShort),
		FastLong:  clamp(def.FastLong),
		SlowShort: clamp(def.SlowShort),
		SlowLong:  clamp(def.SlowLong),
	}
}

// validate checks the ladder's ordering.
func (w Windows) validate() error {
	if w.FastShort <= 0 || w.FastLong <= 0 || w.SlowShort <= 0 || w.SlowLong <= 0 {
		return fmt.Errorf("slo: windows must be positive, got %+v", w)
	}
	if w.FastShort > w.FastLong || w.FastLong > w.SlowShort || w.SlowShort > w.SlowLong {
		return fmt.Errorf("slo: windows must be ordered fast-short ≤ fast-long ≤ slow-short ≤ slow-long, got %+v", w)
	}
	return nil
}

// bucket accumulates one time slice's outcomes.
type bucket struct {
	total int64
	bad   int64
}

// series is one objective's ring of buckets.
type series struct {
	obj    Objective
	budget float64

	buckets []bucket
	cur     int64 // absolute index of the bucket now falls in

	total, bad int64 // lifetime

	maxFast, maxSlow float64
	breached         bool
}

// Status is one objective's evaluation.
type Status struct {
	Function string
	Quantile float64
	Target   time.Duration
	MaxBurn  float64
	// FastBurn and SlowBurn are each window pair's current burn — the
	// minimum of the pair's short- and long-window burns, so both
	// windows must agree before the value crosses MaxBurn.
	FastBurn float64
	SlowBurn float64
	// MaxFastBurn and MaxSlowBurn are the highest pair burns ever
	// latched at a bucket boundary (or final evaluation).
	MaxFastBurn float64
	MaxSlowBurn float64
	// Total and Bad count lifetime observations.
	Total int64
	Bad   int64
	// Breached latches true once either pair sustained MaxBurn.
	Breached bool
}

// Tracker evaluates a set of objectives over observed invocations. All
// methods are nil-safe: a nil tracker is the disabled tracker.
type Tracker struct {
	mu    sync.Mutex
	win   Windows
	width time.Duration
	byFn  map[string][]*series
	all   []*series
}

// NewTracker builds a tracker with the given window ladder.
func NewTracker(win Windows, objectives []Objective) (*Tracker, error) {
	if err := win.validate(); err != nil {
		return nil, err
	}
	// Bucket width: fine enough that the fast-short window spans several
	// buckets, coarse enough that the whole slow-long span stays small.
	width := win.FastShort / 6
	if width < time.Millisecond {
		width = time.Millisecond
	}
	n := int(win.SlowLong/width) + 2
	t := &Tracker{win: win, width: width, byFn: make(map[string][]*series)}
	for _, obj := range objectives {
		if err := obj.Validate(); err != nil {
			return nil, err
		}
		s := &series{obj: obj, budget: 1 - obj.Quantile, buckets: make([]bucket, n)}
		t.byFn[obj.Function] = append(t.byFn[obj.Function], s)
		t.all = append(t.all, s)
	}
	return t, nil
}

// Observe records one invocation outcome for fn at time now on the
// caller's clock (offset from run start). Unknown functions are
// ignored; a nil tracker ignores everything.
func (t *Tracker) Observe(fn string, latency time.Duration, failed bool, now time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.byFn[fn] {
		idx := int64(now / t.width)
		t.roll(s, idx)
		bad := failed || (s.obj.Target > 0 && latency > s.obj.Target)
		b := &s.buckets[idx%int64(len(s.buckets))]
		b.total++
		s.total++
		if bad {
			b.bad++
			s.bad++
		}
	}
}

// roll advances s's current bucket to idx, zeroing the slices in
// between. Each boundary crossing evaluates and latches burn at the
// boundary, so the verdict depends only on the observation stream.
func (t *Tracker) roll(s *series, idx int64) {
	if idx <= s.cur {
		return
	}
	steps := idx - s.cur
	if steps > int64(len(s.buckets)) {
		// The clock jumped past a full ring revolution: latch once at
		// the last populated boundary, then clear everything.
		t.latch(s, (s.cur+1)*int64(t.width))
		for i := range s.buckets {
			s.buckets[i] = bucket{}
		}
		s.cur = idx
		return
	}
	for s.cur < idx {
		t.latch(s, (s.cur+1)*int64(t.width))
		s.cur++
		s.buckets[s.cur%int64(len(s.buckets))] = bucket{}
	}
}

// latch evaluates both window pairs at time nowNanos and records maxima
// and breach state.
func (t *Tracker) latch(s *series, nowNanos int64) {
	now := time.Duration(nowNanos)
	fast, slow := t.pairBurns(s, now)
	if fast > s.maxFast {
		s.maxFast = fast
	}
	if slow > s.maxSlow {
		s.maxSlow = slow
	}
	if fast >= s.obj.MaxBurn || slow >= s.obj.MaxBurn {
		s.breached = true
	}
}

// pairBurns computes the fast and slow pair burns at now. A pair's burn
// is the minimum of its short and long window burns.
func (t *Tracker) pairBurns(s *series, now time.Duration) (fast, slow float64) {
	fast = min2(t.windowBurn(s, now, t.win.FastShort), t.windowBurn(s, now, t.win.FastLong))
	slow = min2(t.windowBurn(s, now, t.win.SlowShort), t.windowBurn(s, now, t.win.SlowLong))
	return fast, slow
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// windowBurn computes bad-fraction / budget over the window ending at
// now. An empty window burns nothing.
func (t *Tracker) windowBurn(s *series, now time.Duration, window time.Duration) float64 {
	hi := int64(now / t.width)
	lo := int64((now - window) / t.width)
	if now < window {
		lo = 0
	}
	oldest := s.cur - int64(len(s.buckets)) + 1
	if lo < oldest {
		lo = oldest
	}
	if lo < 0 {
		lo = 0
	}
	if hi > s.cur {
		hi = s.cur
	}
	var total, bad int64
	for i := lo; i <= hi; i++ {
		b := s.buckets[i%int64(len(s.buckets))]
		total += b.total
		bad += b.bad
	}
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / s.budget
}

// Evaluate rolls every series forward to now, latches, and reports each
// objective's status in objective declaration order. Nil trackers
// report nothing.
func (t *Tracker) Evaluate(now time.Duration) []Status {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Status, 0, len(t.all))
	for _, s := range t.all {
		t.roll(s, int64(now/t.width))
		t.latch(s, int64(now))
		fast, slow := t.pairBurns(s, now)
		out = append(out, Status{
			Function:    s.obj.Function,
			Quantile:    s.obj.Quantile,
			Target:      s.obj.Target,
			MaxBurn:     s.obj.MaxBurn,
			FastBurn:    fast,
			SlowBurn:    slow,
			MaxFastBurn: s.maxFast,
			MaxSlowBurn: s.maxSlow,
			Total:       s.total,
			Bad:         s.bad,
			Breached:    s.breached,
		})
	}
	return out
}

// formatBurn renders a burn value for the exposition.
func formatBurn(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetrics emits the tracker's state as Prometheus gauges under the
// component prefix: {prefix}_slo_fast_burn, {prefix}_slo_slow_burn and
// {prefix}_slo_breached, labeled by function and quantile. Output is
// sorted for determinism. Nil trackers emit nothing.
func (t *Tracker) WriteMetrics(w io.Writer, prefix string, now time.Duration) {
	statuses := t.Evaluate(now)
	if len(statuses) == 0 {
		return
	}
	sort.SliceStable(statuses, func(i, j int) bool {
		if statuses[i].Function != statuses[j].Function {
			return statuses[i].Function < statuses[j].Function
		}
		return statuses[i].Quantile < statuses[j].Quantile
	})
	emit := func(suffix, help string, value func(Status) string) {
		name := prefix + "_slo_" + suffix
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		for _, st := range statuses {
			fmt.Fprintf(w, "%s{fn=%q,quantile=%q} %s\n",
				name, st.Function, strconv.FormatFloat(st.Quantile, 'g', -1, 64), value(st))
		}
	}
	emit("fast_burn", "Current fast-pair (short/long window) SLO burn rate.",
		func(st Status) string { return formatBurn(st.FastBurn) })
	emit("slow_burn", "Current slow-pair (short/long window) SLO burn rate.",
		func(st Status) string { return formatBurn(st.SlowBurn) })
	emit("breached", "1 once a window pair has sustained the objective's max burn rate.",
		func(st Status) string {
			if st.Breached {
				return "1"
			}
			return "0"
		})
}
