package core

import (
	"testing"
	"time"

	"faasbatch/internal/fnruntime"
	"faasbatch/internal/node"
	"faasbatch/internal/policy"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

func TestBusyContainerAcceptsLaterGroups(t *testing.T) {
	// A long-running batch occupies the only container; the next window's
	// group must join it as extra threads (no second container, no cold
	// start for the joiners).
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	long := fibSpec(t, 34)  // ~2.1s body
	short := fibSpec(t, 34) // same function name
	specs := []workload.Spec{long, short}
	// Second arrives after the first batch is expanded (boot ~500ms done
	// by t=800ms) but long before it completes.
	offsets := []time.Duration{0, 900 * time.Millisecond}
	recs := runAll(t, env, f, specs, offsets)
	if got := env.Node.TotalCreated(); got != 1 {
		t.Fatalf("TotalCreated = %d, want 1 (join busy container)", got)
	}
	coldFree := 0
	for _, r := range recs {
		if r.Cold == 0 {
			coldFree++
		}
	}
	if coldFree != 1 {
		t.Fatalf("%d invocations warm, want exactly the joiner", coldFree)
	}
}

func TestMaxPendingCreatesAttachesGroups(t *testing.T) {
	// With the scale-out bound at 1, windows that close during the boot
	// attach to the single in-flight creation instead of spawning more
	// containers.
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.Interval = 100 * time.Millisecond
	cfg.MaxPendingCreates = 1
	f := newScheduler(t, env, cfg)
	spec := fibSpec(t, 25)
	// Boot takes ~500ms; five windows' worth of arrivals land during it.
	specs := make([]workload.Spec, 5)
	offsets := make([]time.Duration, 5)
	for i := range specs {
		specs[i] = spec
		offsets[i] = time.Duration(i) * 100 * time.Millisecond
	}
	recs := runAll(t, env, f, specs, offsets)
	if got := env.Node.TotalCreated(); got != 1 {
		t.Fatalf("TotalCreated = %d, want 1 under MaxPendingCreates=1", got)
	}
	// Attached groups' cold share shrinks with later dispatch: the group
	// dispatched last waited the least.
	var first, last time.Duration
	for _, r := range recs {
		if r.ID == 0 {
			first = r.Cold
		}
		if r.ID == 4 {
			last = r.Cold
		}
	}
	if first == 0 || last == 0 {
		t.Fatalf("boot-sharing invocations must carry cold time: first=%v last=%v", first, last)
	}
	if last >= first {
		t.Fatalf("later group's cold share %v not smaller than first %v", last, first)
	}
}

func TestUnboundedCreatesSpawnPerWindowDuringBoot(t *testing.T) {
	// The inverse of the attach test: with a high bound, each window that
	// closes while everything is booting creates its own container.
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.Interval = 100 * time.Millisecond
	cfg.MaxPendingCreates = 100
	f := newScheduler(t, env, cfg)
	spec := fibSpec(t, 25)
	specs := make([]workload.Spec, 5)
	offsets := make([]time.Duration, 5)
	for i := range specs {
		specs[i] = spec
		offsets[i] = time.Duration(i) * 100 * time.Millisecond
	}
	runAll(t, env, f, specs, offsets)
	if got := env.Node.TotalCreated(); got < 3 {
		t.Fatalf("TotalCreated = %d, want several (one per boot-era window)", got)
	}
}

func TestWarmContainerPreferredOverBusyJoin(t *testing.T) {
	// When an idle keep-alive container exists, a new group must take it
	// instead of piling onto a busy one.
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	long := fibSpec(t, 34)
	quick := long                     // same function identity ...
	quick.Work = 2 * time.Millisecond // ... but a fast body
	// Window 1: a quick batch creates container A and finishes fast ->
	// A parks warm. Window 2 (t=1.2s): a long batch takes A (warm).
	// Window 3 (t=1.6s): another quick group; A is busy with the long
	// batch, no warm container -> it joins A (total containers stays 1).
	specs := []workload.Spec{quick, long, quick}
	offsets := []time.Duration{0, 1200 * time.Millisecond, 1600 * time.Millisecond}
	recs := runAll(t, env, f, specs, offsets)
	if got := env.Node.TotalCreated(); got != 1 {
		t.Fatalf("TotalCreated = %d, want 1", got)
	}
	warm := 0
	for _, r := range recs {
		if r.Cold == 0 {
			warm++
		}
	}
	if warm != 2 {
		t.Fatalf("warm invocations = %d, want 2 (the warm take and the join)", warm)
	}
}

func TestStatsTrackGroups(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	spec := fibSpec(t, 22)
	// Two windows with 3 and 2 invocations.
	specs := make([]workload.Spec, 5)
	offsets := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond,
		1100 * time.Millisecond, 1110 * time.Millisecond}
	for i := range specs {
		specs[i] = spec
	}
	runAll(t, env, f, specs, offsets)
	st := f.Stats()
	if st.Groups != 2 || st.Submitted != 5 {
		t.Fatalf("stats = %+v, want 2 groups / 5 submitted", st)
	}
	if st.MaxGroupSize != 3 {
		t.Fatalf("MaxGroupSize = %d, want 3", st.MaxGroupSize)
	}
	if got := st.AvgGroupSize(); got != 2.5 {
		t.Fatalf("AvgGroupSize = %v, want 2.5", got)
	}
	var zero Stats
	if zero.AvgGroupSize() != 0 {
		t.Fatal("zero stats AvgGroupSize should be 0")
	}
}

func TestOwnedListPrunesParkedContainers(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	spec := fibSpec(t, 20)
	recs := runAll(t, env, f, []workload.Spec{spec}, []time.Duration{0})
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	// The container parked; busyContainer must prune it and return nil.
	if c := f.busyContainer(spec.Name); c != nil {
		t.Fatalf("busyContainer returned parked container %v", c.ID())
	}
	if len(f.owned[spec.Name]) != 0 {
		t.Fatalf("owned list not pruned: %d entries", len(f.owned[spec.Name]))
	}
}

func TestAttachedGroupsUseMultiplexer(t *testing.T) {
	// Attached groups expand on the same container, so they share its
	// multiplexer cache with the creator group.
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.Interval = 100 * time.Millisecond
	cfg.MaxPendingCreates = 1
	f := newScheduler(t, env, cfg)
	spec := workload.IOSpec("s3func")
	specs := []workload.Spec{spec, spec, spec}
	offsets := []time.Duration{0, 100 * time.Millisecond, 200 * time.Millisecond}
	runAll(t, env, f, specs, offsets)
	if got := env.Runner.Stats().ClientsBuilt; got != 1 {
		t.Fatalf("ClientsBuilt = %d, want 1 across creator+attached groups", got)
	}
	if env.Node.TotalCreated() != 1 {
		t.Fatalf("TotalCreated = %d, want 1", env.Node.TotalCreated())
	}
}

func TestInvocationDoneExactlyOnceAcrossJoinPaths(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.Interval = 50 * time.Millisecond
	cfg.MaxPendingCreates = 2
	f, err := New(env, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := fibSpec(t, 28)
	const n = 30
	counts := make(map[int64]int)
	for i := 0; i < n; i++ {
		i := i
		env.Eng.Schedule(time.Duration(i*40)*time.Millisecond, func() {
			inv := fnruntime.NewInvocation(int64(i), spec, env.Eng.Now())
			f.Submit(inv, func(done *fnruntime.Invocation) { counts[done.ID]++ })
		})
	}
	total := 0
	for total < n {
		if !env.Eng.Step() {
			t.Fatalf("drained with %d/%d", total, n)
		}
		total = 0
		for _, c := range counts {
			total += c
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("invocation %d completed %d times", id, c)
		}
	}
	_ = node.AcquireOptions{} // keep the node import for the test package
}

func TestPrewarmValidation(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.Prewarm = true
	cfg.PrewarmHorizon = 0
	if _, err := New(env, cfg); err == nil {
		t.Fatal("prewarm horizon 0 accepted")
	}
	cfg.PrewarmHorizon = -time.Second
	if _, err := New(env, cfg); err == nil {
		t.Fatal("negative prewarm horizon accepted")
	}
}

// prewarmEnv builds an env whose keep-alive is shorter than the burst
// period, so recurring bursts lose their containers between arrivals —
// the regime pre-warming targets.
func prewarmEnv(t *testing.T) policy.Env {
	t.Helper()
	eng := sim.New(1)
	cfg := node.DefaultConfig()
	cfg.Cores = 8
	cfg.CreateConcurrency = 2
	cfg.CreateCPUWork = 100 * time.Millisecond
	cfg.ContainerInitCPUWork = 0
	cfg.ColdStartLatency = 400 * time.Millisecond
	cfg.KeepAlive = 2 * time.Second
	n, err := node.New(eng, cfg)
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	return policy.Env{Eng: eng, Node: n, Runner: fnruntime.NewRunner(eng)}
}

func TestPrewarmKeepsRecurringBurstsWarm(t *testing.T) {
	// Bursts every 5s with a 2s keep-alive: without prewarming each burst
	// cold-starts; with it, the activity horizon re-provisions capacity
	// as soon as eviction strikes, so later bursts run warm.
	run := func(prewarm bool) (coldCount int, prewarms int64) {
		env := prewarmEnv(t)
		cfg := DefaultConfig()
		cfg.Prewarm = prewarm
		cfg.PrewarmHorizon = 30 * time.Second
		f, err := New(env, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		spec := fibSpec(t, 22)
		const perBurst, bursts = 4, 5
		specs := make([]workload.Spec, 0, perBurst*bursts)
		offsets := make([]time.Duration, 0, perBurst*bursts)
		for b := 0; b < bursts; b++ {
			for i := 0; i < perBurst; i++ {
				specs = append(specs, spec)
				offsets = append(offsets, time.Duration(b)*5*time.Second+time.Duration(i)*10*time.Millisecond)
			}
		}
		recs := runAll(t, env, f, specs, offsets)
		for _, r := range recs {
			if r.Cold > 0 {
				coldCount++
			}
		}
		return coldCount, f.Stats().Prewarms
	}
	offCold, _ := run(false)
	onCold, prewarms := run(true)
	if prewarms == 0 {
		t.Fatal("prewarming never fired")
	}
	if onCold >= offCold {
		t.Fatalf("prewarm cold count %d not below baseline %d", onCold, offCold)
	}
}

func TestPrewarmForgetsIdleFunctions(t *testing.T) {
	// After the horizon passes with no arrivals, prewarming stops
	// re-provisioning and the node drains to zero containers.
	env := prewarmEnv(t)
	cfg := DefaultConfig()
	cfg.Prewarm = true
	cfg.PrewarmHorizon = 3 * time.Second
	f, err := New(env, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := fibSpec(t, 22)
	recs := runAll(t, env, f, []workload.Spec{spec}, []time.Duration{0})
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	// Long idle stretch: the horizon expires, prewarmed capacity evicts,
	// and nothing new is created.
	env.Eng.RunUntil(env.Eng.Now().Add(30 * time.Second))
	if env.Node.LiveContainers() != 0 {
		t.Fatalf("LiveContainers = %d after idle horizon, want 0", env.Node.LiveContainers())
	}
	created := env.Node.TotalCreated()
	env.Eng.RunUntil(env.Eng.Now().Add(10 * time.Second))
	if env.Node.TotalCreated() != created {
		t.Fatalf("idle prewarming kept creating: %d -> %d", created, env.Node.TotalCreated())
	}
}
