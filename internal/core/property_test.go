package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/policy"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

// Property tests for the Invoke Mapper invariants. Each trial draws a
// random workload (function count, arrival pattern, body shapes) and a
// random fault mix, replays it, and checks the invariants that hold for
// every workload:
//
//  1. every submitted invocation completes exactly once — even when its
//     containers crash repeatedly, it finishes (possibly as a failure),
//     and never twice;
//  2. groups never mix function identities — a container only ever
//     executes the function it was provisioned for;
//  3. Stats.Submitted == completed successes + failures at quiescence.

// propertyTrial is one randomly drawn workload + fault mix.
type propertyTrial struct {
	seed      int64
	functions int
	invs      int
	span      time.Duration
	crashRate float64
	bootRate  float64
}

// drawTrial samples a trial from rng.
func drawTrial(rng *rand.Rand) propertyTrial {
	return propertyTrial{
		seed:      rng.Int63(),
		functions: 1 + rng.Intn(5),
		invs:      10 + rng.Intn(90),
		span:      time.Duration(1+rng.Intn(3)) * time.Second,
		crashRate: rng.Float64() * 0.3,
		bootRate:  rng.Float64() * 0.3,
	}
}

// runTrial replays one trial to quiescence and returns the records plus
// the scheduler's final stats.
func runTrial(t *testing.T, tr propertyTrial) ([]metrics.Record, Stats) {
	t.Helper()
	eng := sim.New(tr.seed)
	inj, err := chaos.New(chaos.Config{
		Seed: tr.seed,
		Rates: map[chaos.Kind]float64{
			chaos.ContainerCrash: tr.crashRate,
			chaos.BootFailure:    tr.bootRate,
		},
	})
	if err != nil {
		t.Fatalf("chaos.New: %v", err)
	}
	ncfg := node.DefaultConfig()
	ncfg.Cores = 4
	ncfg.ContainerInitCPUWork = 0
	ncfg.ColdStartLatency = 200 * time.Millisecond
	ncfg.KeepAlive = time.Hour
	ncfg.Chaos = inj
	n, err := node.New(eng, ncfg)
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	runner := fnruntime.NewRunner(eng)
	runner.SetChaos(inj)
	env := policy.Env{Eng: eng, Node: n, Runner: runner}
	f := newScheduler(t, env, DefaultConfig())

	rng := rand.New(rand.NewSource(tr.seed + 1))
	specs := make([]workload.Spec, tr.invs)
	offsets := make([]time.Duration, tr.invs)
	for i := range specs {
		specs[i] = workload.Spec{
			Name:   fmt.Sprintf("fn%d", rng.Intn(tr.functions)),
			Work:   time.Duration(rng.Intn(20)) * time.Millisecond,
			IOWait: time.Duration(rng.Intn(50)) * time.Millisecond,
		}
		offsets[i] = time.Duration(rng.Float64() * float64(tr.span))
	}

	completions := make(map[int64]int)
	var recs []metrics.Record
	for i := range specs {
		i := i
		eng.Schedule(offsets[i], func() {
			inv := fnruntime.NewInvocation(int64(i), specs[i], eng.Now())
			f.Submit(inv, func(done *fnruntime.Invocation) {
				completions[done.ID]++
				recs = append(recs, done.Rec)
			})
		})
	}
	for len(recs) < len(specs) {
		if !eng.Step() {
			t.Fatalf("engine drained with %d/%d complete (crash=%.2f boot=%.2f seed=%d)",
				len(recs), len(specs), tr.crashRate, tr.bootRate, tr.seed)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for id, nc := range completions {
		if nc != 1 {
			t.Fatalf("invocation %d completed %d times (seed=%d)", id, nc, tr.seed)
		}
	}
	return recs, f.Stats()
}

// checkInvariants asserts the Invoke Mapper invariants over one replay.
func checkInvariants(t *testing.T, tr propertyTrial, recs []metrics.Record, st Stats) {
	t.Helper()
	// (1) exactly once: one record per submitted invocation.
	if int64(len(recs)) != st.Submitted {
		t.Errorf("records %d != submitted %d (seed=%d)", len(recs), st.Submitted, tr.seed)
	}
	// (3) submitted == successes + failures.
	var failed int64
	for _, r := range recs {
		if r.Failed {
			failed++
		}
	}
	if failed != st.Failed {
		t.Errorf("failed records %d != Stats.Failed %d (seed=%d)", failed, st.Failed, tr.seed)
	}
	if st.Submitted != (int64(len(recs))-failed)+failed {
		t.Errorf("submitted %d != completed %d + failed %d (seed=%d)",
			st.Submitted, int64(len(recs))-failed, failed, tr.seed)
	}
	// (2) group purity: a container executes exactly one function.
	fnOf := make(map[string]string)
	for _, r := range recs {
		if r.Container == "" {
			continue // never reached a container body
		}
		if prev, ok := fnOf[r.Container]; ok && prev != r.Fn {
			t.Errorf("container %s mixed functions %s and %s (seed=%d)",
				r.Container, prev, r.Fn, tr.seed)
		}
		fnOf[r.Container] = r.Fn
	}
	// Failures only ever appear when faults were actually injected.
	if tr.crashRate == 0 && tr.bootRate == 0 && failed > 0 {
		t.Errorf("%d failures without any injected faults (seed=%d)", failed, tr.seed)
	}
}

func TestPropertyInvokeMapperInvariants(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(20250805))
	for i := 0; i < trials; i++ {
		tr := drawTrial(rng)
		recs, st := runTrial(t, tr)
		checkInvariants(t, tr, recs, st)
	}
}

// TestPropertyFaultFreeRunsHaveNoRetries pins the opt-in guarantee: with
// no injector configured, nothing retries, nothing fails, and the fault
// counters all stay zero.
func TestPropertyFaultFreeRunsHaveNoRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		tr := drawTrial(rng)
		tr.crashRate, tr.bootRate = 0, 0
		recs, st := runTrial(t, tr)
		checkInvariants(t, tr, recs, st)
		if st.Retries != 0 || st.Failed != 0 || st.GroupRedispatches != 0 {
			t.Fatalf("fault-free run has retries=%d failed=%d redispatches=%d (seed=%d)",
				st.Retries, st.Failed, st.GroupRedispatches, tr.seed)
		}
		for _, r := range recs {
			if r.Retries != 0 || r.Failed {
				t.Fatalf("fault-free record retried/failed: %+v (seed=%d)", r, tr.seed)
			}
		}
	}
}

// TestPropertySameSeedSameOutcome pins fault-schedule determinism end to
// end: replaying the same trial (same sim seed, same chaos seed) yields
// byte-identical record sets.
func TestPropertySameSeedSameOutcome(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := drawTrial(rng)
	tr.crashRate = 0.15
	recs1, st1 := runTrial(t, tr)
	recs2, st2 := runTrial(t, tr)
	if st1 != st2 {
		t.Fatalf("stats diverged across identical replays:\n%+v\n%+v", st1, st2)
	}
	if len(recs1) != len(recs2) {
		t.Fatalf("record counts diverged: %d vs %d", len(recs1), len(recs2))
	}
	for i := range recs1 {
		if recs1[i] != recs2[i] {
			t.Fatalf("record %d diverged:\n%+v\n%+v", i, recs1[i], recs2[i])
		}
	}
}
