package core

import (
	"testing"
	"testing/quick"
	"time"

	"faasbatch/internal/fnruntime"
	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/policy"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

func testEnv(t *testing.T) policy.Env {
	t.Helper()
	eng := sim.New(1)
	cfg := node.DefaultConfig()
	cfg.Cores = 8
	cfg.CreateConcurrency = 2
	cfg.CreateCPUWork = 100 * time.Millisecond
	cfg.ContainerInitCPUWork = 0
	cfg.ColdStartLatency = 400 * time.Millisecond
	cfg.KeepAlive = time.Hour
	n, err := node.New(eng, cfg)
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	return policy.Env{Eng: eng, Node: n, Runner: fnruntime.NewRunner(eng)}
}

func newScheduler(t *testing.T, env policy.Env, cfg Config) *FaaSBatch {
	t.Helper()
	f, err := New(env, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func fibSpec(t *testing.T, n int) workload.Spec {
	t.Helper()
	s, err := workload.FibSpec(n)
	if err != nil {
		t.Fatalf("FibSpec(%d): %v", n, err)
	}
	return s
}

// runAll drives the engine until every submitted invocation completed.
func runAll(t *testing.T, env policy.Env, f *FaaSBatch, specs []workload.Spec, offsets []time.Duration) []metrics.Record {
	t.Helper()
	var recs []metrics.Record
	for i := range specs {
		i := i
		env.Eng.Schedule(offsets[i], func() {
			inv := fnruntime.NewInvocation(int64(i), specs[i], env.Eng.Now())
			f.Submit(inv, func(done *fnruntime.Invocation) { recs = append(recs, done.Rec) })
		})
	}
	for len(recs) < len(specs) {
		if !env.Eng.Step() {
			t.Fatalf("engine drained with %d/%d complete", len(recs), len(specs))
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return recs
}

func TestConfigValidation(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.Interval = 0
	if _, err := New(env, cfg); err == nil {
		t.Error("zero interval accepted")
	}
	cfg = DefaultConfig()
	cfg.HTTPLatency = -1
	if _, err := New(env, cfg); err == nil {
		t.Error("negative http latency accepted")
	}
	if _, err := New(policy.Env{}, DefaultConfig()); err == nil {
		t.Error("empty env accepted")
	}
}

func TestName(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	if f.Name() != "faasbatch" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestWholeWindowSharesOneContainer(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	spec := fibSpec(t, 25)
	const n = 20
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = spec
		offsets[i] = time.Duration(i) * 5 * time.Millisecond // all in one 200ms window
	}
	recs := runAll(t, env, f, specs, offsets)
	if got := env.Node.TotalCreated(); got != 1 {
		t.Fatalf("TotalCreated = %d, want 1 (whole group in one container)", got)
	}
	st := f.Stats()
	if st.Groups != 1 || st.Submitted != n || st.MaxGroupSize != n {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.AvgGroupSize(); got != float64(n) {
		t.Fatalf("AvgGroupSize = %v, want %d", got, n)
	}
	// Inline parallel: no queuing latency at all.
	for _, r := range recs {
		if r.Queue != 0 {
			t.Fatalf("Queue = %v, want 0 (inline parallel)", r.Queue)
		}
	}
}

func TestSchedulingLatencyIsWindowWait(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.HTTPLatency = 0
	f := newScheduler(t, env, cfg)
	spec := fibSpec(t, 25)
	// Arrives at 50ms; the window closes at 200ms -> 150ms window wait.
	recs := runAll(t, env, f, []workload.Spec{spec}, []time.Duration{50 * time.Millisecond})
	if got := recs[0].Sched; got < 149*time.Millisecond || got > 151*time.Millisecond {
		t.Fatalf("Sched = %v, want ~150ms window wait", got)
	}
}

func TestHTTPLatencyCountsTowardScheduling(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.HTTPLatency = 10 * time.Millisecond
	f := newScheduler(t, env, cfg)
	spec := fibSpec(t, 25)
	recs := runAll(t, env, f, []workload.Spec{spec}, []time.Duration{190 * time.Millisecond})
	// 10ms window wait + 10ms HTTP hop.
	if got := recs[0].Sched; got < 19*time.Millisecond || got > 21*time.Millisecond {
		t.Fatalf("Sched = %v, want ~20ms", got)
	}
}

func TestGroupsArePerFunction(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	specA := fibSpec(t, 25)
	specB := fibSpec(t, 30)
	specs := []workload.Spec{specA, specA, specB, specB, specB}
	offsets := make([]time.Duration, len(specs))
	runAll(t, env, f, specs, offsets)
	if got := env.Node.TotalCreated(); got != 2 {
		t.Fatalf("TotalCreated = %d, want 2 (one per function group)", got)
	}
	if st := f.Stats(); st.Groups != 2 {
		t.Fatalf("Groups = %d, want 2", st.Groups)
	}
}

func TestContainerReusedAcrossWindows(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	spec := fibSpec(t, 22) // short: batch finishes well within a window
	specs := []workload.Spec{spec, spec, spec}
	// Three separate windows, each starting after the previous batch
	// finished (the first one pays the ~500ms boot).
	offsets := []time.Duration{0, time.Second, 2 * time.Second}
	recs := runAll(t, env, f, specs, offsets)
	if got := env.Node.TotalCreated(); got != 1 {
		t.Fatalf("TotalCreated = %d, want 1 (reused across windows)", got)
	}
	coldCount := 0
	for _, r := range recs {
		if r.Cold > 0 {
			coldCount++
		}
	}
	if coldCount != 1 {
		t.Fatalf("%d invocations paid cold start, want only the first window", coldCount)
	}
}

func TestBusyContainerForcesSecondContainer(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	spec := fibSpec(t, 34) // ~2.1s: batch still running when next window closes
	specs := []workload.Spec{spec, spec}
	offsets := []time.Duration{0, 300 * time.Millisecond}
	runAll(t, env, f, specs, offsets)
	if got := env.Node.TotalCreated(); got != 2 {
		t.Fatalf("TotalCreated = %d, want 2 (first container still busy)", got)
	}
}

func TestCPULimitApplied(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.CPULimit = 2
	f := newScheduler(t, env, cfg)
	spec := fibSpec(t, 25)
	// 8 concurrent ~10.7ms tasks limited to 2 cores: elapsed ~4x solo.
	const n = 8
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = spec
	}
	recs := runAll(t, env, f, specs, offsets)
	cdf := metrics.NewCDF(metrics.Extract(recs, metrics.Execution))
	wantMin := time.Duration(float64(spec.Work) * float64(n) / 2 * 0.9)
	if cdf.Max() < wantMin {
		t.Fatalf("max Exec = %v under 2-core cap, want >= %v", cdf.Max(), wantMin)
	}
}

func TestMultiplexEnabledByDefaultConfig(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	spec := workload.IOSpec("s3func")
	const n = 9
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = spec
	}
	recs := runAll(t, env, f, specs, offsets)
	st := env.Runner.Stats()
	if st.ClientsBuilt != 1 {
		t.Fatalf("ClientsBuilt = %d, want 1 (multiplexed)", st.ClientsBuilt)
	}
	for _, r := range recs {
		if r.Exec > 150*time.Millisecond {
			t.Fatalf("Exec = %v, want collapsed by multiplexer", r.Exec)
		}
	}
}

func TestMultiplexDisabledAblation(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.Multiplex = false
	f := newScheduler(t, env, cfg)
	spec := workload.IOSpec("s3func")
	const n = 9
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = spec
	}
	runAll(t, env, f, specs, offsets)
	if got := env.Runner.Stats().ClientsBuilt; got != n {
		t.Fatalf("ClientsBuilt = %d, want %d without multiplexer", got, n)
	}
}

func TestCloseFlushesPendingWindow(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	spec := fibSpec(t, 25)
	done := false
	inv := fnruntime.NewInvocation(1, spec, env.Eng.Now())
	f.Submit(inv, func(*fnruntime.Invocation) { done = true })
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	env.Eng.Run()
	if !done {
		t.Fatal("pending invocation lost on Close")
	}
	// Double close is a no-op.
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestLatencyDecompositionAdditive(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, DefaultConfig())
	spec := fibSpec(t, 28)
	specs := make([]workload.Spec, 6)
	offsets := make([]time.Duration, 6)
	for i := range specs {
		specs[i] = spec
		offsets[i] = time.Duration(i*60) * time.Millisecond
	}
	recs := runAll(t, env, f, specs, offsets)
	for _, r := range recs {
		if r.Total() != r.Sched+r.Cold+r.Queue+r.Exec {
			t.Fatalf("decomposition broken: %+v", r)
		}
		if r.Sched < 0 || r.Cold < 0 || r.Queue < 0 || r.Exec <= 0 {
			t.Fatalf("negative/zero component: %+v", r)
		}
	}
}

// Property: every submitted invocation completes exactly once, regardless
// of arrival pattern and interval, and group count never exceeds
// (windows x functions).
func TestPropertyCompleteness(t *testing.T) {
	f := func(seed int64, raw []uint16, intervalRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		eng := sim.New(seed)
		ncfg := node.DefaultConfig()
		ncfg.Cores = 8
		ncfg.KeepAlive = time.Hour
		n, err := node.New(eng, ncfg)
		if err != nil {
			return false
		}
		env := policy.Env{Eng: eng, Node: n, Runner: fnruntime.NewRunner(eng)}
		cfg := DefaultConfig()
		cfg.Interval = time.Duration(int(intervalRaw)%490+10) * time.Millisecond
		fb, err := New(env, cfg)
		if err != nil {
			return false
		}
		completed := map[int64]int{}
		for i, r := range raw {
			i, r := i, r
			eng.Schedule(time.Duration(r%5000)*time.Millisecond, func() {
				spec, err := workload.FibSpec(20 + int(r)%16)
				if err != nil {
					return
				}
				inv := fnruntime.NewInvocation(int64(i), spec, eng.Now())
				fb.Submit(inv, func(done *fnruntime.Invocation) { completed[done.ID]++ })
			})
		}
		total := 0
		for total < len(raw) {
			if !eng.Step() {
				return false
			}
			total = 0
			for _, c := range completed {
				total += c
			}
		}
		if err := fb.Close(); err != nil {
			return false
		}
		for _, c := range completed {
			if c != 1 {
				return false
			}
		}
		return len(completed) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
