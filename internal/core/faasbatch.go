// Package core implements FaaSBatch, the paper's contribution (§III): a
// serverless scheduler that folds concurrent invocations into as few
// containers as possible and spreads them out again inside.
//
// The scheduler combines three modules:
//
//   - Invoke Mapper — listens to the request queue for a fixed dispatch
//     interval (default 0.2 s) and classifies the invocations that arrived
//     within the window into per-function groups: all requests for one
//     function in one window form a single batch.
//   - Inline-Parallel Producer — maps each group to exactly one container
//     (warm when a keep-alive container exists), applies the customer's
//     CPU limit to the container's cpuset, delivers the whole batch with
//     one HTTP request, and expands it: every invocation of the group
//     executes concurrently as a thread inside that single container. The
//     batch request returns only after all invocations complete (§III-C).
//   - Resource Multiplexer — each FaaSBatch container carries the
//     multiplex.Cache, so redundant resource creations (storage clients)
//     are served from cache instead of being rebuilt (§III-D).
package core

import (
	"fmt"
	"sort"
	"time"

	"faasbatch/internal/dispatch"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/multiplex"
	"faasbatch/internal/node"
	"faasbatch/internal/policy"
	"faasbatch/internal/sim"
)

// Config parameterises the FaaSBatch scheduler.
type Config struct {
	// Interval is the Invoke Mapper's dispatch interval: requests
	// received within one interval are treated as concurrent (§III-B).
	Interval time.Duration
	// CPULimit is the cpuset cap applied to FaaSBatch containers
	// (<= 0 means unlimited), honouring customer-specified CPU counts.
	CPULimit float64
	// Multiplex enables the Resource Multiplexer inside containers.
	// Disabling it isolates the Invoke Mapper + Inline-Parallel Producer
	// contribution (the ablation in bench_test.go).
	Multiplex bool
	// Multiplexer tunes each container's Resource Multiplexer (shards,
	// capacity bound, TTL, refresh window, negative backoff); the zero
	// value takes the cache defaults. Ignored unless Multiplex is true.
	Multiplexer multiplex.Config
	// HTTPLatency is the cost of the batch-activating HTTP request from
	// the producer to the container (§III-C step 3).
	HTTPLatency time.Duration
	// MaxPendingCreates bounds in-flight container creations per
	// function. When the bound is hit, further groups attach to the
	// pending creation and expand on the container once it boots —
	// the platform's per-function scale-out limit.
	MaxPendingCreates int
	// Prewarm enables predictive pre-warming (extension, off by
	// default): functions that were active within PrewarmHorizon keep a
	// container provisioned ahead of their next group, trimming the
	// cold-start tail that keep-alive eviction would otherwise re-expose
	// on recurring bursts.
	Prewarm bool
	// PrewarmHorizon is how long after its last arrival a function is
	// still considered active for pre-warming.
	PrewarmHorizon time.Duration
	// MaxRetries bounds how many extra scheduling attempts an invocation
	// whose container crashed receives. Retried invocations re-batch into
	// the next dispatch window (the window interval is the backoff), so a
	// crashed group's members ride a replacement container together. An
	// invocation that exhausts the budget completes with Rec.Failed set —
	// at-most-(1+MaxRetries) execution attempts, never silent loss.
	MaxRetries int
	// AdaptiveDispatch replaces the fixed Invoke Mapper interval with the
	// load-aware controller (internal/dispatch): lone arrivals with no
	// batching opportunity dispatch immediately, an EWMA arrival-rate
	// tracker sizes each function's window within
	// [MinInterval, MaxInterval], and a window whose group reaches
	// MaxGroupSize closes early. Off by default — the fixed Interval
	// remains the paper's behaviour.
	AdaptiveDispatch bool
	// MinInterval is the adaptive window floor (AdaptiveDispatch only).
	// Zero selects DefaultMinInterval.
	MinInterval time.Duration
	// MaxInterval is the adaptive window cap (AdaptiveDispatch only).
	// Zero selects Interval, so adaptive mode never batches more coarsely
	// than the fixed configuration it replaces.
	MaxInterval time.Duration
	// MaxGroupSize early-closes an adaptive window whose group reached
	// this many invocations (AdaptiveDispatch only; 0 means no cap).
	MaxGroupSize int
}

// DefaultMinInterval is the adaptive window floor when none is set: small
// enough that sparse traffic sees near-immediate dispatch, large enough
// that same-instant arrivals still fold into one group.
const DefaultMinInterval = 5 * time.Millisecond

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		Interval:          200 * time.Millisecond,
		Multiplex:         true,
		HTTPLatency:       time.Millisecond,
		MaxPendingCreates: 32,
		PrewarmHorizon:    30 * time.Second,
		MaxRetries:        3,
	}
}

// Stats reports scheduler-level batching effectiveness.
type Stats struct {
	// Submitted counts invocations received.
	Submitted int64
	// Groups counts dispatched function groups (== batch HTTP requests
	// == container checkouts).
	Groups int64
	// MaxGroupSize is the largest batch expanded into one container.
	MaxGroupSize int
	// Retries counts invocation re-batches after container faults.
	Retries int64
	// Failed counts invocations that exhausted their retry budget and
	// completed as failures.
	Failed int64
	// GroupRedispatches counts whole groups re-batched because their
	// container crashed before expansion.
	GroupRedispatches int64
	// Prewarms counts predictive container creations (Prewarm only).
	Prewarms int64
	// KeepWarmTouches counts keep-alive refreshes of warm containers
	// for predicted-active functions (Prewarm only).
	KeepWarmTouches int64
	// FastPathDispatches counts lone arrivals dispatched immediately by
	// the adaptive idle fast-path (AdaptiveDispatch only).
	FastPathDispatches int64
	// EarlyCloses counts adaptive windows closed before their deadline
	// because the group reached MaxGroupSize.
	EarlyCloses int64
	// WindowDispatches counts adaptive windows that closed at their
	// deadline.
	WindowDispatches int64
}

// AvgGroupSize reports the mean invocations per dispatched group.
func (s Stats) AvgGroupSize() float64 {
	if s.Groups == 0 {
		return 0
	}
	return float64(s.Submitted) / float64(s.Groups)
}

// FaaSBatch is the scheduler.
type FaaSBatch struct {
	env     policy.Env
	cfg     Config
	pending map[string][]*pendingItem
	// owned tracks busy containers currently expanding groups, so later
	// windows can join them instead of cold-starting (§III-C: a cold
	// start occurs only when no keep-alive container exists).
	owned map[string][]*node.Container
	// pendingCreates counts in-flight container creations per function;
	// attached holds groups waiting on those creations.
	pendingCreates map[string]int
	attached       map[string][]attachedGroup
	// lastActive records each function's most recent arrival time
	// (Prewarm only).
	lastActive map[string]sim.Time
	// ticker drives fixed-interval windows; in adaptive mode it exists
	// only for pre-warming (nil otherwise).
	ticker *sim.Ticker
	// ctrl sizes per-function windows in adaptive mode (nil when fixed);
	// windows holds each function's scheduled window-close event and
	// windowAt its scheduled time (the controller may extend an open
	// window's deadline as the arrival estimate densifies, which
	// reschedules the event).
	ctrl     *dispatch.Controller
	windows  map[string]*sim.Event
	windowAt map[string]sim.Time
	stats    Stats
	closed   bool
}

// attachedGroup is a window group waiting for an in-flight creation.
type attachedGroup struct {
	group      []*pendingItem
	dispatchAt sim.Time
}

var _ policy.Scheduler = (*FaaSBatch)(nil)

// pendingItem is one invocation waiting for its window to close.
type pendingItem struct {
	inv      *fnruntime.Invocation
	complete func(*fnruntime.Invocation)
}

// New creates a FaaSBatch scheduler and starts its dispatch ticker.
func New(env policy.Env, cfg Config) (*FaaSBatch, error) {
	if env.Eng == nil || env.Node == nil || env.Runner == nil {
		return nil, fmt.Errorf("core: env requires engine, node and runner")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("core: dispatch interval must be positive, got %v", cfg.Interval)
	}
	if cfg.HTTPLatency < 0 {
		return nil, fmt.Errorf("core: http latency must be non-negative, got %v", cfg.HTTPLatency)
	}
	if cfg.MaxPendingCreates < 1 {
		return nil, fmt.Errorf("core: max pending creates must be at least 1, got %d", cfg.MaxPendingCreates)
	}
	if cfg.Prewarm && cfg.PrewarmHorizon <= 0 {
		return nil, fmt.Errorf("core: prewarm horizon must be positive, got %v", cfg.PrewarmHorizon)
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("core: max retries must be non-negative, got %d", cfg.MaxRetries)
	}
	if cfg.AdaptiveDispatch {
		if cfg.MaxInterval == 0 {
			cfg.MaxInterval = cfg.Interval
		}
		if cfg.MinInterval == 0 {
			cfg.MinInterval = DefaultMinInterval
			if cfg.MinInterval > cfg.MaxInterval {
				cfg.MinInterval = cfg.MaxInterval
			}
		}
	}
	f := &FaaSBatch{
		env:            env,
		cfg:            cfg,
		pending:        make(map[string][]*pendingItem),
		owned:          make(map[string][]*node.Container),
		pendingCreates: make(map[string]int),
		attached:       make(map[string][]attachedGroup),
		lastActive:     make(map[string]sim.Time),
	}
	if cfg.AdaptiveDispatch {
		ctrl, err := dispatch.New(dispatch.Config{
			MinInterval:  cfg.MinInterval,
			MaxInterval:  cfg.MaxInterval,
			MaxGroupSize: cfg.MaxGroupSize,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		f.ctrl = ctrl
		f.windows = make(map[string]*sim.Event)
		f.windowAt = make(map[string]sim.Time)
		if cfg.Prewarm {
			// Per-function window events replace the global tick, but
			// pre-warming still needs a cadence to refresh predictions on.
			t, err := sim.NewTicker(env.Eng, cfg.Interval, func(sim.Time) { f.prewarm() })
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			f.ticker = t
		}
		return f, nil
	}
	t, err := sim.NewTicker(env.Eng, cfg.Interval, func(sim.Time) { f.dispatchWindow() })
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	f.ticker = t
	return f, nil
}

// Name implements policy.Scheduler.
func (f *FaaSBatch) Name() string { return "faasbatch" }

// Stats reports batching statistics.
func (f *FaaSBatch) Stats() Stats { return f.stats }

// Submit implements policy.Scheduler: the Invoke Mapper appends the
// invocation to its function's group for the current window. In adaptive
// mode the dispatch controller decides whether the arrival dispatches
// immediately (idle fast-path, early close) or waits for its function's
// load-sized window.
func (f *FaaSBatch) Submit(inv *fnruntime.Invocation, complete func(*fnruntime.Invocation)) {
	f.stats.Submitted++
	fn := inv.Spec.Name
	if f.cfg.Prewarm {
		f.lastActive[fn] = f.env.Eng.Now()
	}
	item := &pendingItem{inv: inv, complete: complete}
	if !f.cfg.AdaptiveDispatch {
		f.pending[fn] = append(f.pending[fn], item)
		return
	}
	// The arrival is idle (no batching opportunity) when nothing of its
	// function waits, executes or boots: a window would hold it for
	// nothing unless the arrival process says company is coming.
	idle := len(f.pending[fn]) == 0 && f.busyContainer(fn) == nil && f.pendingCreates[fn] == 0
	f.pending[fn] = append(f.pending[fn], item)
	f.applyDecision(fn, f.ctrl.Arrive(fn, f.env.Eng.Now().Duration(), idle))
}

// applyDecision acts on the controller's verdict for fn's pending group.
func (f *FaaSBatch) applyDecision(fn string, d dispatch.Decision) {
	switch d.Action {
	case dispatch.ActionFastPath:
		f.stats.FastPathDispatches++
		f.closeNow(fn)
	case dispatch.ActionEarlyClose:
		f.stats.EarlyCloses++
		f.closeNow(fn)
	case dispatch.ActionWait:
		at := sim.Time(d.Deadline)
		if ev, open := f.windows[fn]; open {
			if f.windowAt[fn] == at {
				return
			}
			// The controller extended the open window's deadline.
			ev.Cancel()
		}
		f.windowAt[fn] = at
		f.windows[fn] = f.env.Eng.ScheduleAt(at, func() { f.windowDue(fn) })
	}
}

// closeNow dispatches fn's pending group immediately (fast path or early
// close; the controller has already reset its group state).
func (f *FaaSBatch) closeNow(fn string) {
	if ev, open := f.windows[fn]; open {
		ev.Cancel()
		delete(f.windows, fn)
		delete(f.windowAt, fn)
	}
	group := f.pending[fn]
	delete(f.pending, fn)
	if len(group) > 0 {
		f.dispatchGroup(fn, group)
	}
}

// windowDue fires at fn's adaptive window deadline.
func (f *FaaSBatch) windowDue(fn string) {
	delete(f.windows, fn)
	delete(f.windowAt, fn)
	if f.closed {
		return
	}
	f.ctrl.WindowClosed(fn)
	group := f.pending[fn]
	delete(f.pending, fn)
	if len(group) > 0 {
		f.stats.WindowDispatches++
		f.dispatchGroup(fn, group)
	}
}

// Close stops the dispatcher after flushing pending groups.
func (f *FaaSBatch) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.dispatchWindow()
	for fn, ev := range f.windows {
		ev.Cancel()
		delete(f.windows, fn)
		delete(f.windowAt, fn)
	}
	if f.ticker != nil {
		f.ticker.Stop()
	}
	return nil
}

// dispatchWindow closes the current window: every function group gathered
// by the Invoke Mapper is handed to the Inline-Parallel Producer.
func (f *FaaSBatch) dispatchWindow() {
	if f.cfg.Prewarm {
		f.prewarm()
	}
	if len(f.pending) == 0 {
		return
	}
	// Sorted function order keeps runs deterministic.
	fns := make([]string, 0, len(f.pending))
	for fn := range f.pending {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		group := f.pending[fn]
		delete(f.pending, fn)
		if f.ctrl != nil {
			f.ctrl.WindowClosed(fn)
		}
		f.dispatchGroup(fn, group)
	}
}

// dispatchGroup is the Inline-Parallel Producer (§III-C): obtain one
// container for the whole group — an idle keep-alive container, a busy
// container already expanding earlier groups, or a fresh one — send the
// batch over HTTP, expand the invocations in parallel inside, and release
// the group's reservation when every invocation completed.
func (f *FaaSBatch) dispatchGroup(fn string, group []*pendingItem) {
	f.stats.Groups++
	if len(group) > f.stats.MaxGroupSize {
		f.stats.MaxGroupSize = len(group)
	}
	dispatchAt := f.env.Eng.Now()
	// An idle keep-alive container wins (warm start, via the node's warm
	// pool); otherwise a busy FaaSBatch container of the same function
	// accepts the group as additional threads; only when neither exists
	// does the group pay a cold start.
	if f.env.Node.WarmCount(fn) == 0 {
		if c := f.busyContainer(fn); c != nil {
			c.CheckoutThread() // the joined group's batch reservation
			f.expand(c, group, dispatchAt, node.AcquireResult{Container: c})
			return
		}
		if f.pendingCreates[fn] >= f.cfg.MaxPendingCreates {
			// The per-function scale-out bound is hit: wait for one of
			// the in-flight creations and expand on it once it boots.
			f.attached[fn] = append(f.attached[fn], attachedGroup{group: group, dispatchAt: dispatchAt})
			return
		}
		f.pendingCreates[fn]++
	}
	opts := node.AcquireOptions{CPULimit: f.cfg.CPULimit, Multiplex: f.cfg.Multiplex, Multiplexer: f.cfg.Multiplexer}
	f.env.Node.Acquire(fn, opts, func(r node.AcquireResult) {
		if r.Cold && f.pendingCreates[fn] > 0 {
			f.pendingCreates[fn]--
		}
		f.owned[fn] = append(f.owned[fn], r.Container)
		f.expand(r.Container, group, dispatchAt, r)
		// Groups that attached while this container booted expand on it
		// as additional thread batches; they waited out the remaining
		// boot, which is their cold-start share.
		waiting := f.attached[fn]
		delete(f.attached, fn)
		for _, ag := range waiting {
			r.Container.CheckoutThread() // the attached group's reservation
			f.expand(r.Container, ag.group, ag.dispatchAt, node.AcquireResult{
				Container: r.Container,
				Cold:      true,
				BootTime:  f.env.Eng.Now().Sub(ag.dispatchAt),
			})
		}
	})
}

// prewarm creates a container ahead of every recently active function
// that currently has none (warm, busy or booting). The pre-warmed
// container parks into the node's keep-alive pool, so the next group for
// that function starts warm even if its previous container was evicted
// between bursts.
func (f *FaaSBatch) prewarm() {
	now := f.env.Eng.Now()
	fns := make([]string, 0, len(f.lastActive))
	for fn := range f.lastActive {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		if now.Sub(f.lastActive[fn]) > f.cfg.PrewarmHorizon {
			delete(f.lastActive, fn) // idle past the horizon: forget it
			continue
		}
		if f.env.Node.WarmCount(fn) > 0 {
			// Keep-warm touch: a warm acquire+release resets the
			// container's keep-alive clock, so predicted-active
			// functions never lose their capacity to eviction.
			f.env.Node.Acquire(fn, node.AcquireOptions{}, func(r node.AcquireResult) {
				r.Container.ReturnThread()
			})
			f.stats.KeepWarmTouches++
			continue
		}
		if f.busyContainer(fn) != nil || f.pendingCreates[fn] > 0 {
			continue // capacity already exists or is coming up
		}
		f.pendingCreates[fn]++
		f.stats.Prewarms++
		opts := node.AcquireOptions{CPULimit: f.cfg.CPULimit, Multiplex: f.cfg.Multiplex, Multiplexer: f.cfg.Multiplexer}
		f.env.Node.Acquire(fn, opts, func(r node.AcquireResult) {
			if f.pendingCreates[fn] > 0 {
				f.pendingCreates[fn]--
			}
			// Serve any groups that attached while this container booted;
			// otherwise park it warm for the next window.
			waiting := f.attached[fn]
			delete(f.attached, fn)
			if len(waiting) == 0 {
				r.Container.ReturnThread()
				return
			}
			f.owned[fn] = append(f.owned[fn], r.Container)
			for i, ag := range waiting {
				if i > 0 {
					r.Container.CheckoutThread()
				}
				f.expand(r.Container, ag.group, ag.dispatchAt, node.AcquireResult{
					Container: r.Container,
					Cold:      true,
					BootTime:  f.env.Eng.Now().Sub(ag.dispatchAt),
				})
			}
		})
	}
}

// busyContainer returns a ready busy container for fn, pruning handles
// that parked or were evicted since.
func (f *FaaSBatch) busyContainer(fn string) *node.Container {
	list := f.owned[fn]
	kept := list[:0]
	var found *node.Container
	for _, c := range list {
		if c.State() != node.Busy {
			continue // parked into the warm pool or evicted
		}
		kept = append(kept, c)
		if found == nil {
			found = c
		}
	}
	for i := len(kept); i < len(list); i++ {
		list[i] = nil
	}
	f.owned[fn] = kept
	return found
}

// expand runs one group inside its container: record the latency
// decomposition, pay the batch HTTP hop, execute all invocations as
// concurrent threads, and return the group's reservation when the last
// one finishes.
func (f *FaaSBatch) expand(c *node.Container, group []*pendingItem, dispatchAt sim.Time, r node.AcquireResult) {
	for _, item := range group {
		// Scheduling latency: window wait + engine-queue wait + the
		// batch HTTP hop; cold start is separated per §IV.
		item.inv.Rec.Sched = dispatchAt.Sub(item.inv.Arrive) + r.QueueWait + f.cfg.HTTPLatency
		item.inv.Rec.Cold = r.BootTime
	}
	run := func() {
		if c.State() == node.Evicted {
			// The container crashed between dispatch and the batch HTTP
			// request landing (a fault from a concurrent group killed it).
			// Re-batch the whole group into the next window; it expands on
			// a replacement container there.
			f.stats.GroupRedispatches++
			for _, item := range group {
				f.retryItem(item)
			}
			return
		}
		outstanding := len(group)
		released := false
		release := func() {
			if released {
				return
			}
			released = true
			// The batch HTTP request returns; once every group drained,
			// the container parks in the warm pool for the next window.
			c.ReturnThread()
		}
		for _, item := range group {
			item := item
			err := f.env.Runner.Execute(item.inv, c, func(done *fnruntime.Invocation) {
				item.complete(done)
				outstanding--
				if outstanding == 0 {
					release()
				}
			})
			if err != nil {
				// The container crashed under us (fault injection) or was
				// torn down between acquisition and execution: send the
				// invocation through the bounded retry path rather than
				// drop it.
				outstanding--
				f.retryItem(item)
			}
		}
		if outstanding == 0 {
			release()
		}
	}
	if f.cfg.HTTPLatency > 0 {
		f.env.Eng.Schedule(f.cfg.HTTPLatency, run)
		return
	}
	run()
}

// retryItem re-batches one invocation after a container fault: it rides
// the next dispatch window (the window interval acts as the retry
// backoff) on a fresh or replacement container. An invocation that
// already consumed its retry budget completes immediately with
// Rec.Failed set — invocations are never silently lost.
func (f *FaaSBatch) retryItem(item *pendingItem) {
	inv := item.inv
	if inv.Attempts >= f.cfg.MaxRetries {
		inv.Rec.Failed = true
		f.stats.Failed++
		item.complete(inv)
		return
	}
	inv.Attempts++
	inv.Rec.Retries = inv.Attempts
	f.stats.Retries++
	// Append directly to the window rather than re-Submit: Submitted
	// counts unique invocations, not attempts (Stats.Submitted ==
	// completed + failed must hold at quiescence).
	fn := inv.Spec.Name
	f.pending[fn] = append(f.pending[fn], item)
	if f.cfg.AdaptiveDispatch && !f.closed {
		// A retry must ride a window like any pending call, but must not
		// skew the arrival-rate estimate: EnsureOpen arms a window-close
		// event without observing an arrival.
		f.applyDecision(fn, f.ctrl.EnsureOpen(fn, f.env.Eng.Now().Duration()))
	}
}
