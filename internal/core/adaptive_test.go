package core

import (
	"testing"
	"time"

	"faasbatch/internal/workload"
)

// adaptiveConfig returns the paper's defaults with the adaptive
// controller switched on (cap = the fixed interval).
func adaptiveConfig() Config {
	cfg := DefaultConfig()
	cfg.AdaptiveDispatch = true
	return cfg
}

// TestAdaptiveLoneArrivalFastPaths: a lone invocation on an idle
// scheduler must not eat a dispatch window — its scheduling latency is
// just the batch HTTP hop.
func TestAdaptiveLoneArrivalFastPaths(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, adaptiveConfig())
	spec := workload.IOSpec("s3func")
	recs := runAll(t, env, f, []workload.Spec{spec}, []time.Duration{10 * time.Millisecond})
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	if got := recs[0].Sched; got > 2*time.Millisecond {
		t.Fatalf("lone arrival Sched = %v, want ~HTTPLatency (fixed interval would be up to 200ms)", got)
	}
	st := f.Stats()
	if st.FastPathDispatches != 1 {
		t.Fatalf("FastPathDispatches = %d, want 1", st.FastPathDispatches)
	}
}

// TestAdaptiveSparseTrafficAvoidsWindowWait: sparse arrivals (1 per
// second, far beyond the 200ms cap) all fast-path.
func TestAdaptiveSparseTrafficAvoidsWindowWait(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, adaptiveConfig())
	const n = 20
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = workload.IOSpec("s3func")
		offsets[i] = time.Duration(i) * time.Second
	}
	recs := runAll(t, env, f, specs, offsets)
	for i, r := range recs {
		if r.Sched > 5*time.Millisecond {
			t.Fatalf("sparse arrival %d Sched = %v, want near-immediate dispatch", i, r.Sched)
		}
	}
	st := f.Stats()
	if st.AvgGroupSize() > 1.01 {
		t.Fatalf("AvgGroupSize = %.2f, want ~1 on sparse traffic", st.AvgGroupSize())
	}
}

// TestAdaptiveDenseBurstStillBatches: a dense burst must group nearly as
// well as the fixed window — the adaptive controller grows each window
// toward the cap once the EWMA sees tight gaps.
func TestAdaptiveDenseBurstStillBatches(t *testing.T) {
	const n = 1000
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = workload.IOSpec("s3func")
		offsets[i] = time.Duration(i) * 2 * time.Millisecond // 500/s
	}

	run := func(cfg Config) Stats {
		env := testEnv(t)
		f := newScheduler(t, env, cfg)
		runAll(t, env, f, specs, offsets)
		return f.Stats()
	}
	fixed := run(DefaultConfig())
	adaptive := run(adaptiveConfig())

	if fixed.Groups == 0 || adaptive.Groups == 0 {
		t.Fatalf("no groups dispatched: fixed %d, adaptive %d", fixed.Groups, adaptive.Groups)
	}
	// Within 10% of the fixed baseline's grouping (the Fig. 11 criterion).
	if adaptive.AvgGroupSize() < fixed.AvgGroupSize()*0.9 {
		t.Fatalf("adaptive AvgGroupSize = %.2f, fixed = %.2f: adaptive lost more than 10%% of the batching",
			adaptive.AvgGroupSize(), fixed.AvgGroupSize())
	}
}

// TestAdaptiveEarlyCloseBoundsGroups: with MaxGroupSize set, no group
// exceeds the cap and early closes are counted.
func TestAdaptiveEarlyCloseBoundsGroups(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.MaxGroupSize = 8
	env := testEnv(t)
	f := newScheduler(t, env, cfg)
	const n = 100
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = workload.IOSpec("s3func")
		offsets[i] = time.Duration(i) * time.Millisecond
	}
	runAll(t, env, f, specs, offsets)
	st := f.Stats()
	if st.MaxGroupSize > cfg.MaxGroupSize {
		t.Fatalf("MaxGroupSize = %d, want <= %d", st.MaxGroupSize, cfg.MaxGroupSize)
	}
	if st.EarlyCloses == 0 {
		t.Fatal("EarlyCloses = 0, want > 0 on a dense stream with a group cap")
	}
}

// TestAdaptiveKnobValidation: bad adaptive knobs are rejected.
func TestAdaptiveKnobValidation(t *testing.T) {
	env := testEnv(t)
	cfg := adaptiveConfig()
	cfg.MinInterval = 300 * time.Millisecond // above the 200ms cap
	if _, err := New(env, cfg); err == nil {
		t.Error("min interval above max accepted")
	}
	cfg = adaptiveConfig()
	cfg.MinInterval = -time.Millisecond
	if _, err := New(env, cfg); err == nil {
		t.Error("negative min interval accepted")
	}
}

// TestAdaptiveCompletesEveryInvocation: conservation under adaptive
// dispatch — every submission completes exactly once.
func TestAdaptiveCompletesEveryInvocation(t *testing.T) {
	env := testEnv(t)
	f := newScheduler(t, env, adaptiveConfig())
	const n = 60
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		if i%3 == 0 {
			specs[i] = fibSpec(t, 20)
		} else {
			specs[i] = workload.IOSpec("s3func")
		}
		offsets[i] = time.Duration(i%7) * 30 * time.Millisecond
	}
	recs := runAll(t, env, f, specs, offsets)
	if len(recs) != n {
		t.Fatalf("records = %d, want %d", len(recs), n)
	}
	st := f.Stats()
	if st.Submitted != n {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, n)
	}
}
