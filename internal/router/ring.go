// Package router is the live multi-worker routing tier: it fronts a
// fleet of worker gateways (cmd/faasgate instances, each running
// internal/platform) and preserves FaaSBatch's batching locality across
// the fleet.
//
// The paper scopes FaaSBatch to one worker VM (§IV); internal/cluster
// scales it out in the simulator. This package is the live counterpart:
//
//   - a consistent-hash ring keyed by function name (bounded-load
//     variant), so each function's invocations land on one worker and
//     whole dispatch windows batch together, with least-loaded spillover
//     when a worker exceeds its load bound;
//   - a worker registry with periodic health probes against each
//     worker's /healthz capacity report, and mark-down/mark-up state
//     transitions that shrink and regrow the ring;
//   - a forwarding proxy with bounded retries/backoff and failover to
//     the next ring replica on connection errors, wired into
//     internal/chaos so worker death is testable deterministically;
//   - an admission-control front door — per-function concurrency limits
//     and a deadline-aware bounded queue that sheds load with 429 +
//     Retry-After instead of collapsing.
package router

import (
	"math"
	"sort"
	"strconv"

	"faasbatch/internal/hashmix"
)

// Ring defaults.
const (
	// DefaultVNodes is the virtual-node count per ring member. 64 keeps
	// ownership spread within a few percent of even for small fleets
	// while the ring stays cheap to rebuild on membership changes.
	DefaultVNodes = 64
	// DefaultLoadBound is the bounded-load factor: a worker accepts new
	// keys while its in-flight load stays below ceil(factor * mean).
	DefaultLoadBound = 1.25
)

// hash64 is the shared splitmix64-finalised FNV-1a pipeline
// (internal/hashmix): raw FNV-1a avalanches poorly on trailing-byte
// differences, so "w1#0".."w1#63" (and "fn-0".."fn-99") would land on one
// tight arc and virtual nodes would stop spreading ownership. The shared
// implementation is deterministic across processes and platforms, so the
// simulator's cluster dispatcher and the live router agree on every
// assignment (the sim-vs-live conformance test depends on it).
func hash64(s string) uint64 { return hashmix.String(s) }

// ringEntry is one virtual node.
type ringEntry struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over named members with virtual nodes.
// It is not safe for concurrent use; the Registry serialises access.
type Ring struct {
	vnodes  int
	entries []ringEntry // sorted by hash, ties by member
	members map[string]struct{}
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// Add inserts a member; it reports false if the member already exists.
func (r *Ring) Add(member string) bool {
	if _, ok := r.members[member]; ok || member == "" {
		return false
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.entries = append(r.entries, ringEntry{
			hash:   hash64(member + "#" + strconv.Itoa(i)),
			member: member,
		})
	}
	sort.Slice(r.entries, func(a, b int) bool {
		if r.entries[a].hash != r.entries[b].hash {
			return r.entries[a].hash < r.entries[b].hash
		}
		return r.entries[a].member < r.entries[b].member
	})
	return true
}

// Remove deletes a member; it reports false if the member is absent.
// Surviving members' virtual nodes keep their positions, so only keys
// owned by the removed member move — the consistent-hashing stability
// property the rebalance tests assert.
func (r *Ring) Remove(member string) bool {
	if _, ok := r.members[member]; !ok {
		return false
	}
	delete(r.members, member)
	kept := r.entries[:0]
	for _, e := range r.entries {
		if e.member != member {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(r.entries); i++ {
		r.entries[i] = ringEntry{}
	}
	r.entries = kept
	return true
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members lists the members, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Pick returns the member owning key: the first virtual node clockwise
// from the key's hash. It reports false on an empty ring.
func (r *Ring) Pick(key string) (string, bool) {
	c := r.Candidates(key, 1)
	if len(c) == 0 {
		return "", false
	}
	return c[0], true
}

// Candidates returns up to max distinct members in ring order starting
// clockwise from key's hash: the owner first, then the successive
// replicas an invocation fails over to.
func (r *Ring) Candidates(key string, max int) []string {
	if len(r.entries) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.members) {
		max = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	out := make([]string, 0, max)
	seen := make(map[string]struct{}, max)
	for i := 0; i < len(r.entries) && len(out) < max; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if _, dup := seen[e.member]; dup {
			continue
		}
		seen[e.member] = struct{}{}
		out = append(out, e.member)
	}
	return out
}

// LoadBound converts a bounded-load factor and a total in-flight count
// into the per-member admission bound: ceil(factor * (total+1) / members)
// — the "consistent hashing with bounded loads" capacity, counting the
// arriving invocation itself. Factors below 1 clamp to 1 (pure
// least-loaded would otherwise starve the ring).
func (r *Ring) LoadBound(factor float64, totalInflight int) int {
	if r.Len() == 0 {
		return 0
	}
	if factor < 1 {
		factor = 1
	}
	return int(math.Ceil(factor * float64(totalInflight+1) / float64(r.Len())))
}

// PickBounded orders the ring's members for one key under bounded load:
// ring candidates whose load (per loadOf) is below the bound first, in
// ring order, then the remaining members by ascending load (least-loaded
// spillover). Every member appears exactly once, so the result doubles
// as the failover order.
func (r *Ring) PickBounded(key string, factor float64, loadOf func(member string) int) []string {
	members := r.Members()
	if len(members) == 0 {
		return nil
	}
	total := 0
	for _, m := range members {
		total += loadOf(m)
	}
	bound := r.LoadBound(factor, total)
	ringOrder := r.Candidates(key, len(members))
	out := make([]string, 0, len(members))
	var spill []string
	for _, m := range ringOrder {
		if loadOf(m) < bound {
			out = append(out, m)
		} else {
			spill = append(spill, m)
		}
	}
	sort.SliceStable(spill, func(a, b int) bool { return loadOf(spill[a]) < loadOf(spill[b]) })
	return append(out, spill...)
}
