package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"

	"faasbatch/internal/httpapi"
	"faasbatch/internal/obs"
)

// This file implements the router's metrics-federation plane: the router
// scrapes every member worker's /metrics and /stats surfaces on demand
// and serves a cluster-wide roll-up on /cluster/metrics and
// /cluster/stats. Federation is exact where exactness is possible —
// counters and fixed-bucket histograms sum bucket-wise with no precision
// tricks — and attributed where it is not: gauges are re-emitted once
// per member under a worker label instead of being averaged into
// meaninglessness. A member that fails to answer is served from its last
// good snapshot (marked stale) so one crashed worker does not blank the
// fleet view.

// memberSnapshot is the last successful scrape of one worker.
type memberSnapshot struct {
	families []*obs.PromFamily
	stats    httpapi.StatsResponse
}

// memberView is one worker's contribution to a cluster view.
type memberView struct {
	worker string
	fresh  bool
	snap   memberSnapshot
}

// scrapeCluster scrapes every registered worker's /metrics and /stats
// concurrently, bounded per member by Config.ScrapeTimeout. Failed
// members fall back to their last good snapshot; members that never
// answered are omitted.
func (rt *Router) scrapeCluster(ctx context.Context) []memberView {
	specs := rt.reg.Specs()
	views := make([]memberView, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec WorkerSpec) {
			defer wg.Done()
			snap, err := rt.scrapeMember(ctx, spec)
			rt.mu.Lock()
			rt.stats.Scrapes++
			if err != nil {
				rt.stats.ScrapeFailures++
			}
			rt.mu.Unlock()
			if err != nil {
				rt.logger.Debug("member scrape failed", "worker", spec.ID, "err", err)
				rt.scrapeMu.Lock()
				last, ok := rt.lastScrape[spec.ID]
				rt.scrapeMu.Unlock()
				if ok {
					views[i] = memberView{worker: spec.ID, fresh: false, snap: last}
				}
				return
			}
			rt.scrapeMu.Lock()
			rt.lastScrape[spec.ID] = snap
			rt.scrapeMu.Unlock()
			views[i] = memberView{worker: spec.ID, fresh: true, snap: snap}
		}(i, spec)
	}
	wg.Wait()
	out := views[:0]
	for _, v := range views {
		if v.worker != "" {
			out = append(out, v)
		}
	}
	return out
}

// scrapeMember fetches one worker's /metrics exposition and /stats
// snapshot.
func (rt *Router) scrapeMember(ctx context.Context, spec WorkerSpec) (memberSnapshot, error) {
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.ScrapeTimeout)
	defer cancel()
	var snap memberSnapshot
	body, err := rt.scrapeGet(sctx, spec.URL+"/metrics")
	if err != nil {
		return snap, err
	}
	defer func() { _ = body.Close() }()
	snap.families, err = obs.ParsePrometheus(io.LimitReader(body, 8<<20))
	if err != nil {
		return snap, fmt.Errorf("parse %s/metrics: %w", spec.ID, err)
	}
	stats, err := rt.scrapeGet(sctx, spec.URL+"/stats")
	if err != nil {
		return snap, err
	}
	defer func() { _ = stats.Close() }()
	if err := json.NewDecoder(io.LimitReader(stats, 1<<20)).Decode(&snap.stats); err != nil {
		return snap, fmt.Errorf("decode %s/stats: %w", spec.ID, err)
	}
	return snap, nil
}

// scrapeGet performs one federation GET and hands back the body on 200.
func (rt *Router) scrapeGet(ctx context.Context, url string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		_ = resp.Body.Close()
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return resp.Body, nil
}

// writeClusterMetrics renders the federated Prometheus exposition:
// synthetic faascluster_* meta-series describing the scrape itself,
// followed by the members' series merged by obs.FederateMetrics.
func (rt *Router) writeClusterMetrics(ctx context.Context, w io.Writer) {
	views := rt.scrapeCluster(ctx)
	fresh := 0
	members := make([]obs.MemberMetrics, len(views))
	for i, v := range views {
		if v.fresh {
			fresh++
		}
		members[i] = obs.MemberMetrics{Worker: v.worker, Families: v.snap.families}
	}
	st := rt.Stats()
	fmt.Fprintf(w, "# HELP faascluster_members Workers registered with the router.\n# TYPE faascluster_members gauge\nfaascluster_members %d\n", len(rt.reg.Specs()))
	fmt.Fprintf(w, "# HELP faascluster_members_scraped Workers that answered this scrape round.\n# TYPE faascluster_members_scraped gauge\nfaascluster_members_scraped %d\n", fresh)
	fmt.Fprintf(w, "# HELP faascluster_members_stale Workers served from their last good snapshot.\n# TYPE faascluster_members_stale gauge\nfaascluster_members_stale %d\n", len(views)-fresh)
	fmt.Fprintf(w, "# HELP faascluster_scrape_failures_total Member scrapes that failed.\n# TYPE faascluster_scrape_failures_total counter\nfaascluster_scrape_failures_total %d\n", st.ScrapeFailures)
	rt.writeFleetGauges(w)
	obs.FederateMetrics(w, members)
}

// clusterStatsResponse assembles the /cluster/stats reply.
func (rt *Router) clusterStatsResponse(ctx context.Context) httpapi.ClusterStatsResponse {
	views := rt.scrapeCluster(ctx)
	out := httpapi.ClusterStatsResponse{
		Router:  rt.statsResponse(),
		Members: make([]httpapi.MemberStats, 0, len(views)),
	}
	for _, v := range views {
		out.Members = append(out.Members, httpapi.MemberStats{
			Worker: v.worker, Fresh: v.fresh, Stats: v.snap.stats,
		})
		sumStats(&out.Cluster, v.snap.stats)
	}
	return out
}

// sumStats adds src's numeric fields into dst field-wise, by reflection:
// a StatsResponse field added upstream is federated here automatically
// instead of silently reading zero in the cluster roll-up.
func sumStats(dst *httpapi.StatsResponse, src httpapi.StatsResponse) {
	dv := reflect.ValueOf(dst).Elem()
	sv := reflect.ValueOf(src)
	for i := 0; i < sv.NumField(); i++ {
		switch sv.Field(i).Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			dv.Field(i).SetInt(dv.Field(i).Int() + sv.Field(i).Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			dv.Field(i).SetUint(dv.Field(i).Uint() + sv.Field(i).Uint())
		case reflect.Float32, reflect.Float64:
			dv.Field(i).SetFloat(dv.Field(i).Float() + sv.Field(i).Float())
		}
	}
}
