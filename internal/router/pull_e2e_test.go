package router

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"faasbatch/internal/pullsched"
)

// newPullRouter builds a pull-policy router over fake workers.
func newPullRouter(t *testing.T, workers []*fakeWorker, pcfg *pullsched.Config) *Router {
	t.Helper()
	return newTestRouter(t, workers, func(cfg *Config) {
		cfg.Policy = PolicyPull
		cfg.Pull = pcfg
	})
}

// TestPullInvokeBasic: the pull policy serves a healthy fleet and its
// core quiesces with conservation intact.
func TestPullInvokeBasic(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	for _, fw := range workers {
		fw.set(func(w *fakeWorker) { w.invokeDelay = 50 * time.Millisecond })
	}
	rt := newPullRouter(t, workers, nil)
	var wg sync.WaitGroup
	errs := make([]error, 10)
	for i := 0; i < 10; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := rt.Invoke(context.Background(), routedReq(fmt.Sprintf("fn-%d", i%3)))
			if err == nil && resp.Worker != "w1" && resp.Worker != "w2" {
				err = fmt.Errorf("served by %q", resp.Worker)
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	st := rt.PullStats()
	if st.Enqueued != 10 || st.Completed != 10 || st.Queued != 0 || st.Leases != 0 {
		t.Fatalf("core stats after 10 invokes: %+v", st)
	}
	if ps := rt.Policy().Stats(); ps.Policy != PolicyPull || ps.Granted != 10 {
		t.Fatalf("policy stats: %+v", ps)
	}
	if workers[0].servedCount() == 0 || workers[1].servedCount() == 0 {
		t.Fatalf("late binding should use both idle workers: w1=%d w2=%d",
			workers[0].servedCount(), workers[1].servedCount())
	}
}

// TestPullLeaseRequeuedOnceOnWorkerCrash: a worker dies mid-lease
// (connection refused); the lease requeues exactly once, the re-grant
// late-binds to the survivor, and conservation holds — the live half of
// the zero-lost-invocations guarantee.
func TestPullLeaseRequeuedOnceOnWorkerCrash(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	rt := newPullRouter(t, workers, nil)
	// Kill w1's listener: the first grant goes to the least-loaded
	// lowest slot (w1), whose forward now fails at the socket.
	workers[0].srv.Close()
	resp, err := rt.Invoke(context.Background(), routedReq("hot"))
	if err != nil {
		t.Fatalf("invoke across crash: %v", err)
	}
	if resp.Worker != "w2" {
		t.Fatalf("served by %q, want failover to w2", resp.Worker)
	}
	if resp.ForwardAttempts != 2 {
		t.Fatalf("ForwardAttempts = %d, want 2", resp.ForwardAttempts)
	}
	st := rt.PullStats()
	if st.Requeues != 1 || st.Granted != 2 || st.Failed != 1 {
		t.Fatalf("lease should requeue exactly once: %+v", st)
	}
	if st.Enqueued != st.Completed+st.Aborted || st.Leases != 0 {
		t.Fatalf("conservation after crash: %+v", st)
	}
	rst := rt.Stats()
	if rst.Retries != 1 || rst.Failovers != 1 || rst.Completed != 1 {
		t.Fatalf("router stats after crash: %+v", rst)
	}
}

// TestPullShedsAtQueueDepth: with one slow single-slot worker and a
// depth-1 queue, a third concurrent arrival sheds as a 429-style
// OverloadError and the Shed counter moves — queue-depth admission
// control replacing the per-function semaphore.
func TestPullShedsAtQueueDepth(t *testing.T) {
	fw := newFakeWorker(t, "w1")
	fw.set(func(w *fakeWorker) { w.invokeDelay = 300 * time.Millisecond })
	rt := newPullRouter(t, []*fakeWorker{fw}, &pullsched.Config{
		Capacity:   1,
		BatchSize:  1,
		QueueDepth: 1,
	})
	const calls = 4
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = rt.Invoke(context.Background(), routedReq("hot"))
			// Stagger just enough that at least the first caller holds
			// the lease before the last arrives.
		}()
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()
	var served, shed int
	for _, err := range errs {
		var overload *OverloadError
		switch {
		case err == nil:
			served++
		case errors.As(err, &overload):
			if overload.Reason != "pull queue full" {
				t.Fatalf("unexpected overload reason %q", overload.Reason)
			}
			shed++
		default:
			t.Fatalf("unexpected invoke error: %v", err)
		}
	}
	if shed == 0 || served == 0 {
		t.Fatalf("want a mix of served and shed: served=%d shed=%d", served, shed)
	}
	st := rt.Stats()
	if st.Shed != int64(shed) || st.Routed != int64(served) {
		t.Fatalf("router stats: %+v (served=%d shed=%d)", st, served, shed)
	}
	cst := rt.PullStats()
	if cst.Shed != uint64(shed) || cst.Enqueued != cst.Completed+cst.Aborted {
		t.Fatalf("core stats: %+v", cst)
	}
}

// TestPullWakeOnActivation: with the whole fleet retired, an invocation
// queues in the pull core; activating a worker fires the registry
// membership hook, which wakes the queue and late-binds the invocation
// to the new capacity — the pull half of scale-from-zero.
func TestPullWakeOnActivation(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	rt := newPullRouter(t, workers, nil)
	rt.reg.Retire("w1")
	rt.reg.Retire("w2")
	type result struct {
		worker string
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := rt.Invoke(context.Background(), routedReq("hot"))
		resCh <- result{resp.Worker, err}
	}()
	// The invocation must be queued, not failed: no eligible worker.
	deadline := time.Now().Add(2 * time.Second)
	for rt.PullStats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("invocation never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rt.reg.Activate("w2")
	select {
	case res := <-resCh:
		if res.err != nil {
			t.Fatalf("invoke after wake: %v", res.err)
		}
		if res.worker != "w2" {
			t.Fatalf("served by %q, want the activated w2", res.worker)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wake never drained the queue")
	}
}

// TestPullAbortOnContextCancel: a queued invocation whose caller gives
// up is withdrawn (aborted), so it can never be served later and
// conservation still balances.
func TestPullAbortOnContextCancel(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1")}
	rt := newPullRouter(t, workers, nil)
	rt.reg.Retire("w1") // nothing eligible: the invocation must queue
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := rt.Invoke(ctx, routedReq("hot"))
		errCh <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for rt.PullStats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("invocation never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("invoke after cancel: %v", err)
	}
	st := rt.PullStats()
	if st.Aborted != 1 || st.Queued != 0 || st.Enqueued != st.Completed+st.Aborted {
		t.Fatalf("core stats after cancel: %+v", st)
	}
	// The withdrawn invocation must not resurface on the next wake.
	rt.reg.Activate("w1")
	time.Sleep(50 * time.Millisecond)
	if workers[0].servedCount() != 0 {
		t.Fatal("aborted invocation was served after the wake")
	}
}

// TestPullLeaseExpirySweep: with a LeaseBudget configured, a lease
// whose holder never settles is reclaimed by the probe-tick sweep and
// re-granted — the backstop for driverless leases.
func TestPullLeaseExpirySweep(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	rt := newPullRouter(t, workers, &pullsched.Config{
		Capacity:    2,
		LeaseBudget: 10 * time.Millisecond,
	})
	// Take a lease directly against the core (no driver goroutine), as
	// a died-without-settling holder would leave it.
	gs, shed := rt.PullEnqueue(1, "hot", 0)
	if shed || len(gs) != 1 {
		t.Fatalf("seed lease: gs=%+v shed=%v", gs, shed)
	}
	time.Sleep(20 * time.Millisecond)
	rt.policy.sweep()
	st := rt.PullStats()
	if st.Expired != 1 || st.Requeues != 1 || st.Granted != 2 {
		t.Fatalf("sweep should reclaim and re-grant the orphan lease: %+v", st)
	}
}

// TestPullStatsSurface: /stats carries the policy block and /metrics
// the faasrouter_pull_* series under the pull policy; the hash policy
// reports its name with no pull series.
func TestPullStatsSurface(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1")}
	rt := newPullRouter(t, workers, nil)
	if _, err := rt.Invoke(context.Background(), routedReq("hot")); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	srv := httptest.NewServer(NewHTTPHandler(rt))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/cluster/metrics"} {
		doc := scrapeText(t, srv, path)
		pst := rt.policy.Stats()
		for _, ex := range policyExports {
			if !strings.Contains(doc, fmt.Sprintf("# TYPE %s %s\n", ex.Name, ex.Kind)) {
				t.Errorf("%s missing TYPE header for %s", path, ex.Name)
			}
			if got, want := gaugeValue(doc, ex.Name), ex.Value(pst); got != want {
				t.Errorf("%s: %s = %v, want %v", path, ex.Name, got, want)
			}
		}
	}
	stats := rt.statsResponse()
	if stats.Policy == nil || stats.Policy.Policy != PolicyPull || stats.Policy.Granted != 1 {
		t.Fatalf("/stats policy block: %+v", stats.Policy)
	}

	hashRt := newTestRouter(t, workers, nil)
	hashSrv := httptest.NewServer(NewHTTPHandler(hashRt))
	defer hashSrv.Close()
	if doc := scrapeText(t, hashSrv, "/metrics"); strings.Contains(doc, "faasrouter_pull_") {
		t.Error("hash policy exposes pull series")
	}
	if stats := hashRt.statsResponse(); stats.Policy == nil || stats.Policy.Policy != PolicyHash {
		t.Fatalf("hash /stats policy block: %+v", stats.Policy)
	}
}
