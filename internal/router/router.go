package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/chaos"
	"faasbatch/internal/httpapi"
	"faasbatch/internal/metrics"
	"faasbatch/internal/obs"
	"faasbatch/internal/pullsched"
)

// ErrNoWorkers reports that no worker is currently marked up.
var ErrNoWorkers = errors.New("router: no healthy worker")

// PassThroughError carries a worker's non-retryable HTTP error verbatim
// to the client: the worker answered, so the failure belongs to the
// request (unknown function, handler error), not to the fleet — failing
// over would just re-run a doomed invocation on a healthy worker.
type PassThroughError struct {
	// Worker identifies the worker that answered.
	Worker string
	// Status is the worker's HTTP status code.
	Status int
	// Body is the worker's response body.
	Body string
}

// Error implements error.
func (e *PassThroughError) Error() string {
	return fmt.Sprintf("router: worker %s answered %d: %s", e.Worker, e.Status, e.Body)
}

// Config parameterises the router.
type Config struct {
	// Workers is the fleet (at least one).
	Workers []WorkerSpec
	// ProbeInterval is the health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 500ms).
	ProbeTimeout time.Duration
	// MarkDownAfter is how many consecutive failures (probe or forward)
	// mark a worker down (default 2).
	MarkDownAfter int
	// MarkUpAfter is how many consecutive probe successes mark a down
	// worker back up (default 2).
	MarkUpAfter int
	// VNodes is the ring's virtual-node count per worker (default
	// DefaultVNodes).
	VNodes int
	// LoadBound is the bounded-load factor (default DefaultLoadBound);
	// values below 1 clamp to 1.
	LoadBound float64
	// MaxAttempts caps forward attempts per invocation across workers
	// (default 3).
	MaxAttempts int
	// RetryBackoff is the base delay before a forward retry, doubled per
	// attempt (default 10ms; 0 keeps the default, negative disables).
	RetryBackoff time.Duration
	// FnConcurrency caps concurrent forwards per function (0 = no
	// admission control).
	FnConcurrency int
	// QueueDepth bounds per-function waiters beyond the concurrency cap
	// (with FnConcurrency > 0; default 0 = shed immediately at the cap).
	QueueDepth int
	// QueueWait bounds how long a waiter queues before shedding
	// (default 1s).
	QueueWait time.Duration
	// ForwardTimeout bounds one forward attempt (default 30s).
	ForwardTimeout time.Duration
	// Policy selects the scheduling policy: PolicyHash (consistent-hash
	// push, the default) or PolicyPull (per-function queues with
	// worker-pull late binding). See docs/CLUSTER.md "Choosing a policy".
	Policy string
	// Pull tunes the pull policy's decision core (shards, batch size,
	// per-worker capacity, queue depth, lease budget). Nil uses the
	// pullsched defaults; ignored under PolicyHash.
	Pull *pullsched.Config
	// ScrapeTimeout bounds one member scrape (both its /metrics and
	// /stats round trips) when serving /cluster/metrics and
	// /cluster/stats (default 2s).
	ScrapeTimeout time.Duration
	// Autoscale enables the predictive autoscaling control loop over
	// the registered worker pool: slot i of the controller maps to
	// Workers[i], standby workers are activated and drained as demand
	// moves, and MaxWorkers clamps to len(Workers). Nil disables
	// autoscaling (the whole pool serves, PR 3 behaviour).
	Autoscale *autoscale.Config
	// Chaos optionally fails forward attempts deterministically
	// (chaos.WorkerFailure), so failover is testable without killing
	// real processes. Nil injects nothing.
	Chaos *chaos.Injector
	// Tracer records router spans: route, probe, forward, forward-retry,
	// shed. Nil disables tracing.
	Tracer *obs.Tracer
	// Logger receives the router's structured logs. Nil discards.
	Logger *slog.Logger
	// Transport overrides the forwarding HTTP transport (tests).
	Transport http.RoundTripper
}

// Stats is a snapshot of router counters.
type Stats struct {
	// Routed counts invocations admitted past admission control.
	Routed int64
	// Completed counts invocations that returned a worker response.
	Completed int64
	// Forwarded counts forward attempts that reached a worker.
	Forwarded int64
	// Retries counts extra forward attempts after transient failures.
	Retries int64
	// Failovers counts attempts that moved to a different worker.
	Failovers int64
	// Shed counts invocations rejected by admission control.
	Shed int64
	// NoWorkers counts invocations rejected with an empty ring.
	NoWorkers int64
	// Errors counts invocations that exhausted their forward attempts.
	Errors int64
	// Probes counts health probes sent.
	Probes int64
	// ProbeFailures counts health probes that failed.
	ProbeFailures int64
	// Scrapes counts member scrape attempts made for the cluster view.
	Scrapes int64
	// ScrapeFailures counts member scrapes that failed.
	ScrapeFailures int64
}

// Router fronts a fleet of worker gateways: consistent-hash function
// affinity with bounded load, health-checked membership, bounded
// retries with failover, and admission control.
type Router struct {
	cfg     Config
	reg     *Registry
	adm     *admission
	policy  Policy
	scaler  *liveScaler
	client  *http.Client
	tracer  *obs.Tracer
	metrics *obs.Metrics
	logger  *slog.Logger

	mu    sync.Mutex
	stats Stats

	scrapeMu   sync.Mutex
	lastScrape map[string]memberSnapshot

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
	closed  bool
}

// New builds a router over cfg.Workers. Functional options layer
// policy, autoscale, and observability knobs over the config struct; a
// knob set both ways (or an option passed twice) fails with
// ErrConflictingOptions. Start launches the prober; a router without
// Start still routes (tests drive ProbeAll directly).
func New(cfg Config, opts ...Option) (*Router, error) {
	cfg, err := mergeOptions(cfg, opts)
	if err != nil {
		return nil, err
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.LoadBound == 0 {
		cfg.LoadBound = DefaultLoadBound
	}
	if cfg.LoadBound < 1 {
		cfg.LoadBound = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 2 * time.Second
	}
	reg, err := NewRegistry(cfg.Workers, cfg.VNodes, cfg.MarkDownAfter, cfg.MarkUpAfter)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Nop()
	}
	rt := &Router{
		cfg:        cfg,
		reg:        reg,
		adm:        newAdmission(cfg.FnConcurrency, cfg.QueueDepth, cfg.QueueWait),
		client:     &http.Client{Transport: cfg.Transport},
		tracer:     cfg.Tracer,
		metrics:    obs.NewMetrics(),
		logger:     logger,
		lastScrape: make(map[string]memberSnapshot),
		stop:       make(chan struct{}),
	}
	if cfg.Autoscale != nil {
		scaler, err := newLiveScaler(rt, *cfg.Autoscale)
		if err != nil {
			return nil, err
		}
		rt.scaler = scaler
	}
	// The policy builds after the scaler so the pull driver's initial
	// worker eligibility reflects autoscale's standby retirements.
	switch cfg.Policy {
	case "", PolicyHash:
		rt.policy = &hashPolicy{rt: rt}
	case PolicyPull:
		pp, err := newPullPolicy(rt, cfg.Pull)
		if err != nil {
			return nil, err
		}
		rt.policy = pp
	default:
		return nil, fmt.Errorf("router: unknown policy %q (want %q or %q)",
			cfg.Policy, PolicyHash, PolicyPull)
	}
	reg.OnMembership(func(id string, inRing bool) {
		rt.policy.OnMembershipChange(id, inRing)
	})
	rt.logger.Info("router started",
		"workers", len(cfg.Workers),
		"policy", rt.policy.Name(),
		"vnodes", ringVNodes(cfg.VNodes),
		"loadBound", cfg.LoadBound,
		"maxAttempts", cfg.MaxAttempts,
		"fnConcurrency", cfg.FnConcurrency,
		"autoscale", cfg.Autoscale != nil)
	return rt, nil
}

// Policy exposes the active scheduling policy.
func (rt *Router) Policy() Policy { return rt.policy }

// ringVNodes resolves the configured virtual-node count.
func ringVNodes(v int) int {
	if v <= 0 {
		return DefaultVNodes
	}
	return v
}

// Registry exposes the worker registry (for /workers and tests).
func (rt *Router) Registry() *Registry { return rt.reg }

// Metrics exposes the router's histogram registry (never nil).
func (rt *Router) Metrics() *obs.Metrics { return rt.metrics }

// Stats snapshots the router counters.
func (rt *Router) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// ForwardImbalance reports max/mean of per-worker forwarded counts.
func (rt *Router) ForwardImbalance() float64 {
	return metrics.Imbalance(rt.reg.ForwardedPerWorker())
}

// Start launches the periodic health prober and, when autoscaling is
// configured, the scale-evaluation loop.
func (rt *Router) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started || rt.closed {
		return
	}
	rt.started = true
	rt.wg.Add(1)
	go rt.probeLoop()
	if rt.scaler != nil {
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.scaler.loop(rt.stop)
		}()
	}
}

// Close stops the prober. It does not wait for in-flight forwards; the
// HTTP server draining above the router owns that.
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	rt.mu.Unlock()
	close(rt.stop)
	rt.wg.Wait()
	return nil
}

// probeLoop probes the fleet every ProbeInterval until Close.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			rt.ProbeAll(context.Background())
			// The lease-expiry sweep (pull policy, when a LeaseBudget is
			// configured) rides the probe tick rather than its own timer.
			rt.policy.sweep()
		case <-rt.stop:
			return
		}
	}
}

// ProbeAll runs one synchronous health-probe round over every worker —
// up and down alike, so recoveries are noticed. Each probe reads the
// worker's /healthz capacity report; anything but a 200 "ok" counts as
// a failure toward mark-down.
func (rt *Router) ProbeAll(ctx context.Context) {
	trace := rt.tracer.Begin() // one trace per probe round
	for _, spec := range rt.reg.Specs() {
		start := rt.tracer.Now()
		health, err := rt.probeOne(ctx, spec)
		rt.tracer.Record(obs.Span{
			Trace: trace, Name: obs.SpanProbe, Detail: spec.ID,
			Start: start, End: rt.tracer.Now(),
		})
		rt.mu.Lock()
		rt.stats.Probes++
		if err != nil {
			rt.stats.ProbeFailures++
		}
		rt.mu.Unlock()
		if err == nil {
			rt.reg.SetCapacity(spec.ID, health.Capacity)
		}
		changed, now := rt.reg.NoteResult(spec.ID, err == nil)
		if changed {
			rt.logger.Warn("worker state changed", "worker", spec.ID, "state", now.String(), "err", err)
		} else if err != nil {
			rt.logger.Debug("probe failed", "worker", spec.ID, "err", err)
		}
	}
}

// probeOne performs one /healthz round trip.
func (rt *Router) probeOne(ctx context.Context, spec WorkerSpec) (httpapi.HealthResponse, error) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, spec.URL+"/healthz", nil)
	if err != nil {
		return httpapi.HealthResponse{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return httpapi.HealthResponse{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	var health httpapi.HealthResponse
	// The body is informative even on 503 (draining/unready states).
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&health)
	if resp.StatusCode != http.StatusOK {
		return health, fmt.Errorf("healthz %d (%s)", resp.StatusCode, health.Status)
	}
	if health.Status != "" && health.Status != httpapi.HealthOK {
		return health, fmt.Errorf("healthz status %q", health.Status)
	}
	return health, nil
}

// Invoke routes one invocation: admission, ring pick, forward with
// bounded retries and failover. The error is an *OverloadError (shed),
// ErrNoWorkers, a *PassThroughError (the worker answered with an HTTP
// error), or a wrapped transport error after the attempt budget drained.
func (rt *Router) Invoke(ctx context.Context, req httpapi.RoutedInvokeRequest) (httpapi.RoutedInvokeResponse, error) {
	return rt.InvokeTraced(ctx, req, 0)
}

// InvokeTraced is Invoke with an explicit parent trace ID: a non-zero
// parent (from an inbound traceparent header) is adopted instead of
// minting a fresh trace, so the caller's trace, the router's spans and
// the worker's spans stitch into one end-to-end timeline. The trace
// identity travels to the worker as a traceparent header on the forward
// request and comes back on the response's TraceID field.
func (rt *Router) InvokeTraced(ctx context.Context, req httpapi.RoutedInvokeRequest, parent uint64) (httpapi.RoutedInvokeResponse, error) {
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	trace := rt.tracer.BeginWith(parent)
	admitStart := rt.tracer.Now()
	if rt.policy.Name() != PolicyPull {
		// The pull policy sheds on its bounded queue depth inside
		// Assign instead of the per-function semaphore, so admission
		// control only gates the push path.
		release, err := rt.adm.Acquire(ctx, req.Fn)
		if err != nil {
			rt.noteShed(trace, admitStart, req.Fn, err)
			return httpapi.RoutedInvokeResponse{}, err
		}
		defer release()
	}
	rt.mu.Lock()
	rt.stats.Routed++
	rt.mu.Unlock()
	if rt.scaler != nil {
		// Feed the demand forecaster; on a scaled-to-zero fleet this
		// wakes the first worker before forward looks for candidates.
		rt.scaler.observe(req.Fn, rt.scaler.now())
	}
	resp, err := rt.forward(ctx, trace, req)
	var overload *OverloadError
	if err != nil && errors.As(err, &overload) {
		// A pull-policy shed surfaces from forward, after Routed was
		// counted; undo it so Routed keeps meaning "admitted" under
		// both policies.
		rt.mu.Lock()
		rt.stats.Routed--
		rt.mu.Unlock()
		rt.noteShed(trace, admitStart, req.Fn, err)
	}
	return resp, err
}

// noteShed records one shed invocation: span, counter, log line.
func (rt *Router) noteShed(trace uint64, start time.Duration, fn string, err error) {
	rt.tracer.Record(obs.Span{
		Trace: trace, Name: obs.SpanShed, Fn: fn,
		Start: start, End: rt.tracer.Now(),
	})
	rt.mu.Lock()
	rt.stats.Shed++
	rt.mu.Unlock()
	rt.logger.Warn("invocation shed", "fn", fn, "err", err)
}

// forward asks the policy for a binding, then walks its per-attempt
// worker picks with bounded retries/backoff.
func (rt *Router) forward(ctx context.Context, trace uint64, req httpapi.RoutedInvokeRequest) (httpapi.RoutedInvokeResponse, error) {
	routeStart := rt.tracer.Now()
	bnd, assignErr := rt.policy.Assign(ctx, req.Fn)
	detail := "candidates=0"
	if assignErr == nil {
		detail = bnd.detail()
	}
	rt.tracer.Record(obs.Span{
		Trace: trace, Name: obs.SpanRoute, Fn: req.Fn,
		Detail: detail,
		Start:  routeStart, End: rt.tracer.Now(),
	})
	if assignErr != nil {
		if errors.Is(assignErr, ErrNoWorkers) {
			rt.mu.Lock()
			rt.stats.NoWorkers++
			rt.mu.Unlock()
		}
		return httpapi.RoutedInvokeResponse{}, assignErr
	}
	// Settle the binding exactly once on every exit path: success and
	// pass-through ack the lease, everything else aborts it, so the
	// pull core's conservation (enqueued = completed + aborted) holds.
	served := false
	defer func() { bnd.Done(served) }()
	// Byte-oriented encode of the forward body. The buffer is fresh, not
	// pooled: http.Transport may keep reading the bytes.Reader after a
	// per-attempt context cancellation, so recycling it here could hand a
	// half-written buffer to an in-flight request.
	body := httpapi.AppendInvokeRequest(
		make([]byte, 0, len(req.Fn)+len(req.Payload)+32), req.Fn, req.Payload)
	var lastErr error
	var prev string
	for attempt := 1; attempt <= rt.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return httpapi.RoutedInvokeResponse{}, fmt.Errorf("router: invoke %s: %w", req.Fn, err)
		}
		if attempt > 1 {
			rt.mu.Lock()
			rt.stats.Retries++
			rt.mu.Unlock()
			rt.backoff(ctx, trace, req.Fn, attempt)
		}
		id, err := bnd.Next(ctx, attempt)
		if err != nil {
			// Context expired (or the router closed) while waiting for a
			// pull lease; the deferred Done aborts the queued item.
			return httpapi.RoutedInvokeResponse{}, fmt.Errorf("router: invoke %s: %w", req.Fn, err)
		}
		if attempt > 1 && id != prev {
			rt.mu.Lock()
			rt.stats.Failovers++
			rt.mu.Unlock()
		}
		prev = id
		resp, err := rt.tryWorker(ctx, trace, attempt, id, req.Fn, body)
		if err == nil {
			resp.ForwardAttempts = attempt
			if resp.TraceID == "" && trace != 0 {
				// Worker tracing off: report the router's trace identity.
				resp.TraceID = fmt.Sprintf("%016x", trace)
			}
			rt.reg.NoteForwarded(id)
			rt.reg.NoteResult(id, true)
			rt.mu.Lock()
			rt.stats.Completed++
			rt.mu.Unlock()
			served = true
			return resp, nil
		}
		var pass *PassThroughError
		if errors.As(err, &pass) {
			// The worker answered: not a fleet failure, pass it through.
			rt.reg.NoteResult(id, true)
			rt.mu.Lock()
			rt.stats.Completed++
			rt.mu.Unlock()
			served = true
			return httpapi.RoutedInvokeResponse{}, err
		}
		// Transient: connection error, injected worker failure, or a 503
		// from a draining worker. Counts toward mark-down, then fail over.
		lastErr = err
		changed, now := rt.reg.NoteResult(id, false)
		if changed {
			rt.logger.Warn("worker state changed", "worker", id, "state", now.String(), "err", err)
		}
		rt.logger.Info("forward failed", "fn", req.Fn, "worker", id, "attempt", attempt, "err", err)
	}
	rt.mu.Lock()
	rt.stats.Errors++
	rt.mu.Unlock()
	return httpapi.RoutedInvokeResponse{}, fmt.Errorf("router: invoke %s: %d attempts exhausted: %w",
		req.Fn, rt.cfg.MaxAttempts, lastErr)
}

// attemptOutcome labels a forward attempt's result for its span detail:
// "ok", "worker-error" (the worker answered with a non-retryable HTTP
// error) or "transient" (connection failure, 503, injected fault).
func attemptOutcome(err error) string {
	if err == nil {
		return "ok"
	}
	var pass *PassThroughError
	if errors.As(err, &pass) {
		return "worker-error"
	}
	return "transient"
}

// backoff sleeps the exponential retry delay (base doubled per extra
// attempt), bounded by ctx.
func (rt *Router) backoff(ctx context.Context, trace uint64, fn string, attempt int) {
	if rt.cfg.RetryBackoff <= 0 {
		return
	}
	delay := rt.cfg.RetryBackoff << uint(attempt-2)
	start := rt.tracer.Now()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
	rt.tracer.Record(obs.Span{
		Trace: trace, Name: obs.SpanForwardRetry, Fn: fn, Attempt: attempt,
		Start: start, End: rt.tracer.Now(),
	})
}

// tryWorker performs one forward attempt against one worker. A non-2xx,
// non-503 worker response returns a *PassThroughError; connection
// errors, injected worker failures and 503s return plain (retryable)
// errors. Each attempt records one forward span carrying the worker ID
// and the attempt's outcome, and propagates the trace to the worker as
// a traceparent header so the worker's spans join the same trace.
func (rt *Router) tryWorker(ctx context.Context, trace uint64, attempt int, id, fn string, body []byte) (_ httpapi.RoutedInvokeResponse, retErr error) {
	spanStart := rt.tracer.Now()
	defer func() {
		rt.tracer.Record(obs.Span{
			Trace: trace, Name: obs.SpanForward, Fn: fn, Attempt: attempt,
			Detail: id + " " + attemptOutcome(retErr),
			Start:  spanStart, End: rt.tracer.Now(),
		})
	}()
	if rt.cfg.Chaos.Should(chaos.WorkerFailure) {
		return httpapi.RoutedInvokeResponse{}, fmt.Errorf("injected worker failure (%s)", id)
	}
	url := rt.reg.URL(id)
	if url == "" {
		return httpapi.RoutedInvokeResponse{}, fmt.Errorf("unknown worker %q", id)
	}
	rt.reg.AddInflight(id, 1)
	defer rt.reg.AddInflight(id, -1)
	fctx, cancel := context.WithTimeout(ctx, rt.cfg.ForwardTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(fctx, http.MethodPost, url+"/invoke", bytes.NewReader(body))
	if err != nil {
		return httpapi.RoutedInvokeResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if trace != 0 {
		hreq.Header.Set(obs.TraceParentHeader, obs.FormatTraceParent(trace))
	}
	start := time.Now()
	resp, err := rt.client.Do(hreq)
	if err != nil {
		return httpapi.RoutedInvokeResponse{}, fmt.Errorf("forward to %s: %w", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	rt.metrics.ObserveForward(id, time.Since(start))
	if rt.scaler != nil {
		rt.scaler.observeLatency(time.Since(start))
	}
	rt.mu.Lock()
	rt.stats.Forwarded++
	rt.mu.Unlock()
	// Worker responses are read into a pooled buffer: every escape below
	// copies (json.Unmarshal clones RawMessage fields, error formatting
	// and PassThroughError stringify), so nothing aliases raw after this
	// attempt returns.
	bufp := workerRespBufPool.Get().(*[]byte)
	raw, err := appendReadAll((*bufp)[:0], io.LimitReader(resp.Body, 4<<20))
	*bufp = raw
	defer workerRespBufPool.Put(bufp)
	if err != nil {
		return httpapi.RoutedInvokeResponse{}, fmt.Errorf("read response from %s: %w", id, err)
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return httpapi.RoutedInvokeResponse{}, fmt.Errorf("worker %s unavailable: %s", id, bytes.TrimSpace(raw))
	}
	if resp.StatusCode != http.StatusOK {
		return httpapi.RoutedInvokeResponse{}, &PassThroughError{
			Worker: id, Status: resp.StatusCode, Body: string(bytes.TrimSpace(raw)),
		}
	}
	var inner httpapi.InvokeResponse
	if err := json.Unmarshal(raw, &inner); err != nil {
		return httpapi.RoutedInvokeResponse{}, fmt.Errorf("decode response from %s: %w", id, err)
	}
	out := httpapi.RoutedInvokeResponse{InvokeResponse: inner, Worker: id}
	if inner.Worker != "" {
		// Prefer the worker's self-reported identity: it survives URL
		// remappings in front of the fleet.
		out.Worker = inner.Worker
	}
	return out, nil
}

// workerRespBufPool recycles the per-attempt buffer a worker response is
// read into (see tryWorker for the no-aliasing argument).
var workerRespBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// appendReadAll reads r to EOF appending into dst, growing the buffer as
// needed; the grown buffer is returned even on error so callers can keep
// its capacity.
func appendReadAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}
