package router

import (
	"testing"
)

func threeWorkers() []WorkerSpec {
	return []WorkerSpec{
		{ID: "w1", URL: "http://w1"},
		{ID: "w2", URL: "http://w2"},
		{ID: "w3", URL: "http://w3"},
	}
}

func TestNewRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(nil, 0, 0, 0); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewRegistry([]WorkerSpec{{ID: "", URL: "http://x"}}, 0, 0, 0); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := NewRegistry([]WorkerSpec{{ID: "w", URL: ""}}, 0, 0, 0); err == nil {
		t.Fatal("empty url accepted")
	}
	if _, err := NewRegistry([]WorkerSpec{{ID: "w", URL: "a"}, {ID: "w", URL: "b"}}, 0, 0, 0); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestRegistryStartsOptimisticallyUp(t *testing.T) {
	reg, err := NewRegistry(threeWorkers(), 16, 2, 2)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	if reg.UpCount() != 3 {
		t.Fatalf("UpCount = %d, want 3", reg.UpCount())
	}
	if st := reg.State("w2"); st != WorkerUp {
		t.Fatalf("State(w2) = %v, want up", st)
	}
	if st := reg.State("nope"); st != 0 {
		t.Fatalf("unknown worker state = %v, want 0", st)
	}
	if url := reg.URL("w3"); url != "http://w3" {
		t.Fatalf("URL(w3) = %q", url)
	}
	if url := reg.URL("nope"); url != "" {
		t.Fatalf("URL(nope) = %q, want empty", url)
	}
}

// TestRegistryMarkDownMarkUp walks the health state machine: mark-down
// needs markDownAfter consecutive failures, mark-up needs markUpAfter
// consecutive successes, and a success in between resets the failure
// streak.
func TestRegistryMarkDownMarkUp(t *testing.T) {
	reg, err := NewRegistry(threeWorkers(), 16, 2, 2)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	// One failure: not yet down.
	if changed, now := reg.NoteResult("w1", false); changed || now != WorkerUp {
		t.Fatalf("first failure: changed=%v now=%v", changed, now)
	}
	// A success resets the streak.
	reg.NoteResult("w1", true)
	reg.NoteResult("w1", false)
	if st := reg.State("w1"); st != WorkerUp {
		t.Fatalf("streak not reset: %v", st)
	}
	// Two consecutive failures: down, ring shrinks.
	if changed, now := reg.NoteResult("w1", false); !changed || now != WorkerDown {
		t.Fatalf("second failure: changed=%v now=%v", changed, now)
	}
	if reg.UpCount() != 2 {
		t.Fatalf("UpCount after mark-down = %d, want 2", reg.UpCount())
	}
	// Further failures cause no further transitions.
	if changed, _ := reg.NoteResult("w1", false); changed {
		t.Fatal("already-down worker transitioned again")
	}
	// One success: still down.
	if changed, now := reg.NoteResult("w1", true); changed || now != WorkerDown {
		t.Fatalf("first recovery: changed=%v now=%v", changed, now)
	}
	// Second consecutive success: back up, ring regrows.
	if changed, now := reg.NoteResult("w1", true); !changed || now != WorkerUp {
		t.Fatalf("second recovery: changed=%v now=%v", changed, now)
	}
	if reg.UpCount() != 3 {
		t.Fatalf("UpCount after mark-up = %d, want 3", reg.UpCount())
	}
	if downs, ups := reg.Transitions(); downs != 1 || ups != 1 {
		t.Fatalf("Transitions = %d/%d, want 1/1", downs, ups)
	}
	// Unknown workers are ignored.
	if changed, now := reg.NoteResult("nope", false); changed || now != 0 {
		t.Fatalf("unknown worker: changed=%v now=%v", changed, now)
	}
}

// TestRegistryRingRebalance is the satellite rebalance assertion: a
// marked-down worker's functions reassign to survivors, functions owned
// by survivors stay put, and mark-up restores the original ownership.
func TestRegistryRingRebalance(t *testing.T) {
	reg, err := NewRegistry(threeWorkers(), 64, 1, 1)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	keys := testKeys(300)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		owner, ok := reg.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q) failed", k)
		}
		before[k] = owner
	}

	// markDownAfter=1: one failure kills w2.
	if changed, now := reg.NoteResult("w2", false); !changed || now != WorkerDown {
		t.Fatalf("mark-down: changed=%v now=%v", changed, now)
	}
	movedToSurvivors := 0
	for _, k := range keys {
		owner, ok := reg.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q) failed after mark-down", k)
		}
		if owner == "w2" {
			t.Fatalf("key %q still owned by down worker", k)
		}
		if before[k] == "w2" {
			movedToSurvivors++
		} else if owner != before[k] {
			t.Errorf("key %q moved %s -> %s though its owner stayed up", k, before[k], owner)
		}
	}
	if movedToSurvivors == 0 {
		t.Fatal("down worker owned no keys; spread is broken")
	}
	// Down workers never appear as candidates.
	for _, k := range keys[:20] {
		for _, c := range reg.Candidates(k, 1.25) {
			if c == "w2" {
				t.Fatalf("down worker in candidates for %q", k)
			}
		}
	}

	// markUpAfter=1: one success restores w2 and the original ownership.
	if changed, now := reg.NoteResult("w2", true); !changed || now != WorkerUp {
		t.Fatalf("mark-up: changed=%v now=%v", changed, now)
	}
	for _, k := range keys {
		owner, _ := reg.Owner(k)
		if owner != before[k] {
			t.Errorf("key %q not restored after mark-up: %s != %s", k, owner, before[k])
		}
	}
}

func TestRegistrySnapshotAndCounters(t *testing.T) {
	reg, err := NewRegistry(threeWorkers(), 16, 2, 2)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	reg.SetCapacity("w1", 8)
	reg.SetCapacity("w1", -1) // ignored
	reg.AddInflight("w1", 2)
	reg.AddInflight("w1", -5) // clamps at zero
	reg.NoteForwarded("w2")
	reg.NoteForwarded("w2")
	reg.NoteForwarded("w3")
	reg.NoteResult("w3", false)

	if got := reg.ForwardedPerWorker(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("ForwardedPerWorker = %v", got)
	}
	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot = %v", snap)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].ID >= snap[i].ID {
			t.Fatalf("Snapshot not sorted: %v", snap)
		}
	}
	if snap[0].Capacity != 8 || snap[0].Inflight != 0 {
		t.Fatalf("w1 row = %+v", snap[0])
	}
	if snap[1].Forwarded != 2 || snap[2].Failures != 1 {
		t.Fatalf("rows = %+v", snap)
	}
	if snap[0].State != "up" {
		t.Fatalf("State string = %q", snap[0].State)
	}
	if s := WorkerState(9).String(); s != "state(9)" {
		t.Fatalf("unknown state string = %q", s)
	}
}
