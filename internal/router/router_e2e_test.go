// End-to-end tests for the routing tier, in an external test package so
// they can import internal/cluster (which itself imports internal/router
// for the shared ring) without a cycle. The workers here are real
// platforms — the same internal/platform the faasgate binary runs — so
// the router is exercised against the true /invoke and /healthz surfaces.
package router_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"faasbatch/internal/cluster"
	"faasbatch/internal/httpapi"
	"faasbatch/internal/platform"
	"faasbatch/internal/router"
)

// liveWorker is one real platform behind an httptest listener.
type liveWorker struct {
	id  string
	p   *platform.Platform
	srv *httptest.Server
}

// newLiveWorker boots a platform gateway with the worker-mode settings
// the faasgate binary would use.
func newLiveWorker(t *testing.T, id string) *liveWorker {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.DispatchInterval = 10 * time.Millisecond
	cfg.ColdStart = 0
	cfg.WorkerID = id
	cfg.Capacity = 8
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatalf("platform.New(%s): %v", id, err)
	}
	t.Cleanup(func() { _ = p.Close() })
	err = p.Register("echo", func(_ context.Context, inv *platform.Invocation) (any, error) {
		return json.RawMessage(inv.Payload), nil
	})
	if err != nil {
		t.Fatalf("Register(%s): %v", id, err)
	}
	err = p.Register("slow", func(ctx context.Context, inv *platform.Invocation) (any, error) {
		select {
		case <-time.After(300 * time.Millisecond):
		case <-ctx.Done():
		}
		return "done", nil
	})
	if err != nil {
		t.Fatalf("Register(%s): %v", id, err)
	}
	p.SetReady(true)
	srv := httptest.NewServer(platform.NewHTTPHandler(p))
	t.Cleanup(srv.Close)
	return &liveWorker{id: id, p: p, srv: srv}
}

// newFleet boots n live workers named cluster.NodeMember(i) — the same
// ring member names the simulator uses, so assignments agree.
func newFleet(t *testing.T, n int) []*liveWorker {
	t.Helper()
	fleet := make([]*liveWorker, n)
	for i := range fleet {
		fleet[i] = newLiveWorker(t, cluster.NodeMember(i))
	}
	return fleet
}

func fleetRouter(t *testing.T, fleet []*liveWorker, mut func(*router.Config)) *router.Router {
	t.Helper()
	specs := make([]router.WorkerSpec, len(fleet))
	for i, w := range fleet {
		specs[i] = router.WorkerSpec{ID: w.id, URL: w.srv.URL}
	}
	cfg := router.Config{
		Workers:        specs,
		RetryBackoff:   -1,
		ForwardTimeout: 5 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := router.New(cfg)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

// TestEndToEndFailover is the PR's acceptance run: one router over three
// in-process workers, a worker killed mid-run, zero lost invocations,
// ring ownership reassigned to the survivors, and the per-worker
// forwarded counters on /metrics summing to the driven total.
func TestEndToEndFailover(t *testing.T) {
	fleet := newFleet(t, 3)
	rt := fleetRouter(t, fleet, func(cfg *router.Config) {
		cfg.MarkDownAfter = 1 // a dead socket is decisive
		cfg.MaxAttempts = 4
	})
	fns := make([]string, 6)
	for i := range fns {
		fns[i] = fmt.Sprintf("e2e-fn-%d", i)
	}

	// Routing by one fn name would pin everything to one worker; the run
	// must spread across the fleet, so drive distinct function names,
	// registered on every worker (as a real fleet deployment would).
	for _, w := range fleet {
		for _, fn := range fns {
			fn := fn
			err := w.p.Register(fn, func(_ context.Context, inv *platform.Invocation) (any, error) {
				return json.RawMessage(inv.Payload), nil
			})
			if err != nil {
				t.Fatalf("Register(%s): %v", fn, err)
			}
		}
	}
	drive := func(perFn int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, perFn*len(fns))
		for _, fn := range fns {
			for i := 0; i < perFn; i++ {
				wg.Add(1)
				go func(fn string) {
					defer wg.Done()
					res, err := rt.Invoke(context.Background(), httpapi.RoutedInvokeRequest{
						Fn: fn, Payload: json.RawMessage(`{"n":1}`),
					})
					if err == nil && res.Fn != fn {
						err = fmt.Errorf("response fn %q, want %q", res.Fn, fn)
					}
					errs <- err
				}(fn)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("invocation lost: %v", err)
			}
		}
	}

	const perFn = 10
	drive(perFn) // healthy wave

	// Ownership before the kill, for the rebalance assertion.
	ownersBefore := make(map[string]string, len(fns))
	for _, fn := range fns {
		owner, ok := rt.Registry().Owner(fn)
		if !ok {
			t.Fatalf("Owner(%s) failed", fn)
		}
		ownersBefore[fn] = owner
	}

	// Kill the owner of the first function mid-run.
	victimID := ownersBefore[fns[0]]
	var victim *liveWorker
	for _, w := range fleet {
		if w.id == victimID {
			victim = w
		}
	}
	victim.srv.CloseClientConnections()
	victim.srv.Close()

	drive(perFn) // failover wave: zero lost

	// The victim is down and owns nothing; its functions moved to
	// survivors, functions owned by survivors stayed put.
	if st := rt.Registry().State(victimID); st != router.WorkerDown {
		t.Fatalf("victim state = %v, want down", st)
	}
	if up := rt.Registry().UpCount(); up != 2 {
		t.Fatalf("UpCount = %d, want 2", up)
	}
	moved := 0
	for _, fn := range fns {
		owner, ok := rt.Registry().Owner(fn)
		if !ok {
			t.Fatalf("Owner(%s) failed after kill", fn)
		}
		if owner == victimID {
			t.Fatalf("fn %s still owned by dead worker", fn)
		}
		if ownersBefore[fn] == victimID {
			moved++
		} else if owner != ownersBefore[fn] {
			t.Errorf("fn %s moved %s -> %s though its owner survived", fn, ownersBefore[fn], owner)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned none of the driven functions; pick more fns")
	}

	// Accounting: everything driven was completed, and the per-worker
	// forwarded counters on /metrics sum to the driven total.
	total := int64(2 * perFn * len(fns))
	st := rt.Stats()
	if st.Completed != total {
		t.Fatalf("Completed = %d, want %d", st.Completed, total)
	}
	srv := httptest.NewServer(router.NewHTTPHandler(rt))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var sum int64
	perWorker := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `faasrouter_worker_forwarded_total{worker="`) {
			continue
		}
		parts := strings.Fields(line)
		v, err := strconv.ParseInt(parts[len(parts)-1], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		name := strings.TrimSuffix(strings.TrimPrefix(parts[0], `faasrouter_worker_forwarded_total{worker="`), `"}`)
		perWorker[name] = v
		sum += v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan /metrics: %v", err)
	}
	if sum != total {
		t.Fatalf("per-worker forwarded sum = %d (%v), want %d", sum, perWorker, total)
	}
	for _, w := range fleet {
		if w.id != victimID && perWorker[w.id] == 0 {
			t.Errorf("survivor %s forwarded nothing: %v", w.id, perWorker)
		}
	}
}

// TestEndToEndOverload drives the admission controller through the HTTP
// surface: with one slot and no queue, a second concurrent invocation is
// shed with 429 and a whole-second Retry-After header.
func TestEndToEndOverload(t *testing.T) {
	fleet := newFleet(t, 1)
	rt := fleetRouter(t, fleet, func(cfg *router.Config) {
		cfg.FnConcurrency = 1
		cfg.QueueDepth = 0
		cfg.QueueWait = 200 * time.Millisecond
	})
	srv := httptest.NewServer(router.NewHTTPHandler(rt))
	defer srv.Close()

	// Occupy the one slot with a slow invocation.
	done := make(chan error, 1)
	go func() {
		_, err := rt.Invoke(context.Background(), httpapi.RoutedInvokeRequest{Fn: "slow"})
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for rt.Stats().Routed == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if rt.Stats().Routed == 0 {
		t.Fatal("slow invocation never admitted")
	}

	resp, err := http.Post(srv.URL+"/invoke", "application/json",
		strings.NewReader(`{"fn":"slow"}`))
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow invocation failed: %v", err)
	}
	if st := rt.Stats(); st.Shed == 0 {
		t.Fatalf("stats = %+v, want Shed > 0", st)
	}
}

// TestSimVsLiveAssignments replays the simulator's consistent-hash
// decision sequence against the live router and asserts they agree
// function by function: the sim's cluster dispatcher and the live
// routing tier share one ring implementation and one member naming
// scheme, so scheduling conclusions drawn in simulation transfer.
func TestSimVsLiveAssignments(t *testing.T) {
	const nodes = 3
	fleet := newFleet(t, nodes)
	rt := fleetRouter(t, fleet, nil)

	fns := make([]string, 12)
	for i := range fns {
		fns[i] = fmt.Sprintf("conform-fn-%d", i)
	}
	for _, w := range fleet {
		for _, fn := range fns {
			fn := fn
			err := w.p.Register(fn, func(_ context.Context, inv *platform.Invocation) (any, error) {
				return "ok", nil
			})
			if err != nil {
				t.Fatalf("Register: %v", err)
			}
		}
	}

	seq, err := cluster.AssignmentSequence(cluster.ConsistentHash, nodes, fns)
	if err != nil {
		t.Fatalf("AssignmentSequence: %v", err)
	}
	distinct := map[int]bool{}
	for i, fn := range fns {
		want := cluster.NodeMember(seq[i])
		// The registry's idle-fleet pick must agree...
		owner, ok := rt.Registry().Owner(fn)
		if !ok || owner != want {
			t.Fatalf("live Owner(%s) = %q, sim assigned %q", fn, owner, want)
		}
		// ...and so must the worker that actually serves the invocation.
		res, err := rt.Invoke(context.Background(), httpapi.RoutedInvokeRequest{Fn: fn})
		if err != nil {
			t.Fatalf("Invoke(%s): %v", fn, err)
		}
		if res.Worker != want {
			t.Fatalf("live invoke of %s served by %q, sim assigned %q", fn, res.Worker, want)
		}
		distinct[seq[i]] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("12 functions over %d nodes used %d node(s); ring spread is broken", nodes, len(distinct))
	}
}

// TestEndToEndHealthz covers the router's own health surface through a
// worker's life cycle.
func TestEndToEndHealthz(t *testing.T) {
	fleet := newFleet(t, 1)
	rt := fleetRouter(t, fleet, func(cfg *router.Config) { cfg.MarkDownAfter = 1 })
	srv := httptest.NewServer(router.NewHTTPHandler(rt))
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer func() { _ = resp.Body.Close() }()
		var body struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return resp.StatusCode, body.Status
	}
	if code, status := get(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthy fleet: %d %q", code, status)
	}
	// Worker begins draining: the probe sees 503 "draining" and marks it
	// down; with the whole fleet down the router itself reports 503.
	fleet[0].p.SetReady(false)
	go func() { _ = fleet[0].p.Close() }()
	deadline := time.Now().Add(2 * time.Second)
	for rt.Registry().UpCount() > 0 && time.Now().Before(deadline) {
		rt.ProbeAll(context.Background())
		time.Sleep(5 * time.Millisecond)
	}
	if code, status := get(); code != http.StatusServiceUnavailable || status != "no-workers" {
		t.Fatalf("dead fleet: %d %q", code, status)
	}
}
