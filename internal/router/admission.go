package router

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// OverloadError is the admission controller's rejection: the caller
// should back off for RetryAfter and try again. The HTTP layer renders
// it as 429 with a Retry-After header — bounded shedding instead of an
// unbounded queue collapsing under its own latency.
type OverloadError struct {
	// Fn is the overloaded function.
	Fn string
	// Reason distinguishes a full queue from a queue-wait timeout.
	Reason string
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("router: %s overloaded (%s), retry after %v", e.Fn, e.Reason, e.RetryAfter)
}

// fnGate is one function's concurrency gate: a semaphore of Limit slots
// plus a bounded count of waiters.
type fnGate struct {
	slots   chan struct{}
	waiting int
}

// admission is the router's front door: per-function concurrency limits
// with a deadline-aware bounded queue. The zero-limit controller admits
// everything (admission is opt-in).
type admission struct {
	limit      int           // concurrent forwards per function (0 = unlimited)
	queueDepth int           // waiters allowed per function beyond the limit
	queueWait  time.Duration // max time a waiter queues before shedding

	mu  sync.Mutex
	fns map[string]*fnGate
}

// newAdmission builds a controller. limit <= 0 disables admission.
func newAdmission(limit, queueDepth int, queueWait time.Duration) *admission {
	if queueDepth < 0 {
		queueDepth = 0
	}
	if queueWait <= 0 {
		queueWait = time.Second
	}
	return &admission{
		limit:      limit,
		queueDepth: queueDepth,
		queueWait:  queueWait,
		fns:        make(map[string]*fnGate),
	}
}

// retryAfter suggests a client backoff: the queue wait rounded up to a
// whole second (Retry-After's granularity), at least one second.
func (a *admission) retryAfter() time.Duration {
	ra := a.queueWait
	if r := ra % time.Second; r != 0 {
		ra += time.Second - r
	}
	if ra < time.Second {
		ra = time.Second
	}
	return ra
}

// Acquire admits one invocation of fn, blocking in the bounded queue when
// the function is at its concurrency limit. It returns a release func on
// admission and an *OverloadError (or the context's error) on rejection.
// The queue is deadline-aware twice over: a waiter sheds after the queue
// wait, and sheds immediately when the caller's context is already done
// or would expire before the queue wait could admit it.
func (a *admission) Acquire(ctx context.Context, fn string) (release func(), err error) {
	if a.limit <= 0 {
		return func() {}, nil
	}
	a.mu.Lock()
	g, ok := a.fns[fn]
	if !ok {
		g = &fnGate{slots: make(chan struct{}, a.limit)}
		a.fns[fn] = g
	}
	select {
	case g.slots <- struct{}{}:
		a.mu.Unlock()
		return func() { <-g.slots }, nil
	default:
	}
	// At the limit: queue, boundedly.
	if g.waiting >= a.queueDepth {
		a.mu.Unlock()
		return nil, &OverloadError{Fn: fn, Reason: "queue full", RetryAfter: a.retryAfter()}
	}
	wait := a.queueWait
	if dl, has := ctx.Deadline(); has {
		remaining := time.Until(dl)
		if remaining <= 0 {
			a.mu.Unlock()
			return nil, &OverloadError{Fn: fn, Reason: "deadline expired in queue", RetryAfter: a.retryAfter()}
		}
		if remaining < wait {
			wait = remaining
		}
	}
	g.waiting++
	a.mu.Unlock()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	defer func() {
		a.mu.Lock()
		g.waiting--
		a.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	case <-timer.C:
		return nil, &OverloadError{Fn: fn, Reason: "queue wait exceeded", RetryAfter: a.retryAfter()}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Waiting reports how many invocations of fn are queued (tests).
func (a *admission) Waiting(fn string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if g, ok := a.fns[fn]; ok {
		return g.waiting
	}
	return 0
}
