package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/chaos"
	"faasbatch/internal/httpapi"
	"faasbatch/internal/obs"
	"faasbatch/internal/pullsched"
)

// Policy names accepted by Config.Policy and the -policy flag.
const (
	// PolicyHash is push scheduling: consistent-hash function affinity
	// with bounded load, the router's original behaviour and the default.
	PolicyHash = "hash"
	// PolicyPull is pull scheduling: invocations queue per function at
	// the router and workers with free capacity lease them in batches,
	// late-binding hot functions to the least-loaded worker.
	PolicyPull = "pull"
)

// Policy is the router's scheduling strategy: it turns an admitted
// invocation into a Binding that names the worker for each forward
// attempt. Implementations are the consistent-hash push policy
// (PolicyHash) and the late-binding pull policy (PolicyPull). The
// interface is sealed — the unexported sweep method keeps outside
// packages from implementing it, so its surface can still move.
type Policy interface {
	// Name reports the policy's registered name.
	Name() string
	// Assign admits one invocation to the policy and returns the
	// binding that will name a worker per attempt. It blocks only in
	// scale-from-zero holds; queue waits happen in Binding.Next. The
	// error is ErrNoWorkers (empty ring) or an *OverloadError (the pull
	// policy's queue-depth bound).
	Assign(ctx context.Context, fn string) (Binding, error)
	// OnMembershipChange observes a worker joining or leaving the
	// serving set (probe mark-down/up, autoscale activate/drain/retire).
	// The pull policy stops granting to ineligible workers and treats a
	// newly eligible one as a wake — it immediately drains queued work.
	OnMembershipChange(workerID string, eligible bool)
	// Stats snapshots the policy's counters for /stats and /metrics.
	Stats() httpapi.PolicyStats
	// sweep runs periodic maintenance off the probe loop (the pull
	// policy's lease-expiry scan). Sealed: implementations live here.
	sweep()
}

// Binding is one invocation's assignment under a Policy.
type Binding interface {
	// Next names the worker for the given 1-based attempt. Hash returns
	// ring candidates round-robin and never blocks; pull blocks until a
	// lease is granted (attempt > 1 first requeues the failed lease so
	// the re-grant prefers a different worker).
	Next(ctx context.Context, attempt int) (string, error)
	// Done settles the binding: ok acks the lease, !ok aborts it (the
	// invocation errored out or its context expired). Idempotent; the
	// forwarder calls it exactly once via defer.
	Done(ok bool)
	// detail labels the route span (sealed for the same reason as sweep).
	detail() string
}

// hashPolicy is the push policy: Candidates picks bounded-load ring
// replicas once per invocation, and attempts walk them round-robin —
// byte-for-byte the router's pre-policy-API behaviour.
type hashPolicy struct {
	rt *Router
}

// Name implements Policy.
func (p *hashPolicy) Name() string { return PolicyHash }

// Assign implements Policy.
func (p *hashPolicy) Assign(ctx context.Context, fn string) (Binding, error) {
	cands := p.rt.reg.Candidates(fn, p.rt.cfg.LoadBound)
	if len(cands) == 0 && p.rt.scaler != nil {
		// Scale-from-zero: the wake decision is already in flight
		// (observe ran before forward); hold the invocation until a
		// worker finishes warming instead of bouncing it with 503.
		cands = p.rt.awaitCapacity(ctx, fn)
	}
	if len(cands) == 0 {
		return nil, ErrNoWorkers
	}
	return &hashBinding{cands: cands}, nil
}

// OnMembershipChange implements Policy: the ring inside the registry
// already reflects membership, so hash has nothing to track.
func (p *hashPolicy) OnMembershipChange(string, bool) {}

// Stats implements Policy.
func (p *hashPolicy) Stats() httpapi.PolicyStats {
	return httpapi.PolicyStats{Policy: PolicyHash}
}

// sweep implements Policy (no periodic work).
func (p *hashPolicy) sweep() {}

// hashBinding walks the candidate list round-robin across attempts.
type hashBinding struct {
	cands []string
}

// Next implements Binding.
func (b *hashBinding) Next(_ context.Context, attempt int) (string, error) {
	return b.cands[(attempt-1)%len(b.cands)], nil
}

// Done implements Binding (push holds no lease to settle).
func (b *hashBinding) Done(bool) {}

// detail implements Binding.
func (b *hashBinding) detail() string {
	return fmt.Sprintf("candidates=%d", len(b.cands))
}

// ErrConflictingOptions marks a New call that sets the same knob both
// in the Config struct and through a functional option (or passes the
// same option twice). Match with errors.Is.
var ErrConflictingOptions = errors.New("router: conflicting options")

// Option customises New beyond the Config struct, mirroring the
// facade's PlatformOption pattern. Options and config-struct
// construction compose, but each knob may be set through only one of
// the two — setting it through both fails with ErrConflictingOptions.
type Option func(*routerOptions)

// routerOptions accumulates functional-option state before it is
// merged into the config.
type routerOptions struct {
	policy       string
	policySet    bool
	pull         *pullsched.Config
	pullSet      bool
	scale        *autoscale.Config
	scaleSet     bool
	chaos        *chaos.Injector
	chaosSet     bool
	tracer       *obs.Tracer
	tracerSet    bool
	logger       *slog.Logger
	loggerSet    bool
	transport    http.RoundTripper
	transportSet bool
	duplicates   []string
}

func (o *routerOptions) noteDup(name string, set bool) {
	if set {
		o.duplicates = append(o.duplicates, name)
	}
}

// WithPolicy selects the scheduling policy by name (equivalent to
// Config.Policy; setting both conflicts).
func WithPolicy(name string) Option {
	return func(o *routerOptions) {
		o.noteDup("policy", o.policySet)
		o.policy, o.policySet = name, true
	}
}

// WithPullConfig selects the pull policy with explicit queue tuning
// (equivalent to Config.Policy=PolicyPull plus Config.Pull; a non-nil
// config-struct Pull or explicit Policy conflicts).
func WithPullConfig(cfg pullsched.Config) Option {
	return func(o *routerOptions) {
		o.noteDup("pull", o.pullSet)
		c := cfg
		o.pull, o.pullSet = &c, true
	}
}

// WithAutoscale enables the predictive autoscaling control loop
// (equivalent to Config.Autoscale; setting both conflicts).
func WithAutoscale(cfg autoscale.Config) Option {
	return func(o *routerOptions) {
		o.noteDup("autoscale", o.scaleSet)
		c := cfg
		o.scale, o.scaleSet = &c, true
	}
}

// WithChaos installs a deterministic fault injector (equivalent to
// Config.Chaos; setting both conflicts).
func WithChaos(inj *chaos.Injector) Option {
	return func(o *routerOptions) {
		o.noteDup("chaos", o.chaosSet)
		o.chaos, o.chaosSet = inj, true
	}
}

// WithTracer installs the router's span recorder (equivalent to
// Config.Tracer; setting both conflicts).
func WithTracer(t *obs.Tracer) Option {
	return func(o *routerOptions) {
		o.noteDup("tracer", o.tracerSet)
		o.tracer, o.tracerSet = t, true
	}
}

// WithLogger installs the router's structured logger (equivalent to
// Config.Logger; setting both conflicts).
func WithLogger(l *slog.Logger) Option {
	return func(o *routerOptions) {
		o.noteDup("logger", o.loggerSet)
		o.logger, o.loggerSet = l, true
	}
}

// WithTransport overrides the forwarding HTTP transport (equivalent to
// Config.Transport; setting both conflicts). Tests use it to route
// forwards through in-process workers.
func WithTransport(t http.RoundTripper) Option {
	return func(o *routerOptions) {
		o.noteDup("transport", o.transportSet)
		o.transport, o.transportSet = t, true
	}
}

// mergeOptions folds functional options into cfg, failing on knobs set
// both ways (facade ErrConflictingOptions semantics).
func mergeOptions(cfg Config, opts []Option) (Config, error) {
	var o routerOptions
	for _, opt := range opts {
		opt(&o)
	}
	conflicts := o.duplicates
	if o.policySet && cfg.Policy != "" {
		conflicts = append(conflicts, "policy")
	}
	if o.pullSet && cfg.Pull != nil {
		conflicts = append(conflicts, "pull")
	}
	if o.pullSet && o.policySet && o.policy != PolicyPull {
		// WithPullConfig implies the pull policy; naming another one is
		// a contradiction, not a tie to break silently.
		conflicts = append(conflicts, "policy")
	}
	if o.pullSet && !o.policySet && cfg.Policy != "" && cfg.Policy != PolicyPull {
		conflicts = append(conflicts, "policy")
	}
	if o.scaleSet && cfg.Autoscale != nil {
		conflicts = append(conflicts, "autoscale")
	}
	if o.chaosSet && cfg.Chaos != nil {
		conflicts = append(conflicts, "chaos")
	}
	if o.tracerSet && cfg.Tracer != nil {
		conflicts = append(conflicts, "tracer")
	}
	if o.loggerSet && cfg.Logger != nil {
		conflicts = append(conflicts, "logger")
	}
	if o.transportSet && cfg.Transport != nil {
		conflicts = append(conflicts, "transport")
	}
	if len(conflicts) > 0 {
		return cfg, fmt.Errorf("%w: %s set more than once", ErrConflictingOptions,
			strings.Join(conflicts, ", "))
	}
	if o.policySet {
		cfg.Policy = o.policy
	}
	if o.pullSet {
		cfg.Policy = PolicyPull
		cfg.Pull = o.pull
	}
	if o.scaleSet {
		cfg.Autoscale = o.scale
	}
	if o.chaosSet {
		cfg.Chaos = o.chaos
	}
	if o.tracerSet {
		cfg.Tracer = o.tracer
	}
	if o.loggerSet {
		cfg.Logger = o.logger
	}
	if o.transportSet {
		cfg.Transport = o.transport
	}
	return cfg, nil
}
