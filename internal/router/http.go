package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"faasbatch/internal/httpapi"
	"faasbatch/internal/obs"
)

// respBufPool recycles /invoke response encode buffers; each buffer is
// fully written before being recycled, so nothing aliases it after Put.
var respBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// NewHTTPHandler exposes a router over HTTP:
//
//	POST /invoke   — body httpapi.RoutedInvokeRequest, reply
//	                 httpapi.RoutedInvokeResponse; 429 + Retry-After when
//	                 admission sheds, 503 when no worker is healthy, and a
//	                 worker's own HTTP error passes through verbatim
//	GET  /stats    — reply httpapi.RouterStatsResponse
//	GET  /workers  — reply []httpapi.WorkerStatus
//	GET  /metrics  — Prometheus text: router counters, per-worker
//	                 gauges/counters, forward-latency histograms
//	GET  /cluster/metrics — federated Prometheus text: every member
//	                 worker's /metrics scraped and merged (counters and
//	                 histograms sum exactly; gauges are re-emitted per
//	                 member under a worker label) plus faascluster_*
//	                 scrape meta-series
//	GET  /cluster/stats — reply httpapi.ClusterStatsResponse: router
//	                 counters plus a field-wise sum of every member's
//	                 /stats snapshot
//	GET  /healthz  — 200 while at least one worker is up, else 503
//
// Every route is also served under the /v1/ prefix (/v1/invoke,
// /v1/stats, ...) with identical behaviour; the unversioned paths remain
// as aliases for existing clients. See docs/CLUSTER.md.
func NewHTTPHandler(rt *Router) http.Handler {
	mux := http.NewServeMux()
	// handle registers one route under both its legacy unversioned path
	// and the /v1 prefix, so the two surfaces cannot drift apart.
	handle := func(path string, h http.HandlerFunc) {
		mux.HandleFunc(path, h)
		mux.HandleFunc("/v1"+path, h)
	}
	handle("/invoke", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, httpapi.MaxInvokeBodyBytes))
		if err != nil {
			// Same cap and status as the worker gateway: an oversize body
			// answers 413, not 400 (RFC 9110 §15.5.14).
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("request body exceeds %d bytes", int64(httpapi.MaxInvokeBodyBytes)), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
			return
		}
		req, err := httpapi.DecodeRoutedInvokeRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// An inbound traceparent joins the router's route/forward spans —
		// and, propagated onward, the worker's spans — to the caller's
		// trace. Malformed headers are ignored per the W3C model.
		parent, _ := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
		res, err := rt.InvokeTraced(r.Context(), req, parent)
		if err != nil {
			writeInvokeError(w, err)
			return
		}
		if id, err := strconv.ParseUint(res.TraceID, 16, 64); err == nil && id != 0 {
			w.Header().Set(obs.TraceParentHeader, obs.FormatTraceParent(id))
		}
		// Byte-oriented encode through a pooled buffer (the trailing
		// newline matches json.Encoder.Encode).
		bufp := respBufPool.Get().(*[]byte)
		b := httpapi.AppendRoutedInvokeResponse((*bufp)[:0], &res)
		b = append(b, '\n')
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(b); err != nil {
			rt.logger.Warn("response write failed", "err", err)
		}
		*bufp = b
		respBufPool.Put(bufp)
	})
	handle("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(rt, w, rt.statsResponse())
	})
	handle("/workers", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(rt, w, rt.reg.Snapshot())
	})
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.writeMetrics(w)
	})
	handle("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.writeClusterMetrics(r.Context(), w)
	})
	handle("/cluster/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(rt, w, rt.clusterStatsResponse(r.Context()))
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		up := rt.reg.UpCount()
		if up == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"status\":%q,\"workersUp\":%d}\n", healthWord(up), up)
	})
	return mux
}

// retryAfterSeconds renders a backoff delay as a Retry-After value:
// rounded UP to whole seconds and never below 1. The header has
// one-second resolution, so truncation (int(d.Seconds())) turned any
// sub-second backoff into "Retry-After: 0" — an instruction to retry
// immediately, the opposite of shedding load.
func retryAfterSeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// healthWord maps the up-worker count to a health status word.
func healthWord(up int) string {
	if up == 0 {
		return "no-workers"
	}
	return "ok"
}

// writeInvokeError maps an Invoke error onto the HTTP surface.
func writeInvokeError(w http.ResponseWriter, err error) {
	var overload *OverloadError
	if errors.As(err, &overload) {
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(overload.RetryAfter), 10))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	if errors.Is(err, ErrNoWorkers) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	var pass *PassThroughError
	if errors.As(err, &pass) {
		http.Error(w, pass.Body, pass.Status)
		return
	}
	http.Error(w, err.Error(), http.StatusBadGateway)
}

// registryGauges enumerates the fleet lifecycle gauges as data, so the
// reflection conformance test can assert every entry appears on
// /metrics (and /cluster/metrics) even with autoscaling disabled.
var registryGauges = []struct {
	Name, Help string
	Value      func(ready, draining, down, standby int) int
}{
	{"faascluster_workers_ready", "Workers up and owning ring segments.",
		func(r, d, dn, s int) int { return r }},
	{"faascluster_workers_draining", "Workers finishing in-flight forwards before retiring.",
		func(r, d, dn, s int) int { return d }},
	{"faascluster_workers_down", "Workers marked down by health probes.",
		func(r, d, dn, s int) int { return dn }},
	{"faascluster_workers_standby", "Workers administratively retired from the ring.",
		func(r, d, dn, s int) int { return s }},
}

// autoscaleExport is one faasbatch_autoscale_* series: the mapping is
// data so the conformance test walks it, PR 2 style.
type autoscaleExport struct {
	Name, Help, Kind string
	Value            func(httpapi.AutoscaleStatus) float64
}

// autoscaleExports enumerates the control loop's exposition: target vs
// actual workers, forecast demand, scale events, and drain durations.
var autoscaleExports = []autoscaleExport{
	{"faasbatch_autoscale_target_workers", "Control loop's desired ready-worker count.", "gauge",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.Target) }},
	{"faasbatch_autoscale_ready_workers", "Workers ready per the controller's lifecycle view.", "gauge",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.Ready) }},
	{"faasbatch_autoscale_warming_workers", "Workers pre-warming ahead of predicted load.", "gauge",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.Warming) }},
	{"faasbatch_autoscale_draining_workers", "Workers draining toward retirement.", "gauge",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.Draining) }},
	{"faasbatch_autoscale_forecast_demand", "Short-horizon demand forecast (invocations/second).", "gauge",
		func(a httpapi.AutoscaleStatus) float64 { return a.Forecast }},
	{"faasbatch_autoscale_prewarm_floor_workers", "Pre-warm floor from the burst-rate histogram.", "gauge",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.Floor) }},
	{"faasbatch_autoscale_scale_ups_total", "Provision and reclaim decisions.", "counter",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.ScaleUps) }},
	{"faasbatch_autoscale_scale_downs_total", "Drain decisions.", "counter",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.ScaleDowns) }},
	{"faasbatch_autoscale_wakes_total", "Scale-from-zero wake-ups.", "counter",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.Wakes) }},
	{"faasbatch_autoscale_drains_completed_total", "Graceful drains completed.", "counter",
		func(a httpapi.AutoscaleStatus) float64 { return float64(a.Drained) }},
	{"faasbatch_autoscale_drain_seconds_total", "Summed graceful drain durations.", "counter",
		func(a httpapi.AutoscaleStatus) float64 { return a.DrainSeconds }},
}

// policyExport is one faasrouter_pull_* series: the mapping is data so
// the conformance test walks it, registryGauges style.
type policyExport struct {
	Name, Help, Kind string
	Value            func(httpapi.PolicyStats) float64
}

// policyExports enumerates the pull policy's exposition: queue and
// lease occupancy plus the lease-protocol counters. Emitted only when
// the pull policy is active (hash has no queues to report).
var policyExports = []policyExport{
	{"faasrouter_pull_queued", "Invocations waiting in per-function pull queues.", "gauge",
		func(p httpapi.PolicyStats) float64 { return float64(p.Queued) }},
	{"faasrouter_pull_leases", "Invocations currently leased to workers.", "gauge",
		func(p httpapi.PolicyStats) float64 { return float64(p.Leases) }},
	{"faasrouter_pull_granted_total", "Leases handed out, re-grants included.", "counter",
		func(p httpapi.PolicyStats) float64 { return float64(p.Granted) }},
	{"faasrouter_pull_requeues_total", "Failed or expired leases returned to their queue.", "counter",
		func(p httpapi.PolicyStats) float64 { return float64(p.Requeues) }},
	{"faasrouter_pull_expired_total", "Leases reclaimed by the lease-budget sweep.", "counter",
		func(p httpapi.PolicyStats) float64 { return float64(p.Expired) }},
	{"faasrouter_pull_shed_total", "Arrivals refused at the pull queue-depth bound.", "counter",
		func(p httpapi.PolicyStats) float64 { return float64(p.Shed) }},
}

// writeFleetGauges renders the registry lifecycle gauges and — when the
// control loop runs — the autoscale series, plus the pull policy's
// series under the pull policy. Shared by /metrics and /cluster/metrics
// so scaling state is visible on both surfaces.
func (rt *Router) writeFleetGauges(w io.Writer) {
	ready, draining, down, standby := rt.reg.Counts()
	for _, g := range registryGauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			g.Name, g.Help, g.Name, g.Name, g.Value(ready, draining, down, standby))
	}
	if rt.policy.Name() == PolicyPull {
		pst := rt.policy.Stats()
		for _, ex := range policyExports {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
				ex.Name, ex.Help, ex.Name, ex.Kind, ex.Name, ex.Value(pst))
		}
	}
	if rt.scaler == nil {
		return
	}
	ast := rt.scaler.status()
	for _, ex := range autoscaleExports {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			ex.Name, ex.Help, ex.Name, ex.Kind, ex.Name, ex.Value(ast))
	}
}

// statsResponse assembles the /stats reply.
func (rt *Router) statsResponse() httpapi.RouterStatsResponse {
	st := rt.Stats()
	markDowns, markUps := rt.reg.Transitions()
	return httpapi.RouterStatsResponse{
		Routed:           st.Routed,
		Completed:        st.Completed,
		Forwarded:        st.Forwarded,
		Retries:          st.Retries,
		Failovers:        st.Failovers,
		Shed:             st.Shed,
		NoWorkers:        st.NoWorkers,
		Errors:           st.Errors,
		Probes:           st.Probes,
		ProbeFailures:    st.ProbeFailures,
		Scrapes:          st.Scrapes,
		ScrapeFailures:   st.ScrapeFailures,
		MarkDowns:        markDowns,
		MarkUps:          markUps,
		WorkersUp:        rt.reg.UpCount(),
		ForwardImbalance: rt.ForwardImbalance(),
		Workers:          rt.reg.Snapshot(),
		Autoscale:        rt.autoscaleStatusField(),
		Policy:           rt.policyStatsField(),
	}
}

// policyStatsField returns the /stats policy block.
func (rt *Router) policyStatsField() *httpapi.PolicyStats {
	st := rt.policy.Stats()
	return &st
}

// autoscaleStatusField returns the /stats autoscale block (nil when
// the control loop is disabled, so the JSON field is omitted).
func (rt *Router) autoscaleStatusField() *httpapi.AutoscaleStatus {
	if rt.scaler == nil {
		return nil
	}
	ast := rt.scaler.status()
	return &ast
}

// writeJSON writes v as a JSON response.
func writeJSON(rt *Router, w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		rt.logger.Warn("response encode failed", "err", err)
	}
}

// writeMetrics renders the router's Prometheus exposition.
func (rt *Router) writeMetrics(w io.Writer) {
	st := rt.Stats()
	markDowns, markUps := rt.reg.Transitions()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("faasrouter_routed_total", "Invocations admitted past admission control.", st.Routed)
	counter("faasrouter_completed_total", "Invocations that returned a worker response.", st.Completed)
	counter("faasrouter_forwarded_total", "Forward attempts that reached a worker.", st.Forwarded)
	counter("faasrouter_retries_total", "Extra forward attempts after transient failures.", st.Retries)
	counter("faasrouter_failovers_total", "Forward attempts moved to a different ring replica.", st.Failovers)
	counter("faasrouter_shed_total", "Invocations rejected by admission control.", st.Shed)
	counter("faasrouter_no_workers_total", "Invocations rejected with no healthy worker.", st.NoWorkers)
	counter("faasrouter_errors_total", "Invocations that exhausted their forward attempts.", st.Errors)
	counter("faasrouter_probes_total", "Health probes sent.", st.Probes)
	counter("faasrouter_probe_failures_total", "Health probes that failed.", st.ProbeFailures)
	counter("faasrouter_scrapes_total", "Member scrapes attempted for the cluster view.", st.Scrapes)
	counter("faasrouter_scrape_failures_total", "Member scrapes that failed.", st.ScrapeFailures)
	counter("faasrouter_mark_downs_total", "Worker up-to-down transitions.", markDowns)
	counter("faasrouter_mark_ups_total", "Worker down-to-up transitions.", markUps)
	fmt.Fprintf(w, "# HELP faasrouter_workers_up Workers currently marked up.\n# TYPE faasrouter_workers_up gauge\nfaasrouter_workers_up %d\n", rt.reg.UpCount())
	fmt.Fprintf(w, "# HELP faasrouter_forward_imbalance Max/mean of per-worker forwarded counts.\n# TYPE faasrouter_forward_imbalance gauge\nfaasrouter_forward_imbalance %g\n", rt.ForwardImbalance())
	workers := rt.reg.Snapshot()
	fmt.Fprintf(w, "# HELP faasrouter_worker_forwarded_total Invocations served per worker.\n# TYPE faasrouter_worker_forwarded_total counter\n")
	for _, wk := range workers {
		fmt.Fprintf(w, "faasrouter_worker_forwarded_total{worker=%q} %d\n", wk.ID, wk.Forwarded)
	}
	fmt.Fprintf(w, "# HELP faasrouter_worker_up Worker liveness (1 = up).\n# TYPE faasrouter_worker_up gauge\n")
	for _, wk := range workers {
		up := 0
		if wk.State == WorkerUp.String() {
			up = 1
		}
		fmt.Fprintf(w, "faasrouter_worker_up{worker=%q} %d\n", wk.ID, up)
	}
	fmt.Fprintf(w, "# HELP faasrouter_worker_inflight Outstanding forwards per worker.\n# TYPE faasrouter_worker_inflight gauge\n")
	for _, wk := range workers {
		fmt.Fprintf(w, "faasrouter_worker_inflight{worker=%q} %d\n", wk.ID, wk.Inflight)
	}
	rt.writeFleetGauges(w)
	obs.WriteRuntimeGauges(w, "faasrouter")
	rt.metrics.WritePrometheus(w)
}
