package router

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faasbatch/internal/autoscale"
)

// TestRegistryLifecycleTransitions exercises the administrative state
// machine the autoscaler drives: activate/drain/retire, the Counts
// breakdown, and the drain-complete hook.
func TestRegistryLifecycleTransitions(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	rt := newTestRouter(t, workers, nil)
	reg := rt.reg

	if ready, draining, down, standby := reg.Counts(); ready != 2 || draining+down+standby != 0 {
		t.Fatalf("initial counts = %d/%d/%d/%d, want 2/0/0/0", ready, draining, down, standby)
	}

	var drainedMu sync.Mutex
	var drained []string
	reg.OnDrained(func(id string) {
		drainedMu.Lock()
		drained = append(drained, id)
		drainedMu.Unlock()
	})

	// Drain with zero in-flight completes immediately.
	if !reg.Drain("w1") {
		t.Fatal("Drain(w1) reported no transition")
	}
	drainedMu.Lock()
	if len(drained) != 1 || drained[0] != "w1" {
		t.Fatalf("drain hook fired %v, want [w1]", drained)
	}
	drainedMu.Unlock()
	if ready, draining, _, _ := reg.Counts(); ready != 1 || draining != 1 {
		t.Fatalf("after drain: ready=%d draining=%d, want 1/1", ready, draining)
	}
	if reg.UpCount() != 1 {
		t.Fatalf("draining worker still owns ring segments: UpCount=%d", reg.UpCount())
	}

	// Drain with in-flight work defers the hook to the last completion.
	reg.AddInflight("w2", 1)
	if !reg.Drain("w2") {
		t.Fatal("Drain(w2) reported no transition")
	}
	drainedMu.Lock()
	if len(drained) != 1 {
		t.Fatalf("drain hook fired early for a busy worker: %v", drained)
	}
	drainedMu.Unlock()
	reg.AddInflight("w2", -1)
	drainedMu.Lock()
	if len(drained) != 2 || drained[1] != "w2" {
		t.Fatalf("drain hook after last completion = %v, want [w1 w2]", drained)
	}
	drainedMu.Unlock()

	// Retire moves draining -> standby; Activate brings it back.
	if !reg.Retire("w1") {
		t.Fatal("Retire(w1) reported no transition")
	}
	if _, _, _, standby := reg.Counts(); standby != 1 {
		t.Fatalf("standby count after retire != 1")
	}
	if !reg.Activate("w1") {
		t.Fatal("Activate(w1) reported no transition")
	}
	reg.Activate("w2")
	if ready, _, _, _ := reg.Counts(); ready != 2 {
		t.Fatalf("ready count after reactivation = %d, want 2", ready)
	}
	if reg.UpCount() != 2 {
		t.Fatalf("reactivated fleet owns %d ring members, want 2", reg.UpCount())
	}

	// Dynamic membership: add and remove a standby worker.
	if err := reg.AddWorker(WorkerSpec{ID: "w3", URL: "http://x.invalid"}, false); err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	if err := reg.RemoveWorker("w3"); err != nil {
		t.Fatalf("RemoveWorker: %v", err)
	}
	if err := reg.RemoveWorker("w1"); err == nil {
		t.Fatal("RemoveWorker accepted an active worker")
	}
}

// TestRingChurnZeroLost is the membership-churn regression: workers are
// drained, retired and re-activated continuously while invocations
// stream through the router, and every invocation must still complete —
// ring remove/re-add never strands an in-flight forward.
func TestRingChurnZeroLost(t *testing.T) {
	workers := []*fakeWorker{
		newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3"),
	}
	for _, fw := range workers {
		fw.set(func(f *fakeWorker) { f.invokeDelay = 2 * time.Millisecond })
	}
	rt := newTestRouter(t, workers, nil)

	stop := make(chan struct{})
	var churns int
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		// w1 stays up throughout so the ring is never empty; w2 and w3
		// cycle through drain -> standby -> active.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := "w2"
			if i%2 == 1 {
				id = "w3"
			}
			rt.reg.Drain(id)
			time.Sleep(3 * time.Millisecond)
			rt.reg.Retire(id)
			time.Sleep(3 * time.Millisecond)
			rt.reg.Activate(id)
			churns++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const calls = 200
	var failures atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn := string(rune('a' + i%7))
			if _, err := rt.Invoke(context.Background(), routedReq(fn)); err != nil {
				failures.Add(1)
				t.Errorf("invoke %d (%s): %v", i, fn, err)
			}
		}(i)
		time.Sleep(500 * time.Microsecond)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d/%d invocations lost during membership churn (%d churn cycles)",
			failures.Load(), calls, churns)
	}
	if churns == 0 {
		t.Fatal("churn loop never completed a cycle; the test exercised nothing")
	}
	st := rt.Stats()
	if st.Completed != calls {
		t.Fatalf("completed %d/%d", st.Completed, calls)
	}
}

// TestLiveScaleCycleZeroLost is the live-elasticity acceptance test: a
// 3-worker fleet with scale-to-zero enabled rides a full burst →
// scale-up → drain → scale-to-zero → wake cycle on the real wall-clock
// control loop, and no invocation is lost at any point — including the
// one that lands on a fully retired fleet and must wait out the wake.
func TestLiveScaleCycleZeroLost(t *testing.T) {
	workers := []*fakeWorker{
		newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3"),
	}
	for _, fw := range workers {
		fw.set(func(f *fakeWorker) { f.invokeDelay = 2 * time.Millisecond })
	}
	rt := newTestRouter(t, workers, func(cfg *Config) {
		cfg.Autoscale = &autoscale.Config{
			MinWorkers:       0,
			MaxWorkers:       3,
			TargetPerWorker:  2,
			EvalInterval:     20 * time.Millisecond,
			Warmup:           0,
			DrainBudget:      40 * time.Millisecond,
			ScaleDownAfter:   2,
			ScaleToZeroAfter: 100 * time.Millisecond,
		}
	})
	rt.Start()

	var failures atomic.Int64
	invoke := func(fn string) {
		if _, err := rt.Invoke(context.Background(), routedReq(fn)); err != nil {
			failures.Add(1)
			t.Errorf("invoke %s: %v", fn, err)
		}
	}

	// Phase 1 — burst: ~500/s for 200ms must scale the fleet up.
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			invoke(string(rune('a' + i%5)))
		}(i)
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	st := rt.AutoscaleStatus()
	if st.ScaleUps < 1 {
		t.Fatalf("burst produced no scale-ups: %+v", st)
	}

	// Phase 2 — silence: the fleet must drain all the way to zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = rt.AutoscaleStatus()
		if st.Ready == 0 && st.Warming == 0 && st.Draining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached zero: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.ScaleDowns < 1 || st.Drained < 1 {
		t.Fatalf("scale-down cycle incomplete: %+v", st)
	}

	// Phase 3 — wake: one arrival on the empty fleet must be served,
	// not bounced, and must count as a wake.
	invoke("wake-fn")
	st = rt.AutoscaleStatus()
	if st.Wakes < 1 {
		t.Fatalf("wake arrival did not wake the fleet: %+v", st)
	}

	if failures.Load() != 0 {
		t.Fatalf("%d invocations lost across the scale cycle", failures.Load())
	}
	rst := rt.Stats()
	if rst.NoWorkers != 0 {
		t.Fatalf("router bounced %d invocations with an empty ring", rst.NoWorkers)
	}
}
