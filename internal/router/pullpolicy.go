package router

import (
	"context"
	"errors"
	"sync"
	"time"

	"faasbatch/internal/httpapi"
	"faasbatch/internal/pullsched"
)

// errRouterClosed aborts pull waits when the router shuts down with
// leases still pending.
var errRouterClosed = errors.New("router: closed")

// pullPolicy drives the shared pullsched.Core against the live fleet.
// Each admitted invocation's forwarding goroutine doubles as its lease
// holder ("virtual pull"): Assign enqueues and registers a grant
// channel, Binding.Next blocks on it until the core leases the
// invocation to a worker, a failed attempt requeues so the re-grant
// late-binds elsewhere, and Done acks or aborts the lease. The core is
// clock-agnostic and unlocked; this driver serialises every core call
// under mu and stamps offsets from its own epoch — the same discipline
// the sim driver gets for free from the single-threaded engine, which
// is what makes the two drivers' grant logs comparable.
type pullPolicy struct {
	rt    *Router
	start time.Time // epoch for the core's virtual offsets
	ids   []string  // slot index -> worker ID (Config.Workers order)

	mu      sync.Mutex
	core    *pullsched.Core
	waiters map[int64]chan pullsched.Grant
	slots   map[string]int // worker ID -> slot index
	nextID  int64
}

// newPullPolicy builds the pull driver over rt's worker set. Called
// after the autoscale scaler (if any) has settled initial lifecycle
// states, so standby workers start ineligible.
func newPullPolicy(rt *Router, pcfg *pullsched.Config) (*pullPolicy, error) {
	cfg := pullsched.Config{}
	if pcfg != nil {
		cfg = *pcfg
	}
	cfg.Workers = len(rt.cfg.Workers)
	core, err := pullsched.New(cfg)
	if err != nil {
		return nil, err
	}
	p := &pullPolicy{
		rt:      rt,
		start:   time.Now(),
		core:    core,
		waiters: make(map[int64]chan pullsched.Grant),
		slots:   make(map[string]int, len(rt.cfg.Workers)),
	}
	for i, spec := range rt.cfg.Workers {
		p.slots[spec.ID] = i
		p.ids = append(p.ids, spec.ID)
		if rt.reg.State(spec.ID) != WorkerUp {
			p.core.SetWorker(i, false, 0)
		}
	}
	return p, nil
}

// now is the core-facing virtual offset of the current instant.
func (p *pullPolicy) now() time.Duration { return time.Since(p.start) }

// Name implements Policy.
func (p *pullPolicy) Name() string { return PolicyPull }

// Assign implements Policy: enqueue the invocation and hand back a
// binding whose Next blocks on the lease grant. The queue-depth bound
// sheds here with an *OverloadError — the pull policy's admission
// control, replacing the per-function semaphore.
func (p *pullPolicy) Assign(_ context.Context, fn string) (Binding, error) {
	p.mu.Lock()
	p.nextID++
	id := p.nextID
	// Buffered for two so a sweep re-grant racing a fail re-grant never
	// blocks the policy lock; Next consumes at most one per attempt.
	ch := make(chan pullsched.Grant, 2)
	p.waiters[id] = ch
	gs, shed := p.core.Enqueue(id, fn, p.now())
	if shed {
		delete(p.waiters, id)
		depth := p.core.Config().QueueDepth
		p.mu.Unlock()
		return nil, &OverloadError{
			Fn:         fn,
			Reason:     "pull queue full",
			RetryAfter: pullRetryAfter(depth),
		}
	}
	p.deliverLocked(gs)
	p.mu.Unlock()
	return &pullBinding{p: p, id: id, ch: ch}, nil
}

// deliverLocked routes grants to their lease holders' channels. Sends
// never block (the channels are buffered and drained once per attempt),
// so grant delivery cannot deadlock against the policy lock.
func (p *pullPolicy) deliverLocked(gs []pullsched.Grant) {
	for _, g := range gs {
		ch, ok := p.waiters[g.ID]
		if !ok {
			continue
		}
		select {
		case ch <- g:
		default:
		}
	}
}

// fail requeues a lease after a failed forward attempt; the freed
// capacity may grant other queued invocations.
func (p *pullPolicy) fail(id int64) {
	p.mu.Lock()
	p.deliverLocked(p.core.Fail(id, p.now()))
	p.mu.Unlock()
}

// complete acks a lease; the freed capacity pulls more queued work.
func (p *pullPolicy) complete(id int64) {
	p.mu.Lock()
	gs := p.core.Complete(id, p.now())
	delete(p.waiters, id)
	p.deliverLocked(gs)
	p.mu.Unlock()
}

// abort releases a lease (or withdraws the queued item) for an
// invocation that errored out or whose caller gave up.
func (p *pullPolicy) abort(id int64) {
	p.mu.Lock()
	gs := p.core.Abort(id, p.now())
	delete(p.waiters, id)
	p.deliverLocked(gs)
	p.mu.Unlock()
}

// OnMembershipChange implements Policy: probe mark-downs and autoscale
// drains/retires stop the worker pulling; mark-ups and activations are
// wakes that immediately drain queued work onto the new capacity.
func (p *pullPolicy) OnMembershipChange(workerID string, eligible bool) {
	p.mu.Lock()
	if i, ok := p.slots[workerID]; ok {
		p.deliverLocked(p.core.SetWorker(i, eligible, p.now()))
	}
	p.mu.Unlock()
}

// Stats implements Policy.
func (p *pullPolicy) Stats() httpapi.PolicyStats {
	p.mu.Lock()
	st := p.core.Stats()
	p.mu.Unlock()
	return httpapi.PolicyStats{
		Policy:   PolicyPull,
		Queued:   st.Queued,
		Leases:   st.Leases,
		Granted:  st.Granted,
		Requeues: st.Requeues,
		Expired:  st.Expired,
		Shed:     st.Shed,
	}
}

// sweep implements Policy: reclaim leases past the budget, riding the
// probe loop's tick. Live leases are already bounded by ForwardTimeout
// plus the binding's deferred Done, so the sweep is a backstop for
// leases whose holder died without settling; it only runs when a
// LeaseBudget is configured (the live default leaves it off).
func (p *pullPolicy) sweep() {
	if p.core.Config().LeaseBudget <= 0 {
		return
	}
	p.mu.Lock()
	p.deliverLocked(p.core.Expire(p.now()))
	p.mu.Unlock()
}

// pullRetryAfter sizes the 429 Retry-After hint from the queue depth.
func pullRetryAfter(depth int) time.Duration {
	if depth > 4 {
		return 2 * time.Second
	}
	return time.Second
}

// pullBinding is one invocation's lease-holder handle.
type pullBinding struct {
	p       *pullPolicy
	id      int64
	ch      chan pullsched.Grant
	settled bool
}

// Next implements Binding: block until the core leases this invocation
// to a worker. Attempts after the first requeue the failed lease first,
// so the re-grant late-binds to a different worker when one has
// capacity. The wait is bounded by the invocation's context and the
// router's shutdown.
func (b *pullBinding) Next(ctx context.Context, attempt int) (string, error) {
	if attempt > 1 {
		b.p.fail(b.id)
	}
	select {
	case g := <-b.ch:
		return b.p.ids[g.Worker], nil
	case <-ctx.Done():
		return "", ctx.Err()
	case <-b.p.rt.stop:
		return "", errRouterClosed
	}
}

// Done implements Binding: ack on success, abort otherwise (both
// withdraw any queued copy, so an invocation is never served twice).
func (b *pullBinding) Done(ok bool) {
	if b.settled {
		return
	}
	b.settled = true
	if ok {
		b.p.complete(b.id)
	} else {
		b.p.abort(b.id)
	}
}

// detail implements Binding.
func (b *pullBinding) detail() string { return "pull" }

// The Pull* methods below are the sim-vs-live conformance surface:
// they feed the live policy's core directly with explicit invocation
// ids and virtual offsets, bypassing the waiter machinery and the
// registry (whose wall-clock stamps would differ run to run), so a
// schedule recorded from the sim driver replays here and the two grant
// logs can be compared byte for byte.

// pullCore returns the live pull core, or nil under another policy.
func (rt *Router) pullCore() *pullPolicy {
	p, _ := rt.policy.(*pullPolicy)
	return p
}

// PullEnqueue replays one admission at an explicit virtual offset.
func (rt *Router) PullEnqueue(id int64, fn string, off time.Duration) ([]pullsched.Grant, bool) {
	p := rt.pullCore()
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.Enqueue(id, fn, off)
}

// PullComplete replays one lease ack at an explicit virtual offset.
func (rt *Router) PullComplete(id int64, off time.Duration) []pullsched.Grant {
	p := rt.pullCore()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.Complete(id, off)
}

// PullSetWorker replays one membership flip at an explicit virtual
// offset, addressing the worker by fleet ID.
func (rt *Router) PullSetWorker(workerID string, eligible bool, off time.Duration) []pullsched.Grant {
	p := rt.pullCore()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.slots[workerID]
	if !ok {
		return nil
	}
	return p.core.SetWorker(i, eligible, off)
}

// PullGrants returns the live core's retained grant log in order.
func (rt *Router) PullGrants() []pullsched.Grant {
	p := rt.pullCore()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.Grants()
}

// PullStats snapshots the live core's counters (zero value under the
// hash policy).
func (rt *Router) PullStats() pullsched.Stats {
	p := rt.pullCore()
	if p == nil {
		return pullsched.Stats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.Stats()
}
