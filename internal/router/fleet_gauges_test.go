package router

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"faasbatch/internal/autoscale"
)

// scrapeText fetches one exposition document from the router handler.
func scrapeText(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(raw)
}

// gaugeValue extracts the sample value of an unlabeled series from an
// exposition document (-1 when absent).
func gaugeValue(doc, name string) float64 {
	for _, line := range strings.Split(doc, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// TestFleetGaugeConformance walks the registryGauges table against a
// live /metrics scrape: every enumerated lifecycle gauge must appear
// with a HELP/TYPE header and a value matching the registry's Counts —
// with autoscaling disabled, on both /metrics and /cluster/metrics.
// Adding a gauge to the table makes this test cover it automatically.
func TestFleetGaugeConformance(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	rt := newTestRouter(t, workers, nil)
	// Put the fleet in a mixed state: one draining, one standby.
	rt.reg.Drain("w2")
	rt.reg.Retire("w3")
	srv := httptest.NewServer(NewHTTPHandler(rt))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/cluster/metrics"} {
		doc := scrapeText(t, srv, path)
		ready, draining, down, standby := rt.reg.Counts()
		for _, g := range registryGauges {
			if !strings.Contains(doc, fmt.Sprintf("# TYPE %s gauge\n", g.Name)) {
				t.Errorf("%s missing TYPE header for %s", path, g.Name)
			}
			want := float64(g.Value(ready, draining, down, standby))
			if got := gaugeValue(doc, g.Name); got != want {
				t.Errorf("%s: %s = %v, want %v", path, g.Name, got, want)
			}
		}
		if strings.Contains(doc, "faasbatch_autoscale_") {
			t.Errorf("%s exposes autoscale series with autoscaling disabled", path)
		}
	}
	if v := gaugeValue(scrapeText(t, srv, "/metrics"), "faascluster_workers_draining"); v != 1 {
		t.Fatalf("draining gauge = %v, want 1", v)
	}
}

// TestAutoscaleGaugeConformance walks the autoscaleExports table
// against a scrape of an autoscaling router: every series must appear
// with its declared TYPE and a value matching the controller snapshot,
// on both /metrics and /cluster/metrics.
func TestAutoscaleGaugeConformance(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	rt := newTestRouter(t, workers, func(cfg *Config) {
		cfg.Autoscale = &autoscale.Config{
			MinWorkers:      1,
			MaxWorkers:      3,
			TargetPerWorker: 5,
			EvalInterval:    50 * time.Millisecond,
		}
	})
	// Drive some demand and a tick through the deterministic entry
	// points so counters move off zero.
	for i := 0; i < 40; i++ {
		rt.AutoscaleObserve("fn", time.Duration(i)*time.Millisecond)
	}
	rt.AutoscaleTick(50 * time.Millisecond)
	srv := httptest.NewServer(NewHTTPHandler(rt))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/cluster/metrics"} {
		doc := scrapeText(t, srv, path)
		ast := rt.scaler.status()
		for _, ex := range autoscaleExports {
			if !strings.Contains(doc, fmt.Sprintf("# TYPE %s %s\n", ex.Name, ex.Kind)) {
				t.Errorf("%s missing TYPE header for %s", path, ex.Name)
			}
			if got, want := gaugeValue(doc, ex.Name), ex.Value(ast); got != want {
				t.Errorf("%s: %s = %v, want %v", path, ex.Name, got, want)
			}
		}
	}
	if v := gaugeValue(scrapeText(t, srv, "/metrics"), "faasbatch_autoscale_target_workers"); v < 2 {
		t.Fatalf("target gauge = %v after a 40-arrival burst, want >= 2", v)
	}
}
