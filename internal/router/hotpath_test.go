package router

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"faasbatch/internal/httpapi"
)

// TestRetryAfterCeiling pins the Retry-After rounding fix: the header has
// one-second resolution, so any positive backoff must render as at least
// 1 — truncation used to turn every sub-second backoff into
// "Retry-After: 0", an instruction to hammer an overloaded router.
func TestRetryAfterCeiling(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{time.Nanosecond, 1},
		{10 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{0, 1},
		{-time.Second, 1},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
		if c.d > 0 && retryAfterSeconds(c.d) < 1 {
			t.Errorf("retryAfterSeconds(%v) < 1 for a positive delay", c.d)
		}
	}
}

// TestRetryAfterHeaderOnOverload checks the fix end to end at the HTTP
// surface: a shed with a sub-second backoff answers 429 with a usable
// Retry-After header.
func TestRetryAfterHeaderOnOverload(t *testing.T) {
	rec := httptest.NewRecorder()
	writeInvokeError(rec, &OverloadError{
		Fn: "fib", Reason: "queue full", RetryAfter: 250 * time.Millisecond,
	})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}

// TestRouterOversizeBody413 pins the router-side body cap: it shares the
// gateway's MaxInvokeBodyBytes and answers 413, so a client rejected by
// the router would have been rejected by the worker too.
func TestRouterOversizeBody413(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	rt := newTestRouter(t, []*fakeWorker{w1}, nil)
	srv := httptest.NewServer(NewHTTPHandler(rt))
	t.Cleanup(srv.Close)

	body := bytes.Repeat([]byte("x"), httpapi.MaxInvokeBodyBytes+1)
	resp, err := http.Post(srv.URL+"/invoke", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	msg, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(msg), "exceeds") {
		t.Errorf("413 body %q should name the cap", msg)
	}
}

// TestAppendReadAllGrows checks the pooled response reader against
// io.ReadAll across sizes that straddle its growth boundaries.
func TestAppendReadAllGrows(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096, 4097, 100_000} {
		src := bytes.Repeat([]byte{'a'}, n)
		got, err := appendReadAll(make([]byte, 0, 8), bytes.NewReader(src))
		if err != nil {
			t.Fatalf("appendReadAll(n=%d): %v", n, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("appendReadAll(n=%d) read %d bytes", n, len(got))
		}
	}
}

// BenchmarkRoutedInvoke measures the routed path end to end over the
// loopback fleet (the BENCH_hotpath.json routed series).
func BenchmarkRoutedInvoke(b *testing.B) {
	fw := &fakeWorker{id: "w1", healthStatus: httpapi.HealthOK}
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := httpapi.DecodeInvokeRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := httpapi.InvokeResponse{Fn: req.Fn, Result: req.Payload, Worker: fw.id, Attempts: 1}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(httpapi.AppendInvokeResponse(nil, &out, 0))
	})
	fw.srv = httptest.NewServer(mux)
	defer fw.srv.Close()
	rt, err := New(Config{
		Workers:        []WorkerSpec{fw.spec()},
		ProbeTimeout:   500 * time.Millisecond,
		RetryBackoff:   -1,
		ForwardTimeout: 2 * time.Second,
	})
	if err != nil {
		b.Fatalf("router.New: %v", err)
	}
	defer func() { _ = rt.Close() }()
	srv := httptest.NewServer(NewHTTPHandler(rt))
	defer srv.Close()
	body := []byte(`{"fn":"fib","payload":{"n":1}}`)
	client := srv.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(srv.URL+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatalf("POST: %v", err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatalf("read: %v", err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status = %d", resp.StatusCode)
		}
	}
}
