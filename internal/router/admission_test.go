package router

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionDisabled(t *testing.T) {
	a := newAdmission(0, 0, 0)
	for i := 0; i < 100; i++ {
		release, err := a.Acquire(context.Background(), "fn")
		if err != nil {
			t.Fatalf("disabled admission rejected: %v", err)
		}
		release()
	}
}

func TestAdmissionShedsAtQueueFull(t *testing.T) {
	a := newAdmission(1, 0, 50*time.Millisecond)
	release, err := a.Acquire(context.Background(), "fn")
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	// Limit reached, queueDepth 0: immediate shed.
	_, err = a.Acquire(context.Background(), "fn")
	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if overload.Reason != "queue full" || overload.Fn != "fn" {
		t.Fatalf("overload = %+v", overload)
	}
	if overload.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", overload.RetryAfter)
	}
	// Functions are isolated: another fn still admits.
	r2, err := a.Acquire(context.Background(), "other")
	if err != nil {
		t.Fatalf("other fn rejected: %v", err)
	}
	r2()
	// Releasing frees the slot.
	release()
	r3, err := a.Acquire(context.Background(), "fn")
	if err != nil {
		t.Fatalf("post-release Acquire: %v", err)
	}
	r3()
}

func TestAdmissionQueueWaitTimeout(t *testing.T) {
	a := newAdmission(1, 4, 30*time.Millisecond)
	release, err := a.Acquire(context.Background(), "fn")
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	defer release()
	start := time.Now()
	_, err = a.Acquire(context.Background(), "fn")
	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if overload.Reason != "queue wait exceeded" {
		t.Fatalf("reason = %q", overload.Reason)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("shed after %v, should have queued ~30ms first", elapsed)
	}
	if a.Waiting("fn") != 0 {
		t.Fatalf("Waiting = %d after shed, want 0", a.Waiting("fn"))
	}
}

func TestAdmissionQueueAdmitsOnRelease(t *testing.T) {
	a := newAdmission(1, 4, time.Second)
	release, err := a.Acquire(context.Background(), "fn")
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background(), "fn")
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait for the waiter to queue, then free the slot.
	deadline := time.Now().Add(time.Second)
	for a.Waiting("fn") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Waiting("fn") != 1 {
		t.Fatal("waiter never queued")
	}
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued waiter rejected: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued waiter never admitted")
	}
}

func TestAdmissionDeadlineAware(t *testing.T) {
	a := newAdmission(1, 4, 10*time.Second)
	release, err := a.Acquire(context.Background(), "fn")
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	defer release()
	// Already-expired deadline: shed immediately, no 10s queue.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = a.Acquire(ctx, "fn")
	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if overload.Reason != "deadline expired in queue" {
		t.Fatalf("reason = %q", overload.Reason)
	}
	// Deadline shorter than queueWait: wait is clipped to the deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err = a.Acquire(ctx2, "fn")
	if err == nil {
		t.Fatal("expired waiter admitted")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("queued %v; deadline should have clipped the 10s wait", elapsed)
	}
	// Cancellation propagates.
	ctx3, cancel3 := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel3() }()
	_, err = a.Acquire(ctx3, "fn")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAdmissionRetryAfterRounding(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want time.Duration
	}{
		{300 * time.Millisecond, time.Second},
		{time.Second, time.Second},
		{1500 * time.Millisecond, 2 * time.Second},
		{2 * time.Second, 2 * time.Second},
	}
	for _, c := range cases {
		a := newAdmission(1, 0, c.wait)
		if got := a.retryAfter(); got != c.want {
			t.Errorf("retryAfter(%v) = %v, want %v", c.wait, got, c.want)
		}
	}
}
