package router

import (
	"context"
	"fmt"
	"sync"
	"time"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/httpapi"
	"faasbatch/internal/obs"
)

// maxScaleDecisions bounds the retained decision log (conformance tests
// and /stats debugging); older decisions are dropped, the counters in
// the controller keep the totals.
const maxScaleDecisions = 4096

// liveScaler drives the shared autoscale.Controller against the live
// worker registry: controller slot i maps to cfg.Workers[i] in
// registration order, and decisions become registry lifecycle
// transitions (activate / drain / retire). The controller itself is
// clock-agnostic; this driver feeds it wall-clock offsets from the
// router's start instant. The sim driver (internal/cluster) feeds the
// identical controller virtual offsets, which is what the sim-vs-live
// conformance test leans on.
type liveScaler struct {
	rt    *Router
	start time.Time

	mu        sync.Mutex
	ctrl      *autoscale.Controller
	slots     []WorkerSpec
	index     map[string]int
	decisions []autoscale.Decision
}

// newLiveScaler wires a controller over the router's registered pool.
// Slots beyond the initial ready count start on standby.
func newLiveScaler(rt *Router, acfg autoscale.Config) (*liveScaler, error) {
	specs := rt.reg.Specs()
	if acfg.MaxWorkers <= 0 || acfg.MaxWorkers > len(specs) {
		acfg.MaxWorkers = len(specs)
	}
	// The fleet starts at the scale floor — but never zero, so the
	// first arrival is served while the control loop warms up; the
	// idle gate drains it later if MinWorkers is 0.
	initial := acfg.MinWorkers
	if initial < 1 {
		initial = 1
	}
	ctrl, err := autoscale.New(acfg, initial)
	if err != nil {
		return nil, err
	}
	s := &liveScaler{
		rt:    rt,
		start: time.Now(),
		ctrl:  ctrl,
		slots: specs[:acfg.MaxWorkers],
		index: make(map[string]int, acfg.MaxWorkers),
	}
	for i, spec := range s.slots {
		s.index[spec.ID] = i
		if i >= initial {
			rt.reg.Retire(spec.ID)
		}
	}
	// Registered workers beyond MaxWorkers never participate.
	for _, spec := range specs[acfg.MaxWorkers:] {
		rt.reg.Retire(spec.ID)
	}
	rt.reg.OnDrained(s.noteDrained)
	return s, nil
}

// now reports the wall-clock offset fed to the controller.
func (s *liveScaler) now() time.Duration { return time.Since(s.start) }

// observe records one admitted invocation and handles the
// scale-from-zero wake. Decisions are computed under the scaler lock
// but applied outside it: Drain can complete synchronously and its
// hook re-enters the scaler.
func (s *liveScaler) observe(fn string, off time.Duration) {
	s.mu.Lock()
	s.ctrl.Observe(fn, off)
	ds := s.ctrl.Wake(off)
	if len(ds) > 0 {
		s.record(ds)
	}
	s.mu.Unlock()
	s.apply(ds)
}

// observeLatency feeds a completed forward's latency to the demand
// tracker (observability only).
func (s *liveScaler) observeLatency(d time.Duration) {
	s.mu.Lock()
	s.ctrl.ObserveLatency(d)
	s.mu.Unlock()
}

// tick runs one control-loop evaluation and applies its decisions.
func (s *liveScaler) tick(off time.Duration) {
	s.mu.Lock()
	ds := s.ctrl.Tick(off)
	if len(ds) > 0 {
		s.record(ds)
	}
	s.mu.Unlock()
	s.apply(ds)
}

// record appends decisions to the bounded log (caller holds s.mu).
func (s *liveScaler) record(ds []autoscale.Decision) {
	s.decisions = append(s.decisions, ds...)
	if over := len(s.decisions) - maxScaleDecisions; over > 0 {
		s.decisions = append(s.decisions[:0], s.decisions[over:]...)
	}
}

// apply turns controller decisions into registry transitions, scale
// spans, and logs. Never called with s.mu held.
func (s *liveScaler) apply(ds []autoscale.Decision) {
	for _, d := range ds {
		if d.Worker < 0 || d.Worker >= len(s.slots) {
			continue
		}
		id := s.slots[d.Worker].ID
		switch d.Action {
		case autoscale.ActionProvision:
			// The worker process is already registered; pre-warming is
			// the Warmup delay before ActionReady admits it to the ring.
		case autoscale.ActionReady, autoscale.ActionReclaim:
			s.rt.reg.Activate(id)
		case autoscale.ActionDrain:
			s.rt.reg.Drain(id)
		case autoscale.ActionRetire:
			s.rt.reg.Retire(id)
		}
		at := s.rt.tracer.Now()
		s.rt.tracer.Record(obs.Span{
			Name:   obs.SpanScale,
			Detail: fmt.Sprintf("%s %s target=%d", d.Action, id, d.Target),
			Start:  at, End: at,
		})
		s.rt.logger.Info("scale event",
			"action", d.Action.String(), "worker", id,
			"target", d.Target, "forecast", fmt.Sprintf("%.1f", d.Forecast))
	}
}

// noteDrained is the registry's drain-complete hook: it reports the
// real drain duration to the controller's metrics. Called without the
// registry lock held.
func (s *liveScaler) noteDrained(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.index[id]; ok {
		s.ctrl.NoteDrained(slot, s.ctrl.DrainStart(slot), s.now())
	}
}

// status snapshots the controller for /stats and /metrics.
func (s *liveScaler) status() httpapi.AutoscaleStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.ctrl.Snapshot()
	return httpapi.AutoscaleStatus{
		Target:       st.Target,
		Ready:        st.Ready,
		Warming:      st.Warming,
		Draining:     st.Draining,
		Standby:      st.Retired,
		Forecast:     st.Forecast,
		Floor:        st.Floor,
		ScaleUps:     int64(st.ScaleUps),
		ScaleDowns:   int64(st.ScaleDowns),
		Wakes:        int64(st.Wakes),
		Drained:      int64(st.Drained),
		DrainSeconds: st.DrainTime.Seconds(),
	}
}

// loop is the wall-clock control loop started by Router.Start.
func (s *liveScaler) loop(stop <-chan struct{}) {
	ticker := time.NewTicker(s.ctrl.Config().EvalInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.tick(s.now())
		case <-stop:
			return
		}
	}
}

// AutoscaleEnabled reports whether the router runs the autoscaling
// control loop.
func (rt *Router) AutoscaleEnabled() bool { return rt.scaler != nil }

// AutoscaleStatus snapshots the control loop (zero value when
// autoscaling is disabled).
func (rt *Router) AutoscaleStatus() httpapi.AutoscaleStatus {
	if rt.scaler == nil {
		return httpapi.AutoscaleStatus{}
	}
	return rt.scaler.status()
}

// AutoscaleDecisions returns the retained scaling decision log in
// order (conformance tests and debugging).
func (rt *Router) AutoscaleDecisions() []autoscale.Decision {
	if rt.scaler == nil {
		return nil
	}
	rt.scaler.mu.Lock()
	defer rt.scaler.mu.Unlock()
	return append([]autoscale.Decision(nil), rt.scaler.decisions...)
}

// AutoscaleObserve feeds one arrival at an explicit offset — the
// deterministic entry point the sim-vs-live conformance test drives
// instead of wall time. Production traffic goes through InvokeTraced,
// which calls this with time-since-start.
func (rt *Router) AutoscaleObserve(fn string, off time.Duration) {
	if rt.scaler != nil {
		rt.scaler.observe(fn, off)
	}
}

// AutoscaleTick runs one control-loop evaluation at an explicit offset
// (conformance tests; production uses the Start loop).
func (rt *Router) AutoscaleTick(off time.Duration) {
	if rt.scaler != nil {
		rt.scaler.tick(off)
	}
}

// awaitCapacity blocks while the autoscaler wakes the fleet from zero:
// the arrival that triggered the wake must be served, not bounced with
// 503, for scale-to-zero to preserve the zero-lost-invocations
// guarantee. Bounded by ctx and ForwardTimeout.
func (rt *Router) awaitCapacity(ctx context.Context, fn string) []string {
	deadline := time.NewTimer(rt.cfg.ForwardTimeout)
	defer deadline.Stop()
	poll := time.NewTicker(2 * time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-deadline.C:
			return nil
		case <-rt.stop:
			return nil
		case <-poll.C:
			if cands := rt.reg.Candidates(fn, rt.cfg.LoadBound); len(cands) > 0 {
				return cands
			}
		}
	}
}
