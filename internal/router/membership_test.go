package router

import (
	"reflect"
	"testing"
)

// memEvent records one membership-hook firing.
type memEvent struct {
	ID     string
	InRing bool
}

// TestOnMembershipHook pins every ring transition that must feed the
// scheduling policy: probe mark-down/up, drain, retire, activate, and
// runtime worker addition — and the transitions that must NOT fire
// (administrative states absorbing probe results, standby removal).
func TestOnMembershipHook(t *testing.T) {
	reg, err := NewRegistryWithConfig(RegistryConfig{
		Workers: []WorkerSpec{
			{ID: "w1", URL: "http://w1.invalid"},
			{ID: "w2", URL: "http://w2.invalid"},
		},
		MarkDownAfter: 2,
		MarkUpAfter:   2,
	})
	if err != nil {
		t.Fatalf("NewRegistryWithConfig: %v", err)
	}
	var got []memEvent
	reg.OnMembership(func(id string, inRing bool) {
		got = append(got, memEvent{id, inRing})
	})

	reg.NoteResult("w1", false) // 1 failure: no transition
	reg.NoteResult("w1", false) // 2nd: up -> down
	reg.NoteResult("w1", true)  // 1 success: no transition
	reg.NoteResult("w1", true)  // 2nd: down -> up
	reg.Drain("w1")             // up -> draining: leaves ring
	reg.NoteResult("w1", false) // draining absorbs probe results
	reg.NoteResult("w1", false)
	reg.Retire("w1")   // draining -> standby: already out of the ring
	reg.Activate("w1") // standby -> up
	reg.Retire("w2")   // up -> standby: leaves ring
	if err := reg.AddWorker(WorkerSpec{ID: "w3", URL: "http://w3.invalid"}, true); err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	if err := reg.AddWorker(WorkerSpec{ID: "w4", URL: "http://w4.invalid"}, false); err != nil {
		t.Fatalf("AddWorker standby: %v", err)
	}

	want := []memEvent{
		{"w1", false}, // marked down
		{"w1", true},  // marked up
		{"w1", false}, // drained
		{"w1", true},  // activated
		{"w2", false}, // retired while serving
		{"w3", true},  // added active
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("membership events:\ngot  %v\nwant %v", got, want)
	}
}
