package router

import (
	"errors"
	"log/slog"
	"strings"
	"testing"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/pullsched"
)

// optSpecs is a minimal valid worker set for option tests.
func optSpecs() []WorkerSpec {
	return []WorkerSpec{{ID: "w1", URL: "http://w1.invalid"}}
}

func TestOptionsApply(t *testing.T) {
	logger := slog.Default()
	rt, err := New(Config{Workers: optSpecs()},
		WithPolicy(PolicyPull),
		WithLogger(logger),
	)
	if err != nil {
		t.Fatalf("New with options: %v", err)
	}
	defer func() { _ = rt.Close() }()
	if rt.Policy().Name() != PolicyPull {
		t.Fatalf("policy = %q, want pull", rt.Policy().Name())
	}
	if rt.logger != logger {
		t.Fatal("WithLogger not applied")
	}
}

// WithPullConfig implies the pull policy without naming it.
func TestWithPullConfigImpliesPull(t *testing.T) {
	rt, err := New(Config{Workers: optSpecs()},
		WithPullConfig(pullsched.Config{QueueDepth: 3}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() { _ = rt.Close() }()
	if rt.Policy().Name() != PolicyPull {
		t.Fatalf("policy = %q, want pull", rt.Policy().Name())
	}
	if d := rt.pullCore().core.Config().QueueDepth; d != 3 {
		t.Fatalf("queue depth = %d, want 3", d)
	}
}

func TestOptionConflicts(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		opts []Option
		knob string
	}{
		{"policy twice", Config{},
			[]Option{WithPolicy(PolicyPull), WithPolicy(PolicyHash)}, "policy"},
		{"policy both ways", Config{Policy: PolicyHash},
			[]Option{WithPolicy(PolicyPull)}, "policy"},
		{"pull config both ways", Config{Pull: &pullsched.Config{}},
			[]Option{WithPullConfig(pullsched.Config{})}, "pull"},
		{"pull config vs hash policy", Config{},
			[]Option{WithPullConfig(pullsched.Config{}), WithPolicy(PolicyHash)}, "policy"},
		{"pull config vs cfg hash policy", Config{Policy: PolicyHash},
			[]Option{WithPullConfig(pullsched.Config{})}, "policy"},
		{"autoscale both ways", Config{Autoscale: &autoscale.Config{}},
			[]Option{WithAutoscale(autoscale.Config{})}, "autoscale"},
		{"logger both ways", Config{Logger: slog.Default()},
			[]Option{WithLogger(slog.Default())}, "logger"},
		{"logger twice", Config{},
			[]Option{WithLogger(slog.Default()), WithLogger(slog.Default())}, "logger"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Workers = optSpecs()
			_, err := New(tc.cfg, tc.opts...)
			if !errors.Is(err, ErrConflictingOptions) {
				t.Fatalf("err = %v, want ErrConflictingOptions", err)
			}
			if !strings.Contains(err.Error(), tc.knob) {
				t.Fatalf("error %q does not name knob %q", err, tc.knob)
			}
		})
	}
}

// Config.Policy=PolicyPull plus WithPullConfig tuning is consistent,
// not a conflict — the option only adds the tuning struct.
func TestPullConfigWithMatchingPolicy(t *testing.T) {
	rt, err := New(Config{Workers: optSpecs(), Policy: PolicyPull},
		WithPullConfig(pullsched.Config{QueueDepth: 2}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_ = rt.Close()
}

func TestUnknownPolicyRejected(t *testing.T) {
	if _, err := New(Config{Workers: optSpecs(), Policy: "mystery"}); err == nil {
		t.Fatal("New accepted an unknown policy")
	}
}
