// End-to-end tests for the cluster observability plane: cross-process
// trace stitching through the routing tier and metrics federation over
// live workers.
package router_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"faasbatch/internal/cluster"
	"faasbatch/internal/httpapi"
	"faasbatch/internal/obs"
	"faasbatch/internal/platform"
	"faasbatch/internal/router"
)

// tracedFleet boots n live workers, each with its own always-sampling
// wall tracer salted by worker index — as distinct processes would be —
// so minted IDs never collide across the fleet.
func tracedFleet(t *testing.T, n int) ([]*liveWorker, []*obs.Tracer) {
	t.Helper()
	fleet := make([]*liveWorker, n)
	tracers := make([]*obs.Tracer, n)
	for i := range fleet {
		id := cluster.NodeMember(i)
		tracer, err := obs.NewWallTracerWithSalt(1024, 1, uint64(i+1)<<32)
		if err != nil {
			t.Fatalf("NewWallTracerWithSalt: %v", err)
		}
		cfg := platform.DefaultConfig()
		cfg.DispatchInterval = 10 * time.Millisecond
		cfg.ColdStart = 0
		cfg.WorkerID = id
		cfg.Capacity = 8
		cfg.Tracer = tracer
		p, err := platform.New(cfg)
		if err != nil {
			t.Fatalf("platform.New(%s): %v", id, err)
		}
		t.Cleanup(func() { _ = p.Close() })
		err = p.Register("echo", func(_ context.Context, inv *platform.Invocation) (any, error) {
			return json.RawMessage(inv.Payload), nil
		})
		if err != nil {
			t.Fatalf("Register(%s): %v", id, err)
		}
		p.SetReady(true)
		srv := httptest.NewServer(platform.NewHTTPHandler(p))
		t.Cleanup(srv.Close)
		fleet[i] = &liveWorker{id: id, p: p, srv: srv}
		tracers[i] = tracer
	}
	return fleet, tracers
}

// TestEndToEndStitchedTrace is the tentpole acceptance run: one
// invocation through a three-worker routed cluster — with a forced
// failover retry — produces a stitched trace whose router and worker
// spans share a single trace ID, end to end from the caller's
// traceparent header.
func TestEndToEndStitchedTrace(t *testing.T) {
	fleet, workerTracers := tracedFleet(t, 3)
	routerTracer, err := obs.NewWallTracerWithSalt(1024, 1, 0xff<<24)
	if err != nil {
		t.Fatalf("NewWallTracerWithSalt: %v", err)
	}
	rt := fleetRouter(t, fleet, func(cfg *router.Config) {
		cfg.Tracer = routerTracer
		cfg.MarkDownAfter = 2
		cfg.MaxAttempts = 3
	})
	srv := httptest.NewServer(router.NewHTTPHandler(rt))
	defer srv.Close()

	// Kill the ring owner of "echo" so the first forward attempt hits a
	// dead socket and the router fails over to the next candidate.
	victimID, ok := rt.Registry().Owner("echo")
	if !ok {
		t.Fatal("Owner(echo) failed")
	}
	for _, w := range fleet {
		if w.id == victimID {
			w.srv.CloseClientConnections()
			w.srv.Close()
		}
	}

	const parent = uint64(0x0badc0ffee000001)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/invoke",
		strings.NewReader(`{"fn":"echo","payload":{"n":7}}`))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceParentHeader, obs.FormatTraceParent(parent))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(obs.TraceParentHeader); got != obs.FormatTraceParent(parent) {
		t.Fatalf("response traceparent = %q, want echo of the caller's", got)
	}
	var routed httpapi.RoutedInvokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&routed); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if routed.ForwardAttempts < 2 {
		t.Fatalf("ForwardAttempts = %d, want a failover retry", routed.ForwardAttempts)
	}
	if routed.TraceID != fmt.Sprintf("%016x", parent) {
		t.Fatalf("response traceId = %q, want %016x", routed.TraceID, parent)
	}
	if routed.Worker == victimID {
		t.Fatalf("served by the dead worker %s", routed.Worker)
	}

	// Router spans: route + one forward per attempt, all on the caller's
	// trace, with worker IDs and outcomes in the forward details.
	var forwards []obs.Span
	for _, s := range routerTracer.Snapshot() {
		if s.Trace != parent {
			t.Errorf("router span %s on trace %x, want %x", s.Name, s.Trace, parent)
		}
		if s.Name == obs.SpanForward {
			forwards = append(forwards, s)
		}
	}
	if len(forwards) != routed.ForwardAttempts {
		t.Fatalf("router recorded %d forward spans, want %d", len(forwards), routed.ForwardAttempts)
	}
	if d := forwards[0].Detail; !strings.Contains(d, victimID) || !strings.Contains(d, "transient") {
		t.Errorf("first forward detail = %q, want victim %s + transient", d, victimID)
	}
	last := forwards[len(forwards)-1]
	if d := last.Detail; !strings.Contains(d, routed.Worker) || !strings.Contains(d, "ok") {
		t.Errorf("last forward detail = %q, want server %s + ok", d, routed.Worker)
	}

	// The serving worker's spans joined the same trace.
	workerSpans := 0
	for i, w := range fleet {
		for _, s := range workerTracers[i].Snapshot() {
			if s.Trace == parent {
				if w.id != routed.Worker {
					t.Errorf("dead/idle worker %s has span %s on the trace", w.id, s.Name)
				}
				workerSpans++
			}
		}
	}
	if workerSpans == 0 {
		t.Fatal("no worker spans adopted the caller's trace")
	}

	// Stitch the per-process exports into one timeline: every span lands
	// in one file, tagged with its process, all on the one trace lane.
	var routerBuf bytes.Buffer
	if err := routerTracer.WriteChromeTrace(&routerBuf); err != nil {
		t.Fatalf("router WriteChromeTrace: %v", err)
	}
	sources := []obs.TraceSource{{Name: "router", Reader: &routerBuf}}
	for i, w := range fleet {
		var buf bytes.Buffer
		if err := workerTracers[i].WriteChromeTrace(&buf); err != nil {
			t.Fatalf("worker WriteChromeTrace: %v", err)
		}
		sources = append(sources, obs.TraceSource{Name: w.id, Reader: &buf})
	}
	var stitched bytes.Buffer
	if err := obs.StitchChromeTraces(&stitched, sources...); err != nil {
		t.Fatalf("StitchChromeTraces: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(stitched.Bytes(), &out); err != nil {
		t.Fatalf("decode stitched trace: %v", err)
	}
	procs := map[string]bool{}
	spans := 0
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.Tid != parent {
			continue
		}
		spans++
		procs[ev.Args["process"]] = true
	}
	if spans < 4 {
		t.Fatalf("stitched trace has %d spans on trace %x, want route+2 forwards+worker spans", spans, parent)
	}
	if !procs["router"] || !procs[routed.Worker] {
		t.Fatalf("stitched trace processes = %v, want router and %s", procs, routed.Worker)
	}
}

// TestClusterMetricsFederation drives invocations across a fleet and
// checks /cluster/metrics conserves them exactly: the federated
// invocation counter equals the driven total, histogram counts merge
// bucket-wise, and per-worker gauges stay attributed.
func TestClusterMetricsFederation(t *testing.T) {
	fleet := newFleet(t, 3)
	rt := fleetRouter(t, fleet, nil)
	srv := httptest.NewServer(router.NewHTTPHandler(rt))
	defer srv.Close()

	fns := []string{"fed-a", "fed-b", "fed-c", "fed-d"}
	for _, w := range fleet {
		for _, fn := range fns {
			err := w.p.Register(fn, func(_ context.Context, _ *platform.Invocation) (any, error) {
				return "ok", nil
			})
			if err != nil {
				t.Fatalf("Register: %v", err)
			}
		}
	}
	const perFn = 5
	for _, fn := range fns {
		for i := 0; i < perFn; i++ {
			if _, err := rt.Invoke(context.Background(), httpapi.RoutedInvokeRequest{Fn: fn}); err != nil {
				t.Fatalf("Invoke(%s): %v", fn, err)
			}
		}
	}
	total := float64(perFn * len(fns))

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(raw)
	}
	doc := get("/cluster/metrics")
	fams, err := obs.ParsePrometheus(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("federated output does not re-parse: %v", err)
	}
	byName := map[string]*obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	sample := func(fam, labels string) float64 {
		t.Helper()
		f, ok := byName[fam]
		if !ok {
			t.Fatalf("federation missing family %s", fam)
		}
		for _, s := range f.Samples {
			if s.Labels == labels {
				return s.Value
			}
		}
		t.Fatalf("family %s has no sample %q (have %+v)", fam, labels, f.Samples)
		return 0
	}
	// Exact counter conservation: the fleet completed exactly the driven
	// invocations, no more, no fewer.
	if got := sample("faasbatch_invocations_total", ""); got != total {
		t.Fatalf("federated invocations = %v, want %v", got, total)
	}
	// Histogram conservation: end-to-end latency count sums across the
	// fleet to the driven total as well.
	count := 0.0
	for _, s := range byName["faasbatch_latency_seconds"].Samples {
		if strings.HasSuffix(s.Name, "_count") && strings.Contains(s.Labels, `component="end-to-end"`) {
			count += s.Value
		}
	}
	if count != total {
		t.Fatalf("federated end-to-end histogram count = %v, want %v", count, total)
	}
	// Scrape meta-series and per-worker gauge attribution.
	if got := sample("faascluster_members", ""); got != 3 {
		t.Fatalf("faascluster_members = %v, want 3", got)
	}
	if got := sample("faascluster_members_scraped", ""); got != 3 {
		t.Fatalf("faascluster_members_scraped = %v, want 3", got)
	}
	for _, w := range fleet {
		if got := sample("faasbatch_goroutines", fmt.Sprintf("worker=%q", w.id)); got < 1 {
			t.Fatalf("goroutines gauge for %s = %v", w.id, got)
		}
	}

	// /cluster/stats: the roll-up equals the member sum, and matches the
	// driven total.
	var cs httpapi.ClusterStatsResponse
	if err := json.Unmarshal([]byte(get("/cluster/stats")), &cs); err != nil {
		t.Fatalf("decode /cluster/stats: %v", err)
	}
	if cs.Cluster.Invocations != int64(total) {
		t.Fatalf("cluster invocations = %d, want %v", cs.Cluster.Invocations, total)
	}
	var memberSum int64
	for _, m := range cs.Members {
		if !m.Fresh {
			t.Errorf("member %s not fresh on a healthy fleet", m.Worker)
		}
		memberSum += m.Stats.Invocations
	}
	if memberSum != cs.Cluster.Invocations {
		t.Fatalf("member sum %d != cluster roll-up %d", memberSum, cs.Cluster.Invocations)
	}

	// Kill one worker: the next scrape serves its last good snapshot,
	// marked stale, instead of blanking the fleet view.
	victim := fleet[0]
	victim.srv.CloseClientConnections()
	victim.srv.Close()
	var cs2 httpapi.ClusterStatsResponse
	if err := json.Unmarshal([]byte(get("/cluster/stats")), &cs2); err != nil {
		t.Fatalf("decode /cluster/stats after kill: %v", err)
	}
	found := false
	for _, m := range cs2.Members {
		if m.Worker == victim.id {
			found = true
			if m.Fresh {
				t.Errorf("dead member %s reported fresh", m.Worker)
			}
		}
	}
	if !found {
		t.Fatal("dead member dropped from the cluster view despite a cached snapshot")
	}
	if cs2.Cluster.Invocations != cs.Cluster.Invocations {
		t.Fatalf("stale fallback changed the roll-up: %d -> %d", cs.Cluster.Invocations, cs2.Cluster.Invocations)
	}
	if cs2.Router.ScrapeFailures == 0 {
		t.Fatal("scrape failure not counted")
	}
	doc2 := get("/cluster/metrics")
	if !strings.Contains(doc2, "faascluster_members_stale 1") {
		t.Fatal("federation does not report the stale member")
	}
}

// TestRouterRuntimeGauges checks the router's own /metrics carries the
// full obs.RuntimeExports set under the faasrouter prefix, plus the
// scrape counters.
func TestRouterRuntimeGauges(t *testing.T) {
	fleet := newFleet(t, 1)
	rt := fleetRouter(t, fleet, nil)
	srv := httptest.NewServer(router.NewHTTPHandler(rt))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, _ := io.ReadAll(resp.Body)
	out := string(raw)
	for _, ex := range obs.RuntimeExports {
		name := "faasrouter_" + ex.Suffix
		for _, want := range []string{
			fmt.Sprintf("# TYPE %s %s\n", name, ex.Typ),
			"\n" + name + " ",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
	for _, want := range []string{"faasrouter_scrapes_total ", "faasrouter_scrape_failures_total "} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
