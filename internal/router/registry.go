package router

import (
	"fmt"
	"sort"
	"sync"

	"faasbatch/internal/httpapi"
)

// WorkerState is a registry member's health state.
type WorkerState int

// Worker states.
const (
	// WorkerUp means the worker owns ring segments and receives traffic.
	WorkerUp WorkerState = iota + 1
	// WorkerDown means the worker is marked down: removed from the ring,
	// skipped by the forwarder, still probed for recovery.
	WorkerDown
	// WorkerDraining means the worker was administratively removed from
	// the ring (autoscale scale-down) and is finishing its in-flight
	// forwards before retiring. Health probes never mark it back up.
	WorkerDraining
	// WorkerStandby means the worker is administratively retired: it
	// holds no ring segments and takes no traffic until the autoscaler
	// activates it again.
	WorkerStandby
)

// String implements fmt.Stringer.
func (s WorkerState) String() string {
	switch s {
	case WorkerUp:
		return "up"
	case WorkerDown:
		return "down"
	case WorkerDraining:
		return "draining"
	case WorkerStandby:
		return "standby"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// WorkerSpec names one worker gateway.
type WorkerSpec struct {
	// ID is the worker's fleet identity (the ring member name).
	ID string
	// URL is the worker's base URL (scheme://host:port, no trailing /).
	URL string
}

// worker is the registry's record of one fleet member.
type worker struct {
	spec       WorkerSpec
	state      WorkerState
	consecFail int
	consecOK   int
	capacity   int
	inflight   int
	forwarded  int64
	failures   int64
}

// Registry tracks the fleet: worker states, in-flight load, and the
// consistent-hash ring spanning the workers currently marked up. All
// methods are safe for concurrent use. Membership is dynamic: the
// autoscaler activates standby workers, drains active ones, and may
// add or remove workers outright while forwards are in flight.
type Registry struct {
	mu            sync.Mutex
	workers       map[string]*worker
	order         []string // registration order, for stable iteration
	ring          *Ring
	markDownAfter int
	markUpAfter   int
	markDowns     int64
	markUps       int64
	onDrained     func(id string)              // drain-complete hook, called unlocked
	onMembership  func(id string, inRing bool) // ring-membership hook, called unlocked
}

// RegistryConfig parameterises NewRegistryWithConfig — the registry's
// knobs as one struct, matching the router.Config style, instead of
// NewRegistry's positional arguments.
type RegistryConfig struct {
	// Workers is the fleet (at least one).
	Workers []WorkerSpec
	// VNodes is the ring's virtual-node count per worker (<= 0 uses
	// DefaultVNodes).
	VNodes int
	// MarkDownAfter is how many consecutive failures mark a worker down
	// (default 2).
	MarkDownAfter int
	// MarkUpAfter is how many consecutive probe successes mark a down
	// worker back up (default 2).
	MarkUpAfter int
}

// NewRegistry builds a registry over specs.
//
// Deprecated: use NewRegistryWithConfig, which names the knobs. This
// wrapper remains for callers predating the policy API redesign.
func NewRegistry(specs []WorkerSpec, vnodes, markDownAfter, markUpAfter int) (*Registry, error) {
	return NewRegistryWithConfig(RegistryConfig{
		Workers:       specs,
		VNodes:        vnodes,
		MarkDownAfter: markDownAfter,
		MarkUpAfter:   markUpAfter,
	})
}

// NewRegistryWithConfig builds a registry over cfg.Workers. Workers
// start optimistically up (the first failed probe round marks the dead
// ones down), so a fresh router serves traffic before its first probe
// completes. A worker is marked down after MarkDownAfter consecutive
// failures and back up after MarkUpAfter consecutive successes.
func NewRegistryWithConfig(cfg RegistryConfig) (*Registry, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("router: registry needs at least one worker")
	}
	if cfg.MarkDownAfter <= 0 {
		cfg.MarkDownAfter = 2
	}
	if cfg.MarkUpAfter <= 0 {
		cfg.MarkUpAfter = 2
	}
	r := &Registry{
		workers:       make(map[string]*worker, len(cfg.Workers)),
		ring:          NewRing(cfg.VNodes),
		markDownAfter: cfg.MarkDownAfter,
		markUpAfter:   cfg.MarkUpAfter,
	}
	for _, spec := range cfg.Workers {
		if spec.ID == "" || spec.URL == "" {
			return nil, fmt.Errorf("router: worker spec needs an id and a url, got %+v", spec)
		}
		if _, dup := r.workers[spec.ID]; dup {
			return nil, fmt.Errorf("router: duplicate worker id %q", spec.ID)
		}
		r.workers[spec.ID] = &worker{spec: spec, state: WorkerUp}
		r.order = append(r.order, spec.ID)
		r.ring.Add(spec.ID)
	}
	return r, nil
}

// Specs lists every worker's spec in registration order, regardless of
// state (the prober probes down workers too, to mark them back up).
func (r *Registry) Specs() []WorkerSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerSpec, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.workers[id].spec)
	}
	return out
}

// URL resolves a worker id to its base URL ("" when unknown).
func (r *Registry) URL(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return ""
	}
	return w.spec.URL
}

// State reports a worker's current state (0 when unknown).
func (r *Registry) State(id string) WorkerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return 0
	}
	return w.state
}

// UpCount counts workers currently marked up.
func (r *Registry) UpCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Len()
}

// Candidates orders the up workers for one function under bounded load:
// the ring owner first (or the first under-bound replica), then failover
// replicas in ring order, then overloaded workers by ascending load.
// Down workers never appear.
func (r *Registry) Candidates(fn string, loadBound float64) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.PickBounded(fn, loadBound, func(id string) int {
		return r.workers[id].inflight
	})
}

// Owner reports the ring owner of fn ignoring load — the worker the
// function's whole dispatch windows batch on when the fleet is healthy
// and under its load bound.
func (r *Registry) Owner(fn string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Pick(fn)
}

// NoteResult folds one observation — a health probe or a forward attempt
// — into the worker's state machine, returning the transition it caused
// (if any): consecutive failures mark a worker down and shrink the ring;
// consecutive successes mark it back up and regrow the ring.
func (r *Registry) NoteResult(id string, ok bool) (changed bool, now WorkerState) {
	r.mu.Lock()
	w, exists := r.workers[id]
	if !exists {
		r.mu.Unlock()
		return false, 0
	}
	var hook func(string, bool)
	inRing := false
	if ok {
		w.consecFail = 0
		w.consecOK++
		if w.state == WorkerDown && w.consecOK >= r.markUpAfter {
			w.state = WorkerUp
			r.ring.Add(id)
			r.markUps++
			changed, now = true, WorkerUp
			hook, inRing = r.onMembership, true
		} else {
			changed, now = false, w.state
		}
	} else {
		w.consecOK = 0
		w.consecFail++
		w.failures++
		if w.state == WorkerUp && w.consecFail >= r.markDownAfter {
			w.state = WorkerDown
			r.ring.Remove(id)
			r.markDowns++
			changed, now = true, WorkerDown
			hook, inRing = r.onMembership, false
		} else {
			// Draining and standby workers are administrative states:
			// probe results keep feeding the counters but never flip them
			// up or down.
			changed, now = false, w.state
		}
	}
	r.mu.Unlock()
	if hook != nil {
		hook(id, inRing)
	}
	return changed, now
}

// OnMembership registers the ring-membership hook: it fires (without
// the registry lock held) whenever a worker joins or leaves the serving
// set — probe mark-down/up, autoscale activate, drain, or retire. At
// most one hook; the router installs it to feed the scheduling policy.
func (r *Registry) OnMembership(fn func(id string, inRing bool)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onMembership = fn
}

// OnDrained registers the drain-complete hook: it fires (without the
// registry lock held) when a draining worker's in-flight count reaches
// zero. At most one hook; the autoscale driver installs it.
func (r *Registry) OnDrained(fn func(id string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onDrained = fn
}

// AddWorker registers a new fleet member at runtime. Active workers
// join the ring immediately (optimistically up, like NewRegistry);
// inactive ones start on standby for the autoscaler to activate later.
func (r *Registry) AddWorker(spec WorkerSpec, active bool) error {
	r.mu.Lock()
	if spec.ID == "" || spec.URL == "" {
		r.mu.Unlock()
		return fmt.Errorf("router: worker spec needs an id and a url, got %+v", spec)
	}
	if _, dup := r.workers[spec.ID]; dup {
		r.mu.Unlock()
		return fmt.Errorf("router: duplicate worker id %q", spec.ID)
	}
	w := &worker{spec: spec, state: WorkerStandby}
	if active {
		w.state = WorkerUp
	}
	r.workers[spec.ID] = w
	r.order = append(r.order, spec.ID)
	var hook func(string, bool)
	if active {
		r.ring.Add(spec.ID)
		hook = r.onMembership
	}
	r.mu.Unlock()
	if hook != nil {
		hook(spec.ID, true)
	}
	return nil
}

// RemoveWorker deletes a member outright. Workers still owning ring
// segments or in-flight forwards are refused — drain first.
func (r *Registry) RemoveWorker(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return fmt.Errorf("router: unknown worker %q", id)
	}
	if w.state == WorkerUp || w.state == WorkerDraining {
		return fmt.Errorf("router: worker %q is %s; drain before removing", id, w.state)
	}
	if w.inflight > 0 {
		return fmt.Errorf("router: worker %q has %d in-flight forwards", id, w.inflight)
	}
	r.ring.Remove(id)
	delete(r.workers, id)
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// Activate puts a standby, draining, or down worker back in service:
// state up, ring segments restored, health counters reset (the probe
// loop re-marks it down if it is actually dead). It reports whether the
// state changed.
func (r *Registry) Activate(id string) bool {
	r.mu.Lock()
	w, ok := r.workers[id]
	if !ok || w.state == WorkerUp {
		r.mu.Unlock()
		return false
	}
	w.state = WorkerUp
	w.consecFail, w.consecOK = 0, 0
	r.ring.Add(id)
	hook := r.onMembership
	r.mu.Unlock()
	if hook != nil {
		hook(id, true)
	}
	return true
}

// Drain begins a graceful removal: the worker leaves the ring (no new
// forwards) but keeps serving its in-flight ones. When the in-flight
// count reaches zero the OnDrained hook fires — immediately, if it
// already is zero. It reports whether the state changed.
func (r *Registry) Drain(id string) bool {
	r.mu.Lock()
	w, ok := r.workers[id]
	if !ok || w.state == WorkerDraining || w.state == WorkerStandby {
		r.mu.Unlock()
		return false
	}
	wasServing := w.state == WorkerUp
	w.state = WorkerDraining
	r.ring.Remove(id)
	drained := w.inflight == 0
	hook := r.onDrained
	membership := r.onMembership
	r.mu.Unlock()
	if wasServing && membership != nil {
		membership(id, false)
	}
	if drained && hook != nil {
		hook(id)
	}
	return true
}

// Retire moves a drained (or down/up) worker to standby, releasing its
// ring segments. It reports whether the state changed.
func (r *Registry) Retire(id string) bool {
	r.mu.Lock()
	w, ok := r.workers[id]
	if !ok || w.state == WorkerStandby {
		r.mu.Unlock()
		return false
	}
	wasServing := w.state == WorkerUp
	w.state = WorkerStandby
	w.consecFail, w.consecOK = 0, 0
	r.ring.Remove(id)
	hook := r.onMembership
	r.mu.Unlock()
	if wasServing && hook != nil {
		hook(id, false)
	}
	return true
}

// Counts reports the fleet's state populations: ready (up), draining,
// down, and standby — the faascluster_workers_* gauges.
func (r *Registry) Counts() (ready, draining, down, standby int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		switch w.state {
		case WorkerUp:
			ready++
		case WorkerDraining:
			draining++
		case WorkerDown:
			down++
		case WorkerStandby:
			standby++
		}
	}
	return ready, draining, down, standby
}

// SetCapacity records a worker's advertised capacity from its health
// report.
func (r *Registry) SetCapacity(id string, capacity int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok && capacity >= 0 {
		w.capacity = capacity
	}
}

// AddInflight adjusts a worker's outstanding-forward count. When a
// draining worker's count reaches zero its graceful drain is complete
// and the OnDrained hook fires (without the lock held).
func (r *Registry) AddInflight(id string, delta int) {
	r.mu.Lock()
	var hook func(string)
	if w, ok := r.workers[id]; ok {
		before := w.inflight
		w.inflight += delta
		if w.inflight < 0 {
			w.inflight = 0
		}
		if w.state == WorkerDraining && before > 0 && w.inflight == 0 {
			hook = r.onDrained
		}
	}
	r.mu.Unlock()
	if hook != nil {
		hook(id)
	}
}

// NoteForwarded counts one invocation served by the worker.
func (r *Registry) NoteForwarded(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok {
		w.forwarded++
	}
}

// Transitions reports the cumulative mark-down/mark-up counts.
func (r *Registry) Transitions() (markDowns, markUps int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.markDowns, r.markUps
}

// ForwardedPerWorker returns each worker's served-invocation count in
// registration order (feeds metrics.Imbalance).
func (r *Registry) ForwardedPerWorker() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, int(r.workers[id].forwarded))
	}
	return out
}

// Snapshot renders the worker table as wire rows, sorted by id.
func (r *Registry) Snapshot() []httpapi.WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]httpapi.WorkerStatus, 0, len(r.order))
	for _, id := range r.order {
		w := r.workers[id]
		out = append(out, httpapi.WorkerStatus{
			ID:        w.spec.ID,
			URL:       w.spec.URL,
			State:     w.state.String(),
			Inflight:  int64(w.inflight),
			Capacity:  w.capacity,
			Forwarded: w.forwarded,
			Failures:  w.failures,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
