package router

import (
	"fmt"
	"sort"
	"sync"

	"faasbatch/internal/httpapi"
)

// WorkerState is a registry member's health state.
type WorkerState int

// Worker states.
const (
	// WorkerUp means the worker owns ring segments and receives traffic.
	WorkerUp WorkerState = iota + 1
	// WorkerDown means the worker is marked down: removed from the ring,
	// skipped by the forwarder, still probed for recovery.
	WorkerDown
)

// String implements fmt.Stringer.
func (s WorkerState) String() string {
	switch s {
	case WorkerUp:
		return "up"
	case WorkerDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// WorkerSpec names one worker gateway.
type WorkerSpec struct {
	// ID is the worker's fleet identity (the ring member name).
	ID string
	// URL is the worker's base URL (scheme://host:port, no trailing /).
	URL string
}

// worker is the registry's record of one fleet member.
type worker struct {
	spec       WorkerSpec
	state      WorkerState
	consecFail int
	consecOK   int
	capacity   int
	inflight   int
	forwarded  int64
	failures   int64
}

// Registry tracks the fleet: worker states, in-flight load, and the
// consistent-hash ring spanning the workers currently marked up. All
// methods are safe for concurrent use.
type Registry struct {
	mu            sync.Mutex
	workers       map[string]*worker
	order         []string // registration order, for stable iteration
	ring          *Ring
	markDownAfter int
	markUpAfter   int
	markDowns     int64
	markUps       int64
}

// NewRegistry builds a registry over specs. Workers start optimistically
// up (the first failed probe round marks the dead ones down), so a fresh
// router serves traffic before its first probe completes. A worker is
// marked down after markDownAfter consecutive failures and back up after
// markUpAfter consecutive successes (both default to 2 when <= 0).
func NewRegistry(specs []WorkerSpec, vnodes, markDownAfter, markUpAfter int) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("router: registry needs at least one worker")
	}
	if markDownAfter <= 0 {
		markDownAfter = 2
	}
	if markUpAfter <= 0 {
		markUpAfter = 2
	}
	r := &Registry{
		workers:       make(map[string]*worker, len(specs)),
		ring:          NewRing(vnodes),
		markDownAfter: markDownAfter,
		markUpAfter:   markUpAfter,
	}
	for _, spec := range specs {
		if spec.ID == "" || spec.URL == "" {
			return nil, fmt.Errorf("router: worker spec needs an id and a url, got %+v", spec)
		}
		if _, dup := r.workers[spec.ID]; dup {
			return nil, fmt.Errorf("router: duplicate worker id %q", spec.ID)
		}
		r.workers[spec.ID] = &worker{spec: spec, state: WorkerUp}
		r.order = append(r.order, spec.ID)
		r.ring.Add(spec.ID)
	}
	return r, nil
}

// Specs lists every worker's spec in registration order, regardless of
// state (the prober probes down workers too, to mark them back up).
func (r *Registry) Specs() []WorkerSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerSpec, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.workers[id].spec)
	}
	return out
}

// URL resolves a worker id to its base URL ("" when unknown).
func (r *Registry) URL(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return ""
	}
	return w.spec.URL
}

// State reports a worker's current state (0 when unknown).
func (r *Registry) State(id string) WorkerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return 0
	}
	return w.state
}

// UpCount counts workers currently marked up.
func (r *Registry) UpCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Len()
}

// Candidates orders the up workers for one function under bounded load:
// the ring owner first (or the first under-bound replica), then failover
// replicas in ring order, then overloaded workers by ascending load.
// Down workers never appear.
func (r *Registry) Candidates(fn string, loadBound float64) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.PickBounded(fn, loadBound, func(id string) int {
		return r.workers[id].inflight
	})
}

// Owner reports the ring owner of fn ignoring load — the worker the
// function's whole dispatch windows batch on when the fleet is healthy
// and under its load bound.
func (r *Registry) Owner(fn string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Pick(fn)
}

// NoteResult folds one observation — a health probe or a forward attempt
// — into the worker's state machine, returning the transition it caused
// (if any): consecutive failures mark a worker down and shrink the ring;
// consecutive successes mark it back up and regrow the ring.
func (r *Registry) NoteResult(id string, ok bool) (changed bool, now WorkerState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, exists := r.workers[id]
	if !exists {
		return false, 0
	}
	if ok {
		w.consecFail = 0
		w.consecOK++
		if w.state == WorkerDown && w.consecOK >= r.markUpAfter {
			w.state = WorkerUp
			r.ring.Add(id)
			r.markUps++
			return true, WorkerUp
		}
		return false, w.state
	}
	w.consecOK = 0
	w.consecFail++
	w.failures++
	if w.state == WorkerUp && w.consecFail >= r.markDownAfter {
		w.state = WorkerDown
		r.ring.Remove(id)
		r.markDowns++
		return true, WorkerDown
	}
	return false, w.state
}

// SetCapacity records a worker's advertised capacity from its health
// report.
func (r *Registry) SetCapacity(id string, capacity int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok && capacity >= 0 {
		w.capacity = capacity
	}
}

// AddInflight adjusts a worker's outstanding-forward count.
func (r *Registry) AddInflight(id string, delta int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok {
		w.inflight += delta
		if w.inflight < 0 {
			w.inflight = 0
		}
	}
}

// NoteForwarded counts one invocation served by the worker.
func (r *Registry) NoteForwarded(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok {
		w.forwarded++
	}
}

// Transitions reports the cumulative mark-down/mark-up counts.
func (r *Registry) Transitions() (markDowns, markUps int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.markDowns, r.markUps
}

// ForwardedPerWorker returns each worker's served-invocation count in
// registration order (feeds metrics.Imbalance).
func (r *Registry) ForwardedPerWorker() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, int(r.workers[id].forwarded))
	}
	return out
}

// Snapshot renders the worker table as wire rows, sorted by id.
func (r *Registry) Snapshot() []httpapi.WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]httpapi.WorkerStatus, 0, len(r.order))
	for _, id := range r.order {
		w := r.workers[id]
		out = append(out, httpapi.WorkerStatus{
			ID:        w.spec.ID,
			URL:       w.spec.URL,
			State:     w.state.String(),
			Inflight:  int64(w.inflight),
			Capacity:  w.capacity,
			Forwarded: w.forwarded,
			Failures:  w.failures,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
