package router

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/httpapi"
)

// fakeWorker is a scriptable worker gateway: /invoke and /healthz with
// adjustable behaviour, so registry transitions and failover are testable
// without real platforms.
type fakeWorker struct {
	id  string
	srv *httptest.Server

	mu           sync.Mutex
	healthStatus string        // httpapi.Health* word for /healthz
	capacity     int           // advertised in /healthz
	invokeDelay  time.Duration // handler latency
	invokeStatus int           // 0 = 200 with a real body
	served       int
}

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{id: id, healthStatus: httpapi.HealthOK}
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke", func(w http.ResponseWriter, r *http.Request) {
		var req httpapi.InvokeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fw.mu.Lock()
		delay, status := fw.invokeDelay, fw.invokeStatus
		fw.served++
		fw.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		if status != 0 {
			http.Error(w, "scripted failure", status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(httpapi.InvokeResponse{
			Fn: req.Fn, Result: req.Payload, Worker: fw.id, Attempts: 1,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fw.mu.Lock()
		status, capacity := fw.healthStatus, fw.capacity
		fw.mu.Unlock()
		code := http.StatusOK
		if status != httpapi.HealthOK {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(httpapi.HealthResponse{
			Status: status, Worker: fw.id, Capacity: capacity,
		})
	})
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)
	return fw
}

func (fw *fakeWorker) set(f func(*fakeWorker)) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	f(fw)
}

func (fw *fakeWorker) servedCount() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.served
}

func (fw *fakeWorker) spec() WorkerSpec {
	return WorkerSpec{ID: fw.id, URL: fw.srv.URL}
}

// newTestRouter builds a router over fake workers with fast timeouts and
// no backoff. Callers tweak cfg first via mut.
func newTestRouter(t *testing.T, workers []*fakeWorker, mut func(*Config)) *Router {
	t.Helper()
	specs := make([]WorkerSpec, len(workers))
	for i, fw := range workers {
		specs[i] = fw.spec()
	}
	cfg := Config{
		Workers:        specs,
		ProbeTimeout:   500 * time.Millisecond,
		RetryBackoff:   -1, // no sleeping in tests
		ForwardTimeout: 2 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

func routedReq(fn string) httpapi.RoutedInvokeRequest {
	return httpapi.RoutedInvokeRequest{Fn: fn, Payload: json.RawMessage(`{"n":1}`)}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestRouterForwardSuccess(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	rt := newTestRouter(t, []*fakeWorker{w1, w2}, nil)

	owner, _ := rt.Registry().Owner("fib")
	res, err := rt.Invoke(context.Background(), routedReq("fib"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Worker != owner {
		t.Fatalf("Worker = %q, ring owner = %q", res.Worker, owner)
	}
	if res.ForwardAttempts != 1 {
		t.Fatalf("ForwardAttempts = %d, want 1", res.ForwardAttempts)
	}
	if res.Fn != "fib" || string(res.Result) != `{"n":1}` {
		t.Fatalf("response = %+v", res)
	}
	st := rt.Stats()
	if st.Routed != 1 || st.Completed != 1 || st.Forwarded != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Affinity: the same function keeps landing on the same worker.
	for i := 0; i < 10; i++ {
		res, err := rt.Invoke(context.Background(), routedReq("fib"))
		if err != nil {
			t.Fatalf("Invoke #%d: %v", i, err)
		}
		if res.Worker != owner {
			t.Fatalf("affinity broken: invoke #%d went to %q, want %q", i, res.Worker, owner)
		}
	}
}

func TestRouterPassThrough(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	w1.set(func(fw *fakeWorker) { fw.invokeStatus = http.StatusBadRequest })
	rt := newTestRouter(t, []*fakeWorker{w1}, nil)

	_, err := rt.Invoke(context.Background(), routedReq("fib"))
	var pass *PassThroughError
	if !errors.As(err, &pass) {
		t.Fatalf("err = %v, want PassThroughError", err)
	}
	if pass.Status != http.StatusBadRequest || pass.Worker != "w1" {
		t.Fatalf("pass-through = %+v", pass)
	}
	if !strings.Contains(pass.Body, "scripted failure") {
		t.Fatalf("body = %q", pass.Body)
	}
	// The worker answered: one attempt, no retries, still up.
	if st := rt.Stats(); st.Retries != 0 || st.Errors != 0 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if rt.Registry().State("w1") != WorkerUp {
		t.Fatal("answering worker marked down")
	}
}

// TestRouterFailover kills the ring owner's listener and asserts the
// invocation fails over to the surviving replica with nothing lost.
func TestRouterFailover(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	rt := newTestRouter(t, []*fakeWorker{w1, w2}, func(cfg *Config) {
		cfg.MaxAttempts = 3
		cfg.MarkDownAfter = 1
	})
	owner, _ := rt.Registry().Owner("fib")
	victim, survivor := w1, w2
	if owner == "w2" {
		victim, survivor = w2, w1
	}
	victim.srv.Close() // connection refused from here on

	res, err := rt.Invoke(context.Background(), routedReq("fib"))
	if err != nil {
		t.Fatalf("Invoke with dead owner: %v", err)
	}
	if res.Worker != survivor.id {
		t.Fatalf("Worker = %q, want survivor %q", res.Worker, survivor.id)
	}
	if res.ForwardAttempts != 2 {
		t.Fatalf("ForwardAttempts = %d, want 2", res.ForwardAttempts)
	}
	st := rt.Stats()
	if st.Retries != 1 || st.Failovers != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// MarkDownAfter=1: the failed forward already marked the victim down,
	// so the next invocation goes straight to the survivor.
	if rt.Registry().State(victim.id) != WorkerDown {
		t.Fatal("victim not marked down after forward failure")
	}
	res, err = rt.Invoke(context.Background(), routedReq("fib"))
	if err != nil || res.ForwardAttempts != 1 {
		t.Fatalf("post-mark-down invoke: res=%+v err=%v", res, err)
	}
}

// TestRouterChaosRetries drives a deterministic injected-failure schedule
// through the forwarder: every invocation completes (zero lost) while the
// injector forces retries.
func TestRouterChaosRetries(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	inj := chaos.MustNew(chaos.Config{
		Seed:  7,
		Rates: map[chaos.Kind]float64{chaos.WorkerFailure: 0.4},
	})
	rt := newTestRouter(t, []*fakeWorker{w1, w2}, func(cfg *Config) {
		cfg.MaxAttempts = 8
		cfg.Chaos = inj
		// Keep injected failures from marking workers down mid-test: the
		// point here is the retry/failover path, not membership churn.
		cfg.MarkDownAfter = 1000
	})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := rt.Invoke(context.Background(), routedReq("fib")); err != nil {
			t.Fatalf("invocation %d lost: %v", i, err)
		}
	}
	st := rt.Stats()
	if st.Completed != n {
		t.Fatalf("Completed = %d, want %d", st.Completed, n)
	}
	if st.Retries == 0 {
		t.Fatal("chaos at rate 0.4 caused no retries")
	}
	if w1.servedCount()+w2.servedCount() != n {
		t.Fatalf("workers served %d+%d, want %d", w1.servedCount(), w2.servedCount(), n)
	}
}

func TestRouterNoWorkers(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	rt := newTestRouter(t, []*fakeWorker{w1}, func(cfg *Config) { cfg.MarkDownAfter = 1 })
	rt.Registry().NoteResult("w1", false)
	_, err := rt.Invoke(context.Background(), routedReq("fib"))
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if st := rt.Stats(); st.NoWorkers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRouterProbeTransitions drives the prober against a worker that
// turns unhealthy and recovers: mark-down shrinks the ring, mark-up
// regrows it, and the capacity report lands in the worker table.
func TestRouterProbeTransitions(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	w1.set(func(fw *fakeWorker) { fw.capacity = 7 })
	rt := newTestRouter(t, []*fakeWorker{w1, w2}, func(cfg *Config) {
		cfg.MarkDownAfter = 2
		cfg.MarkUpAfter = 2
	})
	ctx := context.Background()

	rt.ProbeAll(ctx)
	if st := rt.Stats(); st.Probes != 2 || st.ProbeFailures != 0 {
		t.Fatalf("stats after healthy round = %+v", st)
	}
	for _, row := range rt.Registry().Snapshot() {
		if row.ID == "w1" && row.Capacity != 7 {
			t.Fatalf("capacity report lost: %+v", row)
		}
	}

	// w2 starts draining: two failed rounds mark it down.
	w2.set(func(fw *fakeWorker) { fw.healthStatus = httpapi.HealthDraining })
	rt.ProbeAll(ctx)
	if rt.Registry().State("w2") != WorkerUp {
		t.Fatal("one failed probe should not mark down")
	}
	rt.ProbeAll(ctx)
	if rt.Registry().State("w2") != WorkerDown {
		t.Fatal("two failed probes should mark down")
	}
	if rt.Registry().UpCount() != 1 {
		t.Fatalf("UpCount = %d, want 1", rt.Registry().UpCount())
	}

	// Recovery: two healthy rounds mark it back up.
	w2.set(func(fw *fakeWorker) { fw.healthStatus = httpapi.HealthOK })
	rt.ProbeAll(ctx)
	rt.ProbeAll(ctx)
	if rt.Registry().State("w2") != WorkerUp {
		t.Fatal("two healthy probes should mark up")
	}
	if downs, ups := rt.Registry().Transitions(); downs != 1 || ups != 1 {
		t.Fatalf("Transitions = %d/%d", downs, ups)
	}
	if st := rt.Stats(); st.ProbeFailures == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRouterProbeLoop covers Start/Close with a real ticker.
func TestRouterProbeLoop(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	rt := newTestRouter(t, []*fakeWorker{w1}, func(cfg *Config) {
		cfg.ProbeInterval = 10 * time.Millisecond
	})
	rt.Start()
	rt.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for rt.Stats().Probes == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rt.Stats().Probes == 0 {
		t.Fatal("prober never fired")
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := rt.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

func TestRouterInvokeTimeout(t *testing.T) {
	w1 := newFakeWorker(t, "w1")
	w1.set(func(fw *fakeWorker) { fw.invokeDelay = 500 * time.Millisecond })
	rt := newTestRouter(t, []*fakeWorker{w1}, func(cfg *Config) { cfg.MaxAttempts = 1 })
	req := routedReq("fib")
	req.TimeoutMillis = 50
	start := time.Now()
	_, err := rt.Invoke(context.Background(), req)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}
