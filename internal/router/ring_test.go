package router

import (
	"fmt"
	"testing"
)

// testKeys generates a deterministic key set large enough to exercise
// every ring segment.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fn-%d", i)
	}
	return keys
}

func ownerMap(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		m, ok := r.Pick(k)
		if !ok {
			t.Fatalf("Pick(%q) on non-empty ring failed", k)
		}
		out[k] = m
	}
	return out
}

func TestRingAddRemove(t *testing.T) {
	r := NewRing(0)
	if r.vnodes != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", r.vnodes, DefaultVNodes)
	}
	if _, ok := r.Pick("fn"); ok {
		t.Fatal("empty ring picked a member")
	}
	if !r.Add("a") || !r.Add("b") {
		t.Fatal("Add failed")
	}
	if r.Add("a") {
		t.Fatal("duplicate Add accepted")
	}
	if r.Add("") {
		t.Fatal("empty member accepted")
	}
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members = %v", got)
	}
	if !r.Remove("a") {
		t.Fatal("Remove failed")
	}
	if r.Remove("a") {
		t.Fatal("double Remove accepted")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if len(r.entries) != r.vnodes {
		t.Fatalf("entries = %d, want %d", len(r.entries), r.vnodes)
	}
}

// TestRingStability is the consistent-hashing property: removing one
// member moves only the keys it owned, and re-adding it restores the
// original ownership exactly.
func TestRingStability(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"w1", "w2", "w3"} {
		r.Add(m)
	}
	keys := testKeys(500)
	before := ownerMap(t, r, keys)

	r.Remove("w2")
	after := ownerMap(t, r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] == "w2" {
			if after[k] == "w2" {
				t.Fatalf("key %q still owned by removed member", k)
			}
			moved++
			continue
		}
		if after[k] != before[k] {
			t.Errorf("key %q moved %s -> %s though its owner survived", k, before[k], after[k])
		}
	}
	if moved == 0 {
		t.Fatal("w2 owned no keys out of 500; vnode spread is broken")
	}

	r.Add("w2")
	restored := ownerMap(t, r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Errorf("key %q not restored after re-add: %s != %s", k, restored[k], before[k])
		}
	}
}

func TestRingCandidatesDistinct(t *testing.T) {
	r := NewRing(32)
	members := []string{"w1", "w2", "w3", "w4"}
	for _, m := range members {
		r.Add(m)
	}
	for _, k := range testKeys(50) {
		c := r.Candidates(k, 10) // max beyond member count clamps
		if len(c) != len(members) {
			t.Fatalf("Candidates(%q) = %v, want all %d members", k, c, len(members))
		}
		seen := make(map[string]bool)
		for _, m := range c {
			if seen[m] {
				t.Fatalf("Candidates(%q) repeats %q: %v", k, m, c)
			}
			seen[m] = true
		}
		owner, _ := r.Pick(k)
		if c[0] != owner {
			t.Fatalf("Candidates(%q)[0] = %q, owner = %q", k, c[0], owner)
		}
	}
	if c := r.Candidates("fn", 0); c != nil {
		t.Fatalf("max 0 returned %v", c)
	}
	if c := r.Candidates("fn", 2); len(c) != 2 {
		t.Fatalf("max 2 returned %v", c)
	}
}

func TestRingLoadBound(t *testing.T) {
	r := NewRing(8)
	if got := r.LoadBound(1.25, 10); got != 0 {
		t.Fatalf("empty-ring bound = %d, want 0", got)
	}
	r.Add("w1")
	r.Add("w2")
	// ceil(1.25 * (10+1) / 2) = ceil(6.875) = 7.
	if got := r.LoadBound(1.25, 10); got != 7 {
		t.Fatalf("bound = %d, want 7", got)
	}
	// Sub-1 factors clamp to 1: ceil(1 * 11 / 2) = 6.
	if got := r.LoadBound(0.5, 10); got != 6 {
		t.Fatalf("clamped bound = %d, want 6", got)
	}
	// An idle fleet always admits the arriving invocation somewhere.
	if got := r.LoadBound(1.25, 0); got < 1 {
		t.Fatalf("idle bound = %d, want >= 1", got)
	}
}

// TestRingPickBoundedSpillover drives one key's owner past the load
// bound and asserts the pick order spills to the least-loaded replica
// while every member still appears exactly once (failover order).
func TestRingPickBoundedSpillover(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"w1", "w2", "w3"} {
		r.Add(m)
	}
	const key = "hot-fn"
	owner, _ := r.Pick(key)

	// Unloaded: bounded pick preserves plain ring order.
	idle := r.PickBounded(key, 1.25, func(string) int { return 0 })
	if len(idle) != 3 || idle[0] != owner {
		t.Fatalf("idle PickBounded = %v, owner %q", idle, owner)
	}

	// Overload the owner: total 12 over 3 members, bound ceil(1.25*13/3)=6.
	loads := map[string]int{owner: 12}
	picked := r.PickBounded(key, 1.25, func(m string) int { return loads[m] })
	if len(picked) != 3 {
		t.Fatalf("PickBounded = %v, want 3 members", picked)
	}
	if picked[0] == owner {
		t.Fatalf("overloaded owner %q still picked first: %v", owner, picked)
	}
	if picked[len(picked)-1] != owner {
		t.Fatalf("overloaded owner should spill to the back: %v", picked)
	}
	seen := make(map[string]bool)
	for _, m := range picked {
		if seen[m] {
			t.Fatalf("PickBounded repeats %q: %v", m, picked)
		}
		seen[m] = true
	}

	// Two members over the bound: the idle one leads, the overloaded pair
	// spills in ascending-load order. Bound = ceil(1 * 191 / 3) = 64.
	loads = map[string]int{"w1": 100, "w2": 90, "w3": 0}
	picked = r.PickBounded(key, 1, func(m string) int { return loads[m] })
	if picked[0] != "w3" || picked[1] != "w2" || picked[2] != "w1" {
		t.Fatalf("spillover order = %v, want [w3 w2 w1] (idle, then ascending load)", picked)
	}
}

// TestRingDistribution sanity-checks vnode spread: with 64 vnodes no
// member of a 3-worker ring should own a wildly disproportionate share.
func TestRingDistribution(t *testing.T) {
	r := NewRing(DefaultVNodes)
	for _, m := range []string{"w1", "w2", "w3"} {
		r.Add(m)
	}
	counts := make(map[string]int)
	keys := testKeys(3000)
	for _, k := range keys {
		m, _ := r.Pick(k)
		counts[m]++
	}
	for m, c := range counts {
		share := float64(c) / float64(len(keys))
		if share < 0.10 || share > 0.60 {
			t.Errorf("member %s owns %.0f%% of keys; spread is broken: %v", m, share*100, counts)
		}
	}
}
