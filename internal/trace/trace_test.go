package trace

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"faasbatch/internal/workload"
)

func TestSynthesizeBurstBasics(t *testing.T) {
	cfg := DefaultBurstConfig(workload.CPUIntensive)
	tr, err := SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	if tr.Len() != 800 {
		t.Fatalf("Len = %d, want 800", tr.Len())
	}
	if tr.Span != time.Minute {
		t.Fatalf("Span = %v, want 1m", tr.Span)
	}
	if !sort.SliceIsSorted(tr.Invocations, func(i, j int) bool {
		return tr.Invocations[i].Offset < tr.Invocations[j].Offset
	}) {
		t.Fatal("invocations not sorted by offset")
	}
	for _, inv := range tr.Invocations {
		if inv.Offset < 0 || inv.Offset >= tr.Span {
			t.Fatalf("offset %v outside [0, %v)", inv.Offset, tr.Span)
		}
		if inv.FibN < workload.MinFibN || inv.FibN > workload.MaxFibN {
			t.Fatalf("FibN %d out of range", inv.FibN)
		}
		if !strings.HasPrefix(inv.Fn, "fib") {
			t.Fatalf("cpu invocation fn = %q", inv.Fn)
		}
	}
}

func TestSynthesizeBurstIOKind(t *testing.T) {
	cfg := DefaultBurstConfig(workload.IO)
	tr, err := SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	for _, inv := range tr.Invocations {
		if inv.Fn != "s3func" || inv.FibN != 0 {
			t.Fatalf("io invocation = %+v", inv)
		}
	}
}

func TestSynthesizeBurstIsBursty(t *testing.T) {
	tr, err := SynthesizeBurst(DefaultBurstConfig(workload.CPUIntensive))
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	counts := tr.PerSecondCounts()
	if len(counts) != 60 {
		t.Fatalf("PerSecondCounts len = %d, want 60", len(counts))
	}
	total, peak := 0, 0
	for _, c := range counts {
		total += c
		if c > peak {
			peak = c
		}
	}
	if total != 800 {
		t.Fatalf("per-second counts sum to %d, want 800", total)
	}
	mean := float64(total) / float64(len(counts))
	// Bursty: the peak second must be well above the mean rate.
	if float64(peak) < 2.5*mean {
		t.Fatalf("peak %d not bursty relative to mean %.1f", peak, mean)
	}
}

func TestSynthesizeBurstDeterminism(t *testing.T) {
	cfg := DefaultBurstConfig(workload.CPUIntensive)
	a, err := SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	b, err := SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	for i := range a.Invocations {
		if a.Invocations[i] != b.Invocations[i] {
			t.Fatalf("traces diverged at %d", i)
		}
	}
}

func TestSynthesizeBurstValidation(t *testing.T) {
	cfg := DefaultBurstConfig(workload.CPUIntensive)
	cfg.N = 0
	if _, err := SynthesizeBurst(cfg); err == nil {
		t.Error("N=0 accepted, want error")
	}
	cfg = DefaultBurstConfig(workload.CPUIntensive)
	cfg.Span = 0
	if _, err := SynthesizeBurst(cfg); err == nil {
		t.Error("Span=0 accepted, want error")
	}
	cfg = DefaultBurstConfig(workload.CPUIntensive)
	cfg.BurstFraction = 1.5
	if _, err := SynthesizeBurst(cfg); err == nil {
		t.Error("BurstFraction=1.5 accepted, want error")
	}
}

func TestHead(t *testing.T) {
	tr, err := SynthesizeBurst(DefaultBurstConfig(workload.IO))
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	h := tr.Head(400)
	if h.Len() != 400 {
		t.Fatalf("Head(400).Len = %d", h.Len())
	}
	for i := range h.Invocations {
		if h.Invocations[i] != tr.Invocations[i] {
			t.Fatalf("Head changed invocation %d", i)
		}
	}
	if h.Span != h.Invocations[399].Offset {
		t.Fatalf("Head span = %v, want last offset %v", h.Span, h.Invocations[399].Offset)
	}
	// Head larger than the trace is the whole trace.
	if got := tr.Head(10_000).Len(); got != 800 {
		t.Fatalf("Head(10000).Len = %d, want 800", got)
	}
	// Head must be a copy.
	h.Invocations[0].Fn = "mutated"
	if tr.Invocations[0].Fn == "mutated" {
		t.Fatal("Head shares backing array with original")
	}
}

func TestFunctions(t *testing.T) {
	tr := Trace{Invocations: []Invocation{{Fn: "b"}, {Fn: "a"}, {Fn: "b"}}}
	got := tr.Functions()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Functions = %v, want [a b]", got)
	}
}

func TestSynthesizeDaily(t *testing.T) {
	cfg := DefaultDailyConfig()
	tr, err := SynthesizeDaily(cfg)
	if err != nil {
		t.Fatalf("SynthesizeDaily: %v", err)
	}
	fns := tr.Functions()
	if len(fns) != 3 {
		t.Fatalf("Functions = %v, want 3 hot functions", fns)
	}
	for _, fn := range fns {
		counts := MinuteCounts(tr, fn)
		if len(counts) != 1440 {
			t.Fatalf("MinuteCounts len = %d, want 1440", len(counts))
		}
		total, peak, active := 0, 0, 0
		for _, c := range counts {
			total += c
			if c > peak {
				peak = c
			}
			if c > 0 {
				active++
			}
		}
		if total < 1000 {
			t.Errorf("%s invoked %d times, want >= 1000 (hot function)", fn, total)
		}
		// Tight temporal locality: the activity is concentrated, not
		// uniform across the day.
		if active > 1200 {
			t.Errorf("%s active in %d/1440 minutes; pattern not bursty", fn, active)
		}
		if float64(peak) < 3*float64(total)/1440 {
			t.Errorf("%s peak %d not bursty vs mean %.2f/min", fn, peak, float64(total)/1440)
		}
	}
}

func TestSynthesizeDailyValidation(t *testing.T) {
	if _, err := SynthesizeDaily(DailyConfig{Functions: 0}); err == nil {
		t.Error("Functions=0 accepted, want error")
	}
	if _, err := SynthesizeDaily(DailyConfig{Functions: 1, MinPerFn: -1}); err == nil {
		t.Error("MinPerFn=-1 accepted, want error")
	}
}

func TestBlobIaTDistributionMatchesFig3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 100_000
	within100ms, within1s := 0, 0
	for i := 0; i < n; i++ {
		iat := SampleBlobIaT(rng)
		if iat < 0 {
			t.Fatal("negative IaT")
		}
		if iat < 100*time.Millisecond {
			within100ms++
		}
		if iat < time.Second {
			within1s++
		}
	}
	f100 := float64(within100ms) / n
	f1s := float64(within1s) / n
	// Fig. 3: nearly 80% within 100 ms; ~90% within 1 s.
	if f100 < 0.76 || f100 > 0.84 {
		t.Errorf("fraction within 100ms = %.3f, want ~0.80", f100)
	}
	if f1s < 0.86 || f1s > 0.94 {
		t.Errorf("fraction within 1s = %.3f, want ~0.90", f1s)
	}
}

func TestGenerateBlobDays(t *testing.T) {
	days, err := GenerateBlobDays(1, 14, 1000)
	if err != nil {
		t.Fatalf("GenerateBlobDays: %v", err)
	}
	if len(days) != 14 {
		t.Fatalf("got %d days, want 14", len(days))
	}
	for i, d := range days {
		if d.Day != i+1 {
			t.Fatalf("day %d numbered %d", i, d.Day)
		}
		if len(d.IaTs) != 1000 {
			t.Fatalf("day %d has %d IaTs, want 1000", d.Day, len(d.IaTs))
		}
	}
	merged := MergeBlobDays(days)
	if len(merged) != 14_000 {
		t.Fatalf("merged %d IaTs, want 14000", len(merged))
	}
	// Days differ (different sub-seeds).
	same := true
	for i := range days[0].IaTs {
		if days[0].IaTs[i] != days[1].IaTs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("day 1 and day 2 are identical")
	}
}

func TestGenerateBlobDaysValidation(t *testing.T) {
	if _, err := GenerateBlobDays(1, 0, 10); err == nil {
		t.Error("days=0 accepted, want error")
	}
	if _, err := GenerateBlobDays(1, 1, 0); err == nil {
		t.Error("perDay=0 accepted, want error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := SynthesizeBurst(DefaultBurstConfig(workload.CPUIntensive))
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, tr.Name)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip len = %d, want %d", back.Len(), tr.Len())
	}
	for i := range tr.Invocations {
		a, b := tr.Invocations[i], back.Invocations[i]
		// Offsets are stored at microsecond precision.
		if a.Offset.Truncate(time.Microsecond) != b.Offset || a.Fn != b.Fn || a.FibN != b.FibN {
			t.Fatalf("row %d: %+v != %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Error("empty csv accepted, want error")
	}
	if _, err := ReadCSV(strings.NewReader("bad,header,here\n"), "x"); err == nil {
		t.Error("bad header accepted, want error")
	}
	if _, err := ReadCSV(strings.NewReader("offset_us,fn,fib_n\nnotanumber,f,0\n"), "x"); err == nil {
		t.Error("bad offset accepted, want error")
	}
	if _, err := ReadCSV(strings.NewReader("offset_us,fn,fib_n\n10,f,notanumber\n"), "x"); err == nil {
		t.Error("bad fib_n accepted, want error")
	}
}

// Property: any valid burst config yields exactly N sorted in-span
// invocations.
func TestPropertyBurstWellFormed(t *testing.T) {
	f := func(seed int64, nRaw uint16, fracRaw uint8) bool {
		cfg := DefaultBurstConfig(workload.CPUIntensive)
		cfg.Seed = seed
		cfg.N = int(nRaw%2000) + 1
		cfg.BurstFraction = float64(fracRaw%101) / 100
		tr, err := SynthesizeBurst(cfg)
		if err != nil {
			return false
		}
		if tr.Len() != cfg.N {
			return false
		}
		prev := time.Duration(-1)
		for _, inv := range tr.Invocations {
			if inv.Offset < prev || inv.Offset >= cfg.Span {
				return false
			}
			prev = inv.Offset
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPerSecondCountsEmptyTrace(t *testing.T) {
	counts := Trace{}.PerSecondCounts()
	if len(counts) != 1 || counts[0] != 0 {
		t.Fatalf("empty trace counts = %v", counts)
	}
}

func TestSynthesizeSteady(t *testing.T) {
	cfg := DefaultBurstConfig(workload.CPUIntensive)
	cfg.N = 600
	tr, err := SynthesizeSteady(cfg)
	if err != nil {
		t.Fatalf("SynthesizeSteady: %v", err)
	}
	if tr.Len() != 600 {
		t.Fatalf("Len = %d", tr.Len())
	}
	counts := tr.PerSecondCounts()
	peak, total := 0, 0
	for _, c := range counts {
		total += c
		if c > peak {
			peak = c
		}
	}
	mean := float64(total) / float64(len(counts))
	// Poisson arrivals: the peak second stays close to the mean rate,
	// unlike the bursty generator.
	if float64(peak) > 3*mean {
		t.Fatalf("steady trace peak %d vs mean %.1f looks bursty", peak, mean)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Invocations[i].Offset < tr.Invocations[i-1].Offset {
			t.Fatal("not sorted")
		}
	}
}

func TestSynthesizeSteadyIOAndValidation(t *testing.T) {
	cfg := DefaultBurstConfig(workload.IO)
	cfg.N = 10
	tr, err := SynthesizeSteady(cfg)
	if err != nil {
		t.Fatalf("SynthesizeSteady: %v", err)
	}
	for _, inv := range tr.Invocations {
		if inv.Fn != "s3func" || inv.FibN != 0 {
			t.Fatalf("io invocation = %+v", inv)
		}
	}
	cfg.N = 0
	if _, err := SynthesizeSteady(cfg); err == nil {
		t.Error("N=0 accepted")
	}
	cfg.N = 10
	cfg.Span = 0
	if _, err := SynthesizeSteady(cfg); err == nil {
		t.Error("zero span accepted")
	}
}
