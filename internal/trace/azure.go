package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"faasbatch/internal/workload"
)

// minutesPerDay is the column count of the Azure per-minute schema.
const minutesPerDay = 1440

// AzureFunctionRow is one row of the public Azure Functions 2019 trace
// ("invocations_per_function_md.anon.dXX.csv"): a function identified by
// hashed owner/app/function with its per-minute invocation counts over
// one day.
type AzureFunctionRow struct {
	// Owner, App and Function are the dataset's anonymised hashes.
	Owner, App, Function string
	// Trigger is the invocation trigger type (http, queue, timer, ...).
	Trigger string
	// PerMinute holds the 1440 per-minute invocation counts.
	PerMinute []int
}

// Total reports the row's invocations over the day.
func (r AzureFunctionRow) Total() int {
	n := 0
	for _, c := range r.PerMinute {
		n += c
	}
	return n
}

// ReadAzureInvocationsCSV parses the Azure Functions per-minute
// invocation schema: a header row
// "HashOwner,HashApp,HashFunction,Trigger,1,...,1440" followed by one row
// per function.
func ReadAzureInvocationsCSV(r io.Reader) ([]AzureFunctionRow, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read azure header: %w", err)
	}
	if len(header) != 4+minutesPerDay {
		return nil, fmt.Errorf("trace: azure header has %d columns, want %d", len(header), 4+minutesPerDay)
	}
	if header[0] != "HashOwner" || header[1] != "HashApp" || header[2] != "HashFunction" {
		return nil, fmt.Errorf("trace: unexpected azure header %v", header[:4])
	}
	var rows []AzureFunctionRow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read azure row %d: %w", line, err)
		}
		row := AzureFunctionRow{
			Owner:     rec[0],
			App:       rec[1],
			Function:  rec[2],
			Trigger:   rec[3],
			PerMinute: make([]int, minutesPerDay),
		}
		for m := 0; m < minutesPerDay; m++ {
			v, err := strconv.Atoi(rec[4+m])
			if err != nil {
				return nil, fmt.Errorf("trace: azure row %d minute %d: %w", line, m+1, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: azure row %d minute %d: negative count %d", line, m+1, v)
			}
			row.PerMinute[m] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAzureInvocationsCSV writes rows in the Azure per-minute schema.
func WriteAzureInvocationsCSV(w io.Writer, rows []AzureFunctionRow) error {
	cw := csv.NewWriter(w)
	header := make([]string, 4+minutesPerDay)
	header[0], header[1], header[2], header[3] = "HashOwner", "HashApp", "HashFunction", "Trigger"
	for m := 0; m < minutesPerDay; m++ {
		header[4+m] = strconv.Itoa(m + 1)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write azure header: %w", err)
	}
	rec := make([]string, 4+minutesPerDay)
	for i, row := range rows {
		if len(row.PerMinute) != minutesPerDay {
			return fmt.Errorf("trace: azure row %d has %d minutes, want %d", i, len(row.PerMinute), minutesPerDay)
		}
		rec[0], rec[1], rec[2], rec[3] = row.Owner, row.App, row.Function, row.Trigger
		for m, c := range row.PerMinute {
			rec[4+m] = strconv.Itoa(c)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write azure row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush azure csv: %w", err)
	}
	return nil
}

// AzureReplayOptions selects a replay window from Azure rows.
type AzureReplayOptions struct {
	// StartMinute is the window's first minute of the day (0-based; the
	// paper replays 22:10 = minute 1330).
	StartMinute int
	// Minutes is the window length (the paper replays 1 minute).
	Minutes int
	// Seed drives intra-minute arrival placement and fib-N assignment.
	Seed int64
	// Kind maps invocations to a workload family. CPUIntensive assigns
	// fib N values following the Fig. 9 distribution; IO produces
	// storage-client invocations.
	Kind workload.Kind
	// MinTotal drops functions with fewer invocations over the day
	// (0 keeps all).
	MinTotal int
}

// DefaultAzureReplayOptions mirrors the paper's replay slice: one minute
// starting at 22:10.
func DefaultAzureReplayOptions() AzureReplayOptions {
	return AzureReplayOptions{
		StartMinute: 22*60 + 10,
		Minutes:     1,
		Seed:        13,
		Kind:        workload.CPUIntensive,
	}
}

// FromAzureRows converts a window of Azure per-minute counts into a
// replayable trace: each counted invocation lands at a uniformly random
// offset inside its minute, functions keep their dataset identity.
func FromAzureRows(rows []AzureFunctionRow, opts AzureReplayOptions) (Trace, error) {
	if opts.StartMinute < 0 || opts.StartMinute >= minutesPerDay {
		return Trace{}, fmt.Errorf("trace: start minute %d out of range [0, %d)", opts.StartMinute, minutesPerDay)
	}
	if opts.Minutes <= 0 || opts.StartMinute+opts.Minutes > minutesPerDay {
		return Trace{}, fmt.Errorf("trace: window [%d, %d) exceeds the day", opts.StartMinute, opts.StartMinute+opts.Minutes)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	gen := workload.NewGenerator(opts.Seed + 1)
	tr := Trace{
		Name: fmt.Sprintf("azure-replay-m%d+%d", opts.StartMinute, opts.Minutes),
		Span: time.Duration(opts.Minutes) * time.Minute,
	}
	for _, row := range rows {
		if len(row.PerMinute) != minutesPerDay {
			return Trace{}, fmt.Errorf("trace: function %s has %d minutes, want %d", row.Function, len(row.PerMinute), minutesPerDay)
		}
		if opts.MinTotal > 0 && row.Total() < opts.MinTotal {
			continue
		}
		for m := 0; m < opts.Minutes; m++ {
			count := row.PerMinute[opts.StartMinute+m]
			for i := 0; i < count; i++ {
				off := time.Duration(m)*time.Minute + time.Duration(rng.Float64()*float64(time.Minute))
				inv := Invocation{Offset: off, Fn: row.Function}
				if opts.Kind == workload.CPUIntensive {
					inv.FibN = gen.SampleFibN()
				}
				tr.Invocations = append(tr.Invocations, inv)
			}
		}
	}
	sort.Slice(tr.Invocations, func(i, j int) bool { return tr.Invocations[i].Offset < tr.Invocations[j].Offset })
	return tr, nil
}
