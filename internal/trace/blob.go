package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Blob inter-arrival-time mixture, calibrated to Fig. 3: nearly 80% of
// repeatedly accessed blobs are re-accessed within 100 ms, ~10% between
// 100 ms and 1 s, and the remainder over a long tail.
const (
	blobBurstWeight  = 0.80
	blobMediumWeight = 0.10
	// The tail takes the remaining mass.

	blobBurstMean = 35 * time.Millisecond
)

// SampleBlobIaT draws one blob re-access inter-arrival time from the
// Fig. 3 mixture using the provided random source.
func SampleBlobIaT(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	switch {
	case u < blobBurstWeight:
		// Bursty re-access: exponential with a sub-100ms mean.
		d := time.Duration(rng.ExpFloat64() * float64(blobBurstMean))
		if d >= 100*time.Millisecond {
			d = 99 * time.Millisecond
		}
		return d
	case u < blobBurstWeight+blobMediumWeight:
		// Log-uniform over [100 ms, 1 s).
		return logUniform(rng, 100*time.Millisecond, time.Second)
	default:
		// Long tail: log-uniform over [1 s, 1000 s).
		return logUniform(rng, time.Second, 1000*time.Second)
	}
}

// logUniform draws a duration log-uniformly from [lo, hi).
func logUniform(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	ll, lh := math.Log(float64(lo)), math.Log(float64(hi))
	return time.Duration(math.Exp(ll + rng.Float64()*(lh-ll)))
}

// BlobDay is one synthetic day of blob re-access inter-arrival times.
type BlobDay struct {
	// Day is 1-based (the Azure Blob trace spans 14 days).
	Day int
	// IaTs are the sampled inter-arrival times.
	IaTs []time.Duration
}

// GenerateBlobDays synthesises the 14-day blob trace reduction: one IaT
// sample set per day, deterministically derived from seed. perDay is the
// number of re-access gaps per day.
func GenerateBlobDays(seed int64, days, perDay int) ([]BlobDay, error) {
	if days <= 0 || perDay <= 0 {
		return nil, fmt.Errorf("trace: blob days and per-day count must be positive, got %d, %d", days, perDay)
	}
	out := make([]BlobDay, days)
	for d := 0; d < days; d++ {
		rng := rand.New(rand.NewSource(seed + int64(d)))
		day := BlobDay{Day: d + 1, IaTs: make([]time.Duration, perDay)}
		for i := range day.IaTs {
			day.IaTs[i] = SampleBlobIaT(rng)
		}
		out[d] = day
	}
	return out, nil
}

// MergeBlobDays concatenates all days' IaTs (the consolidated blue curve
// of Fig. 3).
func MergeBlobDays(days []BlobDay) []time.Duration {
	var all []time.Duration
	for _, d := range days {
		all = append(all, d.IaTs...)
	}
	return all
}
