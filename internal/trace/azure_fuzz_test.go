package trace

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// azureCSVSample builds a well-formed Azure per-minute CSV with the given
// data rows appended under the canonical 1444-column header.
func azureCSVSample(rows ...string) string {
	var b strings.Builder
	b.WriteString("HashOwner,HashApp,HashFunction,Trigger")
	for m := 1; m <= minutesPerDay; m++ {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(m))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}

// azureDataRow builds one data row with count c in every minute column.
func azureDataRow(owner, app, fn, trigger string, c int) string {
	var b strings.Builder
	b.WriteString(owner + "," + app + "," + fn + "," + trigger)
	for m := 0; m < minutesPerDay; m++ {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// FuzzReadAzureInvocationsCSV asserts the Azure trace reader is total:
// arbitrary input either parses or returns an error — it never panics —
// and successfully parsed rows survive a write/re-read round trip.
func FuzzReadAzureInvocationsCSV(f *testing.F) {
	f.Add([]byte(azureCSVSample()))
	f.Add([]byte(azureCSVSample(azureDataRow("o1", "a1", "f1", "http", 2))))
	f.Add([]byte(azureCSVSample(
		azureDataRow("o1", "a1", "f1", "http", 0),
		azureDataRow("o2", "a2", "f2", "queue", 7))))
	f.Add([]byte(""))
	f.Add([]byte("HashOwner,HashApp,HashFunction,Trigger,1,2\n"))
	f.Add([]byte("a,b\nc\n"))
	f.Add([]byte("\"unclosed quote"))
	f.Add([]byte(azureCSVSample(azureDataRow("o", "a", "f", "timer", -1))))
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := ReadAzureInvocationsCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range rows {
			if len(r.PerMinute) != minutesPerDay {
				t.Fatalf("row %d parsed with %d minutes", i, len(r.PerMinute))
			}
			for m, c := range r.PerMinute {
				if c < 0 {
					t.Fatalf("row %d minute %d parsed negative count %d", i, m, c)
				}
			}
		}
		// Round trip: what we write we must read back identically.
		var buf bytes.Buffer
		if err := WriteAzureInvocationsCSV(&buf, rows); err != nil {
			t.Fatalf("write parsed rows: %v", err)
		}
		again, err := ReadAzureInvocationsCSV(&buf)
		if err != nil {
			t.Fatalf("re-read written rows: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("round trip changed row count: %d -> %d", len(rows), len(again))
		}
		for i := range rows {
			if rows[i].Owner != again[i].Owner || rows[i].App != again[i].App ||
				rows[i].Function != again[i].Function || rows[i].Trigger != again[i].Trigger {
				t.Fatalf("round trip changed row %d identity", i)
			}
			for m := range rows[i].PerMinute {
				if rows[i].PerMinute[m] != again[i].PerMinute[m] {
					t.Fatalf("round trip changed row %d minute %d", i, m)
				}
			}
		}
	})
}
