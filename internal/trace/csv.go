package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column layout used by WriteCSV/ReadCSV.
var csvHeader = []string{"offset_us", "fn", "fib_n"}

// WriteCSV writes the trace in a three-column CSV format
// (offset_us, fn, fib_n) suitable for inspection and replay.
func WriteCSV(w io.Writer, t Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	for _, inv := range t.Invocations {
		rec := []string{
			strconv.FormatInt(inv.Offset.Microseconds(), 10),
			inv.Fn,
			strconv.Itoa(inv.FibN),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV. The trace name must be
// supplied by the caller; Span is inferred from the last offset.
func ReadCSV(r io.Reader, name string) (Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return Trace{}, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return Trace{}, fmt.Errorf("trace: csv is empty")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != csvHeader[0] {
		return Trace{}, fmt.Errorf("trace: unexpected csv header %v", rows[0])
	}
	tr := Trace{Name: name}
	for i, row := range rows[1:] {
		us, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: row %d offset: %w", i+1, err)
		}
		fibN, err := strconv.Atoi(row[2])
		if err != nil {
			return Trace{}, fmt.Errorf("trace: row %d fib_n: %w", i+1, err)
		}
		inv := Invocation{
			Offset: time.Duration(us) * time.Microsecond,
			Fn:     row[1],
			FibN:   fibN,
		}
		if inv.Offset > tr.Span {
			tr.Span = inv.Offset
		}
		tr.Invocations = append(tr.Invocations, inv)
	}
	return tr, nil
}
