// Package trace synthesises the Azure-derived workloads of the evaluation.
//
// The paper reduces the Azure Functions trace to two published artefacts —
// the Fig. 9 duration distribution and the Fig. 10 replay slice (800
// invocations within one minute of day 13) — and the Azure Blob trace to
// the Fig. 3 inter-arrival-time CDF. This package generates all three with
// deterministic seeding, plus the Fig. 2 day-long invocation patterns of
// hot functions, and round-trips traces through CSV for inspection with
// cmd/tracegen.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"faasbatch/internal/workload"
)

// Invocation is one function request in a trace.
type Invocation struct {
	// Offset is the arrival time relative to the trace start.
	Offset time.Duration
	// Fn is the function identity used for grouping.
	Fn string
	// FibN is the Fibonacci input for CPU-intensive invocations
	// (0 for I/O invocations).
	FibN int
}

// Trace is a time-ordered sequence of invocations.
type Trace struct {
	// Name labels the trace in output.
	Name string
	// Span is the covered time window.
	Span time.Duration
	// Invocations are sorted by Offset.
	Invocations []Invocation
}

// Len reports the number of invocations.
func (t Trace) Len() int { return len(t.Invocations) }

// Head returns a copy of the trace truncated to the first n invocations
// (the paper evaluates I/O functions on the first 400 of the 800).
func (t Trace) Head(n int) Trace {
	if n > len(t.Invocations) {
		n = len(t.Invocations)
	}
	out := Trace{Name: t.Name, Span: t.Span}
	out.Invocations = make([]Invocation, n)
	copy(out.Invocations, t.Invocations[:n])
	if n > 0 {
		out.Span = out.Invocations[n-1].Offset
	}
	return out
}

// PerSecondCounts bins arrivals per second, the Fig. 10 rendering.
func (t Trace) PerSecondCounts() []int {
	secs := int(math.Ceil(t.Span.Seconds()))
	if secs < 1 {
		secs = 1
	}
	counts := make([]int, secs)
	for _, inv := range t.Invocations {
		i := int(inv.Offset.Seconds())
		if i >= len(counts) {
			i = len(counts) - 1
		}
		counts[i]++
	}
	return counts
}

// Functions reports the distinct function names, sorted.
func (t Trace) Functions() []string {
	set := map[string]bool{}
	for _, inv := range t.Invocations {
		set[inv.Fn] = true
	}
	out := make([]string, 0, len(set))
	for fn := range set {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// BurstConfig parameterises SynthesizeBurst.
type BurstConfig struct {
	// Seed drives deterministic generation.
	Seed int64
	// N is the number of invocations (the paper replays 800).
	N int
	// Span is the window length (the paper replays one minute).
	Span time.Duration
	// Kind selects the workload family.
	Kind workload.Kind
	// IOName is the function name used when Kind is IO.
	IOName string
	// BurstFraction is the share of invocations arriving in bursts
	// (the rest are background Poisson arrivals).
	BurstFraction float64
	// MeanBurstSize is the mean invocations per burst cluster.
	MeanBurstSize int
	// IntraBurstIaT is the mean gap between invocations inside a burst.
	IntraBurstIaT time.Duration
}

// DefaultBurstConfig returns the paper's replay parameters (Fig. 10):
// 800 invocations within one minute, dominated by bursts.
func DefaultBurstConfig(kind workload.Kind) BurstConfig {
	return BurstConfig{
		Seed:          13, // Azure day 13
		N:             800,
		Span:          time.Minute,
		Kind:          kind,
		IOName:        "s3func",
		BurstFraction: 0.95,
		MeanBurstSize: 80,
		IntraBurstIaT: 8 * time.Millisecond,
	}
}

// SynthesizeBurst generates a bursty one-window trace reproducing the
// Fig. 10 invocation pattern: most arrivals cluster into spikes with tight
// temporal locality, over a low-rate Poisson background.
func SynthesizeBurst(cfg BurstConfig) (Trace, error) {
	if cfg.N <= 0 {
		return Trace{}, fmt.Errorf("trace: burst N must be positive, got %d", cfg.N)
	}
	if cfg.Span <= 0 {
		return Trace{}, fmt.Errorf("trace: burst span must be positive, got %v", cfg.Span)
	}
	if cfg.BurstFraction < 0 || cfg.BurstFraction > 1 {
		return Trace{}, fmt.Errorf("trace: burst fraction must be in [0, 1], got %v", cfg.BurstFraction)
	}
	if cfg.MeanBurstSize <= 0 {
		cfg.MeanBurstSize = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := workload.NewGenerator(cfg.Seed + 1)

	offsets := make([]time.Duration, 0, cfg.N)
	burstN := int(float64(cfg.N) * cfg.BurstFraction)
	for len(offsets) < burstN {
		center := time.Duration(rng.Float64() * float64(cfg.Span))
		size := 1 + rng.Intn(2*cfg.MeanBurstSize) // mean ~= MeanBurstSize
		at := center
		for i := 0; i < size && len(offsets) < burstN; i++ {
			at += time.Duration(rng.ExpFloat64() * float64(cfg.IntraBurstIaT))
			if at >= cfg.Span {
				break
			}
			offsets = append(offsets, at)
		}
	}
	for len(offsets) < cfg.N {
		offsets = append(offsets, time.Duration(rng.Float64()*float64(cfg.Span)))
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	tr := Trace{Name: fmt.Sprintf("azure-burst-%s", cfg.Kind), Span: cfg.Span}
	tr.Invocations = make([]Invocation, cfg.N)
	for i, off := range offsets {
		inv := Invocation{Offset: off}
		switch cfg.Kind {
		case workload.IO:
			inv.Fn = cfg.IOName
		default:
			// One deployed function ("fib") invoked with varying N, as in
			// the paper's benchmark — the Invoke Mapper groups by function
			// identity, not by input.
			inv.Fn = "fib"
			inv.FibN = gen.SampleFibN()
		}
		tr.Invocations[i] = inv
	}
	return tr, nil
}

// SynthesizeSteady generates a Poisson arrival stream (no bursts) with
// the same invocation count and span as a burst config — the control
// workload for the burstiness ablation: FaaSBatch's batching edge depends
// on temporal locality, so steady low-rate arrivals shrink it.
func SynthesizeSteady(cfg BurstConfig) (Trace, error) {
	if cfg.N <= 0 {
		return Trace{}, fmt.Errorf("trace: steady N must be positive, got %d", cfg.N)
	}
	if cfg.Span <= 0 {
		return Trace{}, fmt.Errorf("trace: steady span must be positive, got %v", cfg.Span)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := workload.NewGenerator(cfg.Seed + 1)
	offsets := make([]time.Duration, cfg.N)
	for i := range offsets {
		offsets[i] = time.Duration(rng.Float64() * float64(cfg.Span))
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	tr := Trace{Name: fmt.Sprintf("steady-%s", cfg.Kind), Span: cfg.Span}
	tr.Invocations = make([]Invocation, cfg.N)
	for i, off := range offsets {
		inv := Invocation{Offset: off}
		switch cfg.Kind {
		case workload.IO:
			inv.Fn = cfg.IOName
		default:
			inv.Fn = "fib"
			inv.FibN = gen.SampleFibN()
		}
		tr.Invocations[i] = inv
	}
	return tr, nil
}

// DailyConfig parameterises SynthesizeDaily.
type DailyConfig struct {
	// Seed drives deterministic generation.
	Seed int64
	// Functions is the number of hot functions (the paper plots three).
	Functions int
	// MinPerFn is the minimum invocations per function over the day
	// (the paper selects functions invoked more than 1000 times).
	MinPerFn int
}

// DefaultDailyConfig returns the Fig. 2 parameters.
func DefaultDailyConfig() DailyConfig {
	return DailyConfig{Seed: 2, Functions: 3, MinPerFn: 1000}
}

// SynthesizeDaily generates day-long invocation patterns for hot functions
// (Fig. 2): bursty activity windows with tight temporal locality over a
// sparse background.
func SynthesizeDaily(cfg DailyConfig) (Trace, error) {
	if cfg.Functions <= 0 {
		return Trace{}, fmt.Errorf("trace: daily functions must be positive, got %d", cfg.Functions)
	}
	if cfg.MinPerFn < 0 {
		return Trace{}, fmt.Errorf("trace: daily min-per-fn must be non-negative, got %d", cfg.MinPerFn)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	day := 24 * time.Hour
	tr := Trace{Name: "azure-daily", Span: day}
	for f := 0; f < cfg.Functions; f++ {
		fn := fmt.Sprintf("hot%c", 'A'+f%26)
		var offsets []time.Duration
		// Bursty on-periods: a handful of active windows with high rate.
		windows := 4 + rng.Intn(8)
		for w := 0; w < windows; w++ {
			start := time.Duration(rng.Float64() * float64(day))
			dur := time.Duration((5 + rng.Float64()*40) * float64(time.Minute))
			rate := 2 + rng.Float64()*18 // invocations per minute
			n := int(dur.Minutes() * rate)
			for i := 0; i < n; i++ {
				at := start + time.Duration(rng.Float64()*float64(dur))
				if at < day {
					offsets = append(offsets, at)
				}
			}
		}
		// Sparse background so the function is never fully silent.
		for i := 0; i < 48; i++ {
			offsets = append(offsets, time.Duration(rng.Float64()*float64(day)))
		}
		// Top up to the hotness threshold.
		for len(offsets) < cfg.MinPerFn {
			start := time.Duration(rng.Float64() * float64(day))
			for i := 0; i < 50 && len(offsets) < cfg.MinPerFn; i++ {
				at := start + time.Duration(rng.ExpFloat64()*float64(2*time.Second))
				if at < day {
					offsets = append(offsets, at)
				}
			}
		}
		for _, off := range offsets {
			tr.Invocations = append(tr.Invocations, Invocation{Offset: off, Fn: fn})
		}
	}
	sort.Slice(tr.Invocations, func(i, j int) bool { return tr.Invocations[i].Offset < tr.Invocations[j].Offset })
	return tr, nil
}

// MinuteCounts bins one function's arrivals into the 1440 minutes of a
// day (the Fig. 2 rendering).
func MinuteCounts(t Trace, fn string) []int {
	counts := make([]int, 24*60)
	for _, inv := range t.Invocations {
		if inv.Fn != fn {
			continue
		}
		i := int(inv.Offset.Minutes())
		if i >= len(counts) {
			i = len(counts) - 1
		}
		counts[i]++
	}
	return counts
}
