package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"faasbatch/internal/workload"
)

// azureRows builds a small synthetic dataset in the Azure schema.
func azureRows() []AzureFunctionRow {
	mk := func(fn, trigger string, bursts map[int]int) AzureFunctionRow {
		row := AzureFunctionRow{
			Owner:     "owner1",
			App:       "app1",
			Function:  fn,
			Trigger:   trigger,
			PerMinute: make([]int, 1440),
		}
		for m, c := range bursts {
			row.PerMinute[m] = c
		}
		return row
	}
	return []AzureFunctionRow{
		mk("fnA", "http", map[int]int{1330: 300, 1331: 100, 600: 5}),
		mk("fnB", "queue", map[int]int{1330: 500, 700: 2}),
		mk("fnC", "timer", map[int]int{0: 1}), // cold function
	}
}

func TestAzureCSVRoundTrip(t *testing.T) {
	rows := azureRows()
	var buf bytes.Buffer
	if err := WriteAzureInvocationsCSV(&buf, rows); err != nil {
		t.Fatalf("WriteAzureInvocationsCSV: %v", err)
	}
	back, err := ReadAzureInvocationsCSV(&buf)
	if err != nil {
		t.Fatalf("ReadAzureInvocationsCSV: %v", err)
	}
	if len(back) != len(rows) {
		t.Fatalf("round trip rows = %d, want %d", len(back), len(rows))
	}
	for i := range rows {
		if back[i].Function != rows[i].Function || back[i].Trigger != rows[i].Trigger {
			t.Fatalf("row %d metadata mismatch: %+v", i, back[i])
		}
		if back[i].Total() != rows[i].Total() {
			t.Fatalf("row %d total = %d, want %d", i, back[i].Total(), rows[i].Total())
		}
	}
}

func TestAzureRowTotal(t *testing.T) {
	rows := azureRows()
	if got := rows[0].Total(); got != 405 {
		t.Fatalf("Total = %d, want 405", got)
	}
}

func TestReadAzureInvocationsCSVErrors(t *testing.T) {
	if _, err := ReadAzureInvocationsCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadAzureInvocationsCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("short header accepted")
	}
	// Right width, wrong names.
	cols := make([]string, 1444)
	for i := range cols {
		cols[i] = "x"
	}
	if _, err := ReadAzureInvocationsCSV(strings.NewReader(strings.Join(cols, ",") + "\n")); err == nil {
		t.Error("wrong header names accepted")
	}
	// Non-numeric count (corrupt the data row, not the header, which
	// also contains "300" as a column label).
	var buf bytes.Buffer
	if err := WriteAzureInvocationsCSV(&buf, azureRows()[:1]); err != nil {
		t.Fatalf("write: %v", err)
	}
	parts := strings.SplitN(buf.String(), "\n", 2)
	corrupted := parts[0] + "\n" + strings.Replace(parts[1], ",300,", ",NaN,", 1)
	if _, err := ReadAzureInvocationsCSV(strings.NewReader(corrupted)); err == nil {
		t.Error("non-numeric count accepted")
	}
}

func TestWriteAzureInvocationsCSVValidatesWidth(t *testing.T) {
	bad := []AzureFunctionRow{{Function: "f", PerMinute: []int{1, 2, 3}}}
	if err := WriteAzureInvocationsCSV(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("short per-minute row accepted")
	}
}

func TestFromAzureRowsPaperWindow(t *testing.T) {
	opts := DefaultAzureReplayOptions()
	tr, err := FromAzureRows(azureRows(), opts)
	if err != nil {
		t.Fatalf("FromAzureRows: %v", err)
	}
	// Minute 1330 holds 300 (fnA) + 500 (fnB) invocations.
	if tr.Len() != 800 {
		t.Fatalf("Len = %d, want 800 (the paper's replay count!)", tr.Len())
	}
	if tr.Span != time.Minute {
		t.Fatalf("Span = %v, want 1m", tr.Span)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Invocations[i].Offset < tr.Invocations[i-1].Offset {
			t.Fatal("invocations not sorted")
		}
	}
	for _, inv := range tr.Invocations {
		if inv.Offset < 0 || inv.Offset >= time.Minute {
			t.Fatalf("offset %v outside window", inv.Offset)
		}
		if inv.FibN < workload.MinFibN || inv.FibN > workload.MaxFibN {
			t.Fatalf("FibN %d out of range", inv.FibN)
		}
		if inv.Fn != "fnA" && inv.Fn != "fnB" {
			t.Fatalf("unexpected fn %q in window", inv.Fn)
		}
	}
}

func TestFromAzureRowsIOKind(t *testing.T) {
	opts := DefaultAzureReplayOptions()
	opts.Kind = workload.IO
	tr, err := FromAzureRows(azureRows(), opts)
	if err != nil {
		t.Fatalf("FromAzureRows: %v", err)
	}
	for _, inv := range tr.Invocations {
		if inv.FibN != 0 {
			t.Fatal("IO replay must not assign fib N")
		}
	}
}

func TestFromAzureRowsMinTotalFilter(t *testing.T) {
	opts := AzureReplayOptions{StartMinute: 0, Minutes: 1440, Seed: 1, Kind: workload.IO, MinTotal: 100}
	tr, err := FromAzureRows(azureRows(), opts)
	if err != nil {
		t.Fatalf("FromAzureRows: %v", err)
	}
	for _, inv := range tr.Invocations {
		if inv.Fn == "fnC" {
			t.Fatal("cold function survived the MinTotal filter")
		}
	}
}

func TestFromAzureRowsValidation(t *testing.T) {
	rows := azureRows()
	if _, err := FromAzureRows(rows, AzureReplayOptions{StartMinute: -1, Minutes: 1}); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := FromAzureRows(rows, AzureReplayOptions{StartMinute: 1439, Minutes: 2}); err == nil {
		t.Error("window past end of day accepted")
	}
	bad := []AzureFunctionRow{{Function: "f", PerMinute: []int{1}}}
	if _, err := FromAzureRows(bad, AzureReplayOptions{StartMinute: 0, Minutes: 1}); err == nil {
		t.Error("short row accepted")
	}
}

func TestFromAzureRowsDeterministic(t *testing.T) {
	opts := DefaultAzureReplayOptions()
	a, err := FromAzureRows(azureRows(), opts)
	if err != nil {
		t.Fatalf("FromAzureRows: %v", err)
	}
	b, err := FromAzureRows(azureRows(), opts)
	if err != nil {
		t.Fatalf("FromAzureRows: %v", err)
	}
	for i := range a.Invocations {
		if a.Invocations[i] != b.Invocations[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
