//go:build race

package platform

// raceEnabled reports whether the race detector is instrumenting this
// build. Allocation-count assertions skip under it: the instrumented
// runtime allocates on its own behalf, and sync.Pool deliberately
// randomizes cache bypass under race to widen interleaving coverage.
const raceEnabled = true
