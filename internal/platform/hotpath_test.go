package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faasbatch/internal/httpapi"
)

// hotpathConfig is the steady-state configuration the allocation gate
// measures: adaptive dispatch with single-call groups (every warm arrival
// takes the idle fast path or an early close, dispatched inline in the
// invoking goroutine), no cold-start simulation, no multiplexer, no
// tracer, no chaos.
func hotpathConfig() Config {
	return Config{
		Mode:             ModeBatch,
		DispatchInterval: 50 * time.Millisecond,
		AdaptiveDispatch: true,
		MaxGroupSize:     1,
		KeepAlive:        time.Minute,
	}
}

func noop(_ context.Context, _ *Invocation) (any, error) { return nil, nil }

// TestWarmInvokeAllocFree is the tentpole's acceptance gate in test form:
// a warm invocation through the sharded submit path — pooled pendingCall,
// pooled group, pooled invocation state, atomic counters — performs zero
// heap allocations. GC is disabled during the measurement because a
// collection clears sync.Pools mid-run, which would charge the refill to
// the invoke being measured.
func TestWarmInvokeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector (instrumented runtime allocates; sync.Pool randomly bypasses its caches)")
	}
	p, err := New(hotpathConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if err := p.Register("noop", noop); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx := context.Background()
	// Warm up: boot the container, prime the pools and the dispatch
	// controller's per-function state.
	for i := 0; i < 64; i++ {
		if _, err := p.Invoke(ctx, "noop", nil); err != nil {
			t.Fatalf("warm-up invoke: %v", err)
		}
	}
	prev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prev)
	avg := testing.AllocsPerRun(200, func() {
		if _, err := p.Invoke(ctx, "noop", nil); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm Invoke allocates %.1f objects/op, want 0", avg)
	}
}

// TestShardedSubmitRaceStress hammers the per-function shards from many
// goroutines while Close drains concurrently, then checks the platform's
// conservation law: every accepted invocation completed or was canceled —
// none were lost in the closed/submit race. Run it under -race to check
// the shard handshake's ordering claims.
func TestShardedSubmitRaceStress(t *testing.T) {
	cfg := hotpathConfig()
	cfg.DispatchInterval = 2 * time.Millisecond
	cfg.MaxGroupSize = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const fns = 8
	for i := 0; i < fns; i++ {
		if err := p.Register(fmt.Sprintf("fn-%d", i), noop); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 2*fns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fn := fmt.Sprintf("fn-%d", g%fns)
			// Spin until the concurrent Close rejects the submit.
			for {
				if _, err := p.Invoke(context.Background(), fn, nil); err != nil {
					if !strings.Contains(err.Error(), "closed") {
						t.Errorf("invoke %s: %v", fn, err)
					}
					return
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	st := p.Stats()
	if st.Submitted == 0 {
		t.Fatal("stress produced no submissions")
	}
	if st.Submitted != st.Invocations+st.Canceled {
		t.Fatalf("conservation broken: Submitted=%d, Invocations=%d, Canceled=%d",
			st.Submitted, st.Invocations, st.Canceled)
	}
}

// TestInvokeOversizeBody413 pins the gateway's body cap: a request past
// MaxInvokeBodyBytes answers 413 (Request Entity Too Large), not the 400
// that used to mislabel the client's oversized-but-well-formed request as
// malformed.
func TestInvokeOversizeBody413(t *testing.T) {
	_, srv := newHTTPServer(t)
	body := bytes.Repeat([]byte("x"), httpapi.MaxInvokeBodyBytes+1)
	resp, err := http.Post(srv.URL+"/invoke", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	msg, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(msg), "exceeds") {
		t.Errorf("413 body %q should name the cap", msg)
	}
	// One byte under the cap is a well-formed-but-bad request, not 413.
	under := make([]byte, 0, httpapi.MaxInvokeBodyBytes)
	under = append(under, `{"fn":"double","payload":"`...)
	under = append(under, bytes.Repeat([]byte("y"), httpapi.MaxInvokeBodyBytes-len(under)-2)...)
	under = append(under, '"', '}')
	resp2, err := http.Post(srv.URL+"/invoke", "application/json", bytes.NewReader(under))
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatalf("body within the cap answered 413")
	}
}

// TestRawMessagePassthroughByteEquality pins the raw-result fast path: a
// handler that already returns encoded JSON reaches the client verbatim —
// whitespace, key order and HTML-significant characters intact — instead
// of being re-marshalled (which would compact it and escape <, > and &).
func TestRawMessagePassthroughByteEquality(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	raw := json.RawMessage("{\n  \"html\": \"<a href='x'>&amp;</a>\",\n  \"n\":  1e2\n}")
	if err := p.Register("raw", func(_ context.Context, _ *Invocation) (any, error) {
		return raw, nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := p.Register("bad", func(_ context.Context, _ *Invocation) (any, error) {
		return json.RawMessage("{not json"), nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	p.SetReady(true)
	srv := httptest.NewServer(NewHTTPHandler(p))
	t.Cleanup(srv.Close)

	resp, err := http.Post(srv.URL+"/invoke", "application/json",
		strings.NewReader(`{"fn":"raw"}`))
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out httpapi.InvokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(out.Result, raw) {
		t.Fatalf("raw result altered in flight:\n got %q\nwant %q", out.Result, raw)
	}

	// A handler lying about its raw JSON is a server bug, not a pass.
	resp2, err := http.Post(srv.URL+"/invoke", "application/json",
		strings.NewReader(`{"fn":"bad"}`))
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("invalid raw JSON status = %d, want 500", resp2.StatusCode)
	}
}

// BenchmarkWarmSubmit measures the sharded sim submit path (the
// BENCH_hotpath.json sim_submit series).
func BenchmarkWarmSubmit(b *testing.B) {
	p, err := New(hotpathConfig())
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer func() { _ = p.Close() }()
	if err := p.Register("noop", noop); err != nil {
		b.Fatalf("Register: %v", err)
	}
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "noop", nil); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "noop", nil); err != nil {
			b.Fatalf("invoke: %v", err)
		}
	}
}

// BenchmarkWarmSubmitParallel exercises shard independence: parallel
// submitters on distinct functions should scale without lock contention.
func BenchmarkWarmSubmitParallel(b *testing.B) {
	p, err := New(hotpathConfig())
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer func() { _ = p.Close() }()
	const fns = 8
	for i := 0; i < fns; i++ {
		if err := p.Register(fmt.Sprintf("noop-%d", i), noop); err != nil {
			b.Fatalf("Register: %v", err)
		}
	}
	ctx := context.Background()
	for i := 0; i < fns; i++ {
		if _, err := p.Invoke(ctx, fmt.Sprintf("noop-%d", i), nil); err != nil {
			b.Fatalf("warm-up: %v", err)
		}
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		fn := fmt.Sprintf("noop-%d", next.Add(1)%fns)
		for pb.Next() {
			if _, err := p.Invoke(ctx, fn, nil); err != nil {
				b.Errorf("invoke: %v", err)
				return
			}
		}
	})
}

// BenchmarkHTTPInvokeWarm measures the live gateway path end to end (the
// BENCH_hotpath.json gateway_live series): HTTP decode, sharded submit,
// byte-oriented encode.
func BenchmarkHTTPInvokeWarm(b *testing.B) {
	p, err := New(hotpathConfig())
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer func() { _ = p.Close() }()
	if err := p.Register("noop", noop); err != nil {
		b.Fatalf("Register: %v", err)
	}
	p.SetReady(true)
	h := NewHTTPHandler(p)
	body := []byte(`{"fn":"noop"}`)
	req, err := http.NewRequest(http.MethodPost, "/invoke", nil)
	if err != nil {
		b.Fatalf("NewRequest: %v", err)
	}
	w := &discardResponseWriter{header: make(http.Header)}
	req.Body = io.NopCloser(bytes.NewReader(body))
	h.ServeHTTP(w, req)
	if w.status != 0 && w.status != http.StatusOK {
		b.Fatalf("warm-up status = %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.status = 0
		req.Body = io.NopCloser(bytes.NewReader(body))
		h.ServeHTTP(w, req)
	}
}

// discardResponseWriter is a minimal ResponseWriter so the gateway
// benchmark measures the handler, not net/http's connection machinery.
type discardResponseWriter struct {
	header http.Header
	status int
}

func (w *discardResponseWriter) Header() http.Header { return w.header }
func (w *discardResponseWriter) WriteHeader(s int)   { w.status = s }
func (w *discardResponseWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}
