// Package platform is a live, wall-clock FaaSBatch runtime: a miniature
// serverless platform that executes real Go functions with the paper's
// scheduling architecture. Where internal/experiment reproduces the
// evaluation in virtual time, this package is what a downstream user
// embeds to run FaaSBatch for real:
//
//   - functions register as Go handlers;
//   - the Invoke Mapper batches concurrent invocations per function over
//     a dispatch interval and expands each group inside one container
//     (a goroutine-backed worker with a simulated cold-start delay);
//   - each container carries a Resource Multiplexer; handlers obtain
//     shared clients through Resources.GetContext (or the deprecated
//     Resources.Get), so duplicate constructions coalesce exactly as in
//     §III-D.
//
// A per-invocation mode (Vanilla) is included for comparison, and
// NewHTTPHandler exposes the platform over HTTP (cmd/faasgate).
package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/dispatch"
	"faasbatch/internal/multiplex"
	"faasbatch/internal/obs"
	"faasbatch/internal/slo"
)

// Mode selects the scheduling policy of the live platform.
type Mode int

// Scheduling modes.
const (
	// ModeBatch is FaaSBatch: window batching + inline-parallel
	// expansion + resource multiplexing.
	ModeBatch Mode = iota + 1
	// ModeVanilla launches/acquires one container per invocation.
	ModeVanilla
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBatch:
		return "faasbatch"
	case ModeVanilla:
		return "vanilla"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Handler is a registered serverless function.
type Handler func(ctx context.Context, inv *Invocation) (any, error)

// Invocation is the handler's view of one request.
type Invocation struct {
	// Payload is the raw request payload.
	Payload json.RawMessage
	// Resources is the container's Resource Multiplexer facade.
	Resources *Resources
	// ContainerID identifies the hosting container.
	ContainerID string
}

// Outcome classifies how a Resources.GetContext call was served; it is
// the multiplexer's Outcome re-exported for handler ergonomics.
type Outcome = multiplex.Outcome

// Outcomes of Resources.GetContext.
const (
	OutcomeMiss      = multiplex.OutcomeMiss
	OutcomeHit       = multiplex.OutcomeHit
	OutcomeCoalesced = multiplex.OutcomeCoalesced
	OutcomeStale     = multiplex.OutcomeStale
	OutcomeNegative  = multiplex.OutcomeNegative
	OutcomeError     = multiplex.OutcomeError
)

// Typed errors surfaced by Resources.GetContext, matchable with
// errors.Is through any wrapping.
var (
	// ErrBuildFailed marks a failed client construction (the build
	// callback erred, or the negative cache is absorbing its failures).
	ErrBuildFailed = multiplex.ErrBuildFailed
	// ErrCacheClosed marks a multiplexer that has been torn down (the
	// hosting container is retiring).
	ErrCacheClosed = multiplex.ErrCacheClosed
)

// Resources is the handler-facing face of the container's Resource
// Multiplexer: GetContext intercepts resource creations, as the paper's
// multiplexer intercepts client(args) calls. When the invocation is
// traced, the platform hands the handler a per-invocation view carrying
// the trace context, so client builds appear as spans on the right trace.
type Resources struct {
	cache *multiplex.Cache
	inj   *chaos.Injector

	// borrows collects the release half of every cache loan this view
	// hands out. The platform gives each invocation its own view and
	// releases after the handler returns, so an instance evicted while
	// the handler still uses it is closed only once the handler is done.
	// Nil on views without a release bracket (those fall back to the
	// non-borrowing face).
	borrows *borrowSet

	// Trace context (zero on untraced views).
	tracer    *obs.Tracer
	trace     uint64
	fn        string
	container string
}

// borrowSet is one invocation's outstanding resource loans. Handlers may
// call GetContext from concurrent goroutines, so it locks.
type borrowSet struct {
	mu       sync.Mutex
	releases []multiplex.ReleaseFunc
}

func (b *borrowSet) add(r multiplex.ReleaseFunc) {
	b.mu.Lock()
	b.releases = append(b.releases, r)
	b.mu.Unlock()
}

// releaseAll returns every borrowed instance, firing any eviction closes
// that were deferred while the invocation held them.
func (b *borrowSet) releaseAll() {
	b.mu.Lock()
	rs := b.releases
	b.releases = nil
	b.mu.Unlock()
	for _, r := range rs {
		r()
	}
}

// GetContext returns the shared instance for (callee, argsKey), building
// it at most once per container. The Outcome reports how the call was
// served: a miss builds, a hit or coalesced wait reuses, a stale outcome
// serves the old instance while one background refresh runs, and a
// negative outcome means the key's recent build failures are being
// absorbed by backoff (the error matches ErrBuildFailed without the
// build having run). Errors match ErrBuildFailed / ErrCacheClosed with
// errors.Is; a done ctx abandons a coalesced wait with ctx.Err.
//
// A returned instance is borrowed for the rest of the invocation: if the
// cache evicts it (capacity, TTL, a concurrent Invalidate, container
// retirement) while the handler still holds it, its io.Closer runs only
// after the handler returns — never mid-use. Instances kept beyond the
// invocation (e.g. captured by a goroutine the handler leaves behind)
// lose that protection.
//
// When the platform runs without multiplexing, every call builds a fresh
// instance and reports OutcomeMiss.
func (r *Resources) GetContext(ctx context.Context, callee, argsKey string, build func() (any, int64, error)) (any, Outcome, error) {
	if r.inj != nil {
		// Fault injection wraps the constructor, so an injected failure
		// fires only when a build actually runs — cache hits are immune,
		// and a failed build exercises the multiplexer's failure path
		// (coalesced waiters wake and retry, repeated failures arm the
		// negative cache).
		orig := build
		build = func() (any, int64, error) {
			if r.inj.Should(chaos.StorageFailure) {
				return nil, 0, fmt.Errorf("injected storage-client construction failure")
			}
			return orig()
		}
	}
	var start time.Duration
	if r.trace != 0 {
		start = r.tracer.Now()
	}
	v, out, err := r.getCached(ctx, callee, argsKey, build)
	if r.trace != 0 {
		// One span per creation attempt, tagged with how it was served —
		// a hit's near-zero span is the §III-D saving made visible.
		r.tracer.Record(obs.Span{
			Trace: r.trace, Name: obs.SpanResourceBuild,
			Fn: r.fn, Container: r.container,
			Detail: callee + " [" + out.String() + "]",
			Start:  start, End: r.tracer.Now(),
		})
	}
	return v, out, err
}

// getCached is GetContext after instrumentation: the cache lookup, or an
// uncached build when multiplexing is off.
func (r *Resources) getCached(ctx context.Context, callee, argsKey string, build func() (any, int64, error)) (any, Outcome, error) {
	if r.cache == nil {
		v, _, err := build()
		if err != nil {
			return nil, OutcomeError, fmt.Errorf("platform: build %s: %w", callee, err)
		}
		return v, OutcomeMiss, nil
	}
	key := multiplex.NewKey(callee, argsKey)
	if r.borrows == nil {
		return r.cache.GetOrBuildContext(ctx, key, build)
	}
	// Borrow the instance for the rest of the invocation: if it is
	// evicted while the handler still holds it, its Closer runs only
	// after the handler returns.
	v, out, release, err := r.cache.Acquire(ctx, key, build)
	r.borrows.add(release)
	return v, out, err
}

// Get returns the shared instance for (callee, argsKey). The boolean
// reports whether the instance came from the cache.
//
// Deprecated: use GetContext, which adds cancellation, an Outcome and
// typed errors. Get remains as a compatibility wrapper: it maps the
// Outcome to Outcome.Cached and, when the container's cache has already
// been torn down, degrades to an uncached build instead of surfacing
// ErrCacheClosed.
func (r *Resources) Get(callee, argsKey string, build func() (any, int64, error)) (any, bool, error) {
	v, out, err := r.GetContext(context.Background(), callee, argsKey, build)
	if err != nil && errors.Is(err, ErrCacheClosed) {
		uncached := &Resources{
			inj: r.inj, tracer: r.tracer, trace: r.trace,
			fn: r.fn, container: r.container,
		}
		v, out, err = uncached.GetContext(context.Background(), callee, argsKey, build)
	}
	return v, out.Cached(), err
}

// Invalidate drops the shared instance for (callee, argsKey), reporting
// whether an instance (or a negative entry) was removed. It is the
// handler-feedback half of the failure-aware cache: after a cached
// client errors at use time (stale credentials, dead connection), the
// handler invalidates it so the next creation rebuilds instead of
// reusing a broken instance. An in-flight build is left alone.
func (r *Resources) Invalidate(callee, argsKey string) bool {
	if r.cache == nil {
		return false
	}
	return r.cache.Invalidate(multiplex.NewKey(callee, argsKey))
}

// Result is the outcome of one invocation, with the latency decomposition
// of §IV measured in wall-clock time.
type Result struct {
	// Value is the handler's return value.
	Value any
	// ContainerID identifies the container that served the invocation.
	ContainerID string
	// Cold reports whether a container had to be started.
	Cold bool
	// Sched is the scheduling latency (window wait + dispatch).
	Sched time.Duration
	// ColdStart is the container boot time (zero on warm starts).
	ColdStart time.Duration
	// Queue is the in-container queuing latency: the gap between the
	// container being ready and the handler starting (§IV's queuing
	// component).
	Queue time.Duration
	// Exec is the handler execution time.
	Exec time.Duration
	// Attempts is how many execution attempts the invocation consumed
	// (1 on the happy path; retries after faults add one each, capped at
	// 1+Config.MaxRetries).
	Attempts int
	// TraceID identifies the invocation's trace when the platform runs
	// with a sampling tracer (zero when tracing is off or unsampled).
	TraceID uint64
}

// Total reports the end-to-end latency: the sum of the four reported
// components, matching the paper's §IV decomposition.
func (r Result) Total() time.Duration { return r.Sched + r.ColdStart + r.Queue + r.Exec }

// Config parameterises the live platform.
type Config struct {
	// Mode selects batching (FaaSBatch) or per-invocation (Vanilla).
	Mode Mode
	// DispatchInterval is the Invoke Mapper window (ModeBatch only).
	// With AdaptiveDispatch it becomes the default window cap (see
	// MaxInterval).
	DispatchInterval time.Duration
	// AdaptiveDispatch replaces the fixed dispatch interval with a
	// load-aware controller (internal/dispatch): a lone arrival on an
	// idle function dispatches immediately instead of waiting out a
	// window, an EWMA of inter-arrival gaps sizes each window within
	// [MinInterval, MaxInterval], and a window whose group reaches
	// MaxGroupSize closes early. ModeBatch only; off by default (the
	// paper's fixed interval).
	AdaptiveDispatch bool
	// MinInterval is the adaptive window floor. Zero takes
	// DefaultMinInterval (clamped to MaxInterval).
	MinInterval time.Duration
	// MaxInterval is the adaptive window cap. Zero takes
	// DispatchInterval, so switching AdaptiveDispatch on never batches
	// longer than the fixed configuration it replaces.
	MaxInterval time.Duration
	// MaxGroupSize closes an adaptive window early once its group
	// reaches this size. Zero means unbounded groups.
	MaxGroupSize int
	// ColdStart simulates container boot time.
	ColdStart time.Duration
	// KeepAlive retains idle containers before eviction.
	KeepAlive time.Duration
	// Multiplex equips containers with a Resource Multiplexer.
	Multiplex bool
	// Multiplexer tunes each container's Resource Multiplexer: shard
	// count, capacity bound, TTL, stale-while-revalidate window and
	// negative-caching backoff (see multiplex.Config). The zero value
	// takes the cache defaults. Evicted instances implementing io.Closer
	// are closed automatically, after any OnEvict hook set here runs.
	// Ignored unless Multiplex is true.
	Multiplexer multiplex.Config
	// MaxConcurrency caps how many invocations expand inside one
	// container; a window group larger than the cap splits across
	// containers (Knative-style containerConcurrency). Zero means
	// unlimited — the paper stuffs the whole group into one container.
	MaxConcurrency int
	// InvokeTimeout bounds one handler execution attempt. A handler
	// exceeding it fails with a deadline error while the rest of its
	// batch completes normally — without it, one hung handler wedges its
	// whole group and Close (the paper's single-container group mapping
	// concentrates that risk). Zero means no deadline.
	InvokeTimeout time.Duration
	// MaxRetries is how many extra attempts a failed invocation receives
	// before its error is surfaced. Retried invocations re-batch into a
	// later dispatch window (at most 1+MaxRetries attempts; the final
	// outcome reports Result.Attempts). Zero disables retries.
	MaxRetries int
	// RetryBackoff is the base delay before a retry re-enters the
	// window, doubled on every further attempt (exponential backoff).
	// Zero re-batches immediately into the next window.
	RetryBackoff time.Duration
	// DrainTimeout bounds Close: in-flight windows and retries must
	// drain within it, else Close reports an error. Zero waits forever.
	// CloseContext ignores it — the caller's context is the one deadline.
	DrainTimeout time.Duration
	// WorkerID is this platform's identity in a multi-worker fleet
	// (internal/router): echoed in invoke responses and the /healthz
	// capacity report, so the router can attribute work truthfully.
	// Empty means standalone.
	WorkerID string
	// Capacity is the concurrency capacity advertised to the routing
	// tier via /healthz (worker-initiated signals, Hiku-style). Zero
	// means unbounded/unknown. It is advisory: the platform itself does
	// not enforce it.
	Capacity int
	// Chaos optionally injects seeded faults (boot failures, container
	// crashes, handler error/panic/hang, slow cold starts, storage
	// construction failures). Nil — the default — injects nothing.
	Chaos *chaos.Injector
	// Tracer records per-invocation lifecycle spans (obs.NewWallTracer).
	// Nil — the default — disables tracing; the disabled hot path adds no
	// allocations.
	Tracer *obs.Tracer
	// SLOs declares per-function service-level objectives, evaluated with
	// multi-window burn rates (internal/slo) and exported on /metrics.
	// Empty disables SLO tracking.
	SLOs []slo.Objective
	// SLOWindows overrides the burn-rate window ladder (production-scale
	// defaults when zero). Scenario runs pass slo.ScaledWindows so a
	// compressed run is judged with the same geometry.
	SLOWindows slo.Windows
	// Logger receives the platform's structured logs (dispatch decisions,
	// container lifecycle, fault and retry events), correlated by trace
	// ID. Nil discards everything.
	Logger *slog.Logger
}

// DefaultMinInterval is the adaptive window floor when Config.MinInterval
// is zero, mirroring core.DefaultMinInterval.
const DefaultMinInterval = 5 * time.Millisecond

// DefaultConfig returns paper-like live defaults (cold starts scaled down
// so examples run snappily).
func DefaultConfig() Config {
	return Config{
		Mode:             ModeBatch,
		DispatchInterval: 200 * time.Millisecond,
		ColdStart:        100 * time.Millisecond,
		KeepAlive:        2 * time.Minute,
		Multiplex:        true,
	}
}

// Stats is a snapshot of platform counters.
type Stats struct {
	// Submitted counts invocations accepted by Invoke. At quiescence
	// Submitted == Invocations + Canceled: every accepted invocation
	// completes exactly once (possibly as a failure) or is dropped
	// because its caller's context ended while it waited — never
	// silently disappears.
	Submitted int64
	// Canceled counts invocations dropped before execution because their
	// context was already done at window close (or before a retry
	// re-batched). Their callers had stopped listening; executing the
	// handler anyway would burn a batch slot for nobody.
	Canceled int64
	// Invocations counts completed invocations (successes and final
	// failures alike).
	Invocations int64
	// Failures counts invocations whose final outcome was an error after
	// the retry budget was exhausted.
	Failures int64
	// Retries counts extra execution attempts granted after failures.
	Retries int64
	// Timeouts counts handler attempts killed by InvokeTimeout.
	Timeouts int64
	// Panics counts handler attempts that panicked (recovered).
	Panics int64
	// Crashes counts containers lost to injected mid-batch crashes.
	Crashes int64
	// BootFailures counts container boots that failed and were retried.
	BootFailures int64
	// Groups counts dispatched batches (ModeBatch).
	Groups int64
	// FastPathDispatches counts adaptive idle fast-path dispatches: lone
	// arrivals sent straight to a container because no batching
	// opportunity existed.
	FastPathDispatches int64
	// EarlyCloses counts adaptive windows closed early because their
	// group reached MaxGroupSize.
	EarlyCloses int64
	// WindowDispatches counts adaptive windows closed by their deadline.
	WindowDispatches int64
	// DispatchWindowMicros is the most recently chosen adaptive window,
	// in microseconds (a gauge; zero until the first adaptive arrival).
	DispatchWindowMicros int64
	// ContainersCreated counts cold starts.
	ContainersCreated int64
	// WarmStarts counts container reuses.
	WarmStarts int64
	// LiveContainers counts containers currently alive.
	LiveContainers int
	// Multiplexer aggregates the containers' cache statistics.
	Multiplexer multiplex.Stats
}

// container is a live worker: a logical container backed by goroutines.
type container struct {
	id        string
	fn        string
	resources *Resources
	active    int
	lastIdle  time.Time
}

// function is one registered function's state. Its mutex is the
// platform's sharding unit: it guards this function's batching and
// container state, so concurrent Invokes on different functions never
// contend on a lock (DESIGN.md §14).
type function struct {
	name    string
	handler Handler

	// mu guards everything below.
	mu      sync.Mutex
	warm    []*container
	pending []*pendingCall
	all     []*container
	// deadline is the wall-clock close of the function's open adaptive
	// window (zero when no window is open).
	deadline time.Time
	// ctrl is this function's adaptive window controller (nil when
	// AdaptiveDispatch is off). dispatch.Controller is not safe for
	// concurrent use; mu serialises it — giving each function its own
	// controller is what lets the shards run lock-independent.
	ctrl *dispatch.Controller
}

// pendingCall is an invocation waiting for its window.
type pendingCall struct {
	ctx     context.Context
	payload json.RawMessage
	arrive  time.Time
	done    chan outcome
	// attempts counts execution attempts already consumed; a call retries
	// while attempts <= Config.MaxRetries.
	attempts int
	// trace is the invocation's trace ID (zero when untraced). Retries
	// keep the ID, so every attempt's spans land on one trace.
	trace uint64
}

// outcome carries a finished invocation back to its caller.
type outcome struct {
	res Result
	err error
}

// counters is the platform's internal statistics block: one atomic per
// Stats field, so the invoke hot path records without taking any lock.
// Stats() assembles the public snapshot from loads.
type counters struct {
	submitted            atomic.Int64
	canceled             atomic.Int64
	invocations          atomic.Int64
	failures             atomic.Int64
	retries              atomic.Int64
	timeouts             atomic.Int64
	panics               atomic.Int64
	crashes              atomic.Int64
	bootFailures         atomic.Int64
	groups               atomic.Int64
	fastPathDispatches   atomic.Int64
	earlyCloses          atomic.Int64
	windowDispatches     atomic.Int64
	dispatchWindowMicros atomic.Int64
	containersCreated    atomic.Int64
	warmStarts           atomic.Int64
	liveContainers       atomic.Int64
}

// Platform is the live FaaSBatch runtime.
type Platform struct {
	cfg Config

	// Observability: tracer (nil when disabled), labeled histograms, SLO
	// burn-rate tracker (nil when no objectives are configured) and the
	// structured logger (never nil; obs.Nop() by default).
	tracer  *obs.Tracer
	metrics *obs.Metrics
	slos    *slo.Tracker
	logger  *slog.Logger

	// fns is the function registry: a copy-on-write map swapped under mu
	// by Register and loaded lock-free by the invoke hot path. Each
	// *function carries its own mutex (the shard); the map itself is
	// immutable once published.
	fns atomic.Pointer[map[string]*function]

	// mu guards lifecycle state only — readiness, registration swaps,
	// the retired-multiplexer fold and the Close transition. The invoke
	// hot path never takes it.
	mu      sync.Mutex
	ready   bool
	retired multiplex.Stats

	closed atomic.Bool
	seq    atomic.Int64
	ctr    counters

	// Adaptive dispatch (false/zero when AdaptiveDispatch is off). Each
	// function gets its own controller (built from dcfg at Register);
	// the platform feeds wall-clock offsets from epoch. kick (buffered
	// 1) wakes adaptiveLoop when an arrival opens an earlier window.
	adaptive bool
	dcfg     dispatch.Config
	epoch    time.Time
	kick     chan struct{}

	stopTicker chan struct{}
	wg         sync.WaitGroup
}

// fnsAll returns the current registry snapshot (immutable).
func (p *Platform) fnsAll() map[string]*function { return *p.fns.Load() }

// lookup resolves a function name without locking.
func (p *Platform) lookup(fn string) *function { return (*p.fns.Load())[fn] }

// New starts a platform. Close must be called to release its dispatcher.
// The platform starts not ready: call SetReady(true) once registration
// completes so /healthz reports ok (Invoke itself works regardless).
func New(cfg Config) (*Platform, error) {
	if cfg.Mode != ModeBatch && cfg.Mode != ModeVanilla {
		return nil, fmt.Errorf("platform: unknown mode %d", int(cfg.Mode))
	}
	if cfg.Mode == ModeBatch && cfg.DispatchInterval <= 0 {
		return nil, fmt.Errorf("platform: dispatch interval must be positive, got %v", cfg.DispatchInterval)
	}
	if cfg.MaxGroupSize < 0 {
		return nil, fmt.Errorf("platform: max group size must be non-negative, got %d", cfg.MaxGroupSize)
	}
	var (
		adaptive bool
		dcfg     dispatch.Config
	)
	if cfg.Mode == ModeBatch && cfg.AdaptiveDispatch {
		if cfg.MaxInterval == 0 {
			cfg.MaxInterval = cfg.DispatchInterval
		}
		if cfg.MinInterval == 0 {
			cfg.MinInterval = DefaultMinInterval
			if cfg.MinInterval > cfg.MaxInterval {
				cfg.MinInterval = cfg.MaxInterval
			}
		}
		dcfg = dispatch.Config{
			MinInterval:  cfg.MinInterval,
			MaxInterval:  cfg.MaxInterval,
			MaxGroupSize: cfg.MaxGroupSize,
		}
		// Each function gets its own controller at Register; validate the
		// shared configuration once here.
		if err := dcfg.Validate(); err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
		adaptive = true
	}
	if cfg.ColdStart < 0 {
		return nil, fmt.Errorf("platform: cold start must be non-negative, got %v", cfg.ColdStart)
	}
	if cfg.KeepAlive <= 0 {
		return nil, fmt.Errorf("platform: keep-alive must be positive, got %v", cfg.KeepAlive)
	}
	if cfg.MaxConcurrency < 0 {
		return nil, fmt.Errorf("platform: max concurrency must be non-negative, got %d", cfg.MaxConcurrency)
	}
	if cfg.InvokeTimeout < 0 {
		return nil, fmt.Errorf("platform: invoke timeout must be non-negative, got %v", cfg.InvokeTimeout)
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("platform: max retries must be non-negative, got %d", cfg.MaxRetries)
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("platform: retry backoff must be non-negative, got %v", cfg.RetryBackoff)
	}
	if cfg.DrainTimeout < 0 {
		return nil, fmt.Errorf("platform: drain timeout must be non-negative, got %v", cfg.DrainTimeout)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("platform: capacity must be non-negative, got %d", cfg.Capacity)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Nop()
	}
	var slos *slo.Tracker
	if len(cfg.SLOs) > 0 {
		win := cfg.SLOWindows
		if win == (slo.Windows{}) {
			win = slo.DefaultWindows()
		}
		var err error
		slos, err = slo.NewTracker(win, cfg.SLOs)
		if err != nil {
			return nil, err
		}
	}
	p := &Platform{
		cfg:        cfg,
		tracer:     cfg.Tracer,
		metrics:    obs.NewMetrics(),
		slos:       slos,
		logger:     logger,
		adaptive:   adaptive,
		dcfg:       dcfg,
		epoch:      time.Now(),
		kick:       make(chan struct{}, 1),
		stopTicker: make(chan struct{}),
	}
	empty := make(map[string]*function)
	p.fns.Store(&empty)
	p.logger.Info("platform started",
		"mode", cfg.Mode.String(),
		"interval", cfg.DispatchInterval,
		"adaptive", adaptive,
		"multiplex", cfg.Multiplex,
		"tracing", cfg.Tracer != nil)
	if cfg.Mode == ModeBatch {
		p.wg.Add(1)
		if adaptive {
			go p.adaptiveLoop()
		} else {
			go p.dispatchLoop()
		}
	}
	// Eviction runs on its own timer in every mode: Vanilla has no
	// dispatch loop to piggyback on (the pre-fix bug — idle Vanilla
	// containers outlived KeepAlive until Close), and adaptive windows
	// fire irregularly.
	p.wg.Add(1)
	go p.evictLoop()
	return p, nil
}

// logOn reports whether the logger would emit at level, letting hot paths
// skip attribute construction entirely when logging is off.
func (p *Platform) logOn(level slog.Level) bool {
	return p.logger.Enabled(context.Background(), level)
}

// Metrics exposes the platform's histogram registry (never nil).
func (p *Platform) Metrics() *obs.Metrics { return p.metrics }

// Tracer exposes the platform's tracer (nil when tracing is disabled).
func (p *Platform) Tracer() *obs.Tracer { return p.tracer }

// SLOs exposes the platform's SLO tracker (nil when no objectives are
// configured; the nil tracker is safe to use).
func (p *Platform) SLOs() *slo.Tracker { return p.slos }

// SLOStatuses evaluates the configured objectives at the current
// platform uptime.
func (p *Platform) SLOStatuses() []slo.Status {
	return p.slos.Evaluate(time.Since(p.epoch))
}

// WriteSLOMetrics appends the SLO burn-rate gauges to a /metrics
// exposition (nothing when no objectives are configured).
func (p *Platform) WriteSLOMetrics(w io.Writer) {
	p.slos.WriteMetrics(w, "faasbatch", time.Since(p.epoch))
}

// Register adds a function. Registering a duplicate or empty name fails.
func (p *Platform) Register(name string, h Handler) error {
	if name == "" || h == nil {
		return fmt.Errorf("platform: register requires a name and a handler")
	}
	f := &function{name: name, handler: h}
	if p.adaptive {
		ctrl, err := dispatch.New(p.dcfg)
		if err != nil {
			// Unreachable: New validated dcfg.
			return fmt.Errorf("platform: %w", err)
		}
		f.ctrl = ctrl
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return fmt.Errorf("platform: closed")
	}
	old := *p.fns.Load()
	if _, ok := old[name]; ok {
		return fmt.Errorf("platform: function %q already registered", name)
	}
	next := make(map[string]*function, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = f
	p.fns.Store(&next)
	return nil
}

// SetReady flips the platform's readiness signal. A platform starts not
// ready: flip it true once function registration completes, so /healthz
// (and the routing tier's prober behind it) sees a truthful signal
// instead of a worker that would reject every invocation with "unknown
// function". Draining overrides readiness regardless of this flag.
func (p *Platform) SetReady(ready bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ready = ready
}

// Ready reports whether the platform is accepting work: marked ready and
// not draining.
func (p *Platform) Ready() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ready && !p.closed.Load()
}

// Draining reports whether Close has begun.
func (p *Platform) Draining() bool {
	return p.closed.Load()
}

// WorkerID reports the platform's fleet identity ("" when standalone).
func (p *Platform) WorkerID() string { return p.cfg.WorkerID }

// Capacity reports the advertised concurrency capacity (0 = unbounded).
func (p *Platform) Capacity() int { return p.cfg.Capacity }

// Inflight counts invocations accepted but not yet completed (canceled
// calls dropped before execution no longer count).
func (p *Platform) Inflight() int64 {
	return p.ctr.submitted.Load() - p.ctr.invocations.Load() - p.ctr.canceled.Load()
}

// Invoke runs one invocation and blocks until it completes. In ModeBatch
// the call waits for its window, travels with its group, and expands
// inside the group's container.
func (p *Platform) Invoke(ctx context.Context, fn string, payload json.RawMessage) (Result, error) {
	return p.InvokeWithTrace(ctx, fn, payload, 0)
}

// InvokeWithTrace is Invoke continuing a caller-supplied trace: a
// non-zero parent (from a traceparent header minted by the router or an
// external tracer) is adopted as this invocation's trace ID, so the
// worker's scheduling/cold-start/queuing/execution spans join the
// caller's distributed trace. Zero parent mints locally (sampled).
func (p *Platform) InvokeWithTrace(ctx context.Context, fn string, payload json.RawMessage, parent uint64) (Result, error) {
	f := p.lookup(fn)
	if f == nil {
		if p.closed.Load() {
			return Result{}, fmt.Errorf("platform: closed")
		}
		return Result{}, fmt.Errorf("platform: unknown function %q", fn)
	}
	call := getPendingCall()
	call.ctx = ctx
	call.payload = payload
	call.arrive = time.Now()
	call.trace = p.tracer.BeginWith(parent)

	// Submission holds only this function's shard lock: Invokes on
	// different functions never contend. The closed check under f.mu
	// pairs with CloseContext's handshake over every shard — a call that
	// saw closed==false here has its wg.Add ordered before Close's Wait.
	var run *callGroup
	f.mu.Lock()
	if p.closed.Load() {
		f.mu.Unlock()
		putPendingCall(call)
		return Result{}, fmt.Errorf("platform: closed")
	}
	p.ctr.submitted.Add(1)
	switch {
	case p.cfg.Mode == ModeVanilla:
		p.wg.Add(1)
		run = getGroup(1)
		run.calls = append(run.calls, call)
	case p.adaptive:
		if g := p.adaptiveSubmitLocked(f, call); g != nil {
			// Fast path or early close: dispatch without waiting for the
			// window loop.
			p.wg.Add(1)
			run = g
		}
	default:
		p.enqueueLocked(f, call)
	}
	f.mu.Unlock()
	if run != nil {
		// Run the group inline in this goroutine: the caller blocks on
		// call.done anyway, so a hand-off goroutine would add a spawn and
		// teardown to every fast-path dispatch for nothing.
		p.runGroup(f, run.calls)
		putGroup(run)
		p.wg.Done()
	}
	select {
	case out := <-call.done:
		res, err := out.res, out.err
		// Happy path: the single outcome was received, so the call (and
		// its buffered channel) is provably quiescent — recycle it. The
		// ctx.Done path below must NOT recycle: finish may still deliver
		// to this call's channel.
		putPendingCall(call)
		return res, err
	case <-ctx.Done():
		return Result{}, fmt.Errorf("platform: invoke %s: %w", fn, ctx.Err())
	}
}

// enqueueLocked appends a call to f's pending queue, sizing the backing
// array from the dispatch estimator on first use so the steady state
// appends without growing. Caller holds f.mu.
func (p *Platform) enqueueLocked(f *function, call *pendingCall) {
	if f.pending == nil {
		n := 8
		if f.ctrl != nil {
			if e := f.ctrl.ExpectedGroup(f.name); e > n {
				n = e
			}
		}
		f.pending = make([]*pendingCall, 0, n)
	}
	f.pending = append(f.pending, call)
}

// dispatchLoop is the fixed-interval Invoke Mapper: every interval it
// drains each function's pending calls as one group.
func (p *Platform) dispatchLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.DispatchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			p.dispatchWindow()
		case <-p.stopTicker:
			p.dispatchWindow() // flush
			return
		}
	}
}

// adaptiveSubmitLocked routes one arrival through the function's
// dispatch controller. It returns a group to dispatch immediately (idle
// fast-path or early close), or nil when the call must wait for its
// window. Caller holds f.mu.
func (p *Platform) adaptiveSubmitLocked(f *function, call *pendingCall) *callGroup {
	idle := len(f.pending) == 0 && !p.busyLocked(f)
	p.enqueueLocked(f, call)
	d := f.ctrl.Arrive(f.name, time.Since(p.epoch), idle)
	p.ctr.dispatchWindowMicros.Store(d.Window.Microseconds())
	switch d.Action {
	case dispatch.ActionFastPath:
		p.ctr.fastPathDispatches.Add(1)
	case dispatch.ActionEarlyClose:
		p.ctr.earlyCloses.Add(1)
	default:
		// The controller may extend an open window's deadline as the
		// arrival estimate densifies; a stale-armed loop timer just
		// re-arms when it finds the deadline still in the future.
		wasIdle := f.deadline.IsZero()
		f.deadline = p.epoch.Add(d.Deadline)
		if wasIdle {
			p.kickLoop()
		}
		return nil
	}
	f.deadline = time.Time{}
	group := p.claimPendingLocked(f)
	if group == nil {
		return nil
	}
	p.recordWindowSpans(f, group.calls, d.Window, d.Action.String())
	return group
}

// busyLocked reports whether any container of f is currently executing —
// a batching opportunity an arrival could wait to share. Caller holds
// f.mu.
func (p *Platform) busyLocked(f *function) bool {
	for _, c := range f.all {
		if c.active > 0 {
			return true
		}
	}
	return false
}

// kickLoop wakes adaptiveLoop to re-arm its timer (an arrival opened a
// window that may close before the one the loop is sleeping on).
func (p *Platform) kickLoop() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// adaptiveLoop is the Invoke Mapper in adaptive mode: instead of a fixed
// ticker it sleeps until the earliest per-function window deadline,
// re-armed whenever an arrival opens an earlier window. The timer is
// created fresh each iteration (no Reset races).
func (p *Platform) adaptiveLoop() {
	defer p.wg.Done()
	for {
		var next time.Time
		for _, f := range p.fnsAll() {
			f.mu.Lock()
			d := f.deadline
			f.mu.Unlock()
			if !d.IsZero() && (next.IsZero() || d.Before(next)) {
				next = d
			}
		}
		var (
			timer  *time.Timer
			timerC <-chan time.Time
		)
		if !next.IsZero() {
			d := time.Until(next)
			if d < 0 {
				d = 0
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case <-timerC:
			p.dispatchDue()
		case <-p.kick:
			// Re-scan deadlines and re-arm.
		case <-p.stopTicker:
			if timer != nil {
				timer.Stop()
			}
			p.dispatchWindow() // flush
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// dispatchDue closes every adaptive window whose deadline has passed.
func (p *Platform) dispatchDue() {
	now := time.Now()
	type job struct {
		f  *function
		cg *callGroup
	}
	var jobs []job
	for _, f := range p.fnsAll() {
		f.mu.Lock()
		if f.deadline.IsZero() || f.deadline.After(now) {
			f.mu.Unlock()
			continue
		}
		f.deadline = time.Time{}
		window := f.ctrl.Window(f.name)
		f.ctrl.WindowClosed(f.name)
		cg := p.claimPendingLocked(f)
		if cg == nil {
			f.mu.Unlock()
			continue
		}
		p.ctr.windowDispatches.Add(1)
		p.recordWindowSpans(f, cg.calls, window, "window")
		f.mu.Unlock()
		jobs = append(jobs, job{f: f, cg: cg})
	}
	for _, j := range jobs {
		j := j
		if p.logOn(slog.LevelDebug) {
			p.logger.Debug("dispatch window", "fn", j.f.name, "group", len(j.cg.calls))
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.runGroup(j.f, j.cg.calls)
			putGroup(j.cg)
		}()
	}
}

// dispatchWindow drains every function's window group: the fixed-interval
// tick, and the final flush of both batch loops at Close.
func (p *Platform) dispatchWindow() {
	type job struct {
		f  *function
		cg *callGroup
	}
	var jobs []job
	for _, f := range p.fnsAll() {
		f.mu.Lock()
		if f.ctrl != nil {
			f.deadline = time.Time{}
			f.ctrl.WindowClosed(f.name)
		}
		cg := p.claimPendingLocked(f)
		f.mu.Unlock()
		if cg == nil {
			continue
		}
		jobs = append(jobs, job{f: f, cg: cg})
	}
	for _, j := range jobs {
		j := j
		if p.logOn(slog.LevelDebug) {
			p.logger.Debug("dispatch window", "fn", j.f.name, "group", len(j.cg.calls))
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.runGroup(j.f, j.cg.calls)
			putGroup(j.cg)
		}()
	}
}

// claimPendingLocked takes f's pending group into a pooled callGroup,
// dropping calls whose context ended while they waited: a canceled
// call's caller has already returned, so executing it would burn a
// batch slot for nobody. The pending slice itself is retained (reset to
// length zero) so the next window appends into warm memory. Returns nil
// when nothing survives. Caller holds f.mu.
func (p *Platform) claimPendingLocked(f *function) *callGroup {
	if len(f.pending) == 0 {
		return nil
	}
	group := getGroup(len(f.pending))
	for _, call := range f.pending {
		if call.ctx.Err() != nil {
			// Dropped, not recycled: the caller's select may still race
			// on call.done (see pool.go).
			p.ctr.canceled.Add(1)
			if p.logOn(slog.LevelDebug) {
				p.logger.Debug("canceled call dropped", "fn", f.name, "trace", call.trace)
			}
			continue
		}
		group.calls = append(group.calls, call)
	}
	for i := range f.pending {
		f.pending[i] = nil
	}
	f.pending = f.pending[:0]
	if len(group.calls) == 0 {
		putGroup(group)
		return nil
	}
	return group
}

// recordWindowSpans stamps one dispatch-window span per traced group
// member: arrival to window close, tagged with the chosen interval and
// why the window closed.
func (p *Platform) recordWindowSpans(f *function, group []*pendingCall, window time.Duration, reason string) {
	if p.tracer == nil {
		return
	}
	end := p.tracer.Now()
	detail := fmt.Sprintf("window %v [%s]", window, reason)
	for _, call := range group {
		if call.trace == 0 {
			continue
		}
		p.tracer.Record(obs.Span{
			Trace: call.trace, Name: obs.SpanDispatchWindow, Fn: f.name,
			Attempt: call.attempts + 1, Detail: detail,
			Start: p.tracer.Stamp(call.arrive), End: end,
		})
	}
}

// evictLoop retires idle warm containers past KeepAlive on its own
// cadence, decoupled from dispatch: Vanilla mode has no dispatch loop at
// all, and adaptive windows fire irregularly, so eviction can ride
// neither.
func (p *Platform) evictLoop() {
	defer p.wg.Done()
	period := p.cfg.KeepAlive / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			p.evictIdle()
		case <-p.stopTicker:
			return
		}
	}
}

// evictIdle drops warm containers idle past the keep-alive, one shard at
// a time.
func (p *Platform) evictIdle() {
	cutoff := time.Now().Add(-p.cfg.KeepAlive)
	for _, f := range p.fnsAll() {
		f.mu.Lock()
		kept := f.warm[:0]
		for _, c := range f.warm {
			if c.lastIdle.Before(cutoff) {
				if p.logOn(slog.LevelDebug) {
					p.logger.Debug("container evicted", "container", c.id, "fn", f.name, "idle", time.Since(c.lastIdle))
				}
				p.retireLocked(f, c)
				continue
			}
			kept = append(kept, c)
		}
		for i := len(kept); i < len(f.warm); i++ {
			f.warm[i] = nil
		}
		f.warm = kept
		f.mu.Unlock()
	}
}

// retireLocked removes a container from the function's records. Caller
// holds f.mu; the retired-stats fold nests p.mu inside it (the only
// nesting order in the platform — nothing acquires a shard while holding
// p.mu).
func (p *Platform) retireLocked(f *function, c *container) {
	for i, other := range f.all {
		if other == c {
			f.all = append(f.all[:i], f.all[i+1:]...)
			break
		}
	}
	if c.resources != nil && c.resources.cache != nil {
		st := c.resources.cache.Stats()
		// Fold the retired cache's counters into the platform totals, but
		// not its gauges — its live instances and shards are about to be
		// released by Close (which fires the Closer hook per instance).
		st.LiveInstances, st.BytesLive = 0, 0
		st.Shards, st.MaxShardOccupancy = 0, 0
		p.mu.Lock()
		p.retired.Add(st)
		p.mu.Unlock()
		c.resources.cache.Close()
	}
	p.ctr.liveContainers.Add(-1)
}

// containerCacheConfig derives one container's multiplexer config from
// Config.Multiplexer, layering the platform's instance-lifecycle hook on
// top of any user OnEvict: every instance leaving a cache (evicted,
// expired, replaced by a refresh, invalidated or released at container
// retirement) that implements io.Closer is closed, so cached clients
// release their sockets deterministically. The cache defers this hook
// for instances a running invocation borrowed (see Resources.GetContext),
// so the close lands after the last borrowing handler returns.
func (p *Platform) containerCacheConfig() multiplex.Config {
	mcfg := p.cfg.Multiplexer
	user := mcfg.OnEvict
	mcfg.OnEvict = func(k multiplex.Key, inst any, bytes int64) {
		if user != nil {
			user(k, inst, bytes)
		}
		if closer, ok := inst.(io.Closer); ok {
			if err := closer.Close(); err != nil && p.logOn(slog.LevelDebug) {
				p.logger.Debug("evicted client close failed", "callee", k.Callee, "err", err)
			}
		}
	}
	return mcfg
}

// acquire obtains a container for f: warm if available, else cold. The
// warm path is allocation-free: a pop from the shard's warm stack plus
// one atomic counter.
func (p *Platform) acquire(f *function) (*container, bool) {
	f.mu.Lock()
	if n := len(f.warm); n > 0 {
		c := f.warm[n-1]
		f.warm[n-1] = nil
		f.warm = f.warm[:n-1]
		c.active++
		f.mu.Unlock()
		p.ctr.warmStarts.Add(1)
		return c, false
	}
	c := &container{id: fmt.Sprintf("live-%04d-%s", p.seq.Add(1), f.name), fn: f.name}
	res := &Resources{inj: p.cfg.Chaos}
	if p.cfg.Multiplex {
		res.cache = multiplex.NewWithConfig(p.containerCacheConfig())
	}
	c.resources = res
	c.active++
	f.all = append(f.all, c)
	f.mu.Unlock()
	p.ctr.containersCreated.Add(1)
	p.ctr.liveContainers.Add(1)
	// Simulated boot outside the lock. Injected boot failures cost one
	// boot latency each and restart the boot; an injected slow cold start
	// inflates the final boot.
	boot := p.cfg.ColdStart
	for p.cfg.Chaos.Should(chaos.BootFailure) {
		p.ctr.bootFailures.Add(1)
		p.logger.Warn("container boot failed, retrying", "container", c.id, "fn", f.name)
		if boot > 0 {
			time.Sleep(boot)
		}
	}
	if p.cfg.Chaos.Should(chaos.SlowColdStart) {
		boot = time.Duration(float64(boot) * p.cfg.Chaos.ColdStartFactor())
		p.logger.Warn("slow cold start injected", "container", c.id, "fn", f.name, "boot", boot)
	}
	if boot > 0 {
		time.Sleep(boot)
	}
	if p.logOn(slog.LevelDebug) {
		p.logger.Debug("container created", "container", c.id, "fn", f.name, "boot", boot)
	}
	return c, true
}

// release parks the container back into the warm pool once it drains.
func (p *Platform) release(f *function, c *container, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c.active -= n
	if c.active <= 0 {
		c.active = 0
		c.lastIdle = time.Now()
		f.warm = append(f.warm, c)
	}
}

// runGroup is the Inline-Parallel Producer: one container for the whole
// group, every invocation a goroutine inside it. Groups beyond the
// per-container concurrency cap split across containers.
func (p *Platform) runGroup(f *function, group []*pendingCall) {
	p.metrics.ObserveGroupSize(len(group))
	if max := p.cfg.MaxConcurrency; max > 0 && len(group) > max {
		var wg sync.WaitGroup
		for start := 0; start < len(group); start += max {
			end := start + max
			if end > len(group) {
				end = len(group)
			}
			chunk := group[start:end]
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.runGroupOne(f, chunk)
			}()
		}
		wg.Wait()
		return
	}
	p.runGroupOne(f, group)
}

// runGroupOne expands one (cap-respecting) group inside one container,
// recording each member's lifecycle spans: scheduling (arrival to
// dispatch), cold start, in-container queuing (container ready to handler
// start) and one execution span per attempt. Span bounds are stamped from
// the same wall-clock instants as the Result components, so an exported
// trace reconstructs the §IV decomposition exactly.
func (p *Platform) runGroupOne(f *function, group []*pendingCall) {
	dispatch := time.Now()
	c, cold := p.acquire(f)
	ready := time.Now()
	coldDur := time.Duration(0)
	if cold {
		coldDur = ready.Sub(dispatch)
	}
	dispatchStamp := p.tracer.Stamp(dispatch)
	readyStamp := p.tracer.Stamp(ready)
	for _, call := range group {
		if call.trace == 0 {
			continue
		}
		attempt := call.attempts + 1
		p.tracer.Record(obs.Span{
			Trace: call.trace, Name: obs.SpanScheduling, Fn: f.name, Container: c.id,
			Attempt: attempt, Start: p.tracer.Stamp(call.arrive), End: dispatchStamp,
		})
		if cold {
			p.tracer.Record(obs.Span{
				Trace: call.trace, Name: obs.SpanColdStart, Fn: f.name, Container: c.id,
				Attempt: attempt, Start: dispatchStamp, End: readyStamp,
			})
		}
	}
	p.ctr.groups.Add(1)
	if len(group) > 1 {
		f.mu.Lock()
		c.active += len(group) - 1 // acquire already counted one
		f.mu.Unlock()
	}

	// Injected mid-batch container crash: the whole group fails at once —
	// the blast radius of the paper's one-container-per-group mapping.
	// The container is retired (not parked warm), so the next window
	// boots a replacement; each member retries or surfaces the crash.
	if p.cfg.Chaos.Should(chaos.ContainerCrash) {
		crashErr := fmt.Errorf("platform: container %s crashed", c.id)
		p.ctr.crashes.Add(1)
		f.mu.Lock()
		c.active = 0
		p.retireLocked(f, c)
		f.mu.Unlock()
		p.logger.Warn("container crashed mid-batch", "container", c.id, "fn", f.name, "group", len(group))
		for _, call := range group {
			res := Result{ContainerID: c.id, Cold: cold, Sched: dispatch.Sub(call.arrive), ColdStart: coldDur, TraceID: call.trace}
			p.finish(f, call, res, crashErr)
		}
		return
	}

	if len(group) == 1 {
		// The hot path: a single-call group runs in the current goroutine
		// — no per-call spawn, no WaitGroup.
		p.runCall(f, c, group[0], cold, dispatch, ready, coldDur, readyStamp)
	} else {
		p.runCallsParallel(f, c, group, cold, dispatch, ready, coldDur, readyStamp)
	}
	p.release(f, c, len(group))
}

// runCallsParallel expands a multi-call group, one goroutine per member.
// It lives apart from runGroupOne so the goroutine closure's captures are
// heap-moved only when a real multi-call group runs — captured in the
// caller, they would cost the single-call hot path an allocation per
// invoke whether or not this branch was taken.
func (p *Platform) runCallsParallel(f *function, c *container, group []*pendingCall, cold bool, dispatch, ready time.Time, coldDur time.Duration, readyStamp time.Duration) {
	var wg sync.WaitGroup
	for _, call := range group {
		call := call
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.runCall(f, c, call, cold, dispatch, ready, coldDur, readyStamp)
		}()
	}
	wg.Wait()
}

// runCall executes one group member inside its container: pooled
// per-invocation state, the handler attempt, borrow release, spans, and
// settlement through finish.
func (p *Platform) runCall(f *function, c *container, call *pendingCall, cold bool, dispatch, ready time.Time, coldDur time.Duration, readyStamp time.Duration) {
	start := time.Now()
	// Every invocation gets its own multiplexer view: it scopes the
	// resource borrows released below, and on traced calls carries the
	// trace so client builds span on the invocation that paid for them.
	// The view, its borrow set and the Invocation come from a pool;
	// see pool.go for the recycling contract.
	st := getInvState()
	st.res.cache = c.resources.cache
	st.res.inj = c.resources.inj
	st.res.borrows = &st.borrows
	if call.trace != 0 {
		st.res.tracer, st.res.trace = p.tracer, call.trace
		st.res.fn, st.res.container = f.name, c.id
	}
	st.inv.Payload = call.payload
	st.inv.Resources = &st.res
	st.inv.ContainerID = c.id
	value, err, returned := p.runHandler(f, call.ctx, &st.inv)
	// The handler is done with everything it borrowed; deferred
	// eviction closes fire now, before the result is published.
	st.res.borrows.releaseAll()
	end := time.Now()
	if call.trace != 0 {
		attempt := call.attempts + 1
		startStamp := p.tracer.Stamp(start)
		p.tracer.Record(obs.Span{
			Trace: call.trace, Name: obs.SpanQueuing, Fn: f.name, Container: c.id,
			Attempt: attempt, Start: readyStamp, End: startStamp,
		})
		p.tracer.Record(obs.Span{
			Trace: call.trace, Name: obs.SpanExecution, Fn: f.name, Container: c.id,
			Attempt: attempt, Start: startStamp, End: p.tracer.Stamp(end),
		})
	}
	out := Result{
		Value:       value,
		ContainerID: c.id,
		Cold:        cold,
		Sched:       dispatch.Sub(call.arrive),
		ColdStart:   coldDur,
		Queue:       start.Sub(ready),
		Exec:        end.Sub(start),
		TraceID:     call.trace,
	}
	if err != nil {
		err = fmt.Errorf("platform: invoke %s: %w", f.name, err)
	}
	p.finish(f, call, out, err)
	if returned {
		// The handler actually returned (it was not abandoned to an
		// InvokeTimeout), so nothing can touch this state again.
		putInvState(st)
	}
}

// runHandler executes one handler attempt, layering on (in order) any
// injected handler faults and the InvokeTimeout deadline. With a deadline
// configured, a handler that never returns costs its group only the
// timeout — the rest of the batch completes and Close still drains —
// instead of wedging the whole group, though its goroutine is abandoned
// until the handler actually returns.
//
// The third result reports whether the handler has really returned by
// the time runHandler does: false on the timeout/cancellation branches,
// where the abandoned handler goroutine may still be running and
// touching the Invocation — the caller must not recycle per-attempt
// state then.
func (p *Platform) runHandler(f *function, ctx context.Context, inv *Invocation) (any, error, bool) {
	h := f.handler
	if inj := p.cfg.Chaos; inj != nil {
		switch {
		case inj.Should(chaos.HandlerError):
			h = func(context.Context, *Invocation) (any, error) {
				return nil, errors.New("injected handler error")
			}
		case inj.Should(chaos.HandlerPanic):
			h = func(context.Context, *Invocation) (any, error) {
				panic("injected handler panic")
			}
		case inj.Should(chaos.HandlerHang):
			orig := h
			hang := inj.HangDuration()
			h = func(ctx context.Context, inv *Invocation) (any, error) {
				// Bounded hang: long enough to trip InvokeTimeout, short
				// enough that abandoned goroutines settle in tests.
				select {
				case <-time.After(hang):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return orig(ctx, inv)
			}
		}
	}
	if p.cfg.InvokeTimeout <= 0 {
		value, err := safeInvoke(h, ctx, inv)
		p.notePanic(err)
		return value, err, true
	}
	tctx, cancel := context.WithTimeout(ctx, p.cfg.InvokeTimeout)
	defer cancel()
	type attempt struct {
		value any
		err   error
	}
	ch := make(chan attempt, 1)
	go func() {
		v, err := safeInvoke(h, tctx, inv)
		ch <- attempt{v, err}
	}()
	select {
	case a := <-ch:
		p.notePanic(a.err)
		return a.value, a.err, true
	case <-tctx.Done():
		if ctx.Err() != nil {
			// The caller's own context ended; not an invoke timeout.
			return nil, ctx.Err(), false
		}
		p.ctr.timeouts.Add(1)
		return nil, fmt.Errorf("handler exceeded invoke timeout %v: %w",
			p.cfg.InvokeTimeout, context.DeadlineExceeded), false
	}
}

// notePanic counts a recovered handler panic. The nil check comes before
// the target declaration: errors.As forces its target to the heap, and
// returning first keeps the happy path allocation-free.
func (p *Platform) notePanic(err error) {
	if err == nil {
		return
	}
	var pe panicError
	if errors.As(err, &pe) {
		p.ctr.panics.Add(1)
	}
}

// finish settles one attempt: a failed attempt with retry budget left
// re-enters a later dispatch window (with exponential backoff); anything
// else completes the invocation exactly once.
func (p *Platform) finish(f *function, call *pendingCall, res Result, err error) {
	call.attempts++
	if err != nil && call.attempts <= p.cfg.MaxRetries && call.ctx.Err() == nil {
		retry := false
		f.mu.Lock()
		if !p.closed.Load() {
			// Add under the shard lock while open: CloseContext sets
			// closed and then handshakes every shard before Wait, so this
			// Add is ordered before that Wait.
			p.wg.Add(1)
			retry = true
		}
		f.mu.Unlock()
		if retry {
			p.ctr.retries.Add(1)
			if p.logOn(slog.LevelInfo) {
				p.logger.Info("retrying invocation",
					"fn", f.name, "attempt", call.attempts, "trace", call.trace, "err", err)
			}
			go p.retryLater(f, call)
			return
		}
	}
	res.Attempts = call.attempts
	p.ctr.invocations.Add(1)
	if err != nil {
		p.ctr.failures.Add(1)
	}
	if err != nil {
		p.logger.Warn("invocation failed",
			"fn", f.name, "attempts", call.attempts, "trace", call.trace, "err", err)
	}
	p.metrics.ObserveLatency(f.name, obs.SpanScheduling, res.Sched)
	p.metrics.ObserveLatency(f.name, obs.SpanColdStart, res.ColdStart)
	p.metrics.ObserveLatency(f.name, obs.SpanQueuing, res.Queue)
	p.metrics.ObserveLatency(f.name, obs.SpanExecution, res.Exec)
	p.metrics.ObserveLatency(f.name, obs.ComponentEndToEnd, res.Total())
	p.slos.Observe(f.name, res.Total(), err != nil, time.Since(p.epoch))
	call.done <- outcome{res: res, err: err}
}

// retryLater re-batches a failed call into a later dispatch window after
// an exponential backoff. Close wakes sleepers early (stopTicker) and the
// retry then runs directly, so draining never strands a retry. The caller
// has already done p.wg.Add(1).
func (p *Platform) retryLater(f *function, call *pendingCall) {
	defer p.wg.Done()
	if p.cfg.RetryBackoff > 0 {
		backoff := p.cfg.RetryBackoff << uint(call.attempts-1)
		backoffStart := p.tracer.Now()
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-p.stopTicker:
			timer.Stop()
		}
		if call.trace != 0 {
			p.tracer.Record(obs.Span{
				Trace: call.trace, Name: obs.SpanRetryBackoff, Fn: f.name,
				Attempt: call.attempts, Start: backoffStart, End: p.tracer.Now(),
			})
		}
	}
	if call.ctx.Err() != nil {
		// The caller's context ended during the backoff: drop the retry
		// instead of re-batching a call nobody is waiting for. The call
		// is abandoned, not recycled (see pool.go).
		p.ctr.canceled.Add(1)
		if p.logOn(slog.LevelDebug) {
			p.logger.Debug("canceled retry dropped", "fn", f.name, "trace", call.trace)
		}
		return
	}
	if p.cfg.Mode == ModeBatch {
		f.mu.Lock()
		if !p.closed.Load() {
			p.enqueueLocked(f, call)
			if f.ctrl != nil {
				// Ride the adaptive window machinery without skewing the
				// arrival-rate estimate (EnsureOpen, not Arrive).
				d := f.ctrl.EnsureOpen(f.name, time.Since(p.epoch))
				if d.Action == dispatch.ActionEarlyClose {
					p.ctr.earlyCloses.Add(1)
					f.deadline = time.Time{}
					cg := p.claimPendingLocked(f)
					if cg != nil {
						p.recordWindowSpans(f, cg.calls, d.Window, d.Action.String())
					}
					f.mu.Unlock()
					if cg != nil {
						p.runGroup(f, cg.calls)
						putGroup(cg)
					}
					return
				}
				if f.deadline.IsZero() {
					f.deadline = p.epoch.Add(d.Deadline)
					p.kickLoop()
				}
			}
			f.mu.Unlock()
			return
		}
		f.mu.Unlock()
	}
	// Vanilla mode, or the platform is draining: run the attempt now.
	cg := getGroup(1)
	cg.calls = append(cg.calls, call)
	p.runGroup(f, cg.calls)
	putGroup(cg)
}

// panicError is a recovered handler panic; its message keeps the
// "handler panicked" shape handlers' callers rely on while letting the
// platform classify panics apart from ordinary errors.
type panicError struct{ v any }

// Error implements error.
func (e panicError) Error() string { return fmt.Sprintf("handler panicked: %v", e.v) }

// safeInvoke runs a handler, converting a panic into an error so one
// misbehaving function cannot take down the whole batch (a real container
// would crash alone; our containers are goroutines).
func safeInvoke(h Handler, ctx context.Context, inv *Invocation) (value any, err error) {
	defer func() {
		if r := recover(); r != nil {
			value = nil
			err = panicError{v: r}
		}
	}()
	return h(ctx, inv)
}

// Functions lists the registered function names, sorted.
func (p *Platform) Functions() []string {
	m := p.fnsAll()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the platform counters, folding in retired
// and live containers' multiplexer statistics.
func (p *Platform) Stats() Stats {
	st := Stats{
		Submitted:            p.ctr.submitted.Load(),
		Canceled:             p.ctr.canceled.Load(),
		Invocations:          p.ctr.invocations.Load(),
		Failures:             p.ctr.failures.Load(),
		Retries:              p.ctr.retries.Load(),
		Timeouts:             p.ctr.timeouts.Load(),
		Panics:               p.ctr.panics.Load(),
		Crashes:              p.ctr.crashes.Load(),
		BootFailures:         p.ctr.bootFailures.Load(),
		Groups:               p.ctr.groups.Load(),
		FastPathDispatches:   p.ctr.fastPathDispatches.Load(),
		EarlyCloses:          p.ctr.earlyCloses.Load(),
		WindowDispatches:     p.ctr.windowDispatches.Load(),
		DispatchWindowMicros: p.ctr.dispatchWindowMicros.Load(),
		ContainersCreated:    p.ctr.containersCreated.Load(),
		WarmStarts:           p.ctr.warmStarts.Load(),
		LiveContainers:       int(p.ctr.liveContainers.Load()),
	}
	p.mu.Lock()
	st.Multiplexer = p.retired
	p.mu.Unlock()
	for _, f := range p.fnsAll() {
		f.mu.Lock()
		for _, c := range f.all {
			if c.resources != nil && c.resources.cache != nil {
				st.Multiplexer.Add(c.resources.cache.Stats())
			}
		}
		f.mu.Unlock()
	}
	return st
}

// Close flushes pending windows, waits for in-flight groups and retries
// to drain, and stops the dispatcher. Invocations submitted after Close
// fail. With DrainTimeout set, Close gives up once the deadline passes
// and reports an error (work may still be in flight).
func (p *Platform) Close() error {
	ctx := context.Background()
	if p.cfg.DrainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.DrainTimeout)
		defer cancel()
	}
	return p.CloseContext(ctx)
}

// CloseContext is Close bounded by the caller's context instead of
// DrainTimeout, so a server shutdown can share one deadline between
// http.Server.Shutdown and the platform drain (cmd/faasgate) rather than
// racing two independent timeouts. A done context gives up the wait and
// reports an error; in-flight work may still be draining behind it.
func (p *Platform) CloseContext(ctx context.Context) error {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return nil
	}
	p.closed.Store(true)
	p.mu.Unlock()
	// Shard handshake: acquire and release every function's mutex once.
	// Any Invoke or retry settlement that observed closed==false did its
	// wg.Add inside a shard critical section that strictly precedes this
	// handshake, so the Add is ordered before the Wait below; anything
	// acquiring a shard after its handshake sees closed==true and
	// rejects. Registration after the closed store is rejected under
	// p.mu, so this snapshot covers every shard.
	for _, f := range p.fnsAll() {
		f.mu.Lock()
		//lint:ignore SA2001 the empty critical section is the point: it
		// fences in-flight submissions on this shard.
		f.mu.Unlock()
	}
	// Wakes the dispatcher for its final flush and any backoff sleepers,
	// in every mode.
	close(p.stopTicker)
	if ctx.Done() == nil {
		p.wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("platform: close: drain exceeded its deadline: %w", ctx.Err())
	}
}
