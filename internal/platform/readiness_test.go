package platform

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"faasbatch/internal/httpapi"
)

// getHealth reads /healthz and decodes the wire body.
func getHealth(t *testing.T, url string) (int, httpapi.HealthResponse) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var body httpapi.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	return resp.StatusCode, body
}

// TestHealthzReadinessLifecycle walks /healthz through the full worker
// life cycle: 503 "unready" before registration completes, 200 "ok"
// after SetReady(true), 503 "draining" once Close begins — the truthful
// signal the routing tier's prober keys off.
func TestHealthzReadinessLifecycle(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.WorkerID = "w-test"
	cfg.Capacity = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(NewHTTPHandler(p))
	defer srv.Close()

	// Fresh platform: not ready yet.
	if p.Ready() {
		t.Fatal("fresh platform reports ready")
	}
	code, body := getHealth(t, srv.URL)
	if code != http.StatusServiceUnavailable || body.Status != httpapi.HealthUnready {
		t.Fatalf("pre-registration: %d %q, want 503 unready", code, body.Status)
	}
	if body.Worker != "w-test" || body.Capacity != 4 {
		t.Fatalf("identity lost: %+v", body)
	}

	// Registration complete.
	p.SetReady(true)
	if !p.Ready() || p.Draining() {
		t.Fatalf("Ready=%v Draining=%v after SetReady", p.Ready(), p.Draining())
	}
	code, body = getHealth(t, srv.URL)
	if code != http.StatusOK || body.Status != httpapi.HealthOK {
		t.Fatalf("ready: %d %q, want 200 ok", code, body.Status)
	}

	// Draining: overrides readiness.
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if p.Ready() || !p.Draining() {
		t.Fatalf("Ready=%v Draining=%v after Close", p.Ready(), p.Draining())
	}
	code, body = getHealth(t, srv.URL)
	if code != http.StatusServiceUnavailable || body.Status != httpapi.HealthDraining {
		t.Fatalf("draining: %d %q, want 503 draining", code, body.Status)
	}

	// SetReady cannot resurrect a draining platform.
	p.SetReady(true)
	if p.Ready() {
		t.Fatal("SetReady(true) resurrected a closed platform")
	}
}

func TestInvokeWorksBeforeReady(t *testing.T) {
	// Readiness gates the routing tier's health probe, not the invoke
	// path: a directly-addressed invocation still runs (the standalone
	// gateway has no registration phase worth failing requests over).
	p := newPlatform(t, quickConfig(ModeBatch))
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "echo", json.RawMessage(`1`)); err != nil {
		t.Fatalf("Invoke before SetReady: %v", err)
	}
}

func TestCloseContextHonoursDeadline(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("hang", func(ctx context.Context, _ *Invocation) (any, error) {
		time.Sleep(300 * time.Millisecond)
		return nil, nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = p.Invoke(context.Background(), "hang", nil)
	}()
	// Let the invocation get submitted before draining.
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err = p.CloseContext(ctx)
	if err == nil {
		t.Fatal("CloseContext beat a 300ms handler with a 1ms deadline")
	}
	if !strings.Contains(err.Error(), "drain exceeded") {
		t.Fatalf("error = %v, want drain-exceeded", err)
	}
	<-done
	// Second close is idempotent and error-free.
	if err := p.CloseContext(context.Background()); err != nil {
		t.Fatalf("second CloseContext: %v", err)
	}
}

func TestCloseContextWaitsWithoutDeadline(t *testing.T) {
	p, err := New(quickConfig(ModeBatch))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = p.Invoke(context.Background(), "echo", json.RawMessage(`1`))
	}()
	time.Sleep(30 * time.Millisecond)
	if err := p.CloseContext(context.Background()); err != nil {
		t.Fatalf("CloseContext: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight invocation never completed")
	}
}

func TestInflightGauge(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if got := p.Inflight(); got != 0 {
		t.Fatalf("idle Inflight = %d", got)
	}
	if _, err := p.Invoke(context.Background(), "echo", json.RawMessage(`1`)); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got := p.Inflight(); got != 0 {
		t.Fatalf("post-completion Inflight = %d", got)
	}
}

func TestConfigRejectsNegativeCapacity(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.Capacity = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative capacity accepted")
	}
}
