package platform

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// adaptiveQuickConfig returns a fast adaptive-dispatch config.
func adaptiveQuickConfig() Config {
	cfg := quickConfig(ModeBatch)
	cfg.AdaptiveDispatch = true
	return cfg
}

// TestVanillaKeepAliveEviction is the regression test for the Vanilla
// eviction bug: eviction used to run only from the batch dispatch loop,
// which Vanilla mode never starts, so idle Vanilla containers outlived
// KeepAlive until Close. Eviction now runs on its own timer in every mode.
func TestVanillaKeepAliveEviction(t *testing.T) {
	cfg := quickConfig(ModeVanilla)
	cfg.KeepAlive = 30 * time.Millisecond
	p := newPlatform(t, cfg)
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "echo", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if p.Stats().LiveContainers != 1 {
		t.Fatalf("LiveContainers = %d, want 1 right after the invocation", p.Stats().LiveContainers)
	}
	deadline := time.After(5 * time.Second)
	for p.Stats().LiveContainers != 0 {
		select {
		case <-deadline:
			t.Fatalf("LiveContainers = %d, want 0 after keep-alive (Vanilla eviction never fired)", p.Stats().LiveContainers)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestCanceledCallNotDispatched is the regression test for the
// cancelled-call bug: a call whose context ended while it waited for its
// window used to be dispatched anyway, executing the handler for a caller
// that had already returned. It is now dropped at window close and
// counted in Stats.Canceled.
func TestCanceledCallNotDispatched(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.DispatchInterval = 60 * time.Millisecond
	p := newPlatform(t, cfg)
	var ran atomic.Int64
	if err := p.Register("count", func(context.Context, *Invocation) (any, error) {
		ran.Add(1)
		return nil, nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Invoke(ctx, "count", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Invoke err = %v, want context.Canceled", err)
	}
	deadline := time.After(5 * time.Second)
	for p.Stats().Canceled != 1 {
		select {
		case <-deadline:
			t.Fatalf("Canceled = %d, want 1 after the window closed", p.Stats().Canceled)
		case <-time.After(5 * time.Millisecond):
		}
	}
	st := p.Stats()
	if ran.Load() != 0 {
		t.Fatalf("handler ran %d times for a canceled caller, want 0", ran.Load())
	}
	if st.Invocations != 0 || st.Groups != 0 {
		t.Fatalf("Invocations = %d, Groups = %d, want 0/0: the canceled call must not dispatch", st.Invocations, st.Groups)
	}
	if got := p.Inflight(); got != 0 {
		t.Fatalf("Inflight = %d, want 0 (Submitted == Invocations + Canceled at quiescence)", got)
	}
}

// TestCanceledRetryNotRebatched: a retry whose caller's context ends
// during the backoff is dropped instead of re-entering a window.
func TestCanceledRetryNotRebatched(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.MaxRetries = 5
	cfg.RetryBackoff = 200 * time.Millisecond
	p := newPlatform(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var attempts atomic.Int64
	if err := p.Register("fail", func(context.Context, *Invocation) (any, error) {
		attempts.Add(1)
		return nil, errors.New("always fails")
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	invokeErr := make(chan error, 1)
	go func() {
		_, err := p.Invoke(ctx, "fail", nil)
		invokeErr <- err
	}()
	// Wait until the first failed attempt has entered its retry backoff,
	// then cancel: the caller walks away mid-backoff.
	deadline := time.After(5 * time.Second)
	for p.Stats().Retries != 1 {
		select {
		case <-deadline:
			t.Fatalf("Retries = %d, want 1", p.Stats().Retries)
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-invokeErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("Invoke err = %v, want context.Canceled", err)
	}
	for p.Stats().Canceled != 1 {
		select {
		case <-deadline:
			t.Fatalf("Canceled = %d, want 1 after the retry backoff", p.Stats().Canceled)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("handler attempts = %d, want 1 (the canceled retry must not run)", got)
	}
}

// TestAdaptiveFastPathLatency: with adaptive dispatch on, a lone
// invocation on an idle platform skips the window wait entirely. The
// acceptance bound is < 5ms; the test allows generous CI slack while
// still being far under the 200ms default window it replaces.
func TestAdaptiveFastPathLatency(t *testing.T) {
	cfg := adaptiveQuickConfig()
	cfg.DispatchInterval = 200 * time.Millisecond
	cfg.ColdStart = 0
	p := newPlatform(t, cfg)
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := p.Invoke(context.Background(), "echo", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Sched > 50*time.Millisecond {
		t.Fatalf("lone arrival Sched = %v, want well under the 200ms window", res.Sched)
	}
	st := p.Stats()
	if st.FastPathDispatches != 1 {
		t.Fatalf("FastPathDispatches = %d, want 1", st.FastPathDispatches)
	}
	if st.DispatchWindowMicros == 0 {
		t.Fatal("DispatchWindowMicros = 0, want the chosen window gauge set")
	}
}

// TestAdaptiveConcurrentBurstBatches: concurrent arrivals still group
// under adaptive dispatch, and a MaxGroupSize cap closes windows early.
func TestAdaptiveConcurrentBurstBatches(t *testing.T) {
	cfg := adaptiveQuickConfig()
	cfg.ColdStart = 5 * time.Millisecond
	cfg.MaxGroupSize = 4
	p := newPlatform(t, cfg)
	block := make(chan struct{})
	if err := p.Register("echo", func(ctx context.Context, inv *Invocation) (any, error) {
		<-block
		return echo(ctx, inv)
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "echo", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	// Let the arrivals pile up against the blocked handler, then release.
	time.Sleep(50 * time.Millisecond)
	close(block)
	wg.Wait()
	st := p.Stats()
	if st.Invocations != n {
		t.Fatalf("Invocations = %d, want %d", st.Invocations, n)
	}
	if st.EarlyCloses == 0 {
		t.Fatal("EarlyCloses = 0, want > 0 with 16 concurrent arrivals and a cap of 4")
	}
}

// TestAdaptiveConfigValidation: bad adaptive knobs are rejected.
func TestAdaptiveConfigValidation(t *testing.T) {
	cfg := adaptiveQuickConfig()
	cfg.MinInterval = 300 * time.Millisecond // above the 200ms default cap
	cfg.MaxInterval = 200 * time.Millisecond
	if _, err := New(cfg); err == nil {
		t.Error("min interval above max accepted")
	}
	cfg = adaptiveQuickConfig()
	cfg.MinInterval = -time.Millisecond
	if _, err := New(cfg); err == nil {
		t.Error("negative min interval accepted")
	}
	cfg = quickConfig(ModeBatch)
	cfg.MaxGroupSize = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative max group size accepted")
	}
}

// TestAdaptiveCloseRace stresses Close racing the adaptive window loop
// mid-window (run with -race): invocations stream in while the platform
// tears down; every accepted invocation must still settle.
func TestAdaptiveCloseRace(t *testing.T) {
	cfg := adaptiveQuickConfig()
	cfg.ColdStart = time.Millisecond
	cfg.MinInterval = time.Millisecond
	cfg.MaxInterval = 5 * time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Errors are expected once Close lands; the race detector
				// is the assertion here.
				if _, err := p.Invoke(context.Background(), "echo", nil); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	st := p.Stats()
	if got := st.Submitted - st.Invocations - st.Canceled; got != 0 {
		t.Fatalf("%d invocations unaccounted for after Close", got)
	}
}
