package platform

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"faasbatch/internal/httpapi"
	"faasbatch/internal/obs"
	"faasbatch/internal/slo"
)

// numericStatPaths walks a Stats value by reflection and returns the
// dot-separated path of every numeric field, nested structs included.
func numericStatPaths(t reflect.Type, prefix string) []string {
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		switch f.Type.Kind() {
		case reflect.Struct:
			out = append(out, numericStatPaths(f.Type, path)...)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			out = append(out, path)
		}
	}
	return out
}

// TestMetricsConformance proves that every numeric Stats field — found by
// reflection, so new fields cannot silently skip /metrics — is exported
// with HELP, TYPE and a sample line in the Prometheus text output.
func TestMetricsConformance(t *testing.T) {
	paths := numericStatPaths(reflect.TypeOf(Stats{}), "")
	if len(paths) == 0 {
		t.Fatal("no numeric Stats fields found")
	}
	exported := make(map[string]statExport, len(statExports))
	for _, ex := range statExports {
		if ex.typ != "counter" && ex.typ != "gauge" {
			t.Errorf("statExports[%s]: bad type %q", ex.path, ex.typ)
		}
		if ex.help == "" {
			t.Errorf("statExports[%s]: missing help", ex.path)
		}
		exported[ex.path] = ex
	}
	for _, path := range paths {
		if _, ok := exported[path]; !ok {
			t.Errorf("Stats field %s has no statExports entry", path)
		}
		delete(exported, path)
	}
	for path := range exported {
		t.Errorf("statExports entry %s matches no Stats field", path)
	}

	_, srv := newHTTPServer(t)
	if r, _ := postInvoke(t, srv.URL, httpapi.InvokeRequest{Fn: "double", Payload: json.RawMessage("5")}); r.StatusCode != http.StatusOK {
		t.Fatalf("invoke status = %d", r.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	out := string(body)
	for _, ex := range statExports {
		for _, want := range []string{
			fmt.Sprintf("# HELP %s %s\n", ex.name, ex.help),
			fmt.Sprintf("# TYPE %s %s\n", ex.name, ex.typ),
			"\n" + ex.name + " ",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
	// Histograms: per-function latency components and the group size.
	for _, want := range []string{
		"# TYPE faasbatch_latency_seconds histogram",
		`faasbatch_latency_seconds_bucket{fn="double",component="execution",le="+Inf"} 1`,
		`faasbatch_latency_seconds_count{fn="double",component="end-to-end"} 1`,
		"# TYPE faasbatch_group_size histogram",
		"faasbatch_group_size_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Runtime gauges: the full obs.RuntimeExports set, each with HELP,
	// TYPE and a sample line.
	for _, ex := range obs.RuntimeExports {
		name := "faasbatch_" + ex.Suffix
		for _, want := range []string{
			fmt.Sprintf("# HELP %s %s\n", name, ex.Help),
			fmt.Sprintf("# TYPE %s %s\n", name, ex.Typ),
			"\n" + name + " ",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
}

// tracedPlatform builds a platform with an always-sampling wall tracer.
func tracedPlatform(t *testing.T) (*Platform, *obs.Tracer) {
	t.Helper()
	tracer, err := obs.NewWallTracer(1024, 1)
	if err != nil {
		t.Fatalf("NewWallTracer: %v", err)
	}
	cfg := quickConfig(ModeBatch)
	cfg.Tracer = tracer
	return newPlatform(t, cfg), tracer
}

// TestTraceRoundTripLive checks that a live invocation's spans reconstruct
// its reported four-component latency decomposition exactly: the spans are
// stamped from the same clock readings the Result is computed from.
func TestTraceRoundTripLive(t *testing.T) {
	p, tracer := tracedPlatform(t)
	if err := p.Register("sleepy", func(_ context.Context, _ *Invocation) (any, error) {
		time.Sleep(5 * time.Millisecond)
		return "ok", nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := p.Invoke(context.Background(), "sleepy", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.TraceID == 0 {
		t.Fatal("traced invocation has zero TraceID")
	}

	byName := map[string]obs.Span{}
	for _, s := range tracer.Snapshot() {
		if s.Trace == res.TraceID {
			byName[s.Name] = s
		}
	}
	want := map[string]time.Duration{
		obs.SpanScheduling: res.Sched,
		obs.SpanColdStart:  res.ColdStart,
		obs.SpanQueuing:    res.Queue,
		obs.SpanExecution:  res.Exec,
	}
	var sum time.Duration
	for name, dur := range want {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("trace %d missing %s span (have %v)", res.TraceID, name, byName)
		}
		if s.Dur() != dur {
			t.Errorf("%s span = %v, Result reports %v", name, s.Dur(), dur)
		}
		if s.Fn != "sleepy" || s.Container != res.ContainerID {
			t.Errorf("%s span labels = fn %q container %q", name, s.Fn, s.Container)
		}
		sum += s.Dur()
	}
	if sum != res.Total() {
		t.Errorf("span sum %v != Total %v", sum, res.Total())
	}
	// The spans tile the invocation: each starts where the previous ended.
	order := []string{obs.SpanScheduling, obs.SpanColdStart, obs.SpanQueuing, obs.SpanExecution}
	for i := 1; i < len(order); i++ {
		prev, cur := byName[order[i-1]], byName[order[i]]
		if cur.Start != prev.End {
			t.Errorf("%s starts at %v, %s ends at %v", order[i], cur.Start, order[i-1], prev.End)
		}
	}
}

// TestInvokeAcceptsTraceparent checks the gateway joins a caller-supplied
// trace: a W3C traceparent header on /invoke makes the worker record its
// spans under the remote trace ID and echo the header on the response.
func TestInvokeAcceptsTraceparent(t *testing.T) {
	p, tracer := tracedPlatform(t)
	if err := p.Register("noop", func(_ context.Context, _ *Invocation) (any, error) { return "ok", nil }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	p.SetReady(true)
	srv := httptest.NewServer(NewHTTPHandler(p))
	t.Cleanup(srv.Close)

	const parent = uint64(0xfeedface12345678)
	body, _ := json.Marshal(httpapi.InvokeRequest{Fn: "noop"})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/invoke", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceParentHeader, obs.FormatTraceParent(parent))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceParentHeader); got != obs.FormatTraceParent(parent) {
		t.Fatalf("response traceparent = %q, want echo of %q", got, obs.FormatTraceParent(parent))
	}
	spans := 0
	for _, s := range tracer.Snapshot() {
		if s.Trace == parent {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("no worker spans adopted remote trace %x; have %v", parent, tracer.Snapshot())
	}

	// A malformed header is ignored per the W3C processing model: the
	// invocation succeeds on a locally minted trace.
	req2, _ := http.NewRequest(http.MethodPost, srv.URL+"/invoke", strings.NewReader(string(body)))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(obs.TraceParentHeader, "00-bogus")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("POST /invoke (malformed): %v", err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("malformed-header status = %d, want 200", resp2.StatusCode)
	}
	echo := resp2.Header.Get(obs.TraceParentHeader)
	if id, ok := obs.ParseTraceParent(echo); !ok || id == parent {
		t.Fatalf("malformed inbound header produced traceparent %q (parsed %x)", echo, id)
	}
}

// TestSLOGaugesOnMetrics checks a platform configured with SLO objectives
// exposes burn-rate gauges on /metrics, and that a latency storm flips the
// breached gauge to 1.
func TestSLOGaugesOnMetrics(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.SLOs = []slo.Objective{{Function: "slow", Quantile: 0.99, Target: time.Millisecond, MaxBurn: 2}}
	cfg.SLOWindows = slo.ScaledWindows(2 * time.Second)
	p := newPlatform(t, cfg)
	if err := p.Register("slow", func(_ context.Context, _ *Invocation) (any, error) {
		time.Sleep(5 * time.Millisecond)
		return "ok", nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := p.Invoke(context.Background(), "slow", nil); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
	}
	p.SetReady(true)
	srv := httptest.NewServer(NewHTTPHandler(p))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, _ := io.ReadAll(resp.Body)
	out := string(raw)
	for _, want := range []string{
		"# TYPE faasbatch_slo_fast_burn gauge",
		"# TYPE faasbatch_slo_slow_burn gauge",
		"# TYPE faasbatch_slo_breached gauge",
		`faasbatch_slo_breached{fn="slow",quantile="0.99"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	st := p.SLOStatuses()
	if len(st) != 1 || !st[0].Breached {
		t.Fatalf("SLOStatuses = %+v, want one breached status", st)
	}
}

// TestDebugTracesEndpoint checks /debug/traces serves Chrome trace JSON,
// and stays 200 with an empty trace when tracing is disabled.
func TestDebugTracesEndpoint(t *testing.T) {
	p, _ := tracedPlatform(t)
	if err := p.Register("noop", func(_ context.Context, _ *Invocation) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "noop", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	srv := httptest.NewServer(NewHTTPHandler(p))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatalf("GET /debug/traces: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if len(trace.TraceEvents) < 3 {
		t.Fatalf("traceEvents = %d, want at least scheduling+queuing+execution", len(trace.TraceEvents))
	}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
	}

	// Untraced platform: the endpoint still answers with an empty trace.
	plain := newPlatform(t, quickConfig(ModeBatch))
	psrv := httptest.NewServer(NewHTTPHandler(plain))
	t.Cleanup(psrv.Close)
	r2, err := http.Get(psrv.URL + "/debug/traces")
	if err != nil {
		t.Fatalf("GET /debug/traces (untraced): %v", err)
	}
	defer func() { _ = r2.Body.Close() }()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("untraced status = %d", r2.StatusCode)
	}
	var empty struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&empty); err != nil {
		t.Fatalf("decode empty trace: %v", err)
	}
	if len(empty.TraceEvents) != 0 {
		t.Fatalf("untraced platform exported %d events", len(empty.TraceEvents))
	}
}

// TestRetrySpansShareTrace checks that a retried invocation's attempts all
// land on one trace, including the retry-backoff span.
func TestRetrySpansShareTrace(t *testing.T) {
	tracer, err := obs.NewWallTracer(1024, 1)
	if err != nil {
		t.Fatalf("NewWallTracer: %v", err)
	}
	cfg := quickConfig(ModeBatch)
	cfg.Tracer = tracer
	cfg.MaxRetries = 1
	p := newPlatform(t, cfg)
	calls := 0
	if err := p.Register("flaky", func(_ context.Context, _ *Invocation) (any, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient")
		}
		return "ok", nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := p.Invoke(context.Background(), "flaky", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
	attempts := map[int]bool{}
	for _, s := range tracer.Snapshot() {
		if s.Trace != res.TraceID {
			continue
		}
		if s.Name == obs.SpanExecution {
			attempts[s.Attempt] = true
		}
	}
	if !attempts[1] || !attempts[2] {
		t.Fatalf("execution attempts on trace = %v, want both 1 and 2", attempts)
	}
}

// BenchmarkInvoke measures the per-invocation cost with tracing disabled
// (the default) and enabled, to keep the disabled path honest.
func BenchmarkInvoke(b *testing.B) {
	for _, bc := range []struct {
		name   string
		tracer bool
	}{{"tracing-off", false}, {"tracing-on", true}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Mode = ModeBatch
			cfg.DispatchInterval = time.Millisecond
			cfg.ColdStart = 0
			if bc.tracer {
				tr, err := obs.NewWallTracer(1<<16, 1)
				if err != nil {
					b.Fatalf("NewWallTracer: %v", err)
				}
				cfg.Tracer = tr
			}
			p, err := New(cfg)
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			defer func() { _ = p.Close() }()
			if err := p.Register("noop", func(_ context.Context, _ *Invocation) (any, error) { return nil, nil }); err != nil {
				b.Fatalf("Register: %v", err)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Invoke(ctx, "noop", nil); err != nil {
					b.Fatalf("Invoke: %v", err)
				}
			}
		})
	}
}
