package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/httpapi"
	"faasbatch/internal/multiplex"
)

// TestResourcesGetContextLifecycle drives the redesigned handler API
// end to end through a real invocation: miss, hit, invalidation and the
// rebuild after it.
func TestResourcesGetContextLifecycle(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	var builds atomic.Int64
	var outcomes []Outcome
	err := p.Register("fn", func(ctx context.Context, inv *Invocation) (any, error) {
		build := func() (any, int64, error) { builds.Add(1); return "client", 8, nil }
		for i := 0; i < 2; i++ {
			v, out, err := inv.Resources.GetContext(ctx, "s3", "bucket", build)
			if err != nil || v != "client" {
				return nil, fmt.Errorf("get %d: %v, %v, %v", i, v, out, err)
			}
			outcomes = append(outcomes, out)
		}
		if !inv.Resources.Invalidate("s3", "bucket") {
			return nil, errors.New("invalidate reported false")
		}
		v, out, err := inv.Resources.GetContext(ctx, "s3", "bucket", build)
		if err != nil || v != "client" {
			return nil, fmt.Errorf("post-invalidate get: %v, %v, %v", v, out, err)
		}
		outcomes = append(outcomes, out)
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	want := []Outcome{OutcomeMiss, OutcomeHit, OutcomeMiss}
	if len(outcomes) != len(want) {
		t.Fatalf("outcomes = %v", outcomes)
	}
	for i, o := range want {
		if outcomes[i] != o {
			t.Fatalf("outcomes = %v, want %v", outcomes, want)
		}
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (one initial, one after invalidation)", builds.Load())
	}
	st := p.Stats()
	if st.Multiplexer.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Multiplexer.Invalidations)
	}
}

// TestResourcesNegativeCacheUnderChaos drives chaos-injected build
// failures into the negative cache: the second creation inside the
// backoff window is denied without running the constructor, with both
// typed sentinels visible through errors.Is.
func TestResourcesNegativeCacheUnderChaos(t *testing.T) {
	// Rates must stay below 1; with a fixed seed the first draw is
	// deterministic, so 0.999 reliably injects the first build failure.
	inj, err := chaos.New(chaos.Config{
		Seed:  1,
		Rates: map[chaos.Kind]float64{chaos.StorageFailure: 0.999},
	})
	if err != nil {
		t.Fatalf("chaos.New: %v", err)
	}
	cfg := quickConfig(ModeBatch)
	cfg.Chaos = inj
	cfg.Multiplexer = multiplex.Config{NegativeBackoff: time.Minute}
	p := newPlatform(t, cfg)
	var denied error
	var calls atomic.Int64
	err = p.Register("fn", func(ctx context.Context, inv *Invocation) (any, error) {
		build := func() (any, int64, error) { calls.Add(1); return "client", 1, nil }
		_, out, err := inv.Resources.GetContext(ctx, "s3", "bucket", build)
		if out != OutcomeError || err == nil {
			return nil, fmt.Errorf("first get = %v, %v; want injected failure", out, err)
		}
		_, out, err = inv.Resources.GetContext(ctx, "s3", "bucket", build)
		if out != OutcomeNegative {
			return nil, fmt.Errorf("second get outcome = %v, want negative", out)
		}
		denied = err
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !errors.Is(denied, ErrBuildFailed) {
		t.Fatalf("denial err = %v, want ErrBuildFailed in chain", denied)
	}
	if calls.Load() != 0 {
		t.Fatalf("constructor ran %d times despite 100%% injected failure", calls.Load())
	}
	st := p.Stats()
	if st.Multiplexer.NegativeHits != 1 || st.Multiplexer.BuildFailures != 1 {
		t.Fatalf("multiplexer stats = %+v", st.Multiplexer)
	}
}

// closerClient records whether the cache's lifecycle hook closed it.
type closerClient struct{ closed *atomic.Int64 }

func (c *closerClient) Close() error { c.closed.Add(1); return nil }

// TestEvictedClientsAreClosed bounds the cache at one entry: building a
// second client evicts the first, whose io.Closer must run so sockets
// release deterministically.
func TestEvictedClientsAreClosed(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.Multiplexer = multiplex.Config{MaxEntries: 1}
	p := newPlatform(t, cfg)
	var closed atomic.Int64
	err := p.Register("fn", func(ctx context.Context, inv *Invocation) (any, error) {
		for _, key := range []string{"a", "b"} {
			_, _, err := inv.Resources.GetContext(ctx, "s3", key, func() (any, int64, error) {
				return &closerClient{closed: &closed}, 4, nil
			})
			if err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if closed.Load() != 1 {
		t.Fatalf("closed = %d, want 1 (the LRU-evicted client)", closed.Load())
	}
	if ev := p.Stats().Multiplexer.Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
}

// TestBorrowedClientClosesAfterHandlerReturns: a client evicted while
// the handler that fetched it is still running must not be closed
// mid-use — the close fires after the handler returns (borrow tracking),
// and the handler can keep using the evicted client meanwhile.
func TestBorrowedClientClosesAfterHandlerReturns(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.Multiplexer = multiplex.Config{MaxEntries: 1}
	p := newPlatform(t, cfg)
	var closedA, closedB atomic.Int64
	err := p.Register("fn", func(ctx context.Context, inv *Invocation) (any, error) {
		a, _, err := inv.Resources.GetContext(ctx, "s3", "a", func() (any, int64, error) {
			return &closerClient{closed: &closedA}, 4, nil
		})
		if err != nil {
			return nil, err
		}
		// Building B overflows the 1-entry cache and evicts A, which this
		// handler still holds.
		if _, _, err := inv.Resources.GetContext(ctx, "s3", "b", func() (any, int64, error) {
			return &closerClient{closed: &closedB}, 4, nil
		}); err != nil {
			return nil, err
		}
		if n := closedA.Load(); n != 0 {
			return nil, fmt.Errorf("client A closed %d times while the handler still uses it", n)
		}
		// A is evicted but must remain usable for the rest of the
		// invocation.
		if a.(*closerClient).closed == nil {
			return nil, errors.New("client A unusable")
		}
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if n := closedA.Load(); n != 1 {
		t.Fatalf("client A closed %d times after the invocation, want 1", n)
	}
	if n := closedB.Load(); n != 0 {
		t.Fatalf("client B closed %d times while cached, want 0", n)
	}
}

// TestDeprecatedGetStillWorks locks the compatibility wrapper: the
// boolean face reports cached-ness exactly as the seed API did.
func TestDeprecatedGetStillWorks(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	err := p.Register("fn", func(_ context.Context, inv *Invocation) (any, error) {
		build := func() (any, int64, error) { return "v", 1, nil }
		if _, cached, err := inv.Resources.Get("s3", "k", build); err != nil || cached {
			return nil, fmt.Errorf("first Get cached=%v err=%v", cached, err)
		}
		if _, cached, err := inv.Resources.Get("s3", "k", build); err != nil || !cached {
			return nil, fmt.Errorf("second Get cached=%v err=%v", cached, err)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
}

// TestHTTPV1RouteParity proves the /v1 prefix serves the same surface as
// the legacy paths: /invoke and /v1/invoke return identical responses
// for the same request (modulo per-call latency measurements), and every
// versioned read endpoint is live.
func TestHTTPV1RouteParity(t *testing.T) {
	_, srv := newHTTPServer(t)
	req := httpapi.InvokeRequest{Fn: "double", Payload: json.RawMessage("21")}
	body, _ := json.Marshal(req)

	invoke := func(path string) httpapi.InvokeResponse {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s status = %d", path, resp.StatusCode)
		}
		var out httpapi.InvokeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		return out
	}
	legacy := invoke("/invoke")
	v1 := invoke("/v1/invoke")
	// Latency and container identity vary per call; the API payload
	// semantics must not.
	legacy.Latency, v1.Latency = httpapi.Latency{}, httpapi.Latency{}
	legacy.ContainerID, v1.ContainerID = "", ""
	legacy.Cold, v1.Cold = false, false
	lj, _ := json.Marshal(legacy)
	vj, _ := json.Marshal(v1)
	if !bytes.Equal(lj, vj) {
		t.Fatalf("/invoke and /v1/invoke disagree:\n%s\n%s", lj, vj)
	}
	if string(v1.Result) != "42" {
		t.Fatalf("/v1/invoke result = %s", v1.Result)
	}

	for _, path := range []string{"/v1/stats", "/v1/metrics", "/v1/functions", "/v1/debug/traces", "/v1/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
	}

	// /stats and /v1/stats render the same counters.
	get := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return b
	}
	if a, b := get("/stats"), get("/v1/stats"); !bytes.Equal(a, b) {
		t.Fatalf("/stats and /v1/stats disagree:\n%s\n%s", a, b)
	}
}

// TestStatsResponseCarriesCacheTelemetry exercises the extended /stats
// cache fields end to end.
func TestStatsResponseCarriesCacheTelemetry(t *testing.T) {
	_, srv := newHTTPServer(t)
	resp, _ := postInvoke(t, srv.URL, httpapi.InvokeRequest{Fn: "double", Payload: json.RawMessage("1")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke status = %d", resp.StatusCode)
	}
	r, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer r.Body.Close()
	var st httpapi.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.CacheShards <= 0 {
		t.Fatalf("CacheShards = %d, want > 0 while a container cache is live", st.CacheShards)
	}
}
