package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"faasbatch/internal/httpapi"
)

func newHTTPServer(t *testing.T) (*Platform, *httptest.Server) {
	t.Helper()
	p := newPlatform(t, quickConfig(ModeBatch))
	err := p.Register("double", func(_ context.Context, inv *Invocation) (any, error) {
		var n int
		if err := json.Unmarshal(inv.Payload, &n); err != nil {
			return nil, err
		}
		return 2 * n, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	p.SetReady(true)
	srv := httptest.NewServer(NewHTTPHandler(p))
	t.Cleanup(srv.Close)
	return p, srv
}

func postInvoke(t *testing.T, url string, req httpapi.InvokeRequest) (*http.Response, httpapi.InvokeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/invoke", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /invoke: %v", err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	var out httpapi.InvokeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, out
}

func TestHTTPInvoke(t *testing.T) {
	_, srv := newHTTPServer(t)
	resp, out := postInvoke(t, srv.URL, httpapi.InvokeRequest{Fn: "double", Payload: json.RawMessage("21")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if string(out.Result) != "42" {
		t.Fatalf("result = %s, want 42", out.Result)
	}
	if out.Fn != "double" || out.ContainerID == "" {
		t.Fatalf("response = %+v", out)
	}
	if !out.Cold || out.Latency.ColdMillis <= 0 {
		t.Errorf("first call should report cold start: %+v", out.Latency)
	}
	if out.Latency.TotalMillis <= 0 {
		t.Errorf("latency = %+v", out.Latency)
	}
	if out.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", out.Attempts)
	}
	if out.Latency.QueueMillis < 0 {
		t.Errorf("QueueMillis = %v, want >= 0", out.Latency.QueueMillis)
	}
	// Each component is truncated to whole microseconds independently, so
	// the reported total may drift from the sum by a few microseconds.
	sum := out.Latency.SchedMillis + out.Latency.ColdMillis + out.Latency.QueueMillis + out.Latency.ExecMillis
	if diff := out.Latency.TotalMillis - sum; diff > 0.005 || diff < -0.005 {
		t.Errorf("TotalMillis %v != component sum %v", out.Latency.TotalMillis, sum)
	}
}

func TestHTTPInvokeErrors(t *testing.T) {
	_, srv := newHTTPServer(t)
	// Unknown function.
	resp, _ := postInvoke(t, srv.URL, httpapi.InvokeRequest{Fn: "nope"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unknown fn status = %d, want 502", resp.StatusCode)
	}
	// Missing fn.
	resp, _ = postInvoke(t, srv.URL, httpapi.InvokeRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing fn status = %d, want 400", resp.StatusCode)
	}
	// Bad JSON.
	r, err := http.Post(srv.URL+"/invoke", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer func() { _ = r.Body.Close() }()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %d, want 400", r.StatusCode)
	}
	// Wrong method.
	g, err := http.Get(srv.URL + "/invoke")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer func() { _ = g.Body.Close() }()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /invoke status = %d, want 405", g.StatusCode)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	_, srv := newHTTPServer(t)
	// Fire a batch of concurrent invocations.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postInvoke(t, srv.URL, httpapi.InvokeRequest{Fn: "double", Payload: json.RawMessage("1")})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("invoke status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st httpapi.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Invocations != 6 {
		t.Errorf("Invocations = %d, want 6", st.Invocations)
	}
	if st.ContainersCreated == 0 || st.Groups == 0 {
		t.Errorf("stats = %+v", st)
	}

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer func() { _ = h.Body.Close() }()
	if h.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", h.StatusCode)
	}
	// Stats endpoint rejects POST.
	sp, err := http.Post(srv.URL+"/stats", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("POST /stats: %v", err)
	}
	defer func() { _ = sp.Body.Close() }()
	if sp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status = %d, want 405", sp.StatusCode)
	}
}

func TestHTTPConcurrentInvocationsBatch(t *testing.T) {
	p, srv := newHTTPServer(t)
	const n = 10
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postInvoke(t, srv.URL, httpapi.InvokeRequest{Fn: "double", Payload: json.RawMessage("3")})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("batch took %v", elapsed)
	}
	if st := p.Stats(); st.ContainersCreated > 3 {
		t.Errorf("ContainersCreated = %d for one burst, want <= 3", st.ContainersCreated)
	}
}

func TestHTTPFunctionsEndpoint(t *testing.T) {
	_, srv := newHTTPServer(t)
	resp, err := http.Get(srv.URL + "/functions")
	if err != nil {
		t.Fatalf("GET /functions: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var fns []string
	if err := json.NewDecoder(resp.Body).Decode(&fns); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(fns) != 1 || fns[0] != "double" {
		t.Fatalf("functions = %v", fns)
	}
	pr, err := http.Post(srv.URL+"/functions", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /functions: %v", err)
	}
	defer func() { _ = pr.Body.Close() }()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /functions status = %d, want 405", pr.StatusCode)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	_, srv := newHTTPServer(t)
	if r, _ := postInvoke(t, srv.URL, httpapi.InvokeRequest{Fn: "double", Payload: json.RawMessage("2")}); r.StatusCode != http.StatusOK {
		t.Fatalf("invoke status = %d", r.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	out := string(body)
	for _, want := range []string{
		"faasbatch_invocations_total 1",
		"faasbatch_containers_created_total 1",
		"faasbatch_live_containers",
		"# TYPE faasbatch_groups_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
	pr, err := http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatalf("POST /metrics: %v", err)
	}
	defer func() { _ = pr.Body.Close() }()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d, want 405", pr.StatusCode)
	}
}
