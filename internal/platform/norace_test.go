//go:build !race

package platform

const raceEnabled = false
