package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"faasbatch/internal/httpapi"
)

// NewHTTPHandler exposes a platform over HTTP:
//
//	POST /invoke   — body httpapi.InvokeRequest, reply httpapi.InvokeResponse
//	GET  /stats    — reply httpapi.StatsResponse
//	GET  /healthz  — 200 ok
func NewHTTPHandler(p *Platform) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
			return
		}
		req, err := httpapi.DecodeInvokeRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := p.Invoke(r.Context(), req.Fn, req.Payload)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		value, err := json.Marshal(res.Value)
		if err != nil {
			http.Error(w, fmt.Sprintf("encode result: %v", err), http.StatusInternalServerError)
			return
		}
		writeJSON(w, httpapi.InvokeResponse{
			Fn:          req.Fn,
			Result:      value,
			ContainerID: res.ContainerID,
			Cold:        res.Cold,
			Latency: httpapi.Latency{
				SchedMillis: float64(res.Sched.Microseconds()) / 1000,
				ColdMillis:  float64(res.ColdStart.Microseconds()) / 1000,
				ExecMillis:  float64(res.Exec.Microseconds()) / 1000,
				TotalMillis: float64(res.Total().Microseconds()) / 1000,
			},
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		st := p.Stats()
		writeJSON(w, httpapi.StatsResponse{
			Submitted:         st.Submitted,
			Invocations:       st.Invocations,
			Failures:          st.Failures,
			Retries:           st.Retries,
			Timeouts:          st.Timeouts,
			Panics:            st.Panics,
			Crashes:           st.Crashes,
			BootFailures:      st.BootFailures,
			Groups:            st.Groups,
			ContainersCreated: st.ContainersCreated,
			WarmStarts:        st.WarmStarts,
			LiveContainers:    st.LiveContainers,
			CacheHits:         st.Multiplexer.Hits + st.Multiplexer.Coalesced,
			CacheMisses:       st.Multiplexer.Misses,
			CacheBytesSaved:   st.Multiplexer.BytesSaved,
		})
	})
	mux.HandleFunc("/functions", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, p.Functions())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		st := p.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP faasbatch_invocations_total Completed invocations.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_invocations_total counter\n")
		fmt.Fprintf(w, "faasbatch_invocations_total %d\n", st.Invocations)
		fmt.Fprintf(w, "# HELP faasbatch_groups_total Dispatched window batches.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_groups_total counter\n")
		fmt.Fprintf(w, "faasbatch_groups_total %d\n", st.Groups)
		fmt.Fprintf(w, "# HELP faasbatch_containers_created_total Cold starts.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_containers_created_total counter\n")
		fmt.Fprintf(w, "faasbatch_containers_created_total %d\n", st.ContainersCreated)
		fmt.Fprintf(w, "# HELP faasbatch_warm_starts_total Warm container reuses.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_warm_starts_total counter\n")
		fmt.Fprintf(w, "faasbatch_warm_starts_total %d\n", st.WarmStarts)
		fmt.Fprintf(w, "# HELP faasbatch_live_containers Containers currently alive.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_live_containers gauge\n")
		fmt.Fprintf(w, "faasbatch_live_containers %d\n", st.LiveContainers)
		fmt.Fprintf(w, "# HELP faasbatch_multiplexer_hits_total Resource creations served from cache.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_multiplexer_hits_total counter\n")
		fmt.Fprintf(w, "faasbatch_multiplexer_hits_total %d\n", st.Multiplexer.Hits+st.Multiplexer.Coalesced)
		fmt.Fprintf(w, "# HELP faasbatch_multiplexer_misses_total Resource builds performed.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_multiplexer_misses_total counter\n")
		fmt.Fprintf(w, "faasbatch_multiplexer_misses_total %d\n", st.Multiplexer.Misses)
		fmt.Fprintf(w, "# HELP faasbatch_multiplexer_bytes_saved_total Duplicate client memory avoided.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_multiplexer_bytes_saved_total counter\n")
		fmt.Fprintf(w, "faasbatch_multiplexer_bytes_saved_total %d\n", st.Multiplexer.BytesSaved)
		fmt.Fprintf(w, "# HELP faasbatch_failures_total Invocations that exhausted their retry budget.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_failures_total counter\n")
		fmt.Fprintf(w, "faasbatch_failures_total %d\n", st.Failures)
		fmt.Fprintf(w, "# HELP faasbatch_retries_total Extra execution attempts granted after faults.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_retries_total counter\n")
		fmt.Fprintf(w, "faasbatch_retries_total %d\n", st.Retries)
		fmt.Fprintf(w, "# HELP faasbatch_timeouts_total Handler attempts killed by the invoke deadline.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_timeouts_total counter\n")
		fmt.Fprintf(w, "faasbatch_timeouts_total %d\n", st.Timeouts)
		fmt.Fprintf(w, "# HELP faasbatch_panics_total Recovered handler panics.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_panics_total counter\n")
		fmt.Fprintf(w, "faasbatch_panics_total %d\n", st.Panics)
		fmt.Fprintf(w, "# HELP faasbatch_crashes_total Containers lost mid-batch.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_crashes_total counter\n")
		fmt.Fprintf(w, "faasbatch_crashes_total %d\n", st.Crashes)
		fmt.Fprintf(w, "# HELP faasbatch_boot_failures_total Failed container boots.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_boot_failures_total counter\n")
		fmt.Fprintf(w, "faasbatch_boot_failures_total %d\n", st.BootFailures)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The header is already out; nothing more to do than log-level
		// reporting, which the mini-platform does not carry.
		_ = err
	}
}
