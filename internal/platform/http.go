package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"reflect"
	"strings"
	"sync"

	"faasbatch/internal/httpapi"
	"faasbatch/internal/obs"
)

// respBufPool recycles /invoke response encode buffers. The buffer is
// fully written to the ResponseWriter before being recycled, so nothing
// aliases it after Put.
var respBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// statExport maps one numeric field of Stats — addressed by its
// dot-separated reflection path — onto a Prometheus metric. Keeping the
// mapping as data lets the conformance test walk Stats by reflection and
// prove that every counter reaches /metrics with HELP/TYPE lines.
type statExport struct {
	// path is the field path within Stats (e.g. "Multiplexer.Hits").
	path string
	// name is the Prometheus metric name.
	name string
	// typ is "counter" or "gauge".
	typ string
	// help is the HELP line text.
	help string
}

// statExports enumerates every numeric Stats field. A Stats field without
// an entry here fails TestMetricsConformance.
var statExports = []statExport{
	{"Submitted", "faasbatch_submitted_total", "counter", "Invocations accepted by Invoke."},
	{"Canceled", "faasbatch_canceled_total", "counter", "Invocations dropped before execution because their context ended."},
	{"Invocations", "faasbatch_invocations_total", "counter", "Completed invocations."},
	{"Failures", "faasbatch_failures_total", "counter", "Invocations that exhausted their retry budget."},
	{"Retries", "faasbatch_retries_total", "counter", "Extra execution attempts granted after faults."},
	{"Timeouts", "faasbatch_timeouts_total", "counter", "Handler attempts killed by the invoke deadline."},
	{"Panics", "faasbatch_panics_total", "counter", "Recovered handler panics."},
	{"Crashes", "faasbatch_crashes_total", "counter", "Containers lost mid-batch."},
	{"BootFailures", "faasbatch_boot_failures_total", "counter", "Failed container boots."},
	{"Groups", "faasbatch_groups_total", "counter", "Dispatched window batches."},
	{"FastPathDispatches", "faasbatch_fast_path_dispatches_total", "counter", "Adaptive idle fast-path dispatches (lone arrivals sent straight to a container)."},
	{"EarlyCloses", "faasbatch_early_closes_total", "counter", "Adaptive windows closed early at the group-size cap."},
	{"WindowDispatches", "faasbatch_window_dispatches_total", "counter", "Adaptive windows closed by their deadline."},
	{"DispatchWindowMicros", "faasbatch_dispatch_window_micros", "gauge", "Most recently chosen adaptive dispatch window, in microseconds."},
	{"ContainersCreated", "faasbatch_containers_created_total", "counter", "Cold starts."},
	{"WarmStarts", "faasbatch_warm_starts_total", "counter", "Warm container reuses."},
	{"LiveContainers", "faasbatch_live_containers", "gauge", "Containers currently alive."},
	{"Multiplexer.Hits", "faasbatch_multiplexer_hits_total", "counter", "Resource creations served from a ready cache entry."},
	{"Multiplexer.Coalesced", "faasbatch_multiplexer_coalesced_total", "counter", "Resource creations that waited on an in-flight build."},
	{"Multiplexer.Misses", "faasbatch_multiplexer_misses_total", "counter", "Resource builds performed."},
	{"Multiplexer.LiveInstances", "faasbatch_multiplexer_live_instances", "gauge", "Ready cached instances held."},
	{"Multiplexer.BytesLive", "faasbatch_multiplexer_bytes_live", "gauge", "Memory held by ready cached instances."},
	{"Multiplexer.BytesSaved", "faasbatch_multiplexer_bytes_saved_total", "counter", "Duplicate client memory avoided."},
	{"Multiplexer.Evictions", "faasbatch_multiplexer_evictions_total", "counter", "Cached instances dropped by the LRU bound."},
	{"Multiplexer.Expired", "faasbatch_multiplexer_expired_total", "counter", "Cached instances dropped at lookup after their TTL lapsed."},
	{"Multiplexer.StaleHits", "faasbatch_multiplexer_stale_hits_total", "counter", "Lookups served a stale instance while a background refresh ran."},
	{"Multiplexer.Refreshes", "faasbatch_multiplexer_refreshes_total", "counter", "Background stale-while-revalidate refreshes started."},
	{"Multiplexer.NegativeHits", "faasbatch_multiplexer_negative_hits_total", "counter", "Creations denied by the negative cache during failure backoff."},
	{"Multiplexer.BuildFailures", "faasbatch_multiplexer_build_failures_total", "counter", "Resource builds that returned an error."},
	{"Multiplexer.Invalidations", "faasbatch_multiplexer_invalidations_total", "counter", "Entries dropped by handler-feedback invalidation."},
	{"Multiplexer.Shards", "faasbatch_multiplexer_shards", "gauge", "Lock-striped shards across live container caches."},
	{"Multiplexer.MaxShardOccupancy", "faasbatch_multiplexer_max_shard_occupancy", "gauge", "Ready entries in the fullest shard of any live cache."},
}

// statValue resolves a statExport path against a Stats snapshot.
func statValue(st Stats, path string) (string, error) {
	v := reflect.ValueOf(st)
	for _, part := range strings.Split(path, ".") {
		if v.Kind() != reflect.Struct {
			return "", fmt.Errorf("platform: stats path %q crosses non-struct", path)
		}
		v = v.FieldByName(part)
		if !v.IsValid() {
			return "", fmt.Errorf("platform: stats path %q not found", path)
		}
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return fmt.Sprintf("%d", v.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return fmt.Sprintf("%d", v.Uint()), nil
	default:
		return "", fmt.Errorf("platform: stats path %q is not numeric", path)
	}
}

// NewHTTPHandler exposes a platform over HTTP:
//
//	POST /invoke        — body httpapi.InvokeRequest, reply httpapi.InvokeResponse
//	GET  /stats         — reply httpapi.StatsResponse
//	GET  /metrics       — Prometheus text: counters, gauges and histograms
//	GET  /functions     — registered function names
//	GET  /debug/traces  — Chrome trace-event JSON of the span ring buffer
//	GET  /healthz       — httpapi.HealthResponse readiness + capacity
//	                      report: 200 "ok" when ready, 503 "unready"
//	                      before SetReady(true), 503 "draining" once
//	                      Close begins
//
// Every route is also served under the /v1/ prefix (/v1/invoke,
// /v1/stats, ...) with identical behaviour; the unversioned paths remain
// as aliases for existing clients. See docs/OBSERVABILITY.md.
func NewHTTPHandler(p *Platform) http.Handler {
	mux := http.NewServeMux()
	// handle registers one route under both its legacy unversioned path
	// and the /v1 prefix, so the two surfaces cannot drift apart.
	handle := func(path string, h http.HandlerFunc) {
		mux.HandleFunc(path, h)
		mux.HandleFunc("/v1"+path, h)
	}
	handle("/invoke", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, httpapi.MaxInvokeBodyBytes))
		if err != nil {
			// An oversize body is the client exceeding the advertised cap,
			// not a malformed request: answer 413, per RFC 9110 §15.5.14.
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("request body exceeds %d bytes", int64(httpapi.MaxInvokeBodyBytes)), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
			return
		}
		req, err := httpapi.DecodeInvokeRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// An inbound traceparent header (minted by the router or an
		// external caller) joins this worker's spans to the caller's
		// trace; a malformed header is ignored rather than rejected, per
		// the W3C processing model.
		parent, _ := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
		res, err := p.InvokeWithTrace(r.Context(), req.Fn, req.Payload, parent)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		// Handlers that already return json.RawMessage pass through
		// verbatim: re-marshalling raw JSON would compact and HTML-escape
		// it (and double-encode a handler's pre-encoded reply) for no
		// benefit. Everything else takes the reflective encoder.
		var result json.RawMessage
		switch v := res.Value.(type) {
		case nil:
			// Rendered as result:null by the byte encoder.
		case json.RawMessage:
			if len(v) > 0 && !json.Valid(v) {
				http.Error(w, "encode result: handler returned invalid raw JSON", http.StatusInternalServerError)
				return
			}
			result = v
		default:
			value, err := json.Marshal(res.Value)
			if err != nil {
				http.Error(w, fmt.Sprintf("encode result: %v", err), http.StatusInternalServerError)
				return
			}
			result = value
		}
		if res.TraceID != 0 {
			// Echo the trace identity so callers can correlate the
			// response with their trace even when the worker minted it.
			w.Header().Set(obs.TraceParentHeader, obs.FormatTraceParent(res.TraceID))
		}
		out := httpapi.InvokeResponse{
			Fn:          req.Fn,
			Result:      result,
			ContainerID: res.ContainerID,
			Worker:      p.WorkerID(),
			Cold:        res.Cold,
			Attempts:    res.Attempts,
			Latency: httpapi.Latency{
				SchedMillis: float64(res.Sched.Microseconds()) / 1000,
				ColdMillis:  float64(res.ColdStart.Microseconds()) / 1000,
				QueueMillis: float64(res.Queue.Microseconds()) / 1000,
				ExecMillis:  float64(res.Exec.Microseconds()) / 1000,
				TotalMillis: float64(res.Total().Microseconds()) / 1000,
			},
		}
		// Byte-oriented encode through a pooled buffer: no Encoder, no
		// reflection, no per-response allocation. The non-zero trace ID is
		// stamped by the encoder itself (hex16), replacing the former
		// fmt.Sprintf. The trailing newline matches json.Encoder.Encode.
		bufp := respBufPool.Get().(*[]byte)
		b := httpapi.AppendInvokeResponse((*bufp)[:0], &out, res.TraceID)
		b = append(b, '\n')
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(b); err != nil {
			p.logger.Warn("response write failed", "path", r.URL.Path, "err", err)
		}
		*bufp = b
		respBufPool.Put(bufp)
	})
	handle("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		st := p.Stats()
		writeJSON(p.logger, w, r.URL.Path, httpapi.StatsResponse{
			Submitted:            st.Submitted,
			Canceled:             st.Canceled,
			Invocations:          st.Invocations,
			Failures:             st.Failures,
			Retries:              st.Retries,
			Timeouts:             st.Timeouts,
			Panics:               st.Panics,
			Crashes:              st.Crashes,
			BootFailures:         st.BootFailures,
			Groups:               st.Groups,
			FastPathDispatches:   st.FastPathDispatches,
			EarlyCloses:          st.EarlyCloses,
			WindowDispatches:     st.WindowDispatches,
			DispatchWindowMicros: st.DispatchWindowMicros,
			ContainersCreated:    st.ContainersCreated,
			WarmStarts:           st.WarmStarts,
			LiveContainers:       st.LiveContainers,
			CacheHits:            st.Multiplexer.Hits + st.Multiplexer.Coalesced,
			CacheMisses:          st.Multiplexer.Misses,
			CacheBytesSaved:      st.Multiplexer.BytesSaved,
			CacheStaleHits:       st.Multiplexer.StaleHits,
			CacheNegativeHits:    st.Multiplexer.NegativeHits,
			CacheEvictions:       st.Multiplexer.Evictions + st.Multiplexer.Expired,

			CacheShards:            st.Multiplexer.Shards,
			CacheMaxShardOccupancy: st.Multiplexer.MaxShardOccupancy,
		})
	})
	handle("/functions", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(p.logger, w, r.URL.Path, p.Functions())
	})
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		st := p.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		for _, ex := range statExports {
			val, err := statValue(st, ex.path)
			if err != nil {
				// Unreachable while statExports matches Stats; the
				// conformance test enforces that.
				p.logger.Error("stats export failed", "path", ex.path, "err", err)
				continue
			}
			fmt.Fprintf(w, "# HELP %s %s\n", ex.name, ex.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", ex.name, ex.typ)
			fmt.Fprintf(w, "%s %s\n", ex.name, val)
		}
		obs.WriteRuntimeGauges(w, "faasbatch")
		p.WriteSLOMetrics(w)
		p.metrics.WritePrometheus(w)
	})
	handle("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// A disabled tracer exports an empty trace, keeping the endpoint
		// probe-friendly either way.
		if err := p.tracer.WriteChromeTrace(w); err != nil {
			p.logger.Warn("trace export failed", "path", r.URL.Path, "err", err)
		}
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		health := httpapi.HealthResponse{
			Worker:   p.WorkerID(),
			Capacity: p.Capacity(),
			Inflight: p.Inflight(),
		}
		status := http.StatusOK
		switch {
		case p.Draining():
			// Truthful readiness for the routing tier's prober: a
			// draining worker must stop receiving new windows.
			health.Status = httpapi.HealthDraining
			status = http.StatusServiceUnavailable
		case !p.Ready():
			health.Status = httpapi.HealthUnready
			status = http.StatusServiceUnavailable
		default:
			health.Status = httpapi.HealthOK
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if err := json.NewEncoder(w).Encode(health); err != nil {
			p.logger.Warn("response encode failed", "path", r.URL.Path, "err", err)
		}
	})
	return mux
}

// writeJSON writes v as a JSON response. The response header is already
// out by the time encoding fails, so the error can only be reported
// through the structured log.
func writeJSON(logger *slog.Logger, w http.ResponseWriter, path string, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logger.Warn("response encode failed", "path", path, "err", err)
	}
}
