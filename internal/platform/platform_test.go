package platform

import (
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// quickConfig returns a fast config for tests.
func quickConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.DispatchInterval = 20 * time.Millisecond
	cfg.ColdStart = 10 * time.Millisecond
	cfg.KeepAlive = time.Minute
	return cfg
}

func newPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return p
}

// echo is a trivial handler.
func echo(_ context.Context, inv *Invocation) (any, error) {
	return string(inv.Payload), nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig()
	cfg.DispatchInterval = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero interval accepted in batch mode")
	}
	cfg = DefaultConfig()
	cfg.ColdStart = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative cold start accepted")
	}
	cfg = DefaultConfig()
	cfg.KeepAlive = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero keep-alive accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeBatch.String() != "faasbatch" || ModeVanilla.String() != "vanilla" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode string wrong")
	}
}

func TestRegisterValidation(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	if err := p.Register("", echo); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.Register("f", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if err := p.Register("f", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := p.Register("f", echo); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	if _, err := p.Invoke(context.Background(), "nope", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestBatchInvokeRoundTrip(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := p.Invoke(context.Background(), "echo", json.RawMessage(`"hi"`))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Value != `"hi"` {
		t.Fatalf("Value = %v", res.Value)
	}
	if !res.Cold {
		t.Error("first invocation should be cold")
	}
	if res.ColdStart < 10*time.Millisecond {
		t.Errorf("ColdStart = %v, want >= simulated boot", res.ColdStart)
	}
	// Scheduling latency includes the window wait (<= interval + slack).
	if res.Sched > 100*time.Millisecond {
		t.Errorf("Sched = %v, want window-bounded", res.Sched)
	}
	if res.Queue < 0 {
		t.Errorf("Queue = %v, want >= 0", res.Queue)
	}
	if res.Total() != res.Sched+res.ColdStart+res.Queue+res.Exec {
		t.Error("Total is not the sum of the four components")
	}
}

func TestBatchGroupsConcurrentInvocationsIntoOneContainer(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	var mu sync.Mutex
	containers := map[string]int{}
	err := p.Register("track", func(_ context.Context, inv *Invocation) (any, error) {
		mu.Lock()
		containers[inv.ContainerID]++
		mu.Unlock()
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "track", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// All near-simultaneous invocations must land in very few containers
	// (1 when they fit a single window; allow 2 for window straddling).
	if len(containers) > 2 {
		t.Fatalf("%d invocations spread over %d containers: %v", n, len(containers), containers)
	}
	st := p.Stats()
	if st.Invocations != n {
		t.Fatalf("Invocations = %d, want %d", st.Invocations, n)
	}
	if st.ContainersCreated > 2 {
		t.Fatalf("ContainersCreated = %d, want <= 2", st.ContainersCreated)
	}
}

func TestVanillaSpawnsPerInvocation(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeVanilla))
	block := make(chan struct{})
	err := p.Register("slow", func(context.Context, *Invocation) (any, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "slow", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	// Wait for all containers to be created, then release.
	deadline := time.After(5 * time.Second)
	for {
		if p.Stats().ContainersCreated == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d containers created", p.Stats().ContainersCreated)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(block)
	wg.Wait()
}

func TestWarmReuse(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "echo", nil); err != nil {
		t.Fatalf("first Invoke: %v", err)
	}
	res, err := p.Invoke(context.Background(), "echo", nil)
	if err != nil {
		t.Fatalf("second Invoke: %v", err)
	}
	if res.Cold {
		t.Error("second invocation should be warm")
	}
	st := p.Stats()
	if st.ContainersCreated != 1 || st.WarmStarts == 0 {
		t.Fatalf("stats = %+v, want warm reuse", st)
	}
}

func TestResourceMultiplexerSharesClients(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	var builds atomic.Int64
	err := p.Register("io", func(_ context.Context, inv *Invocation) (any, error) {
		client, cached, err := inv.Resources.Get("s3.client", "bucket:key", func() (any, int64, error) {
			builds.Add(1)
			time.Sleep(5 * time.Millisecond) // construction cost
			return "S3_client", 15 << 20, nil
		})
		if err != nil {
			return nil, err
		}
		if client != "S3_client" {
			return nil, errors.New("wrong client")
		}
		return cached, nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 12
	var wg sync.WaitGroup
	cachedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Invoke(context.Background(), "io", nil)
			if err != nil {
				t.Errorf("Invoke: %v", err)
				return
			}
			if res.Value == true {
				cachedCount.Add(1)
			}
		}()
	}
	wg.Wait()
	// One build per container; near-simultaneous calls share 1-2
	// containers.
	if got := builds.Load(); got > 2 {
		t.Fatalf("client built %d times, want <= 2 (multiplexed)", got)
	}
	if cachedCount.Load() < n-2 {
		t.Fatalf("only %d/%d invocations hit the cache", cachedCount.Load(), n)
	}
	st := p.Stats()
	if st.Multiplexer.Hits+st.Multiplexer.Coalesced < uint64(n-2) {
		t.Fatalf("multiplexer stats = %+v", st.Multiplexer)
	}
}

func TestMultiplexDisabledBuildsEveryTime(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.Multiplex = false
	p := newPlatform(t, cfg)
	var builds atomic.Int64
	err := p.Register("io", func(_ context.Context, inv *Invocation) (any, error) {
		_, cached, err := inv.Resources.Get("s3.client", "k", func() (any, int64, error) {
			builds.Add(1)
			return "c", 1, nil
		})
		if cached {
			return nil, errors.New("cache hit without multiplexer")
		}
		return nil, err
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Invoke(context.Background(), "io", nil); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
	}
	if builds.Load() != 3 {
		t.Fatalf("builds = %d, want 3", builds.Load())
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	wantErr := errors.New("boom")
	if err := p.Register("bad", func(context.Context, *Invocation) (any, error) { return nil, wantErr }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "bad", nil); err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestContextCancellation(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	if err := p.Register("slow", func(context.Context, *Invocation) (any, error) {
		time.Sleep(200 * time.Millisecond)
		return nil, nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.Invoke(ctx, "slow", nil); err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	p, err := New(quickConfig(ModeBatch))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "echo", nil); err == nil {
		t.Error("Invoke after Close accepted")
	}
	if err := p.Register("x", echo); err == nil {
		t.Error("Register after Close accepted")
	}
	if err := p.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestCloseFlushesPendingWindow(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.DispatchInterval = 10 * time.Second // window would never fire in time
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Invoke(context.Background(), "echo", nil)
		done <- err
	}()
	// Let the invocation enqueue, then close: the flush must serve it.
	time.Sleep(30 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("flushed invoke failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending invocation never completed after Close")
	}
}

func TestKeepAliveEviction(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.KeepAlive = 30 * time.Millisecond
	p := newPlatform(t, cfg)
	if err := p.Register("echo", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "echo", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// Wait past the keep-alive plus a few window ticks (eviction runs on
	// window boundaries).
	deadline := time.After(5 * time.Second)
	for p.Stats().LiveContainers != 0 {
		select {
		case <-deadline:
			t.Fatalf("LiveContainers = %d, want 0 after keep-alive", p.Stats().LiveContainers)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestBatchLoadManyFunctions(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	const fns = 5
	for i := 0; i < fns; i++ {
		name := "f" + strconv.Itoa(i)
		if err := p.Register(name, echo); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	const perFn = 8
	var wg sync.WaitGroup
	for i := 0; i < fns; i++ {
		name := "f" + strconv.Itoa(i)
		for j := 0; j < perFn; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := p.Invoke(context.Background(), name, nil); err != nil {
					t.Errorf("Invoke %s: %v", name, err)
				}
			}()
		}
	}
	wg.Wait()
	st := p.Stats()
	if st.Invocations != fns*perFn {
		t.Fatalf("Invocations = %d, want %d", st.Invocations, fns*perFn)
	}
	// Groups are per function per window: far fewer than invocations.
	if st.Groups >= st.Invocations {
		t.Fatalf("Groups = %d not fewer than invocations %d", st.Groups, st.Invocations)
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	if err := p.Register("boom", func(context.Context, *Invocation) (any, error) {
		panic("kaboom")
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := p.Register("fine", echo); err != nil {
		t.Fatalf("Register: %v", err)
	}
	_, err := p.Invoke(context.Background(), "boom", nil)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
	// The platform survives: other functions keep working.
	if _, err := p.Invoke(context.Background(), "fine", json.RawMessage(`1`)); err != nil {
		t.Fatalf("platform broken after panic: %v", err)
	}
}

func TestPanicInsideBatchDoesNotPoisonSiblings(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	if err := p.Register("mixed", func(_ context.Context, inv *Invocation) (any, error) {
		if string(inv.Payload) == "bad" {
			panic("one rotten apple")
		}
		return "ok", nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := 0; i < 6; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := json.RawMessage(`"good"`)
			if i == 0 {
				payload = json.RawMessage(`bad`)
			}
			_, errs[i] = p.Invoke(context.Background(), "mixed", payload)
		}()
	}
	wg.Wait()
	bad, good := 0, 0
	for _, err := range errs {
		if err != nil {
			bad++
		} else {
			good++
		}
	}
	if bad != 1 || good != 5 {
		t.Fatalf("bad=%d good=%d, want 1/5 (panic isolated)", bad, good)
	}
}

func TestMaxConcurrencySplitsGroups(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.MaxConcurrency = 4
	p := newPlatform(t, cfg)
	var mu sync.Mutex
	perContainer := map[string]int{}
	if err := p.Register("capped", func(_ context.Context, inv *Invocation) (any, error) {
		mu.Lock()
		perContainer[inv.ContainerID]++
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		return nil, nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "capped", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for id, c := range perContainer {
		total += c
		if c > 4 {
			t.Errorf("container %s served %d concurrent invocations, cap is 4", id, c)
		}
	}
	if total != n {
		t.Fatalf("served %d, want %d", total, n)
	}
	if len(perContainer) < 3 {
		t.Fatalf("group split over %d containers, want >= 3 under cap 4", len(perContainer))
	}
}

func TestMaxConcurrencyValidation(t *testing.T) {
	cfg := quickConfig(ModeBatch)
	cfg.MaxConcurrency = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative max concurrency accepted")
	}
}

func TestFunctionsListing(t *testing.T) {
	p := newPlatform(t, quickConfig(ModeBatch))
	for _, name := range []string{"zeta", "alpha"} {
		if err := p.Register(name, echo); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	got := p.Functions()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Functions = %v, want sorted [alpha zeta]", got)
	}
}
