package platform

import (
	"sync"
	"time"
)

// This file is the hot path's allocation recycling (DESIGN.md §14). The
// warm steady state reuses three object classes through sync.Pools:
//
//   - pendingCall: one per Invoke. Recycled ONLY on the happy path,
//     after the caller received the outcome from call.done — a call
//     whose caller bailed out via ctx.Done (or that was dropped as
//     canceled) is abandoned to the GC, because its caller's select may
//     still be racing on the done channel: recycling it could deliver a
//     later invocation's outcome to a stale receiver.
//   - callGroup: the slice one dispatched window travels in. Released by
//     whoever ran the group, after runGroup returns — at that point every
//     member has either completed (outcome sent) or been handed to
//     retryLater, so nothing aliases the slice.
//   - invState: one handler attempt's Resources view + borrow set +
//     Invocation. Recycled only when runHandler reports the handler
//     actually returned; a timeout-abandoned handler keeps its state
//     (GC'd later) so it can never scribble on a recycled object.

// pendingCallPool recycles pendingCall objects, each keeping its
// buffered done channel across reuses (the channel is provably empty on
// the recycling path: finish sends exactly once and the caller received
// that one value).
var pendingCallPool = sync.Pool{
	New: func() any { return &pendingCall{done: make(chan outcome, 1)} },
}

func getPendingCall() *pendingCall {
	return pendingCallPool.Get().(*pendingCall)
}

func putPendingCall(c *pendingCall) {
	c.ctx = nil
	c.payload = nil
	c.arrive = time.Time{}
	c.attempts = 0
	c.trace = 0
	pendingCallPool.Put(c)
}

// callGroup boxes a window group's slice so the slice header survives
// pool round-trips without re-allocating.
type callGroup struct {
	calls []*pendingCall
}

var groupPool = sync.Pool{
	New: func() any { return &callGroup{calls: make([]*pendingCall, 0, 8)} },
}

// getGroup returns an empty group with capacity for at least n calls.
func getGroup(n int) *callGroup {
	g := groupPool.Get().(*callGroup)
	if cap(g.calls) < n {
		g.calls = make([]*pendingCall, 0, n)
	}
	return g
}

// putGroup clears the group's call pointers (so pooled slices never pin
// finished invocations) and recycles it.
func putGroup(g *callGroup) {
	for i := range g.calls {
		g.calls[i] = nil
	}
	g.calls = g.calls[:0]
	groupPool.Put(g)
}

// invState is one handler attempt's per-invocation state: the Resources
// view handed to the handler, the borrow set it releases through, and
// the Invocation itself. Pooling it removes the three hottest per-attempt
// allocations.
type invState struct {
	res     Resources
	borrows borrowSet
	inv     Invocation
}

var invStatePool = sync.Pool{
	New: func() any { return new(invState) },
}

func getInvState() *invState {
	return invStatePool.Get().(*invState)
}

// putInvState resets and recycles an attempt's state. borrowSet embeds a
// mutex, so the struct is never copied whole: fields reset individually
// (releaseAll already nil'd the releases slice — and deliberately does
// not reuse its backing array, because a timeout-abandoned handler from
// a previous life could still append to one; see borrowSet.releaseAll).
func putInvState(st *invState) {
	st.res = Resources{}
	st.inv = Invocation{}
	invStatePool.Put(st)
}
