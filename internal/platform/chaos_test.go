package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faasbatch/internal/chaos"
)

// settleGoroutines polls until the goroutine count drops to at most want,
// tolerating runtime background goroutines that need a moment to exit.
func settleGoroutines(t *testing.T, want int, within time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(within)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestChaosStressNoInvocationLost replays a bursty workload through the
// live platform with every fault kind firing at 10%: boot failures, slow
// cold starts, mid-batch container crashes, handler errors, panics and
// hangs, and storage-client construction failures. The lifecycle
// guarantees under test: every Invoke returns exactly once (success or a
// final error after the bounded retries), the counters reconcile, Close
// drains within its deadline, and no goroutines leak.
func TestChaosStressNoInvocationLost(t *testing.T) {
	before := runtime.NumGoroutine()

	inj, err := chaos.New(chaos.Config{
		Seed:         42,
		Rates:        chaos.Uniform(0.10),
		HangDuration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("chaos.New: %v", err)
	}
	p, err := New(Config{
		Mode:             ModeBatch,
		DispatchInterval: 20 * time.Millisecond,
		ColdStart:        5 * time.Millisecond,
		KeepAlive:        250 * time.Millisecond,
		Multiplex:        true,
		InvokeTimeout:    60 * time.Millisecond,
		MaxRetries:       3,
		RetryBackoff:     5 * time.Millisecond,
		DrainTimeout:     10 * time.Second,
		Chaos:            inj,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	handler := func(ctx context.Context, inv *Invocation) (any, error) {
		// The storage path exercises the multiplexer's Fail/coalesce
		// machinery under injected construction failures.
		_, _, err := inv.Resources.Get("s3.client", "bkt", func() (any, int64, error) {
			return struct{}{}, 1 << 20, nil
		})
		if err != nil {
			return nil, err
		}
		time.Sleep(2 * time.Millisecond)
		return "ok", nil
	}
	for _, fn := range []string{"alpha", "beta", "gamma"} {
		if err := p.Register(fn, handler); err != nil {
			t.Fatalf("Register %s: %v", fn, err)
		}
	}

	const bursts, perBurst = 3, 60
	var wg sync.WaitGroup
	var succeeded, failed, badAttempts atomic.Int64
	for b := 0; b < bursts; b++ {
		for i := 0; i < perBurst; i++ {
			fn := []string{"alpha", "beta", "gamma"}[i%3]
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := p.Invoke(context.Background(), fn, json.RawMessage(`{}`))
				if err != nil {
					failed.Add(1)
				} else {
					succeeded.Add(1)
				}
				if res.Attempts < 1 || res.Attempts > 4 {
					badAttempts.Add(1)
				}
			}()
		}
		time.Sleep(50 * time.Millisecond) // gap between bursts
	}
	wg.Wait()

	total := int64(bursts * perBurst)
	if got := succeeded.Load() + failed.Load(); got != total {
		t.Fatalf("%d invocations returned, want %d", got, total)
	}
	if n := badAttempts.Load(); n != 0 {
		t.Errorf("%d results with Attempts outside [1, 1+MaxRetries]", n)
	}

	closeStart := time.Now()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := time.Since(closeStart); d > 5*time.Second {
		t.Errorf("Close took %v", d)
	}

	st := p.Stats()
	if st.Submitted != total {
		t.Errorf("Submitted = %d, want %d", st.Submitted, total)
	}
	if st.Invocations != total {
		t.Errorf("Invocations = %d, want %d (exactly-once completion)", st.Invocations, total)
	}
	if st.Failures != failed.Load() {
		t.Errorf("Failures = %d, callers saw %d errors", st.Failures, failed.Load())
	}
	if inj.Total() == 0 {
		t.Error("no faults injected at 10% across every kind")
	}
	t.Logf("faults: %s; retries=%d failures=%d timeouts=%d panics=%d crashes=%d bootFailures=%d",
		inj.Summary(), st.Retries, st.Failures, st.Timeouts, st.Panics, st.Crashes, st.BootFailures)

	// Everything spawned by the platform must be gone: dispatcher, group
	// runners, retry sleepers, and the bounded chaos hangs.
	after := settleGoroutines(t, before, 3*time.Second)
	if after > before+2 {
		t.Errorf("goroutines grew from %d to %d after Close", before, after)
	}
}

// TestChaosHungHandlerTimesOut is the regression test for the hung-handler
// wedge: before InvokeTimeout existed, a handler that never returned held
// its whole window group (and Close) hostage. Now the hung invocation
// fails with a deadline error while the rest of its batch completes, and
// Close drains immediately.
func TestChaosHungHandlerTimesOut(t *testing.T) {
	release := make(chan struct{})
	defer close(release)

	p, err := New(Config{
		Mode:             ModeBatch,
		DispatchInterval: 20 * time.Millisecond,
		ColdStart:        time.Millisecond,
		KeepAlive:        time.Minute,
		InvokeTimeout:    80 * time.Millisecond,
		DrainTimeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("mixed", func(ctx context.Context, inv *Invocation) (any, error) {
		if string(inv.Payload) == `"hang"` {
			<-release // ignores ctx: a truly wedged handler
			return nil, errors.New("released")
		}
		return "done", nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}

	var wg sync.WaitGroup
	var hungErr error
	var okCount atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, hungErr = p.Invoke(context.Background(), "mixed", json.RawMessage(`"hang"`))
	}()
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "mixed", nil); err == nil {
				okCount.Add(1)
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch still wedged after 5s: hung handler blocked its group")
	}

	if hungErr == nil {
		t.Fatal("hung invocation returned no error")
	}
	if !errors.Is(hungErr, context.DeadlineExceeded) {
		t.Errorf("hung invocation error = %v, want deadline exceeded", hungErr)
	}
	if got := okCount.Load(); got != 5 {
		t.Errorf("%d/5 batch peers completed alongside the hung handler", got)
	}
	if st := p.Stats(); st.Timeouts < 1 {
		t.Errorf("Timeouts = %d, want >= 1", st.Timeouts)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close after hung handler: %v", err)
	}
}

// TestChaosCloseDrainTimeout pins the DrainTimeout contract: without an
// invoke deadline a wedged handler stalls the drain, and Close reports it
// instead of hanging forever.
func TestChaosCloseDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	p, err := New(Config{
		Mode:             ModeBatch,
		DispatchInterval: 10 * time.Millisecond,
		ColdStart:        time.Millisecond,
		KeepAlive:        time.Minute,
		DrainTimeout:     150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("wedge", func(context.Context, *Invocation) (any, error) {
		<-release
		return "late", nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = p.Invoke(context.Background(), "wedge", nil)
	}()
	time.Sleep(50 * time.Millisecond) // let the window dispatch the call
	err = p.Close()
	if err == nil {
		t.Fatal("Close returned nil while a handler was wedged")
	}
	if !strings.Contains(err.Error(), "drain exceeded") {
		t.Errorf("Close error = %v", err)
	}
	close(release) // unwedge; the invocation now completes
	wg.Wait()
}

// TestChaosRetriesRebatchIntoLaterWindow pins the retry semantics: a
// failing-then-succeeding handler consumes extra attempts, the result
// reports them, and the retry counters move.
func TestChaosRetriesRebatchIntoLaterWindow(t *testing.T) {
	var calls atomic.Int64
	p, err := New(Config{
		Mode:             ModeBatch,
		DispatchInterval: 15 * time.Millisecond,
		ColdStart:        time.Millisecond,
		KeepAlive:        time.Minute,
		MaxRetries:       3,
		RetryBackoff:     time.Millisecond,
		DrainTimeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("flaky", func(context.Context, *Invocation) (any, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("transient fault %d", calls.Load())
		}
		return "finally", nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := p.Invoke(context.Background(), "flaky", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Value != "finally" || res.Attempts != 3 {
		t.Errorf("res = %+v, want value finally after 3 attempts", res)
	}
	st := p.Stats()
	if st.Retries != 2 || st.Failures != 0 {
		t.Errorf("Retries = %d, Failures = %d, want 2 and 0", st.Retries, st.Failures)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestChaosRetryBudgetExhaustion pins the at-most-N semantics: a handler
// that always fails surfaces its error after exactly 1+MaxRetries
// attempts, with the failure counted.
func TestChaosRetryBudgetExhaustion(t *testing.T) {
	var calls atomic.Int64
	p, err := New(Config{
		Mode:             ModeBatch,
		DispatchInterval: 10 * time.Millisecond,
		ColdStart:        time.Millisecond,
		KeepAlive:        time.Minute,
		MaxRetries:       2,
		DrainTimeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Register("doomed", func(context.Context, *Invocation) (any, error) {
		calls.Add(1)
		return nil, errors.New("permanent fault")
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := p.Invoke(context.Background(), "doomed", nil)
	if err == nil {
		t.Fatal("doomed invocation succeeded")
	}
	if !strings.Contains(err.Error(), "permanent fault") {
		t.Errorf("error = %v", err)
	}
	if res.Attempts != 3 || calls.Load() != 3 {
		t.Errorf("Attempts = %d, handler calls = %d, want 3 and 3", res.Attempts, calls.Load())
	}
	st := p.Stats()
	if st.Failures != 1 || st.Retries != 2 {
		t.Errorf("Failures = %d, Retries = %d, want 1 and 2", st.Failures, st.Retries)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
