// Package cpusched models CPU contention on a multi-core worker node for
// discrete-event simulation.
//
// A Pool owns a fixed number of cores and a set of Groups (one per container
// plus one for system work such as container creation). Each runnable Task
// is single-threaded: it can consume at most one core. The pluggable
// Discipline decides how cores are divided among runnable tasks:
//
//   - FairShare approximates Linux CFS with max-min fair processor sharing,
//     honouring per-group core caps (docker cpuset limits).
//   - MLFQ approximates the SFS user-space scheduler: tasks that have
//     consumed little CPU (short functions) pre-empt tasks that have
//     consumed more, in discrete priority levels.
//
// The pool advances task progress lazily between events: whenever the task
// set or the allocation changes, it integrates elapsed virtual time into
// each task's consumed budget and schedules the next completion or
// priority-crossing event.
package cpusched

import (
	"fmt"
	"time"

	"faasbatch/internal/sim"
)

// completionEpsilon absorbs floating-point residue when deciding that a
// task's remaining work has hit zero.
const completionEpsilon = 50 // nanoseconds

// Task is a single-threaded unit of CPU work submitted to a Pool.
type Task struct {
	group     *Group
	remaining float64 // nanoseconds of CPU work left
	consumed  float64 // nanoseconds of CPU time used so far
	rate      float64 // cores currently allocated (0..1)
	onDone    func()
	done      bool
}

// Consumed reports the CPU time the task has used so far.
func (t *Task) Consumed() time.Duration { return time.Duration(t.consumed) }

// Remaining reports the CPU work the task still needs.
func (t *Task) Remaining() time.Duration { return time.Duration(t.remaining) }

// Rate reports the cores currently allocated to the task.
func (t *Task) Rate() float64 { return t.rate }

// Done reports whether the task has completed.
func (t *Task) Done() bool { return t.done }

// Group is a container-level scheduling entity. Tasks in a group share the
// group's core cap (the docker cpuset limit).
type Group struct {
	pool  *Pool
	cap   float64 // max aggregate cores; <= 0 means unlimited
	tasks []*Task
	label string
}

// Cap reports the group's aggregate core cap (<= 0 means unlimited).
func (g *Group) Cap() float64 { return g.cap }

// SetCap changes the group's core cap and reallocates the pool.
func (g *Group) SetCap(cores float64) {
	g.cap = cores
	g.pool.poke()
}

// Label reports the diagnostic label the group was created with.
func (g *Group) Label() string { return g.label }

// Len reports the number of runnable tasks in the group.
func (g *Group) Len() int { return len(g.tasks) }

// Submit adds a CPU task of the given work to the group. onDone runs (in
// virtual time, inside the pool's event) when the work completes; it may
// submit further tasks. Work <= 0 completes immediately.
func (g *Group) Submit(work time.Duration, onDone func()) *Task {
	t := &Task{group: g, remaining: float64(work), onDone: onDone}
	if work <= 0 {
		t.remaining = 0
	}
	g.pool.advance()
	g.tasks = append(g.tasks, t)
	g.pool.poke()
	return t
}

// Close removes the group from the pool. Closing a group with runnable
// tasks returns an error.
func (g *Group) Close() error {
	if len(g.tasks) > 0 {
		return fmt.Errorf("cpusched: close group %q with %d runnable tasks", g.label, len(g.tasks))
	}
	p := g.pool
	for i, other := range p.groups {
		if other == g {
			p.groups = append(p.groups[:i], p.groups[i+1:]...)
			break
		}
	}
	return nil
}

// Discipline divides cores among the runnable tasks of a pool.
type Discipline interface {
	// Name identifies the discipline in experiment output.
	Name() string
	// Allocate writes each task's rate. The sum of rates must not exceed
	// cores, and no single task's rate may exceed 1. It returns a horizon:
	// a duration after which the allocation must be recomputed even if no
	// task arrives or completes (0 means no horizon).
	Allocate(cores float64, groups []*Group) time.Duration
}

// Pool models the CPU cores of one worker node.
type Pool struct {
	eng      *sim.Engine
	cores    float64
	disc     Discipline
	groups   []*Group
	last     sim.Time
	pending  *sim.Event
	busyNsCs float64 // core-nanoseconds consumed (CPU busy integral)
	inPoke   bool
	repoke   bool
}

// NewPool creates a pool with the given core count and discipline.
// It returns an error if cores is not positive or disc is nil.
func NewPool(eng *sim.Engine, cores float64, disc Discipline) (*Pool, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("cpusched: cores must be positive, got %v", cores)
	}
	if disc == nil {
		return nil, fmt.Errorf("cpusched: discipline must not be nil")
	}
	return &Pool{eng: eng, cores: cores, disc: disc, last: eng.Now()}, nil
}

// Cores reports the pool's core count.
func (p *Pool) Cores() float64 { return p.cores }

// Discipline reports the pool's scheduling discipline.
func (p *Pool) Discipline() Discipline { return p.disc }

// NewGroup adds a scheduling group (a container) with the given core cap
// (<= 0 means unlimited). The label is for diagnostics only.
func (p *Pool) NewGroup(label string, cap float64) *Group {
	g := &Group{pool: p, cap: cap, label: label}
	p.groups = append(p.groups, g)
	return g
}

// Running reports the number of runnable tasks across all groups.
func (p *Pool) Running() int {
	n := 0
	for _, g := range p.groups {
		n += len(g.tasks)
	}
	return n
}

// BusyCoreSeconds reports the integral of allocated core time since the
// pool was created, in core-seconds. Sampling this at intervals yields CPU
// utilisation.
func (p *Pool) BusyCoreSeconds() float64 {
	p.advance()
	return p.busyNsCs / float64(time.Second)
}

// Reallocate forces the discipline to re-divide cores immediately. Call it
// after mutating discipline parameters (e.g. adaptive MLFQ thresholds).
func (p *Pool) Reallocate() { p.poke() }

// advance integrates progress for the virtual time elapsed since the last
// update at the current allocation.
func (p *Pool) advance() {
	now := p.eng.Now()
	dt := float64(now.Sub(p.last))
	p.last = now
	if dt <= 0 {
		return
	}
	for _, g := range p.groups {
		for _, t := range g.tasks {
			if t.rate <= 0 {
				continue
			}
			used := t.rate * dt
			if used > t.remaining {
				used = t.remaining
			}
			t.remaining -= used
			t.consumed += used
			p.busyNsCs += used
		}
	}
}

// poke re-runs the discipline and schedules the next pool event. It is
// re-entrancy safe: callbacks fired during completion processing that
// mutate the task set coalesce into one trailing reallocation.
func (p *Pool) poke() {
	if p.inPoke {
		p.repoke = true
		return
	}
	p.inPoke = true
	defer func() { p.inPoke = false }()
	for {
		p.repoke = false
		p.advance()
		p.completeFinished()
		if p.repoke {
			// A completion callback mutated the task set; fold its
			// reallocation into this pass.
			continue
		}
		horizon := p.disc.Allocate(p.cores, p.groups)
		next := p.nextEventDelay(horizon)
		if p.pending != nil {
			p.pending.Cancel()
			p.pending = nil
		}
		if next >= 0 {
			p.pending = p.eng.Schedule(next, p.poke)
		}
		return
	}
}

// completeFinished pops tasks whose remaining work reached zero and fires
// their callbacks. Callbacks may submit new tasks; those submissions set
// p.repoke via the inPoke guard.
func (p *Pool) completeFinished() {
	for _, g := range p.groups {
		kept := g.tasks[:0]
		var finished []*Task
		for _, t := range g.tasks {
			if t.remaining <= completionEpsilon {
				t.remaining = 0
				t.done = true
				t.rate = 0
				finished = append(finished, t)
			} else {
				kept = append(kept, t)
			}
		}
		// Zero the trailing slots so finished tasks are not retained.
		for i := len(kept); i < len(g.tasks); i++ {
			g.tasks[i] = nil
		}
		g.tasks = kept
		for _, t := range finished {
			if t.onDone != nil {
				t.onDone()
			}
		}
	}
}

// nextEventDelay computes when the pool must wake up next: the earliest
// task completion under current rates, bounded by the discipline horizon.
// It returns a negative delay when no wake-up is needed.
func (p *Pool) nextEventDelay(horizon time.Duration) time.Duration {
	best := -1.0
	for _, g := range p.groups {
		for _, t := range g.tasks {
			if t.rate <= 0 {
				continue
			}
			eta := t.remaining / t.rate
			if best < 0 || eta < best {
				best = eta
			}
		}
	}
	if horizon > 0 && (best < 0 || float64(horizon) < best) {
		best = float64(horizon)
	}
	if best < 0 {
		return -1
	}
	d := time.Duration(best)
	// Round up so the woken event observes the completion, not an instant
	// just before it.
	if float64(d) < best {
		d++
	}
	return d
}
