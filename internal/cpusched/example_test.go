package cpusched_test

import (
	"fmt"
	"time"

	"faasbatch/internal/cpusched"
	"faasbatch/internal/sim"
)

// Two containers contend for one core under max-min fair sharing: each
// group's 100 ms task runs at half speed and finishes at 200 ms.
func ExampleFairShare() {
	eng := sim.New(1)
	pool, err := cpusched.NewPool(eng, 1, cpusched.FairShare{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, name := range []string{"containerA", "containerB"} {
		name := name
		g := pool.NewGroup(name, 0)
		g.Submit(100*time.Millisecond, func() {
			fmt.Printf("%s done at %v\n", name, eng.Now())
		})
	}
	eng.Run()
	// Output:
	// containerA done at 200ms
	// containerB done at 200ms
}

// Under MLFQ (the SFS stand-in), a short function pre-empts a long one
// that already consumed its level-0 quantum.
func ExampleMLFQ() {
	eng := sim.New(1)
	pool, err := cpusched.NewPool(eng, 1, cpusched.NewMLFQ())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	g := pool.NewGroup("node", 0)
	g.Submit(time.Second, func() { fmt.Println("long done at", eng.Now()) })
	eng.Schedule(100*time.Millisecond, func() {
		g.Submit(30*time.Millisecond, func() { fmt.Println("short done at", eng.Now()) })
	})
	eng.Run()
	// Output:
	// short done at 130ms
	// long done at 1.03s
}
