package cpusched

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"faasbatch/internal/sim"
)

// tol is the timing tolerance allowed for floating-point rate arithmetic.
const tol = 10 * time.Microsecond

func within(t *testing.T, got, want sim.Time) {
	t.Helper()
	diff := got.Sub(want)
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Fatalf("time = %v, want %v (±%v)", got, want, tol)
	}
}

func newFairPool(t *testing.T, eng *sim.Engine, cores float64) *Pool {
	t.Helper()
	p, err := NewPool(eng, cores, FairShare{})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func TestNewPoolValidation(t *testing.T) {
	eng := sim.New(1)
	if _, err := NewPool(eng, 0, FairShare{}); err == nil {
		t.Error("NewPool(cores=0) succeeded, want error")
	}
	if _, err := NewPool(eng, -1, FairShare{}); err == nil {
		t.Error("NewPool(cores=-1) succeeded, want error")
	}
	if _, err := NewPool(eng, 1, nil); err == nil {
		t.Error("NewPool(disc=nil) succeeded, want error")
	}
}

func TestSingleTaskRunsAtFullSpeed(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 4)
	g := p.NewGroup("c1", 0)
	var done sim.Time
	g.Submit(100*time.Millisecond, func() { done = eng.Now() })
	eng.Run()
	within(t, done, sim.Time(100*time.Millisecond))
}

func TestTwoTasksShareOneCore(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("c1", 0)
	var d1, d2 sim.Time
	g.Submit(100*time.Millisecond, func() { d1 = eng.Now() })
	g.Submit(100*time.Millisecond, func() { d2 = eng.Now() })
	eng.Run()
	within(t, d1, sim.Time(200*time.Millisecond))
	within(t, d2, sim.Time(200*time.Millisecond))
}

func TestUnequalTasksProcessorSharing(t *testing.T) {
	// One 100ms and one 300ms task on one core: the short one finishes at
	// 200ms (half speed), then the long one runs alone and finishes at
	// 100+300 = 400ms total.
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("c1", 0)
	var short, long sim.Time
	g.Submit(100*time.Millisecond, func() { short = eng.Now() })
	g.Submit(300*time.Millisecond, func() { long = eng.Now() })
	eng.Run()
	within(t, short, sim.Time(200*time.Millisecond))
	within(t, long, sim.Time(400*time.Millisecond))
}

func TestGroupCapLimitsThroughput(t *testing.T) {
	// Four 100ms tasks in a group capped at 1 core on a 4-core pool: the
	// cap forces serial-equivalent progress, so all finish at 400ms.
	eng := sim.New(1)
	p := newFairPool(t, eng, 4)
	g := p.NewGroup("capped", 1)
	var done sim.Time
	for i := 0; i < 4; i++ {
		g.Submit(100*time.Millisecond, func() { done = eng.Now() })
	}
	eng.Run()
	within(t, done, sim.Time(400*time.Millisecond))
}

func TestTwoGroupsSplitCoresFairly(t *testing.T) {
	// Two groups, two cores, two tasks each: every group gets one core,
	// so each group's pair of 100ms tasks completes at 200ms.
	eng := sim.New(1)
	p := newFairPool(t, eng, 2)
	var done [2]sim.Time
	for gi := 0; gi < 2; gi++ {
		gi := gi
		g := p.NewGroup("c", 0)
		g.Submit(100*time.Millisecond, func() {})
		g.Submit(100*time.Millisecond, func() { done[gi] = eng.Now() })
	}
	eng.Run()
	within(t, done[0], sim.Time(200*time.Millisecond))
	within(t, done[1], sim.Time(200*time.Millisecond))
}

func TestMaxMinLeftoverRedistribution(t *testing.T) {
	// Group A has 1 task (demand 1 core), group B has 3 tasks. On a 4-core
	// pool A takes 1 core and B's three tasks each get a full core, so all
	// 100ms tasks complete at 100ms.
	eng := sim.New(1)
	p := newFairPool(t, eng, 4)
	a := p.NewGroup("a", 0)
	b := p.NewGroup("b", 0)
	var last sim.Time
	a.Submit(100*time.Millisecond, func() { last = eng.Now() })
	for i := 0; i < 3; i++ {
		b.Submit(100*time.Millisecond, func() { last = eng.Now() })
	}
	eng.Run()
	within(t, last, sim.Time(100*time.Millisecond))
}

func TestLateArrivalSlowsRunningTask(t *testing.T) {
	// A 100ms task starts alone on one core. At t=50ms a second 100ms task
	// arrives. First finishes at 50 + 50*2 = 150ms; second at
	// 150 + 50 = 200ms (alone after the first finishes: it ran 50ms..150ms
	// at half speed = 50ms done, 50ms left at full speed).
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("c1", 0)
	var d1, d2 sim.Time
	g.Submit(100*time.Millisecond, func() { d1 = eng.Now() })
	eng.Schedule(50*time.Millisecond, func() {
		g.Submit(100*time.Millisecond, func() { d2 = eng.Now() })
	})
	eng.Run()
	within(t, d1, sim.Time(150*time.Millisecond))
	within(t, d2, sim.Time(200*time.Millisecond))
}

func TestSubmitFromCompletionCallback(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("c1", 0)
	var second sim.Time
	g.Submit(100*time.Millisecond, func() {
		g.Submit(100*time.Millisecond, func() { second = eng.Now() })
	})
	eng.Run()
	within(t, second, sim.Time(200*time.Millisecond))
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("c1", 0)
	fired := false
	g.Submit(0, func() { fired = true })
	if !fired {
		t.Fatal("zero-work task did not complete synchronously")
	}
	if eng.Now() != 0 {
		t.Fatalf("clock advanced to %v for zero work", eng.Now())
	}
}

func TestBusyCoreSecondsEqualsSubmittedWork(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 2)
	g := p.NewGroup("c1", 0)
	total := 0.0
	for _, w := range []time.Duration{100 * time.Millisecond, 250 * time.Millisecond, 400 * time.Millisecond} {
		g.Submit(w, func() {})
		total += w.Seconds()
	}
	eng.Run()
	if got := p.BusyCoreSeconds(); math.Abs(got-total) > 1e-6 {
		t.Fatalf("BusyCoreSeconds = %v, want %v", got, total)
	}
}

func TestRunningCount(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("c1", 0)
	g.Submit(100*time.Millisecond, func() {})
	g.Submit(100*time.Millisecond, func() {})
	if p.Running() != 2 {
		t.Fatalf("Running = %d, want 2", p.Running())
	}
	eng.Run()
	if p.Running() != 0 {
		t.Fatalf("Running after drain = %d, want 0", p.Running())
	}
}

func TestGroupCloseRejectsBusyGroup(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("c1", 0)
	g.Submit(time.Second, func() {})
	if err := g.Close(); err == nil {
		t.Fatal("Close of busy group succeeded, want error")
	}
	eng.Run()
	if err := g.Close(); err != nil {
		t.Fatalf("Close of drained group: %v", err)
	}
	if len(p.groups) != 0 {
		t.Fatalf("pool still tracks %d groups after close", len(p.groups))
	}
}

func TestSetCapMidFlight(t *testing.T) {
	// Two 100ms tasks on a 2-core pool, group initially uncapped (finish
	// together at 100ms). At t=50ms the cap drops to 1 core: remaining
	// 50ms each of work now progresses at 0.5 cores per task, taking
	// another 100ms, so completion is at 150ms.
	eng := sim.New(1)
	p := newFairPool(t, eng, 2)
	g := p.NewGroup("c1", 0)
	var done sim.Time
	g.Submit(100*time.Millisecond, func() { done = eng.Now() })
	g.Submit(100*time.Millisecond, func() { done = eng.Now() })
	eng.Schedule(50*time.Millisecond, func() { g.SetCap(1) })
	eng.Run()
	within(t, done, sim.Time(150*time.Millisecond))
}

func TestTaskAccessors(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("c1", 0)
	task := g.Submit(100*time.Millisecond, func() {})
	if task.Done() {
		t.Fatal("task done before running")
	}
	if task.Rate() != 1 {
		t.Fatalf("Rate = %v, want 1", task.Rate())
	}
	eng.RunUntil(sim.Time(40 * time.Millisecond))
	p.BusyCoreSeconds() // force advance
	if got := task.Consumed(); got < 39*time.Millisecond || got > 41*time.Millisecond {
		t.Fatalf("Consumed = %v, want ~40ms", got)
	}
	if got := task.Remaining(); got < 59*time.Millisecond || got > 61*time.Millisecond {
		t.Fatalf("Remaining = %v, want ~60ms", got)
	}
	eng.Run()
	if !task.Done() {
		t.Fatal("task not done after run")
	}
}

func TestGroupAccessors(t *testing.T) {
	eng := sim.New(1)
	p := newFairPool(t, eng, 1)
	g := p.NewGroup("web", 2.5)
	if g.Label() != "web" {
		t.Errorf("Label = %q, want web", g.Label())
	}
	if g.Cap() != 2.5 {
		t.Errorf("Cap = %v, want 2.5", g.Cap())
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d, want 0", g.Len())
	}
	if p.Cores() != 1 {
		t.Errorf("Cores = %v, want 1", p.Cores())
	}
	if p.Discipline().Name() != "fair-share" {
		t.Errorf("Discipline = %q, want fair-share", p.Discipline().Name())
	}
}

func TestMLFQShortTaskPreemptsLong(t *testing.T) {
	// A 1s task runs alone on one core. At t=100ms (consumed 100ms, so
	// level 1) a 30ms task arrives at level 0 and takes the whole core:
	// it finishes at 130ms; the long task finishes at 1.03s.
	eng := sim.New(1)
	m := NewMLFQ()
	p, err := NewPool(eng, 1, m)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	g := p.NewGroup("c1", 0)
	var short, long sim.Time
	g.Submit(time.Second, func() { long = eng.Now() })
	eng.Schedule(100*time.Millisecond, func() {
		g.Submit(30*time.Millisecond, func() { short = eng.Now() })
	})
	eng.Run()
	within(t, short, sim.Time(130*time.Millisecond))
	within(t, long, sim.Time(1030*time.Millisecond))
}

func TestMLFQLevelDemotion(t *testing.T) {
	// Two 100ms tasks on one core with a 50ms level-0 boundary. They share
	// level 0 until each consumed 50ms (t=100ms), then both demote to
	// level 1 and share it until completion at t=200ms. The demotion
	// itself must not distort total completion time.
	eng := sim.New(1)
	m := NewMLFQ()
	p, err := NewPool(eng, 1, m)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	g := p.NewGroup("c1", 0)
	var d1, d2 sim.Time
	g.Submit(100*time.Millisecond, func() { d1 = eng.Now() })
	g.Submit(100*time.Millisecond, func() { d2 = eng.Now() })
	eng.Run()
	within(t, d1, sim.Time(200*time.Millisecond))
	within(t, d2, sim.Time(200*time.Millisecond))
}

func TestMLFQBackgroundStarvedWhileForegroundBusy(t *testing.T) {
	// A long 500ms task and a continuous stream of 40ms tasks arriving
	// every 40ms on one core: the stream occupies level 0 and the long
	// task only progresses between arrivals. After the stream stops, the
	// long task finishes. Its completion must come after all short ones.
	eng := sim.New(1)
	m := NewMLFQ()
	p, err := NewPool(eng, 1, m)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	g := p.NewGroup("c1", 0)
	var longDone, lastShort sim.Time
	g.Submit(500*time.Millisecond, func() { longDone = eng.Now() })
	for i := 0; i < 10; i++ {
		at := time.Duration(i*40) * time.Millisecond
		eng.Schedule(at, func() {
			g.Submit(40*time.Millisecond, func() { lastShort = eng.Now() })
		})
	}
	eng.Run()
	if longDone <= lastShort {
		t.Fatalf("long task finished at %v, before last short at %v", longDone, lastShort)
	}
	// Work conservation: total busy time = 500ms + 10*40ms = 900ms.
	if got := p.BusyCoreSeconds(); math.Abs(got-0.9) > 1e-6 {
		t.Fatalf("BusyCoreSeconds = %v, want 0.9", got)
	}
}

func TestMLFQNameAndLevels(t *testing.T) {
	m := NewMLFQ()
	if m.Name() != "mlfq" {
		t.Errorf("Name = %q, want mlfq", m.Name())
	}
	cases := []struct {
		consumed time.Duration
		level    int
	}{
		{0, 0},
		{49 * time.Millisecond, 0},
		{50 * time.Millisecond, 1},
		{249 * time.Millisecond, 1},
		{250 * time.Millisecond, 2},
		{time.Hour, 2},
	}
	for _, c := range cases {
		if got := m.level(float64(c.consumed)); got != c.level {
			t.Errorf("level(%v) = %d, want %d", c.consumed, got, c.level)
		}
	}
}

// Property: work conservation — when every task completes, the busy
// integral equals the total submitted work, for both disciplines.
func TestPropertyWorkConservation(t *testing.T) {
	for _, disc := range []Discipline{FairShare{}, NewMLFQ()} {
		disc := disc
		f := func(raw []uint16, coresRaw uint8, groupsRaw uint8) bool {
			cores := float64(coresRaw%8) + 1
			ngroups := int(groupsRaw%4) + 1
			eng := sim.New(11)
			p, err := NewPool(eng, cores, disc)
			if err != nil {
				return false
			}
			groups := make([]*Group, ngroups)
			for i := range groups {
				groups[i] = p.NewGroup("g", 0)
			}
			total := 0.0
			for i, r := range raw {
				w := time.Duration(r%2000) * time.Millisecond
				groups[i%ngroups].Submit(w, func() {})
				total += w.Seconds()
			}
			eng.Run()
			return math.Abs(p.BusyCoreSeconds()-total) < 1e-3 && p.Running() == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%s: %v", disc.Name(), err)
		}
	}
}

// Property: the total allocated rate never exceeds the pool's core count
// and no task rate exceeds one core.
func TestPropertyRateBounds(t *testing.T) {
	f := func(raw []uint16, coresRaw uint8, capRaw uint8) bool {
		cores := float64(coresRaw%16) + 1
		eng := sim.New(5)
		p, err := NewPool(eng, cores, FairShare{})
		if err != nil {
			return false
		}
		cap := float64(capRaw % 4) // 0 = unlimited
		g := p.NewGroup("g", cap)
		var tasks []*Task
		for _, r := range raw {
			w := time.Duration(r%500+1) * time.Millisecond
			tasks = append(tasks, g.Submit(w, func() {}))
		}
		sum := 0.0
		for _, task := range tasks {
			if task.Rate() > 1+1e-9 {
				return false
			}
			sum += task.Rate()
		}
		if sum > cores+1e-9 {
			return false
		}
		if cap > 0 && sum > cap+1e-9 {
			return false
		}
		eng.Run()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion order under FairShare respects work order for
// same-group simultaneous tasks (less work never finishes later).
func TestPropertySRPTOrderingWithinBatch(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		eng := sim.New(9)
		p, err := NewPool(eng, 2, FairShare{})
		if err != nil {
			return false
		}
		g := p.NewGroup("g", 0)
		type rec struct {
			work time.Duration
			done sim.Time
		}
		recs := make([]*rec, len(raw))
		for i, r := range raw {
			rc := &rec{work: time.Duration(r%1000+1) * time.Millisecond}
			recs[i] = rc
			g.Submit(rc.work, func() { rc.done = eng.Now() })
		}
		eng.Run()
		for i := range recs {
			for j := range recs {
				if recs[i].work < recs[j].work && recs[i].done > recs[j].done {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMLFQSetBaseQuantum(t *testing.T) {
	m := NewMLFQ()
	if got := m.BaseQuantum(); got != 50*time.Millisecond {
		t.Fatalf("BaseQuantum = %v, want 50ms default", got)
	}
	if err := m.SetBaseQuantum(100 * time.Millisecond); err != nil {
		t.Fatalf("SetBaseQuantum: %v", err)
	}
	// Ratios preserved: 50/250 -> 100/500.
	if m.Thresholds[0] != 100*time.Millisecond || m.Thresholds[1] != 500*time.Millisecond {
		t.Fatalf("thresholds = %v", m.Thresholds)
	}
	if err := m.SetBaseQuantum(0); err == nil {
		t.Error("zero quantum accepted")
	}
	empty := &MLFQ{}
	if err := empty.SetBaseQuantum(time.Millisecond); err == nil {
		t.Error("empty thresholds accepted")
	}
	if empty.BaseQuantum() != 0 {
		t.Error("empty BaseQuantum should be 0")
	}
}

func TestPoolReallocateAfterQuantumChange(t *testing.T) {
	// A long task demoted to background regains level 0 when the quantum
	// grows above its consumed CPU, pre-empting nothing but re-running at
	// level 0 priority alongside new arrivals.
	eng := sim.New(1)
	m := NewMLFQ()
	p, err := NewPool(eng, 1, m)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	g := p.NewGroup("c", 0)
	var longDone, shortDone sim.Time
	g.Submit(300*time.Millisecond, func() { longDone = eng.Now() })
	// At t=100ms the long task consumed 100ms (level 1). Grow the base
	// quantum to 1s: it re-levels to 0 and now shares fairly with a
	// fresh 100ms task instead of being starved by it.
	eng.Schedule(100*time.Millisecond, func() {
		if err := m.SetBaseQuantum(time.Second); err != nil {
			t.Errorf("SetBaseQuantum: %v", err)
		}
		p.Reallocate()
		g.Submit(100*time.Millisecond, func() { shortDone = eng.Now() })
	})
	eng.Run()
	// Fair sharing from t=100ms: the short task (100ms at half speed)
	// finishes at 300ms; the long task progresses 100ms of its remaining
	// 200ms by then and runs its last 100ms alone, finishing at 400ms.
	within(t, shortDone, sim.Time(300*time.Millisecond))
	within(t, longDone, sim.Time(400*time.Millisecond))
}
