package cpusched

import (
	"fmt"
	"sort"
	"time"
)

// FairShare is a max-min fair processor-sharing discipline, the standard
// fluid approximation of the Linux CFS scheduler. Cores are divided fairly
// across groups (containers), honouring each group's core cap, and evenly
// among the tasks inside each group (each task capped at one core).
type FairShare struct{}

var _ Discipline = FairShare{}

// Name implements Discipline.
func (FairShare) Name() string { return "fair-share" }

// Allocate implements Discipline using two-level water-filling.
func (FairShare) Allocate(cores float64, groups []*Group) time.Duration {
	type demand struct {
		g     *Group
		limit float64
	}
	var active []demand
	for _, g := range groups {
		n := len(g.tasks)
		if n == 0 {
			continue
		}
		// A group can use at most one core per runnable task, and no more
		// than its cpuset cap.
		limit := float64(n)
		if g.cap > 0 && g.cap < limit {
			limit = g.cap
		}
		active = append(active, demand{g: g, limit: limit})
	}
	if len(active) == 0 {
		return 0
	}
	// Max-min fairness: groups with small demand are satisfied first and
	// their leftover is redistributed among the rest.
	sort.SliceStable(active, func(i, j int) bool { return active[i].limit < active[j].limit })
	remaining := cores
	left := len(active)
	for _, d := range active {
		share := remaining / float64(left)
		alloc := d.limit
		if share < alloc {
			alloc = share
		}
		remaining -= alloc
		left--
		// Even split inside the group; alloc <= len(tasks) guarantees the
		// per-task rate never exceeds one core.
		rate := alloc / float64(len(d.g.tasks))
		for _, t := range d.g.tasks {
			t.rate = rate
		}
	}
	return 0
}

// MLFQ approximates the SFS user-space scheduler with a multi-level
// feedback queue: a task's priority level is determined by how much CPU it
// has consumed so far. Tasks at lower levels (short functions) receive
// cores before tasks at higher levels (long functions), reproducing SFS's
// short-job bias — short functions finish fast at the expense of long ones.
//
// Thresholds are cumulative consumed-CPU boundaries: a task with consumed
// CPU below Thresholds[0] is at level 0, below Thresholds[1] at level 1,
// and so on; past the last threshold it runs in the background level.
//
// MLFQ deliberately ignores group caps: SFS schedules invocations onto
// cores directly in user space, bypassing container cgroup shares.
type MLFQ struct {
	// Thresholds are the cumulative consumed-CPU level boundaries.
	// They must be strictly increasing.
	Thresholds []time.Duration
}

var _ Discipline = (*MLFQ)(nil)

// NewMLFQ returns an MLFQ with the default SFS-like level boundaries.
func NewMLFQ() *MLFQ {
	return &MLFQ{Thresholds: []time.Duration{50 * time.Millisecond, 250 * time.Millisecond}}
}

// Name implements Discipline.
func (m *MLFQ) Name() string { return "mlfq" }

// SetBaseQuantum rescales the level boundaries to a new base quantum,
// keeping their ratios. SFS adapts the quantum to the observed request
// inter-arrival time; call Pool.Reallocate afterwards so running tasks
// re-level immediately.
func (m *MLFQ) SetBaseQuantum(q time.Duration) error {
	if q <= 0 {
		return fmt.Errorf("cpusched: mlfq base quantum must be positive, got %v", q)
	}
	if len(m.Thresholds) == 0 {
		return fmt.Errorf("cpusched: mlfq has no thresholds to rescale")
	}
	base := m.Thresholds[0]
	if base <= 0 {
		return fmt.Errorf("cpusched: mlfq first threshold must be positive, got %v", base)
	}
	scale := float64(q) / float64(base)
	for i := range m.Thresholds {
		m.Thresholds[i] = time.Duration(float64(m.Thresholds[i]) * scale)
	}
	return nil
}

// BaseQuantum reports the first level boundary.
func (m *MLFQ) BaseQuantum() time.Duration {
	if len(m.Thresholds) == 0 {
		return 0
	}
	return m.Thresholds[0]
}

// level reports the priority level for a task with the given consumed CPU.
func (m *MLFQ) level(consumed float64) int {
	for i, th := range m.Thresholds {
		if consumed < float64(th) {
			return i
		}
	}
	return len(m.Thresholds)
}

// Allocate implements Discipline. Cores flow to the lowest occupied level
// first; leftover spills to the next level. The returned horizon is the
// earliest instant a running task crosses into the next level, at which
// point the allocation must be recomputed.
func (m *MLFQ) Allocate(cores float64, groups []*Group) time.Duration {
	levels := make([][]*Task, len(m.Thresholds)+1)
	for _, g := range groups {
		for _, t := range g.tasks {
			lv := m.level(t.consumed)
			levels[lv] = append(levels[lv], t)
			t.rate = 0
		}
	}
	remaining := cores
	for _, tasks := range levels {
		if len(tasks) == 0 || remaining <= 0 {
			continue
		}
		rate := remaining / float64(len(tasks))
		if rate > 1 {
			rate = 1
		}
		for _, t := range tasks {
			t.rate = rate
		}
		remaining -= rate * float64(len(tasks))
	}
	// Horizon: the soonest level-crossing among running tasks.
	best := time.Duration(0)
	for lv, tasks := range levels {
		if lv >= len(m.Thresholds) {
			break // background level has no next boundary
		}
		boundary := float64(m.Thresholds[lv])
		for _, t := range tasks {
			if t.rate <= 0 {
				continue
			}
			eta := time.Duration((boundary - t.consumed) / t.rate)
			if eta <= 0 {
				eta = 1
			}
			if best == 0 || eta < best {
				best = eta
			}
		}
	}
	return best
}
