package multiplex

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestHashArgsStableAndDistinct(t *testing.T) {
	a := HashArgs("s3:KEY1")
	b := HashArgs("s3:KEY1")
	c := HashArgs("s3:KEY2")
	if a != b {
		t.Fatal("HashArgs not deterministic")
	}
	if a == c {
		t.Fatal("distinct args hashed equal")
	}
}

func TestNewKey(t *testing.T) {
	k := NewKey("boto3.client", "s3:KEY")
	if k.Callee != "boto3.client" {
		t.Fatalf("Callee = %q", k.Callee)
	}
	if k.ArgsHash != HashArgs("s3:KEY") {
		t.Fatal("ArgsHash mismatch")
	}
}

func TestBeginResultString(t *testing.T) {
	if BeginHit.String() != "hit" || BeginMiss.String() != "miss" || BeginPending.String() != "pending" {
		t.Fatal("BeginResult strings wrong")
	}
	if BeginResult(9).String() != "begin(9)" {
		t.Fatal("unknown BeginResult string wrong")
	}
}

func TestMissThenHit(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	res, inst := c.Begin(key)
	if res != BeginMiss || inst != nil {
		t.Fatalf("first Begin = %v, %v; want miss, nil", res, inst)
	}
	c.Complete(key, "S3_client", 15<<20)
	res, inst = c.Begin(key)
	if res != BeginHit || inst != "S3_client" {
		t.Fatalf("second Begin = %v, %v; want hit, S3_client", res, inst)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LiveInstances != 1 || st.BytesLive != 15<<20 {
		t.Fatalf("live stats = %+v", st)
	}
	if st.BytesSaved != 15<<20 {
		t.Fatalf("BytesSaved = %d, want one instance worth", st.BytesSaved)
	}
}

func TestPendingCoalesces(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	if res, _ := c.Begin(key); res != BeginMiss {
		t.Fatal("first Begin should miss")
	}
	if res, _ := c.Begin(key); res != BeginPending {
		t.Fatal("second Begin during build should be pending")
	}
	var got []any
	c.Wait(key, func(v any) { got = append(got, v) })
	c.Wait(key, func(v any) { got = append(got, v) })
	c.Complete(key, "inst", 100)
	if len(got) != 2 || got[0] != "inst" || got[1] != "inst" {
		t.Fatalf("waiters got %v", got)
	}
	st := c.Stats()
	if st.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", st.Coalesced)
	}
	// Two waiters avoided duplicate instances.
	if st.BytesSaved != 200 {
		t.Fatalf("BytesSaved = %d, want 200", st.BytesSaved)
	}
}

func TestWaitOnReadyKeyFiresImmediately(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	c.Begin(key)
	c.Complete(key, "inst", 1)
	fired := false
	c.Wait(key, func(v any) {
		fired = true
		if v != "inst" {
			t.Errorf("waiter got %v", v)
		}
	})
	if !fired {
		t.Fatal("Wait on ready key did not fire immediately")
	}
}

func TestWaitOnAbsentKeyFiresNil(t *testing.T) {
	c := New()
	fired := false
	c.Wait(NewKey("x", "y"), func(v any) {
		fired = true
		if v != nil {
			t.Errorf("waiter got %v, want nil", v)
		}
	})
	if !fired {
		t.Fatal("Wait on absent key did not fire")
	}
}

func TestFailNotifiesWaitersWithNil(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	c.Begin(key)
	var got []any
	c.Wait(key, func(v any) { got = append(got, v) })
	c.Fail(key)
	if len(got) != 1 || got[0] != nil {
		t.Fatalf("waiters got %v, want [nil]", got)
	}
	// After failure the key is buildable again.
	if res, _ := c.Begin(key); res != BeginMiss {
		t.Fatal("Begin after Fail should miss")
	}
}

func TestCompleteOnUnknownOrReadyKeyIsNoop(t *testing.T) {
	c := New()
	c.Complete(NewKey("x", "y"), "v", 1) // unknown: no-op
	key := NewKey("a", "b")
	c.Begin(key)
	c.Complete(key, "first", 1)
	c.Complete(key, "second", 2) // already ready: no-op
	_, inst := c.Begin(key)
	if inst != "first" {
		t.Fatalf("instance = %v, want first", inst)
	}
	st := c.Stats()
	if st.LiveInstances != 1 || st.BytesLive != 1 {
		t.Fatalf("stats after double complete: %+v", st)
	}
}

func TestFailOnUnknownOrReadyKeyIsNoop(t *testing.T) {
	c := New()
	c.Fail(NewKey("x", "y"))
	key := NewKey("a", "b")
	c.Begin(key)
	c.Complete(key, "v", 1)
	c.Fail(key)
	if res, inst := c.Begin(key); res != BeginHit || inst != "v" {
		t.Fatal("Fail on ready key must not evict it")
	}
}

func TestDistinctArgsAreDistinctEntries(t *testing.T) {
	c := New()
	k1 := NewKey("client", "bucketA")
	k2 := NewKey("client", "bucketB")
	c.Begin(k1)
	c.Complete(k1, "a", 1)
	if res, _ := c.Begin(k2); res != BeginMiss {
		t.Fatal("different args must not hit")
	}
}

func TestGetOrBuildBlockingFace(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	builds := 0
	build := func() (any, int64, error) {
		builds++
		return "inst", 10, nil
	}
	v, cached, err := c.GetOrBuild(key, build)
	if err != nil || cached || v != "inst" {
		t.Fatalf("first GetOrBuild = %v, %v, %v", v, cached, err)
	}
	v, cached, err = c.GetOrBuild(key, build)
	if err != nil || !cached || v != "inst" {
		t.Fatalf("second GetOrBuild = %v, %v, %v", v, cached, err)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
}

func TestGetOrBuildPropagatesError(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	wantErr := errors.New("no network")
	_, _, err := c.GetOrBuild(key, func() (any, int64, error) { return nil, 0, wantErr })
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped %v", err, wantErr)
	}
	// A later build can succeed.
	v, cached, err := c.GetOrBuild(key, func() (any, int64, error) { return "ok", 1, nil })
	if err != nil || cached || v != "ok" {
		t.Fatalf("retry GetOrBuild = %v, %v, %v", v, cached, err)
	}
}

func TestGetOrBuildConcurrentSingleflight(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	var builds atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, 20)
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrBuild(key, func() (any, int64, error) {
				builds.Add(1)
				<-release
				return "inst", 5, nil
			})
			if err != nil {
				t.Errorf("GetOrBuild: %v", err)
			}
			results[i] = v
		}()
	}
	close(release)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times under concurrency, want 1", got)
	}
	for i, v := range results {
		if v != "inst" {
			t.Fatalf("goroutine %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Coalesced != 19 {
		t.Fatalf("Hits+Coalesced = %d, want 19", st.Hits+st.Coalesced)
	}
}

func TestClose(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		key := NewKey("client", fmt.Sprintf("args%d", i))
		c.Begin(key)
		c.Complete(key, i, 100)
	}
	if freed := c.Close(); freed != 300 {
		t.Fatalf("Close freed %d, want 300", freed)
	}
	st := c.Stats()
	if st.LiveInstances != 0 || st.BytesLive != 0 {
		t.Fatalf("stats after close = %+v", st)
	}
	// The cache is reusable after Close.
	if res, _ := c.Begin(NewKey("client", "args0")); res != BeginMiss {
		t.Fatal("entry survived Close")
	}
}

func TestCloseWithPendingEntryUnblocksWaiters(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	c.Begin(key)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// This waiter blocks on the pending build; Close must release it.
		_, _, _ = c.GetOrBuild(key, func() (any, int64, error) { return "x", 1, nil })
	}()
	// Give the goroutine a chance to register; stop once it is either
	// waiting (pending) or already finished (hit).
	for {
		res, _ := c.Begin(key)
		if res == BeginPending || res == BeginHit {
			break
		}
		c.Fail(key) // undo our accidental miss claim and retry
	}
	c.Close()
	<-done
}

// Property: for any sequence of creations over a bounded key space, the
// number of builds equals the number of distinct keys, and every
// non-first creation is saved.
func TestPropertyOneBuildPerDistinctKey(t *testing.T) {
	f := func(keys []uint8) bool {
		c := New()
		distinct := map[uint8]bool{}
		for _, k := range keys {
			key := NewKey("client", fmt.Sprintf("%d", k%8))
			res, _ := c.Begin(key)
			if res == BeginMiss {
				c.Complete(key, k, 1)
			}
			distinct[k%8] = true
		}
		st := c.Stats()
		return st.Misses == uint64(len(distinct)) &&
			st.Hits == uint64(len(keys)-len(distinct)) &&
			st.BytesSaved == int64(len(keys)-len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []Key
	// One shard makes the LRU order globally exact for the assertion.
	c := New(WithShards(1), WithMaxEntries(2), WithOnEvict(func(k Key, inst any, bytes int64) {
		evicted = append(evicted, k)
		if bytes != 10 {
			t.Errorf("evicted bytes = %d, want 10", bytes)
		}
	}))
	k1, k2, k3 := NewKey("c", "1"), NewKey("c", "2"), NewKey("c", "3")
	for _, k := range []Key{k1, k2} {
		c.Begin(k)
		c.Complete(k, k.ArgsHash, 10)
	}
	// Touch k1 so k2 becomes the LRU victim.
	if res, _ := c.Begin(k1); res != BeginHit {
		t.Fatal("k1 should hit")
	}
	c.Begin(k3)
	c.Complete(k3, "v3", 10)
	if len(evicted) != 1 || evicted[0] != k2 {
		t.Fatalf("evicted = %v, want [k2]", evicted)
	}
	st := c.Stats()
	if st.LiveInstances != 2 || st.BytesLive != 20 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// k2 rebuilds on next access.
	if res, _ := c.Begin(k2); res != BeginMiss {
		t.Fatal("evicted key should miss")
	}
}

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	c := New()
	for i := 0; i < 100; i++ {
		k := NewKey("c", fmt.Sprintf("%d", i))
		c.Begin(k)
		c.Complete(k, i, 1)
	}
	st := c.Stats()
	if st.Evictions != 0 || st.LiveInstances != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionNeverDropsTheJustCompletedEntry(t *testing.T) {
	c := New(WithMaxEntries(1))
	k1, k2 := NewKey("c", "1"), NewKey("c", "2")
	c.Begin(k1)
	c.Complete(k1, "v1", 1)
	c.Begin(k2)
	c.Complete(k2, "v2", 1)
	// k2 just completed: it must survive, k1 must go.
	if res, _ := c.Begin(k2); res != BeginHit {
		t.Fatal("just-completed entry was evicted")
	}
	if res, _ := c.Begin(k1); res != BeginMiss {
		t.Fatal("LRU entry survived over the bound")
	}
}

// Property: with bound B, ready instances never exceed B (pending builds
// excluded), and hits+misses+coalesced accounts for every Begin.
func TestPropertyBoundedCacheInvariant(t *testing.T) {
	f := func(ops []uint8, boundRaw uint8) bool {
		bound := int(boundRaw%5) + 1
		c := New(WithMaxEntries(bound))
		begins := uint64(0)
		for _, op := range ops {
			k := NewKey("c", fmt.Sprintf("%d", op%16))
			res, _ := c.Begin(k)
			begins++
			if res == BeginMiss {
				c.Complete(k, op, 1)
			}
			st := c.Stats()
			if st.LiveInstances > bound {
				return false
			}
			if st.Hits+st.Misses+st.Coalesced != begins {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseNotifiesPendingWaitersWithNil(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	c.Begin(key)
	var got []any
	c.Wait(key, func(v any) { got = append(got, v) })
	c.Close()
	if len(got) != 1 || got[0] != nil {
		t.Fatalf("waiters got %v, want [nil]", got)
	}
	// A Complete arriving after Close (the abandoned builder finishing)
	// must not resurrect the entry or double-notify.
	c.Complete(key, struct{}{}, 1)
	if len(got) != 1 {
		t.Fatalf("waiters notified %d times, want once", len(got))
	}
}
