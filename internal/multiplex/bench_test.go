package multiplex

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// benchmarkHitPath measures steady-state hit throughput. shards=1 is the
// global-mutex baseline (every key funnels through one lock); shards=0 lets
// the cache pick its power-of-two striped layout. GOMAXPROCS is raised to
// the goroutine count so the contention is real even on small CI machines.
func benchmarkHitPath(b *testing.B, shards, goroutines int) {
	prev := runtime.GOMAXPROCS(goroutines)
	defer runtime.GOMAXPROCS(prev)

	opts := []Option{WithMaxEntries(4096)}
	if shards > 0 {
		opts = append(opts, WithShards(shards))
	}
	c := New(opts...)
	defer c.Close()

	const nkeys = 256
	keys := make([]Key, nkeys)
	for i := range keys {
		keys[i] = NewKey("client", fmt.Sprintf("args-%d", i))
		c.Begin(keys[i])
		c.Complete(keys[i], i, 64)
	}

	var cursor atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger goroutines across the key space so they contend on
		// different shards, as real per-callee traffic does.
		i := cursor.Add(nkeys / 4)
		for pb.Next() {
			k := keys[i%nkeys]
			i++
			if res, _ := c.Begin(k); res != BeginHit {
				b.Fatalf("expected hit, got %v", res)
			}
		}
	})
}

func BenchmarkMultiplexShardedHit1(b *testing.B)  { benchmarkHitPath(b, 0, 1) }
func BenchmarkMultiplexShardedHit4(b *testing.B)  { benchmarkHitPath(b, 0, 4) }
func BenchmarkMultiplexShardedHit16(b *testing.B) { benchmarkHitPath(b, 0, 16) }

func BenchmarkMultiplexGlobalHit1(b *testing.B)  { benchmarkHitPath(b, 1, 1) }
func BenchmarkMultiplexGlobalHit4(b *testing.B)  { benchmarkHitPath(b, 1, 4) }
func BenchmarkMultiplexGlobalHit16(b *testing.B) { benchmarkHitPath(b, 1, 16) }

// benchmarkGetOrBuild exercises the blocking handler-facing face end to
// end (outcome classification included) on a hot working set.
func benchmarkGetOrBuild(b *testing.B, shards, goroutines int) {
	prev := runtime.GOMAXPROCS(goroutines)
	defer runtime.GOMAXPROCS(prev)

	opts := []Option{WithMaxEntries(4096)}
	if shards > 0 {
		opts = append(opts, WithShards(shards))
	}
	c := New(opts...)
	defer c.Close()

	const nkeys = 256
	keys := make([]Key, nkeys)
	build := func() (any, int64, error) { return "inst", 64, nil }
	for i := range keys {
		keys[i] = NewKey("client", fmt.Sprintf("args-%d", i))
		if _, _, err := c.GetOrBuild(keys[i], build); err != nil {
			b.Fatal(err)
		}
	}

	var cursor atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(nkeys / 4)
		for pb.Next() {
			k := keys[i%nkeys]
			i++
			if _, cached, err := c.GetOrBuild(k, build); err != nil || !cached {
				b.Fatalf("cached=%v err=%v", cached, err)
			}
		}
	})
}

func BenchmarkMultiplexShardedGet16(b *testing.B) { benchmarkGetOrBuild(b, 0, 16) }
func BenchmarkMultiplexGlobalGet16(b *testing.B)  { benchmarkGetOrBuild(b, 1, 16) }
