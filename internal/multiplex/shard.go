package multiplex

import (
	"sync"
	"time"
)

type entryState int

const (
	statePending entryState = iota + 1
	stateReady
	stateNegative
)

// entry is one key's cache slot, moving pending → ready (→ refreshing
// in place) or pending → negative as builds succeed or fail. Ready
// entries are linked into the shard's LRU list.
type entry struct {
	key      Key
	state    entryState
	instance any
	bytes    int64
	waiters  []func(any)   // event-driven waiters
	done     chan struct{} // blocking waiters
	// refreshing marks a ready entry whose background rebuild is in
	// flight (stale-while-revalidate); it stays servable and is never an
	// eviction victim until the refresh settles.
	refreshing bool
	// expireAt is the clock reading at which the instance expires
	// (0 = immortal).
	expireAt time.Duration
	// fails counts consecutive build failures; the negative backoff
	// doubles with each one.
	fails int
	// retryAt is the clock reading at which a negative entry allows the
	// next build probe.
	retryAt time.Duration
	// lastErr is the most recent build error (negative entries serve it).
	lastErr error
	// prev/next link ready entries in the shard LRU (head = most recent).
	prev, next *entry
}

// evicted is one instance leaving the cache, queued for the OnEvict hook
// which must run outside the shard lock.
type evicted struct {
	key      Key
	instance any
	bytes    int64
}

// shard is one lock stripe: a map plus an intrusive LRU of ready entries.
type shard struct {
	cache *Cache
	// cap bounds this shard's ready entries (0 = unbounded).
	cap int

	mu         sync.Mutex
	entries    map[Key]*entry
	head, tail *entry
	ready      int
	negCount   int
	bytesLive  int64
	stats      Stats // scalar counters only; gauges derive from fields above
	closed     bool
}

// --- LRU list (callers hold s.mu) ---

func (s *shard) lruPushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) lruRemove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) lruTouch(e *entry) {
	if s.head == e {
		return
	}
	s.lruRemove(e)
	s.lruPushFront(e)
}

// --- lifecycle helpers (callers hold s.mu) ---

// dropReadyLocked unlinks a ready entry and returns its eviction record.
func (s *shard) dropReadyLocked(e *entry) evicted {
	s.lruRemove(e)
	delete(s.entries, e.key)
	s.ready--
	s.bytesLive -= e.bytes
	return evicted{key: e.key, instance: e.instance, bytes: e.bytes}
}

// evictOverflowLocked drops least-recently-used ready entries while the
// shard exceeds its capacity, skipping entries with a refresh in flight
// (they are demonstrably hot and their Complete must find them).
func (s *shard) evictOverflowLocked(out []evicted) []evicted {
	for s.cap > 0 && s.ready > s.cap {
		victim := s.tail
		for victim != nil && victim.refreshing {
			victim = victim.prev
		}
		if victim == nil {
			return out
		}
		out = append(out, s.dropReadyLocked(victim))
		s.stats.Evictions++
	}
	return out
}

func (e *entry) expired(now time.Duration) bool {
	return e.expireAt > 0 && now >= e.expireAt
}

func (s *shard) inRefreshWindow(e *entry, now time.Duration) bool {
	w := s.cache.cfg.RefreshWindow
	return w > 0 && e.expireAt > 0 && now >= e.expireAt-w
}

// fire invokes the OnEvict closer hook for every collected instance.
// Callers must have released s.mu.
func (s *shard) fire(evs []evicted) {
	hook := s.cache.cfg.OnEvict
	if hook == nil {
		return
	}
	for _, ev := range evs {
		hook(ev.key, ev.instance, ev.bytes)
	}
}

// beginLocked is the shared lookup of both faces. Callers hold s.mu. It
// returns the begin result, the instance (hit/stale), the done channel
// (pending), the last build error (negative) and any evictions to fire.
func (s *shard) beginLocked(key Key) (BeginResult, any, chan struct{}, error, []evicted) {
	now := s.cache.cfg.Now()
	e, ok := s.entries[key]
	if ok && e.state == stateReady && e.expired(now) {
		// Lazy TTL expiry: the instance is released through OnEvict and
		// this caller rebuilds.
		ev := s.dropReadyLocked(e)
		s.stats.Expired++
		s.stats.Misses++
		s.entries[key] = &entry{key: key, state: statePending, done: make(chan struct{})}
		return BeginMiss, nil, nil, nil, []evicted{ev}
	}
	if !ok {
		s.stats.Misses++
		s.entries[key] = &entry{key: key, state: statePending, done: make(chan struct{})}
		return BeginMiss, nil, nil, nil, nil
	}
	switch e.state {
	case stateReady:
		if !e.refreshing && s.inRefreshWindow(e, now) {
			e.refreshing = true
			s.stats.StaleHits++
			s.stats.Refreshes++
			s.stats.BytesSaved += e.bytes
			s.lruTouch(e)
			return BeginStale, e.instance, nil, nil, nil
		}
		s.stats.Hits++
		s.stats.BytesSaved += e.bytes
		s.lruTouch(e)
		return BeginHit, e.instance, nil, nil, nil
	case stateNegative:
		if now >= e.retryAt {
			// Backoff elapsed: this caller probes. The consecutive-failure
			// count survives so another failure doubles the backoff again.
			e.state = statePending
			e.done = make(chan struct{})
			e.waiters = nil
			s.negCount--
			s.stats.Misses++
			return BeginMiss, nil, nil, nil, nil
		}
		s.stats.NegativeHits++
		return BeginNegative, nil, nil, e.lastErr, nil
	default: // statePending
		s.stats.Coalesced++
		return BeginPending, nil, e.done, nil, nil
	}
}

// begin is the event-driven face's lookup.
func (s *shard) begin(key Key) (BeginResult, any) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return BeginMiss, nil
	}
	res, inst, _, _, evs := s.beginLocked(key)
	s.mu.Unlock()
	s.fire(evs)
	return res, inst
}

// beginBlocking is the blocking face's lookup; closed reports a closed
// cache (GetOrBuildContext turns it into ErrCacheClosed).
func (s *shard) beginBlocking(key Key) (res BeginResult, inst any, done chan struct{}, lastErr error, closed bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, nil, nil, nil, true
	}
	var evs []evicted
	res, inst, done, lastErr, evs = s.beginLocked(key)
	s.mu.Unlock()
	s.fire(evs)
	return res, inst, done, lastErr, false
}

// readyValue reports the instance for key if it is ready and unexpired —
// the recheck a coalesced waiter performs after the build settles.
func (s *shard) readyValue(key Key) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.state != stateReady || e.expired(s.cache.cfg.Now()) {
		return nil, false
	}
	return e.instance, true
}

// wait registers an event-driven waiter (see Cache.Wait).
func (s *shard) wait(key Key, fn func(any)) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fn(nil)
		return
	}
	e, ok := s.entries[key]
	if !ok || e.state == stateNegative {
		s.mu.Unlock()
		fn(nil)
		return
	}
	if e.state == stateReady {
		inst := e.instance
		s.mu.Unlock()
		fn(inst)
		return
	}
	e.waiters = append(e.waiters, fn)
	s.mu.Unlock()
}

// complete publishes a built instance (see Cache.Complete).
func (s *shard) complete(key Key, instance any, bytes int64) {
	now := s.cache.cfg.Now()
	s.mu.Lock()
	e, ok := s.entries[key]
	if s.closed || !ok {
		// Nowhere to store it: release the orphaned instance so its
		// sockets do not leak past the container teardown.
		s.mu.Unlock()
		s.fire([]evicted{{key: key, instance: instance, bytes: bytes}})
		return
	}
	var evs []evicted
	var waiters []func(any)
	switch e.state {
	case statePending:
		e.state = stateReady
		e.instance = instance
		e.bytes = bytes
		e.fails = 0
		e.lastErr = nil
		if ttl := s.cache.cfg.TTL; ttl > 0 {
			e.expireAt = now + ttl
		}
		waiters = e.waiters
		e.waiters = nil
		close(e.done)
		e.done = nil
		s.ready++
		s.bytesLive += bytes
		s.stats.BytesSaved += bytes * int64(len(waiters))
		s.lruPushFront(e)
		evs = s.evictOverflowLocked(evs)
	case stateReady:
		if e.refreshing {
			// Refresh replacement: the stale instance leaves the cache.
			evs = append(evs, evicted{key: key, instance: e.instance, bytes: e.bytes})
			s.bytesLive += bytes - e.bytes
			e.instance = instance
			e.bytes = bytes
			e.refreshing = false
			if ttl := s.cache.cfg.TTL; ttl > 0 {
				e.expireAt = now + ttl
			}
			s.lruTouch(e)
		} else {
			// Duplicate publish: the first instance wins, the duplicate is
			// released.
			evs = append(evs, evicted{key: key, instance: instance, bytes: bytes})
		}
	default: // stateNegative: a stray publish after a Fail settled the key
		evs = append(evs, evicted{key: key, instance: instance, bytes: bytes})
	}
	s.mu.Unlock()
	s.fire(evs)
	for _, w := range waiters {
		w(instance)
	}
}

// fail settles a failed build (see Cache.Fail / Cache.FailErr).
func (s *shard) fail(key Key, cause error) {
	now := s.cache.cfg.Now()
	s.mu.Lock()
	e, ok := s.entries[key]
	if s.closed || !ok {
		s.mu.Unlock()
		return
	}
	var waiters []func(any)
	switch e.state {
	case statePending:
		s.stats.BuildFailures++
		waiters = e.waiters
		e.waiters = nil
		close(e.done)
		e.done = nil
		if base := s.cache.cfg.NegativeBackoff; base > 0 {
			e.state = stateNegative
			e.fails++
			backoff := base << uint(e.fails-1)
			if max := s.cache.cfg.NegativeBackoffMax; backoff > max || backoff <= 0 {
				backoff = max
			}
			e.retryAt = now + backoff
			e.lastErr = cause
			s.negCount++
			s.boundNegativesLocked(e)
		} else {
			delete(s.entries, key)
		}
	case stateReady:
		if e.refreshing {
			// A failed refresh keeps the stale instance until hard expiry;
			// the next stale hit may try again.
			e.refreshing = false
			s.stats.BuildFailures++
		}
		// Fail on a plain ready key must not evict it (seed semantics).
	default: // stateNegative: already settled
	}
	s.mu.Unlock()
	for _, w := range waiters {
		w(nil)
	}
}

// boundNegativesLocked keeps the negative-entry population finite: failing
// keys are remembered, but a workload cycling through endless distinct
// failing keys must not grow the map without bound. The entry closest to
// its retry time (other than keep) is dropped first.
func (s *shard) boundNegativesLocked(keep *entry) {
	maxNeg := 64
	if s.cap > maxNeg {
		maxNeg = s.cap
	}
	if s.negCount <= maxNeg {
		return
	}
	var victim *entry
	for _, e := range s.entries {
		if e.state != stateNegative || e == keep {
			continue
		}
		if victim == nil || e.retryAt < victim.retryAt {
			victim = e
		}
	}
	if victim != nil {
		delete(s.entries, victim.key)
		s.negCount--
	}
}

// invalidate drops a ready or negative entry (see Cache.Invalidate).
func (s *shard) invalidate(key Key) bool {
	s.mu.Lock()
	e, ok := s.entries[key]
	if s.closed || !ok || e.state == statePending {
		s.mu.Unlock()
		return false
	}
	var evs []evicted
	switch e.state {
	case stateReady:
		// A refresh in flight will find the key pending-less and release
		// its instance through the orphan path in complete.
		evs = append(evs, s.dropReadyLocked(e))
	default: // stateNegative
		delete(s.entries, key)
		s.negCount--
	}
	s.stats.Invalidations++
	s.mu.Unlock()
	s.fire(evs)
	return true
}

// close tears the shard down (see Cache.Close).
func (s *shard) close() int64 {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	s.closed = true
	freed := s.bytesLive
	var evs []evicted
	var waiters []func(any)
	for k, e := range s.entries {
		switch e.state {
		case statePending:
			waiters = append(waiters, e.waiters...)
			close(e.done)
		case stateReady:
			evs = append(evs, evicted{key: k, instance: e.instance, bytes: e.bytes})
		}
		delete(s.entries, k)
	}
	s.head, s.tail = nil, nil
	s.ready = 0
	s.negCount = 0
	s.bytesLive = 0
	s.mu.Unlock()
	s.fire(evs)
	for _, w := range waiters {
		w(nil)
	}
	return freed
}
