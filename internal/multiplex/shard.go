package multiplex

import (
	"reflect"
	"sync"
	"time"
)

type entryState int

const (
	statePending entryState = iota + 1
	stateReady
	stateNegative
)

// entry is one key's cache slot, moving pending → ready (→ refreshing
// in place) or pending → negative as builds succeed or fail. Ready
// entries are linked into the shard's LRU list.
type entry struct {
	key      Key
	state    entryState
	instance any
	bytes    int64
	waiters  []func(any)   // event-driven waiters
	done     chan struct{} // blocking waiters
	// refreshing marks a ready entry whose background rebuild is in
	// flight (stale-while-revalidate); it stays servable and is never
	// dropped — not by LRU overflow, not by TTL expiry, not by
	// Invalidate — until the refresh settles. Dropping it would strand
	// the refresher's Complete/Fail on a different entry for the same key
	// (cross-talk between two concurrent builds).
	refreshing bool
	// doomed marks a refreshing entry that was invalidated mid-refresh:
	// a completing refresh replaces the condemned instance as usual, a
	// failing refresh drops the entry instead of keeping it.
	doomed bool
	// expireAt is the clock reading at which the instance expires
	// (0 = immortal).
	expireAt time.Duration
	// fails counts consecutive build failures; the negative backoff
	// doubles with each one.
	fails int
	// retryAt is the clock reading at which a negative entry allows the
	// next build probe.
	retryAt time.Duration
	// lastErr is the most recent build error (negative entries serve it).
	lastErr error
	// prev/next link ready entries in the shard LRU (head = most recent).
	prev, next *entry
}

// evicted is one instance leaving the cache, queued for the OnEvict hook
// which must run outside the shard lock.
type evicted struct {
	key      Key
	instance any
	bytes    int64
}

// borrowState refcounts one instance lent to blocking callers (Acquire).
// While count > 0 any eviction record naming the instance is parked in
// pending instead of reaching OnEvict; the last release fires them.
type borrowState struct {
	count   int
	pending []evicted
}

// shard is one lock stripe: a map plus an intrusive LRU of ready entries.
type shard struct {
	cache *Cache
	// cap bounds this shard's ready entries (0 = unbounded).
	cap int

	mu         sync.Mutex
	entries    map[Key]*entry
	head, tail *entry
	ready      int
	negCount   int
	bytesLive  int64
	stats      Stats // scalar counters only; gauges derive from fields above
	closed     bool
	// borrows tracks instances currently lent out by Acquire, keyed by
	// instance identity. Guarded by mu; kept usable after close so late
	// releases still fire deferred evictions.
	borrows map[any]*borrowState
}

// --- LRU list (callers hold s.mu) ---

func (s *shard) lruPushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) lruRemove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) lruTouch(e *entry) {
	if s.head == e {
		return
	}
	s.lruRemove(e)
	s.lruPushFront(e)
}

// --- lifecycle helpers (callers hold s.mu) ---

// dropReadyLocked unlinks a ready entry and returns its eviction record.
func (s *shard) dropReadyLocked(e *entry) evicted {
	s.lruRemove(e)
	delete(s.entries, e.key)
	s.ready--
	s.bytesLive -= e.bytes
	return evicted{key: e.key, instance: e.instance, bytes: e.bytes}
}

// evictOverflowLocked drops least-recently-used ready entries while the
// shard exceeds its capacity, skipping entries with a refresh in flight
// (they are demonstrably hot and their Complete must find them).
func (s *shard) evictOverflowLocked(out []evicted) []evicted {
	for s.cap > 0 && s.ready > s.cap {
		victim := s.tail
		for victim != nil && victim.refreshing {
			victim = victim.prev
		}
		if victim == nil {
			return out
		}
		out = append(out, s.dropReadyLocked(victim))
		s.stats.Evictions++
	}
	return out
}

func (e *entry) expired(now time.Duration) bool {
	return e.expireAt > 0 && now >= e.expireAt
}

func (s *shard) inRefreshWindow(e *entry, now time.Duration) bool {
	w := s.cache.cfg.RefreshWindow
	return w > 0 && e.expireAt > 0 && now >= e.expireAt-w
}

// fire invokes the OnEvict closer hook for every collected instance,
// except those still lent out by Acquire: their records are parked and
// fire when the last borrower releases. Callers must have released s.mu.
func (s *shard) fire(evs []evicted) {
	hook := s.cache.cfg.OnEvict
	if hook == nil {
		return
	}
	for _, ev := range evs {
		if s.deferWhileBorrowed(ev) {
			continue
		}
		hook(ev.key, ev.instance, ev.bytes)
	}
}

// hashable reports whether v can key the borrow map (non-comparable
// instances — slices, maps, funcs — cannot be tracked and fall back to
// immediate OnEvict on eviction).
func hashable(v any) bool {
	if v == nil {
		return false
	}
	return reflect.TypeOf(v).Comparable()
}

// trackBorrows reports whether borrow bookkeeping buys anything: without
// an OnEvict hook there is nothing to defer.
func (s *shard) trackBorrows(inst any) bool {
	return s.cache.cfg.OnEvict != nil && hashable(inst)
}

// borrowLocked registers one loan of inst. Callers hold s.mu and have
// checked trackBorrows.
func (s *shard) borrowLocked(inst any) {
	if s.borrows == nil {
		s.borrows = make(map[any]*borrowState)
	}
	st := s.borrows[inst]
	if st == nil {
		st = &borrowState{}
		s.borrows[inst] = st
	}
	st.count++
}

// borrow is borrowLocked for callers not yet holding s.mu (the miss-path
// builder registers its instance before publishing it).
func (s *shard) borrow(inst any) {
	if !s.trackBorrows(inst) {
		return
	}
	s.mu.Lock()
	s.borrowLocked(inst)
	s.mu.Unlock()
}

// deferWhileBorrowed parks ev if its instance is still lent out,
// reporting whether the OnEvict hook must wait for the last release.
func (s *shard) deferWhileBorrowed(ev evicted) bool {
	if !hashable(ev.instance) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.borrows[ev.instance]
	if st == nil || st.count <= 0 {
		return false
	}
	st.pending = append(st.pending, ev)
	return true
}

// release returns one loan of inst; the last release fires any eviction
// records that were parked while the instance was lent out.
func (s *shard) release(inst any) {
	if !s.trackBorrows(inst) {
		return
	}
	s.mu.Lock()
	st := s.borrows[inst]
	if st == nil {
		s.mu.Unlock()
		return
	}
	st.count--
	if st.count > 0 {
		s.mu.Unlock()
		return
	}
	pending := st.pending
	delete(s.borrows, inst)
	s.mu.Unlock()
	for _, ev := range pending {
		s.cache.cfg.OnEvict(ev.key, ev.instance, ev.bytes)
	}
}

// beginLocked is the shared lookup of both faces. Callers hold s.mu. It
// returns the begin result, the instance (hit/stale), the done channel
// (pending), the last build error (negative) and any evictions to fire.
// borrow registers a loan on any returned instance (the blocking face's
// Acquire; the event-driven face never borrows).
func (s *shard) beginLocked(key Key, borrow bool) (BeginResult, any, chan struct{}, error, []evicted) {
	now := s.cache.cfg.Now()
	e, ok := s.entries[key]
	if ok && e.state == stateReady && e.expired(now) && !e.refreshing {
		// Lazy TTL expiry: the instance is released through OnEvict and
		// this caller rebuilds. An expired entry whose refresh is in
		// flight is NOT dropped — its refresher's Complete/Fail must find
		// it — so it falls through and keeps serving stale below.
		ev := s.dropReadyLocked(e)
		s.stats.Expired++
		s.stats.Misses++
		s.entries[key] = &entry{key: key, state: statePending, done: make(chan struct{})}
		return BeginMiss, nil, nil, nil, []evicted{ev}
	}
	if !ok {
		s.stats.Misses++
		s.entries[key] = &entry{key: key, state: statePending, done: make(chan struct{})}
		return BeginMiss, nil, nil, nil, nil
	}
	switch e.state {
	case stateReady:
		if !e.refreshing && s.inRefreshWindow(e, now) {
			e.refreshing = true
			s.stats.StaleHits++
			s.stats.Refreshes++
			s.stats.BytesSaved += e.bytes
			s.lruTouch(e)
			if borrow && s.trackBorrows(e.instance) {
				s.borrowLocked(e.instance)
			}
			return BeginStale, e.instance, nil, nil, nil
		}
		s.stats.Hits++
		s.stats.BytesSaved += e.bytes
		s.lruTouch(e)
		if borrow && s.trackBorrows(e.instance) {
			s.borrowLocked(e.instance)
		}
		return BeginHit, e.instance, nil, nil, nil
	case stateNegative:
		if now >= e.retryAt {
			// Backoff elapsed: this caller probes. The consecutive-failure
			// count survives so another failure doubles the backoff again.
			e.state = statePending
			e.done = make(chan struct{})
			e.waiters = nil
			s.negCount--
			s.stats.Misses++
			return BeginMiss, nil, nil, nil, nil
		}
		s.stats.NegativeHits++
		return BeginNegative, nil, nil, e.lastErr, nil
	default: // statePending
		s.stats.Coalesced++
		return BeginPending, nil, e.done, nil, nil
	}
}

// begin is the event-driven face's lookup.
func (s *shard) begin(key Key) (BeginResult, any) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return BeginMiss, nil
	}
	res, inst, _, _, evs := s.beginLocked(key, false)
	s.mu.Unlock()
	s.fire(evs)
	return res, inst
}

// beginBlocking is the blocking face's lookup; closed reports a closed
// cache (Acquire turns it into ErrCacheClosed). borrow registers a loan
// on any instance returned.
func (s *shard) beginBlocking(key Key, borrow bool) (res BeginResult, inst any, done chan struct{}, lastErr error, closed bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, nil, nil, nil, true
	}
	var evs []evicted
	res, inst, done, lastErr, evs = s.beginLocked(key, borrow)
	s.mu.Unlock()
	s.fire(evs)
	return res, inst, done, lastErr, false
}

// readyValue reports the instance for key if it is ready and unexpired —
// the recheck a coalesced waiter performs after the build settles.
// borrow registers a loan on the returned instance.
func (s *shard) readyValue(key Key, borrow bool) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.state != stateReady || (e.expired(s.cache.cfg.Now()) && !e.refreshing) {
		return nil, false
	}
	if borrow && s.trackBorrows(e.instance) {
		s.borrowLocked(e.instance)
	}
	return e.instance, true
}

// wait registers an event-driven waiter (see Cache.Wait).
func (s *shard) wait(key Key, fn func(any)) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fn(nil)
		return
	}
	e, ok := s.entries[key]
	if !ok || e.state == stateNegative {
		s.mu.Unlock()
		fn(nil)
		return
	}
	if e.state == stateReady {
		inst := e.instance
		s.mu.Unlock()
		fn(inst)
		return
	}
	e.waiters = append(e.waiters, fn)
	s.mu.Unlock()
}

// complete publishes a built instance (see Cache.Complete).
func (s *shard) complete(key Key, instance any, bytes int64) {
	now := s.cache.cfg.Now()
	s.mu.Lock()
	e, ok := s.entries[key]
	if s.closed || !ok {
		// Nowhere to store it: release the orphaned instance so its
		// sockets do not leak past the container teardown.
		s.mu.Unlock()
		s.fire([]evicted{{key: key, instance: instance, bytes: bytes}})
		return
	}
	var evs []evicted
	var waiters []func(any)
	switch e.state {
	case statePending:
		e.state = stateReady
		e.instance = instance
		e.bytes = bytes
		e.fails = 0
		e.lastErr = nil
		if ttl := s.cache.cfg.TTL; ttl > 0 {
			e.expireAt = now + ttl
		}
		waiters = e.waiters
		e.waiters = nil
		close(e.done)
		e.done = nil
		s.ready++
		s.bytesLive += bytes
		s.stats.BytesSaved += bytes * int64(len(waiters))
		s.lruPushFront(e)
		evs = s.evictOverflowLocked(evs)
	case stateReady:
		if e.refreshing {
			// Refresh replacement: the stale instance leaves the cache. An
			// invalidation that condemned the entry mid-refresh is satisfied
			// too — the condemned instance is exactly what leaves.
			evs = append(evs, evicted{key: key, instance: e.instance, bytes: e.bytes})
			s.bytesLive += bytes - e.bytes
			e.instance = instance
			e.bytes = bytes
			e.refreshing = false
			e.doomed = false
			if ttl := s.cache.cfg.TTL; ttl > 0 {
				e.expireAt = now + ttl
			}
			s.lruTouch(e)
		} else {
			// Duplicate publish: the first instance wins, the duplicate is
			// released.
			evs = append(evs, evicted{key: key, instance: instance, bytes: bytes})
		}
	default: // stateNegative: a stray publish after a Fail settled the key
		evs = append(evs, evicted{key: key, instance: instance, bytes: bytes})
	}
	s.mu.Unlock()
	s.fire(evs)
	for _, w := range waiters {
		w(instance)
	}
}

// fail settles a failed build (see Cache.Fail / Cache.FailErr).
func (s *shard) fail(key Key, cause error) {
	now := s.cache.cfg.Now()
	s.mu.Lock()
	e, ok := s.entries[key]
	if s.closed || !ok {
		s.mu.Unlock()
		return
	}
	var waiters []func(any)
	var evs []evicted
	switch e.state {
	case statePending:
		s.stats.BuildFailures++
		waiters = e.waiters
		e.waiters = nil
		close(e.done)
		e.done = nil
		if base := s.cache.cfg.NegativeBackoff; base > 0 {
			e.state = stateNegative
			e.fails++
			backoff := base << uint(e.fails-1)
			if max := s.cache.cfg.NegativeBackoffMax; backoff > max || backoff <= 0 {
				backoff = max
			}
			e.retryAt = now + backoff
			e.lastErr = cause
			s.negCount++
			s.boundNegativesLocked(e)
		} else {
			delete(s.entries, key)
		}
	case stateReady:
		if e.refreshing {
			e.refreshing = false
			s.stats.BuildFailures++
			if e.doomed {
				// Invalidated mid-refresh: the failed refresh cannot replace
				// the condemned instance, so the entry leaves now instead of
				// lingering until hard expiry.
				evs = append(evs, s.dropReadyLocked(e))
			}
			// Otherwise a failed refresh keeps the stale instance until
			// hard expiry; the next stale hit may try again.
		}
		// Fail on a plain ready key must not evict it (seed semantics).
	default: // stateNegative: already settled
	}
	s.mu.Unlock()
	s.fire(evs)
	for _, w := range waiters {
		w(nil)
	}
}

// boundNegativesLocked keeps the negative-entry population finite: failing
// keys are remembered, but a workload cycling through endless distinct
// failing keys must not grow the map without bound. The entry closest to
// its retry time (other than keep) is dropped first.
func (s *shard) boundNegativesLocked(keep *entry) {
	maxNeg := 64
	if s.cap > maxNeg {
		maxNeg = s.cap
	}
	if s.negCount <= maxNeg {
		return
	}
	var victim *entry
	for _, e := range s.entries {
		if e.state != stateNegative || e == keep {
			continue
		}
		if victim == nil || e.retryAt < victim.retryAt {
			victim = e
		}
	}
	if victim != nil {
		delete(s.entries, victim.key)
		s.negCount--
	}
}

// invalidate drops a ready or negative entry (see Cache.Invalidate).
func (s *shard) invalidate(key Key) bool {
	s.mu.Lock()
	e, ok := s.entries[key]
	if s.closed || !ok || e.state == statePending {
		s.mu.Unlock()
		return false
	}
	var evs []evicted
	switch e.state {
	case stateReady:
		if e.refreshing {
			// Never drop an entry whose refresh is in flight — the
			// refresher's Complete/Fail must find it. Condemn it instead:
			// a completing refresh replaces the instance anyway, a failing
			// refresh drops the entry. Until then the condemned instance
			// keeps being served, as stale-while-revalidate already does.
			e.doomed = true
		} else {
			evs = append(evs, s.dropReadyLocked(e))
		}
	default: // stateNegative
		delete(s.entries, key)
		s.negCount--
	}
	s.stats.Invalidations++
	s.mu.Unlock()
	s.fire(evs)
	return true
}

// close tears the shard down (see Cache.Close).
func (s *shard) close() int64 {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	s.closed = true
	freed := s.bytesLive
	var evs []evicted
	var waiters []func(any)
	for k, e := range s.entries {
		switch e.state {
		case statePending:
			waiters = append(waiters, e.waiters...)
			close(e.done)
		case stateReady:
			evs = append(evs, evicted{key: k, instance: e.instance, bytes: e.bytes})
		}
		delete(s.entries, k)
	}
	s.head, s.tail = nil, nil
	s.ready = 0
	s.negCount = 0
	s.bytesLive = 0
	s.mu.Unlock()
	s.fire(evs)
	for _, w := range waiters {
		w(nil)
	}
	return freed
}
