// Package multiplex implements the paper's Resource Multiplexer (§III-D):
// a per-container resource-args-result cache that intercepts resource
// creation calls (e.g. building an S3 client), keys them by the callee and
// a hash of the creation arguments, and serves repeated creations from the
// cache instead of constructing duplicate instances.
//
// The cache exposes two faces over one store:
//
//   - An event-driven face (Begin / Wait / Complete / Fail) used by the
//     discrete-event simulator, where "building" takes virtual time and
//     concurrent requesters for the same key coalesce onto the first
//     build.
//   - A blocking face (GetOrBuild) used by the live platform, where the
//     build runs real code and concurrent goroutines coalesce
//     singleflight-style.
package multiplex

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// Key identifies a resource creation: the intercepted callee plus the
// hashed creation arguments. The paper hashes arguments to bound memory
// and speed up matching; collisions are ignored as negligibly likely at
// container scope (§III-D).
type Key struct {
	// Callee is the creation call, e.g. "boto3.client".
	Callee string
	// ArgsHash is the hash of the creation arguments.
	ArgsHash uint64
}

// HashArgs hashes creation arguments with FNV-1a.
func HashArgs(args string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(args)) // fnv.Write never fails
	return h.Sum64()
}

// NewKey builds a Key from a callee and raw argument string.
func NewKey(callee, args string) Key {
	return Key{Callee: callee, ArgsHash: HashArgs(args)}
}

// BeginResult reports the cache state encountered by Begin.
type BeginResult int

// Begin outcomes.
const (
	// BeginHit means a ready instance was returned.
	BeginHit BeginResult = iota + 1
	// BeginMiss means the caller is now the builder and must call
	// Complete or Fail.
	BeginMiss
	// BeginPending means another caller is building; register interest
	// with Wait.
	BeginPending
)

// String implements fmt.Stringer.
func (r BeginResult) String() string {
	switch r {
	case BeginHit:
		return "hit"
	case BeginMiss:
		return "miss"
	case BeginPending:
		return "pending"
	default:
		return fmt.Sprintf("begin(%d)", int(r))
	}
}

// Stats summarises cache effectiveness.
type Stats struct {
	// Hits counts creations served from a ready instance.
	Hits uint64
	// Coalesced counts creations that waited on an in-flight build.
	Coalesced uint64
	// Misses counts actual builds started.
	Misses uint64
	// LiveInstances is the number of ready instances held.
	LiveInstances int
	// BytesLive is the memory held by ready instances.
	BytesLive int64
	// BytesSaved is the duplicate memory avoided: the instance size for
	// each hit or coalesced creation.
	BytesSaved int64
	// Evictions counts instances dropped by the LRU bound.
	Evictions uint64
}

type entryState int

const (
	statePending entryState = iota + 1
	stateReady
)

type entry struct {
	state    entryState
	instance any
	bytes    int64
	waiters  []func(any)   // event-driven waiters
	done     chan struct{} // blocking waiters
	lastUsed uint64        // LRU clock value of the last hit
}

// Option configures a Cache.
type Option func(*Cache)

// WithMaxEntries bounds the number of ready instances held; when a build
// completes over the bound, the least-recently-used ready instance is
// evicted. Zero or negative means unbounded (the paper's container-scoped
// cache, whose lifetime bounds it naturally).
func WithMaxEntries(n int) Option {
	return func(c *Cache) { c.maxEntries = n }
}

// WithOnEvict registers a callback invoked (outside the cache lock is NOT
// guaranteed; keep it cheap) whenever an instance is evicted, receiving
// its key, instance and byte size — e.g. to return memory to a ledger.
func WithOnEvict(fn func(Key, any, int64)) Option {
	return func(c *Cache) { c.onEvict = fn }
}

// Cache is one container's Resource Multiplexer.
//
// The zero value is not usable; create caches with New.
type Cache struct {
	mu         sync.Mutex
	entries    map[Key]*entry
	stats      Stats
	clock      uint64
	maxEntries int
	onEvict    func(Key, any, int64)
}

// New creates an empty cache.
func New(opts ...Option) *Cache {
	c := &Cache{entries: make(map[Key]*entry)}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Begin looks up key. On BeginHit the ready instance is returned. On
// BeginMiss the caller becomes the builder and must finish with Complete
// or Fail. On BeginPending the caller should register a Wait callback.
func (c *Cache) Begin(key Key) (BeginResult, any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.entries[key] = &entry{state: statePending, done: make(chan struct{})}
		c.stats.Misses++
		return BeginMiss, nil
	}
	switch e.state {
	case stateReady:
		c.stats.Hits++
		c.stats.BytesSaved += e.bytes
		c.clock++
		e.lastUsed = c.clock
		return BeginHit, e.instance
	default:
		c.stats.Coalesced++
		return BeginPending, nil
	}
}

// Wait registers fn to run when the pending build for key finishes. fn
// receives the built instance, or nil if the build failed (the caller
// should then retry Begin). If the key is already ready or absent, fn runs
// immediately with the current instance (nil when absent).
func (c *Cache) Wait(key Key, fn func(any)) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		fn(nil)
		return
	}
	if e.state == stateReady {
		inst := e.instance
		c.mu.Unlock()
		fn(inst)
		return
	}
	e.waiters = append(e.waiters, fn)
	c.mu.Unlock()
}

// Complete publishes the built instance for key and notifies waiters.
// Waiters count toward BytesSaved: each avoided building a duplicate.
func (c *Cache) Complete(key Key, instance any, bytes int64) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || e.state == stateReady {
		c.mu.Unlock()
		return
	}
	e.state = stateReady
	e.instance = instance
	e.bytes = bytes
	c.clock++
	e.lastUsed = c.clock
	waiters := e.waiters
	e.waiters = nil
	c.stats.LiveInstances++
	c.stats.BytesLive += bytes
	c.stats.BytesSaved += bytes * int64(len(waiters))
	close(e.done)
	evictedKey, evicted := c.evictOverflowLocked(key)
	c.mu.Unlock()
	if evicted != nil && c.onEvict != nil {
		c.onEvict(evictedKey, evicted.instance, evicted.bytes)
	}
	for _, w := range waiters {
		w(instance)
	}
}

// evictOverflowLocked drops the least-recently-used ready entry (other
// than keep) when the ready count exceeds the bound. It returns the
// evicted entry, if any. Callers hold c.mu.
func (c *Cache) evictOverflowLocked(keep Key) (Key, *entry) {
	if c.maxEntries <= 0 || c.stats.LiveInstances <= c.maxEntries {
		return Key{}, nil
	}
	var victimKey Key
	var victim *entry
	for k, e := range c.entries {
		if e.state != stateReady || k == keep {
			continue
		}
		if victim == nil || e.lastUsed < victim.lastUsed {
			victimKey = k
			victim = e
		}
	}
	if victim == nil {
		return Key{}, nil
	}
	delete(c.entries, victimKey)
	c.stats.LiveInstances--
	c.stats.BytesLive -= victim.bytes
	c.stats.Evictions++
	return victimKey, victim
}

// Fail abandons a pending build: the entry is removed and waiters are
// notified with nil so they can retry.
func (c *Cache) Fail(key Key) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || e.state == stateReady {
		c.mu.Unlock()
		return
	}
	delete(c.entries, key)
	waiters := e.waiters
	close(e.done)
	c.mu.Unlock()
	for _, w := range waiters {
		w(nil)
	}
}

// GetOrBuild is the blocking face used by the live platform: it returns
// the cached instance for key, or runs build exactly once per miss while
// concurrent callers wait. The boolean reports whether the value was
// served from cache (hit or coalesced wait).
func (c *Cache) GetOrBuild(key Key, build func() (any, int64, error)) (any, bool, error) {
	for {
		res, inst := c.Begin(key)
		switch res {
		case BeginHit:
			return inst, true, nil
		case BeginMiss:
			v, bytes, err := build()
			if err != nil {
				c.Fail(key)
				return nil, false, fmt.Errorf("multiplex: build %s: %w", key.Callee, err)
			}
			c.Complete(key, v, bytes)
			return v, false, nil
		case BeginPending:
			c.mu.Lock()
			e, ok := c.entries[key]
			if !ok {
				c.mu.Unlock()
				continue // build failed and was removed; retry
			}
			done := e.done
			c.mu.Unlock()
			<-done
			c.mu.Lock()
			e, ok = c.entries[key]
			ready := ok && e.state == stateReady
			var v any
			if ready {
				v = e.instance
			}
			c.mu.Unlock()
			if ready {
				return v, true, nil
			}
			// The build failed; retry (this caller may become the builder).
		}
	}
}

// Stats returns a snapshot of the cache statistics.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close drops every entry and reports the bytes that were live (so the
// container teardown can return them to the node's memory ledger).
func (c *Cache) Close() int64 {
	c.mu.Lock()
	freed := c.stats.BytesLive
	// Pending builds are abandoned like Fail: blocking callers wake on
	// done, and event-driven waiters are notified with nil. Dropping the
	// waiters silently would strand coalesced invocations forever when a
	// container is torn down (crashed) mid-build.
	var waiters []func(any)
	for k, e := range c.entries {
		if e.state == statePending {
			waiters = append(waiters, e.waiters...)
			close(e.done)
		}
		delete(c.entries, k)
	}
	c.stats.BytesLive = 0
	c.stats.LiveInstances = 0
	c.mu.Unlock()
	for _, w := range waiters {
		w(nil)
	}
	return freed
}
