// Package multiplex implements the paper's Resource Multiplexer (§III-D):
// a per-container resource-args-result cache that intercepts resource
// creation calls (e.g. building an S3 client), keys them by the callee and
// a hash of the creation arguments, and serves repeated creations from the
// cache instead of constructing duplicate instances.
//
// The v2 cache is production-grade concurrent state:
//
//   - Lock striping: entries spread over a power-of-two number of shards
//     keyed by a finalised hash of the Key, so concurrent creations on
//     different keys never contend on one mutex.
//   - Bounded capacity: per-shard LRU lists bound the ready instances
//     (Config.MaxEntries split across shards) and Config.TTL expires
//     entries by age; every instance leaving the cache passes through the
//     OnEvict closer hook so evicted clients can release sockets.
//   - Failure awareness: a failed build can be remembered as a negative
//     entry (Config.NegativeBackoff) that denies rebuild stampedes with
//     exponential backoff, and Invalidate lets handler feedback drop an
//     instance that started erroring.
//   - Stale-while-revalidate: a hit inside Config.RefreshWindow of expiry
//     serves the current instance immediately while exactly one caller
//     refreshes it in the background.
//
// The cache exposes two faces over one store:
//
//   - An event-driven face (Begin / Wait / Complete / Fail) used by the
//     discrete-event simulator, where "building" takes virtual time and
//     concurrent requesters for the same key coalesce onto the first
//     build.
//   - A blocking face (Acquire, plus the non-borrowing GetOrBuild /
//     GetOrBuildContext wrappers) used by the live platform, where the
//     build runs real code and concurrent goroutines coalesce
//     singleflight-style. Acquire additionally lends the instance to the
//     caller: evictions of a lent instance defer the OnEvict hook until
//     its release, so in-use clients are never closed mid-request.
package multiplex

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"faasbatch/internal/hashmix"
)

// Key identifies a resource creation: the intercepted callee plus the
// hashed creation arguments. The paper hashes arguments to bound memory
// and speed up matching; collisions are ignored as negligibly likely at
// container scope (§III-D).
type Key struct {
	// Callee is the creation call, e.g. "boto3.client".
	Callee string
	// ArgsHash is the hash of the creation arguments.
	ArgsHash uint64
}

// HashArgs hashes creation arguments with FNV-1a.
func HashArgs(args string) uint64 { return hashmix.FNV64a(args) }

// NewKey builds a Key from a callee and raw argument string.
func NewKey(callee, args string) Key {
	return Key{Callee: callee, ArgsHash: HashArgs(args)}
}

// shardHash mixes a Key into a well-distributed 64-bit value for shard
// selection: FNV-1a over the callee, xor the args hash, then the shared
// splitmix64 finalisation (internal/hashmix) so map-adjacent keys land on
// distant shards.
func shardHash(k Key) uint64 {
	return hashmix.Mix64(hashmix.FNV64a(k.Callee) ^ k.ArgsHash)
}

// Typed errors returned by the blocking face.
var (
	// ErrBuildFailed marks an error caused by a failed resource build —
	// either this caller's own build or a remembered failure served from
	// the negative cache. errors.Is(err, ErrBuildFailed) matches, and the
	// underlying constructor error remains reachable via errors.Is/As.
	ErrBuildFailed = errors.New("multiplex: resource build failed")
	// ErrCacheClosed reports a GetOrBuildContext call against a closed
	// cache (its container was torn down).
	ErrCacheClosed = errors.New("multiplex: cache closed")
)

// buildError wraps a constructor failure so callers can match both
// ErrBuildFailed and the original cause.
type buildError struct {
	key   Key
	cause error
}

// Error implements error.
func (e *buildError) Error() string {
	return fmt.Sprintf("multiplex: build %s: %v", e.key.Callee, e.cause)
}

// Unwrap exposes both the sentinel and the cause to errors.Is/As.
func (e *buildError) Unwrap() []error { return []error{ErrBuildFailed, e.cause} }

// Outcome classifies how one blocking-face creation was served.
type Outcome int

// Outcomes of GetOrBuildContext.
const (
	// OutcomeMiss means this caller built the instance.
	OutcomeMiss Outcome = iota + 1
	// OutcomeHit means a ready instance was served.
	OutcomeHit
	// OutcomeCoalesced means the caller waited on another caller's build.
	OutcomeCoalesced
	// OutcomeStale means a near-expiry instance was served immediately
	// while this call triggered a background refresh.
	OutcomeStale
	// OutcomeNegative means the creation was denied by the negative cache
	// (a recent build failed and its backoff has not elapsed).
	OutcomeNegative
	// OutcomeError means the creation failed (build error, cache closed,
	// or context cancellation).
	OutcomeError
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeHit:
		return "hit"
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeStale:
		return "stale"
	case OutcomeNegative:
		return "negative"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Cached reports whether the outcome avoided a synchronous build (the
// deprecated Get face folds outcomes into this boolean).
func (o Outcome) Cached() bool {
	return o == OutcomeHit || o == OutcomeCoalesced || o == OutcomeStale
}

// BeginResult reports the cache state encountered by Begin.
type BeginResult int

// Begin outcomes.
const (
	// BeginHit means a ready instance was returned.
	BeginHit BeginResult = iota + 1
	// BeginMiss means the caller is now the builder and must call
	// Complete or Fail.
	BeginMiss
	// BeginPending means another caller is building; register interest
	// with Wait.
	BeginPending
	// BeginStale means a ready instance inside the refresh window was
	// returned AND the caller became the refresher: it must rebuild and
	// finish with Complete (replacing the instance) or Fail (keeping the
	// stale one until hard expiry).
	BeginStale
	// BeginNegative means the key's last build failed recently and its
	// backoff has not elapsed; the creation is denied without building.
	BeginNegative
)

// String implements fmt.Stringer.
func (r BeginResult) String() string {
	switch r {
	case BeginHit:
		return "hit"
	case BeginMiss:
		return "miss"
	case BeginPending:
		return "pending"
	case BeginStale:
		return "stale"
	case BeginNegative:
		return "negative"
	default:
		return fmt.Sprintf("begin(%d)", int(r))
	}
}

// Stats summarises cache effectiveness.
type Stats struct {
	// Hits counts creations served from a ready instance.
	Hits uint64
	// Coalesced counts creations that waited on an in-flight build.
	Coalesced uint64
	// Misses counts actual builds started.
	Misses uint64
	// StaleHits counts creations served a near-expiry instance while a
	// refresh was triggered.
	StaleHits uint64
	// Refreshes counts stale-while-revalidate rebuilds started.
	Refreshes uint64
	// NegativeHits counts creations denied by the negative cache.
	NegativeHits uint64
	// BuildFailures counts builds that finished with an error.
	BuildFailures uint64
	// Invalidations counts entries dropped by handler feedback.
	Invalidations uint64
	// LiveInstances is the number of ready instances held.
	LiveInstances int
	// BytesLive is the memory held by ready instances.
	BytesLive int64
	// BytesSaved is the duplicate memory avoided: the instance size for
	// each hit, stale hit or coalesced creation.
	BytesSaved int64
	// Evictions counts instances dropped by the LRU capacity bound.
	Evictions uint64
	// Expired counts instances dropped by the TTL.
	Expired uint64
	// Shards is the number of lock-striped shards.
	Shards int
	// MaxShardOccupancy is the largest ready-instance count held by any
	// one shard (a skew indicator: compare against LiveInstances/Shards).
	MaxShardOccupancy int
}

// Add folds another snapshot into s: counters and live gauges sum, shard
// gauges aggregate (Shards sums across caches, MaxShardOccupancy takes the
// max), so a platform can aggregate per-container caches into one view.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Coalesced += o.Coalesced
	s.Misses += o.Misses
	s.StaleHits += o.StaleHits
	s.Refreshes += o.Refreshes
	s.NegativeHits += o.NegativeHits
	s.BuildFailures += o.BuildFailures
	s.Invalidations += o.Invalidations
	s.LiveInstances += o.LiveInstances
	s.BytesLive += o.BytesLive
	s.BytesSaved += o.BytesSaved
	s.Evictions += o.Evictions
	s.Expired += o.Expired
	s.Shards += o.Shards
	if o.MaxShardOccupancy > s.MaxShardOccupancy {
		s.MaxShardOccupancy = o.MaxShardOccupancy
	}
}

// Config parameterises a Cache. The zero value is the paper's seed cache:
// unbounded, immortal entries, no failure memory, auto-sized shards.
type Config struct {
	// Shards is the number of lock stripes, rounded up to a power of two.
	// Zero picks an automatic size from GOMAXPROCS. When MaxEntries > 0
	// the count is clamped so every shard owns at least one slot.
	Shards int
	// MaxEntries bounds the ready instances held across all shards. The
	// capacity splits per shard (remainder slots distributed so the shard
	// caps sum to exactly MaxEntries) and each shard evicts its least-
	// recently-used ready instance on overflow. Because the bound is
	// enforced per shard, a heavily skewed key population can see
	// evictions while total occupancy is still below MaxEntries; with
	// auto-sized Shards the shard count shrinks until every shard owns at
	// least a few slots to keep that skew effect small. Zero or negative
	// means unbounded (the paper's container-scoped cache, whose lifetime
	// bounds it naturally).
	MaxEntries int
	// TTL expires a ready instance this long after it was (re)built.
	// Expiry is lazy: an expired entry is dropped (through OnEvict) when
	// next touched. Zero means immortal entries.
	TTL time.Duration
	// RefreshWindow enables stale-while-revalidate: a lookup landing
	// within this window before expiry is served the current instance
	// immediately while one caller rebuilds in the background. Zero
	// disables background refresh. Requires TTL > 0.
	RefreshWindow time.Duration
	// NegativeBackoff enables negative caching: after a build fails, the
	// key denies creations (BeginNegative / OutcomeNegative) for this long,
	// doubling on every further consecutive failure up to
	// NegativeBackoffMax. Zero disables failure memory — a failed build is
	// forgotten immediately, as in the seed cache.
	NegativeBackoff time.Duration
	// NegativeBackoffMax caps the exponential backoff. Zero defaults to
	// 32× NegativeBackoff.
	NegativeBackoffMax time.Duration
	// Now is the cache's monotonic clock, used for TTL and backoff
	// arithmetic. Nil defaults to wall time; the simulator injects virtual
	// time so eviction and refresh land deterministically.
	Now func() time.Duration
	// OnEvict is the entry-lifecycle closer hook: it runs (outside the
	// shard lock) for every instance that leaves the cache — LRU eviction,
	// TTL expiry, refresh replacement, Invalidate and Close — so evicted
	// clients can release sockets or return memory to a ledger.
	OnEvict func(Key, any, int64)
}

// Option configures a Cache built with New.
type Option func(*Config)

// WithShards sets the lock-stripe count (rounded up to a power of two).
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = n }
}

// WithMaxEntries bounds the number of ready instances held; when a build
// completes over the bound, the shard's least-recently-used ready instance
// is evicted. Zero or negative means unbounded.
func WithMaxEntries(n int) Option {
	return func(c *Config) { c.MaxEntries = n }
}

// WithTTL expires ready instances by age.
func WithTTL(d time.Duration) Option {
	return func(c *Config) { c.TTL = d }
}

// WithRefreshWindow enables stale-while-revalidate inside the window.
func WithRefreshWindow(d time.Duration) Option {
	return func(c *Config) { c.RefreshWindow = d }
}

// WithNegativeBackoff enables negative caching with the given base
// backoff.
func WithNegativeBackoff(base, max time.Duration) Option {
	return func(c *Config) { c.NegativeBackoff, c.NegativeBackoffMax = base, max }
}

// WithClock injects the cache's monotonic clock (virtual time in the
// simulator).
func WithClock(now func() time.Duration) Option {
	return func(c *Config) { c.Now = now }
}

// WithOnEvict registers the entry-lifecycle closer hook, invoked outside
// the shard lock whenever an instance leaves the cache, receiving its key,
// instance and byte size — e.g. to close sockets or return memory to a
// ledger.
func WithOnEvict(fn func(Key, any, int64)) Option {
	return func(c *Config) { c.OnEvict = fn }
}

// Cache is one container's Resource Multiplexer.
//
// The zero value is not usable; create caches with New or NewWithConfig.
type Cache struct {
	cfg    Config
	shards []*shard
	mask   uint64
}

// New creates an empty cache from options.
func New(opts ...Option) *Cache {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewWithConfig(cfg)
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewWithConfig creates an empty cache from cfg.
func NewWithConfig(cfg Config) *Cache {
	n := cfg.Shards
	auto := n <= 0
	if auto {
		// Auto: enough stripes that GOMAXPROCS goroutines rarely collide.
		n = 2 * runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
		if n > 256 {
			n = 256
		}
	}
	n = nextPow2(n)
	if cfg.MaxEntries > 0 {
		if auto {
			// Auto sizing also respects the capacity: fewer, deeper shards
			// beat many 1-slot shards, which thrash under key skew (two hot
			// keys colliding in a 1-slot shard evict each other forever).
			for n > 1 && cfg.MaxEntries/n < 4 {
				n >>= 1
			}
		}
		// Every shard must own at least one slot, or the capacity split
		// would round a shard's bound to zero and evict everything it
		// completes.
		for n > 1 && cfg.MaxEntries/n < 1 {
			n >>= 1
		}
	}
	if cfg.NegativeBackoff > 0 && cfg.NegativeBackoffMax <= 0 {
		cfg.NegativeBackoffMax = 32 * cfg.NegativeBackoff
	}
	if cfg.Now == nil {
		base := time.Now()
		cfg.Now = func() time.Duration { return time.Since(base) }
	}
	c := &Cache{cfg: cfg, mask: uint64(n - 1)}
	// The capacity splits across shards with the remainder distributed one
	// slot at a time, so the shard caps sum to exactly MaxEntries.
	base, rem := 0, 0
	if cfg.MaxEntries > 0 {
		base, rem = cfg.MaxEntries/n, cfg.MaxEntries%n
	}
	c.shards = make([]*shard, n)
	for i := range c.shards {
		capacity := base
		if i < rem {
			capacity++
		}
		c.shards[i] = &shard{cache: c, cap: capacity, entries: make(map[Key]*entry)}
	}
	return c
}

// shardFor picks the shard owning key.
func (c *Cache) shardFor(key Key) *shard {
	return c.shards[shardHash(key)&c.mask]
}

// Begin looks up key. On BeginHit the ready instance is returned. On
// BeginMiss the caller becomes the builder and must finish with Complete
// or Fail. On BeginPending the caller should register a Wait callback. On
// BeginStale the instance is returned AND the caller became the
// background refresher (finish with Complete or Fail). On BeginNegative
// the creation is denied by the negative cache.
//
// On a closed cache Begin reports BeginMiss without becoming a builder:
// the subsequent Complete is a no-op (releasing the instance through
// OnEvict), so sim callers terminate cleanly during teardown.
func (c *Cache) Begin(key Key) (BeginResult, any) {
	return c.shardFor(key).begin(key)
}

// Wait registers fn to run when the pending build for key finishes. fn
// receives the built instance, or nil if the build failed (the caller
// should then retry Begin). If the key is already ready or absent, fn runs
// immediately with the current instance (nil when absent).
func (c *Cache) Wait(key Key, fn func(any)) {
	c.shardFor(key).wait(key, fn)
}

// Complete publishes the built instance for key and notifies waiters.
// Waiters count toward BytesSaved: each avoided building a duplicate.
// Completing a refresh (after BeginStale) replaces the stale instance,
// releasing it through OnEvict. Completing a key the cache no longer
// tracks (failed, invalidated or closed meanwhile) releases the instance
// through OnEvict instead of storing it.
func (c *Cache) Complete(key Key, instance any, bytes int64) {
	c.shardFor(key).complete(key, instance, bytes)
}

// Fail abandons a pending build: waiters are notified with nil. With
// negative caching enabled the key is remembered as failing and denies
// creations until its backoff elapses; otherwise the entry is removed so
// the next Begin retries. Failing a refresh keeps the stale instance until
// hard expiry.
func (c *Cache) Fail(key Key) { c.FailErr(key, nil) }

// FailErr is Fail carrying the build error, which the negative cache
// serves to denied callers (GetOrBuildContext wraps it with
// ErrBuildFailed).
func (c *Cache) FailErr(key Key, cause error) {
	c.shardFor(key).fail(key, cause)
}

// Invalidate drops the ready or negative entry for key — handler feedback
// for an instance that started erroring (the paper's multiplexer trusts
// instances forever; production clients go bad). A ready instance is
// released through OnEvict. Pending builds are untouched. An entry whose
// background refresh is in flight is condemned rather than dropped (so
// the refresher's Complete/Fail still find it): a completing refresh
// replaces the condemned instance, a failing one drops the entry. It
// reports whether an entry was dropped or condemned.
func (c *Cache) Invalidate(key Key) bool {
	return c.shardFor(key).invalidate(key)
}

// GetOrBuild is the deprecated blocking face: it returns the cached
// instance for key, or runs build exactly once per miss while concurrent
// callers wait. The boolean reports whether the value was served from
// cache (hit, stale hit or coalesced wait). On a closed cache it degrades
// to building an uncached instance, preserving the seed cache's teardown
// behaviour.
//
// Deprecated: use GetOrBuildContext, which reports a typed Outcome and
// respects context cancellation.
func (c *Cache) GetOrBuild(key Key, build func() (any, int64, error)) (any, bool, error) {
	v, out, err := c.GetOrBuildContext(context.Background(), key, build)
	if err != nil && errors.Is(err, ErrCacheClosed) {
		v, _, berr := build()
		if berr != nil {
			return nil, false, &buildError{key: key, cause: berr}
		}
		return v, false, nil
	}
	return v, out.Cached(), err
}

// GetOrBuildContext is the non-borrowing blocking face: Acquire with the
// instance released immediately. It offers no protection against the
// cache closing an evicted io.Closer instance while the caller still uses
// it — callers holding instances across real work should use Acquire and
// release when done.
func (c *Cache) GetOrBuildContext(ctx context.Context, key Key, build func() (any, int64, error)) (any, Outcome, error) {
	v, out, release, err := c.Acquire(ctx, key, build)
	release()
	return v, out, err
}

// ReleaseFunc returns a borrowed instance to the cache's lifecycle
// management. It is idempotent and never nil.
type ReleaseFunc func()

// releaseNop is the shared release for un-tracked borrows (no OnEvict
// hook, non-comparable instance, or no instance at all).
var releaseNop ReleaseFunc = func() {}

// releaser wraps one loan of inst in an idempotent ReleaseFunc.
func (c *Cache) releaser(sh *shard, inst any) ReleaseFunc {
	if !sh.trackBorrows(inst) {
		return releaseNop
	}
	var once sync.Once
	return func() { once.Do(func() { sh.release(inst) }) }
}

// runBuild invokes a caller-supplied constructor for key. A panicking
// constructor fails the in-flight build first — waking coalesced waiters
// and arming the negative cache instead of leaving a pending entry that
// deadlocks every later caller — and then re-raises.
func runBuild(sh *shard, key Key, build func() (any, int64, error)) (v any, bytes int64, err error) {
	returned := false
	defer func() {
		if !returned {
			sh.fail(key, fmt.Errorf("multiplex: build %s panicked", key.Callee))
		}
	}()
	v, bytes, err = build()
	returned = true
	return v, bytes, err
}

// Acquire is the blocking face used by the live platform: it returns the
// cached instance for key, or runs build exactly once per miss while
// concurrent callers wait (singleflight). The Outcome classifies how the
// creation was served; on OutcomeStale the instance returns immediately
// while build runs in the background (a panicking refresh is recovered
// and recorded as a failed build). Errors are typed: ErrBuildFailed (own
// build or negative-cache denial, with the constructor's error in the
// chain), ErrCacheClosed, or the context's error when ctx ends while
// coalesced on another caller's build.
//
// The returned ReleaseFunc marks the end of the caller's use of the
// instance: until it runs, any eviction of the instance (LRU overflow,
// TTL expiry, refresh replacement, Invalidate, Close) defers the OnEvict
// hook, so a cached client is never closed out from under a caller
// mid-use. It is never nil, idempotent, and must be called exactly once
// — a forgotten release pins an evicted instance's OnEvict forever.
func (c *Cache) Acquire(ctx context.Context, key Key, build func() (any, int64, error)) (any, Outcome, ReleaseFunc, error) {
	sh := c.shardFor(key)
	for {
		res, inst, done, lastErr, closed := sh.beginBlocking(key, true)
		if closed {
			return nil, OutcomeError, releaseNop, fmt.Errorf("multiplex: get %s: %w", key.Callee, ErrCacheClosed)
		}
		switch res {
		case BeginHit:
			return inst, OutcomeHit, c.releaser(sh, inst), nil
		case BeginStale:
			// This caller owns the refresh; serve stale now, rebuild in the
			// background. The goroutine must always settle the entry: a
			// panic in the constructor is recovered into a failed refresh
			// so the entry is not pinned refreshing forever.
			go func() {
				defer func() {
					if r := recover(); r != nil {
						sh.fail(key, fmt.Errorf("multiplex: refresh %s panicked: %v", key.Callee, r))
					}
				}()
				v, bytes, err := build()
				if err != nil {
					sh.fail(key, err)
					return
				}
				sh.complete(key, v, bytes)
			}()
			return inst, OutcomeStale, c.releaser(sh, inst), nil
		case BeginNegative:
			return nil, OutcomeNegative, releaseNop, &buildError{key: key, cause: negativeCause(lastErr)}
		case BeginMiss:
			v, bytes, err := runBuild(sh, key, build)
			if err != nil {
				sh.fail(key, err)
				return nil, OutcomeError, releaseNop, &buildError{key: key, cause: err}
			}
			// Register the loan before publishing: once complete runs the
			// instance is evictable (and the duplicate/orphan paths inside
			// complete release through OnEvict), but this caller is about
			// to return it.
			sh.borrow(v)
			sh.complete(key, v, bytes)
			return v, OutcomeMiss, c.releaser(sh, v), nil
		default: // BeginPending: coalesce onto the in-flight build.
			select {
			case <-done:
			case <-ctx.Done():
				return nil, OutcomeError, releaseNop, fmt.Errorf("multiplex: wait for %s: %w", key.Callee, ctx.Err())
			}
			if v, ok := sh.readyValue(key, true); ok {
				return v, OutcomeCoalesced, c.releaser(sh, v), nil
			}
			// The build failed; loop — the negative cache denies, or this
			// caller becomes the builder.
		}
	}
}

// negativeCause normalises a negative entry's stored error (Fail without a
// cause stores nil).
func negativeCause(err error) error {
	if err != nil {
		return err
	}
	return errors.New("previous build failed")
}

// Stats returns an aggregated snapshot of the cache statistics.
func (c *Cache) Stats() Stats {
	var st Stats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s := sh.stats
		s.LiveInstances = sh.ready
		s.BytesLive = sh.bytesLive
		if sh.ready > st.MaxShardOccupancy {
			st.MaxShardOccupancy = sh.ready
		}
		sh.mu.Unlock()
		st.Hits += s.Hits
		st.Coalesced += s.Coalesced
		st.Misses += s.Misses
		st.StaleHits += s.StaleHits
		st.Refreshes += s.Refreshes
		st.NegativeHits += s.NegativeHits
		st.BuildFailures += s.BuildFailures
		st.Invalidations += s.Invalidations
		st.LiveInstances += s.LiveInstances
		st.BytesLive += s.BytesLive
		st.BytesSaved += s.BytesSaved
		st.Evictions += s.Evictions
		st.Expired += s.Expired
	}
	st.Shards = len(c.shards)
	return st
}

// Close drops every entry — releasing ready instances through OnEvict and
// waking pending waiters with nil, so coalesced invocations are never
// stranded by a container teardown — and reports the bytes that were live
// (so the teardown can return them to the node's memory ledger). After
// Close, GetOrBuildContext reports ErrCacheClosed and the event-driven
// face stops storing instances. Close is idempotent.
func (c *Cache) Close() int64 {
	var freed int64
	for _, sh := range c.shards {
		freed += sh.close()
	}
	return freed
}
