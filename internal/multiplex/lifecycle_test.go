package multiplex

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// closeRecorder is a cacheable instance whose OnEvict-driven close is
// observable.
type closeRecorder struct {
	name   string
	closed atomic.Int64
}

// TestExpiredEntryWithRefreshInFlightIsNotDropped locks the fix for the
// refresh/expiry race: hard TTL expiry must not drop an entry whose
// background refresh is in flight. Dropping it would start a second build
// for the same key, and the refresher's Complete would settle the wrong
// entry — publishing into (and then evicting from) a build it does not
// own.
func TestExpiredEntryWithRefreshInFlightIsNotDropped(t *testing.T) {
	clock := newTestClock(0)
	var evictedInsts []any
	c := New(WithShards(1), WithTTL(100*time.Millisecond), WithRefreshWindow(30*time.Millisecond),
		clock.opt(), WithOnEvict(func(_ Key, inst any, _ int64) { evictedInsts = append(evictedInsts, inst) }))
	key := NewKey("client", "args")
	c.Begin(key)
	c.Complete(key, "v1", 5)

	clock.advance(80 * time.Millisecond)
	if res, inst := c.Begin(key); res != BeginStale || inst != "v1" {
		t.Fatalf("Begin in window = %v, %v; want stale refresher election", res, inst)
	}
	// Past hard expiry while the refresh is still in flight: the entry
	// must keep serving stale, not miss (a miss would fork a second
	// in-flight build for the key).
	clock.advance(40 * time.Millisecond)
	if res, inst := c.Begin(key); res != BeginHit || inst != "v1" {
		t.Fatalf("Begin past TTL mid-refresh = %v, %v; want hit on stale v1", res, inst)
	}
	// The refresher settles its own entry.
	c.Complete(key, "v2", 6)
	if res, inst := c.Begin(key); res != BeginHit || inst != "v2" {
		t.Fatalf("post-refresh Begin = %v, %v; want hit on v2", res, inst)
	}
	if len(evictedInsts) != 1 || evictedInsts[0] != "v1" {
		t.Fatalf("evicted = %v, want exactly [v1] (v2 must never be released)", evictedInsts)
	}
}

// TestBlockingRefreshSurvivesHardExpiry is the blocking-face regression
// for the same race: a caller arriving after hard expiry, while the
// refresh goroutine is still building, is served the stale instance and
// the refresher's replacement lands without the new instance ever being
// closed.
func TestBlockingRefreshSurvivesHardExpiry(t *testing.T) {
	clock := newTestClock(0)
	inst1 := &closeRecorder{name: "one"}
	inst2 := &closeRecorder{name: "two"}
	c := New(WithShards(1), WithTTL(100*time.Millisecond), WithRefreshWindow(30*time.Millisecond),
		clock.opt(), WithOnEvict(func(_ Key, inst any, _ int64) {
			inst.(*closeRecorder).closed.Add(1)
		}))
	key := NewKey("client", "args")
	if _, out, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		return inst1, 5, nil
	}); err != nil || out != OutcomeMiss {
		t.Fatalf("seed build = %v, %v", out, err)
	}

	clock.advance(80 * time.Millisecond)
	gate := make(chan struct{})
	v, out, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		<-gate
		return inst2, 6, nil
	})
	if err != nil || out != OutcomeStale || v != inst1 {
		t.Fatalf("stale get = %v, %v, %v", v, out, err)
	}
	// Hard expiry passes while the refresh is gated.
	clock.advance(40 * time.Millisecond)
	v, out, err = c.GetOrBuildContext(context.Background(), key, nil)
	if err != nil || out != OutcomeHit || v != inst1 {
		t.Fatalf("get past TTL mid-refresh = %v, %v, %v; want stale inst1 hit", v, out, err)
	}
	close(gate)
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, _, err = c.GetOrBuildContext(context.Background(), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v == inst2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh never landed; still serving %v", v)
		}
		time.Sleep(time.Millisecond)
	}
	if n := inst1.closed.Load(); n != 1 {
		t.Fatalf("inst1 closed %d times, want 1 (replaced by the refresh)", n)
	}
	if n := inst2.closed.Load(); n != 0 {
		t.Fatalf("inst2 closed %d times while live in the cache", n)
	}
}

// TestInvalidateDuringRefreshCondemns: invalidating an entry mid-refresh
// must not drop it (the refresher's settle would cross-talk with a new
// build). It is condemned instead: a completing refresh replaces the
// instance, a failing refresh drops the entry.
func TestInvalidateDuringRefreshCondemns(t *testing.T) {
	clock := newTestClock(0)
	var evictedInsts []any
	newCache := func() *Cache {
		evictedInsts = nil
		clock.set(0)
		c := New(WithShards(1), WithTTL(100*time.Millisecond), WithRefreshWindow(30*time.Millisecond),
			clock.opt(), WithOnEvict(func(_ Key, inst any, _ int64) { evictedInsts = append(evictedInsts, inst) }))
		key := NewKey("client", "args")
		c.Begin(key)
		c.Complete(key, "v1", 5)
		clock.advance(80 * time.Millisecond)
		if res, _ := c.Begin(key); res != BeginStale {
			t.Fatal("refresher not elected")
		}
		return c
	}
	key := NewKey("client", "args")

	// Completing refresh: the condemned instance is replaced.
	c := newCache()
	if !c.Invalidate(key) {
		t.Fatal("invalidate mid-refresh should report true (condemned)")
	}
	if res, inst := c.Begin(key); res != BeginHit || inst != "v1" {
		t.Fatalf("condemned entry = %v, %v; must keep serving until the refresh settles", res, inst)
	}
	c.Complete(key, "v2", 6)
	if res, inst := c.Begin(key); res != BeginHit || inst != "v2" {
		t.Fatalf("post-refresh = %v, %v; want v2", res, inst)
	}
	if len(evictedInsts) != 1 || evictedInsts[0] != "v1" {
		t.Fatalf("evicted = %v, want [v1]", evictedInsts)
	}

	// Failing refresh: the condemned entry is dropped, not pinned stale.
	c = newCache()
	c.Invalidate(key)
	c.Fail(key)
	if len(evictedInsts) != 1 || evictedInsts[0] != "v1" {
		t.Fatalf("evicted after failed refresh = %v, want [v1]", evictedInsts)
	}
	if res, _ := c.Begin(key); res != BeginMiss {
		t.Fatal("condemned entry must rebuild after a failed refresh")
	}
}

// TestRefreshPanicIsRecoveredAndFailsEntry: a panicking constructor in
// the background refresh goroutine must not crash the process or pin the
// entry refreshing forever — it settles as a failed refresh and the
// stale instance keeps serving until hard expiry.
func TestRefreshPanicIsRecoveredAndFailsEntry(t *testing.T) {
	clock := newTestClock(0)
	c := New(WithShards(1), WithTTL(100*time.Millisecond), WithRefreshWindow(30*time.Millisecond), clock.opt())
	key := NewKey("client", "args")
	if _, _, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		return "v1", 5, nil
	}); err != nil {
		t.Fatal(err)
	}
	clock.advance(80 * time.Millisecond)
	v, out, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		panic("constructor exploded")
	})
	if err != nil || out != OutcomeStale || v != "v1" {
		t.Fatalf("stale get = %v, %v, %v", v, out, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().BuildFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panicking refresh never settled as a failure")
		}
		time.Sleep(time.Millisecond)
	}
	// The entry survived and is refreshable again (refreshing cleared).
	if res, inst := c.Begin(key); res != BeginStale || inst != "v1" {
		t.Fatalf("post-panic Begin = %v, %v; want a new stale refresh attempt on v1", res, inst)
	}
}

// TestBuildPanicFailsPendingEntry: a panicking constructor on the miss
// path re-raises to its caller, but first settles the pending entry so
// the key is not poisoned — coalesced waiters wake and the next caller
// rebuilds instead of blocking forever.
func TestBuildPanicFailsPendingEntry(t *testing.T) {
	c := New(WithShards(1))
	key := NewKey("client", "args")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the building caller")
			}
		}()
		_, _, _ = c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
			panic("constructor exploded")
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	v, out, err := c.GetOrBuildContext(ctx, key, func() (any, int64, error) {
		return "rebuilt", 1, nil
	})
	if err != nil || out != OutcomeMiss || v != "rebuilt" {
		t.Fatalf("post-panic get = %v, %v, %v; want a fresh miss (key not poisoned)", v, out, err)
	}
	if st := c.Stats(); st.BuildFailures != 1 {
		t.Fatalf("BuildFailures = %d, want 1 for the panicked build", st.BuildFailures)
	}
}

// TestAcquireDefersEvictionUntilRelease: an instance lent out by Acquire
// may be evicted from the cache, but its OnEvict (the platform's closer)
// must wait for the borrower's release.
func TestAcquireDefersEvictionUntilRelease(t *testing.T) {
	inst := &closeRecorder{name: "borrowed"}
	c := New(WithShards(1), WithMaxEntries(1), WithOnEvict(func(_ Key, v any, _ int64) {
		if r, ok := v.(*closeRecorder); ok {
			r.closed.Add(1)
		}
	}))
	keyA, keyB := NewKey("client", "a"), NewKey("client", "b")
	v, out, release, err := c.Acquire(context.Background(), keyA, func() (any, int64, error) {
		return inst, 4, nil
	})
	if err != nil || out != OutcomeMiss || v != inst {
		t.Fatalf("acquire = %v, %v, %v", v, out, err)
	}
	// Overflow the 1-entry cache: A is evicted while still borrowed.
	if _, _, err := c.GetOrBuildContext(context.Background(), keyB, func() (any, int64, error) {
		return "other", 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1 (A left the cache)", st.Evictions)
	}
	if n := inst.closed.Load(); n != 0 {
		t.Fatalf("borrowed instance closed %d times before release", n)
	}
	release()
	if n := inst.closed.Load(); n != 1 {
		t.Fatalf("released instance closed %d times, want 1", n)
	}
	release() // idempotent
	if n := inst.closed.Load(); n != 1 {
		t.Fatalf("double release re-closed: %d", n)
	}
}

// TestAcquireSharedBorrowLastReleaseCloses: several concurrent borrowers
// of the same instance — the eviction close fires only when the last one
// releases.
func TestAcquireSharedBorrowLastReleaseCloses(t *testing.T) {
	inst := &closeRecorder{name: "shared"}
	c := New(WithShards(1), WithOnEvict(func(_ Key, v any, _ int64) {
		if r, ok := v.(*closeRecorder); ok {
			r.closed.Add(1)
		}
	}))
	key := NewKey("client", "args")
	build := func() (any, int64, error) { return inst, 4, nil }
	_, _, rel1, err := c.Acquire(context.Background(), key, build)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rel2, err := c.Acquire(context.Background(), key, build)
	if err != nil {
		t.Fatal(err)
	}
	c.Invalidate(key)
	rel1()
	if n := inst.closed.Load(); n != 0 {
		t.Fatalf("closed after first of two releases: %d", n)
	}
	rel2()
	if n := inst.closed.Load(); n != 1 {
		t.Fatalf("closed %d times after last release, want 1", n)
	}
}

// TestMaxEntriesSplitsExactly: the per-shard capacity split must not
// silently drop the MaxEntries % Shards remainder.
func TestMaxEntriesSplitsExactly(t *testing.T) {
	cases := []struct{ shards, max int }{
		{4, 10}, {8, 100}, {2, 3}, {16, 17}, {1, 7},
	}
	for _, tc := range cases {
		c := New(WithShards(tc.shards), WithMaxEntries(tc.max))
		sum := 0
		for _, sh := range c.shards {
			sum += sh.cap
		}
		if sum != tc.max {
			t.Errorf("shards=%d max=%d: caps sum to %d, want %d", tc.shards, tc.max, sum, tc.max)
		}
	}
	// Auto-sized shard counts shrink when the capacity cannot feed every
	// shard a few slots, instead of spreading 1-slot shards that thrash
	// under skew.
	if n := New(WithMaxEntries(8)).Stats().Shards; n != 2 {
		t.Errorf("auto shards with MaxEntries 8 = %d, want 2", n)
	}
	if n := New(WithMaxEntries(100)).Stats().Shards; n > 16 {
		t.Errorf("auto shards with MaxEntries 100 = %d, want <= 16", n)
	}
}

// TestPropertyInflightRefreshNeverEvicted extends the eviction property
// to refreshes: across TTL churn, an elected refresher's Complete always
// publishes to its own entry — the value observed after settling is the
// refresher's, and the pre-refresh instance is released exactly once.
func TestPropertyInflightRefreshNeverEvicted(t *testing.T) {
	clock := newTestClock(0)
	released := map[any]int{}
	c := New(WithShards(1), WithMaxEntries(2), WithTTL(100*time.Millisecond),
		WithRefreshWindow(30*time.Millisecond), clock.opt(),
		WithOnEvict(func(_ Key, inst any, _ int64) { released[inst]++ }))
	key := NewKey("client", "hot")
	c.Begin(key)
	c.Complete(key, "gen-0", 1)
	for gen := 1; gen <= 20; gen++ {
		clock.advance(80 * time.Millisecond) // into the refresh window
		res, _ := c.Begin(key)
		if res != BeginStale {
			t.Fatalf("gen %d: Begin = %v, want stale election", gen, res)
		}
		// Cross-pressure while the refresh is in flight: expiry-time
		// lookups, invalidations and capacity churn must not detach the
		// refresher from its entry.
		clock.advance(40 * time.Millisecond) // past hard TTL
		if res, _ := c.Begin(key); res != BeginHit {
			t.Fatalf("gen %d: expired mid-refresh lookup = %v, want stale hit", gen, res)
		}
		other := NewKey("client", fmt.Sprintf("churn-%d", gen))
		c.Begin(other)
		c.Complete(other, gen, 1)
		v := fmt.Sprintf("gen-%d", gen)
		c.Complete(key, v, 1)
		if res, inst := c.Begin(key); res != BeginHit || inst != v {
			t.Fatalf("gen %d: settled value = %v, %v; want %s", gen, res, inst, v)
		}
	}
	for inst, n := range released {
		if n != 1 {
			t.Fatalf("instance %v released %d times", inst, n)
		}
	}
	if n := released["gen-20"]; n != 0 {
		t.Fatal("live generation must not have been released")
	}
}

// TestAcquireClosedCache keeps the typed-error contract on the borrowing
// face and proves the release func of an error outcome is safe to call.
func TestAcquireClosedCache(t *testing.T) {
	c := New()
	c.Close()
	_, out, release, err := c.Acquire(context.Background(), NewKey("c", "a"),
		func() (any, int64, error) { return "v", 1, nil })
	if out != OutcomeError || !errors.Is(err, ErrCacheClosed) {
		t.Fatalf("closed acquire = %v, %v", out, err)
	}
	release()
	release()
}
