package multiplex_test

import (
	"fmt"

	"faasbatch/internal/multiplex"
)

// The blocking face: concurrent handlers share one expensive client per
// container, exactly like the paper's Listing 1 clients.
func ExampleCache_GetOrBuild() {
	cache := multiplex.New()
	key := multiplex.NewKey("boto3.client", "s3:ACCESS_KEY")

	build := func() (any, int64, error) {
		fmt.Println("building S3 client")
		return "S3_client", 15 << 20, nil
	}
	for i := 0; i < 3; i++ {
		client, cached, err := cache.GetOrBuild(key, build)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(client, cached)
	}
	st := cache.Stats()
	fmt.Printf("misses=%d hits=%d savedMB=%d\n", st.Misses, st.Hits, st.BytesSaved>>20)
	// Output:
	// building S3 client
	// S3_client false
	// S3_client true
	// S3_client true
	// misses=1 hits=2 savedMB=30
}

// The event-driven face used by the simulator: the first creator builds,
// later requesters coalesce.
func ExampleCache_Begin() {
	cache := multiplex.New()
	key := multiplex.NewKey("client", "args")

	res, _ := cache.Begin(key)
	fmt.Println(res) // the caller becomes the builder

	res2, _ := cache.Begin(key)
	fmt.Println(res2) // a concurrent caller waits
	cache.Wait(key, func(v any) { fmt.Println("waiter got", v) })

	cache.Complete(key, "instance", 1024)

	res3, inst := cache.Begin(key)
	fmt.Println(res3, inst)
	// Output:
	// miss
	// pending
	// waiter got instance
	// hit instance
}
