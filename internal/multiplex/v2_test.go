package multiplex

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// testClock is a hand-cranked monotonic clock for deterministic TTL and
// backoff arithmetic.
type testClock struct{ ns atomic.Int64 }

func (tc *testClock) now() time.Duration      { return time.Duration(tc.ns.Load()) }
func (tc *testClock) advance(d time.Duration) { tc.ns.Add(int64(d)) }
func (tc *testClock) set(d time.Duration)     { tc.ns.Store(int64(d)) }
func (tc *testClock) opt() Option             { return WithClock(tc.now) }
func newTestClock(start time.Duration) *testClock {
	tc := &testClock{}
	tc.set(start)
	return tc
}

func TestOutcomeStringAndCached(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeMiss: "miss", OutcomeHit: "hit", OutcomeCoalesced: "coalesced",
		OutcomeStale: "stale", OutcomeNegative: "negative", OutcomeError: "error",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if Outcome(42).String() != "outcome(42)" {
		t.Errorf("unknown outcome string = %q", Outcome(42).String())
	}
	for _, o := range []Outcome{OutcomeHit, OutcomeCoalesced, OutcomeStale} {
		if !o.Cached() {
			t.Errorf("%v.Cached() = false, want true", o)
		}
	}
	for _, o := range []Outcome{OutcomeMiss, OutcomeNegative, OutcomeError} {
		if o.Cached() {
			t.Errorf("%v.Cached() = true, want false", o)
		}
	}
	if BeginStale.String() != "stale" || BeginNegative.String() != "negative" {
		t.Error("new BeginResult strings wrong")
	}
}

func TestGetOrBuildContextOutcomes(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	build := func() (any, int64, error) { return "inst", 10, nil }
	v, out, err := c.GetOrBuildContext(context.Background(), key, build)
	if err != nil || out != OutcomeMiss || v != "inst" {
		t.Fatalf("first = %v, %v, %v; want inst, miss, nil", v, out, err)
	}
	v, out, err = c.GetOrBuildContext(context.Background(), key, build)
	if err != nil || out != OutcomeHit || v != "inst" {
		t.Fatalf("second = %v, %v, %v; want inst, hit, nil", v, out, err)
	}
}

func TestGetOrBuildContextTypedBuildError(t *testing.T) {
	c := New()
	cause := errors.New("no network")
	_, out, err := c.GetOrBuildContext(context.Background(), NewKey("c", "a"),
		func() (any, int64, error) { return nil, 0, cause })
	if out != OutcomeError {
		t.Fatalf("outcome = %v, want error", out)
	}
	if !errors.Is(err, ErrBuildFailed) {
		t.Fatalf("err = %v, want ErrBuildFailed in chain", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want cause in chain", err)
	}
	if st := c.Stats(); st.BuildFailures != 1 {
		t.Fatalf("BuildFailures = %d, want 1", st.BuildFailures)
	}
}

func TestTTLExpiryReleasesThroughOnEvict(t *testing.T) {
	clock := newTestClock(0)
	var released []Key
	c := New(WithShards(1), WithTTL(100*time.Millisecond), clock.opt(),
		WithOnEvict(func(k Key, _ any, _ int64) { released = append(released, k) }))
	key := NewKey("client", "args")
	if _, out, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		return "v1", 5, nil
	}); err != nil || out != OutcomeMiss {
		t.Fatalf("build = %v, %v", out, err)
	}
	clock.advance(50 * time.Millisecond)
	if _, out, _ := c.GetOrBuildContext(context.Background(), key, nil); out != OutcomeHit {
		t.Fatalf("pre-expiry outcome = %v, want hit", out)
	}
	clock.advance(60 * time.Millisecond) // now 110ms > TTL
	builds := 0
	v, out, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		builds++
		return "v2", 5, nil
	})
	if err != nil || out != OutcomeMiss || v != "v2" || builds != 1 {
		t.Fatalf("post-expiry = %v, %v, %v (builds %d); want v2, miss, nil, 1", v, out, err, builds)
	}
	if len(released) != 1 || released[0] != key {
		t.Fatalf("released = %v, want [key]", released)
	}
	st := c.Stats()
	if st.Expired != 1 || st.LiveInstances != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStaleWhileRevalidateBlockingFace(t *testing.T) {
	clock := newTestClock(0)
	var released atomic.Int64
	c := New(WithShards(1), WithTTL(100*time.Millisecond), WithRefreshWindow(30*time.Millisecond),
		clock.opt(), WithOnEvict(func(Key, any, int64) { released.Add(1) }))
	key := NewKey("client", "args")
	if _, _, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		return "v1", 5, nil
	}); err != nil {
		t.Fatal(err)
	}
	clock.advance(80 * time.Millisecond) // inside [70ms, 100ms) refresh window
	refreshed := make(chan struct{})
	v, out, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		defer close(refreshed)
		return "v2", 7, nil
	})
	if err != nil || out != OutcomeStale || v != "v1" {
		t.Fatalf("stale get = %v, %v, %v; want v1, stale, nil", v, out, err)
	}
	<-refreshed
	// The refresh publishes asynchronously after the build returns; poll
	// until the replacement lands.
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, out, err = c.GetOrBuildContext(context.Background(), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh never landed; still %v (%v)", v, out)
		}
		time.Sleep(time.Millisecond)
	}
	if out != OutcomeHit {
		t.Fatalf("post-refresh outcome = %v, want hit", out)
	}
	st := c.Stats()
	if st.StaleHits != 1 || st.Refreshes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if released.Load() != 1 {
		t.Fatalf("released %d instances, want 1 (the replaced stale one)", released.Load())
	}
	if st.BytesLive != 7 {
		t.Fatalf("BytesLive = %d, want the refreshed instance's 7", st.BytesLive)
	}
}

func TestStaleWhileRevalidateEventFace(t *testing.T) {
	clock := newTestClock(0)
	c := New(WithShards(1), WithTTL(100*time.Millisecond), WithRefreshWindow(30*time.Millisecond), clock.opt())
	key := NewKey("client", "args")
	c.Begin(key)
	c.Complete(key, "v1", 5)
	clock.advance(75 * time.Millisecond)
	res, inst := c.Begin(key)
	if res != BeginStale || inst != "v1" {
		t.Fatalf("Begin in refresh window = %v, %v; want stale, v1", res, inst)
	}
	// While this caller refreshes, others still hit the stale instance —
	// no stampede.
	if res, inst := c.Begin(key); res != BeginHit || inst != "v1" {
		t.Fatalf("concurrent Begin = %v, %v; want hit, v1", res, inst)
	}
	c.Complete(key, "v2", 6)
	if res, inst := c.Begin(key); res != BeginHit || inst != "v2" {
		t.Fatalf("post-refresh Begin = %v, %v; want hit, v2", res, inst)
	}
}

func TestFailedRefreshKeepsStaleInstance(t *testing.T) {
	clock := newTestClock(0)
	c := New(WithShards(1), WithTTL(100*time.Millisecond), WithRefreshWindow(30*time.Millisecond), clock.opt())
	key := NewKey("client", "args")
	c.Begin(key)
	c.Complete(key, "v1", 5)
	clock.advance(80 * time.Millisecond)
	if res, _ := c.Begin(key); res != BeginStale {
		t.Fatal("expected stale")
	}
	c.Fail(key)
	// Still servable until hard expiry.
	if res, inst := c.Begin(key); res != BeginStale || inst != "v1" {
		t.Fatalf("Begin after failed refresh = %v, %v; want another stale attempt on v1", res, inst)
	}
	c.Fail(key)
	clock.advance(30 * time.Millisecond) // past hard TTL
	if res, _ := c.Begin(key); res != BeginMiss {
		t.Fatal("expired entry should miss")
	}
}

func TestNegativeCacheDeniesWithBackoff(t *testing.T) {
	clock := newTestClock(0)
	c := New(WithShards(1), WithNegativeBackoff(100*time.Millisecond, time.Second), clock.opt())
	key := NewKey("client", "args")
	cause := errors.New("endpoint down")
	builds := 0
	failing := func() (any, int64, error) { builds++; return nil, 0, cause }

	if _, out, err := c.GetOrBuildContext(context.Background(), key, failing); out != OutcomeError || !errors.Is(err, cause) {
		t.Fatalf("first = %v, %v", out, err)
	}
	// Denied without building while the backoff holds.
	_, out, err := c.GetOrBuildContext(context.Background(), key, failing)
	if out != OutcomeNegative || !errors.Is(err, ErrBuildFailed) || !errors.Is(err, cause) {
		t.Fatalf("second = %v, %v; want negative, ErrBuildFailed+cause", out, err)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (negative cache must absorb)", builds)
	}
	// Backoff elapses: one probe runs and fails; backoff doubles.
	clock.advance(110 * time.Millisecond)
	if _, out, _ := c.GetOrBuildContext(context.Background(), key, failing); out != OutcomeError {
		t.Fatalf("probe outcome = %v, want error", out)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2", builds)
	}
	clock.advance(150 * time.Millisecond) // 150 < doubled backoff 200
	if _, out, _ := c.GetOrBuildContext(context.Background(), key, failing); out != OutcomeNegative {
		t.Fatal("doubled backoff should still deny")
	}
	clock.advance(100 * time.Millisecond) // 250 >= 200
	v, out, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		return "recovered", 1, nil
	})
	if err != nil || out != OutcomeMiss || v != "recovered" {
		t.Fatalf("recovery = %v, %v, %v", v, out, err)
	}
	// Success resets the failure streak.
	st := c.Stats()
	if st.NegativeHits != 2 || st.BuildFailures != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNegativeBackoffCap(t *testing.T) {
	clock := newTestClock(0)
	c := New(WithShards(1), WithNegativeBackoff(100*time.Millisecond, 250*time.Millisecond), clock.opt())
	key := NewKey("client", "args")
	fail := func() (any, int64, error) { return nil, 0, errors.New("down") }
	for i := 0; i < 5; i++ {
		c.GetOrBuildContext(context.Background(), key, fail)
		clock.advance(260 * time.Millisecond) // past even the capped backoff
	}
	// After many failures the backoff is capped at 250ms, so 260ms later a
	// probe is always allowed.
	if _, out, _ := c.GetOrBuildContext(context.Background(), key, fail); out != OutcomeError {
		t.Fatalf("outcome = %v, want error (probe allowed past cap)", out)
	}
}

func TestNegativeEventFace(t *testing.T) {
	clock := newTestClock(0)
	c := New(WithShards(1), WithNegativeBackoff(100*time.Millisecond, 0), clock.opt())
	key := NewKey("client", "args")
	if res, _ := c.Begin(key); res != BeginMiss {
		t.Fatal("want miss")
	}
	c.FailErr(key, errors.New("down"))
	if res, _ := c.Begin(key); res != BeginNegative {
		t.Fatal("want negative denial during backoff")
	}
	// Waiters on a negative key resolve immediately with nil.
	fired := false
	c.Wait(key, func(v any) {
		fired = true
		if v != nil {
			t.Errorf("waiter got %v, want nil", v)
		}
	})
	if !fired {
		t.Fatal("Wait on negative key did not fire")
	}
	clock.advance(150 * time.Millisecond)
	if res, _ := c.Begin(key); res != BeginMiss {
		t.Fatal("want probe miss after backoff")
	}
	c.Complete(key, "ok", 1)
	if res, inst := c.Begin(key); res != BeginHit || inst != "ok" {
		t.Fatal("recovery should serve hits")
	}
}

func TestInvalidate(t *testing.T) {
	var released []Key
	c := New(WithShards(1), WithOnEvict(func(k Key, _ any, _ int64) { released = append(released, k) }))
	key := NewKey("client", "args")
	if c.Invalidate(key) {
		t.Fatal("invalidate on absent key should report false")
	}
	c.Begin(key)
	if c.Invalidate(key) {
		t.Fatal("invalidate must not touch a pending build")
	}
	c.Complete(key, "v", 3)
	if !c.Invalidate(key) {
		t.Fatal("invalidate on ready key should report true")
	}
	if len(released) != 1 || released[0] != key {
		t.Fatalf("released = %v", released)
	}
	if res, _ := c.Begin(key); res != BeginMiss {
		t.Fatal("invalidated key should rebuild")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.LiveInstances != 0 || st.BytesLive != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidateResetsNegativeEntry(t *testing.T) {
	clock := newTestClock(0)
	c := New(WithShards(1), WithNegativeBackoff(time.Hour, 0), clock.opt())
	key := NewKey("client", "args")
	c.Begin(key)
	c.FailErr(key, errors.New("down"))
	if res, _ := c.Begin(key); res != BeginNegative {
		t.Fatal("want negative")
	}
	if !c.Invalidate(key) {
		t.Fatal("invalidate on negative key should report true")
	}
	if res, _ := c.Begin(key); res != BeginMiss {
		t.Fatal("invalidated negative key should allow an immediate probe")
	}
}

func TestClosedCacheTypedError(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	c.Begin(key)
	c.Complete(key, "v", 1)
	c.Close()
	_, out, err := c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
		return "fresh", 1, nil
	})
	if out != OutcomeError || !errors.Is(err, ErrCacheClosed) {
		t.Fatalf("closed get = %v, %v; want error, ErrCacheClosed", out, err)
	}
	// The deprecated face degrades to uncached builds (seed teardown
	// semantics), never an error.
	v, cached, err := c.GetOrBuild(key, func() (any, int64, error) { return "fresh", 1, nil })
	if err != nil || cached || v != "fresh" {
		t.Fatalf("closed GetOrBuild = %v, %v, %v; want fresh, false, nil", v, cached, err)
	}
}

func TestCloseReleasesReadyInstancesThroughOnEvict(t *testing.T) {
	var released int
	c := New(WithOnEvict(func(Key, any, int64) { released++ }))
	for i := 0; i < 3; i++ {
		k := NewKey("c", fmt.Sprintf("%d", i))
		c.Begin(k)
		c.Complete(k, i, 10)
	}
	if freed := c.Close(); freed != 30 {
		t.Fatalf("freed = %d, want 30", freed)
	}
	if released != 3 {
		t.Fatalf("released = %d, want 3 (Closer hook runs at teardown)", released)
	}
	if c.Close() != 0 {
		t.Fatal("second Close should free nothing")
	}
}

func TestCompleteAfterCloseReleasesOrphan(t *testing.T) {
	var released int
	c := New(WithOnEvict(func(Key, any, int64) { released++ }))
	key := NewKey("client", "args")
	c.Begin(key)
	c.Close()
	c.Complete(key, "orphan", 1)
	if released != 1 {
		t.Fatalf("released = %d, want 1 (orphaned build must not leak)", released)
	}
}

func TestGetOrBuildContextCancellationWhileCoalesced(t *testing.T) {
	c := New()
	key := NewKey("client", "args")
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrBuildContext(context.Background(), key, func() (any, int64, error) {
			close(started)
			<-release
			return "v", 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.GetOrBuildContext(ctx, key, nil)
	if out != OutcomeError || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait = %v, %v; want error, context.Canceled", out, err)
	}
	close(release)
}

func TestShardsRoundedAndClamped(t *testing.T) {
	if n := New(WithShards(5)).Stats().Shards; n != 8 {
		t.Fatalf("Shards(5) rounded to %d, want 8", n)
	}
	// Capacity 2 cannot feed 8 shards a slot each: clamp to 2.
	if n := New(WithShards(8), WithMaxEntries(2)).Stats().Shards; n != 2 {
		t.Fatalf("shards with MaxEntries 2 = %d, want 2", n)
	}
	if n := New().Stats().Shards; n < 8 {
		t.Fatalf("auto shards = %d, want >= 8", n)
	}
}

func TestShardedKeysDistribute(t *testing.T) {
	c := New(WithShards(16))
	for i := 0; i < 256; i++ {
		k := NewKey("client", fmt.Sprintf("args-%d", i))
		c.Begin(k)
		c.Complete(k, i, 1)
	}
	st := c.Stats()
	if st.LiveInstances != 256 {
		t.Fatalf("LiveInstances = %d", st.LiveInstances)
	}
	// With 256 keys over 16 shards a catastrophic hash would pile most
	// keys on one shard; allow generous slack over the ideal 16.
	if st.MaxShardOccupancy > 48 {
		t.Fatalf("MaxShardOccupancy = %d over 16 shards for 256 keys: hash is skewed", st.MaxShardOccupancy)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, LiveInstances: 3, BytesLive: 10, Shards: 4, MaxShardOccupancy: 2, Evictions: 1}
	b := Stats{Hits: 10, Coalesced: 5, LiveInstances: 1, BytesLive: 5, Shards: 8, MaxShardOccupancy: 7, Expired: 2}
	a.Add(b)
	if a.Hits != 11 || a.Coalesced != 5 || a.Misses != 2 || a.LiveInstances != 4 ||
		a.BytesLive != 15 || a.Shards != 12 || a.MaxShardOccupancy != 7 ||
		a.Evictions != 1 || a.Expired != 2 {
		t.Fatalf("Add result = %+v", a)
	}
}

// TestConcurrentMixedStress is the -race stress test: 16 goroutines over a
// mixed key population — always-hit keys, TTL-churning keys, and keys
// whose builds fail — with a capacity bound, negative caching and
// stale-while-revalidate all enabled at once.
func TestConcurrentMixedStress(t *testing.T) {
	c := New(
		WithShards(8),
		WithMaxEntries(32),
		WithTTL(5*time.Millisecond),
		WithRefreshWindow(time.Millisecond),
		WithNegativeBackoff(time.Millisecond, 8*time.Millisecond),
		WithOnEvict(func(Key, any, int64) {}),
	)
	const goroutines = 16
	const opsPerG = 400
	var wg sync.WaitGroup
	var builds, failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				kind := rng.Intn(100)
				var key Key
				var build func() (any, int64, error)
				switch {
				case kind < 60: // hot hit keys
					key = NewKey("hot", fmt.Sprintf("%d", rng.Intn(8)))
					build = func() (any, int64, error) { builds.Add(1); return "v", 1, nil }
				case kind < 85: // churn keys (wide space, bound forces eviction)
					key = NewKey("churn", fmt.Sprintf("%d", rng.Intn(128)))
					build = func() (any, int64, error) { builds.Add(1); return "v", 1, nil }
				default: // failing keys
					key = NewKey("bad", fmt.Sprintf("%d", rng.Intn(4)))
					build = func() (any, int64, error) {
						failures.Add(1)
						return nil, 0, errors.New("injected")
					}
				}
				if rng.Intn(50) == 0 {
					c.Invalidate(key)
					continue
				}
				v, out, err := c.GetOrBuildContext(context.Background(), key, build)
				switch out {
				case OutcomeHit, OutcomeMiss, OutcomeCoalesced, OutcomeStale:
					if err != nil || v == nil {
						t.Errorf("outcome %v with v=%v err=%v", out, v, err)
					}
				case OutcomeNegative, OutcomeError:
					if err == nil {
						t.Errorf("outcome %v without error", out)
					}
				default:
					t.Errorf("unknown outcome %v", out)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.LiveInstances > 32 {
		t.Fatalf("LiveInstances = %d exceeds bound 32", st.LiveInstances)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	if freed := c.Close(); freed < 0 {
		t.Fatalf("Close freed %d", freed)
	}
	if st := c.Stats(); st.LiveInstances != 0 || st.BytesLive != 0 {
		t.Fatalf("stats after close = %+v", st)
	}
}

// Property: under any op sequence, (a) ready instances never exceed the
// configured capacity, and (b) an in-flight build is never evicted — its
// Complete always lands, so an immediate Begin hits.
func TestPropertyBoundNeverExceededAndInflightNeverEvicted(t *testing.T) {
	f := func(ops []uint16, boundRaw, shardsRaw uint8) bool {
		bound := int(boundRaw%8) + 1
		shards := 1 << (shardsRaw % 3) // 1, 2 or 4
		c := New(WithShards(shards), WithMaxEntries(bound))
		pending := map[Key]bool{}
		for _, op := range ops {
			key := NewKey("c", fmt.Sprintf("%d", op%32))
			switch {
			case pending[key]:
				// Settle the in-flight build; it must never have been
				// evicted, so the publish must be observable immediately.
				c.Complete(key, "v", 1)
				delete(pending, key)
				if res, _ := c.Begin(key); res != BeginHit {
					return false
				}
			default:
				res, _ := c.Begin(key)
				if res == BeginMiss {
					if op%3 == 0 {
						pending[key] = true // leave in flight
					} else {
						c.Complete(key, "v", 1)
					}
				}
			}
			if st := c.Stats(); st.LiveInstances > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
