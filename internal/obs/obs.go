// Package obs is the platform's observability subsystem: invocation
// lifecycle tracing, labeled latency histograms and structured-logging
// helpers, built on the standard library only.
//
// The three pieces mirror the paper's measurement needs (§IV):
//
//   - Tracer records per-invocation spans — one child span per latency
//     component (scheduling, cold start, in-container queuing, execution)
//     plus resource builds and retry backoffs — into a bounded in-memory
//     ring buffer, and exports them as Chrome trace-event JSON that loads
//     directly into Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//     The tracer is clock-agnostic: the live platform stamps spans with
//     wall-clock offsets, the discrete-event simulator with virtual time.
//   - Metrics aggregates per-function, per-component latency histograms
//     and a batch-group-size histogram, rendered in the Prometheus text
//     exposition format.
//   - NewLogger/Nop construct log/slog loggers for the platform's
//     structured logs (dispatch decisions, container lifecycle, faults),
//     correlated with trace IDs.
//
// Tracing is pay-for-what-you-use: every method is safe on a nil *Tracer
// and the disabled hot path performs no allocations (guarded by
// TestDisabledTracerZeroAlloc and BenchmarkTracerDisabled).
package obs

// Span names for the paper's four-component latency decomposition (§IV),
// shared by the live platform and the simulator so one round-trip test
// covers both. Additional spans refine the picture without entering the
// decomposition sum.
const (
	// SpanScheduling covers arrival to dispatch: the invocation's window
	// wait plus the dispatch hop.
	SpanScheduling = "scheduling"
	// SpanColdStart covers booting the group's container (absent on warm
	// starts).
	SpanColdStart = "cold-start"
	// SpanQueuing covers waiting inside the container before the handler
	// starts.
	SpanQueuing = "queuing"
	// SpanExecution covers one handler execution attempt.
	SpanExecution = "execution"
	// SpanResourceBuild covers one Resource Multiplexer client build.
	SpanResourceBuild = "resource-build"
	// SpanRetryBackoff covers the wait before a failed invocation
	// re-enters a dispatch window.
	SpanRetryBackoff = "retry-backoff"
	// SpanDispatchWindow covers an invocation's wait inside an adaptive
	// dispatch window, from arrival to window close; Detail carries the
	// chosen interval and the close reason (window deadline, idle
	// fast-path or early close). It refines SpanScheduling without
	// entering the decomposition sum.
	SpanDispatchWindow = "dispatch-window"
)

// Span names of the routing tier (internal/router): the router fronts a
// fleet of worker gateways and records its own lifecycle spans, disjoint
// from the per-worker decomposition above.
const (
	// SpanRoute covers picking a worker (and its failover order) for one
	// invocation on the consistent-hash ring.
	SpanRoute = "route"
	// SpanProbe covers one worker health probe.
	SpanProbe = "probe"
	// SpanForward covers one forward attempt to one worker (Detail names
	// the worker).
	SpanForward = "forward"
	// SpanForwardRetry covers the backoff before a forward attempt is
	// retried on the same or the next ring replica.
	SpanForwardRetry = "forward-retry"
	// SpanShed marks an invocation rejected by admission control.
	SpanShed = "shed"
	// SpanScale marks one autoscaling decision applied to the fleet
	// (Detail carries the action, worker, and target, e.g.
	// "provision w2 target=3").
	SpanScale = "scale-event"
)

// ComponentEndToEnd labels the whole-invocation latency in the metrics
// registry (it is a histogram label, never a span: the end-to-end value
// is the sum of the four decomposition spans).
const ComponentEndToEnd = "end-to-end"

// DecompositionSpans lists the spans whose durations sum to an
// invocation's end-to-end latency, in pipeline order.
var DecompositionSpans = []string{SpanScheduling, SpanColdStart, SpanQueuing, SpanExecution}
