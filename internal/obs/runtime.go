// runtime.go exports Go runtime health gauges, sourced from the
// runtime/metrics package, for every /metrics surface in the system
// (gateway and router alike). The export set is data — RuntimeExports —
// so the conformance tests in each package can assert the full set is
// present without duplicating the list.
package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"strconv"
)

// RuntimeExport maps one exported runtime gauge onto the
// runtime/metrics keys it is computed from (values are summed).
type RuntimeExport struct {
	// Suffix is appended to the component prefix to form the metric name
	// (prefix "faasbatch" + suffix "goroutines" → "faasbatch_goroutines").
	Suffix string
	// Typ is "counter" or "gauge".
	Typ string
	// Help is the HELP line text.
	Help string
	// Keys are the runtime/metrics sample names summed into the value.
	Keys []string
}

// RuntimeExports is the runtime gauge set every /metrics endpoint
// carries. Keys unavailable in the running Go version contribute zero,
// so the exposition shape is stable across toolchains.
var RuntimeExports = []RuntimeExport{
	{"goroutines", "gauge", "Goroutines currently running.",
		[]string{"/sched/goroutines:goroutines"}},
	{"heap_alloc_bytes", "gauge", "Heap bytes occupied by live objects and unswept dead objects.",
		[]string{"/memory/classes/heap/objects:bytes"}},
	{"heap_sys_bytes", "gauge", "Heap bytes obtained from the OS (in use, unused, free and released).",
		[]string{
			"/memory/classes/heap/objects:bytes",
			"/memory/classes/heap/unused:bytes",
			"/memory/classes/heap/free:bytes",
			"/memory/classes/heap/released:bytes",
		}},
	{"gc_cycles_total", "counter", "Completed GC cycles.",
		[]string{"/gc/cycles/total:gc-cycles"}},
	{"gc_pause_total_seconds", "counter", "Estimated total CPU-seconds spent in GC stop-the-world pauses.",
		[]string{"/cpu/classes/gc/pause:cpu-seconds"}},
}

// runtimeSampleNames flattens the export table's key set, deduplicated
// in first-use order.
func runtimeSampleNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, ex := range RuntimeExports {
		for _, k := range ex.Keys {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	return names
}

// sampleValue converts one runtime/metrics sample to float64; samples
// the toolchain does not support (KindBad) and histogram kinds read as
// zero.
func sampleValue(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// WriteRuntimeGauges emits the RuntimeExports set in Prometheus text
// form under the given component prefix.
func WriteRuntimeGauges(w io.Writer, prefix string) {
	names := runtimeSampleNames()
	samples := make([]metrics.Sample, len(names))
	byName := make(map[string]int, len(names))
	for i, n := range names {
		samples[i].Name = n
		byName[n] = i
	}
	metrics.Read(samples)
	for _, ex := range RuntimeExports {
		var v float64
		for _, k := range ex.Keys {
			v += sampleValue(samples[byName[k]])
		}
		name := prefix + "_" + ex.Suffix
		fmt.Fprintf(w, "# HELP %s %s\n", name, ex.Help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, ex.Typ)
		// Byte and count gauges print as plain integers (not 1.2e+06) so
		// the exposition stays grep-friendly.
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			fmt.Fprintf(w, "%s %d\n", name, int64(v))
		} else {
			fmt.Fprintf(w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
}
