package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 5})
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	// le=1: {0.5, 1}; le=2: +{1.5, 2}; le=5: +{3}; +Inf: +{100}.
	want := []uint64{2, 4, 5, 6}
	got := h.Cumulative()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
	if h.Count() != 6 || h.Sum() != 108 {
		t.Fatalf("count = %d sum = %v", h.Count(), h.Sum())
	}
	if b := h.Bounds(); len(b) != 3 || b[2] != 5 {
		t.Fatalf("bounds = %v", b)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.ObserveLatency("f", SpanExecution, time.Second)
	m.ObserveGroupSize(3)
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil metrics wrote %q", buf.String())
	}
}

func TestMetricsPrometheusOutput(t *testing.T) {
	m := NewMetrics()
	m.ObserveLatency("fib", SpanExecution, 30*time.Millisecond)
	m.ObserveLatency("fib", SpanExecution, 70*time.Millisecond)
	m.ObserveLatency("fib", SpanScheduling, 2*time.Millisecond)
	m.ObserveLatency("echo", SpanExecution, time.Millisecond)
	m.ObserveGroupSize(1)
	m.ObserveGroupSize(5)
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP faasbatch_latency_seconds ",
		"# TYPE faasbatch_latency_seconds histogram",
		`faasbatch_latency_seconds_bucket{fn="fib",component="execution",le="0.05"} 1`,
		`faasbatch_latency_seconds_bucket{fn="fib",component="execution",le="+Inf"} 2`,
		`faasbatch_latency_seconds_count{fn="fib",component="execution"} 2`,
		`faasbatch_latency_seconds_count{fn="fib",component="scheduling"} 1`,
		`faasbatch_latency_seconds_count{fn="echo",component="execution"} 1`,
		"# TYPE faasbatch_group_size histogram",
		`faasbatch_group_size_bucket{le="1"} 1`,
		`faasbatch_group_size_bucket{le="8"} 2`,
		"faasbatch_group_size_count 2",
		"faasbatch_group_size_sum 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: echo sorts before fib.
	if strings.Index(out, `fn="echo"`) > strings.Index(out, `fn="fib"`) {
		t.Error("series not sorted by function")
	}
	// HELP/TYPE emitted once per family.
	if strings.Count(out, "# TYPE faasbatch_latency_seconds histogram") != 1 {
		t.Error("TYPE line repeated")
	}
}

func TestObserveLatencySteadyStateNoAlloc(t *testing.T) {
	m := NewMetrics()
	m.ObserveLatency("f", SpanExecution, time.Millisecond) // create the series
	allocs := testing.AllocsPerRun(1000, func() {
		m.ObserveLatency("f", SpanExecution, time.Millisecond)
		m.ObserveGroupSize(4)
	})
	if allocs != 0 {
		t.Fatalf("steady-state observe allocates %v per op, want 0", allocs)
	}
}

func TestMetricsForwardHistogram(t *testing.T) {
	var nilM *Metrics
	nilM.ObserveForward("w1", time.Second) // nil-safe

	m := NewMetrics()
	var empty bytes.Buffer
	m.WritePrometheus(&empty)
	if strings.Contains(empty.String(), "faasbatch_forward_latency_seconds") {
		t.Fatal("forward family emitted with no observations")
	}

	m.ObserveForward("w2", 30*time.Millisecond)
	m.ObserveForward("w2", 70*time.Millisecond)
	m.ObserveForward("w1", 2*time.Millisecond)
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE faasbatch_forward_latency_seconds histogram",
		`faasbatch_forward_latency_seconds_bucket{worker="w2",le="0.05"} 1`,
		`faasbatch_forward_latency_seconds_count{worker="w2"} 2`,
		`faasbatch_forward_latency_seconds_count{worker="w1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: w1 sorts before w2.
	if strings.Index(out, `worker="w1"`) > strings.Index(out, `worker="w2"`) {
		t.Error("forward series not sorted by worker")
	}
}
