package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func newTestTracer(t *testing.T, capacity, sample int) *Tracer {
	t.Helper()
	var now time.Duration
	tr, err := NewTracer(TracerConfig{
		Capacity: capacity,
		Sample:   sample,
		Clock:    func() time.Duration { return now },
	})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	return tr
}

func TestTracerConfigValidation(t *testing.T) {
	if _, err := NewTracer(TracerConfig{}); err == nil {
		t.Fatal("missing clock accepted")
	}
	if _, err := NewTracer(TracerConfig{Clock: func() time.Duration { return 0 }, Capacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewWallTracer(0, 0); err != nil {
		t.Fatalf("NewWallTracer defaults: %v", err)
	}
}

func TestTracerRecordAndSnapshot(t *testing.T) {
	tr := newTestTracer(t, 16, 1)
	id1, id2 := tr.Begin(), tr.Begin()
	if id1 == 0 || id2 == 0 || id1 == id2 {
		t.Fatalf("ids = %d, %d", id1, id2)
	}
	tr.Record(Span{Trace: id2, Name: SpanExecution, Fn: "f", Start: 20 * time.Millisecond, End: 30 * time.Millisecond})
	tr.Record(Span{Trace: id1, Name: SpanScheduling, Fn: "f", Start: 0, End: 10 * time.Millisecond})
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(spans))
	}
	if spans[0].Name != SpanScheduling || spans[1].Name != SpanExecution {
		t.Fatalf("snapshot not start-sorted: %+v", spans)
	}
	if spans[1].Dur() != 10*time.Millisecond {
		t.Fatalf("Dur = %v", spans[1].Dur())
	}
}

func TestTracerRingOverwrites(t *testing.T) {
	tr := newTestTracer(t, 4, 1)
	id := tr.Begin()
	for i := 0; i < 10; i++ {
		tr.Record(Span{Trace: id, Name: SpanExecution, Start: time.Duration(i), End: time.Duration(i + 1)})
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	if spans[0].Start != 6 || spans[3].Start != 9 {
		t.Fatalf("ring kept wrong window: %+v", spans)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerSampling(t *testing.T) {
	tr := newTestTracer(t, 16, 3)
	recorded := 0
	for i := 0; i < 9; i++ {
		if id := tr.Begin(); id != 0 {
			recorded++
			tr.Record(Span{Trace: id, Name: SpanExecution})
		}
	}
	if recorded != 3 {
		t.Fatalf("sampled %d of 9 traces, want 3", recorded)
	}
	if got := len(tr.Snapshot()); got != 3 {
		t.Fatalf("snapshot len = %d, want 3", got)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Begin() != 0 || tr.Now() != 0 || tr.Stamp(time.Now()) != 0 {
		t.Fatal("nil tracer returned non-zero")
	}
	tr.Record(Span{Trace: 1})
	if tr.Snapshot() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal empty trace: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Fatalf("empty tracer exported %d events", len(out.TraceEvents))
	}
}

// TestDisabledTracerZeroAlloc is the pay-for-what-you-use guard: the
// disabled tracer's whole surface — nil tracer calls and the unsampled
// (zero trace ID) record path — must not allocate.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var nilTr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		id := nilTr.Begin()
		_ = nilTr.Now()
		nilTr.Record(Span{Trace: id, Name: SpanExecution, Fn: "f", Container: "c", Start: 1, End: 2})
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates %v per op, want 0", allocs)
	}
	live := newTestTracer(t, 8, 1)
	allocs = testing.AllocsPerRun(1000, func() {
		// Trace ID zero is the unsampled sentinel: Record must bail before
		// touching the ring.
		live.Record(Span{Trace: 0, Name: SpanExecution, Fn: "f", Start: 1, End: 2})
	})
	if allocs != 0 {
		t.Fatalf("unsampled record allocates %v per op, want 0", allocs)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := newTestTracer(t, 16, 1)
	id := tr.Begin()
	tr.Record(Span{Trace: id, Name: SpanQueuing, Fn: "f", Container: "c1", Start: 10 * time.Millisecond, End: 12 * time.Millisecond})
	tr.Record(Span{Trace: id, Name: SpanScheduling, Fn: "f", Attempt: 1, Start: 0, End: 10 * time.Millisecond})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" || len(out.TraceEvents) != 2 {
		t.Fatalf("export = %+v", out)
	}
	last := -1.0
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("phase = %q, want X", ev.Ph)
		}
		if ev.Ts < last {
			t.Errorf("events not sorted by ts: %v after %v", ev.Ts, last)
		}
		last = ev.Ts
		if ev.Tid != id || ev.Pid != 1 {
			t.Errorf("event ids = pid %d tid %d", ev.Pid, ev.Tid)
		}
	}
	if out.TraceEvents[0].Name != SpanScheduling || out.TraceEvents[0].Dur != 10000 {
		t.Errorf("first event = %+v", out.TraceEvents[0])
	}
	if out.TraceEvents[0].Args["attempt"] != "1" || out.TraceEvents[1].Args["container"] != "c1" {
		t.Errorf("args not exported: %+v", out.TraceEvents)
	}
}

// BenchmarkTracerDisabled measures the disabled-tracer hot path: the
// exact calls the live platform makes per invocation when tracing is off.
// Run with -benchmem; the assertion lives in TestDisabledTracerZeroAlloc.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.Begin()
		tr.Record(Span{Trace: id, Name: SpanScheduling, Fn: "f", Start: 0, End: 1})
		tr.Record(Span{Trace: id, Name: SpanExecution, Fn: "f", Container: "c", Attempt: 1, Start: 1, End: 2})
	}
}

// BenchmarkTracerEnabled is the paid-path counterpart for comparison.
func BenchmarkTracerEnabled(b *testing.B) {
	tr, err := NewWallTracer(65536, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tr.Begin()
		tr.Record(Span{Trace: id, Name: SpanScheduling, Fn: "f", Start: 0, End: 1})
		tr.Record(Span{Trace: id, Name: SpanExecution, Fn: "f", Container: "c", Attempt: 1, Start: 1, End: 2})
	}
}
