// stitch.go merges per-process Chrome trace exports into one Perfetto
// file. Each source process (router, worker w1, ...) writes its own
// trace with WriteChromeTrace; the stitcher re-homes each source onto
// its own pid (with a process_name metadata event), shifts timestamps
// onto a shared timeline using the wall-clock epochs the exporter
// embeds in otherData, and keeps the trace ID as the thread lane — so a
// propagated invocation reads router→forward(attempt=n)→worker
// scheduling/cold-start/queuing/execution end to end on one row group.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// TraceSource is one per-process trace file to stitch.
type TraceSource struct {
	// Name labels the process in the stitched output (e.g. "router",
	// "w1").
	Name string
	// Reader yields the process's Chrome trace JSON.
	Reader io.Reader
}

// StitchChromeTraces merges the sources into a single Chrome trace on
// w. Sources missing an epoch (virtual-time tracers) keep their own
// timestamps unshifted; when every source carries a wall epoch, all
// timestamps land on one consistent timeline anchored at the earliest
// epoch.
func StitchChromeTraces(w io.Writer, sources ...TraceSource) error {
	if len(sources) == 0 {
		return fmt.Errorf("obs: stitch needs at least one trace source")
	}
	type parsed struct {
		name   string
		trace  chromeTrace
		epoch  int64
		hasEp  bool
		offset float64 // microseconds to add to every timestamp
	}
	ins := make([]parsed, 0, len(sources))
	var minEpoch int64
	anyEpoch := false
	for _, src := range sources {
		var ct chromeTrace
		dec := json.NewDecoder(src.Reader)
		if err := dec.Decode(&ct); err != nil {
			return fmt.Errorf("obs: stitch: parse trace %q: %w", src.Name, err)
		}
		p := parsed{name: src.Name, trace: ct}
		if raw, ok := ct.OtherData[traceEpochKey]; ok {
			nanos, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return fmt.Errorf("obs: stitch: trace %q: bad %s %q: %w", src.Name, traceEpochKey, raw, err)
			}
			p.epoch, p.hasEp = nanos, true
			if !anyEpoch || nanos < minEpoch {
				minEpoch = nanos
			}
			anyEpoch = true
		}
		ins = append(ins, p)
	}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	if anyEpoch {
		out.OtherData = map[string]string{traceEpochKey: strconv.FormatInt(minEpoch, 10)}
	}
	for i := range ins {
		p := &ins[i]
		pid := i + 1
		if p.hasEp {
			p.offset = float64(p.epoch-minEpoch) / 1e3 // ns → µs
		}
		// Perfetto names the process from this metadata event.
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Cat:  "__metadata",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]string{"name": p.name},
		})
		for _, ev := range p.trace.TraceEvents {
			if ev.Ph == "M" {
				continue // re-homed sources get fresh metadata
			}
			ev.Pid = pid
			ev.Ts += p.offset
			if ev.Args == nil {
				ev.Args = map[string]string{}
			}
			ev.Args["process"] = p.name
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	// Stable-sort spans by timestamp, keeping metadata events first so
	// viewers see process names before their events.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		ei, ej := out.TraceEvents[i], out.TraceEvents[j]
		if (ei.Ph == "M") != (ej.Ph == "M") {
			return ei.Ph == "M"
		}
		if ei.Ph == "M" {
			return false // metadata keeps source order
		}
		return ei.Ts < ej.Ts
	})
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: encode stitched trace: %w", err)
	}
	return nil
}
