package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// stitchFixture builds a trace document string with a fixed epoch.
func stitchFixture(t *testing.T, epochNano int64, events []chromeEvent) string {
	t.Helper()
	doc := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{traceEpochKey: jsonInt(epochNano)},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func jsonInt(v int64) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

func TestStitchAlignsEpochsAndAssignsPids(t *testing.T) {
	// Router started 1ms before the worker. A span at router offset
	// 500µs and a worker span at offset 200µs must land at 500µs and
	// 1200µs on the stitched timeline.
	router := stitchFixture(t, 1_000_000, []chromeEvent{
		{Name: SpanForward, Cat: "faasbatch", Ph: "X", Ts: 500, Dur: 900, Pid: 1, Tid: 42},
	})
	worker := stitchFixture(t, 2_000_000, []chromeEvent{
		{Name: SpanExecution, Cat: "faasbatch", Ph: "X", Ts: 200, Dur: 300, Pid: 1, Tid: 42},
	})
	var out bytes.Buffer
	err := StitchChromeTraces(&out,
		TraceSource{Name: "router", Reader: strings.NewReader(router)},
		TraceSource{Name: "w1", Reader: strings.NewReader(worker)},
	)
	if err != nil {
		t.Fatal(err)
	}
	var stitched chromeTrace
	if err := json.Unmarshal(out.Bytes(), &stitched); err != nil {
		t.Fatalf("stitched output is not valid trace JSON: %v", err)
	}
	var meta, spans []chromeEvent
	for _, ev := range stitched.TraceEvents {
		if ev.Ph == "M" {
			meta = append(meta, ev)
		} else {
			spans = append(spans, ev)
		}
	}
	if len(meta) != 2 {
		t.Fatalf("got %d process_name metadata events, want 2", len(meta))
	}
	if meta[0].Args["name"] != "router" || meta[0].Pid != 1 {
		t.Fatalf("first metadata = %+v, want router on pid 1", meta[0])
	}
	if meta[1].Args["name"] != "w1" || meta[1].Pid != 2 {
		t.Fatalf("second metadata = %+v, want w1 on pid 2", meta[1])
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != SpanForward || spans[0].Ts != 500 || spans[0].Pid != 1 {
		t.Fatalf("router span = %+v, want forward at ts 500 on pid 1", spans[0])
	}
	if spans[1].Name != SpanExecution || spans[1].Ts != 1200 || spans[1].Pid != 2 {
		t.Fatalf("worker span = %+v, want execution at ts 1200 on pid 2", spans[1])
	}
	if spans[0].Tid != 42 || spans[1].Tid != 42 {
		t.Fatal("stitching must preserve the shared trace ID lane")
	}
	if spans[1].Args["process"] != "w1" {
		t.Fatalf("worker span args = %v, want process=w1", spans[1].Args)
	}
	if stitched.OtherData[traceEpochKey] != "1000000" {
		t.Fatalf("stitched epoch = %q, want the earliest source epoch 1000000", stitched.OtherData[traceEpochKey])
	}
}

func TestStitchRealTracers(t *testing.T) {
	a, err := NewWallTracerWithSalt(64, 1, 0xa000000000000000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWallTracerWithSalt(64, 1, 0xb000000000000000)
	if err != nil {
		t.Fatal(err)
	}
	trace := a.Begin()
	a.Record(Span{Trace: trace, Name: SpanForward, Fn: "echo", Start: 0, End: time.Millisecond})
	// The worker adopts the router's ID, as the propagation header does.
	adopted := b.BeginWith(trace)
	b.Record(Span{Trace: adopted, Name: SpanExecution, Fn: "echo", Start: 0, End: time.Millisecond / 2})

	var fa, fb bytes.Buffer
	if err := a.WriteChromeTrace(&fa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&fb); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = StitchChromeTraces(&out,
		TraceSource{Name: "router", Reader: &fa},
		TraceSource{Name: "w1", Reader: &fb},
	)
	if err != nil {
		t.Fatal(err)
	}
	var stitched chromeTrace
	if err := json.Unmarshal(out.Bytes(), &stitched); err != nil {
		t.Fatal(err)
	}
	lanes := map[uint64]int{}
	for _, ev := range stitched.TraceEvents {
		if ev.Ph == "X" {
			lanes[ev.Tid]++
		}
	}
	if lanes[trace] != 2 {
		t.Fatalf("trace lane %d has %d spans, want both processes' spans on one lane (lanes: %v)", trace, lanes[trace], lanes)
	}
}

func TestStitchErrors(t *testing.T) {
	if err := StitchChromeTraces(&bytes.Buffer{}); err == nil {
		t.Fatal("stitching zero sources must fail")
	}
	err := StitchChromeTraces(&bytes.Buffer{}, TraceSource{Name: "bad", Reader: strings.NewReader("not json")})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("malformed source error = %v, want it to name the source", err)
	}
}
