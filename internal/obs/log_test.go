package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("level filtering broken: %q", out)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatalf("NewLogger json: %v", err)
	}
	lg.Debug("msg", "trace", 7)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line invalid: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "msg" || rec["trace"] != float64(7) {
		t.Fatalf("json record = %v", rec)
	}

	// Defaults.
	if _, err := NewLogger(&buf, "", ""); err != nil {
		t.Fatalf("default logger: %v", err)
	}
	// Rejections.
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestNopLoggerDisabled(t *testing.T) {
	lg := Nop()
	for _, lvl := range []slog.Level{slog.LevelDebug, slog.LevelInfo, slog.LevelWarn, slog.LevelError} {
		if lg.Enabled(context.Background(), lvl) {
			t.Fatalf("nop logger enabled at %v", lvl)
		}
	}
	// Must not panic, and WithAttrs/WithGroup stay nops.
	lg.With("k", "v").WithGroup("g").Error("discarded")
}
