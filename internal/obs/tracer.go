package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one completed trace span. Timestamps are offsets from the
// tracer's epoch (process start on the live platform, the simulation
// epoch in virtual-time runs).
type Span struct {
	// Trace identifies the invocation the span belongs to (non-zero).
	Trace uint64
	// Name is the span kind (SpanScheduling, SpanExecution, ...).
	Name string
	// Fn is the function name.
	Fn string
	// Container identifies the container involved, when known.
	Container string
	// Detail carries span-specific context (e.g. the resource key of a
	// SpanResourceBuild).
	Detail string
	// Attempt is the 1-based execution attempt the span belongs to
	// (zero when not attempt-scoped).
	Attempt int
	// Start and End bound the span on the tracer's clock.
	Start time.Duration
	End   time.Duration
}

// Dur reports the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// TracerConfig parameterises a Tracer.
type TracerConfig struct {
	// Capacity bounds the ring buffer, in spans. Older spans are
	// overwritten (and counted as dropped) once the ring is full.
	// Defaults to 65536.
	Capacity int
	// Sample records every Sample-th trace (1 = every trace, 10 = one in
	// ten). Unsampled traces cost one atomic-free counter increment and
	// record nothing. Defaults to 1.
	Sample int
	// Clock reports the current offset from the tracer's epoch. Required
	// for virtual-time tracers; NewWallTracer supplies a wall clock.
	Clock func() time.Duration
	// IDSalt is XORed into locally minted trace IDs so that tracers in
	// different processes (router, each worker) allocate from disjoint
	// ranges and stitched traces don't collide. Adopted remote IDs
	// (BeginWith) are never salted. Zero means unsalted.
	IDSalt uint64
	// epoch anchors Stamp for wall-clock tracers.
	epoch time.Time
}

// Tracer records invocation lifecycle spans into a bounded ring buffer.
// All methods are safe on a nil receiver: a nil tracer is the disabled
// tracer, and its hot path allocates nothing.
type Tracer struct {
	clock  func() time.Duration
	epoch  time.Time
	sample uint64
	salt   uint64

	mu      sync.Mutex
	spans   []Span
	next    int
	full    bool
	seq     uint64 // traces begun (sampling counter)
	ids     uint64 // trace-ID allocator
	dropped uint64 // spans overwritten in the ring
}

// NewTracer builds a tracer from cfg. The clock is required.
func NewTracer(cfg TracerConfig) (*Tracer, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("obs: tracer requires a clock")
	}
	if cfg.Capacity < 0 || cfg.Sample < 0 {
		return nil, fmt.Errorf("obs: tracer capacity and sample must be non-negative")
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 65536
	}
	if cfg.Sample == 0 {
		cfg.Sample = 1
	}
	return &Tracer{
		clock:  cfg.Clock,
		epoch:  cfg.epoch,
		sample: uint64(cfg.Sample),
		salt:   cfg.IDSalt,
		spans:  make([]Span, cfg.Capacity),
	}, nil
}

// NewWallTracer builds a wall-clock tracer whose epoch is the moment of
// creation. Zero capacity/sample select the defaults.
func NewWallTracer(capacity, sample int) (*Tracer, error) {
	return NewWallTracerWithSalt(capacity, sample, 0)
}

// NewWallTracerWithSalt builds a wall-clock tracer whose locally minted
// trace IDs are salted (see TracerConfig.IDSalt). Every process in a
// routed fleet should salt with its own identity so stitched traces
// never alias.
func NewWallTracerWithSalt(capacity, sample int, salt uint64) (*Tracer, error) {
	epoch := time.Now()
	return NewTracer(TracerConfig{
		Capacity: capacity,
		Sample:   sample,
		IDSalt:   salt,
		Clock:    func() time.Duration { return time.Since(epoch) },
		epoch:    epoch,
	})
}

// Begin starts a new trace, returning its ID. It returns zero — the
// "don't record" sentinel every other method honours — when the tracer is
// nil or the trace falls outside the sample.
func (t *Tracer) Begin() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	if t.sample > 1 && t.seq%t.sample != 0 {
		return 0
	}
	return t.mint()
}

// mint allocates the next salted, non-zero trace ID. Callers hold t.mu.
func (t *Tracer) mint() uint64 {
	t.ids++
	id := t.ids ^ t.salt
	if id == 0 { // the salt collided with the counter; skip the sentinel
		t.ids++
		id = t.ids ^ t.salt
	}
	return id
}

// BeginWith starts a trace continuing a remote parent: the remote ID is
// adopted verbatim so spans recorded here stitch onto the caller's
// trace. Sampling is the originator's decision — an adopted trace is
// always recorded. A zero remote falls back to Begin (mint locally,
// subject to sampling); a nil tracer returns the zero sentinel either
// way.
func (t *Tracer) BeginWith(remote uint64) uint64 {
	if t == nil {
		return 0
	}
	if remote == 0 {
		return t.Begin()
	}
	return remote
}

// Now reports the current offset on the tracer's clock (zero when nil).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Stamp converts a wall-clock instant to a tracer offset. On virtual-time
// tracers (no wall epoch) it falls back to Now. Stamping the same
// time.Time values used for latency measurement keeps exported spans
// exactly consistent with the reported decomposition.
func (t *Tracer) Stamp(tm time.Time) time.Duration {
	if t == nil {
		return 0
	}
	if t.epoch.IsZero() {
		return t.clock()
	}
	return tm.Sub(t.epoch)
}

// Record stores one completed span. It is a no-op when the tracer is nil
// or the span carries the zero (unsampled) trace ID.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Trace == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		t.dropped++
	}
	t.spans[t.next] = s
	t.next++
	if t.next == len(t.spans) {
		t.next = 0
		t.full = true
	}
}

// Snapshot returns a copy of the buffered spans sorted by start time.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := t.next
	if t.full {
		n = len(t.spans)
	}
	out := make([]Span, n)
	if t.full {
		copy(out, t.spans[t.next:])
		copy(out[len(t.spans)-t.next:], t.spans[:t.next])
	} else {
		copy(out, t.spans[:n])
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped reports how many spans were overwritten in the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one Chrome trace-event ("X" phase: complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the Chrome trace-event format,
// which Perfetto and chrome://tracing both load.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the buffered spans as Chrome trace-event JSON:
// complete ("X") events sorted by timestamp, with one thread lane per
// trace ID so an invocation's spans line up as one Perfetto row. A nil
// tracer exports an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	if t != nil {
		if nanos, ok := epochNanos(t.epoch); ok {
			out.OtherData = map[string]string{traceEpochKey: nanos}
		}
	}
	for _, s := range spans {
		args := map[string]string{"trace": fmt.Sprintf("%d", s.Trace)}
		if s.Fn != "" {
			args["fn"] = s.Fn
		}
		if s.Container != "" {
			args["container"] = s.Container
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if s.Attempt > 0 {
			args["attempt"] = fmt.Sprintf("%d", s.Attempt)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "faasbatch",
			Ph:   "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur()) / float64(time.Microsecond),
			Pid:  1,
			Tid:  s.Trace,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: encode chrome trace: %w", err)
	}
	return nil
}
