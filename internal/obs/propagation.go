// propagation.go carries trace identity across process boundaries in a
// W3C traceparent-shaped header:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// FaaSBatch trace IDs are 64-bit, so the wire trace-id field is the ID
// zero-padded to 128 bits; parsers take the low 64 bits and ignore the
// high half, which keeps the header interoperable with full W3C
// producers. Parent-id and flags are carried but not interpreted — the
// span tree is reconstructed from span names and timestamps by the
// stitcher, not from parent pointers.
package obs

import (
	"strconv"
	"time"
)

// TraceParentHeader is the canonical header name for trace propagation
// (HTTP canonicalises to this form).
const TraceParentHeader = "Traceparent"

// traceParentLen is the exact length of a well-formed header value:
// 2 + 1 + 32 + 1 + 16 + 1 + 2.
const traceParentLen = 55

const hexDigits = "0123456789abcdef"

// AppendTraceParent appends the header value for trace id to dst and
// returns the extended slice. It allocates nothing when dst has
// capacity (pass a stack-backed array slice on hot paths).
func AppendTraceParent(dst []byte, id uint64) []byte {
	dst = append(dst, '0', '0', '-')
	for i := 0; i < 16; i++ {
		dst = append(dst, '0')
	}
	for i := 60; i >= 0; i -= 4 {
		dst = append(dst, hexDigits[(id>>uint(i))&0xf])
	}
	dst = append(dst, '-')
	for i := 60; i >= 0; i -= 4 {
		dst = append(dst, hexDigits[(id>>uint(i))&0xf])
	}
	dst = append(dst, '-', '0', '1')
	return dst
}

// FormatTraceParent renders the header value for trace id.
func FormatTraceParent(id uint64) string {
	return string(AppendTraceParent(make([]byte, 0, traceParentLen), id))
}

// hexNibble decodes one lowercase-or-uppercase hex digit, reporting
// validity.
func hexNibble(c byte) (uint64, bool) {
	switch {
	case c >= '0' && c <= '9':
		return uint64(c - '0'), true
	case c >= 'a' && c <= 'f':
		return uint64(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return uint64(c-'A') + 10, true
	}
	return 0, false
}

// ParseTraceParent extracts the trace ID (low 64 bits of the trace-id
// field) from a traceparent header value. It returns (0, false) for
// malformed input, unknown versions, and the all-zero trace ID the spec
// reserves as invalid. The parse allocates nothing.
func ParseTraceParent(s string) (uint64, bool) {
	if len(s) != traceParentLen {
		return 0, false
	}
	// version: exactly "00" (01-fe would be tolerable per spec, but we
	// only ever mint 00 and reject ff like the spec requires; being
	// strict keeps the fuzz oracle simple).
	if s[0] != '0' || s[1] != '0' {
		return 0, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return 0, false
	}
	var hi, lo uint64
	for i := 3; i < 19; i++ {
		n, ok := hexNibble(s[i])
		if !ok {
			return 0, false
		}
		hi = hi<<4 | n
	}
	for i := 19; i < 35; i++ {
		n, ok := hexNibble(s[i])
		if !ok {
			return 0, false
		}
		lo = lo<<4 | n
	}
	// parent-id: must be valid hex and non-zero per spec.
	var parent uint64
	for i := 36; i < 52; i++ {
		n, ok := hexNibble(s[i])
		if !ok {
			return 0, false
		}
		parent = parent<<4 | n
	}
	if parent == 0 {
		return 0, false
	}
	// flags: two hex digits, uninterpreted.
	if _, ok := hexNibble(s[53]); !ok {
		return 0, false
	}
	if _, ok := hexNibble(s[54]); !ok {
		return 0, false
	}
	// The spec's invalid sentinel is the all-zero 128-bit trace ID. A
	// non-zero high half with a zero low half still yields no usable
	// 64-bit ID, so both cases report invalid.
	if lo == 0 {
		return 0, false
	}
	_ = hi
	return lo, true
}

// traceEpochKey is the otherData key carrying the tracer's wall-clock
// epoch in Unix nanoseconds, used by the stitcher to place per-process
// traces on one timeline.
const traceEpochKey = "epochUnixNano"

// epochNanos renders a wall epoch for export; zero (virtual-time
// tracers) exports nothing.
func epochNanos(epoch time.Time) (string, bool) {
	if epoch.IsZero() {
		return "", false
	}
	return strconv.FormatInt(epoch.UnixNano(), 10), true
}
