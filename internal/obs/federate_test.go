package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const memberA = `# HELP faasbatch_invocations_total Completed invocations.
# TYPE faasbatch_invocations_total counter
faasbatch_invocations_total 120
# HELP faasbatch_goroutines Goroutines currently running.
# TYPE faasbatch_goroutines gauge
faasbatch_goroutines 12
# HELP faasbatch_latency_seconds Per-function, per-component invocation latency.
# TYPE faasbatch_latency_seconds histogram
faasbatch_latency_seconds_bucket{fn="echo",component="execution",le="0.001"} 3
faasbatch_latency_seconds_bucket{fn="echo",component="execution",le="+Inf"} 5
faasbatch_latency_seconds_sum{fn="echo",component="execution"} 0.25
faasbatch_latency_seconds_count{fn="echo",component="execution"} 5
`

const memberB = `# HELP faasbatch_invocations_total Completed invocations.
# TYPE faasbatch_invocations_total counter
faasbatch_invocations_total 80
# HELP faasbatch_goroutines Goroutines currently running.
# TYPE faasbatch_goroutines gauge
faasbatch_goroutines 7
# HELP faasbatch_latency_seconds Per-function, per-component invocation latency.
# TYPE faasbatch_latency_seconds histogram
faasbatch_latency_seconds_bucket{fn="echo",component="execution",le="0.001"} 1
faasbatch_latency_seconds_bucket{fn="echo",component="execution",le="+Inf"} 2
faasbatch_latency_seconds_sum{fn="echo",component="execution"} 0.5
faasbatch_latency_seconds_count{fn="echo",component="execution"} 2
`

func parseDoc(t *testing.T, doc string) []*PromFamily {
	t.Helper()
	fams, err := ParsePrometheus(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

func TestParsePrometheus(t *testing.T) {
	fams := parseDoc(t, memberA)
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[0].Name != "faasbatch_invocations_total" || fams[0].Type != "counter" {
		t.Fatalf("family 0 = %+v", fams[0])
	}
	if fams[0].Help == "" {
		t.Fatal("HELP text lost")
	}
	hist := fams[2]
	if hist.Type != "histogram" || len(hist.Samples) != 4 {
		t.Fatalf("histogram family = %+v, want 4 samples (_bucket x2, _sum, _count)", hist)
	}
	if hist.Samples[0].Labels != `fn="echo",component="execution",le="0.001"` {
		t.Fatalf("labels = %q", hist.Samples[0].Labels)
	}
}

func TestFederateMetrics(t *testing.T) {
	var out bytes.Buffer
	FederateMetrics(&out, []MemberMetrics{
		{Worker: "w1", Families: parseDoc(t, memberA)},
		{Worker: "w2", Families: parseDoc(t, memberB)},
	})
	doc := out.String()
	for _, want := range []string{
		// Counters sum: 120 + 80.
		"faasbatch_invocations_total 200\n",
		// Gauges tag per worker.
		`faasbatch_goroutines{worker="w1"} 12` + "\n",
		`faasbatch_goroutines{worker="w2"} 7` + "\n",
		// Histogram buckets merge bucket-wise: 3+1 and 5+2.
		`faasbatch_latency_seconds_bucket{fn="echo",component="execution",le="0.001"} 4` + "\n",
		`faasbatch_latency_seconds_bucket{fn="echo",component="execution",le="+Inf"} 7` + "\n",
		`faasbatch_latency_seconds_sum{fn="echo",component="execution"} 0.75` + "\n",
		`faasbatch_latency_seconds_count{fn="echo",component="execution"} 7` + "\n",
		// Metadata is retained once.
		"# TYPE faasbatch_invocations_total counter\n",
		"# TYPE faasbatch_goroutines gauge\n",
		"# TYPE faasbatch_latency_seconds histogram\n",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("federated output missing %q\n---\n%s", want, doc)
		}
	}
	if n := strings.Count(doc, "# TYPE faasbatch_invocations_total counter"); n != 1 {
		t.Errorf("TYPE line emitted %d times, want once", n)
	}
	// The federated document must itself parse: federation is closed
	// over the exposition format.
	if _, err := ParsePrometheus(strings.NewReader(doc)); err != nil {
		t.Fatalf("federated output does not re-parse: %v", err)
	}
}

// TestFederationMatchesMergedHistogram cross-checks the two merge
// paths: federating N members' rendered histograms equals rendering the
// bucket-wise Histogram.Merge of the same data.
func TestFederationMatchesMergedHistogram(t *testing.T) {
	mk := func(values []time.Duration) *Metrics {
		m := NewMetrics()
		for _, v := range values {
			m.ObserveLatency("echo", SpanExecution, v)
		}
		return m
	}
	m1 := mk([]time.Duration{time.Millisecond, 40 * time.Millisecond, 3 * time.Second})
	m2 := mk([]time.Duration{2 * time.Millisecond, 90 * time.Millisecond})
	var d1, d2 bytes.Buffer
	m1.WritePrometheus(&d1)
	m2.WritePrometheus(&d2)
	f1, err := ParsePrometheus(&d1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ParsePrometheus(&d2)
	if err != nil {
		t.Fatal(err)
	}
	var fed bytes.Buffer
	FederateMetrics(&fed, []MemberMetrics{{Worker: "w1", Families: f1}, {Worker: "w2", Families: f2}})

	union := mk([]time.Duration{time.Millisecond, 40 * time.Millisecond, 3 * time.Second, 2 * time.Millisecond, 90 * time.Millisecond})
	var want bytes.Buffer
	union.WritePrometheus(&want)
	wantFams, err := ParsePrometheus(&want)
	if err != nil {
		t.Fatal(err)
	}
	fedFams, err := ParsePrometheus(strings.NewReader(fed.String()))
	if err != nil {
		t.Fatal(err)
	}
	index := func(fams []*PromFamily) map[string]float64 {
		out := map[string]float64{}
		for _, f := range fams {
			if f.Name != "faasbatch_latency_seconds" {
				continue
			}
			for _, s := range f.Samples {
				out[s.Name+"{"+s.Labels+"}"] = s.Value
			}
		}
		return out
	}
	got, exp := index(fedFams), index(wantFams)
	if len(got) == 0 || len(exp) == 0 {
		t.Fatal("latency histogram series missing")
	}
	for k, v := range exp {
		if strings.Contains(k, "_sum{") {
			// The two paths add the same float64 terms in different
			// orders, so _sum matches to rounding, not bit-exactly.
			if diff := got[k] - v; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("federated %s = %v, want ~%v", k, got[k], v)
			}
			continue
		}
		if got[k] != v {
			t.Errorf("federated %s = %v, want %v", k, got[k], v)
		}
	}
}

// TestHistogramMergeProperty is the satellite property test: splitting
// any sample stream across N shard histograms and merging them
// bucket-wise is indistinguishable from observing the union in one
// histogram — bucket counts, total count and sum all preserved.
func TestHistogramMergeProperty(t *testing.T) {
	prop := func(raw []uint16, shardCount uint8) bool {
		shards := int(shardCount%8) + 1
		union, err := NewHistogram(DefaultLatencyBuckets)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]*Histogram, shards)
		for i := range parts {
			parts[i], err = NewHistogram(DefaultLatencyBuckets)
			if err != nil {
				t.Fatal(err)
			}
		}
		for i, r := range raw {
			// Integer-valued floats in [0, 65535] keep float addition
			// exact, so sum comparison is == not ≈. Scale down so values
			// straddle the default bucket bounds.
			v := float64(r) / 1024
			union.Observe(v)
			parts[i%shards].Observe(v)
		}
		merged, err := NewHistogram(DefaultLatencyBuckets)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Count() != union.Count() {
			return false
		}
		wantBuckets, gotBuckets := union.Buckets(), merged.Buckets()
		for i := range wantBuckets {
			if gotBuckets[i] != wantBuckets[i] {
				return false
			}
		}
		wantCum, gotCum := union.Cumulative(), merged.Cumulative()
		for i := range wantCum {
			if gotCum[i] != wantCum[i] {
				return false
			}
		}
		// Scaled uint16 values are sums of exact binary fractions, so
		// exact equality is the correct check here.
		return merged.Sum() == union.Sum()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a, err := NewHistogram([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bucket counts must fail")
	}
	c, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(1.5)
	before := a.Count()
	if err := a.Merge(c); err == nil {
		t.Fatal("merging mismatched bounds must fail")
	}
	if a.Count() != before {
		t.Fatal("failed merge must leave the receiver unchanged")
	}
}

func TestWriteRuntimeGauges(t *testing.T) {
	var out bytes.Buffer
	WriteRuntimeGauges(&out, "faasbatch")
	doc := out.String()
	for _, ex := range RuntimeExports {
		name := "faasbatch_" + ex.Suffix
		if !strings.Contains(doc, fmt.Sprintf("# HELP %s ", name)) {
			t.Errorf("missing HELP for %s", name)
		}
		if !strings.Contains(doc, fmt.Sprintf("# TYPE %s %s\n", name, ex.Typ)) {
			t.Errorf("missing TYPE for %s", name)
		}
		if !strings.Contains(doc, name+" ") {
			t.Errorf("missing sample for %s", name)
		}
	}
	fams, err := ParsePrometheus(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("runtime gauges do not parse: %v", err)
	}
	byName := map[string]*PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	g := byName["faasbatch_goroutines"]
	if g == nil || len(g.Samples) != 1 || g.Samples[0].Value < 1 {
		t.Fatalf("faasbatch_goroutines = %+v, want a positive sample", g)
	}
	heap := byName["faasbatch_heap_alloc_bytes"]
	if heap == nil || len(heap.Samples) != 1 || heap.Samples[0].Value <= 0 {
		t.Fatalf("faasbatch_heap_alloc_bytes = %+v, want a positive sample", heap)
	}
}
