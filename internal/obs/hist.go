package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultLatencyBuckets are the latency histogram upper bounds in
// seconds, spanning sub-millisecond handler times to multi-second
// cold-start tails.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultGroupSizeBuckets are the batch-group-size histogram upper
// bounds (invocations per dispatched group).
var DefaultGroupSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Histogram is a fixed-bucket histogram in the Prometheus style: one
// counter per upper bound plus an implicit +Inf bucket, a running sum and
// a total count. It is not safe for concurrent use; Metrics serialises
// access for the platform.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1, the last is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds must be strictly increasing at index %d", i)
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}, nil
}

// Observe counts one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx]++
	h.sum += v
	h.count++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Cumulative reports the cumulative bucket counts, one per bound plus the
// trailing +Inf bucket (which equals Count).
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		out[i] = acc
	}
	return out
}

// Bounds returns a copy of the upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Buckets returns a copy of the raw (non-cumulative) bucket counts, one
// per bound plus the trailing +Inf bucket.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Merge folds other into h bucket-wise. Because both histograms share
// fixed bounds the merge is exact: merged bucket counts, sum and count
// equal those of a histogram that observed the union of both sample
// streams. Mismatched bounds are an error and leave h unchanged.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merge histograms with %d vs %d bounds", len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("obs: merge histograms with different bounds at index %d (%v vs %v)", i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.sum += other.sum
	h.count += other.count
	return nil
}

// latencyKey labels one latency histogram series.
type latencyKey struct {
	Fn        string
	Component string
}

// Metrics aggregates the platform's labeled histograms: per-function,
// per-component latency and the batch group size. It is safe for
// concurrent use.
type Metrics struct {
	mu         sync.Mutex
	latBounds  []float64
	lat        map[latencyKey]*Histogram
	fwd        map[string]*Histogram // per-worker forward latency (router)
	groupSize  *Histogram
	histErrors int // defensive: construction failures (never with the defaults)
}

// NewMetrics builds a registry with the default buckets.
func NewMetrics() *Metrics {
	gs, err := NewHistogram(DefaultGroupSizeBuckets)
	if err != nil {
		// The default bounds are valid by construction.
		panic(err)
	}
	return &Metrics{
		latBounds: DefaultLatencyBuckets,
		lat:       make(map[latencyKey]*Histogram),
		fwd:       make(map[string]*Histogram),
		groupSize: gs,
	}
}

// ObserveLatency counts one latency observation for (fn, component).
// Component names follow the obs span vocabulary (SpanScheduling, ...).
func (m *Metrics) ObserveLatency(fn, component string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := latencyKey{Fn: fn, Component: component}
	h, ok := m.lat[key]
	if !ok {
		var err error
		h, err = NewHistogram(m.latBounds)
		if err != nil {
			m.histErrors++
			return
		}
		m.lat[key] = h
	}
	h.Observe(d.Seconds())
}

// ObserveForward counts one routed forward attempt's latency against the
// serving worker (internal/router). Workers appear as histogram labels in
// WritePrometheus, so per-worker tails stay visible behind the router.
func (m *Metrics) ObserveForward(worker string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.fwd[worker]
	if !ok {
		var err error
		h, err = NewHistogram(m.latBounds)
		if err != nil {
			m.histErrors++
			return
		}
		m.fwd[worker] = h
	}
	h.Observe(d.Seconds())
}

// ObserveGroupSize counts one dispatched batch group's size.
func (m *Metrics) ObserveGroupSize(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.groupSize.Observe(float64(n))
}

// formatBound renders a bucket bound the Prometheus way.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// writeHistogram renders one labeled histogram series. labels is either
// empty or a comma-joined list of label="value" pairs.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	sumLabels := ""
	if labels != "" {
		sumLabels = "{" + labels + "}"
	}
	cum := h.Cumulative()
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, formatBound(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, sumLabels, strconv.FormatFloat(h.sum, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sumLabels, h.count)
}

// WritePrometheus renders every histogram in the Prometheus text
// exposition format, deterministically ordered.
func (m *Metrics) WritePrometheus(w io.Writer) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP faasbatch_latency_seconds Per-function, per-component invocation latency.\n")
	fmt.Fprintf(w, "# TYPE faasbatch_latency_seconds histogram\n")
	keys := make([]latencyKey, 0, len(m.lat))
	for k := range m.lat {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Fn != keys[j].Fn {
			return keys[i].Fn < keys[j].Fn
		}
		return keys[i].Component < keys[j].Component
	})
	for _, k := range keys {
		labels := fmt.Sprintf("fn=%q,component=%q", k.Fn, k.Component)
		writeHistogram(w, "faasbatch_latency_seconds", labels, m.lat[k])
	}
	if len(m.fwd) > 0 {
		fmt.Fprintf(w, "# HELP faasbatch_forward_latency_seconds Per-worker routed forward latency.\n")
		fmt.Fprintf(w, "# TYPE faasbatch_forward_latency_seconds histogram\n")
		workers := make([]string, 0, len(m.fwd))
		for wk := range m.fwd {
			workers = append(workers, wk)
		}
		sort.Strings(workers)
		for _, wk := range workers {
			writeHistogram(w, "faasbatch_forward_latency_seconds", fmt.Sprintf("worker=%q", wk), m.fwd[wk])
		}
	}
	fmt.Fprintf(w, "# HELP faasbatch_group_size Invocations per dispatched batch group.\n")
	fmt.Fprintf(w, "# TYPE faasbatch_group_size histogram\n")
	writeHistogram(w, "faasbatch_group_size", "", m.groupSize)
}
