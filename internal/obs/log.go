package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w.
//
//	level:  debug | info | warn | error
//	format: text | json
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text or json)", format)
	}
}

// Nop returns a logger that discards everything: Enabled reports false at
// every level, so guarded call sites skip attribute construction
// entirely.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler is a slog.Handler that is never enabled.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
