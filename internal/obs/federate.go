// federate.go parses the Prometheus text exposition format and merges
// scrapes from many fleet members into one cluster-level exposition:
// counters and histograms sum by (name, labels) — exact for the fixed
// shared buckets every member uses — while gauges, which are point
// readings that cannot meaningfully sum, are re-emitted per member
// under a worker="id" label.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromSample is one exposition sample line.
type PromSample struct {
	// Name is the sample's metric name (may carry a histogram suffix
	// like _bucket relative to its family).
	Name string
	// Labels is the raw text between the braces ("" when unlabeled).
	Labels string
	// Value is the parsed sample value.
	Value float64
}

// PromFamily is one metric family: its metadata plus samples in
// exposition order.
type PromFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram or untyped
	Samples []PromSample
}

// histogramSuffix reports the family base name for histogram-series
// sample names.
func histogramSuffix(name string) (string, bool) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			return base, true
		}
	}
	return "", false
}

// ParsePrometheus reads one exposition document into its families,
// preserving order. Unknown lines and comments other than HELP/TYPE are
// skipped; malformed sample lines are an error.
func ParsePrometheus(r io.Reader) ([]*PromFamily, error) {
	var (
		order  []*PromFamily
		byName = map[string]*PromFamily{}
	)
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &PromFamily{Name: name, Type: "untyped"}
		byName[name] = f
		order = append(order, f)
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				f := family(fields[2])
				if fields[1] == "TYPE" {
					f.Type = fields[3]
				} else if len(fields) == 4 {
					f.Help = fields[3]
				}
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		f, ok := byName[name]
		if !ok {
			if base, isHist := histogramSuffix(name); isHist {
				if bf, bok := byName[base]; bok && bf.Type == "histogram" {
					f = bf
				}
			}
		}
		if f == nil {
			f = family(name)
		}
		f.Samples = append(f.Samples, PromSample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: parse prometheus text: %w", err)
	}
	return order, nil
}

// parseSampleLine splits `name{labels} value` (or `name value`).
func parseSampleLine(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("obs: malformed sample line %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("obs: malformed sample line %q", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	// A timestamp may trail the value; keep the first field only.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("obs: malformed sample value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

// MemberMetrics is one fleet member's parsed exposition.
type MemberMetrics struct {
	// Worker is the member's fleet identity, used to label its gauges.
	Worker string
	// Families is the member's parsed /metrics document.
	Families []*PromFamily
}

// formatValue renders a merged sample value. Integral values (every
// counter and bucket count) print as plain integers — exact, and
// grep-friendly for the smoke tests — instead of 1e+06 notation.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withWorkerLabel appends worker="id" to a raw label string.
func withWorkerLabel(labels, worker string) string {
	tag := fmt.Sprintf("worker=%q", worker)
	if labels == "" {
		return tag
	}
	return labels + "," + tag
}

// FederateMetrics merges the members' expositions into one cluster
// document on w. Counters, histograms and untyped series sum by
// (sample name, labels); gauges emit one sample per member tagged
// worker="id". Family metadata (HELP/TYPE) is taken from the first
// member that exposes the family; family and sample order follow
// first-seen order across members, so the output is deterministic for
// a fixed member order.
func FederateMetrics(w io.Writer, members []MemberMetrics) {
	type sampleKey struct{ name, labels string }
	type aggFamily struct {
		meta *PromFamily
		// order holds sum-type sample keys first-seen order; sums the
		// accumulated values.
		order  []sampleKey
		sums   map[sampleKey]float64
		gauges []PromSample // worker-labeled, in member order
	}
	var famOrder []string
	fams := map[string]*aggFamily{}
	for _, m := range members {
		for _, f := range m.Families {
			af, ok := fams[f.Name]
			if !ok {
				af = &aggFamily{meta: f, sums: map[sampleKey]float64{}}
				fams[f.Name] = af
				famOrder = append(famOrder, f.Name)
			}
			if f.Type == "gauge" {
				for _, s := range f.Samples {
					af.gauges = append(af.gauges, PromSample{
						Name:   s.Name,
						Labels: withWorkerLabel(s.Labels, m.Worker),
						Value:  s.Value,
					})
				}
				continue
			}
			for _, s := range f.Samples {
				k := sampleKey{name: s.Name, labels: s.Labels}
				if _, seen := af.sums[k]; !seen {
					af.order = append(af.order, k)
				}
				af.sums[k] += s.Value
			}
		}
	}
	for _, name := range famOrder {
		af := fams[name]
		if af.meta.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, af.meta.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, af.meta.Type)
		for _, s := range af.gauges {
			fmt.Fprintf(w, "%s{%s} %s\n", s.Name, s.Labels, formatValue(s.Value))
		}
		for _, k := range af.order {
			if k.labels == "" {
				fmt.Fprintf(w, "%s %s\n", k.name, formatValue(af.sums[k]))
			} else {
				fmt.Fprintf(w, "%s{%s} %s\n", k.name, k.labels, formatValue(af.sums[k]))
			}
		}
	}
}
