package obs

import (
	"math"
	"strings"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	ids := []uint64{1, 2, 0xdeadbeef, 1 << 40, math.MaxUint64, 0x0123456789abcdef}
	for _, id := range ids {
		hdr := FormatTraceParent(id)
		if len(hdr) != traceParentLen {
			t.Fatalf("FormatTraceParent(%d) = %q: length %d, want %d", id, hdr, len(hdr), traceParentLen)
		}
		got, ok := ParseTraceParent(hdr)
		if !ok || got != id {
			t.Fatalf("ParseTraceParent(%q) = (%d, %v), want (%d, true)", hdr, got, ok, id)
		}
	}
}

func TestFormatTraceParentShape(t *testing.T) {
	hdr := FormatTraceParent(0xabc)
	want := "00-0000000000000000" + "0000000000000abc" + "-0000000000000abc-01"
	if hdr != want {
		t.Fatalf("FormatTraceParent(0xabc) = %q, want %q", hdr, want)
	}
}

func TestParseTraceParentAcceptsFullW3C(t *testing.T) {
	// A header minted by a full W3C tracer: non-zero high 64 bits and a
	// parent-id unrelated to the trace-id. The low 64 bits are the ID.
	hdr := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	got, ok := ParseTraceParent(hdr)
	if !ok || got != 0xa3ce929d0e0e4736 {
		t.Fatalf("ParseTraceParent(%q) = (%#x, %v), want (0xa3ce929d0e0e4736, true)", hdr, got, ok)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		strings.Repeat("0", traceParentLen),
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // unknown version
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da60000000000000000-00f067aa0ba902b7-01",  // zero low 64 bits
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero parent id
		"00-4bf92f3577b34da6a3ce929d0e0e473x-00f067aa0ba902b7-01",  // bad hex in trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bx-01",  // bad hex in parent id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",  // bad hex in flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-011", // too long
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",   // too short
	}
	for _, s := range bad {
		if id, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) = (%d, true), want rejection", s, id)
		}
	}
}

func TestAppendTraceParentNoAllocs(t *testing.T) {
	buf := make([]byte, 0, traceParentLen)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendTraceParent(buf[:0], 0xdeadbeefcafe)
	})
	if allocs != 0 {
		t.Fatalf("AppendTraceParent allocates %.1f per op, want 0", allocs)
	}
}

func TestParseTraceParentNoAllocs(t *testing.T) {
	hdr := FormatTraceParent(0xdeadbeefcafe)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := ParseTraceParent(hdr); !ok {
			t.Fatal("parse failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseTraceParent allocates %.1f per op, want 0", allocs)
	}
}

func TestDisabledTracerPropagationNoAllocs(t *testing.T) {
	// The disabled-tracing hot path: nil tracer, adopted remote ID,
	// recording skipped. None of it may allocate.
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		trace := tr.BeginWith(42)
		tr.Record(Span{Trace: trace, Name: SpanForward})
		trace = tr.Begin()
		tr.Record(Span{Trace: trace, Name: SpanForward})
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per op, want 0", allocs)
	}
}

func TestBeginWithAdoptsRemote(t *testing.T) {
	tr, err := NewWallTracer(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.BeginWith(99); got != 99 {
		t.Fatalf("BeginWith(99) = %d, want 99 (adopted verbatim)", got)
	}
	if got := tr.BeginWith(0); got == 0 {
		t.Fatal("BeginWith(0) = 0, want a locally minted ID")
	}
	// Adopted traces bypass sampling: a 1-in-1000 sampler still records
	// every remote continuation.
	sampled, err := NewWallTracer(16, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := sampled.BeginWith(7); got != 7 {
		t.Fatalf("sampled BeginWith(7) = %d, want 7", got)
	}
	var nilTr *Tracer
	if got := nilTr.BeginWith(7); got != 0 {
		t.Fatalf("nil BeginWith(7) = %d, want 0", got)
	}
}

func TestTracerIDSalt(t *testing.T) {
	a, err := NewWallTracerWithSalt(16, 1, 0x1111000000000000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWallTracerWithSalt(16, 1, 0x2222000000000000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ida, idb := a.Begin(), b.Begin()
		if ida == 0 || idb == 0 {
			t.Fatal("salted tracer minted the zero sentinel")
		}
		if ida == idb {
			t.Fatalf("salted tracers collided on ID %d", ida)
		}
	}
	// A salt that would make some counter value XOR to zero must skip
	// the sentinel, not emit it.
	c, err := NewWallTracerWithSalt(16, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id := c.Begin(); id == 0 {
		t.Fatal("salt-collision produced the zero sentinel")
	}
}

func FuzzParseTraceParent(f *testing.F) {
	f.Add(FormatTraceParent(1))
	f.Add(FormatTraceParent(math.MaxUint64))
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add(strings.Repeat("0", traceParentLen))
	f.Add("00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Fuzz(func(t *testing.T, s string) {
		id, ok := ParseTraceParent(s)
		if !ok {
			if id != 0 {
				t.Fatalf("ParseTraceParent(%q) rejected with non-zero id %d", s, id)
			}
			return
		}
		if id == 0 {
			t.Fatalf("ParseTraceParent(%q) accepted the zero sentinel", s)
		}
		// Accepted IDs must round-trip through our own minting format.
		if got, ok2 := ParseTraceParent(FormatTraceParent(id)); !ok2 || got != id {
			t.Fatalf("round-trip of accepted id %d failed: (%d, %v)", id, got, ok2)
		}
	})
}

func BenchmarkAppendTraceParent(b *testing.B) {
	b.ReportAllocs()
	buf := make([]byte, 0, traceParentLen)
	for i := 0; i < b.N; i++ {
		buf = AppendTraceParent(buf[:0], uint64(i)|1)
	}
}

func BenchmarkParseTraceParent(b *testing.B) {
	b.ReportAllocs()
	hdr := FormatTraceParent(0xdeadbeefcafe)
	for i := 0; i < b.N; i++ {
		if _, ok := ParseTraceParent(hdr); !ok {
			b.Fatal("parse failed")
		}
	}
}

func BenchmarkDisabledTracer(b *testing.B) {
	b.ReportAllocs()
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		trace := tr.BeginWith(uint64(i))
		tr.Record(Span{Trace: trace, Name: SpanForward})
	}
}
