package httpapi

import (
	"encoding/json"
	"testing"
)

func TestDecodeInvokeRequestValid(t *testing.T) {
	req, err := DecodeInvokeRequest([]byte(`{"fn":"fib","payload":{"n":30}}`))
	if err != nil {
		t.Fatalf("DecodeInvokeRequest: %v", err)
	}
	if req.Fn != "fib" {
		t.Errorf("Fn = %q", req.Fn)
	}
	if string(req.Payload) != `{"n":30}` {
		t.Errorf("Payload = %s", req.Payload)
	}
}

func TestDecodeInvokeRequestNoPayload(t *testing.T) {
	req, err := DecodeInvokeRequest([]byte(`{"fn":"echo"}`))
	if err != nil {
		t.Fatalf("DecodeInvokeRequest: %v", err)
	}
	if req.Fn != "echo" || len(req.Payload) != 0 {
		t.Errorf("req = %+v", req)
	}
}

func TestDecodeInvokeRequestRejectsMalformed(t *testing.T) {
	for _, body := range []string{
		``,
		`{`,
		`null`,
		`42`,
		`"fn"`,
		`[]`,
		`{"payload":{}}`,
		`{"fn":""}`,
		`{"fn":3}`,
	} {
		if _, err := DecodeInvokeRequest([]byte(body)); err == nil {
			t.Errorf("body %q accepted", body)
		}
	}
}

// FuzzDecodeInvokeRequest asserts the /invoke decoder is total: any body
// either decodes to a request with a non-empty function name or returns
// an error — never a panic — and an accepted request re-marshals.
func FuzzDecodeInvokeRequest(f *testing.F) {
	f.Add([]byte(`{"fn":"fib","payload":{"n":30}}`))
	f.Add([]byte(`{"fn":"echo"}`))
	f.Add([]byte(`{"fn":"s3upload","payload":{"bucket":"b","key":"k"}}`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"fn":""}`))
	f.Add([]byte(`{"payload":[1,2,3]}`))
	f.Add([]byte(`{"fn":"x","payload":"\ud800"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeInvokeRequest(body)
		if err != nil {
			return
		}
		if req.Fn == "" {
			t.Fatal("accepted request with empty fn")
		}
		if _, err := json.Marshal(req); err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
	})
}

func TestDecodeRoutedInvokeRequestValid(t *testing.T) {
	req, err := DecodeRoutedInvokeRequest([]byte(`{"fn":"fib","payload":{"n":30},"timeoutMillis":2500}`))
	if err != nil {
		t.Fatalf("DecodeRoutedInvokeRequest: %v", err)
	}
	if req.Fn != "fib" || req.TimeoutMillis != 2500 {
		t.Fatalf("req = %+v", req)
	}
	if string(req.Payload) != `{"n":30}` {
		t.Fatalf("payload = %s", req.Payload)
	}
	// Plain gateway bodies decode unchanged (superset contract).
	req, err = DecodeRoutedInvokeRequest([]byte(`{"fn":"echo"}`))
	if err != nil || req.TimeoutMillis != 0 {
		t.Fatalf("plain body: req=%+v err=%v", req, err)
	}
}

func TestDecodeRoutedInvokeRequestRejectsMalformed(t *testing.T) {
	for _, body := range []string{
		``,
		`{`,
		`null`,
		`{"fn":""}`,
		`{"payload":{}}`,
		`{"fn":"x","timeoutMillis":-1}`,
		`{"fn":3}`,
	} {
		if _, err := DecodeRoutedInvokeRequest([]byte(body)); err == nil {
			t.Errorf("body %q accepted", body)
		}
	}
}

// FuzzDecodeRoutedInvokeRequest asserts the router /invoke decoder is
// total: any body either decodes to a valid routed request (non-empty fn,
// non-negative timeout) or returns an error — never a panic — and an
// accepted request re-marshals.
func FuzzDecodeRoutedInvokeRequest(f *testing.F) {
	f.Add([]byte(`{"fn":"fib","payload":{"n":30}}`))
	f.Add([]byte(`{"fn":"echo","timeoutMillis":100}`))
	f.Add([]byte(`{"fn":"x","timeoutMillis":-5}`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"fn":""}`))
	f.Add([]byte(`{"timeoutMillis":9e99}`))
	f.Add([]byte(`{"fn":"x","payload":"\ud800"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRoutedInvokeRequest(body)
		if err != nil {
			return
		}
		if req.Fn == "" {
			t.Fatal("accepted request with empty fn")
		}
		if req.TimeoutMillis < 0 {
			t.Fatalf("accepted negative timeout %d", req.TimeoutMillis)
		}
		if _, err := json.Marshal(req); err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
	})
}
