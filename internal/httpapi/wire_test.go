package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// sampleResponses covers the encoder's branch space: escaping (control
// characters, HTML-unsafe bytes, U+2028/U+2029, invalid UTF-8, unicode),
// float formatting corners, empty/set optional fields, nil results.
func sampleResponses() []InvokeResponse {
	return []InvokeResponse{
		{},
		{Fn: "fib", Result: json.RawMessage(`{"n":30}`), ContainerID: "live-0001-fib", Cold: true, Attempts: 1,
			Latency: Latency{SchedMillis: 0.003, ColdMillis: 101.25, QueueMillis: 0, ExecMillis: 12.5, TotalMillis: 113.753}},
		{Fn: `we"ird\fn` + "\n\t\x01", Result: json.RawMessage(`[1,2,3]`), ContainerID: "<id>&stuff", Worker: "w-1", Attempts: 3,
			Latency: Latency{SchedMillis: 1e-7, ColdMillis: 1e21, QueueMillis: 123456.789, ExecMillis: 0.000001, TotalMillis: 2.5e-9}},
		{Fn: "uni\u2028code\u2029ok\u00e9", Result: json.RawMessage(`"x"`), ContainerID: "c", Worker: "wörker", Attempts: 1,
			TraceID: "00000000deadbeef"},
		{Fn: "bad\xffutf8", Result: nil, ContainerID: "c", Attempts: 2,
			Latency: Latency{SchedMillis: 1234567.25}},
	}
}

func TestAppendInvokeResponseMatchesStdlib(t *testing.T) {
	for i, r := range sampleResponses() {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		got := AppendInvokeResponse(nil, &r, 0)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got  %s\n want %s", i, got, want)
		}
	}
}

func TestAppendInvokeResponseTraceOverride(t *testing.T) {
	r := InvokeResponse{Fn: "fib", Attempts: 1}
	got := AppendInvokeResponse(nil, &r, 0xdeadbeef)
	r.TraceID = fmt.Sprintf("%016x", uint64(0xdeadbeef))
	want, _ := json.Marshal(r)
	if !bytes.Equal(got, want) {
		t.Errorf("trace override:\n got  %s\n want %s", got, want)
	}
}

func TestAppendRoutedInvokeResponseMatchesStdlib(t *testing.T) {
	for i, inner := range sampleResponses() {
		r := RoutedInvokeResponse{InvokeResponse: inner, Worker: "w-7", ForwardAttempts: i + 1}
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		got := AppendRoutedInvokeResponse(nil, &r)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got  %s\n want %s", i, got, want)
		}
	}
}

func TestAppendInvokeRequestMatchesStdlib(t *testing.T) {
	cases := []InvokeRequest{
		{Fn: "fib"},
		{Fn: "fib", Payload: json.RawMessage(`{"n":30}`)},
		{Fn: "esc\"aped&<fn>", Payload: json.RawMessage(`[true,null]`)},
	}
	for i, req := range cases {
		want, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		got := AppendInvokeRequest(nil, req.Fn, req.Payload)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got  %s\n want %s", i, got, want)
		}
	}
}

// TestAppendResultVerbatim pins the one deliberate divergence from
// encoding/json: raw results pass through byte-for-byte, neither
// compacted nor HTML-escaped.
func TestAppendResultVerbatim(t *testing.T) {
	raw := json.RawMessage("{\"a\": 1,\n  \"b\": \"<&>\"}")
	out := AppendInvokeResponse(nil, &InvokeResponse{Fn: "f", Result: raw}, 0)
	if !bytes.Contains(out, raw) {
		t.Fatalf("result not verbatim in %s", out)
	}
	var round struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if !bytes.Equal(round.Result, raw) {
		t.Fatalf("round-tripped result %s != %s", round.Result, raw)
	}
}

// decodeInvokeRequestSlow is the reflection oracle: what DecodeInvokeRequest
// did before the fast path existed.
func decodeInvokeRequestSlow(body []byte) (InvokeRequest, error) {
	var req InvokeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return InvokeRequest{}, err
	}
	if req.Fn == "" {
		return InvokeRequest{}, fmt.Errorf("missing fn")
	}
	return req, nil
}

// decodeRoutedInvokeRequestSlow mirrors DecodeRoutedInvokeRequest's
// fallback path.
func decodeRoutedInvokeRequestSlow(body []byte) (RoutedInvokeRequest, error) {
	var req RoutedInvokeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return RoutedInvokeRequest{}, err
	}
	if req.Fn == "" {
		return RoutedInvokeRequest{}, fmt.Errorf("missing fn")
	}
	if req.TimeoutMillis < 0 {
		return RoutedInvokeRequest{}, fmt.Errorf("negative timeout")
	}
	return req, nil
}

var decodeConsistencyBodies = []string{
	`{"fn":"fib","payload":{"n":30}}`,
	`{"fn":"echo"}`,
	` { "fn" : "ws" , "payload" : [ 1 , 2 ] } `,
	`{"payload":{},"fn":"order"}`,
	`{"fn":"dup","fn":"dup2"}`,
	`{"fn":"esc\u0041"}`,
	`{"fn":""}`,
	`{"fn":"x","payload":"\ud800"}`,
	`{"fn":"x","payload":{"deep":[{"a":"}"},"]"]}}`,
	`{"fn":"x","payload":tru}`,
	`{"fn":"x","payload":12e5}`,
	`{"fn":"x","payload":1e+}`,
	`{"fn":"x","unknown":1}`,
	`{"fn":"x","timeoutMillis":2500}`,
	`{"fn":"x","timeoutMillis":-1}`,
	`{"fn":"x","timeoutMillis":2.5}`,
	`{"fn":"x","timeoutMillis":9e99}`,
	`{"fn":"x","timeoutMillis":null}`,
	`{"fn":"x"} trailing`,
	`{"fn":"x",}`,
	`{}`,
	`null`,
	`[]`,
	``,
}

func TestDecodeInvokeRequestFastMatchesSlow(t *testing.T) {
	for _, body := range decodeConsistencyBodies {
		got, gotErr := DecodeInvokeRequest([]byte(body))
		want, wantErr := decodeInvokeRequestSlow([]byte(body))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("body %q: err mismatch: got %v, want %v", body, gotErr, wantErr)
			continue
		}
		if gotErr != nil {
			continue
		}
		if got.Fn != want.Fn || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("body %q: got %+v, want %+v", body, got, want)
		}
	}
}

func TestDecodeRoutedInvokeRequestFastMatchesSlow(t *testing.T) {
	for _, body := range decodeConsistencyBodies {
		got, gotErr := DecodeRoutedInvokeRequest([]byte(body))
		want, wantErr := decodeRoutedInvokeRequestSlow([]byte(body))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("body %q: err mismatch: got %v, want %v", body, gotErr, wantErr)
			continue
		}
		if gotErr != nil {
			continue
		}
		if got.Fn != want.Fn || got.TimeoutMillis != want.TimeoutMillis || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("body %q: got %+v, want %+v", body, got, want)
		}
	}
}

// FuzzDecodeConsistency proves the fast scanner never changes the decode
// verdict or result relative to the reflection path, for both decoders.
func FuzzDecodeConsistency(f *testing.F) {
	for _, body := range decodeConsistencyBodies {
		f.Add([]byte(body))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		got, gotErr := DecodeInvokeRequest(body)
		want, wantErr := decodeInvokeRequestSlow(body)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("invoke err mismatch on %q: %v vs %v", body, gotErr, wantErr)
		}
		if gotErr == nil && (got.Fn != want.Fn || !bytes.Equal(got.Payload, want.Payload)) {
			t.Fatalf("invoke decode mismatch on %q: %+v vs %+v", body, got, want)
		}
		rgot, rgotErr := DecodeRoutedInvokeRequest(body)
		rwant, rwantErr := decodeRoutedInvokeRequestSlow(body)
		if (rgotErr == nil) != (rwantErr == nil) {
			t.Fatalf("routed err mismatch on %q: %v vs %v", body, rgotErr, rwantErr)
		}
		if rgotErr == nil && (rgot.Fn != rwant.Fn || rgot.TimeoutMillis != rwant.TimeoutMillis || !bytes.Equal(rgot.Payload, rwant.Payload)) {
			t.Fatalf("routed decode mismatch on %q: %+v vs %+v", body, rgot, rwant)
		}
	})
}

// FuzzAppendInvokeResponseEquality cross-checks the byte encoder against
// json.Marshal on arbitrary field values (Result kept nil: raw values
// are deliberately not re-encoded, see TestAppendResultVerbatim).
func FuzzAppendInvokeResponseEquality(f *testing.F) {
	f.Add("fib", "c-1", "w", true, 3, "00ff00ff00ff00ff", 0.25, 1e-9)
	f.Add("", "", "", false, 0, "", 0.0, 1e22)
	f.Add("a\u2028b\xff<&>", "c\"d\\e", "w\n", true, -5, "t", -3.5, 123.456)
	f.Fuzz(func(t *testing.T, fn, cid, worker string, cold bool, attempts int, traceID string, f1, f2 float64) {
		r := InvokeResponse{Fn: fn, ContainerID: cid, Worker: worker, Cold: cold,
			Attempts: attempts, TraceID: traceID,
			Latency: Latency{SchedMillis: f1, ColdMillis: f2, TotalMillis: f1 + f2}}
		want, err := json.Marshal(r)
		if err != nil {
			return // non-finite floats etc.: encoder degrades, stdlib refuses
		}
		got := AppendInvokeResponse(nil, &r, 0)
		if !bytes.Equal(got, want) {
			t.Fatalf("mismatch:\n got  %s\n want %s", got, want)
		}
	})
}

func BenchmarkAppendInvokeResponse(b *testing.B) {
	r := InvokeResponse{Fn: "fib", Result: json.RawMessage(`{"n":30,"v":832040}`),
		ContainerID: "live-0001-fib", Worker: "w-1", Cold: false, Attempts: 1,
		Latency: Latency{SchedMillis: 0.112, ExecMillis: 4.25, TotalMillis: 4.362}}
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendInvokeResponse(buf[:0], &r, 0xdeadbeef)
	}
	_ = buf
}

func BenchmarkAppendInvokeRequest(b *testing.B) {
	payload := []byte(`{"n":30}`)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendInvokeRequest(buf[:0], "fib", payload)
	}
	_ = buf
}

func BenchmarkParseInvokeWire(b *testing.B) {
	body := []byte(`{"fn":"fib","payload":{"n":30}}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := parseInvokeWire(body); !ok {
			b.Fatal("fast path bailed")
		}
	}
}

func BenchmarkDecodeInvokeRequest(b *testing.B) {
	body := []byte(`{"fn":"fib","payload":{"n":30}}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInvokeRequest(body); err != nil {
			b.Fatal(err)
		}
	}
}
