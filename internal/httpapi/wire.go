// wire.go is the byte-oriented half of the /invoke wire protocol: append
// encoders and an allocation-conscious request scanner that the gateway
// (internal/platform) and the routing tier (internal/router) use on their
// hot paths instead of reflection-driven encoding/json round-trips.
//
// The encoders reproduce encoding/json's output byte-for-byte for the
// struct fields they cover (same field order, same string escaping
// including HTML-unsafe characters and U+2028/U+2029, same float
// formatting) — wire_test.go proves the equality against json.Marshal —
// with one deliberate exception: raw JSON values (Result, Payload) are
// emitted verbatim rather than re-compacted and re-escaped, which is the
// whole point of the pass-through fast path.
//
// The scanner handles the canonical body shape — one object with keys
// drawn from {"fn","payload","timeoutMillis"} — and bails out to
// encoding/json for anything unusual (escapes, duplicate or unknown keys,
// non-ASCII function names), so the observable decode semantics never
// diverge from the reflection path.
package httpapi

import (
	"encoding/json"
	"math"
	"strconv"
	"unicode/utf8"
)

// MaxInvokeBodyBytes caps an /invoke request body on both the gateway and
// the router (shared so the two surfaces cannot drift). Oversize bodies
// are answered with 413 Request Entity Too Large, not 400: the request
// was well-formed, just too big, and the distinction tells clients
// whether shrinking the payload can help.
const MaxInvokeBodyBytes = 1 << 20

const hexDigits = "0123456789abcdef"

// AppendInvokeRequest appends the InvokeRequest wire form for (fn,
// payload) to dst and returns the extended slice. An empty payload is
// omitted, matching the struct's omitempty tag; a non-empty payload must
// be valid JSON and is written verbatim.
func AppendInvokeRequest(dst []byte, fn string, payload []byte) []byte {
	dst = append(dst, `{"fn":`...)
	dst = appendJSONString(dst, fn)
	if len(payload) > 0 {
		dst = append(dst, `,"payload":`...)
		dst = append(dst, payload...)
	}
	return append(dst, '}')
}

// AppendInvokeResponse appends r's wire form to dst and returns the
// extended slice. A non-zero traceID overrides r.TraceID, rendered as 16
// lowercase hex digits without allocating — the gateway hands the raw
// trace identity straight from the platform Result. An empty r.Result is
// written as null (a handler that returned nothing), any other Result is
// emitted verbatim.
func AppendInvokeResponse(dst []byte, r *InvokeResponse, traceID uint64) []byte {
	dst = append(dst, `{"fn":`...)
	dst = appendJSONString(dst, r.Fn)
	dst = append(dst, `,"result":`...)
	dst = appendRawOrNull(dst, r.Result)
	dst = append(dst, `,"containerId":`...)
	dst = appendJSONString(dst, r.ContainerID)
	if r.Worker != "" {
		dst = append(dst, `,"worker":`...)
		dst = appendJSONString(dst, r.Worker)
	}
	dst = append(dst, `,"cold":`...)
	dst = strconv.AppendBool(dst, r.Cold)
	dst = append(dst, `,"attempts":`...)
	dst = strconv.AppendInt(dst, int64(r.Attempts), 10)
	switch {
	case traceID != 0:
		dst = append(dst, `,"traceId":"`...)
		dst = appendHex16(dst, traceID)
		dst = append(dst, '"')
	case r.TraceID != "":
		dst = append(dst, `,"traceId":`...)
		dst = appendJSONString(dst, r.TraceID)
	}
	dst = append(dst, `,"latency":`...)
	dst = appendLatency(dst, r.Latency)
	return append(dst, '}')
}

// AppendRoutedInvokeResponse appends r's wire form to dst and returns the
// extended slice. Field order matches encoding/json's flattening of the
// embedded InvokeResponse: the embedded fields first (its Worker shadowed
// by the router's), then the routing provenance.
func AppendRoutedInvokeResponse(dst []byte, r *RoutedInvokeResponse) []byte {
	dst = append(dst, `{"fn":`...)
	dst = appendJSONString(dst, r.Fn)
	dst = append(dst, `,"result":`...)
	dst = appendRawOrNull(dst, r.Result)
	dst = append(dst, `,"containerId":`...)
	dst = appendJSONString(dst, r.ContainerID)
	dst = append(dst, `,"cold":`...)
	dst = strconv.AppendBool(dst, r.Cold)
	dst = append(dst, `,"attempts":`...)
	dst = strconv.AppendInt(dst, int64(r.Attempts), 10)
	if r.TraceID != "" {
		dst = append(dst, `,"traceId":`...)
		dst = appendJSONString(dst, r.TraceID)
	}
	dst = append(dst, `,"latency":`...)
	dst = appendLatency(dst, r.Latency)
	dst = append(dst, `,"worker":`...)
	dst = appendJSONString(dst, r.Worker)
	dst = append(dst, `,"forwardAttempts":`...)
	dst = strconv.AppendInt(dst, int64(r.ForwardAttempts), 10)
	return append(dst, '}')
}

// appendRawOrNull writes a raw JSON value verbatim, or null when empty —
// json.Marshal's rendering of a nil RawMessage.
func appendRawOrNull(dst []byte, raw json.RawMessage) []byte {
	if len(raw) == 0 {
		return append(dst, "null"...)
	}
	return append(dst, raw...)
}

// appendLatency writes the Latency object in struct field order.
func appendLatency(dst []byte, l Latency) []byte {
	dst = append(dst, `{"schedMillis":`...)
	dst = appendJSONFloat(dst, l.SchedMillis)
	dst = append(dst, `,"coldMillis":`...)
	dst = appendJSONFloat(dst, l.ColdMillis)
	dst = append(dst, `,"queueMillis":`...)
	dst = appendJSONFloat(dst, l.QueueMillis)
	dst = append(dst, `,"execMillis":`...)
	dst = appendJSONFloat(dst, l.ExecMillis)
	dst = append(dst, `,"totalMillis":`...)
	dst = appendJSONFloat(dst, l.TotalMillis)
	return append(dst, '}')
}

// appendHex16 writes v as 16 lowercase hex digits — the TraceID wire
// form, matching fmt.Sprintf("%016x", v) without the allocation.
func appendHex16(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xF])
	}
	return dst
}

// appendJSONFloat formats f the way encoding/json does: %f in the normal
// range, scientific notation below 1e-6 or at 1e21 and above, with the
// exponent's leading zero trimmed. Non-finite values (which encoding/json
// refuses and latency decompositions never produce) degrade to 0 so the
// encoder stays total.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims "e-09" to "e-9".
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONString writes s as a JSON string with encoding/json's exact
// escaping: control characters, quote and backslash escaped; '<', '>'
// and '&' HTML-escaped; invalid UTF-8 replaced with �; U+2028 and
// U+2029 escaped for JavaScript embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// invokeWire is the scanner's view of an /invoke body. fn and payload
// alias the input buffer — callers own the lifetime relationship.
type invokeWire struct {
	fn         []byte
	payload    []byte
	timeout    int64
	hasTimeout bool
}

// parseInvokeWire scans body without reflection or copying when it has
// the canonical shape: one object, keys from {"fn","payload",
// "timeoutMillis"} each at most once, no escapes or non-ASCII bytes in
// fn, integral timeoutMillis. ok=false is NOT a rejection — it means the
// body needs the encoding/json fallback, which is the arbiter of
// validity. A true return guarantees the body would decode identically
// through encoding/json (the payload extent is verified with json.Valid).
func parseInvokeWire(body []byte) (w invokeWire, ok bool) {
	i := skipSpace(body, 0)
	if i >= len(body) || body[i] != '{' {
		return invokeWire{}, false
	}
	i = skipSpace(body, i+1)
	if i < len(body) && body[i] == '}' {
		return w, skipSpace(body, i+1) == len(body)
	}
	var seenFn, seenPayload, seenTimeout bool
	for {
		key, next, kok := scanPlainString(body, i)
		if !kok {
			return invokeWire{}, false
		}
		i = skipSpace(body, next)
		if i >= len(body) || body[i] != ':' {
			return invokeWire{}, false
		}
		i = skipSpace(body, i+1)
		switch string(key) {
		case "fn":
			if seenFn {
				return invokeWire{}, false
			}
			seenFn = true
			val, next, vok := scanPlainString(body, i)
			if !vok {
				return invokeWire{}, false
			}
			w.fn = val
			i = next
		case "payload":
			if seenPayload {
				return invokeWire{}, false
			}
			seenPayload = true
			end, vok := scanValue(body, i)
			if !vok || !json.Valid(body[i:end]) {
				return invokeWire{}, false
			}
			w.payload = body[i:end]
			i = end
		case "timeoutMillis":
			if seenTimeout {
				return invokeWire{}, false
			}
			seenTimeout = true
			end, vok := scanValue(body, i)
			if !vok {
				return invokeWire{}, false
			}
			ms, err := strconv.ParseInt(string(body[i:end]), 10, 64)
			if err != nil {
				// Fractional, exponential or overflowing: let the
				// reflection path produce its exact error (or ignore the
				// field, for decoders without a timeout).
				return invokeWire{}, false
			}
			w.timeout, w.hasTimeout = ms, true
			i = end
		default:
			return invokeWire{}, false
		}
		i = skipSpace(body, i)
		if i >= len(body) {
			return invokeWire{}, false
		}
		switch body[i] {
		case ',':
			i = skipSpace(body, i+1)
		case '}':
			return w, skipSpace(body, i+1) == len(body)
		default:
			return invokeWire{}, false
		}
	}
}

// skipSpace advances past JSON whitespace.
func skipSpace(body []byte, i int) int {
	for i < len(body) {
		switch body[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// scanPlainString scans a JSON string containing no escapes, no control
// characters and no non-ASCII bytes, returning the unquoted content
// (aliasing body) and the index past the closing quote. Anything fancier
// — escapes that need decoding, invalid UTF-8 that encoding/json would
// coerce to U+FFFD — reports !ok so the caller falls back.
func scanPlainString(body []byte, i int) (s []byte, next int, ok bool) {
	if i >= len(body) || body[i] != '"' {
		return nil, 0, false
	}
	i++
	start := i
	for ; i < len(body); i++ {
		switch b := body[i]; {
		case b == '"':
			return body[start:i], i + 1, true
		case b == '\\' || b < 0x20 || b >= utf8.RuneSelf:
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// scanValue finds the extent of one JSON value starting at i, returning
// the index just past it. It tracks only enough structure (brackets and
// strings) to find the boundary; the caller validates the extent with
// json.Valid before trusting it.
func scanValue(body []byte, i int) (end int, ok bool) {
	if i >= len(body) {
		return 0, false
	}
	switch body[i] {
	case '{', '[':
		depth := 0
		inStr, esc := false, false
		for ; i < len(body); i++ {
			c := body[i]
			if inStr {
				switch {
				case esc:
					esc = false
				case c == '\\':
					esc = true
				case c == '"':
					inStr = false
				}
				continue
			}
			switch c {
			case '"':
				inStr = true
			case '{', '[':
				depth++
			case '}', ']':
				depth--
				if depth == 0 {
					return i + 1, true
				}
				if depth < 0 {
					return 0, false
				}
			}
		}
		return 0, false
	case '"':
		esc := false
		for i++; i < len(body); i++ {
			switch c := body[i]; {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				return i + 1, true
			}
		}
		return 0, false
	default:
		// Number or literal: runs to the next structural delimiter.
		start := i
		for ; i < len(body); i++ {
			switch body[i] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return i, i > start
			}
		}
		return i, i > start
	}
}
