// Package httpapi defines the wire types of the live FaaSBatch gateway
// (internal/platform, cmd/faasgate).
package httpapi

import (
	"encoding/json"
	"fmt"
)

// InvokeRequest asks the gateway to invoke a function.
type InvokeRequest struct {
	// Fn is the registered function name.
	Fn string `json:"fn"`
	// Payload is passed to the handler verbatim.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// DecodeInvokeRequest parses and validates an /invoke request body.
// Malformed input yields an error, never a panic.
func DecodeInvokeRequest(body []byte) (InvokeRequest, error) {
	var req InvokeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return InvokeRequest{}, fmt.Errorf("httpapi: decode invoke request: %w", err)
	}
	if req.Fn == "" {
		return InvokeRequest{}, fmt.Errorf("httpapi: invoke request missing fn")
	}
	return req, nil
}

// Latency is the wall-clock latency decomposition of one invocation,
// mirroring the paper's metric split (§IV).
type Latency struct {
	// SchedMillis is the scheduling latency (window wait + dispatch).
	SchedMillis float64 `json:"schedMillis"`
	// ColdMillis is the container boot time (0 on warm starts).
	ColdMillis float64 `json:"coldMillis"`
	// QueueMillis is the in-container queuing latency (container ready
	// until the handler starts).
	QueueMillis float64 `json:"queueMillis"`
	// ExecMillis is the handler execution time.
	ExecMillis float64 `json:"execMillis"`
	// TotalMillis is the end-to-end latency: the sum of the four
	// components above, completing the paper's §IV decomposition.
	TotalMillis float64 `json:"totalMillis"`
}

// InvokeResponse reports one completed invocation.
type InvokeResponse struct {
	// Fn echoes the function name.
	Fn string `json:"fn"`
	// Result is the handler's JSON-encoded return value.
	Result json.RawMessage `json:"result"`
	// ContainerID identifies the serving container.
	ContainerID string `json:"containerId"`
	// Cold reports whether the invocation paid a cold start.
	Cold bool `json:"cold"`
	// Attempts is how many execution attempts the invocation consumed:
	// 1 on a first-try success, more when the platform retried it.
	Attempts int `json:"attempts"`
	// Latency is the invocation's latency decomposition.
	Latency Latency `json:"latency"`
}

// StatsResponse is the gateway's counters snapshot.
type StatsResponse struct {
	// Submitted counts invocations accepted by the gateway.
	Submitted int64 `json:"submitted"`
	// Invocations counts completed invocations (including failures).
	Invocations int64 `json:"invocations"`
	// Failures counts invocations that exhausted their retry budget.
	Failures int64 `json:"failures"`
	// Retries counts extra execution attempts granted after faults.
	Retries int64 `json:"retries"`
	// Timeouts counts handler attempts killed by the invoke deadline.
	Timeouts int64 `json:"timeouts"`
	// Panics counts recovered handler panics.
	Panics int64 `json:"panics"`
	// Crashes counts containers lost mid-batch.
	Crashes int64 `json:"crashes"`
	// BootFailures counts failed container boots.
	BootFailures int64 `json:"bootFailures"`
	// Groups counts dispatched batches.
	Groups int64 `json:"groups"`
	// ContainersCreated counts cold starts.
	ContainersCreated int64 `json:"containersCreated"`
	// WarmStarts counts container reuses.
	WarmStarts int64 `json:"warmStarts"`
	// LiveContainers counts currently alive containers.
	LiveContainers int `json:"liveContainers"`
	// CacheHits counts resource creations served by the multiplexer
	// (ready hits plus coalesced waits).
	CacheHits uint64 `json:"cacheHits"`
	// CacheMisses counts actual resource builds.
	CacheMisses uint64 `json:"cacheMisses"`
	// CacheBytesSaved is duplicate memory avoided by the multiplexer.
	CacheBytesSaved int64 `json:"cacheBytesSaved"`
}
