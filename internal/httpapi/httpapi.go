// Package httpapi defines the wire types of the live FaaSBatch gateway
// (internal/platform, cmd/faasgate) and of the routing tier that fronts a
// fleet of gateways (internal/router, cmd/faasrouter).
package httpapi

import (
	"encoding/json"
	"fmt"
)

// InvokeRequest asks the gateway to invoke a function.
type InvokeRequest struct {
	// Fn is the registered function name.
	Fn string `json:"fn"`
	// Payload is passed to the handler verbatim.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// DecodeInvokeRequest parses and validates an /invoke request body.
// Malformed input yields an error, never a panic. Canonical bodies take
// a byte-oriented fast path (wire.go) whose Payload aliases body —
// callers must not recycle body while the request is live; unusual
// shapes fall back to encoding/json with identical semantics.
func DecodeInvokeRequest(body []byte) (InvokeRequest, error) {
	if w, ok := parseInvokeWire(body); ok {
		if len(w.fn) == 0 {
			return InvokeRequest{}, fmt.Errorf("httpapi: invoke request missing fn")
		}
		req := InvokeRequest{Fn: string(w.fn)}
		if len(w.payload) > 0 {
			req.Payload = json.RawMessage(w.payload)
		}
		return req, nil
	}
	var req InvokeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return InvokeRequest{}, fmt.Errorf("httpapi: decode invoke request: %w", err)
	}
	if req.Fn == "" {
		return InvokeRequest{}, fmt.Errorf("httpapi: invoke request missing fn")
	}
	return req, nil
}

// Latency is the wall-clock latency decomposition of one invocation,
// mirroring the paper's metric split (§IV).
type Latency struct {
	// SchedMillis is the scheduling latency (window wait + dispatch).
	SchedMillis float64 `json:"schedMillis"`
	// ColdMillis is the container boot time (0 on warm starts).
	ColdMillis float64 `json:"coldMillis"`
	// QueueMillis is the in-container queuing latency (container ready
	// until the handler starts).
	QueueMillis float64 `json:"queueMillis"`
	// ExecMillis is the handler execution time.
	ExecMillis float64 `json:"execMillis"`
	// TotalMillis is the end-to-end latency: the sum of the four
	// components above, completing the paper's §IV decomposition.
	TotalMillis float64 `json:"totalMillis"`
}

// InvokeResponse reports one completed invocation.
type InvokeResponse struct {
	// Fn echoes the function name.
	Fn string `json:"fn"`
	// Result is the handler's JSON-encoded return value.
	Result json.RawMessage `json:"result"`
	// ContainerID identifies the serving container.
	ContainerID string `json:"containerId"`
	// Worker identifies the gateway that served the invocation, when it
	// runs as a fleet worker (Config.WorkerID); empty on a standalone
	// gateway.
	Worker string `json:"worker,omitempty"`
	// Cold reports whether the invocation paid a cold start.
	Cold bool `json:"cold"`
	// Attempts is how many execution attempts the invocation consumed:
	// 1 on a first-try success, more when the platform retried it.
	Attempts int `json:"attempts"`
	// TraceID is the invocation's trace identity as 16 lowercase hex
	// digits, matching the low 64 bits of the W3C traceparent trace-id.
	// Empty when tracing is disabled. A hex string survives JSON clients
	// that round numbers through float64.
	TraceID string `json:"traceId,omitempty"`
	// Latency is the invocation's latency decomposition.
	Latency Latency `json:"latency"`
}

// StatsResponse is the gateway's counters snapshot.
type StatsResponse struct {
	// Submitted counts invocations accepted by the gateway.
	Submitted int64 `json:"submitted"`
	// Canceled counts invocations dropped before execution because their
	// caller's context ended while they waited.
	Canceled int64 `json:"canceled"`
	// Invocations counts completed invocations (including failures).
	Invocations int64 `json:"invocations"`
	// Failures counts invocations that exhausted their retry budget.
	Failures int64 `json:"failures"`
	// Retries counts extra execution attempts granted after faults.
	Retries int64 `json:"retries"`
	// Timeouts counts handler attempts killed by the invoke deadline.
	Timeouts int64 `json:"timeouts"`
	// Panics counts recovered handler panics.
	Panics int64 `json:"panics"`
	// Crashes counts containers lost mid-batch.
	Crashes int64 `json:"crashes"`
	// BootFailures counts failed container boots.
	BootFailures int64 `json:"bootFailures"`
	// Groups counts dispatched batches.
	Groups int64 `json:"groups"`
	// FastPathDispatches counts adaptive idle fast-path dispatches.
	FastPathDispatches int64 `json:"fastPathDispatches"`
	// EarlyCloses counts adaptive windows closed at the group-size cap.
	EarlyCloses int64 `json:"earlyCloses"`
	// WindowDispatches counts adaptive windows closed by their deadline.
	WindowDispatches int64 `json:"windowDispatches"`
	// DispatchWindowMicros is the most recently chosen adaptive dispatch
	// window, in microseconds (zero with adaptive dispatch off).
	DispatchWindowMicros int64 `json:"dispatchWindowMicros"`
	// ContainersCreated counts cold starts.
	ContainersCreated int64 `json:"containersCreated"`
	// WarmStarts counts container reuses.
	WarmStarts int64 `json:"warmStarts"`
	// LiveContainers counts currently alive containers.
	LiveContainers int `json:"liveContainers"`
	// CacheHits counts resource creations served by the multiplexer
	// (ready hits plus coalesced waits).
	CacheHits uint64 `json:"cacheHits"`
	// CacheMisses counts actual resource builds.
	CacheMisses uint64 `json:"cacheMisses"`
	// CacheBytesSaved is duplicate memory avoided by the multiplexer.
	CacheBytesSaved int64 `json:"cacheBytesSaved"`
	// CacheStaleHits counts creations served a stale instance while a
	// background refresh ran.
	CacheStaleHits uint64 `json:"cacheStaleHits"`
	// CacheNegativeHits counts creations denied by the negative cache
	// during failure backoff.
	CacheNegativeHits uint64 `json:"cacheNegativeHits"`
	// CacheEvictions counts cached instances dropped by the LRU bound or
	// their TTL.
	CacheEvictions uint64 `json:"cacheEvictions"`
	// CacheShards counts lock-striped shards across live container caches.
	CacheShards int `json:"cacheShards"`
	// CacheMaxShardOccupancy is the ready-entry count of the fullest
	// shard in any live cache (skew diagnostic).
	CacheMaxShardOccupancy int `json:"cacheMaxShardOccupancy"`
}

// RoutedInvokeRequest asks the routing tier to invoke a function on
// whichever worker owns it on the consistent-hash ring. It is a superset
// of InvokeRequest, so plain gateway clients can talk to a router
// unchanged.
type RoutedInvokeRequest struct {
	// Fn is the function name (the ring key).
	Fn string `json:"fn"`
	// Payload is passed to the handler verbatim.
	Payload json.RawMessage `json:"payload,omitempty"`
	// TimeoutMillis optionally bounds the whole routed invocation
	// (admission wait + forwards + retries). Zero means no client bound.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
}

// DecodeRoutedInvokeRequest parses and validates a router /invoke request
// body. Malformed input yields an error, never a panic. Canonical bodies
// take the same byte-oriented fast path as DecodeInvokeRequest (the
// Payload aliases body); unusual shapes fall back to encoding/json.
func DecodeRoutedInvokeRequest(body []byte) (RoutedInvokeRequest, error) {
	if w, ok := parseInvokeWire(body); ok {
		if len(w.fn) == 0 {
			return RoutedInvokeRequest{}, fmt.Errorf("httpapi: routed invoke request missing fn")
		}
		if w.timeout < 0 {
			return RoutedInvokeRequest{}, fmt.Errorf("httpapi: routed invoke timeout must be non-negative, got %d", w.timeout)
		}
		req := RoutedInvokeRequest{Fn: string(w.fn), TimeoutMillis: w.timeout}
		if len(w.payload) > 0 {
			req.Payload = json.RawMessage(w.payload)
		}
		return req, nil
	}
	var req RoutedInvokeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return RoutedInvokeRequest{}, fmt.Errorf("httpapi: decode routed invoke request: %w", err)
	}
	if req.Fn == "" {
		return RoutedInvokeRequest{}, fmt.Errorf("httpapi: routed invoke request missing fn")
	}
	if req.TimeoutMillis < 0 {
		return RoutedInvokeRequest{}, fmt.Errorf("httpapi: routed invoke timeout must be non-negative, got %d", req.TimeoutMillis)
	}
	return req, nil
}

// RoutedInvokeResponse reports one invocation completed through the
// router: the worker's InvokeResponse plus routing provenance. Its Worker
// field shadows the embedded one — the router always reports which worker
// it forwarded to, even when the worker omits its own identity.
type RoutedInvokeResponse struct {
	InvokeResponse
	// Worker identifies the worker that served the invocation.
	Worker string `json:"worker"`
	// ForwardAttempts is how many forward attempts the router spent
	// (1 on the happy path; connection errors and failovers add one each).
	ForwardAttempts int `json:"forwardAttempts"`
}

// Health states reported by /healthz.
const (
	// HealthOK means the worker is registered, ready and accepting work.
	HealthOK = "ok"
	// HealthUnready means the worker is up but has not completed function
	// registration yet.
	HealthUnready = "unready"
	// HealthDraining means the worker is shutting down and draining
	// in-flight work.
	HealthDraining = "draining"
)

// HealthResponse is the /healthz body of a worker gateway: a truthful
// readiness signal plus the worker-initiated capacity report the router's
// prober consumes (Hiku-style pull signals instead of blind push).
type HealthResponse struct {
	// Status is one of the Health* states above. Only HealthOK travels
	// with a 200; the other states ride a 503.
	Status string `json:"status"`
	// Worker is the gateway's fleet identity (empty when standalone).
	Worker string `json:"worker,omitempty"`
	// Capacity is the advertised concurrency capacity (0 = unbounded).
	Capacity int `json:"capacity,omitempty"`
	// Inflight counts invocations accepted but not yet completed.
	Inflight int64 `json:"inflight"`
}

// WorkerStatus is one worker's row in the router's /workers table.
type WorkerStatus struct {
	// ID is the worker's fleet identity.
	ID string `json:"id"`
	// URL is the worker's base URL.
	URL string `json:"url"`
	// State is "up", "down", "draining", or "standby".
	State string `json:"state"`
	// Inflight counts forwards currently outstanding against the worker.
	Inflight int64 `json:"inflight"`
	// Capacity is the worker's last advertised concurrency capacity.
	Capacity int `json:"capacity"`
	// Forwarded counts invocations this worker served through the router.
	Forwarded int64 `json:"forwarded"`
	// Failures counts forward attempts and probes that failed against it.
	Failures int64 `json:"failures"`
}

// RouterStatsResponse is the router's counters snapshot.
type RouterStatsResponse struct {
	// Routed counts invocations admitted past admission control.
	Routed int64 `json:"routed"`
	// Completed counts invocations that returned a worker response.
	Completed int64 `json:"completed"`
	// Forwarded counts forward attempts that reached a worker.
	Forwarded int64 `json:"forwarded"`
	// Retries counts extra forward attempts after transient failures.
	Retries int64 `json:"retries"`
	// Failovers counts attempts that moved to a different ring replica.
	Failovers int64 `json:"failovers"`
	// Shed counts invocations rejected by admission control (429).
	Shed int64 `json:"shed"`
	// NoWorkers counts invocations rejected with no healthy worker (503).
	NoWorkers int64 `json:"noWorkers"`
	// Errors counts invocations that exhausted their forward attempts.
	Errors int64 `json:"errors"`
	// Probes counts health probes sent.
	Probes int64 `json:"probes"`
	// ProbeFailures counts health probes that failed.
	ProbeFailures int64 `json:"probeFailures"`
	// MarkDowns counts worker up→down transitions.
	MarkDowns int64 `json:"markDowns"`
	// MarkUps counts worker down→up transitions (recoveries, not boot).
	MarkUps int64 `json:"markUps"`
	// WorkersUp counts workers currently marked up.
	WorkersUp int `json:"workersUp"`
	// ForwardImbalance is max/mean of per-worker forwarded counts
	// (1 = perfectly balanced, 0 = nothing forwarded).
	ForwardImbalance float64 `json:"forwardImbalance"`
	// Scrapes counts member scrape attempts made for the cluster view.
	Scrapes int64 `json:"scrapes"`
	// ScrapeFailures counts member scrapes that failed (the cluster view
	// then served the member's last good snapshot, if any).
	ScrapeFailures int64 `json:"scrapeFailures"`
	// Workers is the per-worker breakdown.
	Workers []WorkerStatus `json:"workers"`
	// Autoscale is the autoscaling control loop's snapshot (omitted
	// when autoscaling is disabled).
	Autoscale *AutoscaleStatus `json:"autoscale,omitempty"`
	// Policy is the scheduling policy's snapshot (omitted by routers
	// predating the policy API).
	Policy *PolicyStats `json:"policy,omitempty"`
}

// PolicyStats is the router scheduling policy's snapshot inside the
// /stats reply. The queue/lease fields are only live under the pull
// policy; hash reports the name with zero counters.
type PolicyStats struct {
	// Policy names the active policy ("hash" or "pull").
	Policy string `json:"policy"`
	// Queued counts invocations waiting in per-function pull queues.
	Queued int `json:"queued"`
	// Leases counts invocations currently leased to workers.
	Leases int `json:"leases"`
	// Granted counts leases handed out (including re-grants).
	Granted uint64 `json:"granted"`
	// Requeues counts failed or expired leases returned to their queue.
	Requeues uint64 `json:"requeues"`
	// Expired counts leases reclaimed by the lease-budget sweep.
	Expired uint64 `json:"expired"`
	// Shed counts arrivals refused at the queue-depth bound.
	Shed uint64 `json:"shed"`
}

// AutoscaleStatus is the autoscaling control plane's snapshot inside
// the router's /stats reply.
type AutoscaleStatus struct {
	// Target is the control loop's current desired ready-worker count.
	Target int `json:"target"`
	// Ready / Warming / Draining / Standby count workers per lifecycle
	// state as the controller sees them.
	Ready    int `json:"ready"`
	Warming  int `json:"warming"`
	Draining int `json:"draining"`
	Standby  int `json:"standby"`
	// Forecast is the short-horizon aggregate demand estimate
	// (invocations/second).
	Forecast float64 `json:"forecast"`
	// Floor is the pre-warm floor in workers.
	Floor int `json:"floor"`
	// ScaleUps / ScaleDowns / Wakes count scaling decisions.
	ScaleUps   int64 `json:"scaleUps"`
	ScaleDowns int64 `json:"scaleDowns"`
	Wakes      int64 `json:"wakes"`
	// Drained counts completed graceful drains; DrainSeconds sums their
	// durations.
	Drained      int64   `json:"drained"`
	DrainSeconds float64 `json:"drainSeconds"`
}

// MemberStats is one worker's stats snapshot inside the router's
// federated /cluster/stats reply.
type MemberStats struct {
	// Worker is the member's fleet identity.
	Worker string `json:"worker"`
	// Fresh reports whether the snapshot came from this scrape round;
	// false means the member failed to answer and its last good snapshot
	// is being served.
	Fresh bool `json:"fresh"`
	// Stats is the member's gateway counters snapshot.
	Stats StatsResponse `json:"stats"`
}

// ClusterStatsResponse is the router's /cluster/stats reply: the
// router's own counters plus a fleet-wide roll-up of every member
// gateway's counters.
type ClusterStatsResponse struct {
	// Router is the routing tier's own counters snapshot.
	Router RouterStatsResponse `json:"router"`
	// Cluster is the field-wise sum of every member's StatsResponse.
	Cluster StatsResponse `json:"cluster"`
	// Members lists each member's individual snapshot.
	Members []MemberStats `json:"members"`
}
