package node

import (
	"testing"
	"testing/quick"
	"time"

	"faasbatch/internal/cpusched"
	"faasbatch/internal/sim"
)

// testConfig returns a small deterministic node config for tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.ColdStartLatency = 400 * time.Millisecond
	cfg.CreateCPUWork = 100 * time.Millisecond
	cfg.ContainerInitCPUWork = 0
	cfg.CreateConcurrency = 2
	cfg.KeepAlive = 10 * time.Second
	cfg.ContainerMem = 40 << 20
	cfg.BaseMemBytes = 0
	return cfg
}

func newTestNode(t *testing.T, eng *sim.Engine, cfg Config) *Node {
	t.Helper()
	n, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New(1)
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.CreateConcurrency = 0 },
		func(c *Config) { c.ColdStartLatency = -1 },
		func(c *Config) { c.CreateCPUWork = -1 },
		func(c *Config) { c.KeepAlive = 0 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := New(eng, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Nil discipline defaults to FairShare.
	cfg := testConfig()
	cfg.Discipline = nil
	n := newTestNode(t, eng, cfg)
	if n.Config().Discipline.Name() != "fair-share" {
		t.Errorf("default discipline = %q", n.Config().Discipline.Name())
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Starting: "starting", Idle: "idle", Busy: "busy", Evicted: "evicted"}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(s), got, w)
		}
	}
	if State(9).String() != "state(9)" {
		t.Error("unknown state string wrong")
	}
}

func TestColdAcquire(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var res AcquireResult
	gotIt := false
	n.Acquire("fib30", AcquireOptions{}, func(r AcquireResult) {
		res = r
		gotIt = true
	})
	eng.Run()
	if !gotIt {
		t.Fatal("Acquire callback never fired")
	}
	if !res.Cold {
		t.Fatal("first acquire should be cold")
	}
	// Boot = 100ms CPU work (alone on 4 cores -> full speed) + 400ms
	// latency = 500ms.
	if res.BootTime < 499*time.Millisecond || res.BootTime > 501*time.Millisecond {
		t.Fatalf("BootTime = %v, want ~500ms", res.BootTime)
	}
	if res.QueueWait != 0 {
		t.Fatalf("QueueWait = %v, want 0 (free engine slot)", res.QueueWait)
	}
	c := res.Container
	if c.State() != Busy || c.Active() != 1 {
		t.Fatalf("container state = %v active = %d, want busy/1", c.State(), c.Active())
	}
	if c.Fn() != "fib30" {
		t.Fatalf("Fn = %q", c.Fn())
	}
	if n.TotalCreated() != 1 || n.LiveContainers() != 1 || n.ColdStarts() != 1 {
		t.Fatalf("counters: created=%d live=%d cold=%d", n.TotalCreated(), n.LiveContainers(), n.ColdStarts())
	}
	if n.MemUsed() != 40<<20 {
		t.Fatalf("MemUsed = %d, want container base", n.MemUsed())
	}
}

func TestWarmAcquireReusesContainer(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var first *Container
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {
		first = r.Container
		r.Container.ReturnThread()
	})
	eng.RunUntil(sim.Time(2 * time.Second)) // boot done, keep-alive not expired
	if n.WarmCount("f") != 1 {
		t.Fatalf("WarmCount = %d, want 1", n.WarmCount("f"))
	}
	var second AcquireResult
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) { second = r })
	if second.Container == nil {
		t.Fatal("warm acquire should complete synchronously")
	}
	if second.Cold || second.BootTime != 0 || second.QueueWait != 0 {
		t.Fatalf("warm acquire = %+v, want warm/zero latencies", second)
	}
	if second.Container != first {
		t.Fatal("warm acquire returned a different container")
	}
	if n.TotalCreated() != 1 || n.WarmStarts() != 1 {
		t.Fatalf("created=%d warm=%d", n.TotalCreated(), n.WarmStarts())
	}
}

func TestWarmPoolIsPerFunction(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	n.Acquire("fA", AcquireOptions{}, func(r AcquireResult) { r.Container.ReturnThread() })
	eng.Run()
	var res AcquireResult
	n.Acquire("fB", AcquireOptions{}, func(r AcquireResult) { res = r })
	eng.Run()
	if !res.Cold {
		t.Fatal("different function must not reuse another function's container")
	}
	if n.TotalCreated() != 2 {
		t.Fatalf("TotalCreated = %d, want 2", n.TotalCreated())
	}
}

func TestCreationPipelineQueues(t *testing.T) {
	// CreateConcurrency=2: five concurrent acquires must serialise in
	// waves on the engine's CPU-work stage. The CPU work (100ms each, two
	// at a time on 4 cores, full speed) gates the pipeline; the 400ms boot
	// latency overlaps.
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var waits []time.Duration
	for i := 0; i < 5; i++ {
		n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {
			waits = append(waits, r.QueueWait)
		})
	}
	if n.PendingCreations() != 5 {
		t.Fatalf("PendingCreations = %d, want 5", n.PendingCreations())
	}
	eng.Run()
	if len(waits) != 5 {
		t.Fatalf("completed %d acquires, want 5", len(waits))
	}
	if n.PendingCreations() != 0 {
		t.Fatalf("PendingCreations after run = %d", n.PendingCreations())
	}
	// First two: no wait. Next two: ~100ms. Last: ~200ms.
	approx := func(got, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 5*time.Millisecond
	}
	if !approx(waits[0], 0) || !approx(waits[1], 0) {
		t.Errorf("first wave waits = %v %v, want ~0", waits[0], waits[1])
	}
	if !approx(waits[2], 100*time.Millisecond) || !approx(waits[3], 100*time.Millisecond) {
		t.Errorf("second wave waits = %v %v, want ~100ms", waits[2], waits[3])
	}
	if !approx(waits[4], 200*time.Millisecond) {
		t.Errorf("third wave wait = %v, want ~200ms", waits[4])
	}
}

func TestCreationBurnsNodeCPU(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	n.Acquire("f", AcquireOptions{}, func(AcquireResult) {})
	eng.Run()
	// The engine's creation work must appear in the CPU busy integral.
	if got := n.Pool().BusyCoreSeconds(); got < 0.099 || got > 0.101 {
		t.Fatalf("BusyCoreSeconds = %v, want ~0.1 (creation work)", got)
	}
}

func TestKeepAliveEviction(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var c *Container
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {
		c = r.Container
		r.Container.ReturnThread()
	})
	eng.Run()
	if c.State() != Evicted {
		t.Fatalf("state after keep-alive = %v, want evicted", c.State())
	}
	if n.LiveContainers() != 0 || n.WarmCount("f") != 0 {
		t.Fatalf("live=%d warm=%d after eviction", n.LiveContainers(), n.WarmCount("f"))
	}
	if n.MemUsed() != 0 {
		t.Fatalf("MemUsed = %d after eviction, want 0", n.MemUsed())
	}
	if n.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", n.Evictions())
	}
}

func TestReacquireCancelsEviction(t *testing.T) {
	cfg := testConfig()
	eng := sim.New(1)
	n := newTestNode(t, eng, cfg)
	var c *Container
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {
		c = r.Container
		r.Container.ReturnThread()
	})
	// Boot finishes at 500ms; keep-alive timer armed for 10.5s. Reacquire
	// at 5s and hold past the original timer.
	eng.Schedule(5*time.Second, func() {
		n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {})
	})
	eng.RunUntil(sim.Time(12 * time.Second))
	if c.State() != Busy {
		t.Fatalf("state = %v, want busy (eviction must be cancelled)", c.State())
	}
	if n.Evictions() != 0 {
		t.Fatalf("Evictions = %d, want 0", n.Evictions())
	}
}

func TestMultiplexOptionEquipsCache(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var withCache, without *Container
	n.Acquire("a", AcquireOptions{Multiplex: true}, func(r AcquireResult) { withCache = r.Container })
	n.Acquire("b", AcquireOptions{}, func(r AcquireResult) { without = r.Container })
	eng.Run()
	if withCache.Cache() == nil {
		t.Error("multiplexed container has no cache")
	}
	if without.Cache() != nil {
		t.Error("baseline container unexpectedly has a cache")
	}
}

func TestCPULimitApplied(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var c *Container
	n.Acquire("f", AcquireOptions{CPULimit: 2}, func(r AcquireResult) { c = r.Container })
	eng.Run()
	if got := c.Group().Cap(); got != 2 {
		t.Fatalf("group cap = %v, want 2", got)
	}
	c.SetCPULimit(1)
	if got := c.Group().Cap(); got != 1 {
		t.Fatalf("group cap after SetCPULimit = %v, want 1", got)
	}
	if got := c.GILGroup().Cap(); got != 1 {
		t.Fatalf("gil group cap = %v, want 1", got)
	}
}

func TestClientMemAccounting(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var c *Container
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) { c = r.Container })
	eng.Run()
	base := n.MemUsed()
	if ord := c.AllocClientMem(9 << 20); ord != 1 {
		t.Fatalf("first client ordinal = %d, want 1", ord)
	}
	if ord := c.AllocClientMem(6 << 20); ord != 2 {
		t.Fatalf("second client ordinal = %d, want 2", ord)
	}
	if got := n.MemUsed() - base; got != 15<<20 {
		t.Fatalf("client mem delta = %d, want 15 MiB", got)
	}
	if c.ClientLive() != 2 {
		t.Fatalf("ClientLive = %d, want 2", c.ClientLive())
	}
	if n.ClientBytesAllocated() != 15<<20 {
		t.Fatalf("ClientBytesAllocated = %d", n.ClientBytesAllocated())
	}
	c.FreeClientMem(6 << 20)
	if got := n.MemUsed() - base; got != 9<<20 {
		t.Fatalf("after free delta = %d, want 9 MiB", got)
	}
	// Teardown releases the rest.
	c.ReturnThread()
	eng.Run()
	if n.MemUsed() != 0 {
		t.Fatalf("MemUsed after teardown = %d, want 0", n.MemUsed())
	}
}

func TestFreeClientMemClampsToLive(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var c *Container
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) { c = r.Container })
	eng.Run()
	c.AllocClientMem(1 << 20)
	c.FreeClientMem(100 << 20) // over-free must clamp
	if n.MemUsed() != n.cfg.ContainerMem {
		t.Fatalf("MemUsed = %d, want container base only", n.MemUsed())
	}
}

func TestEvictIdle(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	for i := 0; i < 3; i++ {
		n.Acquire("f", AcquireOptions{}, func(r AcquireResult) { r.Container.ReturnThread() })
	}
	eng.RunUntil(sim.Time(2 * time.Second)) // boots done, keep-alive not yet
	// Three creations for the same fn because none was warm at submit.
	if got := n.EvictIdle(); got != 3 {
		t.Fatalf("EvictIdle = %d, want 3", got)
	}
	if n.MemUsed() != 0 || n.LiveContainers() != 0 {
		t.Fatalf("after EvictIdle: mem=%d live=%d", n.MemUsed(), n.LiveContainers())
	}
}

func TestReturnThreadOnIdleContainerIsNoop(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var c *Container
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {
		c = r.Container
		r.Container.ReturnThread()
	})
	eng.RunUntil(sim.Time(time.Second))
	c.ReturnThread() // extra return must not corrupt state
	if c.Active() != 0 || c.State() != Idle {
		t.Fatalf("state = %v active = %d", c.State(), c.Active())
	}
}

func TestMemPeakTracksHighWater(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	done := 0
	for i := 0; i < 4; i++ {
		n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {
			done++
			r.Container.ReturnThread()
		})
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("completed %d, want 4", done)
	}
	if n.MemPeak() != 4*(40<<20) {
		t.Fatalf("MemPeak = %d, want 4 containers", n.MemPeak())
	}
	if n.MemUsed() != 0 {
		t.Fatalf("MemUsed = %d after evictions", n.MemUsed())
	}
}

func TestMLFQDisciplineAccepted(t *testing.T) {
	eng := sim.New(1)
	cfg := testConfig()
	cfg.Discipline = cpusched.NewMLFQ()
	n := newTestNode(t, eng, cfg)
	fired := false
	n.Acquire("f", AcquireOptions{}, func(AcquireResult) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("acquire under MLFQ never completed")
	}
}

// Property: for any sequence of acquire/release cycles, the ledger returns
// to zero once everything is evicted, and every callback fires exactly
// once.
func TestPropertyLedgerBalance(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		eng := sim.New(seed)
		cfg := testConfig()
		cfg.KeepAlive = 5 * time.Second
		n, err := New(eng, cfg)
		if err != nil {
			return false
		}
		fired := 0
		for i, op := range opsRaw {
			fn := string(rune('a' + op%3))
			at := time.Duration(i*37) * time.Millisecond
			eng.Schedule(at, func() {
				n.Acquire(fn, AcquireOptions{Multiplex: op%2 == 0}, func(r AcquireResult) {
					fired++
					if op%4 == 0 {
						r.Container.AllocClientMem(int64(op) << 16)
					}
					r.Container.ReturnThread()
				})
			})
		}
		eng.Run()
		return fired == len(opsRaw) && n.MemUsed() == 0 && n.LiveContainers() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTerminateBypassesWarmPool(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var c *Container
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) { c = r.Container })
	eng.Run()
	c.Terminate()
	if c.State() != Evicted {
		t.Fatalf("state = %v, want evicted", c.State())
	}
	if n.LiveContainers() != 0 || n.WarmCount("f") != 0 {
		t.Fatalf("live=%d warm=%d after terminate", n.LiveContainers(), n.WarmCount("f"))
	}
	if n.MemUsed() != 0 {
		t.Fatalf("MemUsed = %d after terminate", n.MemUsed())
	}
	// Idempotent.
	c.Terminate()
	if n.LiveContainers() != 0 {
		t.Fatal("double terminate corrupted live count")
	}
}

func TestTerminateFreesClientMemory(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	var c *Container
	n.Acquire("f", AcquireOptions{Multiplex: true}, func(r AcquireResult) { c = r.Container })
	eng.Run()
	c.AllocClientMem(9 << 20)
	c.Terminate()
	if n.MemUsed() != 0 {
		t.Fatalf("MemUsed = %d after terminate with client memory", n.MemUsed())
	}
}

func TestBusyCoreSecondsIncludesIdleCharge(t *testing.T) {
	eng := sim.New(1)
	cfg := testConfig()
	cfg.ContainerIdleCPU = 0.5
	n := newTestNode(t, eng, cfg)
	n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {})
	eng.RunUntil(sim.Time(10 * time.Second))
	// Boot finished at ~0.5s; the container lived since its creation at
	// t=0 (live includes the boot), so by t=10s the idle charge is about
	// 10s * 0.5 cores = 5 core-seconds plus the 0.1 core-seconds of
	// creation work.
	got := n.BusyCoreSeconds()
	if got < 4.9 || got > 5.3 {
		t.Fatalf("BusyCoreSeconds = %v, want ~5.1", got)
	}
}

func TestBaseMemIncludedInUsage(t *testing.T) {
	eng := sim.New(1)
	cfg := testConfig()
	cfg.BaseMemBytes = 100 << 20
	n := newTestNode(t, eng, cfg)
	if n.MemUsed() != 100<<20 {
		t.Fatalf("MemUsed = %d, want platform base", n.MemUsed())
	}
	if n.MemPeak() != 100<<20 {
		t.Fatalf("MemPeak = %d, want platform base", n.MemPeak())
	}
}

func TestEnforceMemLimitGatesCreation(t *testing.T) {
	eng := sim.New(1)
	cfg := testConfig()
	cfg.EnforceMemLimit = true
	cfg.MemBytes = 100 << 20 // room for two 40 MB containers
	cfg.KeepAlive = 2 * time.Second
	n := newTestNode(t, eng, cfg)
	acquired := 0
	for i := 0; i < 3; i++ {
		n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {
			acquired++
			r.Container.ReturnThread()
		})
	}
	// Boots take 500ms; by 1s only two containers fit in memory.
	eng.RunUntil(sim.Time(time.Second))
	if acquired != 2 {
		t.Fatalf("acquired = %d before evictions, want 2 (admission control)", acquired)
	}
	if n.MemUsed() > cfg.MemBytes {
		t.Fatalf("MemUsed %d exceeded the limit %d", n.MemUsed(), cfg.MemBytes)
	}
	// Keep-alive evictions free memory and unblock the third creation.
	eng.Run()
	if acquired != 3 {
		t.Fatalf("acquired = %d after evictions, want 3", acquired)
	}
}

func TestEnforceMemLimitOffAllowsOvershoot(t *testing.T) {
	eng := sim.New(1)
	cfg := testConfig()
	cfg.MemBytes = 50 << 20
	n := newTestNode(t, eng, cfg)
	done := 0
	for i := 0; i < 3; i++ {
		n.Acquire("f", AcquireOptions{}, func(AcquireResult) { done++ })
	}
	eng.Run()
	if done != 3 {
		t.Fatalf("done = %d, want 3 (no enforcement by default)", done)
	}
	if n.MemUsed() <= cfg.MemBytes {
		t.Fatalf("expected overshoot without enforcement: used %d", n.MemUsed())
	}
}

func TestBootFailureRateValidation(t *testing.T) {
	eng := sim.New(1)
	cfg := testConfig()
	cfg.BootFailureRate = -0.1
	if _, err := New(eng, cfg); err == nil {
		t.Error("negative failure rate accepted")
	}
	cfg.BootFailureRate = 1.0
	if _, err := New(eng, cfg); err == nil {
		t.Error("failure rate 1.0 accepted (would never boot)")
	}
}

func TestBootFailuresRetryUntilSuccess(t *testing.T) {
	eng := sim.New(7)
	cfg := testConfig()
	cfg.BootFailureRate = 0.5
	n := newTestNode(t, eng, cfg)
	const acquires = 20
	done := 0
	var maxBoot time.Duration
	for i := 0; i < acquires; i++ {
		n.Acquire("f", AcquireOptions{}, func(r AcquireResult) {
			done++
			if !r.Cold {
				return
			}
			total := r.QueueWait + r.BootTime
			if total > maxBoot {
				maxBoot = total
			}
			r.Container.ReturnThread()
		})
	}
	eng.RunUntil(sim.Time(5 * time.Minute))
	if done != acquires {
		t.Fatalf("completed %d/%d acquires despite retries", done, acquires)
	}
	if n.BootFailures() == 0 {
		t.Fatal("no boot failures at rate 0.5")
	}
	// Failed boots tear down cleanly: the ledger balances after eviction.
	eng.Run()
	if n.MemUsed() != 0 {
		t.Fatalf("MemUsed = %d after failures and evictions, want 0", n.MemUsed())
	}
	// Retried acquisitions report longer waits than a clean boot.
	if maxBoot <= 500*time.Millisecond {
		t.Fatalf("max boot wait %v, want > one clean boot (retries add delay)", maxBoot)
	}
}

func TestZeroFailureRateNeverFails(t *testing.T) {
	eng := sim.New(1)
	n := newTestNode(t, eng, testConfig())
	for i := 0; i < 10; i++ {
		n.Acquire("f", AcquireOptions{}, func(r AcquireResult) { r.Container.ReturnThread() })
	}
	eng.Run()
	if n.BootFailures() != 0 {
		t.Fatalf("BootFailures = %d at rate 0", n.BootFailures())
	}
}
