package node

import (
	"fmt"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/cpusched"
	"faasbatch/internal/multiplex"
	"faasbatch/internal/sim"
)

// AcquireOptions configures container acquisition.
type AcquireOptions struct {
	// CPULimit is the cpuset cap for a newly created container
	// (<= 0 means unlimited). Ignored on a warm hit, matching docker's
	// behaviour of fixing limits at creation.
	CPULimit float64
	// Multiplex equips a newly created container with a Resource
	// Multiplexer cache.
	Multiplex bool
	// Multiplexer tunes the container's cache (shards, capacity, TTL,
	// refresh window, negative backoff). The zero value takes the cache
	// defaults. The node always overrides the clock with the engine's
	// virtual time and layers instance-memory release on OnEvict, so
	// evicted and refreshed instances return their bytes to the ledger.
	Multiplexer multiplex.Config
}

// AcquireResult reports how a container was obtained.
type AcquireResult struct {
	// Container is the acquired container, already checked out as busy
	// for the caller's bookkeeping to fill.
	Container *Container
	// Cold reports whether a new container had to be created.
	Cold bool
	// QueueWait is the time spent waiting for a container-engine slot
	// (part of scheduling latency).
	QueueWait time.Duration
	// BootTime is the container boot duration (the cold-start latency;
	// zero on a warm start).
	BootTime time.Duration
}

// createReq is a queued container creation.
type createReq struct {
	fn       string
	opts     AcquireOptions
	cb       func(AcquireResult)
	enqueued sim.Time
}

// Node is the worker VM.
type Node struct {
	eng  *sim.Engine
	cfg  Config
	pool *cpusched.Pool
	// sysGroup hosts container-engine CPU work (creation): it contends
	// with function execution, uncapped like the dockerd process.
	sysGroup *cpusched.Group

	memUsed int64
	memPeak int64

	warm map[string][]*Container
	live int

	createQueue    []*createReq
	createInflight int

	seq                  int
	totalCreated         int
	coldStarts           int
	warmStarts           int
	evictions            int
	bootFailures         int
	crashes              int
	slowBoots            int
	clientBytesAllocated int64

	// liveIntegral accumulates container-seconds of live containers, used
	// to charge per-container background CPU.
	liveIntegral   float64
	lastLiveChange sim.Time
}

// New creates a worker node. The zero-value fields of cfg are not
// defaulted; use DefaultConfig as the base.
func New(eng *sim.Engine, cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pool, err := cpusched.NewPool(eng, cfg.Cores, cfg.Discipline)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	n := &Node{
		eng:  eng,
		cfg:  cfg,
		pool: pool,
		warm: make(map[string][]*Container),
	}
	n.sysGroup = pool.NewGroup("engine", 0)
	return n, nil
}

// Config reports the node configuration.
func (n *Node) Config() Config { return n.cfg }

// Pool exposes the CPU pool (for the resource sampler's busy integral).
func (n *Node) Pool() *cpusched.Pool { return n.pool }

// MemUsed reports current memory usage, including the constant platform
// base.
func (n *Node) MemUsed() int64 { return n.cfg.BaseMemBytes + n.memUsed }

// MemPeak reports the peak memory usage observed, including the constant
// platform base.
func (n *Node) MemPeak() int64 { return n.cfg.BaseMemBytes + n.memPeak }

// LiveContainers reports containers that are starting, idle or busy.
func (n *Node) LiveContainers() int { return n.live }

// TotalCreated reports the number of containers provisioned so far — the
// paper's "number of provisioned containers" metric.
func (n *Node) TotalCreated() int { return n.totalCreated }

// ColdStarts reports acquisition requests served by creating a container.
func (n *Node) ColdStarts() int { return n.coldStarts }

// WarmStarts reports acquisition requests served from the warm pool.
func (n *Node) WarmStarts() int { return n.warmStarts }

// Evictions reports keep-alive evictions performed.
func (n *Node) Evictions() int { return n.evictions }

// BootFailures reports container boots that failed and were retried.
func (n *Node) BootFailures() int { return n.bootFailures }

// Crashes reports containers killed by fault injection.
func (n *Node) Crashes() int { return n.crashes }

// SlowBoots reports boots whose latency was inflated by fault injection.
func (n *Node) SlowBoots() int { return n.slowBoots }

// ClientBytesAllocated reports cumulative client-instance memory charged
// (the Fig. 14d numerator).
func (n *Node) ClientBytesAllocated() int64 { return n.clientBytesAllocated }

// PendingCreations reports queued plus in-flight container creations.
func (n *Node) PendingCreations() int { return len(n.createQueue) + n.createInflight }

// advanceLiveIntegral folds the elapsed live-container time into the
// integral before the live count changes.
func (n *Node) advanceLiveIntegral() {
	now := n.eng.Now()
	n.liveIntegral += float64(n.live) * now.Sub(n.lastLiveChange).Seconds()
	n.lastLiveChange = now
}

// LiveContainerSeconds reports the integral of live containers over time
// (container-seconds). Multiplied by Config.ContainerIdleCPU it yields the
// background CPU charge of running containers.
func (n *Node) LiveContainerSeconds() float64 {
	n.advanceLiveIntegral()
	return n.liveIntegral
}

// BusyCoreSeconds reports total CPU consumption including the background
// charge of live containers — the quantity the once-per-second resource
// sampler records.
func (n *Node) BusyCoreSeconds() float64 {
	return n.pool.BusyCoreSeconds() + n.LiveContainerSeconds()*n.cfg.ContainerIdleCPU
}

func (n *Node) allocMem(bytes int64) {
	n.memUsed += bytes
	if n.memUsed > n.memPeak {
		n.memPeak = n.memUsed
	}
}

func (n *Node) freeMem(bytes int64) {
	n.memUsed -= bytes
	if n.memUsed < 0 {
		n.memUsed = 0
	}
}

// Acquire obtains a container for fn: a warm keep-alive container when one
// is idle, otherwise a fresh container through the engine's creation
// pipeline. cb runs (in virtual time) once the container is ready; the
// container is handed over in the Busy state with one thread checked out.
func (n *Node) Acquire(fn string, opts AcquireOptions, cb func(AcquireResult)) {
	if list := n.warm[fn]; len(list) > 0 {
		c := list[len(list)-1]
		n.warm[fn] = list[:len(list)-1]
		c.idleEpoch++ // invalidate the pending keep-alive timer
		c.CheckoutThread()
		n.warmStarts++
		cb(AcquireResult{Container: c})
		return
	}
	n.coldStarts++
	n.createQueue = append(n.createQueue, &createReq{
		fn:       fn,
		opts:     opts,
		cb:       cb,
		enqueued: n.eng.Now(),
	})
	n.pumpCreations()
}

// pumpCreations starts queued creations while engine slots are free and,
// under EnforceMemLimit, while the node has memory headroom for the new
// container's base footprint.
func (n *Node) pumpCreations() {
	for n.createInflight < n.cfg.CreateConcurrency && len(n.createQueue) > 0 {
		if n.cfg.EnforceMemLimit && n.MemUsed()+n.cfg.ContainerMem > n.cfg.MemBytes {
			return // head-of-line blocks until an eviction frees memory
		}
		req := n.createQueue[0]
		n.createQueue = n.createQueue[1:]
		n.createInflight++
		n.startCreation(req)
	}
}

// startCreation runs one container creation: CPU work on the engine group
// followed by the fixed boot latency.
func (n *Node) startCreation(req *createReq) {
	queueWait := n.eng.Now().Sub(req.enqueued)
	bootStart := n.eng.Now()
	n.seq++
	c := &Container{
		node:  n,
		id:    fmt.Sprintf("c%04d-%s", n.seq, req.fn),
		fn:    req.fn,
		state: Starting,
	}
	n.advanceLiveIntegral()
	n.live++
	n.totalCreated++
	n.allocMem(n.cfg.ContainerMem)

	ready := func() {
		failed := n.cfg.BootFailureRate > 0 && n.eng.Rand().Float64() < n.cfg.BootFailureRate
		if !failed && n.cfg.Chaos.Should(chaos.BootFailure) {
			failed = true
		}
		if failed {
			// The boot failed after its init phase: tear the carcass
			// down and retry the creation. The caller's wait so far is
			// preserved in the request's enqueue time, so the eventual
			// success reports the full queue delay.
			n.bootFailures++
			n.teardown(c)
			n.createQueue = append(n.createQueue, req)
			n.pumpCreations()
			return
		}
		if req.opts.Multiplex {
			c.cache = multiplex.NewWithConfig(n.containerCacheConfig(c, req.opts.Multiplexer))
		} else {
			c.cacheDisabled = true
		}
		c.CheckoutThread()
		req.cb(AcquireResult{
			Container: c,
			Cold:      true,
			QueueWait: queueWait,
			BootTime:  n.eng.Now().Sub(bootStart),
		})
	}

	n.sysGroup.Submit(n.cfg.CreateCPUWork, func() {
		// The engine slot frees once the CPU-bound part completes; the
		// remaining boot latency (image setup) overlaps with other
		// creations.
		n.createInflight--
		n.pumpCreations()
		bootLatency := n.cfg.ColdStartLatency
		if n.cfg.Chaos.Should(chaos.SlowColdStart) {
			bootLatency = time.Duration(float64(bootLatency) * n.cfg.Chaos.ColdStartFactor())
			n.slowBoots++
		}
		n.eng.Schedule(bootLatency, func() {
			c.group = n.pool.NewGroup(c.id, req.opts.CPULimit)
			c.gilGroup = n.pool.NewGroup(c.id+"/gil", 1)
			// Runtime init (interpreter, server, SDK imports) burns CPU
			// inside the container's own group, contending node-wide.
			if n.cfg.ContainerInitCPUWork > 0 {
				c.group.Submit(n.cfg.ContainerInitCPUWork, ready)
				return
			}
			ready()
		})
	})
}

// containerCacheConfig adapts an acquisition's multiplexer config to the
// simulation: TTL and backoff arithmetic run on the engine's virtual
// clock, and every instance leaving the cache (LRU eviction, TTL expiry,
// refresh replacement, invalidation, close) releases its charged client
// memory — the eviction half of the cache's cost model. A user OnEvict
// runs first.
func (n *Node) containerCacheConfig(c *Container, mcfg multiplex.Config) multiplex.Config {
	user := mcfg.OnEvict
	mcfg.Now = func() time.Duration { return time.Duration(n.eng.Now()) }
	mcfg.OnEvict = func(k multiplex.Key, inst any, bytes int64) {
		if user != nil {
			user(k, inst, bytes)
		}
		c.FreeClientMem(bytes)
	}
	return mcfg
}

// parkIdle returns a drained container to the warm pool and arms its
// keep-alive eviction timer.
func (n *Node) parkIdle(c *Container) {
	c.state = Idle
	c.idleSince = n.eng.Now()
	c.idleEpoch++
	epoch := c.idleEpoch
	n.warm[c.fn] = append(n.warm[c.fn], c)
	n.eng.Schedule(n.cfg.KeepAlive, func() {
		if c.state == Idle && c.idleEpoch == epoch {
			n.evict(c)
		}
	})
}

// evict tears a container down, freeing its memory.
func (n *Node) evict(c *Container) {
	list := n.warm[c.fn]
	for i, other := range list {
		if other == c {
			n.warm[c.fn] = append(list[:i], list[i+1:]...)
			break
		}
	}
	n.teardown(c)
	n.evictions++
}

// teardown releases a container's resources. Freed memory may unblock
// admission-controlled creations.
func (n *Node) teardown(c *Container) {
	if c.state == Evicted {
		return
	}
	defer n.pumpCreations()
	c.state = Evicted
	// All client memory — transient duplicates and multiplexer-cached
	// instances alike — is charged through AllocClientMem and therefore
	// lives in clientBytes, freed wholesale here. The cache is closed for
	// its stats and lifecycle hooks; its per-instance FreeClientMem calls
	// clamp to the already-zeroed balance.
	freed := n.cfg.ContainerMem + c.clientBytes
	c.clientBytes = 0
	c.clientLive = 0
	if c.cache != nil {
		c.cache.Close()
	}
	n.freeMem(freed)
	n.advanceLiveIntegral()
	n.live--
	// Groups exist only after boot completed. A container with accepted
	// invocations still inside (crash mid-batch) keeps its groups until
	// that work drains — ReturnThread closes them on the last return;
	// closing now would detach the pool from CPU work those invocations
	// submit later (IO-phase invocations submit their compute on return),
	// silently losing them.
	if c.active == 0 {
		c.closeGroups()
	}
}

// EvictIdle immediately evicts every idle container (end-of-experiment
// cleanup so memory-ledger invariants can be asserted).
func (n *Node) EvictIdle() int {
	evicted := 0
	for fn, list := range n.warm {
		for _, c := range list {
			n.teardown(c)
			evicted++
			n.evictions++
		}
		delete(n.warm, fn)
	}
	return evicted
}

// WarmCount reports the idle containers available for fn.
func (n *Node) WarmCount(fn string) int { return len(n.warm[fn]) }
