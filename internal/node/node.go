// Package node models the worker VM of the evaluation (§IV): a multi-core
// machine running a container engine. It provides:
//
//   - a container lifecycle (starting → idle → busy → evicted) with a
//     keep-alive warm pool, so schedulers get warm starts exactly when a
//     keep-alive container for the function exists;
//   - a "docker daemon" creation pipeline with bounded concurrency whose
//     per-container creation work burns node CPU — under invocation bursts
//     this queue is what inflates Vanilla's and SFS's scheduling latency;
//   - a memory ledger tracking container base memory and client-instance
//     memory, sampled once per virtual second by the experiment harness.
//
// The paper runs real Docker; every behavioural knob the evaluation
// depends on (cold-start latency, creation CPU cost, daemon parallelism,
// per-container memory, keep-alive) is an explicit Config field here,
// calibrated in internal/experiment.
package node

import (
	"fmt"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/cpusched"
	"faasbatch/internal/multiplex"
	"faasbatch/internal/sim"
)

// Config parameterises a worker node.
type Config struct {
	// Cores is the number of CPU cores (the paper's worker VM has 32).
	Cores float64
	// MemBytes is the node memory capacity (64 GB in the paper). The
	// ledger tracks usage against it; with EnforceMemLimit set, container
	// creation additionally waits for headroom.
	MemBytes int64
	// EnforceMemLimit gates container creation on memory headroom: a
	// creation whose base footprint would exceed MemBytes waits in the
	// engine queue until evictions free space (admission control). Off by
	// default — the paper's 64 GB worker VM hits CPU collapse first.
	EnforceMemLimit bool
	// Discipline is the CPU scheduling model (FairShare unless the SFS
	// policy installs MLFQ).
	Discipline cpusched.Discipline
	// ColdStartLatency is the non-CPU part of booting a container
	// (image setup, runtime init).
	ColdStartLatency time.Duration
	// CreateCPUWork is the CPU work the container engine burns to create
	// one container. It executes on the node's cores and therefore
	// contends with function execution.
	CreateCPUWork time.Duration
	// ContainerInitCPUWork is the CPU work the container itself burns
	// while booting (interpreter start, web-server init, SDK imports).
	// It runs in the container's own CPU group, so a wave of cold starts
	// saturates the node and stretches everyone's latency — the paper's
	// "busy CPUs running in worker nodes amplify instruction execution
	// times" effect (§V-A1).
	ContainerInitCPUWork time.Duration
	// CreateConcurrency bounds how many container creations the engine
	// processes in parallel.
	CreateConcurrency int
	// KeepAlive is how long an idle container is retained before
	// eviction.
	KeepAlive time.Duration
	// ContainerMem is the base memory footprint of one container.
	ContainerMem int64
	// BaseMemBytes is the constant platform memory (OS, container
	// engine, gateway) included in reported memory usage, mirroring the
	// paper's whole-system memory measurements.
	BaseMemBytes int64
	// ContainerIdleCPU is the background CPU (cores) one live container
	// consumes for its runtime/server processes, independent of function
	// work. It models the paper's observation that running containers
	// themselves contribute to CPU utilisation (§V-B3).
	ContainerIdleCPU float64
	// BootFailureRate is the probability (0..1) that a container boot
	// fails after its init phase (image pull errors, OOM-killed runtimes).
	// Failed boots tear the container down and re-enqueue the creation;
	// the acquisition eventually succeeds and the extra wait lands in the
	// caller's cold-start latency. Zero by default.
	BootFailureRate float64
	// Chaos optionally injects seeded faults into the node: BootFailure
	// fails boots (on top of BootFailureRate), SlowColdStart inflates a
	// boot's latency by the injector's cold-start factor. Nil disables
	// injection entirely.
	Chaos *chaos.Injector
}

// DefaultConfig returns the paper's worker-VM calibration.
func DefaultConfig() Config {
	return Config{
		Cores:                32,
		MemBytes:             64 << 30,
		Discipline:           cpusched.FairShare{},
		ColdStartLatency:     400 * time.Millisecond,
		CreateCPUWork:        350 * time.Millisecond,
		ContainerInitCPUWork: time.Second,
		CreateConcurrency:    2,
		KeepAlive:            10 * time.Minute,
		ContainerMem:         24 << 20,
		BaseMemBytes:         256 << 20,
		ContainerIdleCPU:     0.02,
	}
}

// validate normalises and checks a config.
func (c *Config) validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("node: cores must be positive, got %v", c.Cores)
	}
	if c.CreateConcurrency <= 0 {
		return fmt.Errorf("node: create concurrency must be positive, got %d", c.CreateConcurrency)
	}
	if c.ColdStartLatency < 0 || c.CreateCPUWork < 0 || c.ContainerInitCPUWork < 0 {
		return fmt.Errorf("node: cold-start latency, create work and init work must be non-negative")
	}
	if c.BaseMemBytes < 0 {
		return fmt.Errorf("node: base memory must be non-negative, got %d", c.BaseMemBytes)
	}
	if c.KeepAlive <= 0 {
		return fmt.Errorf("node: keep-alive must be positive, got %v", c.KeepAlive)
	}
	if c.ContainerIdleCPU < 0 {
		return fmt.Errorf("node: container idle CPU must be non-negative, got %v", c.ContainerIdleCPU)
	}
	if c.BootFailureRate < 0 || c.BootFailureRate >= 1 {
		return fmt.Errorf("node: boot failure rate must be in [0, 1), got %v", c.BootFailureRate)
	}
	if c.Discipline == nil {
		c.Discipline = cpusched.FairShare{}
	}
	return nil
}

// State is a container lifecycle state.
type State int

// Container states.
const (
	// Starting means the container is being created/booted.
	Starting State = iota + 1
	// Idle means the container is warm and available.
	Idle
	// Busy means at least one invocation is running inside.
	Busy
	// Evicted means the container was torn down.
	Evicted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Starting:
		return "starting"
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	case Evicted:
		return "evicted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Container is one provisioned container on the node.
type Container struct {
	node     *Node
	id       string
	fn       string
	state    State
	group    *cpusched.Group // function execution CPU group (cpuset)
	gilGroup *cpusched.Group // runtime-lock group: client creations serialise here
	cache    *multiplex.Cache
	active   int // running invocations
	creating int // in-flight client creations (contention degree k)
	// clientBytes tracks live non-multiplexed client memory charged to
	// the node ledger.
	clientBytes   int64
	clientLive    int // live client instances (for marginal-memory pricing)
	idleSince     sim.Time
	idleEpoch     int // guards stale keep-alive eviction timers
	served        int // total invocations executed (diagnostics)
	cacheDisabled bool
}

// ID reports the container's unique identifier.
func (c *Container) ID() string { return c.id }

// Fn reports the function the container serves.
func (c *Container) Fn() string { return c.fn }

// State reports the lifecycle state.
func (c *Container) State() State { return c.state }

// Group is the container's CPU scheduling group (its cpuset).
func (c *Container) Group() *cpusched.Group { return c.group }

// GILGroup is the one-core group where client creations serialise,
// modelling the language runtime lock of the paper's prototype.
func (c *Container) GILGroup() *cpusched.Group { return c.gilGroup }

// Cache is the container's Resource Multiplexer, or nil when the
// container was acquired without multiplexing (the baselines).
func (c *Container) Cache() *multiplex.Cache { return c.cache }

// Active reports how many invocations are running inside the container.
func (c *Container) Active() int { return c.active }

// Served reports how many invocations the container has completed.
func (c *Container) Served() int { return c.served }

// SetCPULimit applies a cpuset limit (cores; <= 0 means unlimited).
func (c *Container) SetCPULimit(cores float64) { c.group.SetCap(cores) }

// CheckoutThread marks one invocation as running inside the container.
func (c *Container) CheckoutThread() {
	c.active++
	c.state = Busy
}

// ReturnThread marks one invocation as finished. When the container
// drains it returns to the warm pool and its keep-alive clock starts; a
// crashed container instead releases its CPU groups once the in-flight
// work it accepted before the crash has finished.
func (c *Container) ReturnThread() {
	if c.active == 0 {
		return
	}
	c.active--
	c.served++
	if c.active > 0 {
		return
	}
	if c.state == Evicted {
		c.closeGroups()
		return
	}
	c.node.parkIdle(c)
}

// closeGroups detaches the container's CPU groups from the pool. Safe to
// call with nil groups (boot never completed) or repeatedly.
func (c *Container) closeGroups() {
	if c.group != nil {
		_ = c.group.Close()
	}
	if c.gilGroup != nil {
		_ = c.gilGroup.Close()
	}
}

// BeginClientCreation registers an in-flight client construction and
// reports the resulting concurrency degree k (>= 1).
func (c *Container) BeginClientCreation() int {
	c.creating++
	return c.creating
}

// EndClientCreation unregisters an in-flight client construction.
func (c *Container) EndClientCreation() {
	if c.creating > 0 {
		c.creating--
	}
}

// CreationConcurrency reports the in-flight client constructions.
func (c *Container) CreationConcurrency() int { return c.creating }

// AllocClientMem charges client-instance memory to the node ledger and
// reports the live instance ordinal (1-based) for marginal pricing.
func (c *Container) AllocClientMem(bytes int64) int {
	c.clientLive++
	c.clientBytes += bytes
	c.node.allocMem(bytes)
	c.node.clientBytesAllocated += bytes
	return c.clientLive
}

// ClientLive reports the number of live client instances in the container.
func (c *Container) ClientLive() int { return c.clientLive }

// Terminate tears the container down immediately (scale-in), bypassing
// the warm pool. Kraken uses it to retire batch containers, reproducing
// the paper's observed fresh-container-per-batch behaviour. Terminating
// a container that still has running CPU tasks is not supported; callers
// terminate only after their batch drained.
func (c *Container) Terminate() {
	c.active = 0
	c.node.teardown(c)
}

// Crash kills the container abruptly (fault injection): it is torn down
// regardless of lifecycle state and counted as a crash. Invocations that
// had not started executing observe the Evicted state and must be
// retried by their scheduler; invocations already inside run their body
// to completion (our containers are simulated — there is no kernel to
// reap their threads), and the container's CPU groups detach only once
// that accepted work drains. Crashing an already-evicted container is a
// no-op.
func (c *Container) Crash() {
	if c.state == Evicted {
		return
	}
	c.node.teardown(c)
	c.node.crashes++
}

// FreeClientMem releases client-instance memory (a non-multiplexed client
// is garbage-collected when its invocation returns).
func (c *Container) FreeClientMem(bytes int64) {
	if bytes > c.clientBytes {
		bytes = c.clientBytes
	}
	c.clientBytes -= bytes
	if c.clientLive > 0 {
		c.clientLive--
	}
	c.node.freeMem(bytes)
}
