package sim_test

import (
	"fmt"
	"time"

	"faasbatch/internal/sim"
)

// A minute of virtual time executes instantly: events fire in timestamp
// order and the clock jumps between them.
func ExampleEngine() {
	eng := sim.New(1)
	eng.Schedule(time.Minute, func() {
		fmt.Println("one minute:", eng.Now())
	})
	eng.Schedule(time.Second, func() {
		fmt.Println("one second:", eng.Now())
		eng.Schedule(500*time.Millisecond, func() {
			fmt.Println("chained:", eng.Now())
		})
	})
	eng.Run()
	// Output:
	// one second: 1s
	// chained: 1.5s
	// one minute: 1m0s
}

// Tickers drive periodic work such as the Invoke Mapper's dispatch
// window.
func ExampleNewTicker() {
	eng := sim.New(1)
	ticks := 0
	t, err := sim.NewTicker(eng, 200*time.Millisecond, func(now sim.Time) {
		ticks++
		if ticks == 3 {
			fmt.Println("third window at", now)
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	eng.RunUntil(sim.Time(time.Second))
	t.Stop()
	fmt.Println("windows closed:", ticks)
	// Output:
	// third window at 600ms
	// windows closed: 5
}
