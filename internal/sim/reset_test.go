package sim

import (
	"testing"
	"time"
)

// TestReset verifies a reset engine behaves exactly like a fresh one:
// clock at zero, no pending events, and an identical random stream.
func TestReset(t *testing.T) {
	eng := New(7)
	fired := 0
	eng.Schedule(time.Second, func() { fired++ })
	eng.Schedule(2*time.Second, func() { fired++ })
	eng.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if eng.Now() != Time(2*time.Second) {
		t.Fatalf("Now = %v, want 2s", eng.Now())
	}

	eng.Reset(7)
	if eng.Now() != 0 {
		t.Errorf("Now after Reset = %v, want 0", eng.Now())
	}
	if eng.Pending() != 0 {
		t.Errorf("Pending after Reset = %d, want 0", eng.Pending())
	}
	if eng.Fired() != 0 {
		t.Errorf("Fired after Reset = %d, want 0", eng.Fired())
	}

	fresh := New(7)
	for i := 0; i < 100; i++ {
		if got, want := eng.Rand().Int63(), fresh.Rand().Int63(); got != want {
			t.Fatalf("draw %d: reset engine %d, fresh engine %d", i, got, want)
		}
	}
}

// TestResetDropsPendingEvents checks events scheduled before a reset never
// fire after it.
func TestResetDropsPendingEvents(t *testing.T) {
	eng := New(1)
	stale := false
	eng.Schedule(time.Second, func() { stale = true })
	eng.Reset(1)
	eng.Schedule(time.Millisecond, func() {})
	eng.Run()
	if stale {
		t.Fatal("event scheduled before Reset fired after it")
	}
}

// TestGrowPreallocates verifies Grow reserves heap capacity without
// disturbing scheduled events, and that scheduling within the grown
// capacity does not reallocate the backing array.
func TestGrowPreallocates(t *testing.T) {
	eng := New(1)
	order := []int{}
	eng.Schedule(2*time.Second, func() { order = append(order, 2) })
	eng.Grow(1000)
	if cap(eng.events) < 1001 {
		t.Fatalf("cap = %d, want >= 1001", cap(eng.events))
	}
	eng.Schedule(time.Second, func() { order = append(order, 1) })

	before := cap(eng.events)
	for i := 0; i < 900; i++ {
		eng.Schedule(3*time.Second, func() {})
	}
	if cap(eng.events) != before {
		t.Errorf("cap changed %d -> %d despite Grow reservation", before, cap(eng.events))
	}
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

// TestGrowReuseAcrossReset exercises the runner pattern the stress
// harness uses: Grow once, run, Reset, run again — the second run must
// not reallocate the heap.
func TestGrowReuseAcrossReset(t *testing.T) {
	eng := New(3)
	eng.Grow(512)
	for i := 0; i < 500; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	eng.Run()
	eng.Reset(3)
	before := cap(eng.events)
	for i := 0; i < 500; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if cap(eng.events) != before {
		t.Errorf("cap changed %d -> %d across Reset", before, cap(eng.events))
	}
	eng.Run()
	if eng.Fired() != 500 {
		t.Fatalf("Fired = %d, want 500", eng.Fired())
	}
}
