// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock from event to event. All model code
// (CPU pools, containers, schedulers) runs inside event callbacks, so a whole
// experiment executes in a single goroutine and is reproducible for a given
// seed. Virtual time is completely decoupled from the wall clock: replaying
// one minute of an Azure trace takes milliseconds of real time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured as an offset from the simulation
// epoch (the instant the engine was created).
type Time time.Duration

// Add returns the timestamp d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier timestamp o.
func (t Time) Sub(o Time) time.Duration { return time.Duration(t - o) }

// Seconds reports t as a floating-point number of seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Duration converts t to the duration elapsed since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t as a duration offset, e.g. "1.2s".
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// At reports the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Engine is a single-threaded discrete-event simulator.
//
// Engine is not safe for concurrent use; all interaction must happen from
// the goroutine driving Run (which includes all event callbacks).
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
}

// New returns an engine whose clock starts at zero, with a deterministic
// random source derived from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Grow ensures the event heap has capacity for at least n more scheduled
// events without reallocating. Multi-million-event runs (the stress
// harness simulates tens of millions of invocations) otherwise pay for
// repeated append-doubling of the heap's backing array; a single Grow up
// front keeps the allocator out of the event loop.
func (e *Engine) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(e.events) - len(e.events); free < n {
		grown := make(eventHeap, len(e.events), len(e.events)+n)
		copy(grown, e.events)
		e.events = grown
	}
}

// Reset returns the engine to its initial state — clock at zero, no
// pending events, counters cleared, random source reseeded — while
// retaining the event heap's backing array. A runner that replays the
// same scenario repeatedly (determinism verification, seed sweeps) can
// reuse one engine instead of re-growing a fresh heap every run.
func (e *Engine) Reset(seed int64) {
	for i := range e.events {
		e.events[i] = nil
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.rng = rand.New(rand.NewSource(seed))
}

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled (including
// cancelled events that have not been drained yet).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay d of virtual time. A negative delay is
// clamped to zero (the event fires "now", after currently running events).
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at virtual time t. A time in the past is clamped to
// the current time.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event was fired (false when the queue is empty).
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor fires events for a span d of virtual time starting at the current
// clock, then advances the clock to the end of the span.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// eventHeap orders events by (time, sequence), giving FIFO ordering among
// events scheduled for the same instant.
type eventHeap []*Event

var _ heap.Interface = (*eventHeap)(nil)

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		// heap.Push is only reachable through Engine, which always pushes
		// *Event; guard anyway to satisfy the interface without panicking
		// on foreign use.
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Ticker invokes fn every period of virtual time until stopped.
type Ticker struct {
	eng     *Engine
	period  time.Duration
	fn      func(Time)
	ev      *Event
	stopped bool
}

// NewTicker schedules fn to run every period, starting one period from now.
// It returns an error if period is not positive.
func NewTicker(eng *Engine, period time.Duration, fn func(Time)) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period must be positive, got %v", period)
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.arm()
	return t, nil
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.eng.Now())
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Stop is idempotent.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
