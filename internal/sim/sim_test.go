package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine pending = %d, want 0", e.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := New(1)
	var at Time
	e.Schedule(100*time.Millisecond, func() { at = e.Now() })
	e.Run()
	if got, want := at, Time(100*time.Millisecond); got != want {
		t.Fatalf("event fired at %v, want %v", got, want)
	}
	if e.Now() != at {
		t.Fatalf("clock = %v, want %v", e.Now(), at)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New(1)
	var order []int
	e.Schedule(300*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(100*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(200*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", order)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New(1)
	fired := false
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Hour, func() {
			fired = true
			if e.Now() != Time(time.Second) {
				t.Errorf("clamped event fired at %v, want 1s", e.Now())
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestScheduleAtPastClampsToNow(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {
		e.ScheduleAt(0, func() {
			if e.Now() != Time(time.Second) {
				t.Errorf("past event fired at %v, want 1s", e.Now())
			}
		})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancel is idempotent.
	ev.Cancel()
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(2*time.Second, func() { fired = true })
	e.Schedule(time.Second, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(Time(2 * time.Second))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != Time(2*time.Second) {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	// The 3s event is still pending.
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	e := New(1)
	e.RunUntil(Time(5 * time.Second))
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	e := New(1)
	e.RunFor(time.Second)
	e.RunFor(time.Second)
	if e.Now() != Time(2*time.Second) {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	e := New(1)
	depth := 0
	var last Time
	var chain func()
	chain = func() {
		depth++
		last = e.Now()
		if depth < 5 {
			e.Schedule(time.Second, chain)
		}
	}
	e.Schedule(time.Second, chain)
	e.Run()
	if depth != 5 {
		t.Fatalf("chain depth = %d, want 5", depth)
	}
	if last != Time(5*time.Second) {
		t.Fatalf("last fired at %v, want 5s", last)
	}
}

func TestFiredCounter(t *testing.T) {
	e := New(1)
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	ev := e.Schedule(time.Second, func() {})
	ev.Cancel()
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("fired = %d, want 7 (cancelled events don't count)", e.Fired())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		e := New(42)
		var vals []float64
		for i := 0; i < 20; i++ {
			e.Schedule(time.Duration(i)*time.Millisecond, func() {
				vals = append(vals, e.Rand().Float64())
			})
		}
		e.Run()
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	var ticks []Time
	tk, err := NewTicker(e, 100*time.Millisecond, func(now Time) { ticks = append(ticks, now) })
	if err != nil {
		t.Fatalf("NewTicker: %v", err)
	}
	e.RunUntil(Time(350 * time.Millisecond))
	tk.Stop()
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	for i, tick := range ticks {
		want := Time(time.Duration(i+1) * 100 * time.Millisecond)
		if tick != want {
			t.Fatalf("tick %d at %v, want %v", i, tick, want)
		}
	}
}

func TestTickerStopIsIdempotentAndStopsFutureTicks(t *testing.T) {
	e := New(1)
	n := 0
	tk, err := NewTicker(e, time.Second, func(Time) { n++ })
	if err != nil {
		t.Fatalf("NewTicker: %v", err)
	}
	tk.Stop()
	tk.Stop()
	e.RunUntil(Time(10 * time.Second))
	if n != 0 {
		t.Fatalf("stopped ticker ticked %d times", n)
	}
}

func TestTickerRejectsNonPositivePeriod(t *testing.T) {
	e := New(1)
	if _, err := NewTicker(e, 0, func(Time) {}); err == nil {
		t.Fatal("NewTicker(0) succeeded, want error")
	}
	if _, err := NewTicker(e, -time.Second, func(Time) {}); err == nil {
		t.Fatal("NewTicker(-1s) succeeded, want error")
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	e := New(1)
	n := 0
	var tk *Ticker
	tk, err := NewTicker(e, time.Second, func(Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatalf("NewTicker: %v", err)
	}
	e.RunUntil(Time(10 * time.Second))
	if n != 2 {
		t.Fatalf("ticker ticked %d times, want 2", n)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine fires exactly len(delays) events.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		e := New(7)
		var fireTimes []Time
		for _, r := range raw {
			d := time.Duration(r%1_000_000) * time.Microsecond
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never leaves the clock before the requested time and
// never fires events scheduled after it.
func TestPropertyRunUntilBoundary(t *testing.T) {
	f := func(raw []uint16, cut uint16) bool {
		e := New(3)
		cutoff := Time(time.Duration(cut) * time.Millisecond)
		late := 0
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			e.Schedule(d, func() {
				if e.Now() > cutoff {
					late++
				}
			})
		}
		e.RunUntil(cutoff)
		return late == 0 && e.Now() >= cutoff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving cancellations with scheduling preserves ordering of
// the surviving events.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		e := New(seed)
		r := rand.New(rand.NewSource(seed))
		var events []*Event
		survivors := 0
		fired := 0
		for i := 0; i < int(n); i++ {
			d := time.Duration(r.Intn(1000)) * time.Millisecond
			ev := e.Schedule(d, func() { fired++ })
			events = append(events, ev)
		}
		for _, ev := range events {
			if r.Intn(2) == 0 {
				ev.Cancel()
			} else {
				survivors++
			}
		}
		e.Run()
		return fired == survivors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if got := tm.Add(500 * time.Millisecond); got != Time(2*time.Second) {
		t.Errorf("Add = %v, want 2s", got)
	}
	if got := tm.Sub(Time(time.Second)); got != 500*time.Millisecond {
		t.Errorf("Sub = %v, want 500ms", got)
	}
	if got := tm.Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if got := tm.Duration(); got != 1500*time.Millisecond {
		t.Errorf("Duration = %v, want 1.5s", got)
	}
	if got := tm.String(); got != "1.5s" {
		t.Errorf("String = %q, want 1.5s", got)
	}
}
