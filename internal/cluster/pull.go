package cluster

import (
	"time"

	"faasbatch/internal/fnruntime"
	"faasbatch/internal/pullsched"
	"faasbatch/internal/sim"
)

// PullEvent is one observable input the sim driver fed the pull
// decision core, recorded (when enabled) so the sim-vs-live conformance
// test can replay the identical sequence through the router's driver
// and compare grant logs.
type PullEvent struct {
	// Kind is "enqueue", "complete", "down" or "up".
	Kind string
	// ID is the driver-assigned invocation id (enqueue/complete).
	ID int64
	// Fn is the invocation's function (enqueue/complete).
	Fn string
	// Worker is the affected node slot (down/up).
	Worker int
	// Off is the virtual offset the event fired at.
	Off time.Duration
}

// pullDriver runs the shared pullsched.Core against the simulated
// fleet: Submit enqueues instead of picking a node, grants dispatch to
// node schedulers, and completions ack leases. Membership transitions
// (zone outages, autoscale drain/retire) flow in through the picker's
// onDown hook, so a draining node stops pulling exactly like a draining
// live worker. The engine is single-threaded, so the core needs no
// locking here (the live driver's analogue takes a mutex).
type pullDriver struct {
	c       *Cluster
	core    *pullsched.Core
	pending map[int64]*pendingPull
	nextID  int64
	shed    uint64
	record  bool
	events  []PullEvent
}

// pendingPull is an admitted invocation awaiting (or holding) a lease.
type pendingPull struct {
	inv      *fnruntime.Invocation
	complete func(*fnruntime.Invocation)
	start    sim.Time
}

// initPull wires the pull scheduler over the fleet. Called before
// initAutoscale so autoscale's initial standby mark-downs reach the
// core as eligibility flips.
func (c *Cluster) initPull(pcfg *pullsched.Config) error {
	cfg := pullsched.Config{}
	if pcfg != nil {
		cfg = *pcfg
	}
	cfg.Workers = len(c.nodes)
	core, err := pullsched.New(cfg)
	if err != nil {
		return err
	}
	d := &pullDriver{
		c:       c,
		core:    core,
		pending: make(map[int64]*pendingPull),
	}
	c.pull = d
	c.picker.onDown = d.membership
	return nil
}

// submit admits one invocation: enqueue, then dispatch whatever grants
// the arrival unlocked. A depth-bound shed completes the invocation
// immediately as a failure — the sim analogue of the live router's 429.
func (d *pullDriver) submit(inv *fnruntime.Invocation, complete func(*fnruntime.Invocation), start sim.Time) {
	d.nextID++
	id := d.nextID
	off := start.Duration()
	d.pending[id] = &pendingPull{inv: inv, complete: complete, start: start}
	d.event(PullEvent{Kind: "enqueue", ID: id, Fn: inv.Spec.Name, Worker: -1, Off: off})
	gs, shed := d.core.Enqueue(id, inv.Spec.Name, off)
	if shed {
		delete(d.pending, id)
		d.shed++
		inv.Rec.Failed = true
		complete(inv)
		return
	}
	d.dispatch(gs)
}

// dispatch hands granted invocations to their leased node's scheduler.
// The completion callback acks the lease, which may pull further queued
// work — the dispatch loop of the worker-pull protocol.
func (d *pullDriver) dispatch(gs []pullsched.Grant) {
	for _, g := range gs {
		p, ok := d.pending[g.ID]
		if !ok {
			continue
		}
		id, w := g.ID, g.Worker
		d.c.picker.inflight[w]++
		d.c.picker.routed[w]++
		d.c.scheds[w].Submit(p.inv, func(done *fnruntime.Invocation) {
			d.c.picker.inflight[w]--
			if d.c.scaler != nil {
				d.c.scaler.completed(w, d.c.eng.Now().Sub(p.start))
			}
			off := d.c.eng.Now().Duration()
			d.event(PullEvent{Kind: "complete", ID: id, Fn: done.Spec.Name, Worker: w, Off: off})
			next := d.core.Complete(id, off)
			delete(d.pending, id)
			p.complete(done)
			d.dispatch(next)
		})
	}
}

// membership mirrors a picker mark-down/mark-up into core eligibility;
// a mark-up may immediately drain queued work (scale-from-zero wake).
func (d *pullDriver) membership(i int, down bool) {
	off := d.c.eng.Now().Duration()
	kind := "up"
	if down {
		kind = "down"
	}
	d.event(PullEvent{Kind: kind, Worker: i, Off: off})
	d.dispatch(d.core.SetWorker(i, !down, off))
}

// event appends to the conformance log when recording is enabled.
func (d *pullDriver) event(e PullEvent) {
	if d.record {
		d.events = append(d.events, e)
	}
}

// PullEnabled reports whether the cluster routes through the pull
// scheduler.
func (c *Cluster) PullEnabled() bool { return c.pull != nil }

// SetPullEventRecording toggles the conformance event log (off by
// default — fleet-scale scenario runs would otherwise retain one entry
// per invocation). Enable it before submitting work.
func (c *Cluster) SetPullEventRecording(on bool) {
	if c.pull != nil {
		c.pull.record = on
	}
}

// PullEvents returns the recorded conformance event log in order.
func (c *Cluster) PullEvents() []PullEvent {
	if c.pull == nil {
		return nil
	}
	return append([]PullEvent(nil), c.pull.events...)
}

// PullGrants returns the core's retained grant log in order.
func (c *Cluster) PullGrants() []pullsched.Grant {
	if c.pull == nil {
		return nil
	}
	return c.pull.core.Grants()
}

// PullStats snapshots the pull core's counters (zero value when pull
// balancing is off).
func (c *Cluster) PullStats() pullsched.Stats {
	if c.pull == nil {
		return pullsched.Stats{}
	}
	return c.pull.core.Stats()
}

// PullShed counts invocations refused at the queue-depth bound.
func (c *Cluster) PullShed() uint64 {
	if c.pull == nil {
		return 0
	}
	return c.pull.shed
}
