package cluster

import (
	"testing"
	"time"

	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/sim"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// testTrace builds a small multi-function burst.
func testTrace(t *testing.T, n int, fns int) trace.Trace {
	t.Helper()
	tr := trace.Trace{Name: "cluster-test", Span: 10 * time.Second}
	for i := 0; i < n; i++ {
		tr.Invocations = append(tr.Invocations, trace.Invocation{
			Offset: time.Duration(i*25) * time.Millisecond,
			Fn:     string(rune('a' + i%fns)),
			FibN:   22 + i%4,
		})
	}
	return tr
}

func testClusterConfig(nodes int, bal Balancing) Config {
	ncfg := node.DefaultConfig()
	ncfg.Cores = 8
	ncfg.ContainerInitCPUWork = 0
	ncfg.CreateCPUWork = 100 * time.Millisecond
	ncfg.KeepAlive = time.Hour
	return Config{Nodes: nodes, Node: ncfg, Balancing: bal}
}

func TestBalancingString(t *testing.T) {
	want := map[Balancing]string{FnAffinity: "fn-affinity", LeastLoaded: "least-loaded", RoundRobin: "round-robin", ConsistentHash: "consistent-hash"}
	for b, w := range want {
		if got := b.String(); got != w {
			t.Errorf("%d = %q, want %q", int(b), got, w)
		}
	}
	if Balancing(9).String() != "balancing(9)" {
		t.Error("unknown balancing string wrong")
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.New(1)
	if _, err := New(nil, testClusterConfig(1, FnAffinity)); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, Config{Nodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	cfg := testClusterConfig(1, Balancing(9))
	if _, err := New(eng, cfg); err == nil {
		t.Error("unknown balancing accepted")
	}
}

func TestReplayCompletesEverything(t *testing.T) {
	for _, bal := range []Balancing{FnAffinity, LeastLoaded, RoundRobin} {
		tr := testTrace(t, 60, 4)
		res, err := Replay(ReplayConfig{Cluster: testClusterConfig(3, bal), Trace: tr, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", bal, err)
		}
		if len(res.Records) != tr.Len() {
			t.Errorf("%v: %d records, want %d", bal, len(res.Records), tr.Len())
		}
		if res.Nodes != 3 || res.Balancing != bal {
			t.Errorf("%v: result metadata %+v", bal, res)
		}
		if res.TotalContainers == 0 || res.Makespan <= 0 {
			t.Errorf("%v: empty result %+v", bal, res)
		}
		if len(res.ContainersPerNode) != 3 || len(res.MemPerNode) != 3 {
			t.Errorf("%v: per-node breakdown missing", bal)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(ReplayConfig{Cluster: testClusterConfig(1, FnAffinity)}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestFnAffinityPinsFunctionsToNodes(t *testing.T) {
	// With as many nodes as functions, affinity spreads functions 1:1 and
	// every function's containers stay on one node.
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(4, FnAffinity))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fns := []string{"a", "b", "c", "d"}
	for round := 0; round < 3; round++ {
		for _, fn := range fns {
			if got := cl.picker.pick(fn); got != cl.picker.affinity[fn] {
				t.Fatalf("pick(%s) = %d, want sticky %d", fn, got, cl.picker.affinity[fn])
			}
		}
	}
	seen := map[int]bool{}
	for _, fn := range fns {
		seen[cl.picker.affinity[fn]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("affinity used %d nodes for 4 functions, want 4", len(seen))
	}
}

func TestRoundRobinCycles(t *testing.T) {
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(3, RoundRobin))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := cl.picker.pick("f"); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedFollowsInflight(t *testing.T) {
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(3, LeastLoaded))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cl.picker.inflight[0] = 5
	cl.picker.inflight[1] = 1
	cl.picker.inflight[2] = 3
	if got := cl.picker.pick("f"); got != 1 {
		t.Fatalf("pick = %d, want least-loaded node 1", got)
	}
}

func TestAffinityPreservesBatchingLocality(t *testing.T) {
	// One hot function on a 4-node cluster: affinity keeps all its
	// batches on one node (few containers); round-robin fragments every
	// window across the fleet (more containers).
	mk := func(bal Balancing) *Result {
		tr := testTrace(t, 80, 1) // single function
		res, err := Replay(ReplayConfig{Cluster: testClusterConfig(4, bal), Trace: tr, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", bal, err)
		}
		return res
	}
	aff := mk(FnAffinity)
	rr := mk(RoundRobin)
	if aff.TotalContainers >= rr.TotalContainers {
		t.Fatalf("affinity containers %d not fewer than round-robin %d",
			aff.TotalContainers, rr.TotalContainers)
	}
	// Affinity: one node hosts everything -> maximum imbalance (= #nodes
	// for a single function); round-robin spreads evenly.
	if aff.Imbalance() <= rr.Imbalance() {
		t.Fatalf("affinity imbalance %.2f not above round-robin %.2f (single hot function)",
			aff.Imbalance(), rr.Imbalance())
	}
}

func TestClusterScalingReducesContention(t *testing.T) {
	// A heavy burst on 1 node vs 4 nodes: more nodes must not increase
	// tail latency, and usually improve it.
	tr := testTrace(t, 120, 8)
	p99 := func(nodes int) time.Duration {
		res, err := Replay(ReplayConfig{Cluster: testClusterConfig(nodes, FnAffinity), Trace: tr, Seed: 1})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		return res.CDF(metrics.EndToEnd).P(0.99)
	}
	one, four := p99(1), p99(4)
	if four > one {
		t.Fatalf("p99 with 4 nodes (%v) worse than 1 node (%v)", four, one)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	var r Result
	if r.Imbalance() != 0 {
		t.Error("empty result imbalance should be 0")
	}
	r.ContainersPerNode = []int{0, 0}
	if r.Imbalance() != 0 {
		t.Error("zero-container imbalance should be 0")
	}
	r.ContainersPerNode = []int{2, 2}
	if r.Imbalance() != 1 {
		t.Errorf("balanced imbalance = %v, want 1", r.Imbalance())
	}
}

func TestSpecsForRejectsBadFib(t *testing.T) {
	tr := trace.Trace{Invocations: []trace.Invocation{{Fn: "f", FibN: 5}}}
	if _, err := specsFor(tr); err == nil {
		t.Fatal("invalid fib N accepted")
	}
	ok := trace.Trace{Invocations: []trace.Invocation{{Fn: "s3"}}}
	specs, err := specsFor(ok)
	if err != nil {
		t.Fatalf("specsFor: %v", err)
	}
	if specs[0].Kind != workload.IO {
		t.Fatalf("spec kind = %v, want IO", specs[0].Kind)
	}
}

// TestLeastLoadedTieBreaksLowestIndex pins the documented determinism
// contract: with two (or more) equally loaded nodes, the dispatcher picks
// the lowest index, so identical runs reproduce identical placements.
func TestLeastLoadedTieBreaksLowestIndex(t *testing.T) {
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(3, LeastLoaded))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// All idle: node 0 wins.
	if got := cl.picker.pick("f"); got != 0 {
		t.Fatalf("idle tie pick = %d, want 0", got)
	}
	// Nodes 1 and 2 tie below node 0: node 1 wins.
	cl.picker.inflight[0] = 4
	cl.picker.inflight[1] = 2
	cl.picker.inflight[2] = 2
	if got := cl.picker.pick("f"); got != 1 {
		t.Fatalf("two-way tie pick = %d, want lowest index 1", got)
	}
}

// TestFnAffinityFirstSightTieBreaksLowestIndex covers the pinning path:
// an unseen function on an evenly loaded fleet pins to the lowest index,
// and subsequent unseen functions spread by pin count.
func TestFnAffinityFirstSightTieBreaksLowestIndex(t *testing.T) {
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(2, FnAffinity))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := cl.picker.pick("first"); got != 0 {
		t.Fatalf("first unseen fn pinned to %d, want 0", got)
	}
	// Node 0 now carries one pin; the next unseen function goes to 1.
	if got := cl.picker.pick("second"); got != 1 {
		t.Fatalf("second unseen fn pinned to %d, want 1", got)
	}
	// Another tie (one pin each): back to the lowest index.
	if got := cl.picker.pick("third"); got != 0 {
		t.Fatalf("third unseen fn pinned to %d, want 0", got)
	}
}

func TestConsistentHashDeterministicAndSticky(t *testing.T) {
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(3, ConsistentHash))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fns := []string{"fib", "echo", "s3upload", "resize", "train"}
	first := make(map[string]int, len(fns))
	for _, fn := range fns {
		first[fn] = cl.picker.pick(fn)
	}
	// Sticky across repeats, load or not.
	cl.picker.inflight[first["fib"]] += 50
	for round := 0; round < 3; round++ {
		for _, fn := range fns {
			if got := cl.picker.pick(fn); got != first[fn] {
				t.Fatalf("round %d: pick(%s) = %d, want sticky %d", round, fn, got, first[fn])
			}
		}
	}
	// A second cluster agrees assignment-for-assignment.
	cl2, err := New(sim.New(99), testClusterConfig(3, ConsistentHash))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, fn := range fns {
		if got := cl2.picker.pick(fn); got != first[fn] {
			t.Fatalf("second cluster pick(%s) = %d, want %d", fn, got, first[fn])
		}
	}
	// Assignments reflects the pinning.
	got := cl.Assignments()
	for _, fn := range fns {
		if got[fn] != first[fn] {
			t.Fatalf("Assignments[%s] = %d, want %d", fn, got[fn], first[fn])
		}
	}
}

func TestAssignmentSequence(t *testing.T) {
	fns := []string{"fib", "echo", "fib", "s3upload", "echo"}
	seq, err := AssignmentSequence(ConsistentHash, 3, fns)
	if err != nil {
		t.Fatalf("AssignmentSequence: %v", err)
	}
	if len(seq) != len(fns) {
		t.Fatalf("len = %d, want %d", len(seq), len(fns))
	}
	// Repeats of a function get the same node.
	if seq[0] != seq[2] || seq[1] != seq[4] {
		t.Fatalf("repeat assignments differ: %v", seq)
	}
	// The sequence matches a live picker fed the same names.
	again, err := AssignmentSequence(ConsistentHash, 3, fns)
	if err != nil {
		t.Fatalf("AssignmentSequence: %v", err)
	}
	for i := range seq {
		if seq[i] != again[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, seq, again)
		}
	}
	// Round-robin sequences cycle.
	rr, err := AssignmentSequence(RoundRobin, 2, fns)
	if err != nil {
		t.Fatalf("AssignmentSequence: %v", err)
	}
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if rr[i] != want[i] {
			t.Fatalf("round-robin seq = %v, want %v", rr, want)
		}
	}
	// Validation.
	if _, err := AssignmentSequence(ConsistentHash, 0, fns); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := AssignmentSequence(Balancing(9), 2, fns); err == nil {
		t.Fatal("unknown balancing accepted")
	}
}

// TestConsistentHashReplay runs a full replay under the ring policy and
// checks it preserves locality like FnAffinity does (few containers for a
// single hot function).
func TestConsistentHashReplay(t *testing.T) {
	tr := testTrace(t, 80, 1)
	res, err := Replay(ReplayConfig{Cluster: testClusterConfig(4, ConsistentHash), Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rr, err := Replay(ReplayConfig{Cluster: testClusterConfig(4, RoundRobin), Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.TotalContainers >= rr.TotalContainers {
		t.Fatalf("consistent-hash containers %d not fewer than round-robin %d",
			res.TotalContainers, rr.TotalContainers)
	}
	if len(res.Records) != tr.Len() {
		t.Fatalf("records = %d, want %d", len(res.Records), tr.Len())
	}
}
