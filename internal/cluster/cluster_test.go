package cluster

import (
	"testing"
	"time"

	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/sim"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// testTrace builds a small multi-function burst.
func testTrace(t *testing.T, n int, fns int) trace.Trace {
	t.Helper()
	tr := trace.Trace{Name: "cluster-test", Span: 10 * time.Second}
	for i := 0; i < n; i++ {
		tr.Invocations = append(tr.Invocations, trace.Invocation{
			Offset: time.Duration(i*25) * time.Millisecond,
			Fn:     string(rune('a' + i%fns)),
			FibN:   22 + i%4,
		})
	}
	return tr
}

func testClusterConfig(nodes int, bal Balancing) Config {
	ncfg := node.DefaultConfig()
	ncfg.Cores = 8
	ncfg.ContainerInitCPUWork = 0
	ncfg.CreateCPUWork = 100 * time.Millisecond
	ncfg.KeepAlive = time.Hour
	return Config{Nodes: nodes, Node: ncfg, Balancing: bal}
}

func TestBalancingString(t *testing.T) {
	want := map[Balancing]string{FnAffinity: "fn-affinity", LeastLoaded: "least-loaded", RoundRobin: "round-robin"}
	for b, w := range want {
		if got := b.String(); got != w {
			t.Errorf("%d = %q, want %q", int(b), got, w)
		}
	}
	if Balancing(9).String() != "balancing(9)" {
		t.Error("unknown balancing string wrong")
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.New(1)
	if _, err := New(nil, testClusterConfig(1, FnAffinity)); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, Config{Nodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	cfg := testClusterConfig(1, Balancing(9))
	if _, err := New(eng, cfg); err == nil {
		t.Error("unknown balancing accepted")
	}
}

func TestReplayCompletesEverything(t *testing.T) {
	for _, bal := range []Balancing{FnAffinity, LeastLoaded, RoundRobin} {
		tr := testTrace(t, 60, 4)
		res, err := Replay(ReplayConfig{Cluster: testClusterConfig(3, bal), Trace: tr, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", bal, err)
		}
		if len(res.Records) != tr.Len() {
			t.Errorf("%v: %d records, want %d", bal, len(res.Records), tr.Len())
		}
		if res.Nodes != 3 || res.Balancing != bal {
			t.Errorf("%v: result metadata %+v", bal, res)
		}
		if res.TotalContainers == 0 || res.Makespan <= 0 {
			t.Errorf("%v: empty result %+v", bal, res)
		}
		if len(res.ContainersPerNode) != 3 || len(res.MemPerNode) != 3 {
			t.Errorf("%v: per-node breakdown missing", bal)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(ReplayConfig{Cluster: testClusterConfig(1, FnAffinity)}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestFnAffinityPinsFunctionsToNodes(t *testing.T) {
	// With as many nodes as functions, affinity spreads functions 1:1 and
	// every function's containers stay on one node.
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(4, FnAffinity))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fns := []string{"a", "b", "c", "d"}
	for round := 0; round < 3; round++ {
		for _, fn := range fns {
			if got := cl.pick(fn); got != cl.affinity[fn] {
				t.Fatalf("pick(%s) = %d, want sticky %d", fn, got, cl.affinity[fn])
			}
		}
	}
	seen := map[int]bool{}
	for _, fn := range fns {
		seen[cl.affinity[fn]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("affinity used %d nodes for 4 functions, want 4", len(seen))
	}
}

func TestRoundRobinCycles(t *testing.T) {
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(3, RoundRobin))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := cl.pick("f"); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedFollowsInflight(t *testing.T) {
	eng := sim.New(1)
	cl, err := New(eng, testClusterConfig(3, LeastLoaded))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cl.inflight[0] = 5
	cl.inflight[1] = 1
	cl.inflight[2] = 3
	if got := cl.pick("f"); got != 1 {
		t.Fatalf("pick = %d, want least-loaded node 1", got)
	}
}

func TestAffinityPreservesBatchingLocality(t *testing.T) {
	// One hot function on a 4-node cluster: affinity keeps all its
	// batches on one node (few containers); round-robin fragments every
	// window across the fleet (more containers).
	mk := func(bal Balancing) *Result {
		tr := testTrace(t, 80, 1) // single function
		res, err := Replay(ReplayConfig{Cluster: testClusterConfig(4, bal), Trace: tr, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", bal, err)
		}
		return res
	}
	aff := mk(FnAffinity)
	rr := mk(RoundRobin)
	if aff.TotalContainers >= rr.TotalContainers {
		t.Fatalf("affinity containers %d not fewer than round-robin %d",
			aff.TotalContainers, rr.TotalContainers)
	}
	// Affinity: one node hosts everything -> maximum imbalance (= #nodes
	// for a single function); round-robin spreads evenly.
	if aff.Imbalance() <= rr.Imbalance() {
		t.Fatalf("affinity imbalance %.2f not above round-robin %.2f (single hot function)",
			aff.Imbalance(), rr.Imbalance())
	}
}

func TestClusterScalingReducesContention(t *testing.T) {
	// A heavy burst on 1 node vs 4 nodes: more nodes must not increase
	// tail latency, and usually improve it.
	tr := testTrace(t, 120, 8)
	p99 := func(nodes int) time.Duration {
		res, err := Replay(ReplayConfig{Cluster: testClusterConfig(nodes, FnAffinity), Trace: tr, Seed: 1})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		return res.CDF(metrics.EndToEnd).P(0.99)
	}
	one, four := p99(1), p99(4)
	if four > one {
		t.Fatalf("p99 with 4 nodes (%v) worse than 1 node (%v)", four, one)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	var r Result
	if r.Imbalance() != 0 {
		t.Error("empty result imbalance should be 0")
	}
	r.ContainersPerNode = []int{0, 0}
	if r.Imbalance() != 0 {
		t.Error("zero-container imbalance should be 0")
	}
	r.ContainersPerNode = []int{2, 2}
	if r.Imbalance() != 1 {
		t.Errorf("balanced imbalance = %v, want 1", r.Imbalance())
	}
}

func TestSpecsForRejectsBadFib(t *testing.T) {
	tr := trace.Trace{Invocations: []trace.Invocation{{Fn: "f", FibN: 5}}}
	if _, err := specsFor(tr); err == nil {
		t.Fatal("invalid fib N accepted")
	}
	ok := trace.Trace{Invocations: []trace.Invocation{{Fn: "s3"}}}
	specs, err := specsFor(ok)
	if err != nil {
		t.Fatalf("specsFor: %v", err)
	}
	if specs[0].Kind != workload.IO {
		t.Fatalf("spec kind = %v, want IO", specs[0].Kind)
	}
}
