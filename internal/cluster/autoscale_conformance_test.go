package cluster

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/router"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

// conformanceConfig is the shared controller configuration both drivers
// resolve identically: 4-node fleet, scale-to-zero enabled, fast ticks.
func conformanceConfig() autoscale.Config {
	return autoscale.Config{
		MinWorkers:       0,
		MaxWorkers:       4,
		TargetPerWorker:  10,
		EvalInterval:     100 * time.Millisecond,
		Warmup:           150 * time.Millisecond,
		DrainBudget:      200 * time.Millisecond,
		ScaleDownAfter:   2,
		ScaleToZeroAfter: 400 * time.Millisecond,
	}
}

// conformanceArrival is one scheduled invocation of the shared traffic
// schedule. Offsets deliberately avoid tick multiples so arrival/tick
// ordering is unambiguous in both drivers.
type conformanceArrival struct {
	off time.Duration
	fn  string
}

// conformanceSchedule is a burst → quiet → single-wake traffic shape:
// enough demand to scale up past one worker, silence long enough to
// drain to zero, then one arrival that must wake the fleet.
func conformanceSchedule() []conformanceArrival {
	var out []conformanceArrival
	fns := []string{"alpha", "beta", "gamma"}
	// Burst: 90 arrivals over ~450ms (~200/s across three functions).
	// Offsets are ≡ 2 (mod 5) so none lands on a 100ms tick multiple.
	for i := 0; i < 90; i++ {
		out = append(out, conformanceArrival{
			off: time.Duration(7+i*5) * time.Millisecond,
			fn:  fns[i%len(fns)],
		})
	}
	// One straggler keeps a trickle alive through the cooldown.
	out = append(out, conformanceArrival{off: 730 * time.Millisecond, fn: "alpha"})
	// Silence until past ScaleToZeroAfter, then the wake arrival.
	out = append(out, conformanceArrival{off: 1910 * time.Millisecond, fn: "beta"})
	return out
}

// decisionStrings renders a decision sequence for comparison.
func decisionStrings(ds []autoscale.Decision) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// runSimConformance replays the schedule through the simulated cluster
// driver on a virtual clock.
func runSimConformance(t *testing.T, acfg autoscale.Config, sched []conformanceArrival, horizon time.Duration) []autoscale.Decision {
	t.Helper()
	eng := sim.New(1)
	cfg := testClusterConfig(4, ConsistentHash)
	cfg.Autoscale = &acfg
	cl, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	spec := workload.IOSpec("conformance")
	done := 0
	for i, a := range sched {
		i, a := i, a
		eng.Schedule(a.off, func() {
			s := spec
			s.Name = a.fn
			inv := fnruntime.NewInvocation(int64(i), s, eng.Now())
			cl.Submit(inv, func(*fnruntime.Invocation) { done++ })
		})
	}
	eng.RunUntil(sim.Time(horizon))
	if done != len(sched) {
		t.Fatalf("sim driver completed %d/%d invocations", done, len(sched))
	}
	ds := cl.AutoscaleDecisions()
	if err := cl.Close(); err != nil {
		t.Fatalf("cluster.Close: %v", err)
	}
	return ds
}

// runLiveConformance replays the identical schedule through the live
// router driver by feeding explicit offsets to the deterministic
// entry points (AutoscaleObserve / AutoscaleTick) — the same calls the
// wall-clock loop makes, minus the wall clock. No forwards happen; the
// controller never sees forwarding outcomes, which is the property
// this test pins down.
func runLiveConformance(t *testing.T, acfg autoscale.Config, sched []conformanceArrival, horizon time.Duration) []autoscale.Decision {
	t.Helper()
	specs := make([]router.WorkerSpec, 4)
	for i := range specs {
		specs[i] = router.WorkerSpec{ID: NodeMember(i), URL: fmt.Sprintf("http://conformance.invalid/%d", i)}
	}
	rt, err := router.New(router.Config{Workers: specs, Autoscale: &acfg})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	defer func() { _ = rt.Close() }()

	// Merge arrivals and tick instants into one ordered replay. Ticks
	// land on exact EvalInterval multiples; arrivals never do, so the
	// sort is unambiguous (matching the sim engine's event order).
	type event struct {
		off  time.Duration
		tick bool
		fn   string
	}
	var evs []event
	for _, a := range sched {
		evs = append(evs, event{off: a.off, fn: a.fn})
	}
	for off := acfg.EvalInterval; off <= horizon; off += acfg.EvalInterval {
		evs = append(evs, event{off: off, tick: true})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].off < evs[j].off })
	for _, ev := range evs {
		if ev.tick {
			rt.AutoscaleTick(ev.off)
		} else {
			rt.AutoscaleObserve(ev.fn, ev.off)
		}
	}
	return rt.AutoscaleDecisions()
}

// TestSimLiveConformance is the tentpole guarantee: one traffic
// schedule replayed through the simulated fleet driver (virtual clock)
// and the live router driver (explicit offsets) produces the identical
// scaling decision sequence. Decisions may depend only on the config,
// the arrival schedule and the tick schedule — never on observed
// latencies, forwarding outcomes or driver-reported drain timing.
func TestSimLiveConformance(t *testing.T) {
	acfg := conformanceConfig()
	sched := conformanceSchedule()
	horizon := 2500 * time.Millisecond

	simDs := runSimConformance(t, acfg, sched, horizon)
	liveDs := runLiveConformance(t, acfg, sched, horizon)

	simStr, liveStr := decisionStrings(simDs), decisionStrings(liveDs)
	if len(simStr) != len(liveStr) {
		t.Fatalf("decision counts diverge: sim %d, live %d\nsim:  %v\nlive: %v",
			len(simStr), len(liveStr), simStr, liveStr)
	}
	for i := range simStr {
		if simStr[i] != liveStr[i] {
			t.Fatalf("decision %d diverges:\nsim:  %s\nlive: %s\nfull sim:  %v\nfull live: %v",
				i, simStr[i], liveStr[i], simStr, liveStr)
		}
	}

	// The schedule must actually exercise the full lifecycle, or the
	// equality above is vacuous.
	var ups, drains int
	for _, d := range simDs {
		switch d.Action {
		case autoscale.ActionProvision:
			ups++
		case autoscale.ActionDrain:
			drains++
		}
	}
	wakes := runStatusWakes(t, acfg, sched, horizon)
	if ups < 2 {
		t.Fatalf("schedule never scaled up past the initial worker: %d provisions\n%v", ups, simStr)
	}
	if drains < 2 {
		t.Fatalf("schedule never drained back down: %d drains\n%v", drains, simStr)
	}
	if wakes < 1 {
		t.Fatalf("schedule never woke a scaled-to-zero fleet\n%v", simStr)
	}
}

// runStatusWakes re-runs the sim replay and reports the wake counter
// (the decision log alone cannot distinguish a wake provision from a
// tick provision).
func runStatusWakes(t *testing.T, acfg autoscale.Config, sched []conformanceArrival, horizon time.Duration) int {
	t.Helper()
	eng := sim.New(1)
	cfg := testClusterConfig(4, ConsistentHash)
	cfg.Autoscale = &acfg
	cl, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	spec := workload.IOSpec("conformance")
	for i, a := range sched {
		i, a := i, a
		eng.Schedule(a.off, func() {
			s := spec
			s.Name = a.fn
			cl.Submit(fnruntime.NewInvocation(int64(i), s, eng.Now()), func(*fnruntime.Invocation) {})
		})
	}
	eng.RunUntil(sim.Time(horizon))
	wakes := int(cl.AutoscaleStatus().Wakes)
	_ = cl.Close()
	return wakes
}

// TestAutoscaleZeroLostOnMembershipChurn replays a bursty schedule with
// autoscaling enabled and asserts every invocation completes even as
// the controller adds, drains and retires nodes mid-flight — the sim
// half of the zero-lost-invocations guarantee.
func TestAutoscaleZeroLostOnMembershipChurn(t *testing.T) {
	acfg := conformanceConfig()
	acfg.MinWorkers = 0
	sched := conformanceSchedule()
	// Completing every invocation is asserted inside runSimConformance.
	ds := runSimConformance(t, acfg, sched, 2500*time.Millisecond)
	if len(ds) == 0 {
		t.Fatal("no scaling decisions recorded")
	}
}
