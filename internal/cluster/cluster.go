// Package cluster extends FaaSBatch beyond the paper's single worker VM:
// a fleet of simulated worker nodes, each running its own FaaSBatch
// scheduler (Invoke Mapper + Inline-Parallel Producer + Resource
// Multiplexer), behind a dispatcher that routes invocations to nodes.
//
// The paper scopes its evaluation to one machine ("rather than the
// efficiency of clustered servers", §IV); this package is the natural
// scale-out: because FaaSBatch folds a function's concurrent invocations
// into one container, routing *by function* (affinity) preserves batching
// locality across the fleet, while per-invocation balancing (least-loaded
// or round-robin) fragments windows across nodes and pays for it with
// extra containers — a trade-off the example and benches quantify.
package cluster

import (
	"fmt"
	"time"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/chaos"
	"faasbatch/internal/core"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/policy"
	"faasbatch/internal/pullsched"
	"faasbatch/internal/router"
	"faasbatch/internal/sim"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// Balancing selects the dispatcher's routing strategy.
type Balancing int

// Routing strategies.
const (
	// FnAffinity pins each function to one node (chosen least-loaded at
	// first sight), preserving FaaSBatch's batching locality.
	FnAffinity Balancing = iota + 1
	// LeastLoaded routes each invocation to the node with the fewest
	// in-flight invocations.
	LeastLoaded
	// RoundRobin cycles nodes per invocation.
	RoundRobin
	// ConsistentHash pins each function to the node owning it on a
	// consistent-hash ring (the same ring the live routing tier runs, so
	// simulated and live assignments agree function by function).
	ConsistentHash
	// Pull inverts the binding: invocations park in sharded per-function
	// queues (internal/pullsched) and nodes with free lease capacity
	// pull batches, so hot functions late-bind to the least-loaded node
	// instead of queueing behind a hash slot. Runs the same decision
	// core as the live router's -policy=pull.
	Pull
)

// String implements fmt.Stringer.
func (b Balancing) String() string {
	switch b {
	case FnAffinity:
		return "fn-affinity"
	case LeastLoaded:
		return "least-loaded"
	case RoundRobin:
		return "round-robin"
	case ConsistentHash:
		return "consistent-hash"
	case Pull:
		return "pull"
	default:
		return fmt.Sprintf("balancing(%d)", int(b))
	}
}

// NodeMember names node i on the consistent-hash ring. The live routing
// tier must use the same worker IDs for the sim-vs-live assignment
// comparison to hold.
func NodeMember(i int) string { return fmt.Sprintf("node-%d", i) }

// Config parameterises a cluster.
type Config struct {
	// Nodes is the worker-node count.
	Nodes int
	// Node configures each worker (zero value: node.DefaultConfig).
	Node node.Config
	// NodeConfigs optionally configures workers individually — a
	// heterogeneous fleet generated from weighted templates (the stress
	// harness's fleet section). When non-empty its length must equal
	// Nodes and it overrides Node.
	NodeConfigs []node.Config
	// Core configures each node's FaaSBatch scheduler (zero value:
	// core.DefaultConfig).
	Core core.Config
	// Balancing selects the dispatcher strategy (default FnAffinity).
	Balancing Balancing
	// Chaos optionally injects seeded faults into every node (boot
	// failures, slow cold starts) and runner (crashes, handler faults).
	// All nodes share the injector, so one seed fixes the fleet's fault
	// schedule. Nil injects nothing.
	Chaos *chaos.Injector
	// Autoscale optionally runs the predictive autoscaling control
	// plane over the fleet: Nodes then bounds the maximum fleet size and
	// the controller grows/shrinks ring membership between
	// Autoscale.MinWorkers and min(Autoscale.MaxWorkers, Nodes). Nil
	// keeps the fleet static.
	Autoscale *autoscale.Config
	// Pull tunes the pull scheduler when Balancing is Pull (nil uses
	// pullsched defaults with an unbounded queue). Pull.Workers is
	// overridden with Nodes.
	Pull *pullsched.Config
}

// Cluster is a fleet of FaaSBatch worker nodes behind a dispatcher.
type Cluster struct {
	eng     *sim.Engine
	cfg     Config
	nodes   []*node.Node
	runners []*fnruntime.Runner
	scheds  []*core.FaaSBatch
	picker  *picker
	scaler  *simScaler
	pull    *pullDriver
}

// picker is the dispatcher's routing state, separated from the cluster so
// an assignment sequence can be computed standalone (AssignmentSequence)
// and compared against the live router.
type picker struct {
	balancing Balancing
	inflight  []int
	assigned  []int // functions pinned per node (FnAffinity)
	routed    []int // invocations dispatched per node (all policies)
	affinity  map[string]int
	down      []bool // marked-down nodes are skipped for new routing
	downCount int
	rrCounter int
	ring      *router.Ring   // ConsistentHash only
	memberIdx map[string]int // ring member name -> node index
	// onDown observes every effective mark-down/mark-up transition; the
	// pull driver uses it to mirror membership into its decision core.
	onDown func(i int, down bool)
}

// newPicker builds routing state for n nodes.
func newPicker(b Balancing, n int) *picker {
	p := &picker{
		balancing: b,
		inflight:  make([]int, n),
		assigned:  make([]int, n),
		routed:    make([]int, n),
		affinity:  make(map[string]int, 16),
		down:      make([]bool, n),
	}
	if b == ConsistentHash {
		p.ring = router.NewRing(router.DefaultVNodes)
		p.memberIdx = make(map[string]int, n)
		for i := 0; i < n; i++ {
			m := NodeMember(i)
			p.ring.Add(m)
			p.memberIdx[m] = i
		}
	}
	return p
}

// setDown updates node i's mark-down state, mirroring the live registry's
// state machine: a down node stops receiving new work but keeps draining
// what it already owns. ConsistentHash removes/re-adds the ring member so
// ownership arcs redistribute exactly as the live router's would.
func (p *picker) setDown(i int, down bool) {
	if p.down[i] == down {
		return
	}
	p.down[i] = down
	if down {
		p.downCount++
	} else {
		p.downCount--
	}
	if p.ring != nil {
		m := NodeMember(i)
		if down {
			p.ring.Remove(m)
		} else {
			p.ring.Add(m)
		}
	}
	if p.onDown != nil {
		p.onDown(i, down)
	}
}

// pick selects the target node for a function. Marked-down nodes are
// avoided; when the whole fleet is down, routing degrades to
// least-loaded over all nodes (mark-down is advisory, work is never
// dropped at the dispatcher).
func (p *picker) pick(fn string) int {
	switch p.balancing {
	case LeastLoaded:
		return p.leastLoaded()
	case RoundRobin:
		for tries := 0; tries < len(p.inflight); tries++ {
			idx := p.rrCounter % len(p.inflight)
			p.rrCounter++
			if !p.down[idx] {
				return idx
			}
		}
		return p.leastLoaded()
	case ConsistentHash:
		member, ok := p.ring.Pick(fn)
		if !ok {
			return p.leastLoaded()
		}
		idx := p.memberIdx[member]
		p.affinity[fn] = idx
		return idx
	default: // FnAffinity
		if idx, ok := p.affinity[fn]; ok && !p.down[idx] {
			return idx
		}
		if idx, ok := p.affinity[fn]; ok {
			// Pinned node is down: fail the function over to the best
			// healthy node. The new pin is sticky — recovery does not
			// move it back, matching the live tier's behaviour where a
			// recovered worker only regains functions on re-routing.
			p.assigned[idx]--
			best := p.bestPin()
			p.affinity[fn] = best
			p.assigned[best]++
			return best
		}
		// First sight: pin to the node with the lightest combination of
		// in-flight work and already-pinned functions, so a cold window
		// of many new functions still spreads across the fleet.
		best := p.bestPin()
		p.affinity[fn] = best
		p.assigned[best]++
		return best
	}
}

// bestPin returns the healthy node with the lightest in-flight+pinned
// load (lowest index wins ties); all nodes compete when none is healthy.
func (p *picker) bestPin() int {
	best := -1
	for i := range p.inflight {
		if p.down[i] && p.downCount < len(p.inflight) {
			continue
		}
		if best < 0 || p.inflight[i]+p.assigned[i] < p.inflight[best]+p.assigned[best] {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// leastLoaded returns the healthy node with the fewest in-flight
// invocations (lowest index wins ties, keeping runs deterministic); all
// nodes compete when none is healthy.
func (p *picker) leastLoaded() int {
	best := -1
	for i := range p.inflight {
		if p.down[i] && p.downCount < len(p.inflight) {
			continue
		}
		if best < 0 || p.inflight[i] < p.inflight[best] {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// New builds a cluster on the given engine.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	if eng == nil {
		return nil, fmt.Errorf("cluster: engine must not be nil")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: node count must be positive, got %d", cfg.Nodes)
	}
	if cfg.Node.Cores == 0 {
		cfg.Node = node.DefaultConfig()
	}
	if len(cfg.NodeConfigs) > 0 && len(cfg.NodeConfigs) != cfg.Nodes {
		return nil, fmt.Errorf("cluster: NodeConfigs has %d entries for %d nodes", len(cfg.NodeConfigs), cfg.Nodes)
	}
	if cfg.Core.Interval == 0 {
		cfg.Core = core.DefaultConfig()
	}
	if cfg.Balancing == 0 {
		cfg.Balancing = FnAffinity
	}
	if cfg.Balancing < FnAffinity || cfg.Balancing > Pull {
		return nil, fmt.Errorf("cluster: unknown balancing %d", int(cfg.Balancing))
	}
	c := &Cluster{
		eng:    eng,
		cfg:    cfg,
		picker: newPicker(cfg.Balancing, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		ncfg := cfg.Node
		if len(cfg.NodeConfigs) > 0 {
			ncfg = cfg.NodeConfigs[i]
			if ncfg.Cores == 0 {
				ncfg = node.DefaultConfig()
			}
		}
		ncfg.Chaos = cfg.Chaos
		nd, err := node.New(eng, ncfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		runner := fnruntime.NewRunner(eng)
		runner.SetChaos(cfg.Chaos)
		sched, err := core.New(policy.Env{Eng: eng, Node: nd, Runner: runner}, cfg.Core)
		if err != nil {
			return nil, fmt.Errorf("cluster: scheduler %d: %w", i, err)
		}
		c.nodes = append(c.nodes, nd)
		c.runners = append(c.runners, runner)
		c.scheds = append(c.scheds, sched)
	}
	if cfg.Balancing == Pull {
		if err := c.initPull(cfg.Pull); err != nil {
			return nil, err
		}
	}
	if cfg.Autoscale != nil {
		if err := c.initAutoscale(*cfg.Autoscale); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SetDown marks node i down (true) or back up (false). A down node stops
// receiving newly routed work but keeps draining in-flight invocations —
// the mark-down/mark-up semantics of the live worker registry, so a
// zone-outage scenario loses zero invocations on failover. Marking every
// node down degrades routing to least-loaded over the whole fleet rather
// than dropping work.
func (c *Cluster) SetDown(i int, down bool) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: node index %d out of range [0, %d)", i, len(c.nodes))
	}
	c.picker.setDown(i, down)
	return nil
}

// Down reports whether node i is currently marked down (false for
// out-of-range indexes).
func (c *Cluster) Down(i int) bool {
	if i < 0 || i >= len(c.picker.down) {
		return false
	}
	return c.picker.down[i]
}

// Nodes exposes the worker nodes (for metrics probes).
func (c *Cluster) Nodes() []*node.Node { return c.nodes }

// Schedulers exposes the per-node FaaSBatch schedulers.
func (c *Cluster) Schedulers() []*core.FaaSBatch { return c.scheds }

// Submit routes one invocation to a node's FaaSBatch scheduler. With
// autoscaling enabled the arrival feeds the demand tracker first, so a
// scaled-to-zero fleet wakes before the dispatcher picks a node and the
// waking arrival routes to the woken node — zero invocations are lost
// across a scale-to-zero cycle.
func (c *Cluster) Submit(inv *fnruntime.Invocation, complete func(*fnruntime.Invocation)) {
	start := c.eng.Now()
	if c.scaler != nil {
		c.scaler.observe(inv.Spec.Name, start.Duration())
	}
	if c.pull != nil {
		c.pull.submit(inv, complete, start)
		return
	}
	idx := c.picker.pick(inv.Spec.Name)
	c.picker.inflight[idx]++
	c.picker.routed[idx]++
	c.scheds[idx].Submit(inv, func(done *fnruntime.Invocation) {
		c.picker.inflight[idx]--
		if c.scaler != nil {
			c.scaler.completed(idx, c.eng.Now().Sub(start))
		}
		complete(done)
	})
}

// RoutedPerNode reports how many invocations each node has been
// dispatched so far — the load-spread sample the skewed-traffic
// experiment computes its coefficient of variation over.
func (c *Cluster) RoutedPerNode() []int {
	return append([]int(nil), c.picker.routed...)
}

// Assignments reports the function-to-node pinning the dispatcher has
// accumulated: every function routed so far for the pinning policies
// (FnAffinity, ConsistentHash); empty for per-invocation policies.
func (c *Cluster) Assignments() map[string]int {
	out := make(map[string]int, len(c.picker.affinity))
	for fn, idx := range c.picker.affinity {
		out[fn] = idx
	}
	return out
}

// AssignmentSequence computes, standalone, the node index policy b would
// route each function name to on an idle fleet of n nodes — the
// dispatcher's decision sequence without running any work. The live
// routing tier's conformance test replays the same sequence against real
// workers named NodeMember(i) and asserts they agree.
func AssignmentSequence(b Balancing, n int, fns []string) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: node count must be positive, got %d", n)
	}
	if b == Pull {
		// Pull assignments depend on completions (capacity frees drive
		// grants), so they cannot be computed standalone on an idle
		// fleet; the pull conformance test replays a recorded event log
		// instead (PullEvents/PullGrants).
		return nil, fmt.Errorf("cluster: pull balancing has no standalone assignment sequence")
	}
	if b < FnAffinity || b > ConsistentHash {
		return nil, fmt.Errorf("cluster: unknown balancing %d", int(b))
	}
	p := newPicker(b, n)
	out := make([]int, len(fns))
	for i, fn := range fns {
		out[i] = p.pick(fn)
	}
	return out, nil
}

// Close shuts every node's scheduler down and stops the autoscale
// control loop.
func (c *Cluster) Close() error {
	if c.scaler != nil {
		c.scaler.ticker.Stop()
	}
	for i, s := range c.scheds {
		if err := s.Close(); err != nil {
			return fmt.Errorf("cluster: close scheduler %d: %w", i, err)
		}
	}
	return nil
}

// TotalContainers sums provisioned containers across nodes.
func (c *Cluster) TotalContainers() int {
	n := 0
	for _, nd := range c.nodes {
		n += nd.TotalCreated()
	}
	return n
}

// Result aggregates one cluster replay.
type Result struct {
	// Balancing echoes the routing strategy.
	Balancing Balancing
	// Nodes echoes the node count.
	Nodes int
	// Records holds every invocation's latency decomposition.
	Records []metrics.Record
	// TotalContainers sums containers provisioned across the fleet.
	TotalContainers int
	// ContainersPerNode breaks provisioning down by node.
	ContainersPerNode []int
	// MemPerNode is each node's peak memory.
	MemPerNode []int64
	// Makespan is the completion time of the last invocation.
	Makespan time.Duration
}

// CDF extracts a latency-component CDF from the records.
func (r *Result) CDF(comp metrics.Component) metrics.CDF {
	return metrics.NewCDF(metrics.Extract(r.Records, comp))
}

// Imbalance reports max/mean of per-node container counts (1.0 =
// perfectly balanced; 0 when the fleet provisioned nothing).
func (r *Result) Imbalance() float64 {
	return metrics.Imbalance(r.ContainersPerNode)
}

// ReplayConfig describes a cluster replay run.
type ReplayConfig struct {
	// Cluster configures the fleet.
	Cluster Config
	// Trace is the workload.
	Trace trace.Trace
	// Seed drives the engine.
	Seed int64
}

// Replay runs a trace through a cluster to completion.
func Replay(cfg ReplayConfig) (*Result, error) {
	if cfg.Trace.Len() == 0 {
		return nil, fmt.Errorf("cluster: trace is empty")
	}
	eng := sim.New(cfg.Seed)
	cl, err := New(eng, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	specs, err := specsFor(cfg.Trace)
	if err != nil {
		return nil, err
	}
	res := &Result{Balancing: cl.cfg.Balancing, Nodes: cfg.Cluster.Nodes}
	total := cfg.Trace.Len()
	for i, inv := range cfg.Trace.Invocations {
		i := i
		spec := specs[i]
		eng.Schedule(inv.Offset, func() {
			fi := fnruntime.NewInvocation(int64(i), spec, eng.Now())
			cl.Submit(fi, func(done *fnruntime.Invocation) {
				res.Records = append(res.Records, done.Rec)
			})
		})
	}
	for len(res.Records) < total {
		if !eng.Step() {
			return nil, fmt.Errorf("cluster: engine drained with %d/%d complete", len(res.Records), total)
		}
	}
	res.Makespan = eng.Now().Duration()
	if err := cl.Close(); err != nil {
		return nil, err
	}
	for _, nd := range cl.nodes {
		res.ContainersPerNode = append(res.ContainersPerNode, nd.TotalCreated())
		res.MemPerNode = append(res.MemPerNode, nd.MemPeak())
	}
	res.TotalContainers = cl.TotalContainers()
	return res, nil
}

// specsFor maps trace invocations to workload specs (mirrors the
// single-node experiment harness).
func specsFor(tr trace.Trace) ([]workload.Spec, error) {
	specs := make([]workload.Spec, tr.Len())
	fib := map[int]workload.Spec{}
	io := map[string]workload.Spec{}
	for i, inv := range tr.Invocations {
		if inv.FibN > 0 {
			s, ok := fib[inv.FibN]
			if !ok {
				var err error
				s, err = workload.FibSpec(inv.FibN)
				if err != nil {
					return nil, fmt.Errorf("cluster: invocation %d: %w", i, err)
				}
				fib[inv.FibN] = s
			}
			s.Name = inv.Fn
			specs[i] = s
			continue
		}
		s, ok := io[inv.Fn]
		if !ok {
			s = workload.IOSpec(inv.Fn)
			io[inv.Fn] = s
		}
		specs[i] = s
	}
	return specs, nil
}
