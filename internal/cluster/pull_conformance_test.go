package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"faasbatch/internal/fnruntime"
	"faasbatch/internal/pullsched"
	"faasbatch/internal/router"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

// pullConformanceConfig is the decision-core tuning both drivers
// resolve identically: small batches and per-worker capacity so the
// schedule actually queues, plus a bound that never sheds it.
func pullConformanceConfig() pullsched.Config {
	return pullsched.Config{
		Shards:     4,
		BatchSize:  2,
		Capacity:   2,
		QueueDepth: 256,
	}
}

// pullConformanceSchedule is a 90/10-skewed arrival sequence: the hot
// function dominates while three cold functions trickle, the traffic
// shape pull scheduling exists for. Offsets avoid the outage instants.
func pullConformanceSchedule() []conformanceArrival {
	var out []conformanceArrival
	cold := []string{"cold-a", "cold-b", "cold-c"}
	for i := 0; i < 80; i++ {
		fn := "hot"
		if i%10 == 9 {
			fn = cold[(i/10)%len(cold)]
		}
		out = append(out, conformanceArrival{
			off: time.Duration(3+i*7) * time.Millisecond,
			fn:  fn,
		})
	}
	return out
}

// pullOutage is the mid-run worker failure window shared by the sim run
// and (via the recorded event log) the live replay.
const (
	pullOutageStart = 200 * time.Millisecond
	pullOutageEnd   = 450 * time.Millisecond
	pullOutageNode  = 1
)

// runSimPull replays the skewed schedule through the simulated pull
// driver with a mid-run node outage, returning the recorded core-input
// event log and the resulting grant log.
func runSimPull(t *testing.T) ([]PullEvent, []pullsched.Grant, pullsched.Stats) {
	t.Helper()
	eng := sim.New(7)
	cfg := testClusterConfig(4, Pull)
	pcfg := pullConformanceConfig()
	cfg.Pull = &pcfg
	cl, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	cl.SetPullEventRecording(true)
	sched := pullConformanceSchedule()
	spec := workload.IOSpec("conformance")
	done, failed := 0, 0
	for i, a := range sched {
		i, a := i, a
		eng.Schedule(a.off, func() {
			s := spec
			s.Name = a.fn
			cl.Submit(fnruntime.NewInvocation(int64(i), s, eng.Now()), func(inv *fnruntime.Invocation) {
				done++
				if inv.Rec.Failed {
					failed++
				}
			})
		})
	}
	eng.Schedule(pullOutageStart, func() { _ = cl.SetDown(pullOutageNode, true) })
	eng.Schedule(pullOutageEnd, func() { _ = cl.SetDown(pullOutageNode, false) })
	eng.RunUntil(sim.Time(5 * time.Second))
	// Zero lost across the outage: every submission completed, none as
	// a shed or failure.
	if done != len(sched) || failed != 0 {
		t.Fatalf("sim pull run completed %d/%d (failed %d)", done, len(sched), failed)
	}
	events, grants, stats := cl.PullEvents(), cl.PullGrants(), cl.PullStats()
	if err := cl.Close(); err != nil {
		t.Fatalf("cluster.Close: %v", err)
	}
	return events, grants, stats
}

// replayLivePull feeds the recorded sim event log through the live
// router's pull policy at the same virtual offsets — the same core
// calls the request path makes, minus the goroutines and the wall
// clock — and returns its grant log.
func replayLivePull(t *testing.T, events []PullEvent) []pullsched.Grant {
	t.Helper()
	specs := make([]router.WorkerSpec, 4)
	for i := range specs {
		specs[i] = router.WorkerSpec{ID: NodeMember(i), URL: fmt.Sprintf("http://conformance.invalid/%d", i)}
	}
	pcfg := pullConformanceConfig()
	rt, err := router.New(router.Config{Workers: specs, Policy: router.PolicyPull, Pull: &pcfg})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	defer func() { _ = rt.Close() }()
	for _, ev := range events {
		switch ev.Kind {
		case "enqueue":
			if _, shed := rt.PullEnqueue(ev.ID, ev.Fn, ev.Off); shed {
				t.Fatalf("live replay shed id %d (%s) the sim admitted", ev.ID, ev.Fn)
			}
		case "complete":
			rt.PullComplete(ev.ID, ev.Off)
		case "down":
			rt.PullSetWorker(NodeMember(ev.Worker), false, ev.Off)
		case "up":
			rt.PullSetWorker(NodeMember(ev.Worker), true, ev.Off)
		default:
			t.Fatalf("unknown pull event kind %q", ev.Kind)
		}
	}
	return rt.PullGrants()
}

// TestPullSimLiveConformance is the tentpole guarantee for the pull
// policy: one skewed schedule (with a mid-run worker outage) run
// through the simulated cluster driver, then replayed through the live
// router driver, produces the identical lease-grant sequence — worker
// choice, batch composition, ordering, and requeue flags all match.
func TestPullSimLiveConformance(t *testing.T) {
	events, simGrants, stats := runSimPull(t)
	liveGrants := replayLivePull(t, events)
	if len(simGrants) == 0 {
		t.Fatal("sim run produced no grants")
	}
	if !reflect.DeepEqual(simGrants, liveGrants) {
		n := len(simGrants)
		if len(liveGrants) < n {
			n = len(liveGrants)
		}
		for i := 0; i < n; i++ {
			if simGrants[i] != liveGrants[i] {
				t.Fatalf("grant %d diverges:\nsim:  %+v\nlive: %+v (sim %d grants, live %d)",
					i, simGrants[i], liveGrants[i], len(simGrants), len(liveGrants))
			}
		}
		t.Fatalf("grant logs diverge in length: sim %d, live %d", len(simGrants), len(liveGrants))
	}
	// Non-vacuity: the schedule must exercise the queue (grants beyond
	// immediate capacity), the outage (a down/up pair) and quiesce.
	var downs, ups int
	for _, ev := range events {
		switch ev.Kind {
		case "down":
			downs++
		case "up":
			ups++
		}
	}
	if downs == 0 || ups == 0 {
		t.Fatalf("schedule never exercised the outage: %d downs, %d ups", downs, ups)
	}
	if stats.Queued != 0 || stats.Leases != 0 {
		t.Fatalf("sim core did not quiesce: %+v", stats)
	}
	if stats.Enqueued != stats.Completed+stats.Aborted {
		t.Fatalf("conservation violated: %+v", stats)
	}
	if stats.Shed != 0 {
		t.Fatalf("schedule shed %d arrivals; raise QueueDepth to keep the replay lossless", stats.Shed)
	}
}

// TestPullSpreadsSkewedLoad pins the load-balancing claim: under the
// 90/10 skew the hash picker funnels the hot function into one node
// while pull late-binds it across the fleet, so pull's per-node routed
// spread must be materially tighter.
func TestPullSpreadsSkewedLoad(t *testing.T) {
	run := func(bal Balancing) []int {
		eng := sim.New(7)
		cfg := testClusterConfig(4, bal)
		if bal == Pull {
			pcfg := pullConformanceConfig()
			cfg.Pull = &pcfg
		}
		cl, err := New(eng, cfg)
		if err != nil {
			t.Fatalf("cluster.New(%v): %v", bal, err)
		}
		sched := pullConformanceSchedule()
		spec := workload.IOSpec("skew")
		done := 0
		for i, a := range sched {
			i, a := i, a
			eng.Schedule(a.off, func() {
				s := spec
				s.Name = a.fn
				cl.Submit(fnruntime.NewInvocation(int64(i), s, eng.Now()), func(*fnruntime.Invocation) { done++ })
			})
		}
		eng.RunUntil(sim.Time(5 * time.Second))
		if done != len(sched) {
			t.Fatalf("%v run completed %d/%d", bal, done, len(sched))
		}
		routed := cl.RoutedPerNode()
		_ = cl.Close()
		return routed
	}
	spread := func(routed []int) (min, max int) {
		min, max = routed[0], routed[0]
		for _, n := range routed[1:] {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		return min, max
	}
	hashMin, hashMax := spread(run(ConsistentHash))
	pullMin, pullMax := spread(run(Pull))
	if hashMax-hashMin <= pullMax-pullMin {
		t.Fatalf("pull should spread skewed load tighter than hash: hash [%d,%d], pull [%d,%d]",
			hashMin, hashMax, pullMin, pullMax)
	}
}
