package cluster

import (
	"fmt"
	"time"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/sim"
)

// maxScaleDecisions bounds the retained decision log (scenario reports
// and the sim-vs-live conformance test read it; the controller's
// counters keep the lifetime totals).
const maxScaleDecisions = 4096

// simScaler drives the shared autoscale.Controller against the
// simulated fleet: controller slot i maps to node i, and decisions
// become picker membership transitions (the same ring remove/re-add the
// live registry performs), so the simulated fleet grows and shrinks
// exactly as the live one would. The controller is clock-agnostic; this
// driver feeds it virtual offsets from the engine's epoch, while the
// live driver (internal/router) feeds the identical controller
// wall-clock offsets — the sim-vs-live conformance test replays one
// schedule through both and asserts the decision sequences match.
type simScaler struct {
	c         *Cluster
	ctrl      *autoscale.Controller
	ticker    *sim.Ticker
	decisions []autoscale.Decision
	// pendDrain marks nodes ordered to drain that still hold in-flight
	// work; the Submit completion callback fires NoteDrained when the
	// last invocation leaves, mirroring the live registry's drain hook.
	pendDrain []bool
}

// initAutoscale wires a controller over the fleet. Node slots beyond
// the initial ready count start marked down (the live driver's standby
// state). Mirrors newLiveScaler's clamping so one Config yields the
// same resolved controller in both drivers.
func (c *Cluster) initAutoscale(acfg autoscale.Config) error {
	if acfg.MaxWorkers <= 0 || acfg.MaxWorkers > len(c.nodes) {
		acfg.MaxWorkers = len(c.nodes)
	}
	// Never start at zero: the first arrival is served while the
	// control loop warms up; the idle gate drains the fleet later if
	// MinWorkers is 0.
	initial := acfg.MinWorkers
	if initial < 1 {
		initial = 1
	}
	ctrl, err := autoscale.New(acfg, initial)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	s := &simScaler{
		c:         c,
		ctrl:      ctrl,
		pendDrain: make([]bool, len(c.nodes)),
	}
	for i := initial; i < len(c.nodes); i++ {
		c.picker.setDown(i, true)
	}
	s.ticker, err = sim.NewTicker(c.eng, ctrl.Config().EvalInterval, func(t sim.Time) {
		s.tick(t.Duration())
	})
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.scaler = s
	return nil
}

// observe records one admitted invocation and handles the
// scale-from-zero wake before the dispatcher picks a node, so the
// arrival that triggered the wake routes to the woken node rather than
// degrading to the all-down fallback.
func (s *simScaler) observe(fn string, off time.Duration) {
	s.ctrl.Observe(fn, off)
	s.apply(s.ctrl.Wake(off))
}

// tick runs one control-loop evaluation at virtual offset off.
func (s *simScaler) tick(off time.Duration) {
	s.apply(s.ctrl.Tick(off))
}

// apply turns controller decisions into picker membership transitions
// and appends them to the bounded log. The engine is single-threaded,
// so no locking is needed (the live driver's analogue takes a mutex).
func (s *simScaler) apply(ds []autoscale.Decision) {
	for _, d := range ds {
		if d.Worker < 0 || d.Worker >= len(s.c.nodes) {
			continue
		}
		switch d.Action {
		case autoscale.ActionProvision:
			// The node exists from construction; pre-warming is the
			// Warmup delay before ActionReady admits it to routing.
		case autoscale.ActionReady, autoscale.ActionReclaim:
			s.pendDrain[d.Worker] = false
			s.c.picker.setDown(d.Worker, false)
		case autoscale.ActionDrain:
			s.c.picker.setDown(d.Worker, true)
			if s.c.picker.inflight[d.Worker] == 0 {
				s.noteDrained(d.Worker)
			} else {
				s.pendDrain[d.Worker] = true
			}
		case autoscale.ActionRetire:
			// Drain budget expired (or a warming slot was cancelled):
			// the slot leaves the fleet whether or not its last
			// invocation finished, exactly like the live registry's
			// standby transition — a still-pending drain hook is
			// abandoned, not fired late.
			s.pendDrain[d.Worker] = false
			s.c.picker.setDown(d.Worker, true)
		}
	}
	s.decisions = append(s.decisions, ds...)
	if over := len(s.decisions) - maxScaleDecisions; over > 0 {
		s.decisions = append(s.decisions[:0], s.decisions[over:]...)
	}
}

// noteDrained reports a completed drain to the controller's metrics
// (never its decisions — real drain completion times differ between
// sim and live, and feeding them back would break conformance).
func (s *simScaler) noteDrained(w int) {
	s.ctrl.NoteDrained(w, s.ctrl.DrainStart(w), s.c.eng.Now().Duration())
}

// completed is the Submit completion hook: it feeds the invocation's
// latency to the demand tracker (observability only) and fires the
// drain hook when a draining node empties.
func (s *simScaler) completed(node int, lat time.Duration) {
	s.ctrl.ObserveLatency(lat)
	if s.pendDrain[node] && s.c.picker.inflight[node] == 0 {
		s.pendDrain[node] = false
		s.noteDrained(node)
	}
}

// AutoscaleEnabled reports whether the cluster runs the autoscaling
// control loop.
func (c *Cluster) AutoscaleEnabled() bool { return c.scaler != nil }

// AutoscaleDecisions returns the retained scaling decision log in
// order (empty when autoscaling is disabled).
func (c *Cluster) AutoscaleDecisions() []autoscale.Decision {
	if c.scaler == nil {
		return nil
	}
	return append([]autoscale.Decision(nil), c.scaler.decisions...)
}

// AutoscaleStatus snapshots the controller (zero value when
// autoscaling is disabled).
func (c *Cluster) AutoscaleStatus() autoscale.Status {
	if c.scaler == nil {
		return autoscale.Status{}
	}
	return c.scaler.ctrl.Snapshot()
}

// AutoscaleBusyIntegral reports provisioned worker-time accumulated by
// the controller (the elastic fleet's capacity cost; zero when
// autoscaling is disabled).
func (c *Cluster) AutoscaleBusyIntegral() time.Duration {
	if c.scaler == nil {
		return 0
	}
	return c.scaler.ctrl.BusyIntegral()
}

// ReadyNodes counts nodes currently receiving newly routed work.
func (c *Cluster) ReadyNodes() int {
	n := 0
	for i := range c.picker.down {
		if !c.picker.down[i] {
			n++
		}
	}
	return n
}
