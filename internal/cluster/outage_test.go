package cluster

import (
	"testing"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/node"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

func TestNodeConfigsHeterogeneousFleet(t *testing.T) {
	eng := sim.New(1)
	small := node.DefaultConfig()
	small.Cores = 4
	big := node.DefaultConfig()
	big.Cores = 16
	cfg := testClusterConfig(2, FnAffinity)
	cfg.NodeConfigs = []node.Config{small, big}
	cl, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := cl.Nodes()[0].Config().Cores; got != 4 {
		t.Errorf("node 0 cores = %v, want 4", got)
	}
	if got := cl.Nodes()[1].Config().Cores; got != 16 {
		t.Errorf("node 1 cores = %v, want 16", got)
	}

	cfg.NodeConfigs = []node.Config{small}
	if _, err := New(sim.New(1), cfg); err == nil {
		t.Error("NodeConfigs length mismatch accepted")
	}
}

func TestClusterChaosInjects(t *testing.T) {
	inj := chaos.MustNew(chaos.Config{Seed: 5, Rates: map[chaos.Kind]float64{chaos.BootFailure: 0.5}})
	eng := sim.New(5)
	cfg := testClusterConfig(2, FnAffinity)
	cfg.Chaos = inj
	cl, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec, err := workload.FibSpec(22)
	if err != nil {
		t.Fatalf("FibSpec: %v", err)
	}
	done := 0
	for i := 0; i < 40; i++ {
		i := i
		s := spec
		s.Name = string(rune('a' + i%8))
		eng.Schedule(time.Duration(i)*5*time.Millisecond, func() {
			cl.Submit(fnruntime.NewInvocation(int64(i), s, eng.Now()), func(*fnruntime.Invocation) { done++ })
		})
	}
	for done < 40 {
		if !eng.Step() {
			t.Fatalf("engine drained with %d/40 complete", done)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if inj.Counts()[chaos.BootFailure] == 0 {
		t.Error("no boot failures injected despite 0.5 rate")
	}
}

// TestSetDownFailsOverWithoutLoss marks a node down mid-run and checks
// (a) new work for its pinned functions re-pins elsewhere, and (b) every
// submitted invocation still completes — the zero-lost-on-failover
// guarantee the stress harness asserts as an invariant.
func TestSetDownFailsOverWithoutLoss(t *testing.T) {
	for _, bal := range []Balancing{FnAffinity, ConsistentHash, LeastLoaded, RoundRobin} {
		eng := sim.New(2)
		cl, err := New(eng, testClusterConfig(3, bal))
		if err != nil {
			t.Fatalf("%v: New: %v", bal, err)
		}
		spec, err := workload.FibSpec(21)
		if err != nil {
			t.Fatalf("FibSpec: %v", err)
		}
		spec.Name = "hot"
		victim := cl.picker.pick("hot") // where the function lands pre-outage
		cl.picker.inflight[victim]--    // undo the probe's accounting
		if bal == FnAffinity {
			cl.picker.assigned[victim]--
			delete(cl.picker.affinity, "hot")
		}

		submitted, done := 0, 0
		submit := func(id int) {
			submitted++
			cl.Submit(fnruntime.NewInvocation(int64(id), spec, eng.Now()), func(*fnruntime.Invocation) { done++ })
		}
		for i := 0; i < 10; i++ {
			i := i
			eng.Schedule(time.Duration(i)*10*time.Millisecond, func() { submit(i) })
		}
		eng.Schedule(150*time.Millisecond, func() {
			if err := cl.SetDown(victim, true); err != nil {
				t.Errorf("%v: SetDown: %v", bal, err)
			}
		})
		after := make([]int, 0, 10)
		for i := 0; i < 10; i++ {
			i := i
			eng.Schedule(200*time.Millisecond+time.Duration(i)*10*time.Millisecond, func() {
				idx := cl.picker.pick(spec.Name)
				cl.picker.inflight[idx]-- // probe only; Submit re-picks
				after = append(after, idx)
				submit(100 + i)
			})
		}
		for done < submitted || submitted < 20 {
			if !eng.Step() {
				t.Fatalf("%v: engine drained with %d/%d complete", bal, done, submitted)
			}
		}
		if err := cl.Close(); err != nil {
			t.Fatalf("%v: Close: %v", bal, err)
		}
		if !cl.Down(victim) {
			t.Errorf("%v: victim not reported down", bal)
		}
		for _, idx := range after {
			if idx == victim {
				t.Errorf("%v: post-outage pick routed to downed node %d", bal, victim)
			}
		}
	}
}

// TestSetDownWholeFleetStillRoutes checks mark-down is advisory: with
// every node down, routing degrades instead of dropping work.
func TestSetDownWholeFleetStillRoutes(t *testing.T) {
	eng := sim.New(3)
	cl, err := New(eng, testClusterConfig(2, FnAffinity))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := cl.SetDown(i, true); err != nil {
			t.Fatalf("SetDown: %v", err)
		}
	}
	spec, err := workload.FibSpec(20)
	if err != nil {
		t.Fatalf("FibSpec: %v", err)
	}
	done := 0
	cl.Submit(fnruntime.NewInvocation(0, spec, eng.Now()), func(*fnruntime.Invocation) { done++ })
	for done < 1 {
		if !eng.Step() {
			t.Fatal("engine drained before completion")
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cl.SetDown(5, true); err == nil {
		t.Error("out-of-range SetDown accepted")
	}
	if cl.Down(5) {
		t.Error("out-of-range Down reported true")
	}
}

// TestSetDownRecovery verifies a recovered node receives new first-sight
// pins again (FnAffinity) and rejoins the hash ring (ConsistentHash).
func TestSetDownRecovery(t *testing.T) {
	eng := sim.New(4)
	cl, err := New(eng, testClusterConfig(2, ConsistentHash))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Find a function owned by node 0 on the full ring.
	owned := ""
	for _, fn := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		idx := cl.picker.pick(fn)
		cl.picker.inflight[idx]--
		if idx == 0 {
			owned = fn
			break
		}
	}
	if owned == "" {
		t.Skip("no probe function landed on node 0")
	}
	if err := cl.SetDown(0, true); err != nil {
		t.Fatalf("SetDown: %v", err)
	}
	idx := cl.picker.pick(owned)
	cl.picker.inflight[idx]--
	if idx == 0 {
		t.Fatal("downed ring member still owns its arc")
	}
	if err := cl.SetDown(0, false); err != nil {
		t.Fatalf("SetDown(up): %v", err)
	}
	idx = cl.picker.pick(owned)
	cl.picker.inflight[idx]--
	if idx != 0 {
		t.Fatal("recovered ring member did not regain its arc")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
