// Package hashmix provides the splitmix64-finalised FNV-1a hashing
// shared by the consistent-hash ring (internal/router) and the resource
// multiplexer's shard selection (internal/multiplex).
//
// Raw FNV-1a avalanches poorly on trailing-byte differences: adjacent
// strings like "w1#0".."w1#63" (virtual nodes) or "fn-0".."fn-99" land on
// one tight arc of the 64-bit space. Passing the digest through a
// splitmix64 finaliser fixes the avalanche, so ownership arcs and shard
// assignments spread evenly. The pipeline is deterministic across
// processes and platforms — the simulator's cluster dispatcher, the live
// router and every multiplexer shard map agree on all assignments (the
// sim-vs-live conformance and distribution tests depend on it), which is
// why both packages must share one implementation instead of drifting
// copies.
package hashmix

import "hash/fnv"

// Mix64 applies the splitmix64 finaliser to x: a full-avalanche bijection
// over uint64 (Steele et al., "Fast Splittable Pseudorandom Number
// Generators", the mix used by java.util.SplittableRandom).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// FNV64a is the plain FNV-1a digest of s (no finalisation) — use when a
// caller needs to fold further material in before mixing.
func FNV64a(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // fnv.Write never fails
	return h.Sum64()
}

// String hashes s with FNV-1a and finalises with Mix64: the well-spread
// 64-bit hash both consumers place on rings and shard maps.
func String(s string) uint64 {
	return Mix64(FNV64a(s))
}
