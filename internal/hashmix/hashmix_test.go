package hashmix

import (
	"hash/fnv"
	"testing"
	"testing/quick"
)

// TestStringMatchesManualPipeline pins String to FNV-1a + splitmix64: the
// router ring's vnode placement and the multiplexer's shard assignment
// were built on this exact pipeline, so changing it would silently remap
// both.
func TestStringMatchesManualPipeline(t *testing.T) {
	prop := func(s string) bool {
		h := fnv.New64a()
		_, _ = h.Write([]byte(s))
		x := h.Sum64()
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return String(s) == x && String(s) == Mix64(FNV64a(s))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKnownVectors pins concrete digests so a refactor that changes the
// constants (and with them every ring and shard assignment) fails loudly.
func TestKnownVectors(t *testing.T) {
	cases := map[string]uint64{
		"":     Mix64(14695981039346656037),
		"w1#0": String("w1#0"),
	}
	if got := String(""); got != cases[""] {
		t.Fatalf("String(\"\") = %#x, want %#x", got, cases[""])
	}
	if FNV64a("") != 14695981039346656037 {
		t.Fatalf("FNV64a(\"\") = %#x, want the FNV offset basis", FNV64a(""))
	}
	if String("a") == String("b") {
		t.Fatal("distinct strings collided")
	}
}

// TestMix64Avalanche: flipping the lowest bit must flip a healthy share
// of output bits — the property the trailing-byte-adjacent inputs need.
func TestMix64Avalanche(t *testing.T) {
	for _, x := range []uint64{0, 1, 42, 1 << 63, 0xdeadbeef} {
		diff := Mix64(x) ^ Mix64(x^1)
		bits := 0
		for d := diff; d != 0; d >>= 1 {
			bits += int(d & 1)
		}
		if bits < 16 {
			t.Fatalf("Mix64 avalanche too weak at %#x: %d bits flipped", x, bits)
		}
	}
}
