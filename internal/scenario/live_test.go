package scenario

import (
	"testing"
	"time"
)

// TestLiveSmoke drives a small scenario through the real platform:
// goroutines, wall-clock windows, seeded chaos. The conservation
// invariant — platform Submitted == Invocations + Canceled — is the live
// analogue of the simulator's zero-loss guarantee.
func TestLiveSmoke(t *testing.T) {
	sc, err := Parse([]byte(`
scenario: live-smoke
mode: live
seed: 7
live-time-scale: 10
dispatch:
  interval: 10ms
  adaptive: true
sampling: 100ms
chaos:
  hang: 50ms
phases:
  - name: clean
    duration: 2s
    arrival: poisson
    rate: 200
    mix:
      - fn: ping
        instances: 3
  - name: faulty
    duration: 2s
    arrival: poisson
    rate: 200
    mix:
      - fn: ping
        instances: 3
    chaos:
      handler-error: 0.05
      container-crash: 0.02
invariants:
  - no-lost-invocations
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if body.Totals.Submitted == 0 {
		t.Fatal("live run submitted nothing")
	}
	for _, inv := range body.Violations() {
		t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
	}
	if body.Mode != "live" {
		t.Errorf("mode = %q, want live", body.Mode)
	}
}

// TestLiveChaosSwapRace is the harness-level race regression: rapid
// phase boundaries swap the injector's rate table (SetRates) while the
// platform's dispatch goroutines consult it (Should) from in-flight
// windows. Run under -race this mirrors the PR 5 Close-vs-invokers
// shape, with the scenario engine as the driver.
func TestLiveChaosSwapRace(t *testing.T) {
	src := `
scenario: chaos-swap-race
mode: live
seed: 11
live-time-scale: 20
dispatch:
  interval: 5ms
sampling: 50ms
chaos:
  hang: 20ms
phases:
`
	// Many short phases, alternating fault tables, so rate swaps land
	// mid-dispatch over and over.
	for i := 0; i < 6; i++ {
		src += `
  - name: p` + string(rune('0'+i)) + `
    duration: 1s
    arrival: constant
    rate: 150
    mix:
      - fn: ping
        instances: 2
`
		if i%2 == 1 {
			src += `    chaos:
      handler-error: 0.1
      handler-panic: 0.02
      container-crash: 0.02
      storage-failure: 0.05
`
		}
	}
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, inv := range body.Violations() {
		t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
	}
	if len(body.Chaos) == 0 {
		t.Error("no faults injected across the faulty phases")
	}
}

// TestLiveRejections: live mode's guard rails.
func TestLiveRejections(t *testing.T) {
	fleet := &Scenario{}
	*fleet = Scenario{
		Name:          "fleet-live",
		Seed:          1,
		Mode:          ModeLive,
		Fleet:         Fleet{Workers: 4, Zones: 1},
		Sampling:      time.Second,
		MaxDrain:      time.Hour,
		LiveTimeScale: 1,
		Phases:        []Phase{{Name: "p", Duration: time.Second, Arrival: "poisson"}},
	}
	if _, err := NewRunner().RunBody(fleet); err == nil {
		t.Error("live mode accepted a multi-worker fleet")
	}
}
